// Parallel probabilistic inference: the paper's second driver
// application.
//
// Estimates a posterior probability in a Table 2-style belief network
// by logic sampling — serially, then on two simulated processors under
// the three coherence disciplines — and prints completion times and the
// rollback machinery's bookkeeping (the paper's Figure 3 comparison for
// one network).
//
//	go run ./examples/inference
package main

import (
	"fmt"

	"nscc/internal/bayes"
	"nscc/internal/core"
)

func main() {
	bn := bayes.Table2Networks()[3] // the Hailfinder-like network
	q := bayes.DefaultQuery(bn)
	calib := bayes.DefaultCalibration()
	const (
		prec = 0.015
		seed = 3
	)

	fmt.Printf("network %s: %d nodes, %.1f edges/node, %d values/node\n",
		bn.Name, bn.N(), bn.EdgesPerNode(), bn.MaxStates())

	serial := bayes.InferSerial(bn, q, prec, seed, calib, 500000)
	fmt.Printf("serial: time=%v prob=%.4f (+-%.4f) samples=%d\n",
		serial.Time, serial.Prob, serial.HalfWidth, serial.Iters)

	for _, v := range []struct {
		name string
		mode core.Mode
		age  int64
	}{
		{"sync", core.Sync, 0},
		{"async", core.Async, 0},
		{"gr(age=10)", core.NonStrict, 10},
	} {
		cfg := bayes.ParallelConfig{
			Net: bn, Query: q, P: 2,
			Mode: v.mode, Age: v.age,
			Precision: prec, MaxIters: 500000,
			Seed: seed, Calib: calib,
		}
		res, err := bayes.RunParallel(cfg)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-11s time=%v speedup=%.2f prob=%.4f gambles=%d rollbacks=%d replayed=%d blocked=%v\n",
			v.name, res.Completion, serial.Time.Seconds()/res.Completion.Seconds(),
			res.Prob, res.Gambles, res.Rollbacks, res.Replayed, res.BlockedTime)
	}
	fmt.Println()
	fmt.Println("sync pays a message wave per topological phase every sample;")
	fmt.Println("async gambles on default values and repairs by costly rollback replays;")
	fmt.Println("Global_Read keeps the partitions close, so rollbacks stay short.")
}
