// Loaded network: the paper's §5.2 experiment in miniature.
//
// Runs the Global_Read island GA (and its asynchronous competitor) on 4
// processors while a two-node loader injects background traffic at
// increasing rates, and prints how completion time, queueing delay and
// the warp metric respond. The headline: as the network gets more
// congested, the benefit of controlled asynchrony grows.
//
//	go run ./examples/loadednet
package main

import (
	"fmt"

	"nscc/internal/core"
	"nscc/internal/ga"
	"nscc/internal/ga/functions"
)

func main() {
	fn := functions.F1
	par := ga.DeJongParams()
	calib := ga.DefaultCalibration()
	const (
		procs = 4
		gens  = 150
		seed  = 5
	)

	serial := ga.RunSerial(fn, par, par.N*procs, gens, seed, calib)
	fmt.Printf("serial reference: %v\n\n", serial.Time)
	fmt.Printf("%-9s %-11s %12s %9s %12s %8s %6s\n",
		"load", "mode", "completion", "speedup", "queue-delay", "blocked", "warp")

	for _, load := range []float64{0, 0.5e6, 1e6, 2e6} {
		base := ga.IslandConfig{
			Fn: fn, Par: par, P: procs,
			FixedGens: gens, MinGens: gens, MaxGens: 4 * gens,
			Seed: seed, Calib: calib, LoaderBps: load,
		}
		syncCfg := base
		syncCfg.Mode = core.Sync
		syncRes, err := ga.RunIsland(syncCfg)
		if err != nil {
			panic(err)
		}
		report(serial, "sync", load, syncRes)

		for _, v := range []struct {
			name string
			mode core.Mode
			age  int64
		}{
			{"async", core.Async, 0},
			{"gr(age=10)", core.NonStrict, 10},
		} {
			cfg := base
			cfg.Mode = v.mode
			cfg.Age = v.age
			cfg.Target = syncRes.Avg
			res, err := ga.RunIsland(cfg)
			if err != nil {
				panic(err)
			}
			report(serial, v.name, load, res)
		}
		fmt.Println()
	}
}

func report(s ga.SerialResult, name string, load float64, r ga.IslandResult) {
	fmt.Printf("%-9s %-11s %12v %9.2f %12v %8d %6.2f\n",
		fmt.Sprintf("%.1fMbps", load/1e6), name, r.Completion,
		s.Time.Seconds()/r.Completion.Seconds(), r.QueueDelay, r.Blocked, r.WarpMean)
}
