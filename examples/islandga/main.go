// Island GA: the paper's first driver application.
//
// Runs the coarse-grained parallel GA on DeJong's F1 (sphere) with 8
// islands under the three coherence disciplines and prints the
// speedups over the optimized serial program, the paper's Figure 2
// comparison in miniature.
//
//	go run ./examples/islandga
package main

import (
	"fmt"

	"nscc/internal/core"
	"nscc/internal/ga"
	"nscc/internal/ga/functions"
)

func main() {
	const (
		procs = 8
		gens  = 150
		seed  = 7
	)
	fn := functions.F1
	par := ga.DeJongParams()
	calib := ga.DefaultCalibration()

	serial := ga.RunSerial(fn, par, par.N*procs, gens, seed, calib)
	fmt.Printf("serial (pop %d, %d gens): time=%v best=%.2g final-avg=%.3g\n",
		par.N*procs, gens, serial.Time, serial.Best, serial.Avg)

	base := ga.IslandConfig{
		Fn: fn, Par: par, P: procs,
		FixedGens: gens, MinGens: gens, MaxGens: 4 * gens,
		Seed: seed, Calib: calib,
	}

	syncCfg := base
	syncCfg.Mode = core.Sync
	syncRes, err := ga.RunIsland(syncCfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-12s time=%v speedup=%.2f best=%.2g blocked=%v\n",
		"sync", syncRes.Completion, speedup(serial, syncRes), syncRes.Best, syncRes.BlockedTime)

	// Async and Global_Read run until their population quality matches
	// the synchronous run's final average (the paper's protocol).
	for _, v := range []struct {
		name string
		mode core.Mode
		age  int64
	}{
		{"async", core.Async, 0},
		{"gr(age=0)", core.NonStrict, 0},
		{"gr(age=10)", core.NonStrict, 10},
		{"gr(age=30)", core.NonStrict, 30},
	} {
		cfg := base
		cfg.Mode = v.mode
		cfg.Age = v.age
		cfg.Target = syncRes.Avg
		res, err := ga.RunIsland(cfg)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-12s time=%v speedup=%.2f best=%.2g blocked=%v warp=%.2f\n",
			v.name, res.Completion, speedup(serial, res), res.Best, res.BlockedTime, res.WarpMean)
	}
}

func speedup(s ga.SerialResult, r ga.IslandResult) float64 {
	return s.Time.Seconds() / r.Completion.Seconds()
}
