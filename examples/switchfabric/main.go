// Switch fabric: the paper's §4.1 expectation, exercised.
//
// The paper evaluated on the SP2's 10 Mbps Ethernet because the
// latency-rich network is where non-strict coherence pays most, and
// expected reduced-but-present benefits "even on faster interconnects
// such as the IBM SP2's high-speed switch". This example runs the same
// island GA on both fabrics and prints where the Global_Read advantage
// comes from on each: network tolerance on the bus, load-skew tolerance
// on the switch.
//
//	go run ./examples/switchfabric
package main

import (
	"fmt"

	"nscc/internal/core"
	"nscc/internal/ga"
	"nscc/internal/ga/functions"
	"nscc/internal/netsim"
)

func main() {
	par := ga.DeJongParams()
	calib := ga.DefaultCalibration()
	const (
		procs = 8
		gens  = 150
		seed  = 9
	)
	serial := ga.RunSerial(functions.F1, par, par.N*procs, gens, seed, calib)
	fmt.Printf("serial reference: %v\n\n", serial.Time)
	fmt.Printf("%-9s %-11s %12s %9s %10s %12s\n",
		"fabric", "mode", "completion", "speedup", "blocked", "queue-delay")

	for _, fabric := range []string{"ethernet", "switch"} {
		base := ga.IslandConfig{
			Fn: functions.F1, Par: par, P: procs,
			FixedGens: gens, MinGens: gens, MaxGens: 4 * gens,
			Seed: seed, Calib: calib,
		}
		if fabric == "switch" {
			sw := netsim.DefaultSwitchConfig()
			base.Switch = &sw
		}
		syncCfg := base
		syncCfg.Mode = core.Sync
		sync, err := ga.RunIsland(syncCfg)
		if err != nil {
			panic(err)
		}
		report(serial, fabric, "sync", sync)

		grCfg := base
		grCfg.Mode = core.NonStrict
		grCfg.Age = 10
		grCfg.Target = sync.Avg
		gr, err := ga.RunIsland(grCfg)
		if err != nil {
			panic(err)
		}
		report(serial, fabric, "gr(age=10)", gr)
		fmt.Println()
	}
	fmt.Println("On the Ethernet, Global_Read buys both network-delay and skew tolerance;")
	fmt.Println("on the switch the network is cheap, so the remaining gain is skew tolerance")
	fmt.Println("(no barrier waiting for the slowest island's slow patches).")
}

func report(s ga.SerialResult, fabric, name string, r ga.IslandResult) {
	fmt.Printf("%-9s %-11s %12v %9.2f %10d %12v\n",
		fabric, name, r.Completion, s.Time.Seconds()/r.Completion.Seconds(),
		r.Blocked, r.QueueDelay)
}
