// Quickstart: the Global_Read primitive on a two-node simulated
// cluster.
//
// A producer iterates, writing a shared location once per iteration; a
// consumer reads it back under three disciplines — a fully asynchronous
// Read, Global_Read with a staleness bound, and Global_Read with age 0
// (lockstep). The printout shows the staleness each discipline
// tolerates and the blocking each pays: the whole paper in thirty
// lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"nscc/internal/core"
	"nscc/internal/netsim"
	"nscc/internal/pvm"
	"nscc/internal/sim"
)

func main() {
	eng := sim.NewEngine(42)
	net := netsim.New(eng, netsim.DefaultConfig())
	machine := pvm.NewMachine(eng, net, pvm.DefaultConfig())

	// One shared location: task 1 writes, task 0 reads.
	loc := &core.Location{ID: 1, Name: "x", Writer: 1, Readers: []int{0}, Size: 256}

	const iters = 40
	for _, scenario := range []struct {
		name string
		age  int64 // -1 = plain asynchronous Read
	}{
		{"async      ", -1},
		{"gr(age=5)  ", 5},
		{"gr(age=0)  ", 0},
	} {
		scenario := scenario
		eng := sim.NewEngine(42)
		net := netsim.New(eng, netsim.DefaultConfig())
		machine = pvm.NewMachine(eng, net, pvm.DefaultConfig())

		var maxStale int64
		var reads int

		machine.Spawn("reader", func(t *pvm.Task) {
			n := core.NewNode(t, core.Options{})
			n.Register(loc)
			for i := int64(0); i < iters; i++ {
				t.Compute(500 * sim.Microsecond) // the reader's own iteration
				var got core.Update
				if scenario.age < 0 {
					got, _ = n.Read(loc)
				} else {
					got = n.GlobalRead(loc, i, scenario.age)
				}
				if got.Iter != core.NoValue {
					if s := i - got.Iter; s > maxStale {
						maxStale = s
					}
					reads++
				}
			}
			st := n.Stats()
			fmt.Printf("%s reads=%-3d max-staleness=%-3d blocked=%-3d blocked-time=%v\n",
				scenario.name, reads, maxStale, st.BlockedReads, st.BlockedTime)
		})
		machine.Spawn("writer", func(t *pvm.Task) {
			n := core.NewNode(t, core.Options{})
			n.Register(loc)
			for i := int64(0); i < iters; i++ {
				// The writer is slower than the reader and occasionally
				// hits a slow patch — the load skew Global_Read rides
				// over and age=0 waits out.
				d := 800 * sim.Microsecond
				if i%10 == 9 {
					d *= 5
				}
				t.Compute(d)
				n.Write(loc, i, i)
			}
		})
		if err := eng.Run(); err != nil {
			panic(err)
		}
	}
	fmt.Println()
	fmt.Println("async never blocks but reads arbitrarily stale values;")
	fmt.Println("gr(5) bounds staleness at 5 iterations with a little blocking;")
	fmt.Println("gr(0) is lockstep: fresh values, maximal blocking.")
}
