// Wiring tests for the unified trace layer: run real applications with
// a recording tracer and check the cross-layer invariants the trace
// must satisfy (balanced block/wake, monotone per-track timestamps,
// blocked spans matching the coherence counters, staleness within the
// age bound).
package nscc

import (
	"testing"

	"nscc/internal/core"
	"nscc/internal/ga"
	"nscc/internal/trace"
)

func runTracedGA(t *testing.T, mode core.Mode) (*trace.Recorder, ga.IslandResult) {
	t.Helper()
	rec := trace.NewRecorder()
	cfg := gaBenchConfig(7)
	cfg.Mode = mode
	cfg.Tracer = rec
	res, err := ga.RunIsland(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rec, res
}

// TestTraceBlockWakeBalance: in a run that completes, every parked
// process was woken exactly once per park, so the sim layer's block and
// wake instants must balance.
func TestTraceBlockWakeBalance(t *testing.T) {
	for _, mode := range []core.Mode{core.Sync, core.NonStrict} {
		rec, _ := runTracedGA(t, mode)
		blocks := rec.CountBy(func(e *trace.Event) bool { return e.Name == "block" })
		wakes := rec.CountBy(func(e *trace.Event) bool { return e.Name == "wake" })
		if blocks == 0 {
			t.Fatalf("%v: no block instants recorded", mode)
		}
		if blocks != wakes {
			t.Fatalf("%v: %d block instants vs %d wake instants", mode, blocks, wakes)
		}
	}
}

// TestTraceMonotoneTimestamps: on every (pid, tid, name) track, instant
// timestamps must be non-decreasing in emission order — virtual time
// only moves forward — and spans must have non-negative durations
// starting at or after zero.
func TestTraceMonotoneTimestamps(t *testing.T) {
	rec, _ := runTracedGA(t, core.NonStrict)
	type track struct {
		pid, tid int
		name     string
	}
	last := map[track]int64{}
	for _, e := range rec.Events() {
		if e.TS < 0 {
			t.Fatalf("negative timestamp: %+v", e)
		}
		if e.Ph == trace.PhaseSpan && e.Dur < 0 {
			t.Fatalf("negative span duration: %+v", e)
		}
		if e.Ph != trace.PhaseInstant {
			continue
		}
		k := track{e.Pid, e.Tid, e.Name}
		if prev, ok := last[k]; ok && e.TS < prev {
			t.Fatalf("track %+v went backwards: %d after %d", k, e.TS, prev)
		}
		last[k] = e.TS
	}
}

// TestTraceGlobalReadSpans: every Global_Read emits exactly one span;
// the ones with positive duration are the blocked reads, so their count
// must equal the run's blocked-read counter, and no observed staleness
// may exceed the age bound.
func TestTraceGlobalReadSpans(t *testing.T) {
	rec, res := runTracedGA(t, core.NonStrict)
	var blockedSpans, total int
	for _, e := range rec.Events() {
		if e.Ph != trace.PhaseSpan || e.Name != "global_read" {
			continue
		}
		total++
		if e.Dur > 0 {
			blockedSpans++
		}
		if e.K2 == "stale" && e.V2 > 10 {
			t.Fatalf("global_read span staleness %d exceeds age bound 10", e.V2)
		}
	}
	if total == 0 {
		t.Fatal("NonStrict run recorded no global_read spans")
	}
	if int64(blockedSpans) != res.Blocked {
		t.Fatalf("%d blocked global_read spans vs %d blocked reads counted", blockedSpans, res.Blocked)
	}

	// The fully asynchronous variant never calls Global_Read, so its
	// trace must contain no such spans.
	recAsync, _ := runTracedGA(t, core.Async)
	if n := recAsync.CountBy(func(e *trace.Event) bool { return e.Name == "global_read" }); n != 0 {
		t.Fatalf("async run recorded %d global_read spans, want 0", n)
	}
}

// TestTraceLayerCoverage: a traced Global_Read GA run must produce
// spans from at least three layers (message delivery, Global_Read,
// application generations) — the acceptance bar for a useful trace.
func TestTraceLayerCoverage(t *testing.T) {
	rec, _ := runTracedGA(t, core.NonStrict)
	pids := map[int]bool{}
	for _, e := range rec.Events() {
		if e.Ph == trace.PhaseSpan {
			pids[e.Pid] = true
		}
	}
	for _, pid := range []int{trace.PidPVM, trace.PidCore, trace.PidApp} {
		if !pids[pid] {
			t.Fatalf("no spans from layer %s; got layers %v", trace.PidName(pid), pids)
		}
	}
}

// TestTraceSendArrivalPairing: with both hooks installed on a traced
// run, every message ArrivalHook observes must have been seen by
// SendHook first (arrivals are a subset of sends — multicast delivers
// one logical send to many receivers).
func TestTraceSendArrivalPairing(t *testing.T) {
	cfg := gaBenchConfig(11)
	res, err := ga.RunIsland(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages == 0 {
		t.Fatal("run sent no messages")
	}
	// The hooks live on the pvm.Machine, which RunIsland owns, so the
	// pairing property is exercised directly at the pvm layer in
	// internal/pvm's TestSendHookPairsWithArrivalHook; here we check the
	// trace-level counterpart: every pvm "msg" delivery span in a traced
	// run has a matching earlier "send" instant from its source task.
	rec, _ := runTracedGA(t, core.NonStrict)
	sends := map[int64]map[int]int{} // SentAt ts -> src -> count
	for _, e := range rec.Events() {
		if e.Pid != trace.PidPVM {
			continue
		}
		switch e.Name {
		case "send":
			m := sends[e.TS]
			if m == nil {
				m = map[int]int{}
				sends[e.TS] = m
			}
			m[e.Tid]++
		case "msg":
			src := int(e.V1) // K1 "src"
			if sends[e.TS][src] == 0 {
				t.Fatalf("msg span at ts=%d from src=%d has no matching send instant", e.TS, src)
			}
		}
	}
}
