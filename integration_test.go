// End-to-end integration tests: each drives a full experiment path
// across every layer of the stack (engine → fabric → messaging → DSM →
// application → statistics) and asserts the paper-level invariants that
// no single package can check alone.
package nscc

import (
	"math"
	"testing"

	"nscc/internal/bayes"
	"nscc/internal/core"
	"nscc/internal/exper"
	"nscc/internal/faults"
	"nscc/internal/ga"
	"nscc/internal/ga/functions"
	"nscc/internal/netsim"
	"nscc/internal/sim"
	"nscc/internal/trace"
)

// TestEndToEndGAOrdering runs the three GA disciplines through the full
// stack and asserts the cross-variant ordering the evaluation depends
// on.
func TestEndToEndGAOrdering(t *testing.T) {
	par := ga.DeJongParams()
	calib := ga.DefaultCalibration()
	const seed, gens = 41, 100
	serial := ga.RunSerial(functions.F1, par, par.N*4, gens, seed, calib)

	base := ga.IslandConfig{
		Fn: functions.F1, Par: par, P: 4,
		FixedGens: gens, MinGens: gens, MaxGens: 4 * gens,
		Seed: seed, Calib: calib,
	}
	syncCfg := base
	syncCfg.Mode = core.Sync
	sync, err := ga.RunIsland(syncCfg)
	if err != nil {
		t.Fatal(err)
	}
	grCfg := base
	grCfg.Mode = core.NonStrict
	grCfg.Age = 10
	grCfg.Target = sync.Avg
	gr, err := ga.RunIsland(grCfg)
	if err != nil {
		t.Fatal(err)
	}

	if sync.Completion >= serial.Time {
		t.Errorf("4-processor sync (%v) slower than serial (%v)", sync.Completion, serial.Time)
	}
	if gr.Completion >= sync.Completion {
		t.Errorf("Global_Read (%v) not faster than sync (%v)", gr.Completion, sync.Completion)
	}
	if !gr.ReachedTarget {
		t.Errorf("Global_Read failed the quality target: %+v", gr)
	}
	// Quality parity: both reach the encoding optimum on F1.
	if !sync.OptimumFound || !gr.OptimumFound {
		t.Errorf("optimum not found: sync=%v gr=%v", sync.OptimumFound, gr.OptimumFound)
	}
}

// TestEndToEndSwitchBeatsBusForSync runs the same synchronous GA on
// both fabrics: the crossbar switch must beat the shared bus, and the
// gap must come from communication (identical generation counts).
func TestEndToEndSwitchBeatsBusForSync(t *testing.T) {
	par := ga.DeJongParams()
	cfg := ga.IslandConfig{
		Fn: functions.F1, Par: par, P: 8, Mode: core.Sync,
		FixedGens: 60, Seed: 5, Calib: ga.DefaultCalibration(),
	}
	bus, err := ga.RunIsland(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sw := netsim.DefaultSwitchConfig()
	cfg.Switch = &sw
	fast, err := ga.RunIsland(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Completion >= bus.Completion {
		t.Fatalf("switch (%v) not faster than bus (%v)", fast.Completion, bus.Completion)
	}
	for i := range bus.Gens {
		if bus.Gens[i] != fast.Gens[i] {
			t.Fatalf("generation counts differ across fabrics: %v vs %v", bus.Gens, fast.Gens)
		}
	}
}

// TestEndToEndInferenceAgreement runs serial logic sampling, serial
// likelihood weighting, and the 2-processor Global_Read sampler on the
// same network and checks the three estimates agree.
func TestEndToEndInferenceAgreement(t *testing.T) {
	bn := bayes.Table2Networks()[1]
	q := bayes.DefaultQuery(bn)
	calib := bayes.DefaultCalibration()
	const seed, prec = 77, 0.02

	ls := bayes.InferSerial(bn, q, prec, seed, calib, 200000)
	lw := bayes.InferSerialLW(bn, q, prec, seed, calib, 200000)
	par, err := bayes.RunParallel(bayes.ParallelConfig{
		Net: bn, Query: q, P: 2, Mode: core.NonStrict, Age: 10,
		Precision: prec, MaxIters: 200000, Seed: seed, Calib: calib,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ls.Converged || !lw.Converged || !par.ReachedPrecision {
		t.Fatalf("convergence: ls=%v lw=%v par=%v", ls.Converged, lw.Converged, par.ReachedPrecision)
	}
	if d := math.Abs(ls.Prob - lw.Prob); d > 3*prec {
		t.Errorf("LS %v vs LW %v differ by %v", ls.Prob, lw.Prob, d)
	}
	if d := math.Abs(ls.Prob - par.Prob); d > 4*prec {
		t.Errorf("serial %v vs parallel %v differ by %v", ls.Prob, par.Prob, d)
	}
}

// TestEndToEndExperimentDeterminism runs a full experiment cell twice
// and requires bit-identical results — the property every EXPERIMENTS.md
// number relies on.
func TestEndToEndExperimentDeterminism(t *testing.T) {
	opts := exper.Quick()
	opts.Trials = 1
	opts.SyncGens = 40
	a, err := exper.GACell(functions.F3, 2, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := exper.GACell(functions.F3, 2, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range exper.Variants() {
		if a.Speedup[v] != b.Speedup[v] {
			t.Fatalf("experiment cell not deterministic at %v", v)
		}
	}
}

// TestEndToEndChaosGA drives the full stack — engine, fault injector,
// reliable transport, DSM with bounded reads, application, telemetry,
// tracing — under a seeded random fault plan and asserts the
// cross-layer contracts: the run completes, the staleness histogram
// never exceeds the age bound, the violation counter reconciles across
// telemetry layers, and the fault events surface in the trace stream.
func TestEndToEndChaosGA(t *testing.T) {
	rec := trace.NewRecorder()
	cfg := ga.IslandConfig{
		Fn: functions.F1, Par: ga.DeJongParams(), P: 4,
		Mode: core.NonStrict, Age: 10,
		FixedGens: 40, MinGens: 40, MaxGens: 160,
		Seed: 23, Calib: ga.DefaultCalibration(),

		Faults:      faults.RandomPlan(23, 4, 2.0),
		Reliable:    true,
		ReadTimeout: 50 * sim.Millisecond,
		Tracer:      rec,
	}
	res, err := ga.RunIsland(cfg)
	if err != nil {
		t.Fatalf("chaos run did not complete: %v", err)
	}
	if max := res.Telemetry.Staleness.Max; max > cfg.Age {
		t.Errorf("staleness bound broken end to end: observed %d > age %d", max, cfg.Age)
	}
	var perTask int64
	for _, tt := range res.Telemetry.Tasks {
		perTask += tt.ReadTimeouts
	}
	if perTask != res.Telemetry.StalenessViolations {
		t.Errorf("StalenessViolations %d != per-task sum %d",
			res.Telemetry.StalenessViolations, perTask)
	}
	if n := rec.CountBy(func(ev *trace.Event) bool { return ev.Pid == trace.PidFaults }); n == 0 {
		t.Error("no fault events reached the trace stream")
	}
}

// TestEndToEndLoaderDegradesSync is the Figure 4 mechanism end to end:
// fixed work, rising background load, monotone-ish completion times.
func TestEndToEndLoaderDegradesSync(t *testing.T) {
	completion := func(load float64) float64 {
		cfg := ga.IslandConfig{
			Fn: functions.F1, Par: ga.DeJongParams(), P: 4, Mode: core.Sync,
			FixedGens: 80, Seed: 13, Calib: ga.DefaultCalibration(), LoaderBps: load,
		}
		res, err := ga.RunIsland(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Completion.Seconds()
	}
	unloaded := completion(0)
	loaded := completion(3e6)
	if loaded <= unloaded {
		t.Fatalf("3 Mbps background load did not slow the sync GA: %v vs %v", loaded, unloaded)
	}
}
