// Benchmarks, one per table and figure of the paper plus the ablations
// DESIGN.md calls out. Each benchmark runs a scaled-down instance of
// the corresponding experiment per iteration and reports the
// shape-defining quantities (speedups, rollback counts, message
// counts) via b.ReportMetric, so `go test -bench=. -benchmem` both
// exercises every experiment path and prints the comparison the paper's
// evaluation makes. The paper-scale sweeps are driven by cmd/nscc-bench.
package nscc

import (
	"math/rand"
	"testing"

	"nscc/internal/bayes"
	"nscc/internal/core"
	"nscc/internal/exper"
	"nscc/internal/ga"
	"nscc/internal/ga/functions"
	"nscc/internal/netsim"
	"nscc/internal/partition"
	"nscc/internal/trace"
)

// benchOpts is the reduced profile the benchmarks run at.
func benchOpts() exper.Options {
	opts := exper.Quick()
	opts.Trials = 1
	opts.SyncGens = 80
	opts.Procs = []int{4}
	opts.Precision = 0.03
	return opts
}

// BenchmarkTable1Functions evaluates the full eight-function test bed
// (Table 1) at random points — the GA's inner loop.
func BenchmarkTable1Functions(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	fns := functions.All()
	chromos := make([][]byte, len(fns))
	for i, fn := range fns {
		chromos[i] = make([]byte, fn.TotalBits())
		for j := range chromos[i] {
			chromos[i][j] = byte(rng.Intn(2))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, fn := range fns {
			_ = fn.EvalBits(chromos[j], rng)
		}
	}
}

// BenchmarkTable2Networks regenerates Table 2: network construction,
// 2-way partitioning (edge-cut), and uniprocessor inference.
func BenchmarkTable2Networks(b *testing.B) {
	var lastCut int
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		for _, bn := range bayes.Table2Networks() {
			parts := partition.Bisect(bn.Graph(), rng)
			lastCut = partition.EdgeCut(bn.Graph(), parts)
			q := bayes.DefaultQuery(bn)
			bayes.InferSerial(bn, q, 0.05, int64(i), bayes.DefaultCalibration(), 3000)
		}
	}
	b.ReportMetric(float64(lastCut), "edgecut")
}

// BenchmarkFigure1Inference runs serial logic sampling on the paper's
// example network against exact enumeration.
func BenchmarkFigure1Inference(b *testing.B) {
	bn := bayes.Figure1()
	q := bayes.Query{Node: 3, State: 1, Evidence: map[int]int{0: 1}}
	exact := bayes.Exact(bn, q)
	var got float64
	for i := 0; i < b.N; i++ {
		res := bayes.InferSerial(bn, q, 0.02, int64(i+1), bayes.DefaultCalibration(), 200000)
		got = res.Prob
	}
	b.ReportMetric(exact, "exact")
	b.ReportMetric(got, "sampled")
}

// BenchmarkFigure2GA runs one cell of Figure 2 (GA speedups, unloaded
// network, function 1, 4 processors, all variants) per iteration.
func BenchmarkFigure2GA(b *testing.B) {
	opts := benchOpts()
	var row exper.GARow
	for i := 0; i < b.N; i++ {
		opts.Seed = 2000 + int64(i)
		r, err := exper.GACell(functions.F1, 4, opts, 0)
		if err != nil {
			b.Fatal(err)
		}
		row = r
	}
	b.ReportMetric(row.Speedup[exper.Variant{Mode: core.Sync}], "sync-speedup")
	b.ReportMetric(row.Speedup[exper.Variant{Mode: core.Async}], "async-speedup")
	b.ReportMetric(row.BestGR, "best-gr-speedup")
}

// BenchmarkFigure3Bayes runs one network of Figure 3 (2-processor
// belief-network speedups, sync vs async vs Global_Read) per iteration.
func BenchmarkFigure3Bayes(b *testing.B) {
	bn := bayes.Table2Networks()[3]
	q := bayes.DefaultQuery(bn)
	calib := bayes.DefaultCalibration()
	speed := map[string]float64{}
	for i := 0; i < b.N; i++ {
		seed := int64(i + 1)
		serial := bayes.InferSerial(bn, q, 0.03, seed, calib, 40000)
		for _, v := range []struct {
			name string
			mode core.Mode
			age  int64
		}{{"sync", core.Sync, 0}, {"async", core.Async, 0},
			{"gr0", core.NonStrict, 0}, {"gr10", core.NonStrict, 10}} {
			res, err := bayes.RunParallel(bayes.ParallelConfig{
				Net: bn, Query: q, P: 2, Mode: v.mode, Age: v.age,
				Precision: 0.03, MaxIters: 40000, Seed: seed, Calib: calib,
			})
			if err != nil {
				b.Fatal(err)
			}
			speed[v.name] = serial.Time.Seconds() / res.Completion.Seconds()
		}
	}
	b.ReportMetric(speed["sync"], "sync-speedup")
	b.ReportMetric(speed["async"], "async-speedup")
	b.ReportMetric(speed["gr0"], "gr0-speedup")
	b.ReportMetric(speed["gr10"], "gr10-speedup")
}

// BenchmarkFigure4Loaded runs one cell of Figure 4 (GA on 4 processors
// with a 2 Mbps background loader) per iteration.
func BenchmarkFigure4Loaded(b *testing.B) {
	opts := benchOpts()
	var row exper.GARow
	for i := 0; i < b.N; i++ {
		opts.Seed = 3000 + int64(i)
		r, err := exper.GACell(functions.F1, 4, opts, 2e6)
		if err != nil {
			b.Fatal(err)
		}
		row = r
	}
	b.ReportMetric(row.Speedup[exper.Variant{Mode: core.Sync}], "sync-speedup")
	b.ReportMetric(row.BestGR, "best-gr-speedup")
}

// gaBenchConfig is a small Global_Read island-GA run used by the
// ablation benchmarks.
func gaBenchConfig(seed int64) ga.IslandConfig {
	return ga.IslandConfig{
		Fn: functions.F1, Par: ga.DeJongParams(), P: 4,
		Mode: core.NonStrict, Age: 10,
		FixedGens: 80, MinGens: 80, MaxGens: 320, Target: 0.3,
		Seed: seed, Calib: ga.DefaultCalibration(),
	}
}

// BenchmarkTracerNil is the tracing-off baseline for the observability
// layer: the same Global_Read GA run as BenchmarkTracerRecording, with
// no tracer installed. The pair bounds the cost of the instrumentation;
// the nil-tracer run must not be measurably slower than it was before
// the trace layer existed (every emission site is one guarded branch).
func BenchmarkTracerNil(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ga.RunIsland(gaBenchConfig(int64(i + 1))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracerRecording runs the same configuration with a recording
// tracer attached, reporting the event volume one run produces.
func BenchmarkTracerRecording(b *testing.B) {
	rec := trace.NewRecorder()
	events := 0
	for i := 0; i < b.N; i++ {
		rec.Reset()
		cfg := gaBenchConfig(int64(i + 1))
		cfg.Tracer = rec
		if _, err := ga.RunIsland(cfg); err != nil {
			b.Fatal(err)
		}
		events = rec.Len()
	}
	b.ReportMetric(float64(events), "events")
}

// BenchmarkAblationRequestRead compares the paper's blocking-wait
// Global_Read against the request-based variant it rejects for message
// economy (§2).
func BenchmarkAblationRequestRead(b *testing.B) {
	var blocking, requesting ga.IslandResult
	for i := 0; i < b.N; i++ {
		cfg := gaBenchConfig(int64(i + 1))
		r1, err := ga.RunIsland(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.NodeOpts.RequestRead = true
		r2, err := ga.RunIsland(cfg)
		if err != nil {
			b.Fatal(err)
		}
		blocking, requesting = r1, r2
	}
	b.ReportMetric(float64(blocking.Messages), "blocking-msgs")
	b.ReportMetric(float64(requesting.Messages), "request-msgs")
}

// BenchmarkAblationCoalescing measures the write-window coalescing
// option (Mermera-style buffering) against eager sends.
func BenchmarkAblationCoalescing(b *testing.B) {
	var plain, coalescing ga.IslandResult
	for i := 0; i < b.N; i++ {
		cfg := gaBenchConfig(int64(i + 1))
		// Congest the bus so the write window actually backs up.
		cfg.LoaderBps = 6e6
		cfg.Mode = core.Async
		r1, err := ga.RunIsland(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.NodeOpts.Window = 1
		cfg.NodeOpts.Coalesce = true
		r2, err := ga.RunIsland(cfg)
		if err != nil {
			b.Fatal(err)
		}
		plain, coalescing = r1, r2
	}
	b.ReportMetric(float64(plain.Messages), "eager-msgs")
	b.ReportMetric(float64(coalescing.Messages), "coalesced-msgs")
	b.ReportMetric(float64(coalescing.Coalesced), "writes-coalesced")
}

// BenchmarkAblationBatching sweeps the inference engine's
// update-batching depth: batching several iterations per interface
// message is what amortizes the Ethernet's per-message overhead (§1).
func BenchmarkAblationBatching(b *testing.B) {
	bn := bayes.Table2Networks()[0]
	q := bayes.DefaultQuery(bn)
	calib := bayes.DefaultCalibration()
	times := map[int64]float64{}
	for i := 0; i < b.N; i++ {
		for _, batch := range []int64{1, 4, 16} {
			res, err := bayes.RunParallel(bayes.ParallelConfig{
				Net: bn, Query: q, P: 2, Mode: core.NonStrict, Age: 16,
				Batch: batch, Precision: 0.04, MaxIters: 20000,
				Seed: int64(i + 1), Calib: calib,
			})
			if err != nil {
				b.Fatal(err)
			}
			times[batch] = res.Completion.Seconds()
		}
	}
	b.ReportMetric(times[1], "batch1-secs")
	b.ReportMetric(times[4], "batch4-secs")
	b.ReportMetric(times[16], "batch16-secs")
}

// BenchmarkAblationDefaults compares the paper's probability-derived
// default values against arbitrary ones (§3.2): worse defaults mean
// more failed gambles and more rollback work.
func BenchmarkAblationDefaults(b *testing.B) {
	bn := bayes.Table2Networks()[0]
	q := bayes.DefaultQuery(bn)
	calib := bayes.DefaultCalibration()
	var informed, arbitrary bayes.ParallelResult
	for i := 0; i < b.N; i++ {
		cfg := bayes.ParallelConfig{
			Net: bn, Query: q, P: 2, Mode: core.Async,
			Precision: 0.04, MaxIters: 20000, Seed: int64(i + 1), Calib: calib,
		}
		r1, err := bayes.RunParallel(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.RandomDefaults = true
		r2, err := bayes.RunParallel(cfg)
		if err != nil {
			b.Fatal(err)
		}
		informed, arbitrary = r1, r2
	}
	b.ReportMetric(float64(informed.Conflicts), "informed-conflicts")
	b.ReportMetric(float64(arbitrary.Conflicts), "arbitrary-conflicts")
}

// BenchmarkDynamicAge exercises the paper's future-work extension:
// run-time adaptation of the tolerable age versus the best fixed
// setting.
func BenchmarkDynamicAge(b *testing.B) {
	var fixed, dynamic ga.IslandResult
	for i := 0; i < b.N; i++ {
		cfg := gaBenchConfig(int64(i + 1))
		r1, err := ga.RunIsland(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.DynamicAge = true
		cfg.Age = 1 // start tight; adaptation opens the window as needed
		r2, err := ga.RunIsland(cfg)
		if err != nil {
			b.Fatal(err)
		}
		fixed, dynamic = r1, r2
	}
	b.ReportMetric(fixed.Completion.Seconds(), "fixed-age-secs")
	b.ReportMetric(dynamic.Completion.Seconds(), "dynamic-age-secs")
}

// BenchmarkSendWindowBackpressure compares PVM's unbounded send
// buffering against a flow-controlled transport — the transport-level
// alternative to the paper's program-level control.
func BenchmarkSendWindowBackpressure(b *testing.B) {
	var unbounded, windowed ga.IslandResult
	for i := 0; i < b.N; i++ {
		cfg := gaBenchConfig(int64(i + 1))
		cfg.Mode = core.Async
		cfg.LoaderBps = 6e6 // congested: backpressure only matters on a loaded bus
		r1, err := ga.RunIsland(cfg)
		if err != nil {
			b.Fatal(err)
		}
		wcfg := cfg
		pc := defaultPVMWithWindow(4)
		wcfg.PVM = &pc
		r2, err := ga.RunIsland(wcfg)
		if err != nil {
			b.Fatal(err)
		}
		unbounded, windowed = r1, r2
	}
	// Per-frame mean bus wait: the unbounded transport lets the flood
	// pile onto the medium; the window paces senders instead.
	b.ReportMetric(unbounded.QueueDelay.Seconds()/float64(unbounded.Messages), "unbounded-wait-per-frame-secs")
	b.ReportMetric(windowed.QueueDelay.Seconds()/float64(windowed.Messages), "windowed-wait-per-frame-secs")
	b.ReportMetric(unbounded.Completion.Seconds(), "unbounded-completion-secs")
	b.ReportMetric(windowed.Completion.Seconds(), "windowed-completion-secs")
}

// BenchmarkExtensionSwitch reruns the Figure 2 comparison on the
// SP2-style crossbar switch — the paper's §4.1 expectation that the
// benefits carry (in reduced form) to faster interconnects. On the
// switch the network is no longer the bottleneck, so the Global_Read
// advantage shrinks to load-skew tolerance alone.
func BenchmarkExtensionSwitch(b *testing.B) {
	var syncS, grS float64
	for i := 0; i < b.N; i++ {
		seed := int64(i + 1)
		par := ga.DeJongParams()
		calib := ga.DefaultCalibration()
		serial := ga.RunSerial(functions.F1, par, par.N*8, 80, seed, calib)
		sw := netsim.DefaultSwitchConfig()
		base := ga.IslandConfig{
			Fn: functions.F1, Par: par, P: 8,
			FixedGens: 80, MinGens: 80, MaxGens: 320,
			Seed: seed, Calib: calib, Switch: &sw,
		}
		syncCfg := base
		syncCfg.Mode = core.Sync
		sr, err := ga.RunIsland(syncCfg)
		if err != nil {
			b.Fatal(err)
		}
		grCfg := base
		grCfg.Mode = core.NonStrict
		grCfg.Age = 10
		grCfg.Target = sr.Avg
		gr, err := ga.RunIsland(grCfg)
		if err != nil {
			b.Fatal(err)
		}
		syncS = serial.Time.Seconds() / sr.Completion.Seconds()
		grS = serial.Time.Seconds() / gr.Completion.Seconds()
	}
	b.ReportMetric(syncS, "switch-sync-speedup")
	b.ReportMetric(grS, "switch-gr10-speedup")
}

// BenchmarkExtensionLikelihoodWeighting compares the two serial
// approximate-inference algorithms under the paper's evidence setup.
func BenchmarkExtensionLikelihoodWeighting(b *testing.B) {
	bn := bayes.Table2Networks()[0]
	q := bayes.DefaultQuery(bn)
	calib := bayes.DefaultCalibration()
	var lsIters, lwIters int64
	for i := 0; i < b.N; i++ {
		seed := int64(i + 1)
		ls := bayes.InferSerial(bn, q, 0.02, seed, calib, 200000)
		lw := bayes.InferSerialLW(bn, q, 0.02, seed, calib, 200000)
		lsIters, lwIters = ls.Iters, lw.Iters
	}
	b.ReportMetric(float64(lsIters), "logic-sampling-iters")
	b.ReportMetric(float64(lwIters), "likelihood-weighting-iters")
}

// BenchmarkAblationMigration sweeps the island GA's migration topology
// and interval (§3.1 names interval, rate and topology as the knobs).
func BenchmarkAblationMigration(b *testing.B) {
	var bcast, ring, sparse ga.IslandResult
	for i := 0; i < b.N; i++ {
		cfg := gaBenchConfig(int64(i + 1))
		r1, err := ga.RunIsland(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ringCfg := cfg
		ringCfg.Topology = ga.Ring
		r2, err := ga.RunIsland(ringCfg)
		if err != nil {
			b.Fatal(err)
		}
		sparseCfg := cfg
		sparseCfg.Interval = 5
		r3, err := ga.RunIsland(sparseCfg)
		if err != nil {
			b.Fatal(err)
		}
		bcast, ring, sparse = r1, r2, r3
	}
	b.ReportMetric(float64(bcast.Messages), "broadcast-msgs")
	b.ReportMetric(float64(ring.Messages), "ring-msgs")
	b.ReportMetric(float64(sparse.Messages), "interval5-msgs")
	b.ReportMetric(bcast.Completion.Seconds(), "broadcast-secs")
	b.ReportMetric(ring.Completion.Seconds(), "ring-secs")
}
