// Command nscc-graph runs the delayed asynchronous iterative graph
// experiment: PageRank and Bellman-Ford SSSP partitioned across
// simulated cluster nodes, compared across the coherence disciplines
// (barrier-sync, fully asynchronous, and Global_Read at every sweep
// age) against the sequential oracle.
//
// Usage:
//
//	nscc-graph [-topo ring:48,random:n=48,m=96,seed=7,...] [-edges FILE]
//	           [-procs N] [-trials N] [-seed N] [-workers N] [-csv DIR]
//	           [-cache-dir DIR] [-resume] [-http :8080]
//	           [-faults plan.json] [-reliable] [-read-timeout 50ms]
//	           [-loss P] [-simrace]
//
// Result tables go to stdout and are byte-identical at any worker
// count and across cache resumes; timing and cache accounting go to
// stderr. -cache-dir/-resume journal completed cells crash-safely, so
// a killed sweep restarts without recomputing finished work.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"nscc/internal/ckpt"
	"nscc/internal/exper"
	"nscc/internal/faults"
	"nscc/internal/graph"
	"nscc/internal/obs"
	"nscc/internal/sim"
)

func main() {
	var (
		topo     = flag.String("topo", "", "comma-separated topology specs (ring:N / random:n=N,m=M,seed=S / clustered:n=N,k=K,seed=S); default the standard three-topology matrix")
		edgesF   = flag.String("edges", "", "load one topology from this edge-list file instead of -topo")
		procsN   = flag.Int("procs", 4, "partitions (simulated processors) per run")
		trials   = flag.Int("trials", 0, "override trial count")
		seed     = flag.Int64("seed", 0, "override base seed")
		csvDir   = flag.String("csv", "", "also write results as CSV files into this directory")
		useSw    = flag.Bool("switch", false, "run on the SP2-style crossbar switch instead of the shared Ethernet")
		workers  = flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
		cacheDir = flag.String("cache-dir", "", "journal every completed sweep cell into a crash-safe journal under this directory")
		resume   = flag.Bool("resume", false, "replay cells already journaled in -cache-dir instead of recomputing them (requires -cache-dir)")
		faultsF  = flag.String("faults", "", "apply the fault plan in this JSON file to every simulated cluster")
		reliable = flag.Bool("reliable", false, "use sequence-numbered ack/retransmit message delivery")
		readTo   = flag.Duration("read-timeout", 0, "bound Global_Read blocking in virtual time (e.g. 50ms; 0 = wait forever)")
		lossProb = flag.Float64("loss", 0, "override the Ethernet model's per-frame loss probability")
		simRace  = flag.Bool("simrace", false, "classify every cross-process read with the simulated-time race checker (adds race columns to the CSV)")
		httpAddr = flag.String("http", "", "serve the live status page, OpenMetrics /metrics, and /debug/pprof on this address; strictly observer-side")
	)
	flag.Parse()

	var srv *obs.Server
	if *httpAddr != "" {
		var err error
		srv, err = obs.Start(*httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "-- live status on http://%s/ (/metrics, /debug/pprof/)\n", srv.Addr())
	}

	opts := exper.Quick()
	if *trials > 0 {
		opts.Trials = *trials
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	opts.UseSwitch = *useSw
	opts.Workers = *workers
	if *faultsF != "" {
		plan, err := faults.LoadFile(*faultsF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-faults: %v\n", err)
			os.Exit(2)
		}
		opts.Faults = plan
	}
	opts.Reliable = *reliable
	opts.ReadTimeout = sim.Duration(readTo.Nanoseconds())
	if *lossProb < 0 || *lossProb > 1 {
		fmt.Fprintln(os.Stderr, "-loss must be in [0,1]")
		os.Exit(2)
	}
	opts.LossProb = *lossProb
	opts.SimRace = *simRace
	if *resume && *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "-resume requires -cache-dir")
		os.Exit(2)
	}
	var store *ckpt.Store
	if *cacheDir != "" {
		store = ckpt.NewStore(*cacheDir, *resume)
		opts.Ckpt = store
	}
	if srv != nil {
		opts.Progress = srv
	}

	var specs []string
	switch {
	case *edgesF != "" && *topo != "":
		fmt.Fprintln(os.Stderr, "-edges and -topo are mutually exclusive")
		os.Exit(2)
	case *edgesF != "":
		// A file-based topology runs the direct one-graph report (no
		// cell cache — the journal keys on spec strings, not file
		// contents).
		data, err := os.ReadFile(*edgesF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-edges: %v\n", err)
			os.Exit(2)
		}
		g, err := graph.ParseEdgeList(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-edges: %v\n", err)
			os.Exit(2)
		}
		if err := edgeListReport(g, *edgesF, *procsN, opts); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	case *topo != "":
		for _, s := range splitSpecs(*topo) {
			if _, err := graph.ParseTopoSpec(s); err != nil {
				fmt.Fprintf(os.Stderr, "-topo: %v\n", err)
				os.Exit(2)
			}
			specs = append(specs, s)
		}
	}

	cells := exper.GraphSweepCells(opts, len(specs))
	if specs == nil {
		cells = exper.GraphSweepCells(opts, len(exper.GraphSweepSpecs))
	}
	fmt.Println("== Graph sweep ==")
	start := time.Now() //nscc:wallclock -- host-side cells/sec meter, not simulated time
	rows, err := exper.GraphSweep(os.Stdout, opts, specs, *procsN)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wall := time.Since(start) //nscc:wallclock -- host-side cells/sec meter, not simulated time
	fmt.Fprintf(os.Stderr, "-- graphsweep: %d cells in %.2fs (%.1f cells/sec)\n",
		cells, wall.Seconds(), float64(cells)/wall.Seconds())

	if err := writeCSV(*csvDir, "graphsweep.csv", func(w io.Writer) error {
		return exper.WriteGraphRowsCSV(w, rows)
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if store != nil {
		c := store.Counters()
		if srv != nil {
			srv.PublishCache(c)
		}
		fmt.Fprintf(os.Stderr, "-- cache: %d hits, %d misses, %d invalidated, %d torn (dir=%s)\n",
			c.Hits, c.Misses, c.Invalidated, c.TornRecords, store.Dir())
		if err := store.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// edgeListReport runs every variant once on a file-loaded graph and
// prints the per-variant comparison against the sequential oracle.
func edgeListReport(g *graph.Graph, name string, p int, opts exper.Options) error {
	calib := graph.DefaultCalibration()
	const maxSteps = 4000
	for _, algo := range graph.Algos {
		seq := graph.RunSequential(g, algo, 0, maxSteps, calib)
		fmt.Printf("%s %s: n=%d m=%d, sequential %d iters\n", name, algo, g.N, g.M(), seq.Iters)
		fmt.Printf("%8s %9s %10s %9s %5s %10s\n", "variant", "speedup", "supersteps", "max_diff", "conv", "completion")
		for _, v := range exper.Variants() {
			cfg := graph.Config{
				G: g, Algo: algo, P: p,
				Mode: v.Mode, Age: v.Age,
				MaxSupersteps: maxSteps,
				Seed:          opts.Seed,
				Calib:         calib,
				Faults:        opts.Faults,
				Reliable:      opts.Reliable,
				ReadTimeout:   opts.ReadTimeout,
				RaceCheck:     opts.SimRace,
			}
			r, err := graph.Run(cfg)
			if err != nil {
				return fmt.Errorf("%s %s: %w", algo, v, err)
			}
			var steps int64
			for _, n := range r.Supersteps {
				steps += n
			}
			fmt.Printf("%8s %9.2f %10.1f %9.2g %5v %10v\n",
				v, seq.Time.Seconds()/r.Completion.Seconds(), float64(steps)/float64(p),
				graph.MaxDiff(r.Values, seq.Values), r.Converged, r.Completion)
		}
		fmt.Println()
	}
	return nil
}

// splitSpecs splits the -topo flag on commas that separate specs, not
// the commas inside a keyed spec: a new spec starts wherever a comma is
// followed by a known kind prefix.
func splitSpecs(s string) []string {
	var specs []string
	cur := ""
	for _, part := range strings.Split(s, ",") {
		trimmed := strings.TrimSpace(part)
		isStart := strings.HasPrefix(trimmed, "ring:") ||
			strings.HasPrefix(trimmed, "random:") ||
			strings.HasPrefix(trimmed, "clustered:")
		if cur == "" || isStart {
			if cur != "" {
				specs = append(specs, cur)
			}
			cur = trimmed
		} else {
			cur += "," + trimmed
		}
	}
	if cur != "" {
		specs = append(specs, cur)
	}
	return specs
}

// writeCSV writes one CSV artifact into dir (no-op when dir is empty)
// through the atomic writer.
func writeCSV(dir, name string, fill func(io.Writer) error) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	f, err := ckpt.CreateAtomic(path)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Abort()
		return err
	}
	if err := f.Commit(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
