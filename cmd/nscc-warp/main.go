// Command nscc-warp visualizes the paper's warp network-load metric
// (§4.3) over time: it runs an island-GA configuration under each
// coherence discipline and renders each run's per-window warp as a
// sparkline, making the onset of network instability under uncontrolled
// asynchrony directly visible.
//
//	nscc-warp -procs 16 -gens 150 [-load 2e6]
//	          [-trace-out warp.trace.json] [-metrics-out warp.metrics.json] [-http :8080]
//
// -trace-out records the gr(age=10) run (the representative bounded-
// staleness configuration) as Chrome trace_event JSON; -metrics-out
// writes every run's telemetry — including the windowed simulated-time
// series — as one JSON object keyed by run name.
package main

import (
	"flag"
	"fmt"
	"os"

	"nscc/internal/core"
	"nscc/internal/faults"
	"nscc/internal/ga"
	"nscc/internal/ga/functions"
	"nscc/internal/metrics"
	"nscc/internal/obs"
	"nscc/internal/report"
	"nscc/internal/sim"
	"nscc/internal/trace"
	"nscc/internal/traceio"
	"nscc/internal/tseries"
)

func main() {
	var (
		fnNo     = flag.Int("func", 1, "test function number (1..8)")
		procs    = flag.Int("procs", 16, "number of islands / processors")
		gens     = flag.Int64("gens", 150, "generation budget")
		load     = flag.Float64("load", 0, "background loader rate in bits/s")
		seed     = flag.Int64("seed", 1, "random seed")
		faultsF  = flag.String("faults", "", "apply the fault plan in this JSON file to the simulated cluster")
		reliable = flag.Bool("reliable", false, "use sequence-numbered ack/retransmit message delivery")
		readTo   = flag.Duration("read-timeout", 0, "bound Global_Read blocking in virtual time (e.g. 50ms; 0 = wait forever)")
		simRace  = flag.Bool("simrace", false, "classify every cross-process read with the simulated-time race checker")
		trOut    = flag.String("trace-out", "", "write the gr(age=10) run's Chrome trace_event JSON to this file")
		metOut   = flag.String("metrics-out", "", "write every run's telemetry JSON (keyed by run name) to this file")
		httpAddr = flag.String("http", "", "serve the live status page, OpenMetrics /metrics, and /debug/pprof on this address (e.g. :8080); strictly observer-side, results are unchanged")
	)
	flag.Parse()

	var srv *obs.Server
	if *httpAddr != "" {
		var err error
		srv, err = obs.Start(*httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "live status on http://%s/ (/metrics, /debug/pprof/)\n", srv.Addr())
	}

	fn := functions.ByNo(*fnNo)
	par := ga.DeJongParams()
	calib := ga.DefaultCalibration()
	base := ga.IslandConfig{
		Fn: fn, Par: par, P: *procs,
		FixedGens: *gens, MinGens: *gens, MaxGens: 4 * *gens,
		Seed: *seed, Calib: calib, LoaderBps: *load,
		Reliable:    *reliable,
		ReadTimeout: sim.Duration(readTo.Nanoseconds()),
		RaceCheck:   *simRace,
	}
	if *faultsF != "" {
		plan, err := faults.LoadFile(*faultsF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-faults: %v\n", err)
			os.Exit(2)
		}
		base.Faults = plan
	}

	// Series recording (and the telemetry artifact) only when the data
	// leaves the process.
	record := *metOut != "" || srv != nil
	telem := map[string]*metrics.Telemetry{}
	publish := func(name string, r ga.IslandResult) {
		if !record {
			return
		}
		telem[name] = r.Telemetry
		if srv != nil {
			srv.PublishTelemetry(name, r.Telemetry)
		}
	}

	syncCfg := base
	syncCfg.Mode = core.Sync
	if record {
		syncCfg.Series = tseries.NewSet(tseries.DefaultWindow)
	}
	syncRes, err := ga.RunIsland(syncCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	target := syncRes.Avg
	publish("sync", syncRes)

	var rec *trace.Recorder

	fmt.Printf("warp over time (100 ms windows; scale 1..3, ▁ = stable, █ = load growing fast)\n\n")
	show("sync", syncRes)
	bars := []report.Bar{{Label: "sync", Value: syncRes.Completion.Seconds()}}
	for _, v := range []struct {
		name string
		mode core.Mode
		age  int64
	}{
		{"async", core.Async, 0},
		{"gr(age=10)", core.NonStrict, 10},
		{"gr(age=30)", core.NonStrict, 30},
	} {
		cfg := base
		cfg.Mode = v.mode
		cfg.Age = v.age
		cfg.Target = target
		if record {
			cfg.Series = tseries.NewSet(tseries.DefaultWindow)
		}
		if *trOut != "" && v.name == "gr(age=10)" {
			rec = trace.NewRecorder()
			cfg.Tracer = rec
		}
		res, err := ga.RunIsland(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		publish(v.name, res)
		show(v.name, res)
		bars = append(bars, report.Bar{Label: v.name, Value: res.Completion.Seconds()})
	}

	fmt.Println("\ncompletion time in seconds (shorter is better):")
	fmt.Print(report.BarChart(bars, 48))

	if err := traceio.WriteTrace(*trOut, rec); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if rec != nil {
		fmt.Printf("wrote %s (%d events)\n", *trOut, rec.Len())
	}
	if *metOut != "" {
		if err := traceio.WriteMetrics(*metOut, telem); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *metOut)
	}
}

func show(name string, r ga.IslandResult) {
	spark := report.Sparkline(r.WarpWindows, 1, 3)
	if len(spark) > 72 {
		spark = spark[:72*3] // runes are 3 bytes; keep ~72 glyphs
	}
	fmt.Printf("%-11s mean=%.2f max=%.2f  %s\n", name, r.WarpMean, r.WarpMax, spark)
	if rt := r.Telemetry.Races; rt != nil {
		fmt.Printf("%-11s   simrace: reads=%d synchronized=%d tolerated-stale=%d unbounded=%d\n",
			"", rt.Reads, rt.Synchronized, rt.ToleratedStale, rt.Unbounded)
	}
}
