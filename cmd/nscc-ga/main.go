// Command nscc-ga runs a single island-GA configuration on the
// simulated cluster and prints its result, for exploring the design
// space interactively:
//
//	nscc-ga -func 1 -procs 8 -mode global_read -age 10 -gens 200 -load 2e6
package main

import (
	"flag"
	"fmt"
	"os"

	"nscc/internal/core"
	"nscc/internal/faults"
	"nscc/internal/ga"
	"nscc/internal/ga/functions"
	"nscc/internal/netsim"
	"nscc/internal/obs"
	"nscc/internal/sim"
	"nscc/internal/trace"
	"nscc/internal/traceio"
	"nscc/internal/tseries"
)

func main() {
	var (
		fnNo       = flag.Int("func", 1, "test function number (1..8, Table 1)")
		procs      = flag.Int("procs", 4, "number of islands / processors")
		mode       = flag.String("mode", "global_read", "sync, async, or global_read")
		age        = flag.Int64("age", 10, "Global_Read staleness bound (generations)")
		gens       = flag.Int64("gens", 200, "synchronous generations / quality-reference budget")
		load       = flag.Float64("load", 0, "background loader rate in bits/s (0 = unloaded)")
		seed       = flag.Int64("seed", 1, "random seed")
		window     = flag.Int("window", 0, "DSM write window (0 = unlimited); enables coalescing ablation")
		gray       = flag.Bool("gray", false, "use reflected Gray coding for chromosomes")
		topology   = flag.String("topology", "broadcast", "migration topology: broadcast, ring, gossip-ring, gossip-random, or gossip-clustered")
		interval   = flag.Int64("interval", 1, "migrate every N generations")
		swFabric   = flag.Bool("switch", false, "run on the SP2-style crossbar switch instead of the Ethernet")
		hierFabric = flag.Bool("hier", false, "run on the hierarchical rack/spine fabric (racks of shared buses behind store-and-forward uplinks)")
		rackSize   = flag.Int("rack-size", 0, "nodes per rack bus on the hierarchical fabric (0 = default 32)")
		dynAge     = flag.Bool("dynage", false, "adapt the Global_Read age at run time")
		trOut      = flag.String("trace-out", "", "write the run's Chrome trace_event JSON to this file")
		metOut     = flag.String("metrics-out", "", "write the run's telemetry JSON to this file")
		faultsF    = flag.String("faults", "", "apply the fault plan in this JSON file to the simulated cluster")
		reliable   = flag.Bool("reliable", false, "use sequence-numbered ack/retransmit message delivery")
		readTo     = flag.Duration("read-timeout", 0, "bound Global_Read blocking in virtual time (e.g. 50ms; 0 = wait forever)")
		simRace    = flag.Bool("simrace", false, "classify every cross-process read with the simulated-time race checker")
		raceOut    = flag.String("simrace-out", "", "write the per-location race report JSON to this file (requires -simrace; feed it to nscc-lint -simrace-report)")
		httpAddr   = flag.String("http", "", "serve the live status page, OpenMetrics /metrics, and /debug/pprof on this address (e.g. :8080); strictly observer-side, results are unchanged")
	)
	flag.Parse()

	if *raceOut != "" && !*simRace {
		fmt.Fprintln(os.Stderr, "-simrace-out requires -simrace")
		os.Exit(2)
	}

	var srv *obs.Server
	if *httpAddr != "" {
		var err error
		srv, err = obs.Start(*httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "live status on http://%s/ (/metrics, /debug/pprof/)\n", srv.Addr())
	}

	fn := functions.ByNo(*fnNo)
	par := ga.DeJongParams()
	par.Gray = *gray
	calib := ga.DefaultCalibration()

	serial := ga.RunSerial(fn, par, par.N**procs, *gens, *seed, calib)
	fmt.Printf("serial: time=%v best=%.6g avg=%.6g evals=%d\n",
		serial.Time, serial.Best, serial.Avg, serial.Evals)

	cfg := ga.IslandConfig{
		Fn: fn, Par: par, P: *procs,
		FixedGens: *gens, MinGens: *gens, MaxGens: 4 * *gens,
		Seed: *seed, Calib: calib, LoaderBps: *load,
		Interval:   *interval,
		DynamicAge: *dynAge,
		NodeOpts:   core.Options{Window: *window, Coalesce: *window > 0},
		Reliable:   *reliable,
		RaceCheck:  *simRace,
	}
	cfg.ReadTimeout = sim.Duration(readTo.Nanoseconds())
	if *faultsF != "" {
		plan, err := faults.LoadFile(*faultsF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-faults: %v\n", err)
			os.Exit(2)
		}
		cfg.Faults = plan
	}
	topo, err := ga.ParseTopology(*topology)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.Topology = topo
	if *swFabric {
		sw := netsim.DefaultSwitchConfig()
		cfg.Switch = &sw
	}
	if *hierFabric {
		h := netsim.DefaultHierConfig()
		if *rackSize > 0 {
			h.RackSize = *rackSize
		}
		cfg.Hier = &h
	}
	switch *mode {
	case "sync":
		cfg.Mode = core.Sync
	case "async":
		cfg.Mode = core.Async
	case "global_read":
		cfg.Mode = core.NonStrict
		cfg.Age = *age
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if cfg.Mode != core.Sync {
		// Quality target: the synchronous run's final population average.
		syncCfg := cfg
		syncCfg.Mode = core.Sync
		syncRes, err := ga.RunIsland(syncCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.Target = syncRes.Avg
		fmt.Printf("sync reference: time=%v avg=%.6g\n", syncRes.Completion, syncRes.Avg)
	}

	var rec *trace.Recorder
	if *trOut != "" {
		rec = trace.NewRecorder()
		cfg.Tracer = rec
	}
	if *metOut != "" || srv != nil {
		// Windowed series only matter when the telemetry leaves the
		// process (JSON artifact or the live endpoint).
		cfg.Series = tseries.NewSet(tseries.DefaultWindow)
	}
	res, err := ga.RunIsland(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if srv != nil {
		srv.PublishTelemetry("ga", res.Telemetry)
	}
	fmt.Printf("%s: completion=%v speedup=%.2f best=%.6g avg=%.6g gens=%v\n",
		*mode, res.Completion, serial.Time.Seconds()/res.Completion.Seconds(),
		res.Best, res.Avg, res.Gens)
	fmt.Printf("  optimum=%v reached-target=%v messages=%d bytes=%d\n",
		res.OptimumFound, res.ReachedTarget, res.Messages, res.NetBytes)
	fmt.Printf("  blocked=%d blocked-time=%v queue-delay=%v warp=%.2f coalesced=%d\n",
		res.Blocked, res.BlockedTime, res.QueueDelay, res.WarpMean, res.Coalesced)
	if rt := res.Telemetry.Races; rt != nil {
		fmt.Printf("  simrace: reads=%d synchronized=%d tolerated-stale=%d unbounded=%d max-lag=%d\n",
			rt.Reads, rt.Synchronized, rt.ToleratedStale, rt.Unbounded, rt.MaxLag)
	}
	if *raceOut != "" {
		if err := traceio.WriteMetrics(*raceOut, res.Telemetry.RaceReport()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *raceOut)
	}
	if err := traceio.WriteTrace(*trOut, rec); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if rec != nil {
		fmt.Printf("wrote %s (%d events)\n", *trOut, rec.Len())
	}
	if err := traceio.WriteMetrics(*metOut, res.Telemetry); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *metOut != "" {
		fmt.Printf("wrote %s\n", *metOut)
	}
}
