package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"nscc/internal/analysis"
)

// lint invokes run() against a testdata module, capturing the streams.
// Tests must not run in parallel: -C chdirs the process.
func lint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func abs(t *testing.T, rel string) string {
	t.Helper()
	p, err := filepath.Abs(rel)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCleanModuleExitsZero(t *testing.T) {
	code, stdout, stderr := lint(t, "-C", "testdata/clean", "./...")
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run wrote findings:\n%s", stdout)
	}
}

func TestFindingsExitOne(t *testing.T) {
	code, stdout, stderr := lint(t, "-C", "testdata/dirty", "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "wallclock") {
		t.Errorf("stdout lacks the wallclock finding:\n%s", stdout)
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Errorf("stderr lacks the findings summary:\n%s", stderr)
	}
}

func TestLoadErrorExitsTwo(t *testing.T) {
	code, stdout, stderr := lint(t, "-C", "testdata/broken", "./...")
	if code != 2 {
		t.Fatalf("exit %d, want 2\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stderr == "" {
		t.Error("load error produced no stderr diagnostics")
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	code, _, _ := lint(t, "-no-such-flag")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestJSONEnvelope(t *testing.T) {
	for _, tc := range []struct {
		dir      string
		code     int
		findings int
	}{
		{"testdata/clean", 0, 0},
		{"testdata/dirty", 1, 1},
	} {
		code, stdout, stderr := lint(t, "-C", tc.dir, "-json", "./...")
		if code != tc.code {
			t.Fatalf("%s: exit %d, want %d\nstderr:\n%s", tc.dir, code, tc.code, stderr)
		}
		var rep lintReport
		if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
			t.Fatalf("%s: bad JSON: %v\n%s", tc.dir, err, stdout)
		}
		if rep.Schema != lintSchema {
			t.Errorf("%s: schema %q, want %q", tc.dir, rep.Schema, lintSchema)
		}
		if rep.Findings == nil {
			t.Errorf("%s: findings is null, want []", tc.dir)
		}
		if len(rep.Findings) != tc.findings {
			t.Errorf("%s: %d findings, want %d: %v", tc.dir, len(rep.Findings), tc.findings, rep.Findings)
		}
	}
}

func TestAnalyzersListing(t *testing.T) {
	code, stdout, _ := lint(t, "-analyzers")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, a := range analysis.All() {
		if !strings.Contains(stdout, a.Name) {
			t.Errorf("listing lacks analyzer %s:\n%s", a.Name, stdout)
		}
	}
}

func TestReconcileUndischargedLocationFails(t *testing.T) {
	rep := abs(t, "testdata/race_hot.json")
	code, stdout, stderr := lint(t, "-C", "testdata/tolerant", "-simrace-report", rep, "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "reconcile") || !strings.Contains(stdout, `"hot"`) {
		t.Errorf("stdout lacks the reconcile finding for location hot:\n%s", stdout)
	}
	if !strings.Contains(stdout, "loc=hot") {
		t.Errorf("finding does not suggest the discharging annotation:\n%s", stdout)
	}
}

func TestReconcileDischargedLocationPasses(t *testing.T) {
	rep := abs(t, "testdata/race_cold.json")
	code, stdout, stderr := lint(t, "-C", "testdata/tolerant", "-simrace-report", rep, "./...")
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
}

func TestReconcileSchemaMismatchExitsTwo(t *testing.T) {
	rep := abs(t, "testdata/race_badschema.json")
	code, _, stderr := lint(t, "-C", "testdata/tolerant", "-simrace-report", rep, "./...")
	if code != 2 {
		t.Fatalf("exit %d, want 2\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "schema") {
		t.Errorf("stderr does not explain the schema mismatch:\n%s", stderr)
	}
}

func TestReconcileMissingReportExitsTwo(t *testing.T) {
	code, _, _ := lint(t, "-C", "testdata/tolerant", "-simrace-report", abs(t, "testdata/no_such.json"), "./...")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
