// Package dirty trips the wallclock analyzer: the exit-1 fixture.
package dirty

import "time"

// Stamp reads the host clock, which the determinism contract forbids.
func Stamp() int64 { return time.Now().UnixNano() }
