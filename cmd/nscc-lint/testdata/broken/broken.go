// Package broken does not parse: the exit-2 fixture.
package broken

func Oops( {
