// Package tolerant carries one per-location staleness discharge: the
// reconciliation fixtures run against it with race reports naming
// either the discharged location ("cold", passes) or an undischarged
// one ("hot", fails).
package tolerant

//nscc:tolerates-stale loc=cold -- order-free scratch aggregation; stale reads only delay convergence

// Sum is order-free accumulation, the shape that tolerates staleness.
func Sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
