module tolerantmod

go 1.22
