// Package clean holds no determinism violations: the exit-0 fixture.
package clean

// Add is pure arithmetic; nothing here trips any analyzer.
func Add(a, b int) int { return a + b }
