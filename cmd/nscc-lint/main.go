// Command nscc-lint enforces the repository's determinism contract: it
// runs the internal/analysis analyzer suite (wallclock, globalrand,
// rawconc, maporder, staleflow, commute, detguard, unuseddirective)
// over the given package patterns and exits nonzero if any finding
// survives the //nscc:<analyzer> directives.
//
// Usage:
//
//	nscc-lint [-C dir] [-json] [-simrace-report race.json] [packages]
//
// The default pattern is ./... relative to the module directory. Run
// it from inside the module (or point -C at it): the source importer
// resolves module-internal imports relative to the working directory.
//
// With -simrace-report, the per-location race classification a run
// wrote under -simrace-out is cross-checked against the static
// //nscc:tolerates-stale loc=<name> discharges: a location that raced
// with no staleness bound in force and carries no discharge is a
// finding.
//
// Exit status: 0 no findings, 1 findings reported, 2 the packages or
// the report could not be loaded.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"nscc/internal/analysis"
)

// lintSchema versions the -json output envelope.
const lintSchema = "nscc-lint/v1"

// lintReport is the -json output: a versioned envelope so consumers
// can detect shape changes, findings never null.
type lintReport struct {
	Schema   string                `json:"schema"`
	Findings []analysis.Diagnostic `json:"findings"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: parses args, lints, writes the
// report to stdout and errors to stderr, and returns the exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nscc-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit a versioned JSON report instead of text")
	list := fs.Bool("analyzers", false, "list the analyzers and exit")
	dir := fs.String("C", "", "change to this directory before loading packages")
	raceReport := fs.String("simrace-report", "",
		"cross-check this -simrace-out race report against the //nscc:tolerates-stale loc= discharges")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	if *dir != "" {
		// The source importer resolves module-internal imports relative
		// to the process working directory, so -C must really chdir.
		prev, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if err := os.Chdir(*dir); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		defer os.Chdir(prev)
	}

	pkgs, err := analysis.LoadPackages("", fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	diags := analysis.RunAnalyzers(pkgs, analysis.All())

	if *raceReport != "" {
		rep, err := analysis.LoadRaceReport(*raceReport)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		diags = append(diags, analysis.ReconcileRaceReport(pkgs, rep, *raceReport)...)
	}

	if *jsonOut {
		rep := lintReport{Schema: lintSchema, Findings: diags}
		if rep.Findings == nil {
			rep.Findings = []analysis.Diagnostic{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "nscc-lint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
