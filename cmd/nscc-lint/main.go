// Command nscc-lint enforces the repository's determinism contract: it
// runs the internal/analysis analyzer suite (wallclock, globalrand,
// rawconc, maporder) over the given package patterns and exits nonzero
// if any finding survives the //nscc:<analyzer> directives.
//
// Usage:
//
//	nscc-lint [-json] [packages]     (default ./...)
//
// Run it from inside the module: the source importer resolves
// module-internal imports relative to the working directory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"nscc/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text")
	list := flag.Bool("analyzers", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	pkgs, err := analysis.LoadPackages("", flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := analysis.RunAnalyzers(pkgs, analysis.All())

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "nscc-lint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
