// Command nscc-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	nscc-bench [-exp all|table1|table2|fig1|fig2|fig3|fig4|agesweep|scale|micro] [-profile quick|full]
//	           [-trials N] [-gens N] [-procs 2,4,8,16] [-funcs 1,2,...] [-seed N]
//	           [-nodes 64,256,1000] [-topologies broadcast,gossip-random]
//	           [-workers N] [-bench-out BENCH_name.json]
//	           [-cache-dir DIR] [-resume] [-http :8080]
//	           [-faults plan.json] [-reliable] [-read-timeout 50ms] [-loss P]
//
// The quick profile runs the full experimental structure at reduced
// trial counts and generation budgets; the full profile is paper scale
// (1000-generation synchronous GAs, 25 GA trials) and takes hours.
//
// Sweep cells fan out over a worker pool (-workers, default GOMAXPROCS);
// results are byte-identical at any worker count. -bench-out writes a
// BENCH_*.json snapshot with per-sweep wall-clock throughput and the
// standard DES microbenchmarks.
//
// -cache-dir journals every completed sweep cell into crash-safe,
// content-addressed per-sweep journals under DIR. A run killed at any
// point — even mid-write — can be restarted with -resume: journaled
// cells replay instantly, only the lost work re-runs, and the final
// artifacts are byte-identical to an uninterrupted run. Without
// -resume an existing cache is discarded and rebuilt; journals whose
// configuration fingerprint no longer matches the flags are
// invalidated automatically.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"nscc/internal/benchio"
	"nscc/internal/ckpt"
	"nscc/internal/exper"
	"nscc/internal/faults"
	"nscc/internal/ga"
	"nscc/internal/ga/functions"
	"nscc/internal/metrics"
	"nscc/internal/obs"
	"nscc/internal/runner"
	"nscc/internal/sim"
	"nscc/internal/trace"
	"nscc/internal/traceio"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: all, table1, table2, fig1, fig2, fig3, fig4, agesweep, scale, micro (microbenchmarks only, requires -bench-out)")
		profile  = flag.String("profile", "quick", "quick or full")
		trials   = flag.Int("trials", 0, "override trial count")
		gens     = flag.Int64("gens", 0, "override synchronous GA generations")
		procs    = flag.String("procs", "", "override processor counts, e.g. 2,4,8")
		funcs    = flag.String("funcs", "", "restrict GA functions, e.g. 1,5,7 (default all)")
		seed     = flag.Int64("seed", 0, "override base seed")
		csvDir   = flag.String("csv", "", "also write results as CSV files into this directory")
		useSw    = flag.Bool("switch", false, "run the GA experiments on the SP2-style crossbar switch")
		trOut    = flag.String("trace-out", "", "run the instrumented demo instead of the suite and write its Chrome trace_event JSON here")
		metOut   = flag.String("metrics-out", "", "run the instrumented demo instead of the suite and write its telemetry JSON here")
		workers  = flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
		nodesF   = flag.String("nodes", "", "scale sweep island counts, e.g. 64,256,1000,5000 (-exp scale; default 64,256,1000)")
		toposF   = flag.String("topologies", "", "scale sweep dissemination topologies, e.g. broadcast,gossip-random (-exp scale; default all)")
		benchOut = flag.String("bench-out", "", "write a BENCH_*.json performance snapshot to this path")
		cacheDir = flag.String("cache-dir", "", "journal every completed sweep cell into crash-safe per-sweep journals under this directory")
		resume   = flag.Bool("resume", false, "replay cells already journaled in -cache-dir instead of recomputing them (requires -cache-dir)")
		faultsF  = flag.String("faults", "", "apply the fault plan in this JSON file to every simulated cluster")
		reliable = flag.Bool("reliable", false, "use sequence-numbered ack/retransmit message delivery")
		readTo   = flag.Duration("read-timeout", 0, "bound Global_Read blocking in virtual time (e.g. 50ms; 0 = wait forever)")
		lossProb = flag.Float64("loss", 0, "override the Ethernet model's per-frame loss probability")
		simRace  = flag.Bool("simrace", false, "classify every cross-process read with the simulated-time race checker (adds race columns to the age sweep)")
		raceOut  = flag.String("simrace-out", "", "write the age sweep's merged per-location race report JSON to this file (requires -simrace and -exp agesweep; feed it to nscc-lint -simrace-report)")
		profOut  = flag.String("profile-out", "", "write host pprof profiles of the run to PREFIX.cpu.pprof and PREFIX.heap.pprof (profile-guided optimization input; results are unchanged)")
		httpAddr = flag.String("http", "", "serve the live status page, OpenMetrics /metrics, and /debug/pprof on this address (e.g. :8080); strictly observer-side, results are unchanged")
	)
	flag.Parse()

	if *profOut != "" {
		stop, err := startProfiles(*profOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer stop()
	}

	var srv *obs.Server
	if *httpAddr != "" {
		var err error
		srv, err = obs.Start(*httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "-- live status on http://%s/ (/metrics, /debug/pprof/)\n", srv.Addr())
	}

	opts := exper.Quick()
	if *profile == "full" {
		opts = exper.Full()
	} else if *profile != "quick" {
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}
	if *trials > 0 {
		opts.Trials = *trials
	}
	if *gens > 0 {
		opts.SyncGens = *gens
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	opts.UseSwitch = *useSw
	opts.Workers = *workers
	if *faultsF != "" {
		plan, err := faults.LoadFile(*faultsF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-faults: %v\n", err)
			os.Exit(2)
		}
		opts.Faults = plan
	}
	opts.Reliable = *reliable
	opts.ReadTimeout = sim.Duration(readTo.Nanoseconds())
	if *lossProb < 0 || *lossProb > 1 {
		fmt.Fprintf(os.Stderr, "-loss must be in [0,1]\n")
		os.Exit(2)
	}
	opts.LossProb = *lossProb
	opts.SimRace = *simRace
	if *raceOut != "" && !*simRace {
		fmt.Fprintln(os.Stderr, "-simrace-out requires -simrace")
		os.Exit(2)
	}
	if *resume && *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "-resume requires -cache-dir")
		os.Exit(2)
	}
	var store *ckpt.Store
	if *cacheDir != "" {
		store = ckpt.NewStore(*cacheDir, *resume)
		opts.Ckpt = store
	}
	if srv != nil {
		opts.Progress = srv
	}
	if *procs != "" {
		opts.Procs = nil
		for _, s := range strings.Split(*procs, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || p < 1 {
				fmt.Fprintf(os.Stderr, "bad -procs entry %q\n", s)
				os.Exit(2)
			}
			opts.Procs = append(opts.Procs, p)
		}
	}
	var fns []*functions.Function
	if *funcs != "" {
		for _, s := range strings.Split(*funcs, ",") {
			no, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || no < 1 || no > 8 {
				fmt.Fprintf(os.Stderr, "bad -funcs entry %q\n", s)
				os.Exit(2)
			}
			fns = append(fns, functions.ByNo(no))
		}
	}

	if *trOut != "" || *metOut != "" {
		// Tracing a whole experiment suite would produce gigabytes, so
		// the trace/metrics flags run the small instrumented demo
		// (exper.TraceRun) instead of the selected experiments.
		var rec *trace.Recorder
		var tr trace.Tracer
		if *trOut != "" {
			rec = trace.NewRecorder()
			tr = rec
		}
		tel, err := exper.TraceRun(os.Stdout, opts, tr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if srv != nil {
			srv.PublishTelemetry("ga", tel.GA)
			srv.PublishTelemetry("bayes", tel.Bayes)
		}
		if err := traceio.WriteTrace(*trOut, rec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *trOut != "" {
			fmt.Printf("wrote %s (%d events)\n", *trOut, rec.Len())
		}
		if err := traceio.WriteMetrics(*metOut, tel); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *metOut != "" {
			fmt.Printf("wrote %s\n", *metOut)
		}
		// The demo's windowed series as plottable CSV, one file per run.
		for _, out := range []struct {
			name   string
			series []metrics.SeriesSummary
		}{{"ga", tel.GA.Series}, {"bayes", tel.Bayes.Series}} {
			if len(out.series) == 0 {
				continue
			}
			series := out.series
			if err := writeCSV(*csvDir, out.name+"_series.csv", func(w io.Writer) error {
				return exper.WriteSeriesCSV(w, series)
			}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}

	snap := benchio.NewSnapshot(*exp, runner.Workers(opts.Workers))

	// run executes one experiment and reports its wall-clock shape.
	// cells is the sweep's pooled job count (0 for analytic reports,
	// which have nothing to parallelize and no throughput to report).
	run := func(name string, cells int, f func() error) {
		fmt.Printf("== %s ==\n", name)
		start := time.Now() //nscc:wallclock -- host-side cells/sec meter, not simulated time
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		wall := time.Since(start) //nscc:wallclock -- host-side cells/sec meter, not simulated time
		if cells > 0 {
			secs := wall.Seconds()
			snap.AddSweep(name, cells, secs)
			// Timing goes to stderr so stdout (the result tables) stays
			// byte-identical across worker counts.
			fmt.Fprintf(os.Stderr, "-- %s: %d cells in %.2fs (%.1f cells/sec, workers=%d)\n",
				name, cells, secs, float64(cells)/secs, snap.Workers)
		}
		fmt.Println()
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	matched := false
	if want("table1") {
		matched = true
		run("Table 1", 0, func() error { exper.Table1(os.Stdout); return nil })
	}
	if want("table2") {
		matched = true
		run("Table 2", exper.Table2Cells(), func() error { _, err := exper.Table2(os.Stdout, opts); return err })
	}
	if want("fig1") {
		matched = true
		run("Figure 1", 0, func() error { exper.Figure1Report(os.Stdout, opts); return nil })
	}
	if want("fig2") {
		matched = true
		run("Figure 2", exper.Figure2Cells(opts, fns), func() error {
			res, err := exper.Figure2(os.Stdout, opts, fns)
			if err != nil {
				return err
			}
			return writeCSV(*csvDir, "figure2.csv", func(w io.Writer) error {
				rows := append(append([]exper.GARow{}, res.PerFunc...), res.Average...)
				return exper.WriteGARowsCSV(w, rows)
			})
		})
	}
	if want("fig3") {
		matched = true
		run("Figure 3", exper.Figure3Cells(opts), func() error {
			res, err := exper.Figure3(os.Stdout, opts)
			if err != nil {
				return err
			}
			return writeCSV(*csvDir, "figure3.csv", func(w io.Writer) error {
				return exper.WriteBayesRowsCSV(w, res)
			})
		})
	}
	if want("fig4") {
		matched = true
		run("Figure 4", exper.Figure4Cells(opts, fns), func() error {
			res, err := exper.Figure4(os.Stdout, opts, fns)
			if err != nil {
				return err
			}
			return writeCSV(*csvDir, "figure4.csv", func(w io.Writer) error {
				rows := append(append([]exper.GARow{}, res.BestCase...), res.Average...)
				return exper.WriteGARowsCSV(w, rows)
			})
		})
	}
	// The age sweep is not part of "all" (it is the extension study),
	// but a -bench-out snapshot of "all" includes it so the performance
	// baseline covers every pooled sweep the tool can run.
	if *exp == "agesweep" || (*exp == "all" && *benchOut != "") {
		matched = true
		loads := []float64{0, 1e6, 2e6}
		run("Age sweep", exper.AgeSweepCells(opts, len(loads)), func() error {
			fn := functions.F1
			if len(fns) > 0 {
				fn = fns[0]
			}
			p := 4
			if len(opts.Procs) > 0 {
				p = opts.Procs[len(opts.Procs)-1]
			}
			res, err := exper.AgeSweep(os.Stdout, opts, fn, p, loads)
			if err != nil {
				return err
			}
			if *raceOut != "" {
				totals := metrics.TotalsFromLocations(res.RaceLocations)
				rep := metrics.RaceReport{Schema: metrics.RaceReportSchema,
					Totals: totals, Locations: res.RaceLocations}
				if err := traceio.WriteMetrics(*raceOut, rep); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *raceOut)
			}
			return nil
		})
	}
	// The scale sweep is not part of "all": its 1000+-node cells cost
	// more than the whole paper reproduction, so it runs only on
	// explicit request.
	if *exp == "scale" {
		matched = true
		var nodes []int
		if *nodesF != "" {
			for _, s := range strings.Split(*nodesF, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil || n < 1 {
					fmt.Fprintf(os.Stderr, "bad -nodes entry %q\n", s)
					os.Exit(2)
				}
				nodes = append(nodes, n)
			}
		}
		var topos []ga.Topology
		if *toposF != "" {
			for _, s := range strings.Split(*toposF, ",") {
				topo, err := ga.ParseTopology(strings.TrimSpace(s))
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(2)
				}
				topos = append(topos, topo)
			}
		}
		run("Scale sweep", exper.ScaleSweepCells(opts, nodes, topos), func() error {
			rows, err := exper.ScaleSweep(os.Stdout, opts, nodes, topos)
			if err != nil {
				return err
			}
			return writeCSV(*csvDir, "scalesweep.csv", func(w io.Writer) error {
				return exper.WriteScaleRowsCSV(w, rows)
			})
		})
	}
	// -exp micro runs only the standard DES microbenchmarks — the
	// machine-independent allocs/op column is what CI's perf gate
	// compares against the committed baseline, so a fresh run must not
	// cost a whole sweep.
	if *exp == "micro" {
		matched = true
		if *benchOut == "" {
			fmt.Fprintln(os.Stderr, "-exp micro requires -bench-out (its only output is the snapshot)")
			os.Exit(2)
		}
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	if store != nil {
		// Cache accounting goes to stderr with the other meters so
		// stdout stays byte-identical between cached, resumed, and
		// uncached runs.
		c := store.Counters()
		if srv != nil {
			srv.PublishCache(c)
		}
		fmt.Fprintf(os.Stderr, "-- cache: %d hits, %d misses, %d invalidated, %d torn (dir=%s)\n",
			c.Hits, c.Misses, c.Invalidated, c.TornRecords, store.Dir())
		if err := store.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *benchOut != "" {
		fmt.Println("running microbenchmarks...")
		for _, m := range benchio.StandardMicros() {
			snap.RunMicro(m.Name, m.Fn)
		}
		if err := benchio.WriteFile(*benchOut, snap); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchOut)
	}
}

// startProfiles begins a CPU profile at PREFIX.cpu.pprof and returns a
// stop function that ends it and writes the final heap profile to
// PREFIX.heap.pprof. Host-side observability only: the simulated runs
// are untouched, so output bytes are identical with or without it.
func startProfiles(prefix string) (stop func(), err error) {
	cpuPath := prefix + ".cpu.pprof"
	cpuF, err := os.Create(cpuPath)
	if err != nil {
		return nil, fmt.Errorf("-profile-out: %w", err)
	}
	if err := pprof.StartCPUProfile(cpuF); err != nil {
		cpuF.Close()
		return nil, fmt.Errorf("-profile-out: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		if err := cpuF.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		heapPath := prefix + ".heap.pprof"
		heapF, err := os.Create(heapPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		runtime.GC() // settle the heap so the profile shows live objects, not transients
		if err := pprof.Lookup("allocs").WriteTo(heapF, 0); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		if err := heapF.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		fmt.Fprintf(os.Stderr, "-- profiles: %s, %s\n", cpuPath, heapPath)
	}, nil
}

// writeCSV writes one CSV artifact into dir (no-op when dir is empty)
// through the atomic writer: the file appears complete or not at all,
// and flush/close errors propagate instead of vanishing in a deferred
// Close.
func writeCSV(dir, name string, fill func(io.Writer) error) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	f, err := ckpt.CreateAtomic(path)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Abort()
		return err
	}
	if err := f.Commit(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
