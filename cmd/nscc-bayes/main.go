// Command nscc-bayes runs a single parallel logic-sampling
// configuration on the simulated cluster and prints its result:
//
//	nscc-bayes -net Hailfinder -procs 2 -mode global_read -age 10
package main

import (
	"flag"
	"fmt"
	"os"

	"nscc/internal/bayes"
	"nscc/internal/core"
	"nscc/internal/faults"
	"nscc/internal/netsim"
	"nscc/internal/obs"
	"nscc/internal/sim"
	"nscc/internal/trace"
	"nscc/internal/traceio"
	"nscc/internal/tseries"
)

func main() {
	var (
		netName  = flag.String("net", "A", "belief network: A, AA, C, Hailfinder, or figure1")
		procs    = flag.Int("procs", 2, "number of processors")
		mode     = flag.String("mode", "global_read", "sync, async, or global_read")
		age      = flag.Int64("age", 10, "Global_Read staleness bound (iterations)")
		prec     = flag.Float64("prec", 0.01, "90% CI half-width stopping target")
		load     = flag.Float64("load", 0, "background loader rate in bits/s")
		seed     = flag.Int64("seed", 1, "random seed")
		maxIt    = flag.Int64("maxiters", 200000, "iteration safety cap")
		randDef  = flag.Bool("randdefaults", false, "ablation: arbitrary default values instead of most-probable")
		algo     = flag.String("algo", "ls", "serial baseline algorithm: ls (logic sampling) or lw (likelihood weighting)")
		swFabric = flag.Bool("switch", false, "run on the SP2-style crossbar switch instead of the Ethernet")
		batch    = flag.Int64("batch", 0, "update-batching depth (0 = mode default)")
		trOut    = flag.String("trace-out", "", "write the run's Chrome trace_event JSON to this file")
		metOut   = flag.String("metrics-out", "", "write the run's telemetry JSON to this file")
		faultsF  = flag.String("faults", "", "apply the fault plan in this JSON file to the simulated cluster")
		reliable = flag.Bool("reliable", false, "use sequence-numbered ack/retransmit message delivery")
		readTo   = flag.Duration("read-timeout", 0, "bound Global_Read blocking in virtual time (e.g. 50ms; 0 = wait forever)")
		simRace  = flag.Bool("simrace", false, "classify every cross-process read with the simulated-time race checker")
		httpAddr = flag.String("http", "", "serve the live status page, OpenMetrics /metrics, and /debug/pprof on this address (e.g. :8080); strictly observer-side, results are unchanged")
	)
	flag.Parse()

	var srv *obs.Server
	if *httpAddr != "" {
		var err error
		srv, err = obs.Start(*httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "live status on http://%s/ (/metrics, /debug/pprof/)\n", srv.Addr())
	}

	var bn *bayes.Network
	if *netName == "figure1" {
		bn = bayes.Figure1()
	} else {
		for _, cand := range bayes.Table2Networks() {
			if cand.Name == *netName {
				bn = cand
			}
		}
	}
	if bn == nil {
		fmt.Fprintf(os.Stderr, "unknown network %q\n", *netName)
		os.Exit(2)
	}
	q := bayes.DefaultQuery(bn)
	calib := bayes.DefaultCalibration()

	serial := bayes.InferSerial(bn, q, *prec, *seed, calib, *maxIt)
	switch *algo {
	case "ls":
		fmt.Printf("serial (logic sampling): time=%v prob=%.4f (+-%.4f) iters=%d accepted=%d\n",
			serial.Time, serial.Prob, serial.HalfWidth, serial.Iters, serial.Accepted)
	case "lw":
		lw := bayes.InferSerialLW(bn, q, *prec, *seed, calib, *maxIt)
		fmt.Printf("serial (likelihood weighting): time=%v prob=%.4f (+-%.4f) iters=%d effN=%.0f\n",
			lw.Time, lw.Prob, lw.HalfWidth, lw.Iters, lw.EffN)
		fmt.Printf("serial (logic sampling):       time=%v prob=%.4f (+-%.4f) iters=%d\n",
			serial.Time, serial.Prob, serial.HalfWidth, serial.Iters)
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algo)
		os.Exit(2)
	}

	cfg := bayes.ParallelConfig{
		Net: bn, Query: q, P: *procs,
		Age: *age, Precision: *prec, MaxIters: *maxIt,
		Seed: *seed, Calib: calib, LoaderBps: *load,
		RandomDefaults: *randDef,
		Batch:          *batch,
		Reliable:       *reliable,
		RaceCheck:      *simRace,
	}
	cfg.ReadTimeout = sim.Duration(readTo.Nanoseconds())
	if *faultsF != "" {
		plan, err := faults.LoadFile(*faultsF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-faults: %v\n", err)
			os.Exit(2)
		}
		cfg.Faults = plan
	}
	if *swFabric {
		sw := netsim.DefaultSwitchConfig()
		cfg.SwitchCfg = &sw
	}
	switch *mode {
	case "sync":
		cfg.Mode = core.Sync
	case "async":
		cfg.Mode = core.Async
	case "global_read":
		cfg.Mode = core.NonStrict
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	var rec *trace.Recorder
	if *trOut != "" {
		rec = trace.NewRecorder()
		cfg.Tracer = rec
	}
	if *metOut != "" || srv != nil {
		// Windowed series only matter when the telemetry leaves the
		// process (JSON artifact or the live endpoint).
		cfg.Series = tseries.NewSet(tseries.DefaultWindow)
	}
	res, err := bayes.RunParallel(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if srv != nil {
		srv.PublishTelemetry("bayes", res.Telemetry)
	}
	fmt.Printf("%s: completion=%v speedup=%.2f prob=%.4f (+-%.4f) iters=%d accepted=%d converged=%v\n",
		*mode, res.Completion, serial.Time.Seconds()/res.Completion.Seconds(),
		res.Prob, res.HalfWidth, res.Iters, res.Accepted, res.ReachedPrecision)
	fmt.Printf("  edge-cut=%d gambles=%d conflicts=%d rollbacks=%d replayed=%d\n",
		res.EdgeCut, res.Gambles, res.Conflicts, res.Rollbacks, res.Replayed)
	fmt.Printf("  messages=%d bytes=%d blocked=%d blocked-time=%v warp=%.2f\n",
		res.Messages, res.NetBytes, res.Blocked, res.BlockedTime, res.WarpMean)
	if rt := res.Telemetry.Races; rt != nil {
		fmt.Printf("  simrace: reads=%d synchronized=%d tolerated-stale=%d unbounded=%d max-lag=%d\n",
			rt.Reads, rt.Synchronized, rt.ToleratedStale, rt.Unbounded, rt.MaxLag)
	}
	if err := traceio.WriteTrace(*trOut, rec); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if rec != nil {
		fmt.Printf("wrote %s (%d events)\n", *trOut, rec.Len())
	}
	if err := traceio.WriteMetrics(*metOut, res.Telemetry); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *metOut != "" {
		fmt.Printf("wrote %s\n", *metOut)
	}
}
