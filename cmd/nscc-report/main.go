// Command nscc-report diffs two performance or telemetry snapshots and
// renders the deltas, exiting non-zero when a gated metric regressed —
// the CI perf gate.
//
// Usage:
//
//	nscc-report [-threshold 0.10] [-allocs-only] [-force] BASELINE.json CURRENT.json
//
// Both files may be BENCH_*.json snapshots (nscc-bench -bench-out) or
// telemetry JSON (-metrics-out from any tool: a single run, the
// nscc-bench trace demo's {ga, bayes} pair, or nscc-warp's per-run
// map).
//
// For BENCH snapshots the tool compares the shared microbenchmarks and
// sweeps, and fails (exit 1) when ns/op or allocs/op got more than
// -threshold worse. Time metrics are only comparable on the same
// machine class: when the GOOS/GOARCH/CPU stamps differ the tool
// refuses (exit 2) unless -allocs-only restricts the gate to the
// machine-independent allocs/op column or -force overrides.
//
// For telemetry files the tool prints side-by-side run deltas and
// before/after sparklines of the windowed simulated-time series;
// telemetry diffs are informational and never gate.
//
// Exit codes: 0 pass, 1 regression, 2 usage error or refused
// comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"nscc/internal/benchio"
	"nscc/internal/metrics"
	"nscc/internal/report"
)

func main() {
	var (
		threshold  = flag.Float64("threshold", 0.10, "fractional regression limit on gated metrics")
		allocsOnly = flag.Bool("allocs-only", false, "gate on allocs/op alone (machine-independent; permits cross-machine baselines)")
		force      = flag.Bool("force", false, "compare time metrics even across machine classes")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: nscc-report [-threshold F] [-allocs-only] [-force] BASELINE.json CURRENT.json")
		os.Exit(2)
	}
	basePath, curPath := flag.Arg(0), flag.Arg(1)

	baseSnap, errB := benchio.ReadFile(basePath)
	curSnap, errC := benchio.ReadFile(curPath)
	switch {
	case errB == nil && errC == nil:
		os.Exit(benchReport(baseSnap, curSnap, *threshold, *allocsOnly, *force))
	case errB == nil || errC == nil:
		fmt.Fprintf(os.Stderr, "nscc-report: %s and %s are different artifact kinds\n", basePath, curPath)
		os.Exit(2)
	}

	baseTel, err := readTelemetry(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nscc-report: %v\n", err)
		os.Exit(2)
	}
	curTel, err := readTelemetry(curPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nscc-report: %v\n", err)
		os.Exit(2)
	}
	telemetryReport(baseTel, curTel)
}

// benchReport prints the BENCH snapshot diff and returns the exit code.
func benchReport(base, cur *benchio.Snapshot, threshold float64, allocsOnly, force bool) int {
	if msg := benchio.EnvMismatch(base, cur); msg != "" && !allocsOnly && !force {
		fmt.Fprintf(os.Stderr, "nscc-report: refusing time-metric comparison: %s\n", msg)
		fmt.Fprintf(os.Stderr, "use -allocs-only to gate on the machine-independent column, or -force to override\n")
		return 2
	}
	c := benchio.Compare(base, cur, benchio.CompareOptions{Threshold: threshold, AllocsOnly: allocsOnly})

	fmt.Printf("perf comparison: %s (%s/%s, %d CPUs) -> %s (%s/%s, %d CPUs)\n\n",
		base.Name, base.GOOS, base.GOARCH, base.CPUs,
		cur.Name, cur.GOOS, cur.GOARCH, cur.CPUs)
	fmt.Printf("%-28s %-14s %12s %12s %8s %s\n", "benchmark", "metric", "before", "after", "change", "gate")
	for _, d := range c.Deltas {
		gate := ""
		if d.Gated {
			gate = "gated"
		}
		flag := ""
		if d.Gated && d.Before > 0 && d.Change() > threshold {
			flag = "  <-- REGRESSION"
		}
		fmt.Printf("%-28s %-14s %12.4g %12.4g %+7.1f%% %-5s%s\n",
			d.Name, d.Metric, d.Before, d.After, d.Change()*100, gate, flag)
	}
	for _, n := range c.OnlyBase {
		fmt.Printf("%-28s only in baseline (dropped or renamed)\n", n)
	}
	for _, n := range c.OnlyCur {
		fmt.Printf("%-28s only in current (new benchmark, no baseline)\n", n)
	}

	if len(c.Regressions) > 0 {
		fmt.Printf("\n%d metric(s) regressed beyond %.0f%%:\n", len(c.Regressions), threshold*100)
		var bars []report.Bar
		for _, d := range c.Regressions {
			fmt.Printf("  %s %s: %.4g -> %.4g (%+.1f%%)\n", d.Name, d.Metric, d.Before, d.After, d.Change()*100)
			bars = append(bars, report.Bar{Label: d.Name + " " + d.Metric, Value: d.Change() * 100})
		}
		fmt.Print(report.BarChart(bars, 40))
		return 1
	}
	fmt.Printf("\nno gated metric regressed beyond %.0f%%\n", threshold*100)
	return 0
}

// readTelemetry loads a -metrics-out artifact in any of its shapes,
// normalized to run-name -> telemetry.
func readTelemetry(path string) (map[string]*metrics.Telemetry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	// Multi-run map: nscc-warp's output and the trace demo's {ga, bayes}.
	var m map[string]*metrics.Telemetry
	if err := json.Unmarshal(data, &m); err == nil {
		ok := len(m) > 0
		for _, v := range m {
			if v == nil || (v.Variant == "" && v.CompletionSecs == 0 && len(v.Tasks) == 0) {
				ok = false
			}
		}
		if ok {
			return m, nil
		}
	}
	// Single run: nscc-ga / nscc-bayes -metrics-out.
	var t metrics.Telemetry
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if t.Variant == "" && len(t.Tasks) == 0 {
		return nil, fmt.Errorf("%s: not a telemetry artifact", path)
	}
	return map[string]*metrics.Telemetry{"run": &t}, nil
}

// telemetryReport prints side-by-side run deltas with before/after
// series sparklines (informational; telemetry never gates).
func telemetryReport(base, cur map[string]*metrics.Telemetry) {
	var names []string
	//nscc:maporder -- sort below launders the iteration order
	for name := range cur {
		if _, ok := base[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Println("no runs in common between the two telemetry files")
		return
	}
	for _, name := range names {
		b, c := base[name], cur[name]
		fmt.Printf("run %s: %s age=%d -> %s age=%d\n", name, b.Variant, b.Age, c.Variant, c.Age)
		row := func(label string, vb, vc float64) {
			change := ""
			if vb != 0 {
				change = fmt.Sprintf("%+.1f%%", (vc/vb-1)*100)
			}
			fmt.Printf("  %-24s %12.4g %12.4g %8s\n", label, vb, vc, change)
		}
		row("completion_secs", b.CompletionSecs, c.CompletionSecs)
		row("warp_mean", b.WarpMean, c.WarpMean)
		row("warp_max", b.WarpMax, c.WarpMax)
		row("net_frames", float64(b.Net.Frames), float64(c.Net.Frames))
		row("net_bytes", float64(b.Net.Bytes), float64(c.Net.Bytes))
		row("net_utilization", b.Net.Utilization, c.Net.Utilization)
		row("blocked_secs", b.TotalBlockedSecs(), c.TotalBlockedSecs())
		row("staleness_violations", float64(b.StalenessViolations), float64(c.StalenessViolations))

		bser := map[string]metrics.SeriesSummary{}
		for _, s := range b.Series {
			bser[s.Name] = s
		}
		for _, s := range c.Series {
			sb, ok := bser[s.Name]
			if !ok {
				continue
			}
			fmt.Printf("  %-24s before %s\n", s.Name, report.AutoSparkline(sb.Values))
			fmt.Printf("  %-24s after  %s\n", "", report.AutoSparkline(s.Values))
		}
		fmt.Println()
	}
}
