package main

import (
	"os"
	"path/filepath"
	"testing"

	"nscc/internal/benchio"
	"nscc/internal/metrics"
	"nscc/internal/traceio"
)

func load(t *testing.T, name string) *benchio.Snapshot {
	t.Helper()
	s, err := benchio.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBenchReportPassesOnIdentical(t *testing.T) {
	base := load(t, "bench_base.json")
	if code := benchReport(base, base, 0.10, false, false); code != 0 {
		t.Errorf("identical snapshots: exit %d, want 0", code)
	}
}

func TestBenchReportFailsOnRegression(t *testing.T) {
	base := load(t, "bench_base.json")
	reg := load(t, "bench_regressed.json")
	// bench_regressed has engine/schedule +27% ns/op and +50% allocs/op.
	if code := benchReport(base, reg, 0.10, false, false); code != 1 {
		t.Errorf("regressed snapshot: exit %d, want 1", code)
	}
	// The reverse direction is an improvement, not a regression.
	if code := benchReport(reg, base, 0.10, false, false); code != 0 {
		t.Errorf("improvement flagged: exit %d, want 0", code)
	}
}

func TestBenchReportAllocsOnlyGateTripsOnAllocFixture(t *testing.T) {
	// bench_allocs_regressed differs from bench_base ONLY in
	// engine/schedule's allocs_per_op (2 -> 3); ns/op is identical, so
	// a failure here can come only from the machine-independent allocs
	// column — exactly what CI's cross-machine perf gate relies on.
	base := load(t, "bench_base.json")
	reg := load(t, "bench_allocs_regressed.json")
	if code := benchReport(base, reg, 0.10, true, false); code != 1 {
		t.Errorf("allocs-only gate on alloc regression: exit %d, want 1", code)
	}
	// The same pair passes when allocs recover (improvement direction).
	if code := benchReport(reg, base, 0.10, true, false); code != 0 {
		t.Errorf("allocs-only gate on alloc improvement: exit %d, want 0", code)
	}
}

func TestBenchReportRefusesCrossMachine(t *testing.T) {
	base := load(t, "bench_base.json")
	other := load(t, "bench_base.json")
	other.GOARCH = "arm64"
	if code := benchReport(base, other, 0.10, false, false); code != 2 {
		t.Errorf("cross-arch comparison: exit %d, want 2 (refusal)", code)
	}
	// -allocs-only restricts the gate to the machine-independent column.
	if code := benchReport(base, other, 0.10, true, false); code != 0 {
		t.Errorf("cross-arch allocs-only: exit %d, want 0", code)
	}
	// -force compares anyway.
	if code := benchReport(base, other, 0.10, false, true); code != 0 {
		t.Errorf("cross-arch forced: exit %d, want 0", code)
	}
	// allocs regressions still gate across machines.
	other.Micro[0].AllocsOp = 10
	if code := benchReport(base, other, 0.10, true, false); code != 1 {
		t.Errorf("cross-arch allocs regression: exit %d, want 1", code)
	}
}

func TestReadTelemetryShapes(t *testing.T) {
	dir := t.TempDir()

	single := filepath.Join(dir, "single.json")
	if err := traceio.WriteMetrics(single, &metrics.Telemetry{Variant: "gr(10)", CompletionSecs: 1}); err != nil {
		t.Fatal(err)
	}
	m, err := readTelemetry(single)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 || m["run"] == nil || m["run"].Variant != "gr(10)" {
		t.Errorf("single-run shape = %+v", m)
	}

	multi := filepath.Join(dir, "multi.json")
	if err := traceio.WriteMetrics(multi, map[string]*metrics.Telemetry{
		"sync":  {Variant: "sync", CompletionSecs: 2},
		"async": {Variant: "async", CompletionSecs: 1.5},
	}); err != nil {
		t.Fatal(err)
	}
	m, err = readTelemetry(multi)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m["sync"] == nil || m["async"] == nil {
		t.Errorf("multi-run shape = %+v", m)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"something":"else"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readTelemetry(bad); err == nil {
		t.Error("arbitrary JSON accepted as telemetry")
	}
}
