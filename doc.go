// Package nscc reproduces Tambat & Vajapeyam, "Non-Strict Cache
// Coherence: Exploiting Data-Race Tolerance in Emerging Applications"
// (ICPP 2000): the blocking Global_Read bounded-staleness read primitive
// for software DSMs, evaluated with island genetic algorithms and
// parallel logic-sampling inference in Bayesian belief networks on a
// simulated IBM SP2 multicomputer with a 10 Mbps shared Ethernet.
//
// The implementation lives under internal/ (see DESIGN.md for the
// module inventory); runnable entry points are cmd/nscc-bench (which
// regenerates every table and figure of the paper), cmd/nscc-ga,
// cmd/nscc-bayes, and the programs under examples/. The benchmarks in
// bench_test.go exercise one scaled-down instance of each experiment.
package nscc
