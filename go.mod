module nscc

go 1.22
