package ckpt

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// testSpace fingerprints a labeled configuration space.
func testSpace(label string) Key {
	fp := NewFingerprint("test/space")
	fp.Str("label", label)
	return fp.Sum()
}

// testKey fingerprints cell i.
func testKey(i int) Key {
	fp := NewFingerprint("test/cell")
	fp.I64("i", int64(i))
	return fp.Sum()
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.ckpt")
	space := testSpace("rt")
	j, err := OpenJournal(path, space, false)
	if err != nil {
		t.Fatal(err)
	}
	vals := [][]byte{[]byte(`{"v":1}`), []byte(`{"v":2.5}`), []byte(`{"v":"three"}`)}
	for i, v := range vals {
		if err := j.Put(testKey(i), v); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j, err = OpenJournal(path, space, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != len(vals) {
		t.Fatalf("recovered %d records, want %d", j.Len(), len(vals))
	}
	for i, want := range vals {
		got, ok := j.Get(testKey(i))
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("record %d: got %q ok=%v, want %q", i, got, ok, want)
		}
	}
	if _, ok := j.Get(testKey(99)); ok {
		t.Fatal("phantom hit for unknown key")
	}
	c := j.Counters()
	if c.Hits != int64(len(vals)) || c.Misses != 1 || c.TornRecords != 0 || c.Invalidated != 0 {
		t.Fatalf("counters %+v", c)
	}
}

func TestJournalResumeFalseDiscards(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.ckpt")
	space := testSpace("fresh")
	j, err := OpenJournal(path, space, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Put(testKey(0), []byte("x")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Same space, but resume not requested: the cache must start empty.
	j, err = OpenJournal(path, space, false)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Fatalf("fresh open kept %d records", j.Len())
	}
	j.Close()

	// And the reset is on disk, not just in memory.
	j, err = OpenJournal(path, space, true)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Fatalf("reset journal still holds %d records on disk", j.Len())
	}
	j.Close()
}

func TestJournalSpaceMismatchInvalidates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.ckpt")
	j, err := OpenJournal(path, testSpace("config-A"), false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Put(testKey(i), []byte("a")); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	j, err = OpenJournal(path, testSpace("config-B"), true)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Fatalf("stale records survived a space change: %d", j.Len())
	}
	if c := j.Counters(); c.Invalidated != 3 {
		t.Fatalf("invalidated %d, want 3", c.Invalidated)
	}
	if err := j.Put(testKey(0), []byte("b")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// The rewritten journal now belongs to config-B.
	j, err = OpenJournal(path, testSpace("config-B"), true)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := j.Get(testKey(0)); !ok || string(v) != "b" {
		t.Fatalf("got %q ok=%v after reset", v, ok)
	}
	j.Close()
}

// TestJournalTornTailEveryOffset is the kill-mid-write simulation: the
// journal file is truncated at every byte offset, and recovery must
// (a) never error, (b) keep exactly the records whose frames are
// complete, (c) count one torn record when partial tail bytes exist,
// and (d) leave the file appendable.
func TestJournalTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.ckpt")
	space := testSpace("torn")
	j, err := OpenJournal(ref, space, false)
	if err != nil {
		t.Fatal(err)
	}
	vals := [][]byte{[]byte(`{"v":1}`), []byte(`{"value":22}`), []byte(`{"v":333,"w":4}`)}
	for i, v := range vals {
		if err := j.Put(testKey(i), v); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries: end of the header frame, then each record's end.
	hEnd := int64(len(journalMagic)) + frameHdrLen + int64(len(Key{}))
	bounds := []int64{hEnd}
	off := hEnd
	for _, v := range vals {
		off += frameHdrLen + int64(len(Key{})) + int64(len(v))
		bounds = append(bounds, off)
	}
	if off != int64(len(data)) {
		t.Fatalf("boundary arithmetic off: %d vs file %d", off, len(data))
	}

	path := filepath.Join(dir, "torn.ckpt")
	for L := int64(0); L <= int64(len(data)); L++ {
		if err := os.WriteFile(path, data[:L], 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := OpenJournal(path, space, true)
		if err != nil {
			t.Fatalf("L=%d: recovery errored: %v", L, err)
		}
		// Complete records and torn-tail accounting expected at this cut.
		wantRecs, lastGood := 0, hEnd
		for _, b := range bounds[1:] {
			if b <= L {
				wantRecs++
				lastGood = b
			}
		}
		headerOK := L >= hEnd
		if !headerOK {
			wantRecs, lastGood = 0, 0
		}
		if j.Len() != wantRecs {
			t.Fatalf("L=%d: recovered %d records, want %d", L, j.Len(), wantRecs)
		}
		wantTorn := int64(0)
		if headerOK && lastGood < L {
			wantTorn = 1
		}
		if c := j.Counters(); c.TornRecords != wantTorn {
			t.Fatalf("L=%d: torn=%d, want %d", L, c.TornRecords, wantTorn)
		}
		for i := 0; i < wantRecs; i++ {
			v, ok := j.Get(testKey(i))
			if !ok || !bytes.Equal(v, vals[i]) {
				t.Fatalf("L=%d: record %d corrupted by recovery: %q ok=%v", L, i, v, ok)
			}
		}
		// The recovered journal must accept and persist new records.
		if err := j.Put(testKey(100), []byte("appended")); err != nil {
			t.Fatalf("L=%d: append after recovery: %v", L, err)
		}
		j.Close()
		j2, err := OpenJournal(path, space, true)
		if err != nil {
			t.Fatalf("L=%d: reopen after append: %v", L, err)
		}
		if j2.Len() != wantRecs+1 {
			t.Fatalf("L=%d: reopen holds %d records, want %d", L, j2.Len(), wantRecs+1)
		}
		j2.Close()
	}
}

func TestJournalCorruptRecordDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.ckpt")
	space := testSpace("crc")
	j, err := OpenJournal(path, space, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := j.Put(testKey(i), []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Flip a byte in the last record's payload: the CRC must reject it.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j, err = OpenJournal(path, space, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 1 {
		t.Fatalf("recovered %d records, want 1 (corrupt tail dropped)", j.Len())
	}
	if c := j.Counters(); c.TornRecords != 1 {
		t.Fatalf("torn=%d, want 1", c.TornRecords)
	}
	if _, ok := j.Get(testKey(0)); !ok {
		t.Fatal("intact first record lost")
	}
}

func TestStoreJournalsAndCounters(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir, false)
	if s.Dir() != dir {
		t.Fatalf("dir %q", s.Dir())
	}
	a, err := s.Journal("alpha", testSpace("A"))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s.Journal("alpha", testSpace("A"))
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a {
		t.Fatal("same-name journal not memoized")
	}
	if _, err := s.Journal("alpha", testSpace("B")); err == nil {
		t.Fatal("reopening a journal under a different space fingerprint did not error")
	}
	b, err := s.Journal("beta", testSpace("B"))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put(testKey(1), []byte("x")); err != nil {
		t.Fatal(err)
	}
	a.Get(testKey(1)) // hit on alpha
	b.Get(testKey(2)) // miss on beta
	if c := s.Counters(); c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("aggregated counters %+v", c)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alpha.ckpt", "beta.ckpt"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("journal file %s: %v", name, err)
		}
	}
}
