package ckpt

import (
	"os"
	"path/filepath"
	"testing"
)

// readFile fails the test on error so assertions stay one-liners.
func readFile(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// entryCount reports how many directory entries exist — any count above
// the expected artifacts means a leaked temp file.
func entryCount(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return len(entries)
}

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, path); got != "v1" {
		t.Fatalf("content %q", got)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Fatalf("mode %v, want 0644", fi.Mode().Perm())
	}
	// Overwrite replaces wholesale and leaves no temp debris.
	if err := WriteFileAtomic(path, []byte("version-two")); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, path); got != "version-two" {
		t.Fatalf("content after overwrite %q", got)
	}
	if n := entryCount(t, dir); n != 1 {
		t.Fatalf("%d entries in dir, want only the target", n)
	}
}

func TestAtomicStagedWriteInvisibleUntilCommit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.csv")
	if err := WriteFileAtomic(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	a, err := CreateAtomic(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write([]byte("new content, ")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write([]byte("two chunks")); err != nil {
		t.Fatal(err)
	}
	// Mid-write — the simulated crash window — the target still holds
	// the complete previous version.
	if got := readFile(t, path); got != "old" {
		t.Fatalf("target changed mid-write: %q", got)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, path); got != "new content, two chunks" {
		t.Fatalf("content after commit %q", got)
	}
	if err := a.Commit(); err == nil {
		t.Fatal("second Commit did not error")
	}
	if n := entryCount(t, dir); n != 1 {
		t.Fatalf("%d entries in dir, want only the target", n)
	}
}

func TestAtomicAbortKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.json")
	if err := WriteFileAtomic(path, []byte("good")); err != nil {
		t.Fatal(err)
	}
	a, err := CreateAtomic(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write([]byte("half-written junk")); err != nil {
		t.Fatal(err)
	}
	a.Abort()
	a.Abort() // idempotent
	if got := readFile(t, path); got != "good" {
		t.Fatalf("abort damaged target: %q", got)
	}
	if n := entryCount(t, dir); n != 1 {
		t.Fatalf("%d entries in dir after abort, want only the target", n)
	}
}

func TestAtomicCreatesNewFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fresh.txt")
	a, err := CreateAtomic(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("target exists before Commit")
	}
	if _, err := a.Write([]byte("born atomic")); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, path); got != "born atomic" {
		t.Fatalf("content %q", got)
	}
}

func TestAtomicMissingDirErrors(t *testing.T) {
	if _, err := CreateAtomic(filepath.Join(t.TempDir(), "no", "such", "dir", "f")); err == nil {
		t.Fatal("CreateAtomic in a missing directory did not error")
	}
}
