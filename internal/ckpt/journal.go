// Package ckpt makes long experiment sweeps crash-safe: a
// content-addressed result cache journaled to disk, plus the atomic
// artifact writer every output path in the repository shares.
//
// Each sweep cell's result is appended to a per-sweep journal as a
// CRC-framed record keyed by a fingerprint of the cell's coordinates
// and derived seed; the journal header carries a second fingerprint of
// the configuration space (config knobs plus schema version). On
// restart the journal is replayed: valid records satisfy their cells
// instantly, a torn tail record — the kill-mid-write case — is
// truncated away so only that cell re-runs, and a header fingerprint
// mismatch invalidates the whole journal. Because every cell is a
// fully seeded deterministic simulation, a resumed sweep's output is
// byte-identical to an uninterrupted run at any worker count.
package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"nscc/internal/metrics"
)

// journalMagic identifies (and versions) the journal file format.
const journalMagic = "NSCKPT1\n"

// frameHdrLen is the per-record frame header: uint32 LE payload
// length, uint32 LE CRC-32C of the payload.
const frameHdrLen = 8

// maxFrameLen bounds a single record so a corrupt length field cannot
// trigger a huge allocation during recovery.
const maxFrameLen = 1 << 30

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Journal is one sweep's crash-safe result cache: an append-only file
// of CRC-framed (key, value) records behind an in-memory index. All
// methods are safe for concurrent use by pool workers.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	index    map[Key][]byte
	counters metrics.CacheTelemetry
}

// OpenJournal opens (or creates) the journal at path for the
// configuration space identified by space.
//
// With resume=false any existing journal is discarded and a fresh one
// started. With resume=true an existing journal is recovered: records
// up to the first invalid frame are indexed, a torn tail is truncated
// in place (counted in TornRecords), and a journal whose header space
// fingerprint differs from space is invalidated wholesale (its record
// count lands in Invalidated).
func OpenJournal(path string, space Key, resume bool) (*Journal, error) {
	j := &Journal{path: path, index: make(map[Key][]byte)}
	fresh := true
	if resume {
		data, err := os.ReadFile(path)
		switch {
		case err == nil:
			validLen, spaceOK := j.load(data, space)
			if spaceOK {
				fresh = false
				if validLen < int64(len(data)) {
					j.counters.TornRecords++
					if err := os.Truncate(path, validLen); err != nil {
						return nil, fmt.Errorf("ckpt: truncate torn tail of %s: %w", path, err)
					}
				}
			}
		case !os.IsNotExist(err):
			return nil, fmt.Errorf("ckpt: read journal %s: %w", path, err)
		}
	}
	if fresh {
		j.index = make(map[Key][]byte)
		header := appendFrame([]byte(journalMagic), space[:])
		if err := WriteFileAtomic(path, header); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ckpt: open journal %s for append: %w", path, err)
	}
	j.f = f
	return j, nil
}

// load parses data, filling the index with every valid record. It
// returns the byte length of the valid prefix and whether the header's
// space fingerprint matched (false means the journal must be reset;
// the index is left empty and the discarded records are counted as
// invalidated).
func (j *Journal) load(data []byte, space Key) (validLen int64, spaceOK bool) {
	if len(data) < len(journalMagic) || string(data[:len(journalMagic)]) != journalMagic {
		return 0, false
	}
	off := int64(len(journalMagic))
	header, next, ok := parseFrame(data, off)
	if !ok || len(header) != len(space) {
		return 0, false
	}
	spaceOK = string(header) == string(space[:])
	off = next
	records := int64(0)
	for {
		payload, next, ok := parseFrame(data, off)
		if !ok {
			break
		}
		if len(payload) >= len(Key{}) {
			var k Key
			copy(k[:], payload)
			if spaceOK {
				j.index[k] = append([]byte(nil), payload[len(k):]...)
			}
		}
		records++
		off = next
	}
	if !spaceOK {
		j.counters.Invalidated += records
		return 0, false
	}
	return off, true
}

// parseFrame decodes the frame at off. ok is false when the frame is
// truncated or its CRC fails — i.e. everything from off on is a torn
// or corrupt tail.
func parseFrame(data []byte, off int64) (payload []byte, next int64, ok bool) {
	if off+frameHdrLen > int64(len(data)) {
		return nil, 0, false
	}
	n := int64(binary.LittleEndian.Uint32(data[off:]))
	sum := binary.LittleEndian.Uint32(data[off+4:])
	if n > maxFrameLen || off+frameHdrLen+n > int64(len(data)) {
		return nil, 0, false
	}
	payload = data[off+frameHdrLen : off+frameHdrLen+n]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, 0, false
	}
	return payload, off + frameHdrLen + n, true
}

// appendFrame appends one length+CRC framed payload to buf.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// Get returns the cached value for key, counting the hit or miss.
func (j *Journal) Get(key Key) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	v, ok := j.index[key]
	if ok {
		j.counters.Hits++
	} else {
		j.counters.Misses++
	}
	return v, ok
}

// Put appends one (key, value) record and fsyncs it, so a completed
// cell survives any later crash. The frame is written with a single
// Write call; a kill mid-write leaves at worst one torn tail record,
// which the next OpenJournal truncates away.
func (j *Journal) Put(key Key, value []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	payload := make([]byte, 0, len(key)+len(value))
	payload = append(payload, key[:]...)
	payload = append(payload, value...)
	if _, err := j.f.Write(appendFrame(nil, payload)); err != nil {
		return fmt.Errorf("ckpt: append to %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("ckpt: sync %s: %w", j.path, err)
	}
	j.index[key] = append([]byte(nil), value...)
	return nil
}

// Len reports the number of cached cells.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.index)
}

// Counters snapshots the journal's hit/miss/invalidation accounting.
func (j *Journal) Counters() metrics.CacheTelemetry {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.counters
}

// Close syncs and closes the journal file, propagating both errors.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	f := j.f
	j.f = nil
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("ckpt: sync %s: %w", j.path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("ckpt: close %s: %w", j.path, err)
	}
	return nil
}

// Store manages the per-sweep journals of one cache directory and
// aggregates their counters. A nil *Store disables caching wherever
// one is accepted.
type Store struct {
	dir    string
	resume bool

	mu       sync.Mutex
	journals map[string]*Journal
	spaces   map[string]Key
	order    []string // open order, for deterministic aggregation
}

// NewStore roots a cache at dir. resume selects whether existing
// journals are recovered (see OpenJournal).
func NewStore(dir string, resume bool) *Store {
	return &Store{dir: dir, resume: resume, journals: make(map[string]*Journal), spaces: make(map[string]Key)}
}

// Dir reports the cache directory.
func (s *Store) Dir() string { return s.dir }

// Journal opens (once) the named sweep's journal under the store
// directory. A second open of the same name must present the same
// space fingerprint.
func (s *Store) Journal(name string, space Key) (*Journal, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.journals[name]; ok {
		if s.spaces[name] != space {
			return nil, fmt.Errorf("ckpt: journal %q reopened with a different space fingerprint (%s vs %s)",
				name, space, s.spaces[name])
		}
		return j, nil
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: create cache dir: %w", err)
	}
	j, err := OpenJournal(filepath.Join(s.dir, name+".ckpt"), space, s.resume)
	if err != nil {
		return nil, err
	}
	s.journals[name] = j
	s.spaces[name] = space
	s.order = append(s.order, name)
	return j, nil
}

// Counters sums the counters of every journal opened so far.
func (s *Store) Counters() metrics.CacheTelemetry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total metrics.CacheTelemetry
	for _, name := range s.order {
		total.Add(s.journals[name].Counters())
	}
	return total
}

// Close closes every journal in open order, returning the first error.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, name := range s.order {
		if err := s.journals[name].Close(); err != nil && first == nil {
			first = err
		}
	}
	s.journals = make(map[string]*Journal)
	s.order = nil
	return first
}
