package ckpt

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
)

// Key is a content-addressed cache key: the SHA-256 fingerprint of a
// cell's identity (its sweep coordinates and derived seed) or of a
// journal's configuration space (config knobs and schema version). Two
// runs compute the same Key exactly when the cached bytes are valid
// for both.
type Key [sha256.Size]byte

// String renders the short hex prefix used in logs and errors.
func (k Key) String() string { return hex.EncodeToString(k[:8]) }

// Fingerprint accumulates named fields into a Key. Every field is
// written as "name=value\n", so the digest is sensitive to field
// order, arity, and the domain label — distinct field sets cannot
// collide by concatenation tricks.
type Fingerprint struct {
	h hash.Hash
}

// NewFingerprint starts a fingerprint in the given domain (a constant
// label separating unrelated key spaces, e.g. cell keys from journal
// space keys).
func NewFingerprint(domain string) *Fingerprint {
	fp := &Fingerprint{h: sha256.New()}
	fmt.Fprintf(fp.h, "domain=%s\n", domain)
	return fp
}

// Str folds in a string field.
func (fp *Fingerprint) Str(name, v string) {
	fmt.Fprintf(fp.h, "%s=%q\n", name, v)
}

// I64 folds in an integer field.
func (fp *Fingerprint) I64(name string, v int64) {
	fmt.Fprintf(fp.h, "%s=%d\n", name, v)
}

// F64 folds in a float field by its exact bit pattern (no formatting
// round-off can alias two different configs).
func (fp *Fingerprint) F64(name string, v float64) {
	fmt.Fprintf(fp.h, "%s=%#x\n", name, math.Float64bits(v))
}

// Bool folds in a boolean field.
func (fp *Fingerprint) Bool(name string, v bool) {
	fmt.Fprintf(fp.h, "%s=%t\n", name, v)
}

// Sum finalizes the Key. The Fingerprint may keep accumulating after
// a Sum (each Sum reflects the fields folded so far).
func (fp *Fingerprint) Sum() Key {
	var k Key
	fp.h.Sum(k[:0])
	return k
}
