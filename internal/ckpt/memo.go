package ckpt

import (
	"nscc/internal/trace"
)

// Memo adapts one sweep's journal to the runner pool's memoization
// hook (runner.Memo, satisfied structurally so ckpt stays independent
// of the pool): jobs are keyed by index, and the index→fingerprint
// mapping is owned by the sweep driver via the key function. An
// optional Tracer receives one instant per consulted cell
// ("cache_hit" / "cache_miss") on the ckpt track.
type Memo struct {
	j      *Journal
	key    func(int) Key
	tracer trace.Tracer
}

// Memo opens the named journal in the store and binds it to a job
// index → cell fingerprint mapping.
func (s *Store) Memo(name string, space Key, key func(int) Key, tr trace.Tracer) (*Memo, error) {
	j, err := s.Journal(name, space)
	if err != nil {
		return nil, err
	}
	return &Memo{j: j, key: key, tracer: tr}, nil
}

// Lookup consults the journal for job i's cached result.
func (m *Memo) Lookup(i int) ([]byte, bool) {
	data, ok := m.j.Get(m.key(i))
	if m.tracer != nil {
		name := "cache_miss"
		if ok {
			name = "cache_hit"
		}
		// Serialize emissions under the journal lock: pool workers call
		// Lookup concurrently, and Recorder is not itself locked.
		m.j.mu.Lock()
		m.tracer.Emit(trace.Event{
			Ph: trace.PhaseInstant, Pid: trace.PidCkpt, Tid: 0,
			Cat: "ckpt", Name: name, K1: "job", V1: int64(i),
		})
		m.j.mu.Unlock()
	}
	return data, ok
}

// Store journals job i's freshly computed result.
func (m *Memo) Store(i int, data []byte) error {
	return m.j.Put(m.key(i), data)
}
