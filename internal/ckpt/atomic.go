package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
)

// AtomicFile stages a write in a hidden temp file in the target's
// directory and publishes it with a rename, so the path either keeps
// its previous content or holds the complete new content — never a
// truncated intermediate. It is the one way any artifact in this
// repository (traces, metrics, BENCH_*.json, CSV figures, checkpoint
// journals on reset) reaches its final name.
//
// Unlike the bare os.Create + defer f.Close() idiom it replaces,
// Commit propagates every error on the write-back path: Sync (so a
// power cut after Commit returns cannot lose the content), Close
// (where buffered write-back errors surface), and the rename itself.
type AtomicFile struct {
	f    *os.File
	path string // final destination
	done bool   // Commit or Abort already ran
}

// CreateAtomic opens an atomic writer targeting path. The caller must
// finish with exactly one of Commit or Abort; until Commit, path is
// untouched.
func CreateAtomic(path string) (*AtomicFile, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("ckpt: create temp for %s: %w", path, err)
	}
	return &AtomicFile{f: f, path: path}, nil
}

// Write appends to the staged content (io.Writer).
func (a *AtomicFile) Write(p []byte) (int, error) { return a.f.Write(p) }

// Commit durably publishes the staged content at the target path:
// fsync, close (propagated), chmod to the conventional artifact mode,
// rename, and a best-effort directory sync so the rename itself
// survives a crash.
func (a *AtomicFile) Commit() error {
	if a.done {
		return fmt.Errorf("ckpt: Commit on finished atomic write of %s", a.path)
	}
	a.done = true
	tmp := a.f.Name()
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ckpt: sync %s: %w", a.path, err)
	}
	if err := a.f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: close %s: %w", a.path, err)
	}
	// CreateTemp opens 0600; artifacts are world-readable like
	// os.Create's 0666 & umask.
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: chmod %s: %w", a.path, err)
	}
	if err := os.Rename(tmp, a.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: publish %s: %w", a.path, err)
	}
	syncDir(filepath.Dir(a.path))
	return nil
}

// Abort discards the staged content, leaving the target path exactly
// as it was. Safe to call after a failed Commit (it becomes a no-op).
func (a *AtomicFile) Abort() {
	if a.done {
		return
	}
	a.done = true
	tmp := a.f.Name()
	a.f.Close()
	os.Remove(tmp)
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
// Best-effort: some filesystems reject directory fsync, and the
// content write itself has already been synced.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// WriteFileAtomic is the one-shot form: write data to path through an
// AtomicFile. The visible file is always either the previous version
// or the complete new one.
func WriteFileAtomic(path string, data []byte) error {
	a, err := CreateAtomic(path)
	if err != nil {
		return err
	}
	if _, err := a.Write(data); err != nil {
		a.Abort()
		return fmt.Errorf("ckpt: write %s: %w", path, err)
	}
	return a.Commit()
}
