package ckpt

import (
	"bytes"
	"testing"

	"nscc/internal/trace"
)

func TestMemoLookupStoreAndTrace(t *testing.T) {
	s := NewStore(t.TempDir(), false)
	rec := trace.NewRecorder()
	m, err := s.Memo("sweep", testSpace("memo"), testKey, rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Lookup(0); ok {
		t.Fatal("hit on an empty journal")
	}
	if err := m.Store(0, []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	v, ok := m.Lookup(0)
	if !ok || !bytes.Equal(v, []byte(`{"x":1}`)) {
		t.Fatalf("lookup after store: %q ok=%v", v, ok)
	}
	if c := s.Counters(); c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("counters %+v", c)
	}

	// Each consulted cell leaves one instant on the ckpt trace track.
	evs := rec.Events()
	if len(evs) != 2 {
		t.Fatalf("%d trace events, want 2", len(evs))
	}
	for i, wantName := range []string{"cache_miss", "cache_hit"} {
		ev := evs[i]
		if ev.Name != wantName || ev.Ph != trace.PhaseInstant || ev.Pid != trace.PidCkpt {
			t.Fatalf("event %d = %+v, want %s instant on ckpt track", i, ev, wantName)
		}
		if ev.Cat != "ckpt" || ev.K1 != "job" || ev.V1 != 0 {
			t.Fatalf("event %d payload = %+v", i, ev)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemoNilTracer(t *testing.T) {
	s := NewStore(t.TempDir(), false)
	m, err := s.Memo("sweep", testSpace("quiet"), testKey, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Store(3, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Lookup(3); !ok {
		t.Fatal("miss after store")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
