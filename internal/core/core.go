// Package core implements the paper's contribution: non-strict cache
// coherence via the blocking Global_Read primitive.
//
// A Location is a shared datum with a single writer and a statically
// known set of readers (the applications studied — island GAs, parallel
// logic sampling — have exactly this structure, which is why the paper
// implements shared-memory writes and reads as direct PVM sends and
// receives, §4.1). Each write carries the writer's iteration number; a
// per-node user-level buffer keeps the freshest update received per
// location. Global_Read(locn, curriter, age) returns a value of locn
// generated no earlier than iteration curriter-age of the writing
// process, blocking the reader until such a value is available. The
// blocked reader sends no messages of its own, so the primitive is
// receiver-side, program-level flow control: it converts a fully
// asynchronous iterative algorithm into a partially asynchronous one.
//
// Per the paper we implement the blocking-wait variant (wait for the
// required update to arrive) rather than the request-based variant
// (broadcast a request for a fresh copy); the latter is available behind
// an option for the ablation benchmark.
package core

import (
	"fmt"

	"nscc/internal/metrics"
	"nscc/internal/pvm"
	"nscc/internal/sim"
	"nscc/internal/trace"
	"nscc/internal/tseries"
)

// Mode names the coherence discipline an application variant runs under.
type Mode int

const (
	// Sync is the barrier-synchronized implementation: every iteration
	// ends with a message barrier and reads always observe the
	// immediately preceding iteration's values.
	Sync Mode = iota
	// Async is the fully asynchronous implementation: reads return
	// whatever has arrived, however stale, and never block.
	Async
	// NonStrict is the partially asynchronous implementation: reads go
	// through Global_Read with a finite age bound.
	NonStrict
)

func (m Mode) String() string {
	switch m {
	case Sync:
		return "sync"
	case Async:
		return "async"
	case NonStrict:
		return "global_read"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// NoValue is the iteration number reported for a location never yet
// received.
const NoValue int64 = -1 << 62

// Location describes one shared datum: a single writer task and the
// reader tasks that consume it. Sizes are what each update message
// charges to the network.
type Location struct {
	ID      int
	Name    string
	Writer  int   // writer task id
	Readers []int // reader task ids (excluding the writer)
	Size    int   // bytes per update message
}

// Update is a received value of a location together with its age
// bookkeeping.
type Update struct {
	Value     interface{}
	Iter      int64    // writer iteration that generated the value
	WrittenAt sim.Time // virtual time of the write
}

// updateMsg travels from writer to reader. All DSM traffic shares one
// PVM tag; the location id rides in the payload.
type updateMsg struct {
	Loc   int
	Iter  int64
	Value interface{}
	WAt   sim.Time

	// owner/refs implement pooling (active only when the task's pvm
	// machine runs with Config.Pooling): owner is the writing node
	// whose free list the message returns to, refs the number of
	// readers that have not yet applied it. apply() copies every field
	// out into the node's buffer, so a reader is done with the message
	// the moment apply returns and releases its share right there.
	owner *Node
	refs  int
}

// release returns one reader's share of a pooled update message,
// recycling it onto the owning writer's free list when the last
// reader is done. Unpooled messages (owner nil) pass through.
func (u *updateMsg) release() {
	if u.owner == nil || u.refs <= 0 {
		return
	}
	u.refs--
	if u.refs == 0 {
		o := u.owner
		*u = updateMsg{}
		o.updFree = append(o.updFree, u)
	}
}

// reqMsg is the request-based Global_Read's "please send me a fresh
// copy" message (ablation only).
type reqMsg struct {
	Loc     int
	MinIter int64
}

// UpdateTag is the PVM tag carrying DSM update messages.
const UpdateTag = 1 << 14

// RequestTag is the PVM tag carrying request-based read solicitations.
const RequestTag = UpdateTag + 1

// requestMsgSize is the network size of a solicitation (a location id
// and an iteration bound).
const requestMsgSize = 16

// ReadInfo describes one completed DSM read to a RaceObserver.
type ReadInfo struct {
	Task int // reading task id
	Loc  int // location id
	// GotIter is the iteration of the returned value (meaningless when
	// HasValue is false).
	GotIter int64
	// CurIter and Age are the Global_Read arguments (zero for async
	// reads, which carry no staleness contract).
	CurIter int64
	Age     int64
	// Bounded marks a Global_Read (finite staleness contract); async
	// Read calls report Bounded false.
	Bounded bool
	// TimedOut marks a Global_Read that hit Options.ReadTimeout and
	// degraded to the cached value.
	TimedOut bool
	// HasValue is false when the read returned no value at all (nothing
	// had arrived and the contract demanded nothing).
	HasValue bool
}

// RaceObserver receives the coherence layer's write/read stream. The
// simrace checker implements it to classify every cross-process read
// against the writes it may have raced; the interface lives here so
// package core stays free of any dependency on the checker.
type RaceObserver interface {
	// ObserveWrite fires at each application write, before the update
	// messages enter the network.
	ObserveWrite(task, loc int, iter int64)
	// ObserveRead fires as each Read/GlobalRead returns.
	ObserveRead(ReadInfo)
}

// LocationObserver is optionally implemented by a RaceObserver that
// wants location identities (the simrace checker uses them to report
// per-location classifications under their application-level names,
// which is what the static reconciliation joins against). Register
// announces each location to it.
type LocationObserver interface {
	ObserveLocation(id int, name string)
}

// Options configure a Node.
type Options struct {
	// Window bounds the writer's in-flight update frames; writes beyond
	// the window queue in a local outbox until earlier frames clear the
	// wire. 0 means unlimited (send immediately).
	Window int
	// Coalesce, with a finite Window, lets a queued outbox update of a
	// location be overwritten by a newer write of the same location —
	// the slow-memory-style buffering of Mermera [18] that "amortizes
	// message overheads by coalescing several updates of a single
	// shared memory location".
	Coalesce bool
	// RequestRead switches Global_Read to the request-based protocol:
	// when blocking, the reader first sends the writer a solicitation.
	// The paper rejects this variant for its extra messages (§2); it is
	// kept for the ablation benchmark.
	RequestRead bool
	// Observer, if set, sees every received update message (fresh or
	// stale) before the buffer decides whether to keep it. It is an
	// application-logic hook — parallel logic sampling consumes the full
	// per-iteration interface stream through it. Pure observability does
	// not belong here: set a trace.Tracer on the engine instead, and the
	// node emits an "update" instant for the same stream.
	Observer func(locID int, u Update)
	// Races, if set, observes every DSM write and read for race
	// classification (the -simrace flag wires the simrace checker in
	// here). Nil costs one predicted branch per operation.
	Races RaceObserver
	// Series, if set, records the node's windowed simulated-time series
	// into the given set: quantile "core.staleness" (per-window observed
	// Global_Read staleness), counter "core.read_timeouts" (degraded
	// reads per window), and counter "core.blocked_us" (microseconds of
	// Global_Read blocking charged to the window the block ended in).
	// Strictly observational; nil costs one predicted branch per site.
	Series *tseries.Set
	// ReadTimeout bounds how long a Global_Read may block. When the
	// deadline passes without a sufficiently fresh value, the read
	// degrades gracefully: it returns the freshest cached value (Iter
	// NoValue if none has ever arrived) and counts a staleness
	// violation in Stats.ReadTimeouts, instead of blocking forever on
	// an update the network may have lost. Zero keeps the paper's
	// unbounded blocking wait. Timed-out reads are excluded from the
	// staleness histogram: the histogram documents the bound the
	// primitive *honored*, the violation counter documents when it
	// could not.
	ReadTimeout sim.Duration
}

// Stats counts a node's DSM activity.
type Stats struct {
	Writes       int64        // application writes
	UpdatesSent  int64        // update messages put on the network
	Coalesced    int64        // outbox updates overwritten before sending
	Reads        int64        // async reads
	GlobalReads  int64        // Global_Read calls
	BlockedReads int64        // Global_Read calls that had to block
	BlockedTime  sim.Duration // total time spent blocked in Global_Read
	Requests     int64        // solicitations sent (request-based mode)
	StaleSum     int64        // sum over Global_Reads of (curIter - returned Iter)
	StaleMax     int64        // max staleness returned by any Global_Read
	ReadTimeouts int64        // Global_Reads that hit Options.ReadTimeout and degraded
}

type outboxEntry struct {
	loc  *Location
	iter int64
	val  interface{}
	wAt  sim.Time
	size int
}

// Node is one task's view of the distributed shared memory: the local
// buffer of freshest updates plus the write path to this task's readers.
type Node struct {
	task *pvm.Task
	locs map[int]*Location
	buf  map[int]Update
	opts Options

	inFlight int
	outbox   []outboxEntry
	stats    Stats
	stale    metrics.Histogram // observed Global_Read staleness, log-bucketed

	// pooling mirrors the pvm machine's Config.Pooling; wireDone is the
	// preallocated in-flight-decrement callback (one closure per node
	// instead of one per write); updFree is the node's updateMsg free
	// list, refilled by readers through updateMsg.release.
	pooling  bool
	wireDone func()
	updFree  []*updateMsg

	// Windowed series resolved once from Options.Series (nil when off).
	serStale    *tseries.Series
	serTimeouts *tseries.Series
	serBlocked  *tseries.Series
}

// NewNode attaches a DSM node to a PVM task. Every location the task
// writes or reads must be registered via Register before use.
func NewNode(task *pvm.Task, opts Options) *Node {
	n := &Node{
		task: task,
		locs: make(map[int]*Location),
		buf:  make(map[int]Update),
		opts: opts,

		serStale:    opts.Series.Quantile("core.staleness"),
		serTimeouts: opts.Series.Counter("core.read_timeouts"),
		serBlocked:  opts.Series.Counter("core.blocked_us"),
	}
	n.pooling = task != nil && task.Pooling()
	n.wireDone = func() { n.inFlight-- }
	return n
}

// newUpdateMsg takes an update message from the node's free list (or
// allocates one) and, when pooling, stamps it for recycling by its
// nreaders receivers.
func (n *Node) newUpdateMsg(nreaders int) *updateMsg {
	if !n.pooling {
		return &updateMsg{}
	}
	var u *updateMsg
	if ln := len(n.updFree); ln > 0 {
		u = n.updFree[ln-1]
		n.updFree[ln-1] = nil
		n.updFree = n.updFree[:ln-1]
	} else {
		u = &updateMsg{}
	}
	u.owner, u.refs = n, nreaders
	return u
}

// now returns the task's virtual time, 0 for a detached node (as in
// buffer-level unit tests).
func (n *Node) now() sim.Time {
	if n.task == nil {
		return 0
	}
	return n.task.Now()
}

// Task returns the underlying PVM task.
func (n *Node) Task() *pvm.Task { return n.task }

// tracer returns the run's tracer — nil when tracing is off or the node
// is detached from any task (as in buffer-level unit tests).
func (n *Node) tracer() trace.Tracer {
	if n.task == nil {
		return nil
	}
	return n.task.Tracer()
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats { return n.stats }

// Staleness returns the node's histogram of observed Global_Read
// staleness (curIter − returned Iter, clamped at zero). Its maximum
// never exceeds the age bound the application passed, which is the
// coherence guarantee in measurable form.
func (n *Node) Staleness() *metrics.Histogram { return &n.stale }

// Register declares a location to the node. Registering the same id
// twice with a different location panics.
func (n *Node) Register(loc *Location) {
	if prev, ok := n.locs[loc.ID]; ok && prev != loc {
		panic(fmt.Sprintf("core: location %d registered twice", loc.ID))
	}
	n.locs[loc.ID] = loc
	if lo, ok := n.opts.Races.(LocationObserver); ok {
		lo.ObserveLocation(loc.ID, loc.Name)
	}
}

// Write publishes value as the iteration iter value of loc. One update
// message per reader enters the network (subject to the window/outbox).
// Iterations must be non-decreasing per location.
func (n *Node) Write(loc *Location, iter int64, value interface{}) {
	n.WriteSized(loc, iter, loc.Size, value)
}

// WriteSized is Write with an explicit message size, for locations
// whose update payloads vary (e.g. batched interface bundles).
func (n *Node) WriteSized(loc *Location, iter int64, size int, value interface{}) {
	if loc.Writer != n.task.ID() {
		panic(fmt.Sprintf("core: task %d writing location %q owned by %d",
			n.task.ID(), loc.Name, loc.Writer))
	}
	n.stats.Writes++
	if n.opts.Races != nil {
		n.opts.Races.ObserveWrite(n.task.ID(), loc.ID, iter)
	}
	// The writer's own buffer always sees its latest value.
	n.buf[loc.ID] = Update{Value: value, Iter: iter, WrittenAt: n.task.Now()}

	if n.opts.Window > 0 && n.inFlight >= n.opts.Window {
		if n.opts.Coalesce {
			for i := range n.outbox {
				if n.outbox[i].loc.ID == loc.ID {
					n.outbox[i] = outboxEntry{loc, iter, value, n.task.Now(), size}
					n.stats.Coalesced++
					return
				}
			}
		}
		n.outbox = append(n.outbox, outboxEntry{loc, iter, value, n.task.Now(), size})
		return
	}
	n.sendUpdate(loc, iter, value, n.task.Now(), size)
}

func (n *Node) sendUpdate(loc *Location, iter int64, value interface{}, wAt sim.Time, size int) {
	if len(loc.Readers) == 0 {
		return
	}
	msg := n.newUpdateMsg(len(loc.Readers))
	msg.Loc, msg.Iter, msg.Value, msg.WAt = loc.ID, iter, value, wAt
	n.inFlight++
	n.task.Multicast(loc.Readers, UpdateTag, size, msg, n.wireDone)
	n.stats.UpdatesSent++
}

// Flush drains as much of the outbox as the window now allows. Called
// implicitly by every DSM operation; applications can also call it
// directly (e.g. once per iteration).
func (n *Node) Flush() {
	for len(n.outbox) > 0 {
		e := n.outbox[0]
		if n.opts.Window > 0 && n.inFlight >= n.opts.Window {
			return
		}
		copy(n.outbox, n.outbox[1:])
		n.outbox = n.outbox[:len(n.outbox)-1]
		n.sendUpdate(e.loc, e.iter, e.val, e.wAt, e.size)
	}
}

// drain applies all DSM update messages waiting in the PVM queue to the
// local buffer, and answers any read solicitations.
func (n *Node) drain() {
	for {
		m := n.task.NRecv(pvm.Any, UpdateTag)
		if m == nil {
			break
		}
		u := m.Data.(*updateMsg)
		n.apply(u)
		u.release()
	}
	n.serveRequests()
}

// apply installs an update if it is fresher than what the buffer holds.
// Stale (out-of-order or duplicate) updates are dropped — non-strict
// coherence only ever moves forward.
func (n *Node) apply(u *updateMsg) {
	if n.opts.Observer != nil {
		n.opts.Observer(u.Loc, Update{Value: u.Value, Iter: u.Iter, WrittenAt: u.WAt})
	}
	if tr := n.tracer(); tr != nil {
		tr.Emit(trace.Event{TS: int64(n.task.Now()), Ph: trace.PhaseInstant,
			Pid: trace.PidCore, Tid: n.task.ID(), Cat: "core", Name: "update",
			K1: "loc", V1: int64(u.Loc), K2: "iter", V2: u.Iter})
	}
	cur, ok := n.buf[u.Loc]
	if !ok || u.Iter > cur.Iter {
		n.buf[u.Loc] = Update{Value: u.Value, Iter: u.Iter, WrittenAt: u.WAt}
	}
}

// serveRequests answers pending solicitations (request-based ablation):
// re-send the current value of the requested location to the asker.
func (n *Node) serveRequests() {
	for {
		m := n.task.NRecv(pvm.Any, RequestTag)
		if m == nil {
			return
		}
		req := m.Data.(*reqMsg)
		loc, ok := n.locs[req.Loc]
		if !ok || loc.Writer != n.task.ID() {
			continue
		}
		if cur, ok := n.buf[req.Loc]; ok {
			msg := n.newUpdateMsg(1)
			msg.Loc, msg.Iter, msg.Value, msg.WAt = loc.ID, cur.Iter, cur.Value, cur.WrittenAt
			n.task.Send(m.Src, UpdateTag, loc.Size, msg)
			n.stats.UpdatesSent++
		}
	}
}

// Poll services the DSM without reading any particular location: it
// flushes the outbox and applies all pending update messages to the
// local buffer (feeding the Observer, if any). Fully asynchronous
// applications call it once per iteration.
func (n *Node) Poll() {
	n.Flush()
	n.drain()
}

// Read is the fully asynchronous read: it returns the freshest update
// that has arrived for loc (ok=false if none ever has) and never blocks.
func (n *Node) Read(loc *Location) (Update, bool) {
	n.Flush()
	n.drain()
	n.stats.Reads++
	u, ok := n.buf[loc.ID]
	if n.opts.Races != nil {
		n.opts.Races.ObserveRead(ReadInfo{Task: n.task.ID(), Loc: loc.ID,
			GotIter: u.Iter, HasValue: ok})
	}
	return u, ok
}

// GlobalRead is the paper's primitive: it returns an update of loc
// generated no earlier than iteration curIter-age of the writer,
// blocking until one is available. The blocked process cannot send
// messages, which is exactly the flow-control effect the paper exploits.
//
// When curIter-age < 0, no value is required to exist yet (the writer's
// first iteration is 0); if none has arrived, GlobalRead returns
// immediately with a zero Update whose Iter is NoValue rather than
// blocking on a value the contract does not demand.
func (n *Node) GlobalRead(loc *Location, curIter, age int64) Update {
	n.Flush()
	n.drain()
	n.stats.GlobalReads++
	minIter := curIter - age

	u, ok := n.buf[loc.ID]
	if ok && u.Iter >= minIter {
		n.traceRead(n.task.Now(), 0, loc, n.recordStaleness(curIter, u.Iter))
		n.observeGlobalRead(loc, u.Iter, curIter, age, false, true)
		return u
	}
	if !ok && minIter < 0 {
		n.traceRead(n.task.Now(), 0, loc, -1)
		n.observeGlobalRead(loc, 0, curIter, age, false, false)
		return Update{Iter: NoValue}
	}

	// Block until a sufficiently fresh value arrives.
	n.stats.BlockedReads++
	start := n.task.Now()
	if n.opts.RequestRead {
		n.task.Send(loc.Writer, RequestTag, requestMsgSize, &reqMsg{Loc: loc.ID, MinIter: minIter})
		n.stats.Requests++
	}
	var deadline sim.Time
	if n.opts.ReadTimeout > 0 {
		deadline = start.Add(n.opts.ReadTimeout)
	}
	for {
		var m *pvm.Message
		if n.opts.ReadTimeout > 0 {
			m = n.task.RecvTimeout(pvm.Any, UpdateTag, deadline.Sub(n.task.Now()))
			if m == nil {
				return n.degradeRead(loc, start, curIter, age)
			}
		} else {
			m = n.task.Recv(pvm.Any, UpdateTag)
		}
		um := m.Data.(*updateMsg)
		n.apply(um)
		um.release()
		if u, ok := n.buf[loc.ID]; ok && u.Iter >= minIter {
			end := n.task.Now()
			n.stats.BlockedTime += end.Sub(start)
			n.serBlocked.Add(end, float64(end.Sub(start))/1e3)
			n.traceRead(start, end.Sub(start), loc, n.recordStaleness(curIter, u.Iter))
			n.observeGlobalRead(loc, u.Iter, curIter, age, false, true)
			return u
		}
	}
}

// observeGlobalRead reports one finished Global_Read to the race
// observer (nil-safe).
func (n *Node) observeGlobalRead(loc *Location, gotIter, curIter, age int64, timedOut, hasValue bool) {
	if n.opts.Races == nil {
		return
	}
	n.opts.Races.ObserveRead(ReadInfo{Task: n.task.ID(), Loc: loc.ID,
		GotIter: gotIter, CurIter: curIter, Age: age,
		Bounded: true, TimedOut: timedOut, HasValue: hasValue})
}

// degradeRead finishes a Global_Read whose ReadTimeout expired: the
// staleness bound could not be met, so the read returns the freshest
// cached value (Iter NoValue if none exists) and records a violation.
// The observed staleness deliberately stays out of the histogram — the
// histogram states the bound the primitive honored; the counter states
// how often it could not.
func (n *Node) degradeRead(loc *Location, start sim.Time, curIter, age int64) Update {
	end := n.task.Now()
	n.stats.BlockedTime += end.Sub(start)
	n.serBlocked.Add(end, float64(end.Sub(start))/1e3)
	n.stats.ReadTimeouts++
	n.serTimeouts.Add(end, 1)
	if tr := n.tracer(); tr != nil {
		tr.Emit(trace.Event{TS: int64(end), Ph: trace.PhaseInstant,
			Pid: trace.PidCore, Tid: n.task.ID(), Cat: "core", Name: "read_timeout",
			K1: "loc", V1: int64(loc.ID)})
	}
	n.traceRead(start, end.Sub(start), loc, -1)
	if u, ok := n.buf[loc.ID]; ok {
		n.observeGlobalRead(loc, u.Iter, curIter, age, true, true)
		return u
	}
	n.observeGlobalRead(loc, 0, curIter, age, true, false)
	return Update{Iter: NoValue}
}

// recordStaleness accounts one Global_Read's observed staleness and
// returns it (clamped at zero: the writer may be ahead of the reader's
// notion of the current iteration).
func (n *Node) recordStaleness(curIter, gotIter int64) int64 {
	s := curIter - gotIter
	if s < 0 {
		s = 0
	}
	n.stats.StaleSum += s
	if s > n.stats.StaleMax {
		n.stats.StaleMax = s
	}
	n.stale.Observe(s)
	n.serStale.Observe(n.now(), s)
	return s
}

// traceRead emits the Global_Read span: one 'X' record per call, with
// TS at the call and Dur the time spent blocked (zero for an immediate
// hit). stale is the observed staleness, or -1 when no value existed
// yet (the NoValue early return).
func (n *Node) traceRead(start sim.Time, d sim.Duration, loc *Location, stale int64) {
	if tr := n.tracer(); tr != nil {
		tr.Emit(trace.Event{TS: int64(start), Dur: int64(d), Ph: trace.PhaseSpan,
			Pid: trace.PidCore, Tid: n.task.ID(), Cat: "core", Name: "global_read",
			K1: "loc", V1: int64(loc.ID), K2: "stale", V2: stale})
	}
}

// Have reports the iteration of the freshest buffered value of loc
// (NoValue if none), without draining the message queue.
func (n *Node) Have(loc *Location) int64 {
	if u, ok := n.buf[loc.ID]; ok {
		return u.Iter
	}
	return NoValue
}
