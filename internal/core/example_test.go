package core_test

import (
	"fmt"

	"nscc/internal/core"
	"nscc/internal/netsim"
	"nscc/internal/pvm"
	"nscc/internal/sim"
)

// ExampleNode_GlobalRead shows the primitive end to end: a writer
// produces one value per iteration; the reader bounds its staleness to
// two iterations and never observes anything older.
func ExampleNode_GlobalRead() {
	eng := sim.NewEngine(1)
	net := netsim.New(eng, netsim.DefaultConfig())
	machine := pvm.NewMachine(eng, net, pvm.DefaultConfig())

	loc := &core.Location{ID: 1, Name: "temperature", Writer: 1, Readers: []int{0}, Size: 64}

	machine.Spawn("reader", func(t *pvm.Task) {
		n := core.NewNode(t, core.Options{})
		n.Register(loc)
		for i := int64(2); i <= 8; i += 3 {
			u := n.GlobalRead(loc, i, 2) // no older than iteration i-2
			fmt.Printf("reading at iter %d: got value from iter %d (staleness %d)\n",
				i, u.Iter, i-u.Iter)
		}
	})
	machine.Spawn("writer", func(t *pvm.Task) {
		n := core.NewNode(t, core.Options{})
		n.Register(loc)
		for i := int64(0); i <= 8; i++ {
			t.Compute(5 * sim.Millisecond)
			n.Write(loc, i, i*100)
		}
	})
	if err := eng.Run(); err != nil {
		panic(err)
	}
	// Output:
	// reading at iter 2: got value from iter 0 (staleness 2)
	// reading at iter 5: got value from iter 3 (staleness 2)
	// reading at iter 8: got value from iter 6 (staleness 2)
}
