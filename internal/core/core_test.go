package core

import (
	"testing"
	"testing/quick"

	"nscc/internal/netsim"
	"nscc/internal/pvm"
	"nscc/internal/sim"
)

func newMachine(seed int64) (*sim.Engine, *pvm.Machine) {
	eng := sim.NewEngine(seed)
	net := netsim.New(eng, netsim.DefaultConfig())
	return eng, pvm.NewMachine(eng, net, pvm.DefaultConfig())
}

func TestModeString(t *testing.T) {
	if Sync.String() != "sync" || Async.String() != "async" || NonStrict.String() != "global_read" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Fatal("unknown mode formatting wrong")
	}
}

func TestWritePropagatesToReader(t *testing.T) {
	eng, m := newMachine(1)
	loc := &Location{ID: 1, Name: "x", Writer: 1, Readers: []int{0}, Size: 256}
	var got Update
	var had bool
	m.Spawn("reader", func(task *pvm.Task) {
		n := NewNode(task, Options{})
		n.Register(loc)
		if _, ok := n.Read(loc); ok {
			t.Error("Read returned a value before any write arrived")
		}
		got = n.GlobalRead(loc, 5, 5) // any value from iteration >= 0
		_, had = n.Read(loc)
	})
	m.Spawn("writer", func(task *pvm.Task) {
		n := NewNode(task, Options{})
		n.Register(loc)
		task.Compute(2 * sim.Millisecond)
		n.Write(loc, 3, "v3")
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Value != "v3" || got.Iter != 3 || !had {
		t.Fatalf("got %+v had=%v", got, had)
	}
}

func TestStaleUpdatesDropped(t *testing.T) {
	n := &Node{buf: map[int]Update{}}
	n.apply(&updateMsg{Loc: 1, Iter: 5, Value: "new"})
	n.apply(&updateMsg{Loc: 1, Iter: 3, Value: "old"})
	n.apply(&updateMsg{Loc: 1, Iter: 5, Value: "dup"})
	if u := n.buf[1]; u.Value != "new" || u.Iter != 5 {
		t.Fatalf("buffer regressed: %+v", u)
	}
	n.apply(&updateMsg{Loc: 1, Iter: 6, Value: "newer"})
	if u := n.buf[1]; u.Value != "newer" {
		t.Fatalf("fresh update rejected: %+v", u)
	}
}

func TestGlobalReadBlocksUntilFreshEnough(t *testing.T) {
	eng, m := newMachine(1)
	loc := &Location{ID: 1, Name: "x", Writer: 1, Readers: []int{0}, Size: 128}
	var iters []int64
	var when []sim.Time
	m.Spawn("reader", func(task *pvm.Task) {
		n := NewNode(task, Options{})
		n.Register(loc)
		for cur := int64(1); cur <= 5; cur++ {
			u := n.GlobalRead(loc, cur, 1) // need iter >= cur-1
			iters = append(iters, u.Iter)
			when = append(when, task.Now())
		}
	})
	m.Spawn("writer", func(task *pvm.Task) {
		n := NewNode(task, Options{})
		n.Register(loc)
		for i := int64(0); i <= 5; i++ {
			task.Compute(10 * sim.Millisecond)
			n.Write(loc, i, i)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for k, cur := range []int64{1, 2, 3, 4, 5} {
		if iters[k] < cur-1 {
			t.Fatalf("GlobalRead(cur=%d, age=1) returned iter %d < %d", cur, iters[k], cur-1)
		}
	}
	// The reader computes nothing itself, so each read must have waited
	// for the writer's pace: read k (needing iter k) completes no
	// earlier than the writer's (k)'th write at ~10ms*(k+1).
	for k := range iters {
		floor := sim.Time(int64(10*sim.Millisecond) * (int64(k) + 1))
		if when[k] < floor {
			t.Fatalf("read %d completed at %v, before writer could have produced iter %d", k, when[k], k)
		}
	}
}

func TestGlobalReadAgeZeroLockstep(t *testing.T) {
	// age=0: reader at curIter must see a value from exactly >= curIter.
	eng, m := newMachine(1)
	loc := &Location{ID: 1, Name: "x", Writer: 1, Readers: []int{0}, Size: 128}
	var stats Stats
	m.Spawn("reader", func(task *pvm.Task) {
		n := NewNode(task, Options{})
		n.Register(loc)
		for cur := int64(0); cur < 10; cur++ {
			u := n.GlobalRead(loc, cur, 0)
			if u.Iter < cur {
				t.Errorf("age=0 returned iter %d < cur %d", u.Iter, cur)
			}
		}
		stats = n.Stats()
	})
	m.Spawn("writer", func(task *pvm.Task) {
		n := NewNode(task, Options{})
		n.Register(loc)
		for i := int64(0); i < 10; i++ {
			task.Compute(sim.Millisecond)
			n.Write(loc, i, i)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if stats.GlobalReads != 10 {
		t.Fatalf("GlobalReads = %d, want 10", stats.GlobalReads)
	}
	if stats.BlockedReads == 0 || stats.BlockedTime == 0 {
		t.Fatalf("lockstep reader never blocked: %+v", stats)
	}
	if stats.StaleMax != 0 {
		t.Fatalf("age=0 observed staleness %d", stats.StaleMax)
	}
}

func TestAsyncReadNeverBlocks(t *testing.T) {
	eng, m := newMachine(1)
	loc := &Location{ID: 1, Name: "x", Writer: 1, Readers: []int{0}, Size: 128}
	reads := 0
	m.Spawn("reader", func(task *pvm.Task) {
		n := NewNode(task, Options{})
		n.Register(loc)
		for i := 0; i < 100; i++ {
			n.Read(loc)
			reads++
		}
	})
	m.Spawn("writer", func(task *pvm.Task) {
		n := NewNode(task, Options{})
		n.Register(loc)
		task.Compute(sim.Second) // writer far behind; reader must not care
		n.Write(loc, 0, nil)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if reads != 100 {
		t.Fatalf("async reader completed %d reads, want 100", reads)
	}
}

func TestBlockedReaderSendsNothing(t *testing.T) {
	// The whole point of Global_Read: a blocked reader generates no
	// traffic of its own.
	eng, m := newMachine(1)
	loc := &Location{ID: 1, Name: "x", Writer: 1, Readers: []int{0}, Size: 128}
	out := &Location{ID: 2, Name: "y", Writer: 0, Readers: []int{1}, Size: 128}
	var sentDuringBlock int64 = -1
	m.Spawn("reader", func(task *pvm.Task) {
		n := NewNode(task, Options{})
		n.Register(loc)
		n.Register(out)
		n.Write(out, 0, nil) // one send before blocking
		before := task.Sent()
		n.GlobalRead(loc, 10, 0) // blocks a long time
		sentDuringBlock = task.Sent() - before
	})
	m.Spawn("writer", func(task *pvm.Task) {
		n := NewNode(task, Options{})
		n.Register(loc)
		n.Register(out)
		task.Compute(100 * sim.Millisecond)
		n.Write(loc, 10, nil)
		n.Read(out)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if sentDuringBlock != 0 {
		t.Fatalf("reader sent %d messages while blocked, want 0", sentDuringBlock)
	}
}

func TestWriterOwnBufferSeesOwnWrites(t *testing.T) {
	eng, m := newMachine(1)
	loc := &Location{ID: 1, Name: "x", Writer: 0, Readers: []int{}, Size: 64}
	m.Spawn("writer", func(task *pvm.Task) {
		n := NewNode(task, Options{})
		n.Register(loc)
		n.Write(loc, 7, "mine")
		u := n.GlobalRead(loc, 7, 0)
		if u.Value != "mine" || u.Iter != 7 {
			t.Errorf("writer does not see own write: %+v", u)
		}
		if n.Have(loc) != 7 {
			t.Errorf("Have = %d, want 7", n.Have(loc))
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteWrongOwnerPanics(t *testing.T) {
	eng, m := newMachine(1)
	loc := &Location{ID: 1, Name: "x", Writer: 5, Readers: nil, Size: 64}
	m.Spawn("task", func(task *pvm.Task) {
		n := NewNode(task, Options{})
		n.Register(loc)
		defer func() {
			if recover() == nil {
				panic("write by non-owner did not panic")
			}
		}()
		n.Write(loc, 0, nil)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHaveNoValue(t *testing.T) {
	n := &Node{buf: map[int]Update{}}
	if n.Have(&Location{ID: 3}) != NoValue {
		t.Fatal("Have on empty buffer should be NoValue")
	}
}

func TestRegisterConflictPanics(t *testing.T) {
	n := NewNode(nil, Options{})
	a := &Location{ID: 1}
	b := &Location{ID: 1}
	n.Register(a)
	n.Register(a) // same pointer: fine
	defer func() {
		if recover() == nil {
			t.Error("conflicting Register did not panic")
		}
	}()
	n.Register(b)
}

func TestWindowCoalescing(t *testing.T) {
	run := func(coalesce bool) (Stats, int64) {
		eng, m := newMachine(1)
		loc := &Location{ID: 1, Name: "x", Writer: 1, Readers: []int{0}, Size: 4096}
		var st Stats
		var lastIter int64
		m.Spawn("reader", func(task *pvm.Task) {
			n := NewNode(task, Options{})
			n.Register(loc)
			u := n.GlobalRead(loc, 50, 10) // wait until near-final value
			lastIter = u.Iter
		})
		m.Spawn("writer", func(task *pvm.Task) {
			n := NewNode(task, Options{Window: 1, Coalesce: coalesce})
			n.Register(loc)
			for i := int64(0); i <= 50; i++ {
				task.Compute(50 * sim.Microsecond) // writes faster than the wire
				n.Write(loc, i, i)
			}
			for n.Stats().UpdatesSent < n.Stats().Writes-n.Stats().Coalesced {
				task.Compute(sim.Millisecond)
				n.Flush()
			}
			st = n.Stats()
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return st, lastIter
	}
	with, iterWith := run(true)
	without, _ := run(false)
	if with.Coalesced == 0 {
		t.Fatalf("coalescing never kicked in: %+v", with)
	}
	if without.Coalesced != 0 {
		t.Fatalf("coalescing happened while disabled: %+v", without)
	}
	if with.UpdatesSent >= without.UpdatesSent {
		t.Fatalf("coalescing did not reduce messages: %d vs %d", with.UpdatesSent, without.UpdatesSent)
	}
	if iterWith < 40 {
		t.Fatalf("reader under coalescing saw iter %d, want >= 40", iterWith)
	}
}

func TestRequestReadSolicits(t *testing.T) {
	eng, m := newMachine(1)
	loc := &Location{ID: 1, Name: "x", Writer: 1, Readers: []int{0}, Size: 128}
	var st Stats
	var got Update
	m.Spawn("reader", func(task *pvm.Task) {
		n := NewNode(task, Options{RequestRead: true})
		n.Register(loc)
		got = n.GlobalRead(loc, 1, 1) // blocks; sends a solicitation
		st = n.Stats()
	})
	m.Spawn("writer", func(task *pvm.Task) {
		n := NewNode(task, Options{})
		n.Register(loc)
		task.Compute(sim.Millisecond)
		n.Write(loc, 0, "v0")
		// Writer polls the DSM so it can answer solicitations.
		for i := 0; i < 50; i++ {
			task.Compute(sim.Millisecond)
			n.Read(loc)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1 {
		t.Fatalf("Requests = %d, want 1", st.Requests)
	}
	if got.Iter != 0 || got.Value != "v0" {
		t.Fatalf("request-read returned %+v", got)
	}
}

func TestMsgBarrier(t *testing.T) {
	eng, m := newMachine(1)
	const p = 4
	b := NewMsgBarrier([]int{0, 1, 2, 3})
	var exit [p]sim.Time
	for i := 0; i < p; i++ {
		i := i
		m.Spawn("w", func(task *pvm.Task) {
			task.Compute(sim.Duration(i+1) * 10 * sim.Millisecond)
			b.Wait(task)
			exit[i] = task.Now()
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Everyone must leave at or after the slowest member's arrival.
	slowest := sim.Time(p * 10 * int(sim.Millisecond))
	for i := 0; i < p; i++ {
		if exit[i] < slowest {
			t.Fatalf("member %d left barrier at %v, before slowest arrival %v", i, exit[i], slowest)
		}
	}
}

func TestMsgBarrierSingleMember(t *testing.T) {
	eng, m := newMachine(1)
	b := NewMsgBarrier([]int{0})
	done := false
	m.Spawn("solo", func(task *pvm.Task) {
		b.Wait(task)
		done = true
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("single-member barrier blocked")
	}
}

func TestMsgBarrierReusableRounds(t *testing.T) {
	eng, m := newMachine(2)
	const p, rounds = 3, 5
	b := NewMsgBarrier([]int{0, 1, 2})
	counts := make([]int, p)
	for i := 0; i < p; i++ {
		i := i
		m.Spawn("w", func(task *pvm.Task) {
			for r := 0; r < rounds; r++ {
				task.Compute(sim.Duration(task.Proc().Rng().Intn(5)+1) * sim.Millisecond)
				b.Wait(task)
				counts[i]++
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != rounds {
			t.Fatalf("member %d completed %d rounds, want %d", i, c, rounds)
		}
	}
}

func TestGlobalReadNegativeMinIterNonBlocking(t *testing.T) {
	eng, m := newMachine(1)
	loc := &Location{ID: 1, Name: "x", Writer: 1, Readers: []int{0}, Size: 64}
	var early, later Update
	m.Spawn("reader", func(task *pvm.Task) {
		n := NewNode(task, Options{})
		n.Register(loc)
		// curIter-age < 0 and nothing received: must return NoValue
		// immediately instead of blocking.
		early = n.GlobalRead(loc, 2, 10)
		task.Compute(20 * sim.Millisecond)
		later = n.GlobalRead(loc, 2, 10)
	})
	m.Spawn("writer", func(task *pvm.Task) {
		n := NewNode(task, Options{})
		n.Register(loc)
		task.Compute(5 * sim.Millisecond)
		n.Write(loc, 0, "v0")
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if early.Iter != NoValue || early.Value != nil {
		t.Fatalf("early read = %+v, want NoValue", early)
	}
	if later.Iter != 0 || later.Value != "v0" {
		t.Fatalf("later read = %+v, want iter 0", later)
	}
}

func TestGlobalReadObserverSeesAllUpdates(t *testing.T) {
	eng, m := newMachine(1)
	loc := &Location{ID: 1, Name: "x", Writer: 1, Readers: []int{0}, Size: 64}
	var seen []int64
	m.Spawn("reader", func(task *pvm.Task) {
		n := NewNode(task, Options{Observer: func(locID int, u Update) {
			seen = append(seen, u.Iter)
		}})
		n.Register(loc)
		u := n.GlobalRead(loc, 3, 0)
		if u.Iter < 3 {
			t.Errorf("read iter %d", u.Iter)
		}
	})
	m.Spawn("writer", func(task *pvm.Task) {
		n := NewNode(task, Options{})
		n.Register(loc)
		for i := int64(0); i <= 3; i++ {
			task.Compute(sim.Millisecond)
			n.Write(loc, i, i)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Fatalf("observer saw %v, want all four updates", seen)
	}
}

// Property: Global_Read never violates its staleness contract, for any
// writer pacing, age, and read schedule.
func TestGlobalReadContractProperty(t *testing.T) {
	f := func(seed int64, ageRaw, pacerRaw uint8) bool {
		age := int64(ageRaw % 8)
		pace := sim.Duration(pacerRaw%20+1) * sim.Millisecond
		eng, m := newMachine(seed)
		loc := &Location{ID: 1, Name: "x", Writer: 1, Readers: []int{0}, Size: 200}
		ok := true
		const iters = 30
		m.Spawn("reader", func(task *pvm.Task) {
			n := NewNode(task, Options{})
			n.Register(loc)
			for cur := int64(0); cur < iters; cur++ {
				u := n.GlobalRead(loc, cur, age)
				// NoValue is permitted exactly when the contract demands
				// nothing (cur-age < 0 and nothing has arrived).
				if u.Iter == NoValue {
					if cur-age >= 0 {
						ok = false
					}
				} else if u.Iter < cur-age {
					ok = false
				}
				task.Compute(sim.Duration(task.Proc().Rng().Intn(4)) * sim.Millisecond)
			}
		})
		m.Spawn("writer", func(task *pvm.Task) {
			n := NewNode(task, Options{})
			n.Register(loc)
			for i := int64(0); i < iters; i++ {
				task.Compute(pace)
				n.Write(loc, i, i)
			}
		})
		if err := eng.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
