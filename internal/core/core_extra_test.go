package core

import (
	"testing"

	"nscc/internal/pvm"
	"nscc/internal/sim"
)

func TestWriteNoReadersIsLocal(t *testing.T) {
	eng, m := newMachine(1)
	loc := &Location{ID: 1, Name: "solo", Writer: 0, Readers: nil, Size: 64}
	m.Spawn("w", func(task *pvm.Task) {
		n := NewNode(task, Options{})
		n.Register(loc)
		n.Write(loc, 3, "x")
		if task.Sent() != 0 {
			t.Errorf("reader-less write sent %d messages", task.Sent())
		}
		if u, ok := n.Read(loc); !ok || u.Value != "x" {
			t.Errorf("own buffer missing write: %+v", u)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalReadStalenessStats(t *testing.T) {
	eng, m := newMachine(1)
	loc := &Location{ID: 1, Name: "x", Writer: 1, Readers: []int{0}, Size: 64}
	var st Stats
	m.Spawn("reader", func(task *pvm.Task) {
		n := NewNode(task, Options{})
		n.Register(loc)
		task.Compute(50 * sim.Millisecond) // let several writes land
		u := n.GlobalRead(loc, 10, 8)      // writer is at ~4: returns iter>=2
		if u.Iter < 2 {
			t.Errorf("contract violated: iter %d", u.Iter)
		}
		st = n.Stats()
	})
	m.Spawn("writer", func(task *pvm.Task) {
		n := NewNode(task, Options{})
		n.Register(loc)
		for i := int64(0); i < 5; i++ {
			task.Compute(10 * sim.Millisecond)
			n.Write(loc, i, i)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if st.StaleSum <= 0 || st.StaleMax <= 0 {
		t.Fatalf("staleness stats not recorded: %+v", st)
	}
	if st.StaleMax > 8 {
		t.Fatalf("recorded staleness %d beyond the age bound", st.StaleMax)
	}
}

func TestWriteSizedChargesGivenSize(t *testing.T) {
	eng, m := newMachine(1)
	loc := &Location{ID: 1, Name: "x", Writer: 1, Readers: []int{0}, Size: 10}
	var arrived sim.Time
	m.Spawn("reader", func(task *pvm.Task) {
		n := NewNode(task, Options{})
		n.Register(loc)
		u := n.GlobalRead(loc, 0, 0)
		_ = u
		arrived = task.Now()
	})
	m.Spawn("writer", func(task *pvm.Task) {
		n := NewNode(task, Options{})
		n.Register(loc)
		n.WriteSized(loc, 0, 100000, "big") // ~80ms on the 10 Mbps bus
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if arrived < sim.Time(70*sim.Millisecond) {
		t.Fatalf("100 KB update arrived at %v; size override not charged", arrived)
	}
}

func TestFlushIdempotentWhenEmpty(t *testing.T) {
	eng, m := newMachine(1)
	m.Spawn("n", func(task *pvm.Task) {
		n := NewNode(task, Options{Window: 1})
		n.Flush()
		n.Flush()
		if task.Sent() != 0 {
			t.Error("empty flush sent messages")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMsgBarrierMessageCount(t *testing.T) {
	// A P-member barrier costs P-1 arrivals plus one multicast release.
	eng, m := newMachine(1)
	const p = 4
	b := NewMsgBarrier([]int{0, 1, 2, 3})
	tasks := make([]*pvm.Task, p)
	for i := 0; i < p; i++ {
		i := i
		m.Spawn("w", func(task *pvm.Task) {
			tasks[i] = task
			b.Wait(task)
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, task := range tasks {
		total += task.Sent()
	}
	if total != p { // p-1 arrive frames + 1 release multicast
		t.Fatalf("barrier episode cost %d sends, want %d", total, p)
	}
}

func TestObserverSeesStaleUpdates(t *testing.T) {
	// The observer must see even updates the buffer rejects as stale.
	n := &Node{buf: map[int]Update{}, opts: Options{}}
	var seen []int64
	n.opts.Observer = func(locID int, u Update) { seen = append(seen, u.Iter) }
	n.apply(&updateMsg{Loc: 1, Iter: 5, Value: "a"})
	n.apply(&updateMsg{Loc: 1, Iter: 3, Value: "stale"})
	if len(seen) != 2 || seen[1] != 3 {
		t.Fatalf("observer missed the stale update: %v", seen)
	}
	if n.buf[1].Iter != 5 {
		t.Fatal("stale update overwrote the buffer")
	}
}
