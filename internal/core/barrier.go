package core

import "nscc/internal/pvm"

// Barrier tags, disjoint from the DSM tags.
const (
	barrierArriveTag  = UpdateTag + 8
	barrierReleaseTag = UpdateTag + 9
	barrierMsgSize    = 16
)

// MsgBarrier is a coordinator-based message barrier over PVM: members
// send an arrival message to the first member, which releases everyone
// once all have arrived (2(P-1) small messages per episode). This is the
// synchronization overhead the synchronous program pays every iteration
// and that Global_Read with age=0 eliminates (§5: "this setting removes
// the barrier synchronization overhead of the synchronous program but
// does not exploit any asynchrony").
type MsgBarrier struct {
	members []int // task ids; members[0] coordinates
}

// NewMsgBarrier creates a barrier among the given task ids.
func NewMsgBarrier(members []int) *MsgBarrier {
	if len(members) == 0 {
		panic("core: empty barrier membership")
	}
	ms := make([]int, len(members))
	copy(ms, members)
	return &MsgBarrier{members: ms}
}

// Wait blocks t until every member has called Wait for this episode.
func (b *MsgBarrier) Wait(t *pvm.Task) {
	if len(b.members) == 1 {
		return
	}
	coord := b.members[0]
	if t.ID() == coord {
		for i := 0; i < len(b.members)-1; i++ {
			t.Recv(pvm.Any, barrierArriveTag)
		}
		t.Multicast(b.members[1:], barrierReleaseTag, barrierMsgSize, nil, nil)
		return
	}
	t.Send(coord, barrierArriveTag, barrierMsgSize, nil)
	t.Recv(coord, barrierReleaseTag)
}
