package core

import (
	"errors"
	"testing"

	"nscc/internal/faults"
	"nscc/internal/netsim"
	"nscc/internal/pvm"
	"nscc/internal/sim"
)

// blackoutMachine builds a machine whose fabric drops every frame —
// the scenario the read timeout exists for: an update the network
// lost and will never redeliver.
func blackoutMachine(seed int64) (*sim.Engine, *pvm.Machine) {
	eng := sim.NewEngine(seed)
	plan := &faults.Plan{Loss: []faults.LossBurst{
		{From: 0, To: 1e6, Prob: 1, Src: faults.AnyNode, Dst: faults.AnyNode},
	}}
	net := faults.Wrap(netsim.New(eng, netsim.DefaultConfig()), plan)
	return eng, pvm.NewMachine(eng, net, pvm.DefaultConfig())
}

// TestDroppedUpdateBlocksGlobalReadForever is the liveness regression
// this PR's timeout path exists to fix: on an unreliable fabric, one
// lost update leaves the paper's blocking Global_Read parked with no
// wake-up ever coming, and the engine reports the deadlock.
func TestDroppedUpdateBlocksGlobalReadForever(t *testing.T) {
	eng, m := blackoutMachine(1)
	loc := &Location{ID: 1, Name: "x", Writer: 1, Readers: []int{0}, Size: 128}
	m.Spawn("reader", func(task *pvm.Task) {
		n := NewNode(task, Options{}) // no timeout: the paper's semantics
		n.Register(loc)
		n.GlobalRead(loc, 1, 0) // needs iter >= 1, which was dropped
		t.Error("Global_Read returned despite the lost update")
	})
	m.Spawn("writer", func(task *pvm.Task) {
		n := NewNode(task, Options{})
		n.Register(loc)
		task.Compute(sim.Millisecond)
		n.Write(loc, 1, "lost")
	})
	if err := eng.Run(); !errors.Is(err, sim.ErrDeadlock) {
		t.Fatalf("Run() = %v, want ErrDeadlock", err)
	}
}

// TestReadTimeoutDegradesGracefully is the same scenario with
// Options.ReadTimeout set: the read returns at its deadline with the
// freshest cached value (NoValue here — nothing ever arrived), the
// violation is counted, and the run completes instead of deadlocking.
func TestReadTimeoutDegradesGracefully(t *testing.T) {
	eng, m := blackoutMachine(1)
	loc := &Location{ID: 1, Name: "x", Writer: 1, Readers: []int{0}, Size: 128}
	var got Update
	var retAt sim.Time
	var stats Stats
	m.Spawn("reader", func(task *pvm.Task) {
		n := NewNode(task, Options{ReadTimeout: 50 * sim.Millisecond})
		n.Register(loc)
		got = n.GlobalRead(loc, 1, 0)
		retAt = task.Now()
		stats = n.Stats()
	})
	m.Spawn("writer", func(task *pvm.Task) {
		n := NewNode(task, Options{})
		n.Register(loc)
		task.Compute(sim.Millisecond)
		n.Write(loc, 1, "lost")
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("timed-out run did not complete: %v", err)
	}
	if got.Iter != NoValue {
		t.Fatalf("degraded read returned %+v, want Iter NoValue", got)
	}
	if retAt < sim.Time(50*sim.Millisecond) {
		t.Fatalf("read returned at %v, before its 50ms deadline", retAt)
	}
	if stats.ReadTimeouts != 1 {
		t.Fatalf("ReadTimeouts = %d, want 1", stats.ReadTimeouts)
	}
	if stats.GlobalReads != 1 {
		t.Fatalf("GlobalReads = %d, want 1", stats.GlobalReads)
	}
}

// TestReadTimeoutReturnsCachedValue: when an older update did arrive
// before the blackout, the degraded read returns it rather than
// NoValue — "freshest cached value" semantics.
func TestReadTimeoutReturnsCachedValue(t *testing.T) {
	eng := sim.NewEngine(1)
	// Blackout only from 10 ms on: the iteration-1 update gets through,
	// the iteration-2 update dies.
	plan := &faults.Plan{Loss: []faults.LossBurst{
		{From: 0.010, To: 1e6, Prob: 1, Src: faults.AnyNode, Dst: faults.AnyNode},
	}}
	net := faults.Wrap(netsim.New(eng, netsim.DefaultConfig()), plan)
	m := pvm.NewMachine(eng, net, pvm.DefaultConfig())
	loc := &Location{ID: 1, Name: "x", Writer: 1, Readers: []int{0}, Size: 128}
	var got Update
	var stats Stats
	m.Spawn("reader", func(task *pvm.Task) {
		n := NewNode(task, Options{ReadTimeout: 50 * sim.Millisecond})
		n.Register(loc)
		task.Compute(20 * sim.Millisecond) // let iteration 1 land
		got = n.GlobalRead(loc, 2, 0)      // wants iter >= 2: never arrives
		stats = n.Stats()
	})
	m.Spawn("writer", func(task *pvm.Task) {
		n := NewNode(task, Options{})
		n.Register(loc)
		task.Compute(sim.Millisecond)
		n.Write(loc, 1, "cached")
		task.Compute(30 * sim.Millisecond)
		n.Write(loc, 2, "lost")
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("run did not complete: %v", err)
	}
	if got.Iter != 1 || got.Value != "cached" {
		t.Fatalf("degraded read returned %+v, want the cached iteration-1 value", got)
	}
	if stats.ReadTimeouts != 1 {
		t.Fatalf("ReadTimeouts = %d, want 1", stats.ReadTimeouts)
	}
}

// TestReadTimeoutIrrelevantWhenFresh: a satisfiable read under a
// timeout behaves exactly as without one and records no violation.
func TestReadTimeoutIrrelevantWhenFresh(t *testing.T) {
	eng := sim.NewEngine(1)
	net := netsim.New(eng, netsim.DefaultConfig())
	m := pvm.NewMachine(eng, net, pvm.DefaultConfig())
	loc := &Location{ID: 1, Name: "x", Writer: 1, Readers: []int{0}, Size: 128}
	var got Update
	var stats Stats
	m.Spawn("reader", func(task *pvm.Task) {
		n := NewNode(task, Options{ReadTimeout: 50 * sim.Millisecond})
		n.Register(loc)
		got = n.GlobalRead(loc, 1, 0)
		stats = n.Stats()
	})
	m.Spawn("writer", func(task *pvm.Task) {
		n := NewNode(task, Options{})
		n.Register(loc)
		task.Compute(sim.Millisecond)
		n.Write(loc, 1, "fresh")
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Value != "fresh" || got.Iter != 1 {
		t.Fatalf("got %+v", got)
	}
	if stats.ReadTimeouts != 0 {
		t.Fatalf("ReadTimeouts = %d on a satisfied read", stats.ReadTimeouts)
	}
}
