package graph

import (
	"testing"

	"nscc/internal/core"
	"nscc/internal/sim"
	"nscc/internal/trace"
	"nscc/internal/tseries"
)

// TestRaceClassification pins the simrace contract per discipline:
// sync runs have zero racy reads; age-bounded runs have zero unbounded
// reads and observed staleness at most the bound; fully-async runs are
// where the unbounded races live.
func TestRaceClassification(t *testing.T) {
	g, err := ParseTopoSpec("random:n=40,m=80,seed=2")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range oracleVariants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			res, err := Run(Config{
				G: g, Algo: PageRank, P: 4,
				Mode: v.mode, Age: v.age,
				MaxSupersteps: 4000,
				Seed:          5,
				Calib:         DefaultCalibration(),
				RaceCheck:     true,
			})
			if err != nil {
				t.Fatal(err)
			}
			r := res.Telemetry.Races
			if r == nil || r.Reads == 0 {
				t.Fatal("race checker recorded nothing")
			}
			switch v.mode {
			case core.Sync:
				if n := r.Races(); n != 0 {
					t.Errorf("sync run classified %d racy reads, want 0", n)
				}
			case core.NonStrict:
				if r.Unbounded != 0 {
					t.Errorf("age-bounded run classified %d unbounded reads, want 0", r.Unbounded)
				}
				if r.MaxLag > v.age {
					t.Errorf("observed staleness %d exceeds the age bound %d", r.MaxLag, v.age)
				}
			case core.Async:
				if r.Unbounded == 0 {
					t.Error("async run classified no unbounded reads; expected some")
				}
			}
		})
	}
}

// TestSinglePartition is the P=1 edge case: no cross-partition reads,
// no barrier traffic, and the run must match the sequential oracle
// superstep-for-superstep.
func TestSinglePartition(t *testing.T) {
	g, err := Ring(12)
	if err != nil {
		t.Fatal(err)
	}
	calib := DefaultCalibration()
	seq := RunSequential(g, SSSP, DefaultEps, 100, calib)
	for _, mode := range []core.Mode{core.Sync, core.Async, core.NonStrict} {
		res, err := Run(Config{
			G: g, Algo: SSSP, P: 1,
			Mode:          mode,
			MaxSupersteps: 100,
			Seed:          1,
			Calib:         calib,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("%v: did not converge", mode)
		}
		if d := MaxDiff(res.Values, seq.Values); d != 0 {
			t.Errorf("%v: diff vs oracle %g, want exact match with no peers", mode, d)
		}
	}
}

// TestTelemetryAndSeries checks the observability wiring: trace spans
// on the app track, the graph tseries channels, warp/staleness summary
// fields, and the per-task core counters.
func TestTelemetryAndSeries(t *testing.T) {
	g, err := ParseTopoSpec("clustered:n=40,k=4,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	buf := trace.NewRecorder()
	set := tseries.NewSet(10 * sim.Millisecond)
	res, err := Run(Config{
		G: g, Algo: PageRank, P: 4,
		Mode: core.NonStrict, Age: 10,
		MaxSupersteps: 4000,
		Seed:          3,
		Calib:         DefaultCalibration(),
		Tracer:        buf,
		Series:        set,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}

	spans := 0
	for _, ev := range buf.Events() {
		if ev.Cat == "graph" && ev.Name == "superstep" && ev.Ph == trace.PhaseSpan {
			if ev.Pid != trace.PidApp {
				t.Fatalf("superstep span on pid %d, want app track %d", ev.Pid, trace.PidApp)
			}
			spans++
		}
	}
	var total int64
	for _, n := range res.Supersteps {
		total += n
	}
	if int64(spans) != total {
		t.Errorf("%d superstep spans for %d supersteps", spans, total)
	}

	sums := map[string]bool{}
	for _, s := range res.Telemetry.Series {
		var n int64
		for _, c := range s.Counts {
			n += c
		}
		sums[s.Name] = n > 0
	}
	for _, name := range []string{"graph.iters", "graph.residual", "graph.frontier_size", "pvm.warp"} {
		if !sums[name] {
			t.Errorf("series %q missing or empty", name)
		}
	}

	tel := res.Telemetry
	if tel.Variant != "global_read" || tel.Age != 10 {
		t.Errorf("telemetry variant/age = %q/%d", tel.Variant, tel.Age)
	}
	if len(tel.Tasks) != 4 {
		t.Fatalf("%d task telemetry entries, want 4", len(tel.Tasks))
	}
	var reads int64
	for _, ts := range tel.Tasks {
		reads += ts.GlobalReads
	}
	if reads == 0 {
		t.Error("no Global_Reads recorded in task telemetry")
	}
	if tel.Staleness.N == 0 {
		t.Error("staleness histogram empty")
	}
	if tel.Net.Frames == 0 || res.Messages == 0 || res.NetBytes == 0 {
		t.Error("network counters empty")
	}
	if res.Completion <= 0 {
		t.Error("completion time not recorded")
	}
}

// TestRunPanics pins the constructor contract for impossible configs.
func TestRunPanics(t *testing.T) {
	g, _ := Ring(4)
	for name, cfg := range map[string]Config{
		"nil graph":        {P: 1, MaxSupersteps: 1},
		"zero parts":       {G: g, P: 0, MaxSupersteps: 1},
		"too many":         {G: g, P: 5, MaxSupersteps: 1},
		"no superstep cap": {G: g, P: 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			Run(cfg)
		}()
	}
}

// TestMaxSuperstepCap: a cap too small to converge must come back
// Converged=false with the cap respected, not hang.
func TestMaxSuperstepCap(t *testing.T) {
	g, err := ParseTopoSpec("ring:24")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		G: g, Algo: SSSP, P: 4,
		Mode:          core.Async,
		MaxSupersteps: 5,
		Seed:          1,
		Calib:         DefaultCalibration(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("converged under a 5-superstep cap on a diameter-23 ring")
	}
	for p, n := range res.Supersteps {
		if n > 5 {
			t.Errorf("partition %d ran %d supersteps past the cap", p, n)
		}
	}
}
