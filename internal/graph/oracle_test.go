package graph

import (
	"fmt"
	"testing"

	"nscc/internal/core"
)

// oracleSpecs are the three topology classes the differential harness
// proves convergence on: the diameter-maximizing ring, a random graph,
// and a clustered graph whose few inter-cluster bridges are the
// staleness-critical paths.
var oracleSpecs = []string{
	"ring:48",
	"random:n=48,m=96,seed=7",
	"clustered:n=48,k=4,seed=7",
}

// oracleVariants is the full coherence-discipline matrix: barrier-sync,
// fully asynchronous, and every sweep age bound.
type variant struct {
	name string
	mode core.Mode
	age  int64
}

var oracleVariants = []variant{
	{"sync", core.Sync, 0},
	{"async", core.Async, 0},
	{"gr0", core.NonStrict, 0},
	{"gr5", core.NonStrict, 5},
	{"gr10", core.NonStrict, 10},
	{"gr20", core.NonStrict, 20},
	{"gr30", core.NonStrict, 30},
}

// TestDifferentialOracle is the correctness headline: on every
// topology class, every algorithm, and every coherence discipline, the
// partitioned run must converge to within DiffEps (L-infinity) of the
// sequential ground truth.
func TestDifferentialOracle(t *testing.T) {
	calib := DefaultCalibration()
	for _, spec := range oracleSpecs {
		g, err := ParseTopoSpec(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		for _, algo := range Algos {
			seq := RunSequential(g, algo, DefaultEps, 4000, calib)
			for _, v := range oracleVariants {
				v := v
				t.Run(fmt.Sprintf("%s/%s/%s", spec, algo, v.name), func(t *testing.T) {
					res, err := Run(Config{
						G: g, Algo: algo, P: 4,
						Mode: v.mode, Age: v.age,
						MaxSupersteps: 4000,
						Seed:          42,
						Calib:         calib,
					})
					if err != nil {
						t.Fatal(err)
					}
					if !res.Converged {
						t.Fatalf("did not converge (residual %g after %v supersteps)",
							res.Residual, res.Supersteps)
					}
					if d := MaxDiff(res.Values, seq.Values); d > DiffEps {
						t.Errorf("max diff vs sequential oracle = %g, want <= %g", d, DiffEps)
					}
				})
			}
		}
	}
}

// TestSequentialOracleFixedPoints sanity-checks the ground truth
// itself on topologies with known answers.
func TestSequentialOracleFixedPoints(t *testing.T) {
	calib := DefaultCalibration()
	g, err := Ring(16)
	if err != nil {
		t.Fatal(err)
	}
	// A ring's PageRank fixed point is exactly uniform (every vertex has
	// in-degree = out-degree = 1), so the initial vector is already
	// converged.
	pr := RunSequential(g, PageRank, DefaultEps, 100, calib)
	for v, r := range pr.Values {
		if d := r - 1.0/16; d > 1e-12 || d < -1e-12 {
			t.Fatalf("ring pagerank[%d] = %v, want uniform 1/16", v, r)
		}
	}
	if pr.Iters != 1 {
		t.Errorf("ring pagerank took %d iters, want 1 (uniform start is the fixed point)", pr.Iters)
	}
	// Ring SSSP from vertex 0 with unit weights: dist[v] = v.
	ss := RunSequential(g, SSSP, DefaultEps, 100, calib)
	for v, d := range ss.Values {
		if d != float64(v) {
			t.Fatalf("ring sssp[%d] = %v, want %d", v, d, v)
		}
	}
	if ss.Time <= 0 {
		t.Errorf("sequential time not modeled: %v", ss.Time)
	}
}
