package graph

import (
	"strings"
	"testing"
)

// checkWellFormed asserts the structural invariants every generator
// guarantees: no self-loops, no duplicate edges, positive finite
// weights, and out-degree >= 1 everywhere (PageRank's mass-conservation
// precondition).
func checkWellFormed(t *testing.T, g *Graph) {
	t.Helper()
	seen := make(map[int64]bool)
	for v := 0; v < g.N; v++ {
		for i := g.InOff[v]; i < g.InOff[v+1]; i++ {
			src, w := int(g.InSrc[i]), g.InW[i]
			if src == v {
				t.Errorf("self-loop at vertex %d", v)
			}
			if !(w > 0) {
				t.Errorf("edge %d->%d has weight %v", src, v, w)
			}
			key := int64(src)*int64(g.N) + int64(v)
			if seen[key] {
				t.Errorf("duplicate edge %d->%d", src, v)
			}
			seen[key] = true
		}
	}
	for v, d := range g.OutDeg {
		if d < 1 {
			t.Errorf("vertex %d has out-degree %d", v, d)
		}
	}
}

func TestGenerators(t *testing.T) {
	ring, err := Ring(10)
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, ring)
	if ring.M() != 10 {
		t.Errorf("ring(10) has %d edges, want 10", ring.M())
	}

	rnd, err := Random(32, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, rnd)
	if rnd.M() != 32+64 {
		t.Errorf("random(32,64) has %d edges, want 96", rnd.M())
	}
	rnd2, err := Random(32, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rnd.M() != rnd2.M() || rnd.InSrc[95] != rnd2.InSrc[95] {
		t.Error("Random is not deterministic in its seed")
	}

	cl, err := Clustered(40, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, cl)
}

func TestGeneratorErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
	}{
		{"ring n=1", func() error { _, err := Ring(1); return err }()},
		{"ring too big", func() error { _, err := Ring(maxVertices + 1); return err }()},
		{"random m<0", func() error { _, err := Random(4, -1, 1); return err }()},
		{"clustered n<2k", func() error { _, err := Clustered(6, 4, 1); return err }()},
	} {
		if tc.err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestNewRejectsMalformedEdges(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges []Edge
		want  string
	}{
		{"self-loop", 3, []Edge{{0, 0, 1}}, "self-loop"},
		{"duplicate", 3, []Edge{{0, 1, 1}, {0, 1, 2}}, "duplicate"},
		{"negative weight", 3, []Edge{{0, 1, -1}}, "invalid weight"},
		{"zero weight", 3, []Edge{{0, 1, 0}}, "invalid weight"},
		{"nan weight", 3, []Edge{{0, 1, nan()}}, "invalid weight"},
		{"out of range", 3, []Edge{{0, 5, 1}}, "out of range"},
		{"no vertices", 0, nil, "at least 1 vertex"},
	}
	for _, tc := range cases {
		_, err := New(tc.n, tc.edges)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

func TestParseTopoSpec(t *testing.T) {
	for _, spec := range []string{"ring:8", "random:n=16,m=20,seed=2", "random:n=16", "clustered:n=16,k=2,seed=5"} {
		g, err := ParseTopoSpec(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		checkWellFormed(t, g)
	}
	for _, spec := range []string{"", "grid:8", "ring:x", "random:", "random:m=4", "random:n=8,q=1", "random:n=8,m", "clustered:n=4,k=9"} {
		if _, err := ParseTopoSpec(spec); err == nil {
			t.Errorf("spec %q: no error", spec)
		}
	}
}

func TestParseEdgeList(t *testing.T) {
	g, err := ParseEdgeList([]byte("# a square\nn 4\n0 1 2.5\n1 2\n2 3 1\n3 0 4\n"))
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, g)
	if g.N != 4 || g.M() != 4 {
		t.Fatalf("parsed n=%d m=%d, want 4/4", g.N, g.M())
	}
	if g.InW[g.InOff[2]] != 1 {
		t.Errorf("default weight not applied: %v", g.InW[g.InOff[2]])
	}

	bad := []string{
		"",                      // no header
		"0 1 2\n",               // edges before header
		"n 0\n",                 // zero vertices
		"n 4\n0 1 nan\n",        // NaN weight
		"n 4\n0 1 -3\n",         // negative weight
		"n 4\n1 1\n",            // self-loop
		"n 4\n0 1\n0 1\n",       // duplicate
		"n 4\n0 9\n",            // out of range
		"n 4\n0 1 2 3\n",        // too many fields
		"n 4\nx 1\n",            // non-numeric
		"n 99999999999999999\n", // overflow / over cap
	}
	for _, s := range bad {
		if _, err := ParseEdgeList([]byte(s)); err == nil {
			t.Errorf("ParseEdgeList(%q): no error", s)
		}
	}
}

func TestPartBounds(t *testing.T) {
	lo := partBounds(10, 4)
	want := []int{0, 3, 6, 8, 10}
	for i := range want {
		if lo[i] != want[i] {
			t.Fatalf("partBounds(10,4) = %v, want %v", lo, want)
		}
	}
	if owner(lo, 0) != 0 || owner(lo, 5) != 1 || owner(lo, 9) != 3 {
		t.Errorf("owner lookup wrong: %d %d %d", owner(lo, 0), owner(lo, 5), owner(lo, 9))
	}
}
