package graph

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// Generator/loader caps. Topology specs and edge lists arrive from
// flags, files, and the fuzzer; a malformed or adversarial input must
// fail with an error, never an allocation blow-up.
const (
	maxVertices = 1 << 20
	maxEdges    = 1 << 22
)

// Ring returns the n-vertex directed ring i -> (i+1) mod n with unit
// weights: the diameter-maximizing topology, where stale reads have the
// longest propagation chains to disturb.
func Ring(n int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: ring needs at least 2 vertices, have %d", n)
	}
	if n > maxVertices {
		return nil, fmt.Errorf("graph: ring of %d vertices exceeds the %d cap", n, maxVertices)
	}
	edges := make([]Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = Edge{From: i, To: (i + 1) % n, Weight: 1}
	}
	g, err := New(n, edges)
	if err != nil {
		return nil, err
	}
	return g, nil
}

// Random returns a ring backbone (guaranteeing out-degree >= 1 and
// reachability from every source) plus m random non-duplicate chords
// with weights drawn from [1, 10), deterministic in seed.
func Random(n, m int, seed int64) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: random graph needs at least 2 vertices, have %d", n)
	}
	if n > maxVertices || m < 0 || m > maxEdges {
		return nil, fmt.Errorf("graph: random graph size n=%d m=%d out of range", n, m)
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, n+m)
	have := make(map[int64]bool, n+m)
	key := func(u, v int) int64 { return int64(u)*int64(n) + int64(v) }
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{From: i, To: (i + 1) % n, Weight: 1})
		have[key(i, (i+1)%n)] = true
	}
	// Chords are drawn with rejection; the attempt budget bounds the
	// loop on dense requests instead of spinning on a full graph.
	attempts := 20*m + 100
	for added := 0; added < m && attempts > 0; attempts-- {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || have[key(u, v)] {
			continue
		}
		have[key(u, v)] = true
		edges = append(edges, Edge{From: u, To: v, Weight: 1 + 9*rng.Float64()})
		added++
	}
	return New(n, edges)
}

// Clustered returns k dense clusters arranged on a cluster-level ring:
// each cluster is an intra-cluster ring plus n/k random intra chords,
// and consecutive clusters are joined by a single forward edge. The
// community structure concentrates traffic inside partitions and makes
// the few inter-cluster edges the staleness-critical paths.
func Clustered(n, k int, seed int64) (*Graph, error) {
	if k < 1 || n < 2*k {
		return nil, fmt.Errorf("graph: clustered graph needs n >= 2k, have n=%d k=%d", n, k)
	}
	if n > maxVertices {
		return nil, fmt.Errorf("graph: clustered graph of %d vertices exceeds the %d cap", n, maxVertices)
	}
	rng := rand.New(rand.NewSource(seed))
	lo := partBounds(n, k)
	edges := make([]Edge, 0, 2*n)
	have := make(map[int64]bool, 2*n)
	key := func(u, v int) int64 { return int64(u)*int64(n) + int64(v) }
	add := func(u, v int, w float64) {
		if u == v || have[key(u, v)] {
			return
		}
		have[key(u, v)] = true
		edges = append(edges, Edge{From: u, To: v, Weight: w})
	}
	for c := 0; c < k; c++ {
		base, size := lo[c], lo[c+1]-lo[c]
		for i := 0; i < size; i++ {
			add(base+i, base+(i+1)%size, 1)
		}
		for tries := 0; tries < size; tries++ {
			u, v := base+rng.Intn(size), base+rng.Intn(size)
			add(u, v, 1+4*rng.Float64())
		}
		// The inter-cluster bridge: last vertex of c to first of c+1.
		next := (c + 1) % k
		add(lo[c+1]-1, lo[next], 5+5*rng.Float64())
	}
	return New(n, edges)
}

// ParseTopoSpec builds a graph from a compact spec string, the format
// the -topo flag and the sweep use:
//
//	ring:N
//	random:n=N,m=M,seed=S
//	clustered:n=N,k=K,seed=S
//
// m, k, and seed have defaults (m=2n, k=4, seed=1); n is required for
// the keyed forms.
func ParseTopoSpec(spec string) (*Graph, error) {
	kind, rest, _ := strings.Cut(spec, ":")
	kind = strings.TrimSpace(kind)
	switch kind {
	case "ring":
		n, err := strconv.Atoi(strings.TrimSpace(rest))
		if err != nil {
			return nil, fmt.Errorf("graph: ring spec %q: %v", spec, err)
		}
		return Ring(n)
	case "random", "clustered":
		n, m, k, seed := 0, -1, 4, int64(1)
		if rest == "" {
			return nil, fmt.Errorf("graph: spec %q missing parameters", spec)
		}
		for _, kv := range strings.Split(rest, ",") {
			name, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("graph: spec %q: parameter %q is not key=value", spec, kv)
			}
			x, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: spec %q: parameter %q: %v", spec, kv, err)
			}
			switch strings.TrimSpace(name) {
			case "n":
				if x > maxVertices {
					return nil, fmt.Errorf("graph: spec %q: n=%d exceeds the %d cap", spec, x, maxVertices)
				}
				n = int(x)
			case "m":
				if x > maxEdges {
					return nil, fmt.Errorf("graph: spec %q: m=%d exceeds the %d cap", spec, x, maxEdges)
				}
				m = int(x)
			case "k":
				if x > maxVertices {
					return nil, fmt.Errorf("graph: spec %q: k=%d exceeds the %d cap", spec, x, maxVertices)
				}
				k = int(x)
			case "seed":
				seed = x
			default:
				return nil, fmt.Errorf("graph: spec %q: unknown parameter %q", spec, name)
			}
		}
		if n <= 0 {
			return nil, fmt.Errorf("graph: spec %q needs n", spec)
		}
		if kind == "random" {
			if m < 0 {
				m = 2 * n
			}
			return Random(n, m, seed)
		}
		return Clustered(n, k, seed)
	default:
		return nil, fmt.Errorf("graph: unknown topology kind %q (want ring, random, or clustered)", kind)
	}
}

// ParseEdgeList parses the plain-text edge-list format:
//
//	# comment
//	n <vertices>
//	<from> <to> [weight]
//
// The "n" header must precede the edges; weight defaults to 1. The
// same validation as New applies: indices in range, no self-loops, no
// duplicate edges, weights positive and finite (NaN, Inf, zero, and
// negative weights are rejected).
func ParseEdgeList(data []byte) (*Graph, error) {
	n := -1
	var edges []Edge
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if n < 0 {
			if len(fields) != 2 || fields[0] != "n" {
				return nil, fmt.Errorf("graph: line %d: expected header \"n <vertices>\", got %q", ln+1, line)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: vertex count: %v", ln+1, err)
			}
			if v <= 0 || v > maxVertices {
				return nil, fmt.Errorf("graph: line %d: vertex count %d out of range (0, %d]", ln+1, v, maxVertices)
			}
			n = v
			continue
		}
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: expected \"from to [weight]\", got %q", ln+1, line)
		}
		from, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: from: %v", ln+1, err)
		}
		to, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: to: %v", ln+1, err)
		}
		w := 1.0
		if len(fields) == 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: weight: %v", ln+1, err)
			}
		}
		if len(edges) >= maxEdges {
			return nil, fmt.Errorf("graph: more than %d edges", maxEdges)
		}
		edges = append(edges, Edge{From: from, To: to, Weight: w})
	}
	if n < 0 {
		return nil, fmt.Errorf("graph: empty edge list (missing \"n <vertices>\" header)")
	}
	return New(n, edges)
}
