package graph

import (
	"fmt"
	"math"
	"testing"
)

// FuzzParseEdgeList hammers the edge-list loader with arbitrary bytes.
// The contract under fuzzing: never panic, never blow allocation caps,
// and any graph that parses must be structurally valid — a well-formed
// CSR with in-range indices, no self-loops, no duplicates, positive
// finite weights, and a round trip through the textual form that
// reloads to the identical structure.
func FuzzParseEdgeList(f *testing.F) {
	seeds := []string{
		"n 4\n0 1\n1 2\n2 3\n3 0\n",
		"# comment\nn 3\n0 1 2.5\n1 0 0.125\n",
		"n 2\n0 1 1e-3\n1 0 9.75\n",
		// Malformed documents the parser must reject cleanly.
		"",
		"0 1\n",
		"n 0\n",
		"n -5\n",
		"n 4\n0 0\n",
		"n 4\n0 1 nan\n",
		"n 4\n0 1 -1\n",
		"n 4\n0 1 inf\n",
		"n 4\n0 1\n0 1\n",
		"n 4\n0 99\n",
		"n 4\n0 1 2 3 4\n",
		"n 99999999999999999999\n",
		"n 4\nn 4\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ParseEdgeList(data)
		if err != nil {
			return
		}
		validateFuzzed(t, g)
		// Round trip: re-emit the parsed graph as an edge list and
		// reload it; the CSR must come back identical.
		out := fmt.Sprintf("n %d\n", g.N)
		for v := 0; v < g.N; v++ {
			for i := g.InOff[v]; i < g.InOff[v+1]; i++ {
				out += fmt.Sprintf("%d %d %.17g\n", g.InSrc[i], v, g.InW[i])
			}
		}
		h, err := ParseEdgeList([]byte(out))
		if err != nil {
			t.Fatalf("round trip does not re-parse: %v\nemitted: %q", err, out)
		}
		if h.N != g.N || h.M() != g.M() {
			t.Fatalf("round trip changed shape: n=%d m=%d vs n=%d m=%d", h.N, h.M(), g.N, g.M())
		}
	})
}

// FuzzParseTopoSpec fuzzes the generator-spec parser: never panic, and
// any spec that parses must yield a valid graph within the caps.
func FuzzParseTopoSpec(f *testing.F) {
	seeds := []string{
		"ring:8",
		"ring:2",
		"random:n=16,m=20,seed=2",
		"random:n=16",
		"clustered:n=16,k=2,seed=5",
		"clustered:n=8",
		// Malformed specs the parser must reject cleanly.
		"",
		"ring:",
		"ring:1",
		"ring:x",
		"grid:8",
		"random:",
		"random:n=0",
		"random:n=-4,m=2",
		"random:n=8,m",
		"random:n=8,q=1",
		"random:n=99999999,m=99999999",
		"clustered:n=4,k=99",
		"clustered:n=8,k=0",
		"random:n=8,m=4,seed=-9223372036854775808",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		// Specs can request generator work proportional to n+m; the caps
		// bound it, but keep fuzz iterations fast by skipping huge valid
		// requests.
		g, err := ParseTopoSpec(spec)
		if err != nil {
			return
		}
		validateFuzzed(t, g)
	})
}

// validateFuzzed asserts the structural invariants on a graph a fuzzed
// loader accepted.
func validateFuzzed(t *testing.T, g *Graph) {
	t.Helper()
	if g.N <= 0 || g.N > maxVertices || g.M() > maxEdges {
		t.Fatalf("accepted graph breaks caps: n=%d m=%d", g.N, g.M())
	}
	if len(g.InOff) != g.N+1 || len(g.OutDeg) != g.N || len(g.InW) != g.M() {
		t.Fatalf("inconsistent CSR shape: %d/%d/%d for n=%d m=%d",
			len(g.InOff), len(g.OutDeg), len(g.InW), g.N, g.M())
	}
	seen := make(map[int64]bool, g.M())
	for v := 0; v < g.N; v++ {
		if g.InOff[v] > g.InOff[v+1] {
			t.Fatalf("CSR offsets not monotone at %d", v)
		}
		for i := g.InOff[v]; i < g.InOff[v+1]; i++ {
			src, w := int(g.InSrc[i]), g.InW[i]
			if src < 0 || src >= g.N || src == v {
				t.Fatalf("bad in-edge source %d at vertex %d", src, v)
			}
			if !(w > 0) || math.IsInf(w, 0) {
				t.Fatalf("bad weight %v on edge %d->%d", w, src, v)
			}
			key := int64(src)*int64(g.N) + int64(v)
			if seen[key] {
				t.Fatalf("duplicate edge %d->%d survived validation", src, v)
			}
			seen[key] = true
		}
	}
}
