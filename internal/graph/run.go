package graph

import (
	"fmt"
	"math"

	"nscc/internal/core"
	"nscc/internal/faults"
	"nscc/internal/metrics"
	"nscc/internal/netsim"
	"nscc/internal/pvm"
	"nscc/internal/sim"
	"nscc/internal/simrace"
	"nscc/internal/trace"
	"nscc/internal/tseries"
)

// ctrlTag carries per-superstep convergence reports to partition 0,
// the termination coordinator.
const ctrlTag = 9100

// doneTag carries the coordinator's "the fixed point is reached"
// broadcast.
const doneTag = 9000

// doneMsgSize is the network size of a termination notice.
const doneMsgSize = 8

// sentinelIter is the iteration stamp of the final state an exiting
// partition publishes, so no peer ever blocks on its location again.
const sentinelIter int64 = 1 << 60

// ctrlMsg is one partition's per-superstep report to the coordinator:
// its residual and frontier for the superstep, plus the freshest
// iteration it has observed from each of its source partitions (Seen
// is aligned with the partition's source list). The Seen vector is
// what makes asynchronous termination safe: a residual can look clean
// on stale operands, so the coordinator only trusts clean reports
// computed from every source's post-last-change state.
type ctrlMsg struct {
	Part     int
	Iter     int64
	Residual float64
	Frontier int64
	Seen     []int64
}

// ctrlMsgSize is the network size of a convergence report carrying
// nsrc observed-iteration entries.
func ctrlMsgSize(nsrc int) int { return 24 + 8*nsrc }

// Config describes one partitioned graph-kernel run.
type Config struct {
	G    *Graph
	Algo Algo
	P    int // partitions / simulated processors
	Mode core.Mode
	Age  int64 // Global_Read staleness bound (NonStrict mode), in supersteps

	// Eps is the global convergence bound (DefaultEps when zero). A
	// partition is clean when its superstep residual is at most Eps/P,
	// so the summed residual at convergence is at most Eps — directly
	// comparable to the sequential oracle's global bound.
	Eps float64
	// MaxSupersteps caps a run that fails to converge (required).
	MaxSupersteps int64
	// Quiet is how many consecutive clean reports the coordinator needs
	// from every partition before declaring convergence (on top of the
	// seen-frontier condition — see ctrlMsg). Zero selects the mode's
	// default: 1 for Sync (the barrier makes residuals exact global
	// state), 4 for Async and NonStrict, covering the dirty reports
	// that can still be in flight when the coordinator's picture looks
	// quiet. The differential oracle test is the empirical proof of
	// these windows.
	Quiet int

	Seed     int64
	Calib    Calibration
	NodeOpts core.Options

	// Net overrides the bus network model (nil = netsim.DefaultConfig()).
	Net *netsim.Config
	// Switch, if set, runs on the SP2-style crossbar switch instead.
	Switch *netsim.SwitchConfig
	// PVM overrides the messaging overheads (nil = pvm.DefaultConfig()).
	PVM *pvm.Config

	// Faults, Reliable, ReadTimeout: exactly the GA runner's contract.
	// Note the Sync barrier and the exit protocol rely on per-pair
	// in-order delivery; under reordering fault plans run Reliable,
	// which restores it.
	Faults      *faults.Plan
	Reliable    bool
	ReadTimeout sim.Duration

	Tracer trace.Tracer
	// RaceCheck runs the simulated-time race classifier (strictly
	// passive) and fills Telemetry.Races.
	RaceCheck bool
	// Series, if set, records windowed series: counter "graph.iters"
	// (supersteps per window), gauge "graph.residual" and gauge
	// "graph.frontier_size" (freshest per-superstep values).
	Series *tseries.Set

	// OnSuperstep, if set, observes every partition's owned sub-vector
	// at the end of each superstep (the property-test hook; the engine
	// is serialized, so no synchronization is needed). The slice is
	// live — observers must copy what they keep.
	OnSuperstep func(part int, iter int64, owned []float64)
}

// Result reports one partitioned run.
type Result struct {
	Values     []float64 // assembled final state vector
	Completion sim.Duration
	Supersteps []int64 // supersteps completed per partition
	Converged  bool    // the coordinator declared quiet convergence
	Residual   float64 // sum of the partitions' final residual reports

	Messages    int64
	NetBytes    int64
	QueueDelay  sim.Duration
	WarpMean    float64
	WarpMax     float64
	BlockedTime sim.Duration
	Blocked     int64

	Telemetry *metrics.Telemetry
}

// quietDefault returns the mode's consecutive-clean window.
func (c Config) quietDefault() int {
	if c.Quiet > 0 {
		return c.Quiet
	}
	if c.Mode == core.Sync {
		return 1
	}
	return 4
}

// Run executes one partitioned graph-kernel configuration on a fresh
// simulated cluster. The run is deterministic in cfg.Seed.
func Run(cfg Config) (Result, error) {
	if cfg.G == nil {
		panic("graph: Run needs a graph")
	}
	if cfg.P < 1 {
		panic("graph: Run needs at least 1 partition")
	}
	if cfg.P > cfg.G.N {
		panic(fmt.Sprintf("graph: %d partitions for %d vertices", cfg.P, cfg.G.N))
	}
	if cfg.MaxSupersteps <= 0 {
		panic("graph: Run requires MaxSupersteps")
	}
	g := cfg.G
	eps := cfg.Eps
	if eps <= 0 {
		eps = DefaultEps
	}
	partEps := eps / float64(cfg.P)
	quiet := cfg.quietDefault()

	eng := sim.NewEngine(cfg.Seed)
	eng.SetTracer(cfg.Tracer)
	var net netsim.Fabric
	if cfg.Switch != nil {
		sw := netsim.NewSwitch(eng, *cfg.Switch)
		sw.SetSeries(cfg.Series)
		net = sw
	} else {
		netCfg := netsim.DefaultConfig()
		if cfg.Net != nil {
			netCfg = *cfg.Net
		}
		bus := netsim.New(eng, netCfg)
		bus.SetSeries(cfg.Series)
		net = bus
	}
	if cfg.Faults != nil {
		net = faults.Wrap(net, cfg.Faults)
	}
	pvmCfg := pvm.DefaultConfig()
	if cfg.PVM != nil {
		pvmCfg = *cfg.PVM
	}
	if cfg.Reliable {
		pvmCfg.Reliable = true
	}
	// Pooling is safe only without fault injection (duplication
	// re-delivers the same payload pointer).
	pvmCfg.Pooling = cfg.Faults == nil
	machine := pvm.NewMachine(eng, net, pvmCfg)
	machine.SetSeries(cfg.Series)
	warp := metrics.NewWarpMeter()
	warpSeries := metrics.NewWarpSeries(100 * sim.Millisecond)
	serIters := cfg.Series.Counter("graph.iters")
	serResid := cfg.Series.Gauge("graph.residual")
	serFrontier := cfg.Series.Gauge("graph.frontier_size")
	machine.ArrivalHook = func(dst int, m *pvm.Message) {
		warp.Observe(dst, m.Src, m.SentAt, m.ArrivedAt)
		warpSeries.Observe(dst, m.Src, m.SentAt, m.ArrivedAt)
	}
	nodeOpts := cfg.NodeOpts
	if cfg.ReadTimeout > 0 {
		nodeOpts.ReadTimeout = cfg.ReadTimeout
	}
	nodeOpts.Series = cfg.Series
	var rc *simrace.Checker
	if cfg.RaceCheck {
		rc = simrace.New(eng)
		rc.Attach(machine)
		nodeOpts.Races = rc
	}

	// Partitioning: contiguous vertex blocks; partition q reads the
	// location of every partition owning a source of one of q's
	// in-edges.
	bounds := partBounds(g.N, cfg.P)
	part := make([]int, g.N)
	for p := 0; p < cfg.P; p++ {
		for v := bounds[p]; v < bounds[p+1]; v++ {
			part[v] = p
		}
	}
	reads := make([][]bool, cfg.P)
	for q := range reads {
		reads[q] = make([]bool, cfg.P)
	}
	for v := 0; v < g.N; v++ {
		q := part[v]
		for i := g.InOff[v]; i < g.InOff[v+1]; i++ {
			if p := part[g.InSrc[i]]; p != q {
				reads[q][p] = true
			}
		}
	}
	locs := make([]*core.Location, cfg.P)
	sources := make([][]int, cfg.P) // per partition: whose locations it reads
	members := make([]int, cfg.P)
	for p := 0; p < cfg.P; p++ {
		members[p] = p
		var readers []int
		for q := 0; q < cfg.P; q++ {
			if reads[q][p] {
				readers = append(readers, q)
				sources[q] = append(sources[q], p)
			}
		}
		locs[p] = &core.Location{
			ID:      p,
			Name:    "state",
			Writer:  p,
			Readers: readers,
			Size:    StateBytes(bounds[p+1] - bounds[p]),
		}
	}
	barrier := core.NewMsgBarrier(members)
	init := initValues(cfg.Algo, g.N)

	res := Result{
		Values:     make([]float64, g.N),
		Supersteps: make([]int64, cfg.P),
	}
	// Coordinator termination state: consecutive clean reports, last
	// dirty superstep, and the latest Seen vector per partition.
	lastResid := make([]float64, cfg.P)
	cleanRun := make([]int, cfg.P)
	lastDirty := make([]int64, cfg.P)
	lastSeen := make([][]int64, cfg.P)
	for q := 0; q < cfg.P; q++ {
		lastDirty[q] = -1
		lastSeen[q] = make([]int64, len(sources[q]))
		for i := range lastSeen[q] {
			lastSeen[q][i] = core.NoValue
		}
	}
	coreStats := make([]core.Stats, cfg.P)
	var staleHist metrics.Histogram
	var exitTimes []sim.Time
	remaining := cfg.P

	for p := 0; p < cfg.P; p++ {
		p := p
		machine.Spawn("part", func(task *pvm.Task) {
			node := core.NewNode(task, nodeOpts)
			for _, l := range locs {
				node.Register(l)
			}
			lo, hi := bounds[p], bounds[p+1]
			owned := append([]float64(nil), init[lo:hi]...)
			next := make([]float64, hi-lo)
			view := append([]float64(nil), init...)
			seen := make([]int64, len(sources[p])) // freshest observed iter per source
			for i := range seen {
				seen[i] = core.NoValue
			}
			jit := newJitterer(cfg.Calib, task.Proc().Rng())
			stepCost := cfg.Calib.StepCost(hi-lo, int(g.InOff[hi]-g.InOff[lo])).Seconds()
			done := false

			finish := func(iter int64) {
				// Publish the final state so no peer ever blocks on this
				// partition again, then record results.
				node.Write(locs[p], sentinelIter, append([]float64(nil), owned...))
				res.Supersteps[p] = iter
				copy(res.Values[lo:hi], owned)
				st := node.Stats()
				res.BlockedTime += st.BlockedTime
				res.Blocked += st.BlockedReads
				coreStats[p] = st
				staleHist.Merge(node.Staleness())
				exitTimes = append(exitTimes, task.Now())
				remaining--
				if remaining == 0 {
					eng.Stop()
				}
			}

			// report folds one convergence report into the coordinator's
			// termination state (partition 0 only). Reports from one
			// partition arrive in order, so assignment suffices. Clean
			// means residual at or below the partition's share of the
			// bound — the sequential oracle's criterion, NOT a bitwise
			// fixed point: PageRank can oscillate forever in the last
			// ulp (so a nonzero frontier alone must not veto), while
			// for SSSP the residual IS the frontier count, so a clean
			// report already implies an empty frontier.
			report := func(m *ctrlMsg) {
				lastResid[m.Part] = m.Residual
				if m.Residual <= partEps {
					cleanRun[m.Part]++
				} else {
					cleanRun[m.Part] = 0
					lastDirty[m.Part] = m.Iter
				}
				copy(lastSeen[m.Part], m.Seen)
			}

			// converged decides termination: every partition clean for a
			// quiet stretch, and every clean report computed from each
			// source's post-last-change state — a residual that only
			// looked clean on stale operands cannot pass. Within the
			// convergence bound, the assembled state is then a global
			// fixed point of one Jacobi step.
			converged := func() bool {
				for q := 0; q < cfg.P; q++ {
					if cleanRun[q] < quiet {
						return false
					}
					for si, src := range sources[q] {
						if lastSeen[q][si] <= lastDirty[src] {
							return false
						}
					}
				}
				return true
			}

			for iter := int64(0); ; iter++ {
				if done || iter >= cfg.MaxSupersteps {
					finish(iter)
					return
				}
				// Asynchronous termination is polled: the coordinator
				// folds whatever reports have arrived and leaves the
				// moment it sees convergence (the sentinel publish keeps
				// late readers from ever blocking on it); peers poll the
				// notice between supersteps. Sync termination instead
				// rides the barrier — see the end of the loop.
				if cfg.Mode != core.Sync {
					if p == 0 {
						for {
							m := task.NRecv(pvm.Any, ctrlTag)
							if m == nil {
								break
							}
							report(m.Data.(*ctrlMsg))
						}
						if converged() {
							res.Converged = true
							task.Bcast(doneTag, doneMsgSize, nil)
							finish(iter)
							return
						}
					} else if task.NRecv(pvm.Any, doneTag) != nil {
						finish(iter)
						return
					}
				}

				// Publish this superstep's state, then read the peers
				// under the run's coherence discipline.
				stepStart := task.Now()
				node.Write(locs[p], iter, append([]float64(nil), owned...))
				copy(view[lo:hi], owned)
				for si, src := range sources[p] {
					var u core.Update
					ok := false
					switch cfg.Mode {
					case core.Sync:
						u = node.GlobalRead(locs[src], iter, 0)
						ok = u.Iter != core.NoValue
					case core.Async:
						//nscc:tolerates-stale loc=state -- Jacobi merge is monotone per vertex; stale views only slow convergence
						u, ok = node.Read(locs[src])
					case core.NonStrict:
						//nscc:tolerates-stale loc=state -- the Global_Read age bound is the tolerance contract; simrace classifies the residue
						u = node.GlobalRead(locs[src], iter, cfg.Age)
						ok = u.Iter != core.NoValue
					}
					if !ok {
						continue // nothing arrived yet: keep the initial view
					}
					if u.Iter > seen[si] {
						seen[si] = u.Iter
					}
					slo, shi := bounds[src], bounds[src+1]
					if vs, vok := u.Value.([]float64); vok && len(vs) == shi-slo {
						copy(view[slo:shi], vs)
					}
				}

				residual, frontier := step(g, cfg.Algo, view, next, lo, hi)
				copy(owned, next)
				task.Compute(sim.DurationOf(stepCost * jit.next()))

				if p == 0 {
					report(&ctrlMsg{Part: 0, Iter: iter, Residual: residual, Frontier: frontier, Seen: seen})
				} else {
					task.Send(0, ctrlTag, ctrlMsgSize(len(seen)),
						&ctrlMsg{Part: p, Iter: iter, Residual: residual, Frontier: frontier,
							Seen: append([]int64(nil), seen...)})
				}

				now := task.Now()
				serIters.Add(now, 1)
				serResid.Add(now, residual)
				serFrontier.Add(now, float64(frontier))
				if tr := task.Tracer(); tr != nil {
					tr.Emit(trace.Event{TS: int64(stepStart), Dur: int64(now.Sub(stepStart)),
						Ph: trace.PhaseSpan, Pid: trace.PidApp, Tid: p, Cat: "graph", Name: "superstep",
						K1: "iter", V1: iter, K2: "frontier", V2: frontier})
				}
				if cfg.OnSuperstep != nil {
					cfg.OnSuperstep(p, iter, owned)
				}
				if cfg.Mode == core.Sync {
					// Sync termination rides the barrier: every ctrl report
					// precedes its sender's barrier arrival on the same
					// (src,dst) FIFO stream, so once the coordinator (also
					// the barrier coordinator, member 0) is released it has
					// this superstep's complete picture in its mailbox. It
					// decides and broadcasts a verdict that every peer
					// BLOCKS on — nobody can enter a barrier round the
					// coordinator will not serve, which keeps the exit
					// deadlock-free even when fault injection delays the
					// notice arbitrarily (run Reliable under lossy plans;
					// the barrier itself needs delivery to terminate).
					barrier.Wait(task)
					if p == 0 {
						for {
							m := task.NRecv(pvm.Any, ctrlTag)
							if m == nil {
								break
							}
							report(m.Data.(*ctrlMsg))
						}
						stop := converged()
						if stop {
							res.Converged = true
							done = true
						}
						task.Bcast(doneTag, doneMsgSize, stop)
					} else if task.Recv(0, doneTag).Data.(bool) {
						done = true
					}
				}
			}
		})
	}

	if err := eng.Run(); err != nil {
		return res, err
	}
	for _, t := range exitTimes {
		if d := t.Sub(0); d > res.Completion {
			res.Completion = d
		}
	}
	for _, r := range lastResid {
		res.Residual += r
	}
	if math.IsNaN(res.Residual) {
		res.Residual = math.Inf(1)
	}
	st := net.Stats()
	res.Messages = st.Frames
	res.NetBytes = st.Bytes
	res.QueueDelay = st.QueueDelay
	res.WarpMean = warp.Mean()
	res.WarpMax = warp.Max()

	tasks := machine.TaskTelemetry()
	var violations int64
	for i := range tasks {
		if i < len(coreStats) {
			cs := coreStats[i]
			tasks[i].GlobalReads = cs.GlobalReads
			tasks[i].BlockedReads = cs.BlockedReads
			tasks[i].BlockedSecs = cs.BlockedTime.Seconds()
			tasks[i].ReadTimeouts = cs.ReadTimeouts
			violations += cs.ReadTimeouts
		}
	}
	res.Telemetry = &metrics.Telemetry{
		Variant:             cfg.Mode.String(),
		Age:                 cfg.Age,
		CompletionSecs:      res.Completion.Seconds(),
		Tasks:               tasks,
		Net:                 st.Telemetry(eng.Now().Sub(0)),
		Staleness:           staleHist.Summary(),
		WarpMean:            res.WarpMean,
		WarpMax:             res.WarpMax,
		StalenessViolations: violations,
	}
	if rc != nil {
		res.Telemetry.Races = rc.Telemetry()
		res.Telemetry.RaceLocations = rc.Report().Locations
	}
	if cfg.Series != nil {
		serWarp := cfg.Series.Gauge("pvm.warp")
		for w, v := range warpSeries.Windows() {
			serWarp.Add(sim.Time(int64(w)*int64(100*sim.Millisecond)), v)
		}
		res.Telemetry.Series = cfg.Series.Summaries()
	}
	return res, nil
}
