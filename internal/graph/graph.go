// Package graph implements the delayed asynchronous iterative graph
// workloads (Blanco et al., "Delayed Asynchronous Iterative Graph
// Algorithms") as the repo's third race-tolerant application family
// beside the island GA and parallel logic sampling: PageRank and
// Bellman-Ford SSSP partitioned across simulated cluster nodes, each
// partition publishing its rank/distance sub-vector through a
// core.Location write per superstep and reading neighbor state via
// Global_Read under the three coherence disciplines the paper compares
// (sync barrier, fully asynchronous, age-bounded non-strict).
//
// Both kernels are Jacobi-style fixed-point iterations whose update
// operators tolerate stale operands: PageRank's contribution sum and
// SSSP's min-relaxation both converge to the same unique fixed point
// from any bounded-staleness schedule, which is exactly the
// data-race-tolerance property non-strict coherence exploits. The
// differential and property test harness in this package proves it
// against a sequential oracle.
package graph

import (
	"fmt"
	"math"
)

// Edge is one directed, weighted edge of an input edge list.
type Edge struct {
	From, To int
	Weight   float64
}

// Graph is a directed weighted graph in a pull-oriented CSR layout:
// for each vertex, the sources and weights of its in-edges. Both
// kernels are pull-based (a vertex folds its in-neighbors' state), so
// in-edge adjacency plus the static out-degree vector is the whole
// structural requirement.
type Graph struct {
	N int // vertices, numbered 0..N-1

	// In-edge CSR: the in-edges of vertex v are
	// (InSrc[i], InW[i]) for i in [InOff[v], InOff[v+1]).
	InOff []int32
	InSrc []int32
	InW   []float64

	// OutDeg[u] is u's out-degree (PageRank divides u's rank by it).
	OutDeg []int32
}

// M returns the edge count.
func (g *Graph) M() int { return len(g.InSrc) }

// checkEdges validates an edge list against n vertices: indices in
// range, no self-loops, no duplicate (from, to) pairs, and weights
// positive and finite. These are exactly the malformed-input classes
// the topology fuzzer drives at the loaders.
func checkEdges(n int, edges []Edge) error {
	if n <= 0 {
		return fmt.Errorf("graph: need at least 1 vertex, have %d", n)
	}
	seen := make(map[int64]bool, len(edges))
	for i, e := range edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return fmt.Errorf("graph: edge %d (%d->%d) out of range [0,%d)", i, e.From, e.To, n)
		}
		if e.From == e.To {
			return fmt.Errorf("graph: edge %d is a self-loop at vertex %d", i, e.From)
		}
		if math.IsNaN(e.Weight) || math.IsInf(e.Weight, 0) || e.Weight <= 0 {
			return fmt.Errorf("graph: edge %d (%d->%d) has invalid weight %v (must be positive and finite)",
				i, e.From, e.To, e.Weight)
		}
		key := int64(e.From)*int64(n) + int64(e.To)
		if seen[key] {
			return fmt.Errorf("graph: duplicate edge %d->%d", e.From, e.To)
		}
		seen[key] = true
	}
	return nil
}

// New builds the CSR graph from an edge list, validating it (no
// self-loops, no duplicates, positive finite weights, indices in
// range). The CSR orders each vertex's in-edges by their position in
// the input list, so two calls with the same list produce identical
// float accumulation order in the kernels.
func New(n int, edges []Edge) (*Graph, error) {
	if err := checkEdges(n, edges); err != nil {
		return nil, err
	}
	g := &Graph{
		N:      n,
		InOff:  make([]int32, n+1),
		InSrc:  make([]int32, len(edges)),
		InW:    make([]float64, len(edges)),
		OutDeg: make([]int32, n),
	}
	for _, e := range edges {
		g.InOff[e.To+1]++
		g.OutDeg[e.From]++
	}
	for v := 0; v < n; v++ {
		g.InOff[v+1] += g.InOff[v]
	}
	next := make([]int32, n)
	copy(next, g.InOff[:n])
	for _, e := range edges {
		i := next[e.To]
		next[e.To]++
		g.InSrc[i] = int32(e.From)
		g.InW[i] = e.Weight
	}
	return g, nil
}

// partBounds splits [0, n) into p contiguous blocks; partition i owns
// [lo[i], lo[i+1]). Remainder vertices go to the leading partitions, so
// block sizes differ by at most one.
func partBounds(n, p int) []int {
	lo := make([]int, p+1)
	q, r := n/p, n%p
	for i := 0; i < p; i++ {
		lo[i+1] = lo[i] + q
		if i < r {
			lo[i+1]++
		}
	}
	return lo
}

// owner returns the partition owning vertex v under bounds lo.
func owner(lo []int, v int) int {
	for i := 0; i+1 < len(lo); i++ {
		if v < lo[i+1] {
			return i
		}
	}
	return len(lo) - 2
}
