package graph

import (
	"fmt"
	"math"

	"nscc/internal/sim"
)

// Algo selects the iterative kernel.
type Algo int

const (
	// PageRank is the damped pull-based Jacobi PageRank iteration.
	PageRank Algo = iota
	// SSSP is Bellman-Ford-style single-source shortest paths from
	// vertex 0, as a Jacobi min-relaxation.
	SSSP
)

func (a Algo) String() string {
	switch a {
	case PageRank:
		return "pagerank"
	case SSSP:
		return "sssp"
	default:
		return fmt.Sprintf("Algo(%d)", int(a))
	}
}

// ParseAlgo parses the String form.
func ParseAlgo(s string) (Algo, error) {
	switch s {
	case "pagerank":
		return PageRank, nil
	case "sssp":
		return SSSP, nil
	}
	return 0, fmt.Errorf("graph: unknown algorithm %q (want pagerank or sssp)", s)
}

// Algos is the workload family, in sweep order.
var Algos = []Algo{PageRank, SSSP}

// Damping is PageRank's damping factor.
const Damping = 0.85

// DiffEps is the documented differential tolerance: a partitioned run
// under any coherence discipline must converge to within this
// L-infinity distance of the sequential oracle. It sits three orders
// of magnitude above DefaultEps/(1-Damping), the worst-case distance
// of an approximate PageRank fixed point from the true one, so a pass
// is meaningful and a termination bug (not float noise) is what fails
// it. SSSP runs converge to the exact fixed point — min-relaxation
// over identical operands is order-invariant — and are compared
// against the same bound.
const DiffEps = 1e-6

// DefaultEps is the convergence threshold both runners default to:
// a partition is "clean" when its per-superstep residual (L1 rank
// delta for PageRank, relaxation count for SSSP) is at or below its
// share of this bound.
const DefaultEps = 1e-9

// initValues returns the kernel's iteration-0 state vector: uniform
// 1/n rank for PageRank; +Inf distances with source 0 at zero for SSSP.
func initValues(algo Algo, n int) []float64 {
	vals := make([]float64, n)
	switch algo {
	case PageRank:
		r0 := 1 / float64(n)
		for i := range vals {
			vals[i] = r0
		}
	case SSSP:
		for i := range vals {
			vals[i] = math.Inf(1)
		}
		vals[0] = 0
	}
	return vals
}

// step computes one Jacobi superstep of algo over the owned vertex
// range [lo, hi), reading the full-length view vector and writing
// out[v-lo]. It returns the range's residual — the L1 delta for
// PageRank, the count of relaxed vertices for SSSP — and the number of
// vertices whose value changed (the frontier). Both runners and the
// sequential oracle call this same function, so the per-vertex float
// operation order is identical everywhere by construction; only the
// freshness of the view differs between coherence disciplines.
//
//nscc:commutative
func step(g *Graph, algo Algo, view, out []float64, lo, hi int) (residual float64, frontier int64) {
	switch algo {
	case PageRank:
		base := (1 - Damping) / float64(g.N)
		for v := lo; v < hi; v++ {
			sum := 0.0
			for i := g.InOff[v]; i < g.InOff[v+1]; i++ {
				src := g.InSrc[i]
				if d := g.OutDeg[src]; d > 0 {
					sum += view[src] / float64(d)
				}
			}
			nv := base + Damping*sum
			out[v-lo] = nv
			if d := nv - view[v]; d != 0 {
				frontier++
				residual += math.Abs(d)
			}
		}
	case SSSP:
		for v := lo; v < hi; v++ {
			nv := view[v]
			for i := g.InOff[v]; i < g.InOff[v+1]; i++ {
				if d := view[g.InSrc[i]] + g.InW[i]; d < nv {
					nv = d
				}
			}
			out[v-lo] = nv
			if nv < view[v] {
				frontier++
				residual++
			}
		}
	}
	return residual, frontier
}

// SeqResult is one sequential oracle run: the converged state vector,
// the superstep count, and the modeled serial execution time (the
// speedup baseline).
type SeqResult struct {
	Values []float64
	Iters  int64
	Time   sim.Duration
}

// RunSequential runs algo on a single node to the global residual
// bound eps (capped at maxIters supersteps) and models its serial time
// as iters unjittered whole-graph supersteps. This is the
// differential-test ground truth: the parallel runners' converged
// vectors must match it within the package's documented epsilon.
func RunSequential(g *Graph, algo Algo, eps float64, maxIters int64, calib Calibration) SeqResult {
	if eps <= 0 {
		eps = DefaultEps
	}
	cur := initValues(algo, g.N)
	next := make([]float64, g.N)
	var iters int64
	for iters = 0; iters < maxIters; iters++ {
		residual, _ := step(g, algo, cur, next, 0, g.N)
		cur, next = next, cur
		if residual <= eps {
			iters++
			break
		}
	}
	return SeqResult{
		Values: cur,
		Iters:  iters,
		Time:   sim.Duration(iters) * calib.StepCost(g.N, g.M()),
	}
}

// MaxDiff returns the L-infinity distance between two state vectors,
// treating matching infinities (unreachable SSSP vertices) as equal.
func MaxDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if math.IsInf(a[i], 1) && math.IsInf(b[i], 1) {
			continue
		}
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}
