package graph_test

// Chaos harness for the graph workloads: partitioned PageRank/SSSP
// runs under seeded random fault plans with the reliable transport and
// bounded Global_Read switched on. Asserted invariants mirror the
// faults package's chaos suite: liveness (no deadlock — the engine
// returns ErrDeadlock otherwise), the staleness contract (non-timed-out
// reads honored the age bound, and the violation counter reconciles
// with the per-task export), determinism (identical (seed, plan) pairs
// replay byte for byte), and worker-independence of the virtual result.

import (
	"math"
	"testing"

	"nscc/internal/core"
	"nscc/internal/faults"
	"nscc/internal/graph"
	"nscc/internal/sim"
)

const (
	chaosSeeds   = 16
	chaosAge     = int64(10)
	chaosTimeout = 50 * sim.Millisecond
)

func chaosCfg(t *testing.T, algo graph.Algo, seed int64) graph.Config {
	t.Helper()
	g, err := graph.ParseTopoSpec("clustered:n=40,k=4,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	return graph.Config{
		G: g, Algo: algo, P: 4,
		Mode: core.NonStrict, Age: chaosAge,
		MaxSupersteps: 4000,
		Seed:          seed,
		Calib:         graph.DefaultCalibration(),

		Faults:      faults.RandomPlan(seed, 4, 2.0),
		Reliable:    true,
		ReadTimeout: chaosTimeout,
	}
}

func TestChaosGraph(t *testing.T) {
	for seed := int64(0); seed < chaosSeeds; seed++ {
		algo := graph.Algos[seed%2]
		res, err := graph.Run(chaosCfg(t, algo, seed))
		if err != nil {
			t.Fatalf("seed %d %s: run did not complete (deadlock?): %v", seed, algo, err)
		}
		if res.Completion <= 0 {
			t.Fatalf("seed %d %s: nonpositive completion %v", seed, algo, res.Completion)
		}
		// Staleness contract: every Global_Read that returned without
		// timing out honored the age bound; degraded reads are excluded
		// from the histogram and counted as violations instead.
		if max := res.Telemetry.Staleness.Max; max > chaosAge {
			t.Fatalf("seed %d %s: staleness bound broken: observed %d > age %d", seed, algo, max, chaosAge)
		}
		var perTask int64
		for _, tt := range res.Telemetry.Tasks {
			perTask += tt.ReadTimeouts
		}
		if perTask != res.Telemetry.StalenessViolations {
			t.Fatalf("seed %d %s: StalenessViolations %d != sum of task ReadTimeouts %d",
				seed, algo, res.Telemetry.StalenessViolations, perTask)
		}
	}
}

// TestChaosGraphDeterminism replays a sample of the chaos cells and
// requires byte-identical results, so any chaos failure reproduces
// from its seed alone.
func TestChaosGraphDeterminism(t *testing.T) {
	for seed := int64(0); seed < chaosSeeds; seed += 5 {
		a, err := graph.Run(chaosCfg(t, graph.PageRank, seed))
		if err != nil {
			t.Fatal(err)
		}
		b, err := graph.Run(chaosCfg(t, graph.PageRank, seed))
		if err != nil {
			t.Fatal(err)
		}
		if a.Completion != b.Completion || a.Messages != b.Messages || a.NetBytes != b.NetBytes ||
			a.Telemetry.StalenessViolations != b.Telemetry.StalenessViolations {
			t.Fatalf("seed %d: chaos replay diverged:\n%+v\nvs\n%+v", seed, a, b)
		}
		for i := range a.Values {
			if math.Float64bits(a.Values[i]) != math.Float64bits(b.Values[i]) {
				t.Fatalf("seed %d: values[%d] diverged: %v vs %v", seed, i, a.Values[i], b.Values[i])
			}
		}
	}
}

// TestChaosGraphConvergence compares faulted runs against the clean
// run and the sequential oracle: with reliable delivery and bounded
// reads, lossy-network runs must still converge to the same fixed
// point within the documented epsilon.
func TestChaosGraphConvergence(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		algo := graph.Algos[seed%2]
		cfg := chaosCfg(t, algo, seed)
		seq := graph.RunSequential(cfg.G, algo, 0, cfg.MaxSupersteps, cfg.Calib)
		res, err := graph.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("seed %d %s: faulted run did not converge (residual %g)", seed, algo, res.Residual)
		}
		if d := graph.MaxDiff(res.Values, seq.Values); d > graph.DiffEps {
			t.Errorf("seed %d %s: faulted run diff vs oracle %g > %g", seed, algo, d, graph.DiffEps)
		}
	}
}
