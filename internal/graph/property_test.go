package graph

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"nscc/internal/core"
)

// TestSSSPMonotone is the SSSP safety property: under every coherence
// discipline, a vertex's distance never increases across supersteps.
// Min-relaxation can only tighten, so any increase means a partition
// overwrote a fresh value with a stale one — the bug class non-strict
// delivery could introduce.
func TestSSSPMonotone(t *testing.T) {
	g, err := ParseTopoSpec("clustered:n=40,k=4,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range oracleVariants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			prev := make(map[int][]float64)
			violations := 0
			_, err := Run(Config{
				G: g, Algo: SSSP, P: 4,
				Mode: v.mode, Age: v.age,
				MaxSupersteps: 4000,
				Seed:          7,
				Calib:         DefaultCalibration(),
				OnSuperstep: func(part int, iter int64, owned []float64) {
					if old, ok := prev[part]; ok {
						for i := range owned {
							if owned[i] > old[i] {
								violations++
							}
						}
					}
					prev[part] = append(prev[part][:0], owned...)
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if violations > 0 {
				t.Errorf("%d distance increases observed", violations)
			}
		})
	}
}

// TestPageRankMassConserved checks the PageRank invariant: with every
// vertex's out-degree >= 1, one Jacobi step over a coherent view
// conserves total rank mass. The sequential kernel must hold it exactly
// (to float tolerance) at every superstep; a sync-mode partitioned run
// must hold it globally per superstep, since the barrier makes every
// partition's superstep i a function of the same global state.
func TestPageRankMassConserved(t *testing.T) {
	g, err := ParseTopoSpec("random:n=40,m=80,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	const tol = 1e-9

	// Sequential: iterate the shared kernel directly.
	cur := initValues(PageRank, g.N)
	next := make([]float64, g.N)
	for it := 0; it < 50; it++ {
		step(g, PageRank, cur, next, 0, g.N)
		sum := 0.0
		for _, r := range next {
			sum += r
		}
		if math.Abs(sum-1) > tol {
			t.Fatalf("sequential superstep %d: total mass %v, want 1", it, sum)
		}
		copy(cur, next)
	}

	// Sync-mode partitioned run: assemble each superstep's global vector
	// from the per-partition OnSuperstep snapshots and sum it.
	sums := make(map[int64]float64)
	parts := make(map[int64]int)
	res, err := Run(Config{
		G: g, Algo: PageRank, P: 4,
		Mode:          core.Sync,
		MaxSupersteps: 4000,
		Seed:          11,
		Calib:         DefaultCalibration(),
		OnSuperstep: func(part int, iter int64, owned []float64) {
			for _, r := range owned {
				sums[iter] += r
			}
			parts[iter]++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("sync run did not converge")
	}
	checked := 0
	for iter, n := range parts {
		if n != 4 {
			continue // partial superstep at the exit edge
		}
		if math.Abs(sums[iter]-1) > tol {
			t.Errorf("superstep %d: total mass %v, want 1", iter, sums[iter])
		}
		checked++
	}
	if checked < 2 {
		t.Fatalf("only %d complete supersteps observed", checked)
	}
}

// TestMergeOrderInvariant proves the contribution merge is commutative
// at the float level: assembling a superstep's view from its source
// sub-vectors in any delivery order yields a byte-identical kernel
// output, because each source writes a disjoint slice of the view and
// the kernel folds in fixed CSR order. This is why non-strict delivery
// reordering cannot perturb a superstep given the same operand values.
func TestMergeOrderInvariant(t *testing.T) {
	g, err := ParseTopoSpec("random:n=32,m=64,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	const p = 4
	bounds := partBounds(g.N, p)
	rng := rand.New(rand.NewSource(13))
	// A mid-convergence state: perturbed ranks and partially-relaxed
	// distances exercise non-trivial folds.
	state := make([]float64, g.N)
	for i := range state {
		state[i] = rng.Float64()
	}

	for _, algo := range Algos {
		lo, hi := bounds[1], bounds[2] // partition 1's owned range
		out := make([]float64, hi-lo)
		var want []uint64
		for perm := 0; perm < 8; perm++ {
			view := initValues(algo, g.N)
			order := rng.Perm(p)
			for _, src := range order {
				copy(view[bounds[src]:bounds[src+1]], state[bounds[src]:bounds[src+1]])
			}
			step(g, algo, view, out, lo, hi)
			bits := make([]uint64, len(out))
			for i, x := range out {
				bits[i] = math.Float64bits(x)
			}
			if want == nil {
				want = bits
				continue
			}
			for i := range bits {
				if bits[i] != want[i] {
					t.Fatalf("%s: permutation %d (%v) changed out[%d]: %x vs %x",
						algo, perm, order, i, bits[i], want[i])
				}
			}
		}
	}
}

// TestDeterminism pins the byte-level reproducibility contract: two
// runs with the same Config produce bit-identical state vectors and
// identical virtual metrics, for every discipline.
func TestDeterminism(t *testing.T) {
	g, err := ParseTopoSpec("random:n=40,m=80,seed=2")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []variant{{"sync", core.Sync, 0}, {"async", core.Async, 0}, {"gr10", core.NonStrict, 10}} {
		v := v
		t.Run(v.name, func(t *testing.T) {
			run := func() Result {
				res, err := Run(Config{
					G: g, Algo: PageRank, P: 4,
					Mode: v.mode, Age: v.age,
					MaxSupersteps: 4000,
					Seed:          21,
					Calib:         DefaultCalibration(),
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a, b := run(), run()
			if a.Completion != b.Completion || a.Messages != b.Messages || a.NetBytes != b.NetBytes {
				t.Errorf("metrics differ: %v/%d/%d vs %v/%d/%d",
					a.Completion, a.Messages, a.NetBytes, b.Completion, b.Messages, b.NetBytes)
			}
			for i := range a.Values {
				if math.Float64bits(a.Values[i]) != math.Float64bits(b.Values[i]) {
					t.Fatalf("values[%d] differ: %v vs %v", i, a.Values[i], b.Values[i])
				}
			}
			if fmt.Sprint(a.Supersteps) != fmt.Sprint(b.Supersteps) {
				t.Errorf("supersteps differ: %v vs %v", a.Supersteps, b.Supersteps)
			}
		})
	}
}
