package graph

import (
	"math"
	"math/rand"

	"nscc/internal/sim"
)

// Calibration maps graph-kernel work to virtual CPU time on the same
// RS/6000-591-class node the other workloads assume. A superstep costs
// a per-vertex scan charge plus a per-in-edge fold charge; partitions
// of a skewed graph therefore genuinely cost different amounts, which
// is the load imbalance staleness tolerance rides over.
type Calibration struct {
	VertexCost sim.Duration // per owned vertex per superstep
	EdgeCost   sim.Duration // per folded in-edge per superstep

	// Load skew, identical in structure to the GA's: a lognormal-ish
	// per-superstep jitter plus correlated slow patches (a competing
	// job slowing the node by SlowFactor for a geometric stretch of
	// supersteps with mean SlowLen, entered with probability SlowProb).
	JitterStd  float64
	SlowProb   float64
	SlowFactor float64
	SlowLen    float64
}

// DefaultCalibration returns the paper-scale constants.
func DefaultCalibration() Calibration {
	return Calibration{
		VertexCost: 80 * sim.Microsecond,
		EdgeCost:   20 * sim.Microsecond,
		JitterStd:  0.15,
		SlowProb:   0.015,
		SlowFactor: 2.5,
		SlowLen:    10,
	}
}

// StepCost is the unjittered virtual CPU time of one superstep over
// verts owned vertices folding edges in-edges.
func (c Calibration) StepCost(verts, edges int) sim.Duration {
	return sim.Duration(verts)*c.VertexCost + sim.Duration(edges)*c.EdgeCost
}

// jitterer draws per-superstep load-skew factors with patch
// correlation — one per partition, fed by that partition's process rng,
// mirroring the GA's Jitterer.
type jitterer struct {
	c        Calibration
	rng      *rand.Rand
	slowLeft int
}

func newJitterer(c Calibration, rng *rand.Rand) *jitterer {
	return &jitterer{c: c, rng: rng}
}

// next returns the multiplicative cost factor for the next superstep.
func (j *jitterer) next() float64 {
	f := 1 + math.Abs(j.rng.NormFloat64())*j.c.JitterStd
	if j.slowLeft > 0 {
		j.slowLeft--
		f *= j.c.SlowFactor
	} else if j.c.SlowProb > 0 && j.rng.Float64() < j.c.SlowProb {
		if j.c.SlowLen > 1 {
			for j.rng.Float64() > 1/j.c.SlowLen {
				j.slowLeft++
			}
		}
		f *= j.c.SlowFactor
	}
	return f
}

// StateBytes is the network payload of one published sub-vector
// update: 8 bytes per vertex value plus a small header.
func StateBytes(verts int) int { return 16 + 8*verts }
