// Package rollback implements the bookkeeping for the paper's
// asynchronous logic sampling (§3.2), a variant of synchronization via
// rollback [2]: a processor that needs a remote interface-node value it
// has not received gambles on a default value and continues; when the
// actual value arrives and differs from the value used, the iteration's
// dependent computation must be invalidated and recomputed, and
// corrections (antimessage + fresh value) cascade downstream.
//
// The Store tracks, per (remote node, iteration): the actual values
// received, the values the local computation consumed (and whether each
// was a gambled default), and the set of iterations dirtied by
// conflicting or retracted values.
package rollback

import "sort"

type key struct {
	node int
	iter int64
}

type usedRec struct {
	state   int
	gambled bool
}

// Stats counts the store's activity.
type Stats struct {
	Gambles   int64 // values consumed as defaults
	Actuals   int64 // values consumed from received messages
	Conflicts int64 // received values that contradicted a consumed value
	Retracts  int64 // antimessages that invalidated a consumed value
	Rollbacks int64 // iterations recomputed
}

// Store is one processor's remote-value and gamble ledger.
type Store struct {
	actual map[key]int
	used   map[int64]map[int]usedRec
	dirty  map[int64]bool
	stats  Stats
}

// NewStore returns an empty ledger.
func NewStore() *Store {
	return &Store{
		actual: make(map[key]int),
		used:   make(map[int64]map[int]usedRec),
		dirty:  make(map[int64]bool),
	}
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats { return s.stats }

// PutActual records the received actual state of node at iter. If the
// local computation already consumed a different value for that slot
// (default gamble or since-retracted actual), the iteration is marked
// dirty and true is returned.
func (s *Store) PutActual(node int, iter int64, state int) bool {
	s.actual[key{node, iter}] = state
	if rec, ok := s.used[iter][node]; ok && rec.state != state {
		s.stats.Conflicts++
		s.dirty[iter] = true
		return true
	}
	return false
}

// Retract processes an antimessage: the sender withdraws its previously
// sent value of node at iter. If the local computation consumed that
// value, the iteration is marked dirty and true is returned.
func (s *Store) Retract(node int, iter int64) bool {
	delete(s.actual, key{node, iter})
	if _, ok := s.used[iter][node]; ok {
		s.stats.Retracts++
		s.dirty[iter] = true
		return true
	}
	return false
}

// Consume returns the value the computation should use for node at
// iter: the received actual if present, otherwise the supplied default
// (a gamble). The consumed value is recorded so later arrivals can be
// checked against it.
func (s *Store) Consume(node int, iter int64, def int) (state int, gambled bool) {
	if v, ok := s.actual[key{node, iter}]; ok {
		state, gambled = v, false
		s.stats.Actuals++
	} else {
		state, gambled = def, true
		s.stats.Gambles++
	}
	m := s.used[iter]
	if m == nil {
		m = make(map[int]usedRec)
		s.used[iter] = m
	}
	m[node] = usedRec{state, gambled}
	return state, gambled
}

// Dirty returns the dirtied iterations in increasing order (rollbacks
// must replay oldest-first so corrections cascade consistently).
func (s *Store) Dirty() []int64 {
	out := make([]int64, 0, len(s.dirty))
	//nscc:maporder -- the sort below launders the iteration order
	for it := range s.dirty {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasDirty reports whether any iteration awaits recomputation.
func (s *Store) HasDirty() bool { return len(s.dirty) > 0 }

// BeginRollback clears iter's consumed-value records and dirty flag and
// counts the rollback; the caller then recomputes the iteration, during
// which Consume re-records what the replay uses.
func (s *Store) BeginRollback(iter int64) {
	s.stats.Rollbacks++
	delete(s.dirty, iter)
	delete(s.used, iter)
}

// Prune discards actual/used records older than iter (exclusive) to
// bound memory on long runs. Dirty iterations are never pruned.
func (s *Store) Prune(iter int64) {
	for k := range s.actual {
		if k.iter < iter && !s.dirty[k.iter] {
			delete(s.actual, k)
		}
	}
	for it := range s.used {
		if it < iter && !s.dirty[it] {
			delete(s.used, it)
		}
	}
}
