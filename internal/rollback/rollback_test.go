package rollback

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConsumeActualVsDefault(t *testing.T) {
	s := NewStore()
	v, gambled := s.Consume(7, 3, 1)
	if v != 1 || !gambled {
		t.Fatalf("missing value should gamble on default: v=%d gambled=%v", v, gambled)
	}
	s.PutActual(7, 4, 2)
	v, gambled = s.Consume(7, 4, 1)
	if v != 2 || gambled {
		t.Fatalf("present value should be consumed: v=%d gambled=%v", v, gambled)
	}
	st := s.Stats()
	if st.Gambles != 1 || st.Actuals != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestConflictDirtiesIteration(t *testing.T) {
	s := NewStore()
	s.Consume(7, 3, 1) // gamble on 1
	if s.HasDirty() {
		t.Fatal("nothing should be dirty yet")
	}
	if !s.PutActual(7, 3, 0) {
		t.Fatal("conflicting actual must report a conflict")
	}
	if d := s.Dirty(); len(d) != 1 || d[0] != 3 {
		t.Fatalf("dirty = %v", d)
	}
}

func TestMatchingActualNoConflict(t *testing.T) {
	s := NewStore()
	s.Consume(7, 3, 1)
	if s.PutActual(7, 3, 1) {
		t.Fatal("matching actual should not conflict (the gamble paid off)")
	}
	if s.HasDirty() {
		t.Fatal("nothing dirty after a correct gamble")
	}
}

func TestRetract(t *testing.T) {
	s := NewStore()
	s.PutActual(5, 2, 1)
	s.Consume(5, 2, 0)
	if !s.Retract(5, 2) {
		t.Fatal("retracting a consumed value must dirty the iteration")
	}
	// After retraction the value is gone: next consume gambles.
	s.BeginRollback(2)
	v, gambled := s.Consume(5, 2, 9)
	if v != 9 || !gambled {
		t.Fatalf("post-retract consume: v=%d gambled=%v", v, gambled)
	}
	if s.Retract(4, 2) {
		t.Fatal("retracting an unconsumed value should not dirty")
	}
}

func TestRollbackReplayCycle(t *testing.T) {
	s := NewStore()
	// Iteration 1 gambles on two nodes.
	s.Consume(1, 1, 0)
	s.Consume(2, 1, 0)
	// Both actuals arrive; one conflicts.
	s.PutActual(1, 1, 0)
	s.PutActual(2, 1, 1)
	d := s.Dirty()
	if len(d) != 1 || d[0] != 1 {
		t.Fatalf("dirty = %v", d)
	}
	s.BeginRollback(1)
	if s.HasDirty() {
		t.Fatal("BeginRollback must clear the dirty flag")
	}
	// Replay consumes actuals this time.
	if v, g := s.Consume(1, 1, 0); v != 0 || g {
		t.Fatalf("replay node 1: %d %v", v, g)
	}
	if v, g := s.Consume(2, 1, 0); v != 1 || g {
		t.Fatalf("replay node 2: %d %v", v, g)
	}
	if s.Stats().Rollbacks != 1 {
		t.Fatalf("rollbacks = %d", s.Stats().Rollbacks)
	}
}

func TestDirtySorted(t *testing.T) {
	s := NewStore()
	for _, it := range []int64{9, 2, 5} {
		s.Consume(1, it, 0)
		s.PutActual(1, it, 1)
	}
	d := s.Dirty()
	if len(d) != 3 || d[0] != 2 || d[1] != 5 || d[2] != 9 {
		t.Fatalf("dirty = %v", d)
	}
}

func TestPrune(t *testing.T) {
	s := NewStore()
	for it := int64(0); it < 10; it++ {
		s.PutActual(1, it, 1)
		s.Consume(1, it, 1)
	}
	// Dirty iteration 3 must survive pruning.
	s.PutActual(1, 3, 0)
	s.Prune(8)
	if v, g := s.Consume(1, 9, 7); v != 1 || g {
		t.Fatalf("recent value pruned: %d %v", v, g)
	}
	if v, g := s.Consume(1, 1, 7); v != 7 || !g {
		t.Fatalf("old value should be pruned: %d %v", v, g)
	}
	if d := s.Dirty(); len(d) != 1 || d[0] != 3 {
		t.Fatalf("dirty lost by prune: %v", d)
	}
}

// Property: a gamble on the eventually-correct value never dirties; a
// gamble on a wrong value always does.
func TestGambleOutcomeProperty(t *testing.T) {
	f := func(defRaw, actRaw uint8, iter int64, node uint8) bool {
		def := int(defRaw % 4)
		act := int(actRaw % 4)
		s := NewStore()
		s.Consume(int(node), iter, def)
		conflict := s.PutActual(int(node), iter, act)
		if def == act {
			return !conflict && !s.HasDirty()
		}
		return conflict && s.HasDirty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestStoreAgainstOracle drives the Store with random operation
// sequences and checks every observable against a simple reference
// model (maps of actuals and consumed values).
func TestStoreAgainstOracle(t *testing.T) {
	type slot struct {
		node int
		iter int64
	}
	f := func(seed int64, opsRaw []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore()
		actuals := map[slot]int{}
		used := map[slot]int{}
		dirty := map[int64]bool{}

		for _, op := range opsRaw {
			node := int(op % 3)
			iter := int64(op/3) % 4
			k := slot{node, iter}
			switch rng.Intn(4) {
			case 0: // Consume
				def := rng.Intn(3)
				got, gambled := s.Consume(node, iter, def)
				wantVal, haveActual := actuals[k]
				if haveActual {
					if got != wantVal || gambled {
						return false
					}
				} else if got != def || !gambled {
					return false
				}
				used[k] = got
			case 1: // PutActual
				state := rng.Intn(3)
				conflict := s.PutActual(node, iter, state)
				u, wasUsed := used[k]
				wantConflict := wasUsed && u != state
				if conflict != wantConflict {
					return false
				}
				if wantConflict {
					dirty[iter] = true
				}
				actuals[k] = state
			case 2: // Retract
				r := s.Retract(node, iter)
				_, wasUsed := used[k]
				if r != wasUsed {
					return false
				}
				if wasUsed {
					dirty[iter] = true
				}
				delete(actuals, k)
			case 3: // BeginRollback on a dirty iteration, if any
				if len(dirty) == 0 {
					continue
				}
				ds := s.Dirty()
				if len(ds) != len(dirty) {
					return false
				}
				it := ds[0]
				if !dirty[it] {
					return false
				}
				s.BeginRollback(it)
				delete(dirty, it)
				for k := range used {
					if k.iter == it {
						delete(used, k)
					}
				}
			}
			if s.HasDirty() != (len(dirty) > 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
