package benchio

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Delta is one metric's before/after pair in a snapshot comparison.
type Delta struct {
	Name   string  // benchmark or sweep name
	Metric string  // "ns_per_op", "allocs_per_op", "bytes_per_op", "cells_per_sec"
	Before float64 // baseline value
	After  float64 // current value
	Gated  bool    // counts toward the regression verdict
}

// Ratio returns After/Before (0 when the baseline is 0).
func (d Delta) Ratio() float64 {
	if d.Before == 0 {
		return 0
	}
	return d.After / d.Before
}

// Change returns the fractional change, e.g. +0.12 for 12% worse on a
// lower-is-better metric.
func (d Delta) Change() float64 {
	if d.Before == 0 {
		return 0
	}
	return d.After/d.Before - 1
}

// CompareOptions configures the regression gate.
type CompareOptions struct {
	// Threshold is the fractional regression limit on gated metrics
	// (0.10 = fail when a metric got more than 10% worse).
	Threshold float64
	// AllocsOnly gates on allocs/op alone — the machine-independent
	// column — so CI can compare against a baseline recorded elsewhere.
	// Time metrics are still reported, just not gated.
	AllocsOnly bool
}

// Comparison is the result of diffing two snapshots.
type Comparison struct {
	Deltas      []Delta // every matched metric, stable order
	Regressions []Delta // gated metrics beyond the threshold
	// OnlyBase / OnlyCur list benchmarks present in one side only — a
	// renamed or dropped benchmark must be visible, not silently skipped.
	OnlyBase []string
	OnlyCur  []string
}

// EnvMismatch describes why two snapshots are not comparable on time
// metrics (different machine class), or returns "" when they are.
// Snapshots predating the environment stamp are treated as unknown
// machines.
func EnvMismatch(base, cur *Snapshot) string {
	if base.GOOS == "" || base.GOARCH == "" || base.CPUs == 0 {
		return "baseline lacks an environment stamp (goos/goarch/cpus)"
	}
	if cur.GOOS == "" || cur.GOARCH == "" || cur.CPUs == 0 {
		return "current snapshot lacks an environment stamp (goos/goarch/cpus)"
	}
	if base.GOOS != cur.GOOS || base.GOARCH != cur.GOARCH {
		return fmt.Sprintf("platform differs: baseline %s/%s, current %s/%s",
			base.GOOS, base.GOARCH, cur.GOOS, cur.GOARCH)
	}
	if base.CPUs != cur.CPUs {
		return fmt.Sprintf("CPU count differs: baseline %d, current %d", base.CPUs, cur.CPUs)
	}
	return ""
}

// Compare diffs cur against base. Gated metrics are ns/op and
// allocs/op on the microbenchmarks (allocs/op alone with AllocsOnly);
// bytes/op and sweep throughput are reported but never gated.
func Compare(base, cur *Snapshot, o CompareOptions) Comparison {
	var c Comparison
	baseMicro := map[string]Micro{}
	for _, m := range base.Micro {
		baseMicro[m.Name] = m
	}
	curMicro := map[string]Micro{}
	for _, m := range cur.Micro {
		curMicro[m.Name] = m
	}
	for _, m := range cur.Micro {
		b, ok := baseMicro[m.Name]
		if !ok {
			c.OnlyCur = append(c.OnlyCur, m.Name)
			continue
		}
		c.Deltas = append(c.Deltas,
			Delta{Name: m.Name, Metric: "ns_per_op", Before: b.NsPerOp, After: m.NsPerOp, Gated: !o.AllocsOnly},
			Delta{Name: m.Name, Metric: "allocs_per_op", Before: b.AllocsOp, After: m.AllocsOp, Gated: true},
			Delta{Name: m.Name, Metric: "bytes_per_op", Before: b.BytesOp, After: m.BytesOp},
		)
	}
	for _, m := range base.Micro {
		if _, ok := curMicro[m.Name]; !ok {
			c.OnlyBase = append(c.OnlyBase, m.Name)
		}
	}
	sort.Strings(c.OnlyBase)
	sort.Strings(c.OnlyCur)

	baseSweep := map[string]SweepStat{}
	for _, s := range base.Sweeps {
		baseSweep[s.Name] = s
	}
	for _, s := range cur.Sweeps {
		if b, ok := baseSweep[s.Name]; ok {
			// Higher is better for throughput; recorded with Before/After
			// as-is, consumers interpret the direction by metric name.
			c.Deltas = append(c.Deltas,
				Delta{Name: s.Name, Metric: "cells_per_sec", Before: b.CellsPerSec, After: s.CellsPerSec})
		}
	}

	for _, d := range c.Deltas {
		if d.Gated && d.Before > 0 && d.Change() > o.Threshold {
			c.Regressions = append(c.Regressions, d)
		}
	}
	return c
}

// ReadFile loads a BENCH_*.json snapshot. A file that parses as JSON
// but has no go_version stamp is rejected: it is some other artifact.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.GoVersion == "" {
		return nil, fmt.Errorf("%s: not a BENCH snapshot (no go_version field)", path)
	}
	return &s, nil
}
