package benchio

import (
	"testing"

	"nscc/internal/core"
	"nscc/internal/ga"
	"nscc/internal/ga/functions"
	"nscc/internal/netsim"
	"nscc/internal/pvm"
	"nscc/internal/sim"
)

// NamedMicro pairs a stable snapshot key with a benchmark body.
type NamedMicro struct {
	Name string
	Fn   func(b *testing.B)
}

// StandardMicros returns the key DES hot-path microbenchmarks every
// BENCH_*.json snapshot carries: the engine's event/sleep path, the
// message layer's round trip, and one short Global_Read island-GA run.
// They mirror the equivalent go-test benchmarks (internal/sim and
// internal/pvm bench_test files) so numbers line up across harnesses.
func StandardMicros() []NamedMicro {
	return []NamedMicro{
		{Name: "sim.SleepLoop", Fn: microSleepLoop},
		{Name: "sim.QueueHold100k", Fn: microQueueHoldCalendar},
		{Name: "sim.QueueHold100kHeap", Fn: microQueueHoldHeap},
		{Name: "pvm.PingPong", Fn: microPingPong},
		{Name: "pvm.Bcast1000", Fn: microBcast1000},
		{Name: "ga.IslandShortRun", Fn: microIslandRun},
	}
}

func microSleepLoop(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine(1)
	eng.Spawn("sleeper", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(sim.Microsecond)
		}
	})
	b.ResetTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

// microQueueHoldCalendar runs the hold model (steady-state pop-min +
// reinsert) on the engine's calendar queue at the pending population a
// multi-thousand-node run sustains. sim.HoldBench drives the queue
// bare, so each op is exactly one pop + one insert — the same work its
// heap twin below performs.
func microQueueHoldCalendar(b *testing.B) {
	b.ReportAllocs()
	hb := sim.NewHoldBench(100000, 1)
	b.ResetTimer()
	hb.Ops(b.N)
}

// microQueueHoldHeap is the same hold model on the pre-calendar binary
// heap, the baseline the calendar queue is gated against.
func microQueueHoldHeap(b *testing.B) {
	b.ReportAllocs()
	hb := sim.NewHoldHeapBench(100000, 1)
	b.ResetTimer()
	hb.Ops(b.N)
}

func microPingPong(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine(1)
	net := netsim.New(eng, netsim.DefaultConfig())
	pvmCfg := pvm.DefaultConfig()
	pvmCfg.Pooling = true
	m := pvm.NewMachine(eng, net, pvmCfg)
	m.Spawn("ping", func(t *pvm.Task) {
		for i := 0; i < b.N; i++ {
			t.Send(1, 1, 64, nil)
			t.Recv(1, 2)
		}
	})
	m.Spawn("pong", func(t *pvm.Task) {
		for i := 0; i < b.N; i++ {
			t.Recv(0, 1)
			t.Send(0, 2, 64, nil)
		}
	})
	b.ResetTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

// microBcast1000 is the gossip-round shape of a scaled cluster: one
// task broadcasting to 999 peers that each ack. Its allocs/op is the
// perf-gate sentinel for the O(n²)-payload-copy regression — Bcast must
// reuse its destination scratch and share one pooled Message across the
// fan-out.
func microBcast1000(b *testing.B) {
	b.ReportAllocs()
	const p = 1000
	eng := sim.NewEngine(1)
	net := netsim.New(eng, netsim.DefaultConfig())
	pvmCfg := pvm.DefaultConfig()
	pvmCfg.Pooling = true
	m := pvm.NewMachine(eng, net, pvmCfg)
	m.Spawn("root", func(t *pvm.Task) {
		for i := 0; i < b.N; i++ {
			t.Bcast(1, 64, nil)
			for j := 1; j < p; j++ {
				t.Recv(pvm.Any, 2)
			}
		}
	})
	for j := 1; j < p; j++ {
		m.Spawn("leaf", func(t *pvm.Task) {
			for i := 0; i < b.N; i++ {
				t.Recv(0, 1)
				t.Send(0, 2, 8, nil)
			}
		})
	}
	b.ResetTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

func microIslandRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := ga.IslandConfig{
			Fn: functions.F1, Par: ga.DeJongParams(), P: 4,
			Mode: core.NonStrict, Age: 10,
			FixedGens: 40, MinGens: 40, MaxGens: 160, Target: 0.3,
			Seed: int64(i + 1), Calib: ga.DefaultCalibration(),
		}
		if _, err := ga.RunIsland(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
