package benchio

import (
	"testing"

	"nscc/internal/core"
	"nscc/internal/ga"
	"nscc/internal/ga/functions"
	"nscc/internal/netsim"
	"nscc/internal/pvm"
	"nscc/internal/sim"
)

// NamedMicro pairs a stable snapshot key with a benchmark body.
type NamedMicro struct {
	Name string
	Fn   func(b *testing.B)
}

// StandardMicros returns the key DES hot-path microbenchmarks every
// BENCH_*.json snapshot carries: the engine's event/sleep path, the
// message layer's round trip, and one short Global_Read island-GA run.
// They mirror the equivalent go-test benchmarks (internal/sim and
// internal/pvm bench_test files) so numbers line up across harnesses.
func StandardMicros() []NamedMicro {
	return []NamedMicro{
		{Name: "sim.SleepLoop", Fn: microSleepLoop},
		{Name: "pvm.PingPong", Fn: microPingPong},
		{Name: "ga.IslandShortRun", Fn: microIslandRun},
	}
}

func microSleepLoop(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine(1)
	eng.Spawn("sleeper", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(sim.Microsecond)
		}
	})
	b.ResetTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

func microPingPong(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine(1)
	net := netsim.New(eng, netsim.DefaultConfig())
	pvmCfg := pvm.DefaultConfig()
	pvmCfg.Pooling = true
	m := pvm.NewMachine(eng, net, pvmCfg)
	m.Spawn("ping", func(t *pvm.Task) {
		for i := 0; i < b.N; i++ {
			t.Send(1, 1, 64, nil)
			t.Recv(1, 2)
		}
	})
	m.Spawn("pong", func(t *pvm.Task) {
		for i := 0; i < b.N; i++ {
			t.Recv(0, 1)
			t.Send(0, 2, 64, nil)
		}
	})
	b.ResetTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

func microIslandRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := ga.IslandConfig{
			Fn: functions.F1, Par: ga.DeJongParams(), P: 4,
			Mode: core.NonStrict, Age: 10,
			FixedGens: 40, MinGens: 40, MaxGens: 160, Target: 0.3,
			Seed: int64(i + 1), Calib: ga.DefaultCalibration(),
		}
		if _, err := ga.RunIsland(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
