package benchio

import (
	"os"
	"path/filepath"
	"testing"
)

func snapPair() (*Snapshot, *Snapshot) {
	base := &Snapshot{
		Name: "all", GoVersion: "go1.22", GOOS: "linux", GOARCH: "amd64", CPUs: 8,
		Micro: []Micro{
			{Name: "engine/schedule", NsPerOp: 100, AllocsOp: 2, BytesOp: 64},
			{Name: "pvm/roundtrip", NsPerOp: 2000, AllocsOp: 10, BytesOp: 512},
		},
		Sweeps: []SweepStat{{Name: "Figure 2", Cells: 64, WallSecs: 2, CellsPerSec: 32}},
	}
	cur := &Snapshot{
		Name: "all", GoVersion: "go1.22", GOOS: "linux", GOARCH: "amd64", CPUs: 8,
		Micro: []Micro{
			{Name: "engine/schedule", NsPerOp: 105, AllocsOp: 2, BytesOp: 64},
			{Name: "pvm/roundtrip", NsPerOp: 2100, AllocsOp: 10, BytesOp: 512},
		},
		Sweeps: []SweepStat{{Name: "Figure 2", Cells: 64, WallSecs: 2.1, CellsPerSec: 30.5}},
	}
	return base, cur
}

func TestCompareWithinThreshold(t *testing.T) {
	base, cur := snapPair()
	c := Compare(base, cur, CompareOptions{Threshold: 0.10})
	if len(c.Regressions) != 0 {
		t.Errorf("5%% drift flagged as regression: %+v", c.Regressions)
	}
	if len(c.Deltas) != 7 { // 2 micros x 3 metrics + 1 sweep
		t.Errorf("deltas = %d, want 7", len(c.Deltas))
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	base, cur := snapPair()
	cur.Micro[1].NsPerOp = 2500 // +25%
	cur.Micro[0].AllocsOp = 3   // +50%
	c := Compare(base, cur, CompareOptions{Threshold: 0.10})
	if len(c.Regressions) != 2 {
		t.Fatalf("regressions = %+v, want ns_per_op and allocs_per_op hits", c.Regressions)
	}
	for _, r := range c.Regressions {
		if !r.Gated {
			t.Errorf("ungated delta in regressions: %+v", r)
		}
	}
}

func TestCompareAllocsOnlyIgnoresTime(t *testing.T) {
	base, cur := snapPair()
	cur.Micro[1].NsPerOp = 9999 // wildly slower — but a different machine may be
	c := Compare(base, cur, CompareOptions{Threshold: 0.10, AllocsOnly: true})
	if len(c.Regressions) != 0 {
		t.Errorf("allocs-only gate flagged time regression: %+v", c.Regressions)
	}
	cur.Micro[0].AllocsOp = 5
	c = Compare(base, cur, CompareOptions{Threshold: 0.10, AllocsOnly: true})
	if len(c.Regressions) != 1 || c.Regressions[0].Metric != "allocs_per_op" {
		t.Errorf("allocs regression not flagged: %+v", c.Regressions)
	}
}

func TestCompareReportsUnmatched(t *testing.T) {
	base, cur := snapPair()
	cur.Micro[0].Name = "engine/schedule_v2"
	c := Compare(base, cur, CompareOptions{Threshold: 0.10})
	if len(c.OnlyBase) != 1 || c.OnlyBase[0] != "engine/schedule" {
		t.Errorf("OnlyBase = %v", c.OnlyBase)
	}
	if len(c.OnlyCur) != 1 || c.OnlyCur[0] != "engine/schedule_v2" {
		t.Errorf("OnlyCur = %v", c.OnlyCur)
	}
}

func TestEnvMismatch(t *testing.T) {
	base, cur := snapPair()
	if msg := EnvMismatch(base, cur); msg != "" {
		t.Errorf("matched envs reported mismatch: %s", msg)
	}
	cur.GOARCH = "arm64"
	if msg := EnvMismatch(base, cur); msg == "" {
		t.Error("cross-arch comparison not refused")
	}
	cur.GOARCH = base.GOARCH
	cur.CPUs = 4
	if msg := EnvMismatch(base, cur); msg == "" {
		t.Error("cross-CPU-count comparison not refused")
	}
	// Legacy snapshot with no stamp is an unknown machine.
	base.GOOS, base.GOARCH, base.CPUs = "", "", 0
	cur.CPUs = 8
	if msg := EnvMismatch(base, cur); msg == "" {
		t.Error("unstamped baseline not refused")
	}
}

func TestReadFileRejectsNonSnapshot(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "BENCH_x.json")
	if err := WriteFile(good, NewSnapshot("x", 4)); err != nil {
		t.Fatal(err)
	}
	s, err := ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if s.GOOS == "" || s.CPUs == 0 {
		t.Errorf("snapshot missing environment stamp: %+v", s)
	}

	bad := filepath.Join(dir, "other.json")
	if err := os.WriteFile(bad, []byte(`{"variant":"gr(10)","completion_secs":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad); err == nil {
		t.Error("telemetry JSON accepted as BENCH snapshot")
	}
}
