package benchio

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s := NewSnapshot("test", 4)
	s.AddSweep("fig2", 64, 2.0)
	if s.Sweeps[0].CellsPerSec != 32 {
		t.Fatalf("cells/sec = %v", s.Sweeps[0].CellsPerSec)
	}
	s.Micro = append(s.Micro, Micro{Name: "sim.SleepLoop", NsPerOp: 500, AllocsOp: 0})

	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "test" || back.Workers != 4 || len(back.Sweeps) != 1 || len(back.Micro) != 1 {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if back.GoVersion == "" || back.GOMAXPROCS < 1 {
		t.Fatalf("environment stamp missing: %+v", back)
	}
}

func TestWriteFileEmptyPathNoop(t *testing.T) {
	if err := WriteFile("", NewSnapshot("x", 1)); err != nil {
		t.Fatal(err)
	}
}

func TestRunMicroCollectsAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark")
	}
	s := NewSnapshot("t", 1)
	s.RunMicro("alloc", func(b *testing.B) {
		b.ReportAllocs()
		var sink []byte
		for i := 0; i < b.N; i++ {
			sink = make([]byte, 64)
		}
		_ = sink
	})
	m := s.Micro[0]
	if m.AllocsOp < 1 || m.BytesOp < 64 {
		t.Fatalf("alloc stats not collected: %+v", m)
	}
}

func TestMinMicroTakesColumnwiseMinimum(t *testing.T) {
	// Three fabricated samples where no single one holds every minimum:
	// the reduction must pick each column's best independently.
	rs := []testing.BenchmarkResult{
		{N: 100, T: 100 * 500 * time.Nanosecond, MemAllocs: 100 * 7, MemBytes: 100 * 640},
		{N: 100, T: 100 * 300 * time.Nanosecond, MemAllocs: 100 * 9, MemBytes: 100 * 512},
		{N: 100, T: 100 * 400 * time.Nanosecond, MemAllocs: 100 * 5, MemBytes: 100 * 700},
	}
	m := minMicro("x", rs)
	if m.Name != "x" {
		t.Fatalf("name = %q", m.Name)
	}
	if m.NsPerOp != 300 || m.AllocsOp != 5 || m.BytesOp != 512 {
		t.Fatalf("minMicro = %+v, want ns=300 allocs=5 bytes=512", m)
	}
}

func TestRunMicroRepsRecordsOneEntry(t *testing.T) {
	s := NewSnapshot("t", 1)
	s.RunMicroReps("noop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
		}
	}, 2)
	if len(s.Micro) != 1 || s.Micro[0].Name != "noop" {
		t.Fatalf("micro entries = %+v", s.Micro)
	}
	if s.Micro[0].AllocsOp != 0 {
		t.Fatalf("noop benchmark reported allocs: %+v", s.Micro[0])
	}
}

func TestStandardMicrosAreNamed(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range StandardMicros() {
		if m.Name == "" || m.Fn == nil || seen[m.Name] {
			t.Fatalf("bad micro entry %+v", m)
		}
		seen[m.Name] = true
	}
}
