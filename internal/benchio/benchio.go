// Package benchio produces the repo's perf-trajectory artifacts: the
// BENCH_<name>.json snapshots nscc-bench emits via -bench-out. A
// snapshot captures one sweep's wall-clock shape (cells, cells/sec,
// worker count) together with allocs/op and ns/op from the key DES
// microbenchmarks, so successive PRs can be compared number-for-number
// (`git diff` on the JSON, or any plotting of the series).
package benchio

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"nscc/internal/ckpt"
)

// Micro is one microbenchmark's measurement.
type Micro struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_per_op"`
	AllocsOp float64 `json:"allocs_per_op"`
	BytesOp  float64 `json:"bytes_per_op"`
}

// SweepStat records one experiment sweep's wall-clock outcome.
type SweepStat struct {
	Name        string  `json:"name"`
	Cells       int     `json:"cells"`
	WallSecs    float64 `json:"wall_secs"`
	CellsPerSec float64 `json:"cells_per_sec"`
}

// Snapshot is the full BENCH_*.json payload. GOOS/GOARCH/CPUs identify
// the machine class that produced the numbers: wall-clock and ns/op
// figures are only comparable within one class, and nscc-report
// refuses cross-machine comparisons unless forced (allocs/op is the
// machine-independent column).
type Snapshot struct {
	Name       string      `json:"name"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPUs       int         `json:"cpus,omitempty"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Workers    int         `json:"workers"`
	Sweeps     []SweepStat `json:"sweeps,omitempty"`
	Micro      []Micro     `json:"microbenchmarks,omitempty"`
}

// NewSnapshot returns a snapshot stamped with the runtime environment.
func NewSnapshot(name string, workers int) *Snapshot {
	return &Snapshot{
		Name:       name,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
	}
}

// AddSweep records one sweep's wall-clock result.
func (s *Snapshot) AddSweep(name string, cells int, wallSecs float64) {
	st := SweepStat{Name: name, Cells: cells, WallSecs: wallSecs}
	if wallSecs > 0 {
		st.CellsPerSec = float64(cells) / wallSecs
	}
	s.Sweeps = append(s.Sweeps, st)
}

// DefaultMicroReps is how many independent samples RunMicro takes of
// each microbenchmark. The recorded figure is the minimum across
// samples: on a noisy shared box the minimum is the best estimate of
// the code's intrinsic cost (interference only ever adds time), so
// min-of-N makes successive snapshots comparable where a single sample
// would jitter.
const DefaultMicroReps = 3

// RunMicro executes fn DefaultMicroReps times under the testing
// benchmark harness and records the per-column minimum of ns/op,
// allocs/op and bytes/op. The benchmark functions must call
// b.ReportAllocs (or the harness must be invoked with -benchmem; here
// allocation stats are always collected via ReportAllocs in the
// callees).
func (s *Snapshot) RunMicro(name string, fn func(b *testing.B)) {
	s.RunMicroReps(name, fn, DefaultMicroReps)
}

// RunMicroReps is RunMicro with an explicit sample count (reps < 1 is
// treated as 1).
func (s *Snapshot) RunMicroReps(name string, fn func(b *testing.B), reps int) {
	if reps < 1 {
		reps = 1
	}
	rs := make([]testing.BenchmarkResult, reps)
	for i := range rs {
		rs[i] = testing.Benchmark(fn)
	}
	s.Micro = append(s.Micro, minMicro(name, rs))
}

// minMicro reduces repeated benchmark samples to one Micro by taking
// each column's minimum independently — the least-interfered estimate
// of every figure, even if no single sample achieved all three at once.
func minMicro(name string, rs []testing.BenchmarkResult) Micro {
	m := Micro{
		Name:     name,
		NsPerOp:  float64(rs[0].NsPerOp()),
		AllocsOp: float64(rs[0].AllocsPerOp()),
		BytesOp:  float64(rs[0].AllocedBytesPerOp()),
	}
	for _, r := range rs[1:] {
		if v := float64(r.NsPerOp()); v < m.NsPerOp {
			m.NsPerOp = v
		}
		if v := float64(r.AllocsPerOp()); v < m.AllocsOp {
			m.AllocsOp = v
		}
		if v := float64(r.AllocedBytesPerOp()); v < m.BytesOp {
			m.BytesOp = v
		}
	}
	return m
}

// WriteFile writes the snapshot as indented JSON (a no-op when path is
// empty). The write is atomic — temp file, fsync, rename — so a crash
// mid-write can never leave a truncated BENCH_*.json at the committed
// trajectory path.
func WriteFile(path string, s *Snapshot) error {
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := ckpt.WriteFileAtomic(path, data); err != nil {
		return fmt.Errorf("benchio: %w", err)
	}
	return nil
}
