// Package benchio produces the repo's perf-trajectory artifacts: the
// BENCH_<name>.json snapshots nscc-bench emits via -bench-out. A
// snapshot captures one sweep's wall-clock shape (cells, cells/sec,
// worker count) together with allocs/op and ns/op from the key DES
// microbenchmarks, so successive PRs can be compared number-for-number
// (`git diff` on the JSON, or any plotting of the series).
package benchio

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"nscc/internal/ckpt"
)

// Micro is one microbenchmark's measurement.
type Micro struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_per_op"`
	AllocsOp float64 `json:"allocs_per_op"`
	BytesOp  float64 `json:"bytes_per_op"`
}

// SweepStat records one experiment sweep's wall-clock outcome.
type SweepStat struct {
	Name        string  `json:"name"`
	Cells       int     `json:"cells"`
	WallSecs    float64 `json:"wall_secs"`
	CellsPerSec float64 `json:"cells_per_sec"`
}

// Snapshot is the full BENCH_*.json payload. GOOS/GOARCH/CPUs identify
// the machine class that produced the numbers: wall-clock and ns/op
// figures are only comparable within one class, and nscc-report
// refuses cross-machine comparisons unless forced (allocs/op is the
// machine-independent column).
type Snapshot struct {
	Name       string      `json:"name"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPUs       int         `json:"cpus,omitempty"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Workers    int         `json:"workers"`
	Sweeps     []SweepStat `json:"sweeps,omitempty"`
	Micro      []Micro     `json:"microbenchmarks,omitempty"`
}

// NewSnapshot returns a snapshot stamped with the runtime environment.
func NewSnapshot(name string, workers int) *Snapshot {
	return &Snapshot{
		Name:       name,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
	}
}

// AddSweep records one sweep's wall-clock result.
func (s *Snapshot) AddSweep(name string, cells int, wallSecs float64) {
	st := SweepStat{Name: name, Cells: cells, WallSecs: wallSecs}
	if wallSecs > 0 {
		st.CellsPerSec = float64(cells) / wallSecs
	}
	s.Sweeps = append(s.Sweeps, st)
}

// RunMicro executes fn under the testing benchmark harness and records
// its ns/op, allocs/op and bytes/op. The benchmark functions must call
// b.ReportAllocs (or the harness must be invoked with -benchmem; here
// allocation stats are always collected via ReportAllocs in the
// callees).
func (s *Snapshot) RunMicro(name string, fn func(b *testing.B)) {
	r := testing.Benchmark(fn)
	s.Micro = append(s.Micro, Micro{
		Name:     name,
		NsPerOp:  float64(r.NsPerOp()),
		AllocsOp: float64(r.AllocsPerOp()),
		BytesOp:  float64(r.AllocedBytesPerOp()),
	})
}

// WriteFile writes the snapshot as indented JSON (a no-op when path is
// empty). The write is atomic — temp file, fsync, rename — so a crash
// mid-write can never leave a truncated BENCH_*.json at the committed
// trajectory path.
func WriteFile(path string, s *Snapshot) error {
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := ckpt.WriteFileAtomic(path, data); err != nil {
		return fmt.Errorf("benchio: %w", err)
	}
	return nil
}
