package tseries

import (
	"math"
	"reflect"
	"testing"

	"nscc/internal/sim"
)

func TestCounterWindows(t *testing.T) {
	set := NewSet(sim.Second)
	c := set.Counter("net.drops")
	c.Add(0, 1)
	c.Add(sim.Time(500*sim.Millisecond), 2)
	c.Add(sim.Time(1500*sim.Millisecond), 4)
	sum := c.Summary()
	if sum.Kind != "counter" || sum.WindowSecs != 1 {
		t.Fatalf("summary header = %+v", sum)
	}
	if !reflect.DeepEqual(sum.Values, []float64{3, 4}) {
		t.Fatalf("values = %v, want [3 4]", sum.Values)
	}
	if !reflect.DeepEqual(sum.Counts, []int64{2, 1}) {
		t.Fatalf("counts = %v, want [2 1]", sum.Counts)
	}
}

func TestGaugeMeanAndGaps(t *testing.T) {
	set := NewSet(sim.Second)
	g := set.Gauge("pvm.queue_depth")
	g.Add(0, 2)
	g.Add(1, 4)
	// Window 1 has no samples; window 2 has one.
	g.Add(sim.Time(2*sim.Second), 7)
	sum := g.Summary()
	want := []float64{3, 0, 7}
	if !reflect.DeepEqual(sum.Values, want) {
		t.Fatalf("values = %v, want %v", sum.Values, want)
	}
	if sum.Counts[1] != 0 {
		t.Fatalf("gap window should have count 0, got %d", sum.Counts[1])
	}
}

func TestQuantileSeries(t *testing.T) {
	set := NewSet(sim.Second)
	q := set.Quantile("core.staleness")
	for i := int64(1); i <= 100; i++ {
		q.Observe(0, i)
	}
	sum := q.Summary()
	if sum.Max[0] != 100 {
		t.Fatalf("max = %v, want 100", sum.Max[0])
	}
	// p90 of 1..100 is rank 90 → bucket [64,127] → clamped to max 100.
	if sum.P90[0] != 100 {
		t.Fatalf("p90 = %v, want 100 (bucket edge clamped to max)", sum.P90[0])
	}
	if math.Abs(sum.Values[0]-50.5) > 1e-9 {
		t.Fatalf("mean = %v, want 50.5", sum.Values[0])
	}
}

func TestNegativeAndHugeTimesClamped(t *testing.T) {
	set := NewSet(sim.Second)
	c := set.Counter("x")
	c.Add(-5, 1) // negative → window 0
	if c.Windows() != 1 {
		t.Fatalf("negative time should land in window 0, got %d windows", c.Windows())
	}
	c.Add(sim.Forever, 1) // sentinel → clamped, no OOM
	if c.Windows() != maxWindows {
		t.Fatalf("sentinel time should clamp to maxWindows, got %d", c.Windows())
	}
}

func TestMerge(t *testing.T) {
	a := NewSet(sim.Second)
	b := NewSet(sim.Second)
	a.Counter("n").Add(0, 1)
	b.Counter("n").Add(0, 2)
	b.Counter("n").Add(sim.Time(sim.Second), 5)
	b.Gauge("g").Add(0, 3)
	a.Merge(b)
	sums := a.Summaries()
	if len(sums) != 2 {
		t.Fatalf("got %d series, want 2", len(sums))
	}
	// Sorted by name: "g" then "n".
	if sums[0].Name != "g" || sums[1].Name != "n" {
		t.Fatalf("order = %s, %s", sums[0].Name, sums[1].Name)
	}
	if !reflect.DeepEqual(sums[1].Values, []float64{3, 5}) {
		t.Fatalf("merged counter = %v, want [3 5]", sums[1].Values)
	}
}

func TestNilSafety(t *testing.T) {
	var set *Set
	s := set.Counter("x")
	if s != nil {
		t.Fatalf("nil set should hand out nil series")
	}
	s.Add(0, 1)
	s.Observe(0, 1)
	s.Merge(nil)
	if s.Windows() != 0 || s.Name() != "" {
		t.Fatalf("nil series should be inert")
	}
	if got := set.Summaries(); got != nil {
		t.Fatalf("nil set summaries = %v, want nil", got)
	}
	set.Merge(NewSet(0))
}

func TestSummariesDeterministic(t *testing.T) {
	set := NewSet(sim.Second)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		set.Counter(n).Add(0, 1)
	}
	first := set.Summaries()
	for i := 0; i < 10; i++ {
		again := set.Summaries()
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("summaries not deterministic: %v vs %v", first, again)
		}
	}
	if first[0].Name != "alpha" || first[2].Name != "zeta" {
		t.Fatalf("not sorted: %v", []string{first[0].Name, first[1].Name, first[2].Name})
	}
}
