package tseries

import (
	"testing"

	"nscc/internal/sim"
)

// TestKindNames pins every Kind's export name, including the
// out-of-range fallback consumers may encounter on version skew.
func TestKindNames(t *testing.T) {
	for k, want := range map[Kind]string{
		Counter: "counter", Gauge: "gauge", Quantile: "quantile", Kind(99): "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

// TestWindowBoundaries drives samples at the exact edges of quantile
// windows: the last instant of window 0, the first instant of window 1,
// and time zero all land in the window their half-open interval says.
func TestWindowBoundaries(t *testing.T) {
	set := NewSet(100 * sim.Millisecond)
	q := set.Quantile("edges")
	w := 100 * sim.Millisecond
	q.Observe(0, 1)                // window 0, left edge
	q.Observe(sim.Time(w)-1, 2)    // window 0, last tick
	q.Observe(sim.Time(w), 10)     // window 1, left edge
	q.Observe(sim.Time(2*w)-1, 20) // window 1, last tick
	sum := q.Summary()
	if len(sum.Counts) != 2 {
		t.Fatalf("%d windows, want 2 (boundary sample leaked)", len(sum.Counts))
	}
	if sum.Counts[0] != 2 || sum.Counts[1] != 2 {
		t.Fatalf("counts %v, want [2 2]", sum.Counts)
	}
	if sum.Max[0] != 2 || sum.Max[1] != 20 {
		t.Fatalf("max %v, want [2 20]", sum.Max)
	}
	// The per-window histogram is also window-local: window 1's p90
	// reflects only its own samples.
	if sum.P90[1] < 10 {
		t.Fatalf("window 1 p90 %v includes window 0 samples", sum.P90[1])
	}
}

// TestMaxWindowsClamp: a sentinel-scale timestamp lands in the last
// representable window instead of allocating an unbounded slice.
func TestMaxWindowsClamp(t *testing.T) {
	set := NewSet(sim.Microsecond)
	c := set.Counter("clamped")
	c.Add(sim.Time(int64(1)<<62), 1)
	if n := c.Windows(); n != maxWindows {
		t.Fatalf("wild timestamp produced %d windows, want clamp at %d", n, maxWindows)
	}
	sum := c.Summary()
	if sum.Counts[maxWindows-1] != 1 {
		t.Fatal("clamped sample missing from the last window")
	}
}

// TestNegativeTimeWindowZero: negative virtual times (a defensive
// impossibility) fold into window 0 rather than panicking or
// allocating.
func TestNegativeTimeWindowZero(t *testing.T) {
	set := NewSet(0) // exercise the DefaultWindow fallback too
	if set.Width() != DefaultWindow {
		t.Fatalf("NewSet(0) width %v, want DefaultWindow", set.Width())
	}
	g := set.Gauge("neg")
	g.Add(sim.Time(-5), 3)
	g.Add(0, 5)
	sum := g.Summary()
	if len(sum.Counts) != 1 || sum.Counts[0] != 2 {
		t.Fatalf("counts %v, want both samples in window 0", sum.Counts)
	}
	if sum.Values[0] != 4 {
		t.Fatalf("window 0 mean %v, want 4", sum.Values[0])
	}
}

// TestSeriesAccessors covers the nil-receiver accessors and Width.
func TestSeriesAccessors(t *testing.T) {
	var nilSeries *Series
	if nilSeries.Name() != "" || nilSeries.Windows() != 0 {
		t.Error("nil series accessors not zero")
	}
	var nilSet *Set
	if nilSet.Width() != 0 {
		t.Error("nil set width not zero")
	}
	set := NewSet(sim.Millisecond)
	if s := set.Counter("named"); s.Name() != "named" {
		t.Errorf("Name() = %q", s.Name())
	}
}

// TestMergeBoundaries exercises the merge branches the basic test
// misses: nil receivers, empty-window skips, max propagation into an
// empty target, and quantile histogram creation on the target side.
func TestMergeBoundaries(t *testing.T) {
	set := NewSet(sim.Millisecond)
	a := set.Quantile("a")
	b := set.Quantile("b")
	a.Merge(nil) // no-op
	var nilSeries *Series
	nilSeries.Merge(a) // no-op

	// b has data in window 2 only; windows 0-1 are empty and must be
	// skipped without disturbing a.
	b.Observe(sim.Time(2*sim.Millisecond), 7)
	a.Merge(b)
	sum := a.Summary()
	if len(sum.Counts) != 3 || sum.Counts[2] != 1 {
		t.Fatalf("counts %v after merge, want sample in window 2", sum.Counts)
	}
	if sum.Max[2] != 7 || sum.P90[2] != 7 {
		t.Fatalf("merged quantile window: max %v p90 %v, want 7/7", sum.Max[2], sum.P90[2])
	}

	// Merging a longer series grows the target.
	c := set.Quantile("c")
	c.Observe(sim.Time(5*sim.Millisecond), 3)
	a.Merge(c)
	if a.Windows() != 6 {
		t.Fatalf("merge did not grow target: %d windows, want 6", a.Windows())
	}
}
