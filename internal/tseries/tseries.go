// Package tseries records windowed, simulated-time series: the second
// observability layer on top of the end-of-run aggregates in
// internal/metrics. A Series buckets its samples into fixed-width
// windows of virtual time, so a run exports staleness, warp, queue
// depth, or progress as a time-resolved curve instead of a single
// number — the shape an adaptive age controller (ROADMAP item 5) can
// react to and the shape the delayed-consistency literature plots.
//
// Everything here is deterministic: samples are keyed by virtual time
// only, window layout is fixed at construction, and exports sort by
// series name. Series from different tasks or trials of the same run
// merge window-by-window, exactly like metrics.Histogram merges
// bucket-by-bucket. All methods are nil-receiver-safe so recording
// sites pay one predicted branch when telemetry is off, mirroring the
// nil-Tracer convention in internal/trace.
package tseries

import (
	"sort"

	"nscc/internal/metrics"
	"nscc/internal/sim"
)

// Kind distinguishes how a series folds samples into windows.
type Kind uint8

const (
	// Counter accumulates; a window's value is the sum of its samples
	// (events per window: retransmits, drops, busy time).
	Counter Kind = iota
	// Gauge samples a level; a window's value is the mean of its
	// samples (queue depth, warp, fitness).
	Gauge
	// Quantile keeps a full log-scale histogram per window, exporting
	// mean, max, and p90 (observed staleness).
	Quantile
)

// String returns the kind's export name.
func (k Kind) String() string {
	switch k {
	case Counter:
		return "counter"
	case Gauge:
		return "gauge"
	case Quantile:
		return "quantile"
	}
	return "unknown"
}

// maxWindows bounds a series' memory against a wild timestamp (a
// sentinel time would otherwise allocate an unbounded window slice).
// At the default 100ms width this covers ~29 hours of virtual time.
const maxWindows = 1 << 20

// window is one fixed-width bucket of virtual time.
type window struct {
	n    int64
	sum  float64
	max  float64
	hist *metrics.Histogram // Quantile series only
}

// Series is one named, windowed time series. The zero value is not
// usable; obtain one from a Set. A nil *Series ignores all samples.
type Series struct {
	name  string
	kind  Kind
	width sim.Duration
	wins  []window
}

// win returns the window covering virtual time at, growing the series
// as needed. Negative times land in window 0.
func (s *Series) win(at sim.Time) *window {
	idx := 0
	if at > 0 {
		idx = int(int64(at) / int64(s.width))
	}
	if idx >= maxWindows {
		idx = maxWindows - 1
	}
	for len(s.wins) <= idx {
		s.wins = append(s.wins, window{})
	}
	return &s.wins[idx]
}

// Add folds one sample into the window covering at. For counters the
// window accumulates v; for gauges it tracks the running mean and max.
// No-op on a nil series.
func (s *Series) Add(at sim.Time, v float64) {
	if s == nil {
		return
	}
	w := s.win(at)
	w.n++
	w.sum += v
	if w.n == 1 || v > w.max {
		w.max = v
	}
}

// Observe folds one integer sample into the window covering at,
// recording the full distribution for Quantile series. No-op on a nil
// series.
func (s *Series) Observe(at sim.Time, v int64) {
	if s == nil {
		return
	}
	w := s.win(at)
	w.n++
	w.sum += float64(v)
	if w.n == 1 || float64(v) > w.max {
		w.max = float64(v)
	}
	if s.kind == Quantile {
		if w.hist == nil {
			w.hist = &metrics.Histogram{}
		}
		w.hist.Observe(v)
	}
}

// Name returns the series name.
func (s *Series) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Windows returns the number of windows the series spans (0 when empty
// or nil).
func (s *Series) Windows() int {
	if s == nil {
		return 0
	}
	return len(s.wins)
}

// Merge folds o's windows into s, window-by-window. Both series must
// share width and kind (they do when both came from same-width Sets);
// mismatched widths merge by window index, which is the best exact
// interpretation available. No-op when either side is nil.
func (s *Series) Merge(o *Series) {
	if s == nil || o == nil {
		return
	}
	for len(s.wins) < len(o.wins) {
		s.wins = append(s.wins, window{})
	}
	for i := range o.wins {
		ow := &o.wins[i]
		if ow.n == 0 {
			continue
		}
		w := &s.wins[i]
		if w.n == 0 || ow.max > w.max {
			w.max = ow.max
		}
		w.n += ow.n
		w.sum += ow.sum
		if ow.hist != nil {
			if w.hist == nil {
				w.hist = &metrics.Histogram{}
			}
			w.hist.Merge(ow.hist)
		}
	}
}

// Summary exports the series as the JSON-friendly metrics block.
// Windows with no samples export value 0 (and count 0, so a consumer
// can tell "no data" from "observed zero").
func (s *Series) Summary() metrics.SeriesSummary {
	if s == nil {
		return metrics.SeriesSummary{}
	}
	out := metrics.SeriesSummary{
		Name:       s.name,
		Kind:       s.kind.String(),
		WindowSecs: s.width.Seconds(),
		Counts:     make([]int64, len(s.wins)),
		Values:     make([]float64, len(s.wins)),
	}
	if s.kind == Quantile {
		out.Max = make([]float64, len(s.wins))
		out.P90 = make([]float64, len(s.wins))
	}
	for i := range s.wins {
		w := &s.wins[i]
		out.Counts[i] = w.n
		if w.n == 0 {
			continue
		}
		switch s.kind {
		case Counter:
			out.Values[i] = w.sum
		default:
			out.Values[i] = w.sum / float64(w.n)
		}
		if s.kind == Quantile {
			out.Max[i] = w.max
			if w.hist != nil {
				out.P90[i] = float64(w.hist.Quantile(0.9))
			}
		}
	}
	return out
}

// Set is a registry of series sharing one window width. The zero value
// is not usable; use NewSet. A nil *Set hands out nil series, so a
// single nil check at wiring time turns the whole layer off.
type Set struct {
	width  sim.Duration
	series map[string]*Series
}

// DefaultWindow is the window width runs use unless configured
// otherwise: 100 virtual milliseconds, matching metrics.WarpSeries.
const DefaultWindow = 100 * sim.Millisecond

// NewSet returns an empty registry with the given window width
// (DefaultWindow when width <= 0).
func NewSet(width sim.Duration) *Set {
	if width <= 0 {
		width = DefaultWindow
	}
	return &Set{width: width, series: map[string]*Series{}}
}

// get returns the named series, creating it with the given kind on
// first use. An existing series keeps its original kind.
func (st *Set) get(name string, kind Kind) *Series {
	if st == nil {
		return nil
	}
	if s, ok := st.series[name]; ok {
		return s
	}
	s := &Series{name: name, kind: kind, width: st.width}
	st.series[name] = s
	return s
}

// Counter returns the named counter series, creating it if needed.
func (st *Set) Counter(name string) *Series { return st.get(name, Counter) }

// Gauge returns the named gauge series, creating it if needed.
func (st *Set) Gauge(name string) *Series { return st.get(name, Gauge) }

// Quantile returns the named quantile series, creating it if needed.
func (st *Set) Quantile(name string) *Series { return st.get(name, Quantile) }

// Width returns the set's window width (0 on a nil set).
func (st *Set) Width() sim.Duration {
	if st == nil {
		return 0
	}
	return st.width
}

// Merge folds every series of o into st, creating series st lacks.
// No-op when either set is nil.
func (st *Set) Merge(o *Set) {
	if st == nil || o == nil {
		return
	}
	for _, name := range o.names() {
		os := o.series[name]
		st.get(name, os.kind).Merge(os)
	}
}

// names returns the set's series names in sorted order.
func (st *Set) names() []string {
	names := make([]string, 0, len(st.series))
	//nscc:maporder -- sort below launders the iteration order
	for name := range st.series {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Summaries exports every series, sorted by name so the output is
// deterministic. Nil and empty sets export nil.
func (st *Set) Summaries() []metrics.SeriesSummary {
	if st == nil || len(st.series) == 0 {
		return nil
	}
	out := make([]metrics.SeriesSummary, 0, len(st.series))
	for _, name := range st.names() {
		out = append(out, st.series[name].Summary())
	}
	return out
}
