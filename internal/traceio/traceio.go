// Package traceio writes the observability artifacts the commands
// share: Chrome trace_event JSON files (loadable in Perfetto or
// chrome://tracing) and indented JSON metrics summaries. All writes go
// through the ckpt atomic writer: the artifact appears at its path
// complete or not at all, and flush/close errors propagate instead of
// being swallowed by a deferred Close (the old in-place os.Create path
// could publish a silently truncated JSON file).
package traceio

import (
	"encoding/json"

	"nscc/internal/ckpt"
	"nscc/internal/trace"
)

// WriteTrace writes rec's events as a Chrome trace_event JSON array to
// path, atomically. No-op when path is empty or rec is nil.
func WriteTrace(path string, rec *trace.Recorder) error {
	if path == "" || rec == nil {
		return nil
	}
	f, err := ckpt.CreateAtomic(path)
	if err != nil {
		return err
	}
	if err := rec.WriteChromeTrace(f); err != nil {
		f.Abort()
		return err
	}
	return f.Commit()
}

// WriteMetrics writes v as indented JSON to path, atomically. No-op
// when path is empty.
func WriteMetrics(path string, v interface{}) error {
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return ckpt.WriteFileAtomic(path, data)
}
