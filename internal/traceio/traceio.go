// Package traceio writes the observability artifacts the commands
// share: Chrome trace_event JSON files (loadable in Perfetto or
// chrome://tracing) and indented JSON metrics summaries.
package traceio

import (
	"encoding/json"
	"os"

	"nscc/internal/trace"
)

// WriteTrace writes rec's events as a Chrome trace_event JSON array to
// path. No-op when path is empty or rec is nil.
func WriteTrace(path string, rec *trace.Recorder) error {
	if path == "" || rec == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return rec.WriteChromeTrace(f)
}

// WriteMetrics writes v as indented JSON to path. No-op when path is
// empty.
func WriteMetrics(path string, v interface{}) error {
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
