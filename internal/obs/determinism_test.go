package obs

import (
	"bytes"
	"testing"

	"nscc/internal/exper"
	"nscc/internal/ga/functions"
)

// smallOpts is a sweep small enough for a unit test but large enough
// to exercise the pool.
func smallOpts() exper.Options {
	return exper.Options{
		Trials:    2,
		SyncGens:  20,
		CapFactor: 4,
		Procs:     []int{2},
		Seed:      7,
		Precision: 0.05,
		Workers:   4,
	}
}

// TestObserverDoesNotPerturbSweep is the determinism contract of the
// -http flag: a sweep run with the observability server attached as
// progress sink must produce byte-identical output to the same sweep
// run with no sink at all.
func TestObserverDoesNotPerturbSweep(t *testing.T) {
	fns := []*functions.Function{functions.F1, functions.F2}

	var plain bytes.Buffer
	if _, err := exper.Figure2(&plain, smallOpts(), fns); err != nil {
		t.Fatal(err)
	}

	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	opts := smallOpts()
	opts.Progress = s
	var observed bytes.Buffer
	res, err := exper.Figure2(&observed, opts, fns)
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(plain.Bytes(), observed.Bytes()) {
		t.Errorf("observed run output differs from plain run:\n--- plain ---\n%s\n--- observed ---\n%s",
			plain.String(), observed.String())
	}

	// The sink saw the whole sweep: every cell and the completion mark.
	body, _ := get(t, "http://"+s.Addr()+"/metrics")
	wantCells := len(fns) * opts.Trials * len(opts.Procs)
	for _, want := range []string{
		"nscc_sweep_cells{sweep=\"figure2\"} 4",
		"nscc_sweep_cells_done_total{sweep=\"figure2\"} 4",
		"nscc_sweep_finished{sweep=\"figure2\"} 1",
	} {
		if !bytes.Contains([]byte(body), []byte(want)) {
			t.Errorf("metrics missing %q (want %d cells):\n%s", want, wantCells, body)
		}
	}

	// Speedup tables must match cell for cell, not just rendering.
	plainRes, err := exper.Figure2(nil, smallOpts(), fns)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerFunc) != len(plainRes.PerFunc) {
		t.Fatalf("row count differs: %d vs %d", len(res.PerFunc), len(plainRes.PerFunc))
	}
	for i := range res.PerFunc {
		for v, s1 := range res.PerFunc[i].Speedup {
			if s2 := plainRes.PerFunc[i].Speedup[v]; s1 != s2 {
				t.Errorf("row %d %s: speedup %v vs %v", i, v, s1, s2)
			}
		}
	}
}
