package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"nscc/internal/metrics"
)

func get(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// checkOpenMetrics is a structural parse of the exposition format:
// every line is a comment, blank, or `name{labels} value`, metric
// names are legal, counters end in _total, and the body ends with
// exactly one # EOF.
func checkOpenMetrics(t *testing.T, body string) {
	t.Helper()
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Fatalf("exposition does not end with # EOF:\n%s", body)
	}
	counters := map[string]bool{}
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	for i, line := range lines {
		if line == "" {
			t.Fatalf("line %d: blank line in exposition", i+1)
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" && fields[3] == "counter" {
				counters[fields[2]] = true
			}
			continue
		}
		var value float64
		valStr := line[strings.LastIndex(line, " ")+1:]
		if _, err := fmt.Sscanf(valStr, "%g", &value); err != nil {
			t.Fatalf("line %d: unparseable sample %q: %v", i+1, line, err)
		}
		if strings.Contains(line, "{") && !strings.Contains(line, "}") {
			t.Fatalf("line %d: unterminated label set: %q", i+1, line)
		}
	}
	for fam := range counters {
		if strings.Contains(body, "\n"+fam+" ") || strings.Contains(body, "\n"+fam+"{") {
			t.Fatalf("counter family %s exposes samples without _total suffix", fam)
		}
	}
}

func TestMetricsMidSweep(t *testing.T) {
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// A sweep in flight: 3 of 8 cells done, nothing finished.
	s.SweepStart("figure2", 8)
	for i := 0; i < 3; i++ {
		s.CellDone("figure2")
	}
	s.PublishCache(metrics.CacheTelemetry{Hits: 2, Misses: 1})

	body, ctype := get(t, "http://"+s.Addr()+"/metrics")
	if !strings.HasPrefix(ctype, "application/openmetrics-text") {
		t.Errorf("content type = %q, want openmetrics", ctype)
	}
	checkOpenMetrics(t, body)
	for _, want := range []string{
		`nscc_sweep_cells{sweep="figure2"} 8`,
		`nscc_sweep_cells_done_total{sweep="figure2"} 3`,
		`nscc_sweep_finished{sweep="figure2"} 0`,
		`nscc_cache_hits_total 2`,
		`nscc_cache_misses_total 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}

	s.SweepDone("figure2")
	body, _ = get(t, "http://"+s.Addr()+"/metrics")
	if !strings.Contains(body, `nscc_sweep_finished{sweep="figure2"} 1`) {
		t.Errorf("sweep not marked finished:\n%s", body)
	}
}

func TestMetricsTelemetry(t *testing.T) {
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.PublishTelemetry("ga", &metrics.Telemetry{
		Variant:        "gr(10)",
		Age:            10,
		CompletionSecs: 1.25,
		WarpMean:       1.5,
		Net:            metrics.NetTelemetry{Frames: 42, Utilization: 0.3},
		Series: []metrics.SeriesSummary{
			{Name: "pvm.retransmits", Kind: "counter", WindowSecs: 0.1, Values: []float64{1, 0, 2}},
		},
	})

	body, _ := get(t, "http://"+s.Addr()+"/metrics")
	checkOpenMetrics(t, body)
	for _, want := range []string{
		`nscc_run_completion_seconds{run="ga"} 1.25`,
		`nscc_run_warp_mean{run="ga"} 1.5`,
		`nscc_run_net_frames{run="ga"} 42`,
		`nscc_run_series_sum{run="ga",series="pvm.retransmits"} 3`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestStatusPage(t *testing.T) {
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.SweepStart("agesweep-cells", 10)
	s.CellDone("agesweep-cells")
	s.PublishTelemetry("bayes", &metrics.Telemetry{
		Variant: "gr(10)", Age: 10, CompletionSecs: 0.5,
		Series: []metrics.SeriesSummary{
			{Name: "bayes.iters", Kind: "counter", WindowSecs: 0.1, Values: []float64{5, 7, 6}},
		},
	})

	body, ctype := get(t, "http://"+s.Addr()+"/")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("content type = %q, want text/plain", ctype)
	}
	for _, want := range []string{"agesweep-cells", "1/10", "bayes.iters", "/debug/pprof/"} {
		if !strings.Contains(body, want) {
			t.Errorf("status page missing %q:\n%s", want, body)
		}
	}

	// Unknown paths 404 instead of rendering the status page.
	resp, err := http.Get("http://" + s.Addr() + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nope: status %d, want 404", resp.StatusCode)
	}
}

func TestPprofIndex(t *testing.T) {
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	body, _ := get(t, "http://"+s.Addr()+"/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index does not list profiles:\n%.200s", body)
	}
}

func TestCellDoneWithoutStart(t *testing.T) {
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// A cache replay can fire before the driver's SweepStart if a sink
	// is shared across processes; the server must not panic.
	s.CellDone("orphan")
	body, _ := get(t, "http://"+s.Addr()+"/metrics")
	checkOpenMetrics(t, body)
	if !strings.Contains(body, `nscc_sweep_cells_done_total{sweep="orphan"} 1`) {
		t.Errorf("orphan cell not counted:\n%s", body)
	}
}
