// Package obs is the live, read-only observability server behind the
// CLI tools' -http flag. It serves an OpenMetrics /metrics endpoint,
// the standard net/http/pprof profiles, and a plain-text status page
// with per-sweep progress, ETA, and throughput sparklines.
//
// The server is strictly an observer: it receives progress callbacks
// (it implements exper.ProgressSink) and published telemetry
// snapshots, and never feeds anything back into the simulations — a
// sweep run with the server attached produces byte-identical artifacts
// to one run without it. Because the package sits outside the
// determinism lint's rawconc scope, host-side goroutines and mutexes
// are legal here; the wall-clock reads that drive ETAs are annotated
// as host-side measurement.
package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"

	"nscc/internal/metrics"
	"nscc/internal/report"
)

// throughputBuckets is the width of the per-sweep completions-per-
// second ring buffer the status page renders as a sparkline.
const throughputBuckets = 60

// sweepState tracks one sweep's progress.
type sweepState struct {
	total    int
	done     int
	finished bool
	started  time.Time
	// perSec is a ring of cells completed per elapsed second, for the
	// status page's throughput sparkline.
	perSec [throughputBuckets]float64
	lastIx int64
}

// Server is the -http observability endpoint. The zero value is not
// usable; create one with Start. All methods are safe for concurrent
// use (sweep callbacks arrive from pool workers).
type Server struct {
	mu     sync.Mutex
	order  []string // sweeps in start order
	sweeps map[string]*sweepState
	telem  map[string]*metrics.Telemetry
	truns  []string // telemetry names in publish order
	cache  *metrics.CacheTelemetry

	ln  net.Listener
	srv *http.Server
}

// Start listens on addr (host:port; ":0" picks a free port) and serves
// /metrics, /debug/pprof/, and the status page until Close. Handlers
// run on background goroutines owned by net/http; they only ever read
// the server's published state.
func Start(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{
		sweeps: map[string]*sweepState{},
		telem:  map[string]*metrics.Telemetry{},
		ln:     ln,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleStatus)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the listener's resolved address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down. In-flight requests are abandoned;
// the tools call this on exit only.
func (s *Server) Close() error { return s.srv.Close() }

// SweepStart implements exper.ProgressSink.
func (s *Server) SweepStart(sweep string, cells int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.sweeps[sweep]
	if !ok {
		st = &sweepState{}
		s.sweeps[sweep] = st
		s.order = append(s.order, sweep)
	}
	st.total = cells
	st.done = 0
	st.finished = false
	st.started = time.Now() //nscc:wallclock -- host-side ETA baseline, not simulated time
}

// CellDone implements exper.ProgressSink.
func (s *Server) CellDone(sweep string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.sweeps[sweep]
	if !ok {
		st = &sweepState{started: time.Now()} //nscc:wallclock -- host-side ETA baseline, not simulated time
		s.sweeps[sweep] = st
		s.order = append(s.order, sweep)
	}
	st.done++
	ix := int64(time.Since(st.started).Seconds()) //nscc:wallclock -- host-side throughput meter, not simulated time
	if ix < 0 {
		ix = 0
	}
	// Clear any buckets the ring skipped over since the last sample.
	for j := st.lastIx + 1; j <= ix && j-st.lastIx <= throughputBuckets; j++ {
		st.perSec[j%throughputBuckets] = 0
	}
	st.lastIx = ix
	st.perSec[ix%throughputBuckets]++
}

// SweepDone implements exper.ProgressSink.
func (s *Server) SweepDone(sweep string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.sweeps[sweep]; ok {
		st.finished = true
	}
}

// PublishTelemetry exposes a run's telemetry snapshot under name on
// /metrics and the status page. Re-publishing a name replaces it. The
// telemetry is read concurrently by handlers afterwards; callers hand
// over a finished snapshot and stop mutating it.
func (s *Server) PublishTelemetry(name string, t *metrics.Telemetry) {
	if t == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.telem[name]; !ok {
		s.truns = append(s.truns, name)
	}
	s.telem[name] = t
}

// PublishCache exposes the checkpoint cache's accounting snapshot.
func (s *Server) PublishCache(c metrics.CacheTelemetry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache = &c
}

// snapshot copies the state the handlers render, minimizing the lock
// window.
func (s *Server) snapshot() (order []string, sweeps map[string]sweepState, truns []string, telem map[string]*metrics.Telemetry, cache *metrics.CacheTelemetry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	order = append([]string{}, s.order...)
	sweeps = make(map[string]sweepState, len(s.sweeps))
	for k, v := range s.sweeps {
		sweeps[k] = *v
	}
	truns = append([]string{}, s.truns...)
	telem = make(map[string]*metrics.Telemetry, len(s.telem))
	for k, v := range s.telem {
		telem[k] = v
	}
	cache = s.cache
	return
}

// handleMetrics serves the OpenMetrics text exposition: sweep progress,
// published run telemetry, and checkpoint-cache counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	order, sweeps, truns, telem, cache := s.snapshot()
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	var b strings.Builder

	fmt.Fprintf(&b, "# TYPE nscc_sweep_cells gauge\n")
	fmt.Fprintf(&b, "# HELP nscc_sweep_cells Total cells in the sweep.\n")
	for _, name := range order {
		fmt.Fprintf(&b, "nscc_sweep_cells{sweep=%q} %d\n", name, sweeps[name].total)
	}
	fmt.Fprintf(&b, "# TYPE nscc_sweep_cells_done counter\n")
	fmt.Fprintf(&b, "# HELP nscc_sweep_cells_done Cells completed (computed or replayed from cache).\n")
	for _, name := range order {
		fmt.Fprintf(&b, "nscc_sweep_cells_done_total{sweep=%q} %d\n", name, sweeps[name].done)
	}
	fmt.Fprintf(&b, "# TYPE nscc_sweep_finished gauge\n")
	fmt.Fprintf(&b, "# HELP nscc_sweep_finished 1 once the sweep has completed.\n")
	for _, name := range order {
		v := 0
		if sweeps[name].finished {
			v = 1
		}
		fmt.Fprintf(&b, "nscc_sweep_finished{sweep=%q} %d\n", name, v)
	}

	if cache != nil {
		fmt.Fprintf(&b, "# TYPE nscc_cache_hits counter\n")
		fmt.Fprintf(&b, "nscc_cache_hits_total %d\n", cache.Hits)
		fmt.Fprintf(&b, "# TYPE nscc_cache_misses counter\n")
		fmt.Fprintf(&b, "nscc_cache_misses_total %d\n", cache.Misses)
		fmt.Fprintf(&b, "# TYPE nscc_cache_invalidated counter\n")
		fmt.Fprintf(&b, "nscc_cache_invalidated_total %d\n", cache.Invalidated)
	}

	if len(truns) > 0 {
		fmt.Fprintf(&b, "# TYPE nscc_run_completion_seconds gauge\n")
		fmt.Fprintf(&b, "# HELP nscc_run_completion_seconds Simulated completion time of a published run.\n")
		for _, name := range truns {
			fmt.Fprintf(&b, "nscc_run_completion_seconds{run=%q} %g\n", name, telem[name].CompletionSecs)
		}
		fmt.Fprintf(&b, "# TYPE nscc_run_warp_mean gauge\n")
		for _, name := range truns {
			fmt.Fprintf(&b, "nscc_run_warp_mean{run=%q} %g\n", name, telem[name].WarpMean)
		}
		fmt.Fprintf(&b, "# TYPE nscc_run_net_frames gauge\n")
		for _, name := range truns {
			fmt.Fprintf(&b, "nscc_run_net_frames{run=%q} %d\n", name, telem[name].Net.Frames)
		}
		fmt.Fprintf(&b, "# TYPE nscc_run_net_utilization gauge\n")
		for _, name := range truns {
			fmt.Fprintf(&b, "nscc_run_net_utilization{run=%q} %g\n", name, telem[name].Net.Utilization)
		}
		fmt.Fprintf(&b, "# TYPE nscc_run_staleness_violations gauge\n")
		for _, name := range truns {
			fmt.Fprintf(&b, "nscc_run_staleness_violations{run=%q} %d\n", name, telem[name].StalenessViolations)
		}
		// One summary point per windowed series: the sum over windows
		// (full per-window resolution stays in the -metrics-out JSON).
		fmt.Fprintf(&b, "# TYPE nscc_run_series_sum gauge\n")
		fmt.Fprintf(&b, "# HELP nscc_run_series_sum Sum of a windowed simulated-time series over all windows.\n")
		for _, name := range truns {
			for _, ss := range telem[name].Series {
				sum := 0.0
				for _, v := range ss.Values {
					sum += v
				}
				fmt.Fprintf(&b, "nscc_run_series_sum{run=%q,series=%q} %g\n", name, ss.Name, sum)
			}
		}
	}

	fmt.Fprintf(&b, "# EOF\n")
	fmt.Fprint(w, b.String())
}

// handleStatus serves the human-readable progress page.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	order, sweeps, truns, telem, cache := s.snapshot()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var b strings.Builder
	fmt.Fprintf(&b, "nscc live status\n\n")
	if len(order) == 0 {
		fmt.Fprintf(&b, "no sweeps started yet\n")
	}
	for _, name := range order {
		st := sweeps[name]
		fmt.Fprintf(&b, "%s\n", renderSweep(name, st))
	}
	if cache != nil {
		fmt.Fprintf(&b, "\ncheckpoint cache: %d hits, %d misses", cache.Hits, cache.Misses)
		if cache.Invalidated > 0 {
			fmt.Fprintf(&b, ", %d invalidated", cache.Invalidated)
		}
		fmt.Fprintf(&b, "\n")
	}
	for _, name := range truns {
		t := telem[name]
		fmt.Fprintf(&b, "\nrun %s (%s age=%d): completion %.3fs, warp mean %.2f, net util %.1f%%\n",
			name, t.Variant, t.Age, t.CompletionSecs, t.WarpMean, t.Net.Utilization*100)
		for _, ss := range t.Series {
			fmt.Fprintf(&b, "  %-20s %s\n", ss.Name, report.AutoSparkline(ss.Values))
		}
	}
	fmt.Fprintf(&b, "\nendpoints: /metrics (OpenMetrics), /debug/pprof/ (profiles)\n")
	fmt.Fprint(w, b.String())
}

// renderSweep formats one sweep's progress line: completion bar,
// counts, ETA from the observed rate, and a throughput sparkline over
// the last minute.
func renderSweep(name string, st sweepState) string {
	var b strings.Builder
	frac := 0.0
	if st.total > 0 {
		frac = float64(st.done) / float64(st.total)
	}
	const width = 24
	filled := int(frac * width)
	if filled > width {
		filled = width
	}
	fmt.Fprintf(&b, "%-16s [%s%s] %d/%d (%.0f%%)",
		name, strings.Repeat("█", filled), strings.Repeat("·", width-filled),
		st.done, st.total, frac*100)
	if st.finished {
		fmt.Fprintf(&b, " done")
	} else if st.done > 0 && st.total > st.done {
		elapsed := time.Since(st.started) //nscc:wallclock -- host-side ETA, not simulated time
		eta := time.Duration(float64(elapsed) / float64(st.done) * float64(st.total-st.done))
		fmt.Fprintf(&b, " ETA %s", eta.Round(time.Second))
	}
	// Throughput over the ring, oldest bucket first.
	var rate []float64
	for i := int64(0); i < throughputBuckets; i++ {
		rate = append(rate, st.perSec[(st.lastIx+1+i)%throughputBuckets])
	}
	if spark := report.Sparkline(rate, 0, maxOf(rate)); st.done > 0 {
		fmt.Fprintf(&b, "  %s cells/s", spark)
	}
	return b.String()
}

func maxOf(vs []float64) float64 {
	m := 0.0
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}
