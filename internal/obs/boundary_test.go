package obs

import (
	"net/http"
	"strings"
	"testing"

	"nscc/internal/metrics"
)

// TestMetricsLabelEscaping: sweep and run names containing quotes,
// backslashes, and newlines must arrive on /metrics as legal
// OpenMetrics label values (Go's %q escaping), never as raw bytes that
// would corrupt the exposition.
func TestMetricsLabelEscaping(t *testing.T) {
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	hostile := "we\"ird\\name\nwith newline"
	s.SweepStart(hostile, 3)
	s.CellDone(hostile)
	s.PublishTelemetry(hostile, &metrics.Telemetry{Variant: "sync", CompletionSecs: 1.5})

	body, _ := get(t, "http://"+s.Addr()+"/metrics")
	checkOpenMetrics(t, body)
	if strings.Contains(body, "with newline") {
		// The raw newline would have split a sample line in two; the
		// structural check above would already have caught it, but be
		// explicit about the property.
		for _, line := range strings.Split(body, "\n") {
			if strings.HasSuffix(line, "with newline") {
				t.Fatalf("unescaped newline in label: %q", line)
			}
		}
	}
	if !strings.Contains(body, `\"ird\\name\nwith`) {
		t.Fatalf("expected escaped label value in exposition:\n%s", body)
	}
}

// TestStatusZeroCells: a sweep that starts with zero cells (an empty
// topology list, a zero-trial profile) renders a progress line without
// dividing by zero, and a finished zero-cell sweep shows done.
func TestStatusZeroCells(t *testing.T) {
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.SweepStart("empty", 0)
	body, _ := get(t, "http://"+s.Addr()+"/")
	if !strings.Contains(body, "empty") || !strings.Contains(body, "0/0 (0%)") {
		t.Fatalf("zero-cell sweep missing or malformed:\n%s", body)
	}
	if strings.Contains(body, "ETA") {
		t.Fatal("zero-cell sweep shows an ETA")
	}

	s.SweepDone("empty")
	body, _ = get(t, "http://"+s.Addr()+"/")
	if !strings.Contains(body, "done") {
		t.Fatalf("finished zero-cell sweep not marked done:\n%s", body)
	}
}

// TestStatusETA: an in-flight sweep with completed cells shows an ETA
// and a throughput sparkline; publishing again replaces rather than
// duplicates telemetry.
func TestStatusETA(t *testing.T) {
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.SweepStart("inflight", 10)
	s.CellDone("inflight")
	s.CellDone("inflight")
	body, _ := get(t, "http://"+s.Addr()+"/")
	if !strings.Contains(body, "ETA") {
		t.Fatalf("in-flight sweep missing ETA:\n%s", body)
	}
	if !strings.Contains(body, "cells/s") {
		t.Fatalf("in-flight sweep missing throughput sparkline:\n%s", body)
	}

	// Restarting the same sweep resets progress instead of duplicating
	// the entry.
	s.SweepStart("inflight", 4)
	body, _ = get(t, "http://"+s.Addr()+"/")
	if got := strings.Count(body, "inflight"); got != 1 {
		t.Fatalf("sweep listed %d times after restart, want 1", got)
	}
	if !strings.Contains(body, "0/4") {
		t.Fatalf("restarted sweep did not reset progress:\n%s", body)
	}
}

// TestPublishTelemetryReplace: nil snapshots are ignored; re-publishing
// a name replaces the snapshot without growing the run list.
func TestPublishTelemetryReplace(t *testing.T) {
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.PublishTelemetry("run", nil) // ignored
	s.PublishTelemetry("run", &metrics.Telemetry{Variant: "sync", CompletionSecs: 1})
	s.PublishTelemetry("run", &metrics.Telemetry{Variant: "async", CompletionSecs: 2})
	body, _ := get(t, "http://"+s.Addr()+"/")
	if got := strings.Count(body, "run run "); got != 1 {
		t.Fatalf("run listed %d times after republish, want 1", got)
	}
	if !strings.Contains(body, "async") || strings.Contains(body, "(sync") {
		t.Fatalf("republish did not replace the snapshot:\n%s", body)
	}
}

// TestStatusNotFound: non-root paths 404 instead of rendering status.
func TestStatusNotFound(t *testing.T) {
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /nope status %d, want 404", resp.StatusCode)
	}
}

// TestStartBadAddr: an unbindable address errors instead of panicking.
func TestStartBadAddr(t *testing.T) {
	if _, err := Start("256.256.256.256:99999"); err == nil {
		t.Fatal("Start on an impossible address did not error")
	}
}
