// Package trace is the repository's unified event/span recorder: a
// low-overhead, optional observability layer every other layer reports
// into. The simulation engine emits process start/stop/block/wake and
// event-fire records, the network models emit queue-depth and
// utilization counters, the message layer emits send instants and
// per-message delivery spans, the coherence primitive emits Global_Read
// spans (with the observed staleness of each read), and the
// applications emit per-iteration spans and rollback/antimessage
// instants. One Tracer serves a whole run; a nil tracer costs a single
// predicted branch per potential record and zero allocations.
//
// The package is deliberately dependency-free (timestamps are int64
// virtual nanoseconds, not sim.Time) so every layer — including package
// sim itself — can import it without cycles.
//
// Recorded traces export in the Chrome trace_event JSON format (one
// event per line inside a JSON array), which loads directly in Perfetto
// (ui.perfetto.dev) and chrome://tracing.
package trace

import (
	"bufio"
	"fmt"
	"io"
)

// Layer pids: each architectural layer renders as one "process" row
// group in the trace viewer, with simulated tasks/processes as its
// threads.
const (
	PidSim  = 1 // simulation engine: process lifecycle, event firings
	PidNet  = 2 // interconnect: queue depth, utilization, drops
	PidPVM  = 3 // message layer: sends and per-message delivery spans
	PidCore = 4 // coherence: Global_Read spans, update arrivals
	PidApp  = 5 // applications: GA generations, sampler iterations
	// PidFaults is the fault-injection layer: scheduled drop/delay/
	// duplicate instants and crash/partition window spans.
	PidFaults = 6
	// PidRace is the simulated-time race classifier: one instant per
	// cross-process read that raced a concurrent write, named by its
	// class (tolerated_stale or unbounded_race).
	PidRace = 7
	// PidCkpt is the checkpoint cache: one instant per sweep cell
	// consulted against the journal (cache_hit or cache_miss).
	PidCkpt = 8
)

// PidName returns the layer name a pid renders under.
func PidName(pid int) string {
	switch pid {
	case PidSim:
		return "sim"
	case PidNet:
		return "net"
	case PidPVM:
		return "pvm"
	case PidCore:
		return "core"
	case PidApp:
		return "app"
	case PidFaults:
		return "faults"
	case PidRace:
		return "simrace"
	case PidCkpt:
		return "ckpt"
	default:
		return fmt.Sprintf("pid%d", pid)
	}
}

// Event phases, matching the Chrome trace_event "ph" field.
const (
	PhaseSpan    = byte('X') // complete span: TS..TS+Dur
	PhaseInstant = byte('i') // instantaneous record at TS
	PhaseCounter = byte('C') // sampled counter value(s) at TS
)

// Event is one trace record. Timestamps and durations are virtual
// nanoseconds. The two fixed key/value slots carry numeric arguments
// without allocating; unused slots have an empty key.
type Event struct {
	TS   int64  // start time (virtual ns)
	Dur  int64  // duration (virtual ns); meaningful for PhaseSpan
	Ph   byte   // PhaseSpan, PhaseInstant, or PhaseCounter
	Pid  int    // layer (PidSim..PidApp)
	Tid  int    // task / process / node id within the layer
	Cat  string // category ("sim", "net", "pvm", "core", "ga", "bayes")
	Name string // record name ("msg", "global_read", "gen", ...)
	K1   string // first argument key ("" = absent)
	V1   int64
	K2   string // second argument key ("" = absent)
	V2   int64
}

// End returns the span's end time (TS for non-spans).
func (e Event) End() int64 { return e.TS + e.Dur }

// Tracer receives trace records. Implementations must not retain
// pointers into the caller; Event is self-contained and passed by
// value. All layers guard emissions with a nil check, so a nil Tracer
// is the zero-overhead default.
type Tracer interface {
	Emit(Event)
}

// Recorder is the standard Tracer: an in-memory append-only event log
// with Chrome trace_event export. The simulation is single-threaded by
// construction (one process or the engine loop runs at a time), so the
// Recorder needs no locking.
type Recorder struct {
	events []Event
	// Filter, if set, drops events for which it returns false. Use it
	// to bound trace volume (e.g. drop the engine's per-event firing
	// records while keeping everything else).
	Filter func(*Event) bool
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Emit appends one event (subject to the Filter).
func (r *Recorder) Emit(ev Event) {
	if r.Filter != nil && !r.Filter(&ev) {
		return
	}
	r.events = append(r.events, ev)
}

// Events returns the recorded events in emission order. The slice is
// the recorder's own backing store; do not mutate it.
func (r *Recorder) Events() []Event { return r.events }

// Len reports the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Reset discards all recorded events, keeping the backing capacity.
func (r *Recorder) Reset() { r.events = r.events[:0] }

// CountBy returns how many recorded events satisfy pred.
func (r *Recorder) CountBy(pred func(*Event) bool) int {
	n := 0
	for i := range r.events {
		if pred(&r.events[i]) {
			n++
		}
	}
	return n
}

// WriteChromeTrace writes the recorded events as a Chrome
// trace_event-format JSON array, one event per line (JSONL inside the
// array), loadable in Perfetto and chrome://tracing. Timestamps are
// exported in microseconds (the format's unit) at nanosecond precision.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	// Metadata: name the layer pids so the viewer groups rows sensibly.
	pids := map[int]bool{}
	for i := range r.events {
		pids[r.events[i].Pid] = true
	}
	for pid := 0; pid <= 64; pid++ { // deterministic order
		if !pids[pid] {
			continue
		}
		fmt.Fprintf(bw, "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":%q}},\n",
			pid, PidName(pid))
	}
	for i := range r.events {
		ev := &r.events[i]
		fmt.Fprintf(bw, "{\"name\":%q,\"cat\":%q,\"ph\":%q,\"ts\":%.3f,\"pid\":%d,\"tid\":%d",
			ev.Name, ev.Cat, string(ev.Ph), float64(ev.TS)/1e3, ev.Pid, ev.Tid)
		if ev.Ph == PhaseSpan {
			fmt.Fprintf(bw, ",\"dur\":%.3f", float64(ev.Dur)/1e3)
		}
		if ev.Ph == PhaseInstant {
			// Thread-scoped instant (renders as a tick on the row).
			bw.WriteString(",\"s\":\"t\"")
		}
		if ev.K1 != "" || ev.K2 != "" {
			bw.WriteString(",\"args\":{")
			if ev.K1 != "" {
				fmt.Fprintf(bw, "%q:%d", ev.K1, ev.V1)
			}
			if ev.K2 != "" {
				if ev.K1 != "" {
					bw.WriteString(",")
				}
				fmt.Fprintf(bw, "%q:%d", ev.K2, ev.V2)
			}
			bw.WriteString("}")
		}
		if i < len(r.events)-1 {
			bw.WriteString("},\n")
		} else {
			bw.WriteString("}\n")
		}
	}
	if _, err := bw.WriteString("]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
