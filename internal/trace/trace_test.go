package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	if r.Len() != 0 {
		t.Fatalf("new recorder not empty")
	}
	r.Emit(Event{TS: 10, Dur: 5, Ph: PhaseSpan, Pid: PidPVM, Tid: 1, Cat: "pvm", Name: "msg", K1: "src", V1: 0})
	r.Emit(Event{TS: 20, Ph: PhaseInstant, Pid: PidSim, Tid: 2, Cat: "sim", Name: "block"})
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if got := r.Events()[0].End(); got != 15 {
		t.Fatalf("End = %d, want 15", got)
	}
	if n := r.CountBy(func(e *Event) bool { return e.Pid == PidSim }); n != 1 {
		t.Fatalf("CountBy = %d, want 1", n)
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Reset left %d events", r.Len())
	}
}

func TestRecorderFilter(t *testing.T) {
	r := NewRecorder()
	r.Filter = func(e *Event) bool { return e.Name != "event" }
	r.Emit(Event{Name: "event", Ph: PhaseInstant})
	r.Emit(Event{Name: "msg", Ph: PhaseSpan})
	if r.Len() != 1 || r.Events()[0].Name != "msg" {
		t.Fatalf("filter did not drop: %+v", r.Events())
	}
}

// TestWriteChromeTraceValidJSON asserts the export is a well-formed
// JSON array whose records carry the Chrome trace_event fields.
func TestWriteChromeTraceValidJSON(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{TS: 1500, Dur: 2500, Ph: PhaseSpan, Pid: PidCore, Tid: 3, Cat: "core", Name: "global_read", K1: "loc", V1: 7, K2: "stale", V2: 2})
	r.Emit(Event{TS: 4000, Ph: PhaseInstant, Pid: PidApp, Tid: 0, Cat: "ga", Name: "done"})
	r.Emit(Event{TS: 5000, Ph: PhaseCounter, Pid: PidNet, Tid: 0, Cat: "net", Name: "bus", K1: "queued", V1: 4})

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var recs []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &recs); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	// Metadata (3 pids) + 3 events.
	if len(recs) != 6 {
		t.Fatalf("got %d records, want 6", len(recs))
	}
	var span map[string]interface{}
	for _, rec := range recs {
		if rec["name"] == "global_read" {
			span = rec
		}
	}
	if span == nil {
		t.Fatalf("global_read span missing")
	}
	if span["ph"] != "X" {
		t.Fatalf("ph = %v, want X", span["ph"])
	}
	if ts := span["ts"].(float64); ts != 1.5 { // 1500 ns = 1.5 us
		t.Fatalf("ts = %v us, want 1.5", ts)
	}
	if dur := span["dur"].(float64); dur != 2.5 {
		t.Fatalf("dur = %v us, want 2.5", dur)
	}
	args := span["args"].(map[string]interface{})
	if args["loc"].(float64) != 7 || args["stale"].(float64) != 2 {
		t.Fatalf("args = %v", args)
	}
	if !strings.Contains(buf.String(), `"name":"core"`) {
		t.Fatalf("missing pid metadata:\n%s", buf.String())
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRecorder().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var recs []interface{}
	if err := json.Unmarshal(buf.Bytes(), &recs); err != nil {
		t.Fatalf("empty export invalid: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("empty recorder exported %d records", len(recs))
	}
}
