// Chaos harness: full-stack application cells (island GA, parallel
// logic sampling) under dozens of randomized-but-seeded fault plans,
// with the reliable transport and bounded Global_Read switched on. The
// asserted invariants are liveness (every run completes — the engine
// returns ErrDeadlock otherwise), the staleness contract (reads that
// returned without timing out honored the age bound), determinism
// (identical (seed, plan) pairs replay byte for byte), and convergence
// (the GA still finds the optimum the fault-free run finds).
package faults_test

import (
	"testing"

	"nscc/internal/bayes"
	"nscc/internal/core"
	"nscc/internal/faults"
	"nscc/internal/ga"
	"nscc/internal/ga/functions"
	"nscc/internal/sim"
)

const (
	chaosGASeeds    = 40
	chaosBayesSeeds = 12
	chaosAge        = 10
	chaosTimeout    = 50 * sim.Millisecond
)

// chaosGACfg is one GA chaos cell: F1 on 4 islands under Global_Read,
// reliable transport, bounded reads, and the seed's random fault plan.
func chaosGACfg(seed int64) ga.IslandConfig {
	return ga.IslandConfig{
		Fn: functions.F1, Par: ga.DeJongParams(), P: 4,
		Mode: core.NonStrict, Age: chaosAge,
		FixedGens: 40, MinGens: 40, MaxGens: 160,
		Seed:  seed,
		Calib: ga.DefaultCalibration(),

		Faults:      faults.RandomPlan(seed, 4, 2.0),
		Reliable:    true,
		ReadTimeout: chaosTimeout,
	}
}

func TestChaosGA(t *testing.T) {
	for seed := int64(0); seed < chaosGASeeds; seed++ {
		res, err := ga.RunIsland(chaosGACfg(seed))
		if err != nil {
			t.Fatalf("seed %d: run did not complete (deadlock?): %v", seed, err)
		}
		if res.Completion <= 0 {
			t.Fatalf("seed %d: nonpositive completion %v", seed, res.Completion)
		}
		// Staleness contract: every Global_Read that returned without
		// timing out honored the age bound (degraded reads are excluded
		// from the histogram and counted as violations instead).
		if max := res.Telemetry.Staleness.Max; max > chaosAge {
			t.Fatalf("seed %d: staleness bound broken: observed %d > age %d", seed, max, chaosAge)
		}
		// The violation counter must reconcile with the per-task export.
		var perTask int64
		for _, tt := range res.Telemetry.Tasks {
			perTask += tt.ReadTimeouts
		}
		if perTask != res.Telemetry.StalenessViolations {
			t.Fatalf("seed %d: StalenessViolations %d != sum of task ReadTimeouts %d",
				seed, res.Telemetry.StalenessViolations, perTask)
		}
	}
}

// TestChaosGADeterminism replays a sample of the chaos cells and
// requires byte-identical results — the FoundationDB-style property
// that makes a chaos failure reproducible from its seed alone.
func TestChaosGADeterminism(t *testing.T) {
	for seed := int64(0); seed < chaosGASeeds; seed += 8 {
		a, err := ga.RunIsland(chaosGACfg(seed))
		if err != nil {
			t.Fatal(err)
		}
		b, err := ga.RunIsland(chaosGACfg(seed))
		if err != nil {
			t.Fatal(err)
		}
		if a.Completion != b.Completion || a.Best != b.Best || a.Avg != b.Avg ||
			a.Messages != b.Messages || a.NetBytes != b.NetBytes ||
			a.Telemetry.StalenessViolations != b.Telemetry.StalenessViolations {
			t.Fatalf("seed %d: chaos replay diverged:\n%+v\nvs\n%+v", seed, a, b)
		}
		for i := range a.Gens {
			if a.Gens[i] != b.Gens[i] {
				t.Fatalf("seed %d: per-island generations diverged: %v vs %v", seed, a.Gens, b.Gens)
			}
		}
	}
}

// TestChaosGAConvergence compares faulted runs against the fault-free
// run of the same seed: with reliable delivery and bounded reads, the
// GA must still find the optimum the clean run finds.
func TestChaosGAConvergence(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		clean := chaosGACfg(seed)
		clean.Faults, clean.Reliable, clean.ReadTimeout = nil, false, 0
		ref, err := ga.RunIsland(clean)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ga.RunIsland(chaosGACfg(seed))
		if err != nil {
			t.Fatal(err)
		}
		if ref.OptimumFound && !res.OptimumFound {
			t.Errorf("seed %d: faults broke convergence: clean best %g, faulted best %g",
				seed, ref.Best, res.Best)
		}
	}
}

func chaosBayesCfg(seed int64) bayes.ParallelConfig {
	bn := bayes.Table2Networks()[0]
	return bayes.ParallelConfig{
		Net: bn, Query: bayes.DefaultQuery(bn), P: 2,
		Mode: core.NonStrict, Age: chaosAge,
		Precision: 0.05, MaxIters: 4000,
		Seed:  seed,
		Calib: bayes.DefaultCalibration(),

		Faults:      faults.RandomPlan(seed+1000, 2, 5.0),
		Reliable:    true,
		ReadTimeout: chaosTimeout,
	}
}

func TestChaosBayes(t *testing.T) {
	for seed := int64(0); seed < chaosBayesSeeds; seed++ {
		res, err := bayes.RunParallel(chaosBayesCfg(seed))
		if err != nil {
			t.Fatalf("seed %d: run did not complete (deadlock?): %v", seed, err)
		}
		if res.Completion <= 0 || res.Iters <= 0 {
			t.Fatalf("seed %d: degenerate run: %+v", seed, res)
		}
		if res.Prob < 0 || res.Prob > 1 {
			t.Fatalf("seed %d: estimate %g outside [0,1]", seed, res.Prob)
		}
		var perTask int64
		for _, tt := range res.Telemetry.Tasks {
			perTask += tt.ReadTimeouts
		}
		if perTask != res.Telemetry.StalenessViolations {
			t.Fatalf("seed %d: StalenessViolations %d != sum of task ReadTimeouts %d",
				seed, res.Telemetry.StalenessViolations, perTask)
		}
	}
}

func TestChaosBayesDeterminism(t *testing.T) {
	for _, seed := range []int64{0, 5, 11} {
		a, err := bayes.RunParallel(chaosBayesCfg(seed))
		if err != nil {
			t.Fatal(err)
		}
		b, err := bayes.RunParallel(chaosBayesCfg(seed))
		if err != nil {
			t.Fatal(err)
		}
		if a.Completion != b.Completion || a.Prob != b.Prob || a.Iters != b.Iters ||
			a.Rollbacks != b.Rollbacks {
			t.Fatalf("seed %d: chaos replay diverged:\n%+v\nvs\n%+v", seed, a, b)
		}
	}
}
