// Package faults is the deterministic fault-injection subsystem: a
// seed-driven fault plan (loss bursts, per-link delay spikes, frame
// reordering, duplication, node crash/restart windows, and
// link-partition intervals, all expressed as simulated-time schedules)
// plus an Injector that applies the plan to any netsim.Fabric as a
// wrapping layer.
//
// The paper's claim is that Global_Read tolerates stale data while
// guaranteeing bounded staleness; package netsim's independent frame
// loss alone cannot exercise the failure modes that claim must survive
// (a dropped update otherwise blocks a Global_Read forever). The plan
// engine makes those scenarios reproducible: the same (engine seed,
// plan) pair always yields the same drops, delays, duplications and
// reorderings, in the FoundationDB simulation-testing tradition —
// chaos schedules you can replay byte for byte.
//
// Everything here is strictly opt-in: a nil plan means the fabric is
// used unwrapped and behavior is bit-identical to a build without this
// package.
package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
)

// AnyNode is the wildcard for Src/Dst link selectors: the schedule
// entry applies to frames on every link.
const AnyNode = -1

// LossBurst drops frames with probability Prob while active. Src/Dst
// restrict it to one directed link (AnyNode = wildcard), so a plan can
// express both "the whole medium goes bad" and "this one cable is
// flaky".
type LossBurst struct {
	From float64 `json:"from"` // window start, virtual seconds
	To   float64 `json:"to"`   // window end, virtual seconds
	Prob float64 `json:"prob"` // per-frame drop probability in [0,1]
	Src  int     `json:"src"`  // sending node id, or AnyNode
	Dst  int     `json:"dst"`  // receiving node id, or AnyNode
}

// DelaySpike adds Delay (plus a uniform draw in [0,Jitter)) of extra
// latency to matching deliveries while active — a congested or
// rate-limited link.
type DelaySpike struct {
	From   float64 `json:"from"`
	To     float64 `json:"to"`
	Delay  float64 `json:"delay"`            // seconds added per frame
	Jitter float64 `json:"jitter,omitempty"` // uniform extra in [0,Jitter) seconds
	Src    int     `json:"src"`
	Dst    int     `json:"dst"`
}

// ReorderWindow perturbs delivery order: while active, each frame is
// independently held back with probability Prob by a uniform draw in
// [0,MaxDelay) seconds, letting later frames overtake it.
type ReorderWindow struct {
	From     float64 `json:"from"`
	To       float64 `json:"to"`
	Prob     float64 `json:"prob"`
	MaxDelay float64 `json:"max_delay"` // seconds
}

// DuplicateWindow delivers matching frames twice with probability Prob
// — the duplicate arrives immediately after the original.
type DuplicateWindow struct {
	From float64 `json:"from"`
	To   float64 `json:"to"`
	Prob float64 `json:"prob"`
}

// CrashWindow takes a node off the network for [From,To): every frame
// it sends while crashed and every frame delivered to it while crashed
// is lost. The node's process keeps computing (the model is a NIC or
// daemon crash with restart, not a wiped host); at To the node is
// reachable again.
type CrashWindow struct {
	Node int     `json:"node"`
	From float64 `json:"from"`
	To   float64 `json:"to"`
}

// PartitionWindow splits the network for [From,To): frames between
// GroupA and GroupB (either direction) are lost; traffic within a
// group flows normally.
type PartitionWindow struct {
	From   float64 `json:"from"`
	To     float64 `json:"to"`
	GroupA []int   `json:"group_a"`
	GroupB []int   `json:"group_b"`
}

// Plan is a complete fault schedule. The zero value is a valid no-op
// plan. Seed perturbs the injector's random stream so the same engine
// seed can be exercised under many fault interleavings.
type Plan struct {
	Name       string            `json:"name,omitempty"`
	Seed       int64             `json:"seed,omitempty"`
	Loss       []LossBurst       `json:"loss,omitempty"`
	Delays     []DelaySpike      `json:"delays,omitempty"`
	Reorders   []ReorderWindow   `json:"reorders,omitempty"`
	Duplicates []DuplicateWindow `json:"duplicates,omitempty"`
	Crashes    []CrashWindow     `json:"crashes,omitempty"`
	Partitions []PartitionWindow `json:"partitions,omitempty"`
}

// lossBurstJSON etc. exist so omitted src/dst fields default to
// AnyNode rather than node 0 — "any link" is the sensible JSON default
// and node 0 is a real node. Custom unmarshalers escape the outer
// decoder's unknown-field check, so decodeStrict re-applies it here.
type lossBurstJSON LossBurst

func decodeStrict(data []byte, v interface{}) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// UnmarshalJSON decodes a LossBurst with Src/Dst defaulting to AnyNode.
func (b *LossBurst) UnmarshalJSON(data []byte) error {
	a := lossBurstJSON{Src: AnyNode, Dst: AnyNode}
	if err := decodeStrict(data, &a); err != nil {
		return err
	}
	*b = LossBurst(a)
	return nil
}

type delaySpikeJSON DelaySpike

// UnmarshalJSON decodes a DelaySpike with Src/Dst defaulting to AnyNode.
func (d *DelaySpike) UnmarshalJSON(data []byte) error {
	a := delaySpikeJSON{Src: AnyNode, Dst: AnyNode}
	if err := decodeStrict(data, &a); err != nil {
		return err
	}
	*d = DelaySpike(a)
	return nil
}

// Empty reports whether the plan schedules no faults at all.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Loss) == 0 && len(p.Delays) == 0 && len(p.Reorders) == 0 &&
		len(p.Duplicates) == 0 && len(p.Crashes) == 0 && len(p.Partitions) == 0)
}

func checkWindow(kind string, i int, from, to float64) error {
	if from < 0 {
		return fmt.Errorf("faults: %s[%d]: negative start time %g", kind, i, from)
	}
	if to <= from {
		return fmt.Errorf("faults: %s[%d]: window [%g,%g) is empty or inverted", kind, i, from, to)
	}
	return nil
}

func checkProb(kind string, i int, prob float64) error {
	if prob < 0 || prob > 1 {
		return fmt.Errorf("faults: %s[%d]: probability %g outside [0,1]", kind, i, prob)
	}
	return nil
}

func checkNode(kind string, i, node, nodes int, wildcardOK bool) error {
	if wildcardOK && node == AnyNode {
		return nil
	}
	if node < 0 {
		return fmt.Errorf("faults: %s[%d]: invalid node id %d", kind, i, node)
	}
	if nodes > 0 && node >= nodes {
		return fmt.Errorf("faults: %s[%d]: unknown node id %d (fabric has %d nodes)", kind, i, node, nodes)
	}
	return nil
}

// Validate checks the plan's schedules: non-negative and non-inverted
// windows, probabilities in [0,1], non-overlapping crash windows per
// node, disjoint non-empty partition groups, and — when nodes > 0 —
// every node id within the fabric. Pass nodes = 0 for the structural
// check alone (parse time, before any fabric exists).
func (p *Plan) Validate(nodes int) error {
	for i, b := range p.Loss {
		if err := checkWindow("loss", i, b.From, b.To); err != nil {
			return err
		}
		if err := checkProb("loss", i, b.Prob); err != nil {
			return err
		}
		if err := checkNode("loss.src", i, b.Src, nodes, true); err != nil {
			return err
		}
		if err := checkNode("loss.dst", i, b.Dst, nodes, true); err != nil {
			return err
		}
	}
	for i, d := range p.Delays {
		if err := checkWindow("delays", i, d.From, d.To); err != nil {
			return err
		}
		if d.Delay < 0 || d.Jitter < 0 {
			return fmt.Errorf("faults: delays[%d]: negative delay or jitter", i)
		}
		if err := checkNode("delays.src", i, d.Src, nodes, true); err != nil {
			return err
		}
		if err := checkNode("delays.dst", i, d.Dst, nodes, true); err != nil {
			return err
		}
	}
	for i, r := range p.Reorders {
		if err := checkWindow("reorders", i, r.From, r.To); err != nil {
			return err
		}
		if err := checkProb("reorders", i, r.Prob); err != nil {
			return err
		}
		if r.MaxDelay < 0 {
			return fmt.Errorf("faults: reorders[%d]: negative max_delay", i)
		}
	}
	for i, d := range p.Duplicates {
		if err := checkWindow("duplicates", i, d.From, d.To); err != nil {
			return err
		}
		if err := checkProb("duplicates", i, d.Prob); err != nil {
			return err
		}
	}
	byNode := map[int][]CrashWindow{}
	for i, c := range p.Crashes {
		if err := checkWindow("crashes", i, c.From, c.To); err != nil {
			return err
		}
		if err := checkNode("crashes", i, c.Node, nodes, false); err != nil {
			return err
		}
		byNode[c.Node] = append(byNode[c.Node], c)
	}
	for node, ws := range byNode {
		sort.Slice(ws, func(i, j int) bool { return ws[i].From < ws[j].From })
		for i := 1; i < len(ws); i++ {
			if ws[i].From < ws[i-1].To {
				return fmt.Errorf("faults: crashes: node %d windows [%g,%g) and [%g,%g) overlap",
					node, ws[i-1].From, ws[i-1].To, ws[i].From, ws[i].To)
			}
		}
	}
	for i, pw := range p.Partitions {
		if err := checkWindow("partitions", i, pw.From, pw.To); err != nil {
			return err
		}
		if len(pw.GroupA) == 0 || len(pw.GroupB) == 0 {
			return fmt.Errorf("faults: partitions[%d]: both groups must be non-empty", i)
		}
		inA := map[int]bool{}
		for _, n := range pw.GroupA {
			if err := checkNode("partitions.group_a", i, n, nodes, false); err != nil {
				return err
			}
			inA[n] = true
		}
		for _, n := range pw.GroupB {
			if err := checkNode("partitions.group_b", i, n, nodes, false); err != nil {
				return err
			}
			if inA[n] {
				return fmt.Errorf("faults: partitions[%d]: node %d in both groups", i, n)
			}
		}
	}
	return nil
}

// ParsePlan decodes and structurally validates a fault-plan JSON
// document. Unknown fields are rejected so schedule typos fail loudly
// instead of silently injecting nothing.
func ParsePlan(data []byte) (*Plan, error) {
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("faults: parse plan: %w", err)
	}
	// Trailing garbage after the JSON value is also a malformed plan.
	if dec.More() {
		return nil, fmt.Errorf("faults: parse plan: trailing data after JSON document")
	}
	if err := p.Validate(0); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadFile reads and parses a fault plan from a JSON file.
func LoadFile(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	return ParsePlan(data)
}

// RandomPlan generates a seeded random fault plan over [0,horizon)
// virtual seconds: a few loss bursts, a delay spike, possibly a
// reorder and a duplication window, and — when nodes > 0 — possibly
// one crash window and one partition interval over node ids
// [0,nodes). Windows are kept short relative to the horizon so a
// reliable transport's bounded retransmission can always outlast them,
// which is what lets the chaos harness assert liveness. The result
// always validates.
func RandomPlan(seed int64, nodes int, horizon float64) *Plan {
	if horizon <= 0 {
		horizon = 1
	}
	z := (uint64(seed) + 1) * 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	rng := rand.New(rand.NewSource(int64(z ^ (z >> 27))))
	window := func(maxLen float64) (float64, float64) {
		length := (0.1 + 0.9*rng.Float64()) * maxLen
		from := rng.Float64() * (horizon - length)
		return from, from + length
	}
	p := &Plan{Name: fmt.Sprintf("random-%d", seed), Seed: seed}
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		from, to := window(horizon / 3)
		p.Loss = append(p.Loss, LossBurst{From: from, To: to,
			Prob: 0.1 + 0.6*rng.Float64(), Src: AnyNode, Dst: AnyNode})
	}
	if rng.Intn(2) == 0 {
		from, to := window(horizon / 3)
		p.Delays = append(p.Delays, DelaySpike{From: from, To: to,
			Delay: (1 + 19*rng.Float64()) * 1e-3, Jitter: 5e-3 * rng.Float64(),
			Src: AnyNode, Dst: AnyNode})
	}
	if rng.Intn(2) == 0 {
		from, to := window(horizon / 3)
		p.Reorders = append(p.Reorders, ReorderWindow{From: from, To: to,
			Prob: 0.2 + 0.4*rng.Float64(), MaxDelay: 10e-3 * rng.Float64()})
	}
	if rng.Intn(2) == 0 {
		from, to := window(horizon / 3)
		p.Duplicates = append(p.Duplicates, DuplicateWindow{From: from, To: to,
			Prob: 0.1 + 0.4*rng.Float64()})
	}
	if nodes > 0 && rng.Intn(2) == 0 {
		from, to := window(horizon / 5)
		p.Crashes = append(p.Crashes, CrashWindow{Node: rng.Intn(nodes), From: from, To: to})
	}
	if nodes >= 2 && rng.Intn(2) == 0 {
		from, to := window(horizon / 5)
		cut := 1 + rng.Intn(nodes-1)
		pw := PartitionWindow{From: from, To: to}
		for n := 0; n < nodes; n++ {
			if n < cut {
				pw.GroupA = append(pw.GroupA, n)
			} else {
				pw.GroupB = append(pw.GroupB, n)
			}
		}
		p.Partitions = append(p.Partitions, pw)
	}
	return p
}
