package faults

import (
	"testing"

	"nscc/internal/netsim"
	"nscc/internal/sim"
)

type rcvd struct {
	src     int
	payload interface{}
	at      sim.Time
}

// harness builds an engine and a fabric wrapped by plan, attaches one
// receiver collecting into got and one mute sender, and returns the
// pieces. A nil plan still wraps (the injector must be a no-op then).
func harness(seed int64, plan *Plan, got *[]rcvd) (*sim.Engine, *Injector, int, int) {
	eng := sim.NewEngine(seed)
	inner := netsim.New(eng, netsim.DefaultConfig())
	inj := Wrap(inner, plan)
	dst := inj.Attach("dst", func(src int, payload interface{}, sentAt sim.Time) {
		*got = append(*got, rcvd{src, payload, eng.Now()})
	})
	src := inj.Attach("src", nil)
	return eng, inj, src, dst
}

// TestEmptyPlanIsNoOp sends the same traffic through a bare fabric and
// through an injector with an empty plan: delivery times, payload
// order, and fabric stats must be byte-identical. This is the opt-in
// guarantee the whole subsystem rests on.
func TestEmptyPlanIsNoOp(t *testing.T) {
	run := func(wrap bool) ([]rcvd, netsim.Stats) {
		eng := sim.NewEngine(42)
		inner := netsim.New(eng, netsim.DefaultConfig())
		var fab netsim.Fabric = inner
		if wrap {
			fab = Wrap(inner, nil)
		}
		var got []rcvd
		dst := fab.Attach("dst", func(src int, payload interface{}, sentAt sim.Time) {
			got = append(got, rcvd{src, payload, eng.Now()})
		})
		src := fab.Attach("src", nil)
		for i := 0; i < 20; i++ {
			i := i
			eng.Schedule(sim.Time(i)*sim.Time(sim.Millisecond), func() {
				fab.Send(src, dst, 400, i)
			})
		}
		if err := eng.Run(); err != nil {
			panic(err)
		}
		return got, fab.Stats()
	}
	bare, bareStats := run(false)
	wrapped, wrappedStats := run(true)
	if len(bare) != len(wrapped) {
		t.Fatalf("delivered %d vs %d frames", len(bare), len(wrapped))
	}
	for i := range bare {
		if bare[i] != wrapped[i] {
			t.Fatalf("frame %d differs: %+v vs %+v", i, bare[i], wrapped[i])
		}
	}
	if bareStats != wrappedStats {
		t.Fatalf("stats differ: %+v vs %+v", bareStats, wrappedStats)
	}
}

func TestLossBurstDropsFrames(t *testing.T) {
	var got []rcvd
	plan := &Plan{Loss: []LossBurst{{From: 0, To: 10, Prob: 1, Src: AnyNode, Dst: AnyNode}}}
	eng, inj, src, dst := harness(1, plan, &got)
	for i := 0; i < 5; i++ {
		inj.Send(src, dst, 200, i)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("%d frames survived a prob-1 loss burst", len(got))
	}
	if st := inj.FaultStats(); st.LossDrops != 5 {
		t.Fatalf("LossDrops = %d, want 5", st.LossDrops)
	}
	// The overlay must move the swallowed frames to Dropped.
	if st := inj.Stats(); st.Dropped < 5 {
		t.Fatalf("overlay Dropped = %d, want >= 5", st.Dropped)
	}
}

func TestLossBurstLinkSelector(t *testing.T) {
	var got []rcvd
	// Only the src=1 -> dst=0 link is lossy; the reverse link is not
	// exercised, and a burst naming a different src must not match.
	plan := &Plan{Loss: []LossBurst{
		{From: 0, To: 10, Prob: 1, Src: 0, Dst: 1}, // other direction: no match
	}}
	eng, inj, src, dst := harness(1, plan, &got)
	inj.Send(src, dst, 200, "through")
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].payload != "through" {
		t.Fatalf("frame on unmatched link was dropped: %+v", got)
	}
}

func TestCrashWindowDropsThenRecovers(t *testing.T) {
	var got []rcvd
	// Receiver (node 0 in attach order) crashed during [0, 5ms).
	plan := &Plan{Crashes: []CrashWindow{{Node: 0, From: 0, To: 0.005}}}
	eng, inj, src, dst := harness(1, plan, &got)
	inj.Send(src, dst, 200, "during") // delivered inside the window: dies
	eng.Schedule(sim.Time(20*sim.Millisecond), func() {
		inj.Send(src, dst, 200, "after") // node restarted: delivered
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].payload != "after" {
		t.Fatalf("got %+v, want only the post-restart frame", got)
	}
	if st := inj.FaultStats(); st.CrashDrops != 1 {
		t.Fatalf("CrashDrops = %d, want 1", st.CrashDrops)
	}
}

func TestPartitionDropsAcrossGroups(t *testing.T) {
	var got []rcvd
	// src is node 1, dst is node 0: partition separates them briefly.
	plan := &Plan{Partitions: []PartitionWindow{
		{From: 0, To: 0.005, GroupA: []int{0}, GroupB: []int{1}},
	}}
	eng, inj, src, dst := harness(1, plan, &got)
	inj.Send(src, dst, 200, "cut")
	eng.Schedule(sim.Time(20*sim.Millisecond), func() {
		inj.Send(src, dst, 200, "healed")
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].payload != "healed" {
		t.Fatalf("got %+v, want only the post-heal frame", got)
	}
	if st := inj.FaultStats(); st.PartitionDrops != 1 {
		t.Fatalf("PartitionDrops = %d, want 1", st.PartitionDrops)
	}
}

func TestDelaySpikeAddsLatency(t *testing.T) {
	baseline := func() sim.Time {
		var got []rcvd
		eng, inj, src, dst := harness(1, nil, &got)
		inj.Send(src, dst, 200, "x")
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return got[0].at
	}()
	var got []rcvd
	plan := &Plan{Delays: []DelaySpike{{From: 0, To: 10, Delay: 0.005, Src: AnyNode, Dst: AnyNode}}}
	eng, inj, src, dst := harness(1, plan, &got)
	inj.Send(src, dst, 200, "x")
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := baseline.Add(sim.DurationOf(0.005))
	if len(got) != 1 || got[0].at != want {
		t.Fatalf("delayed frame arrived at %v, want %v", got[0].at, want)
	}
	if st := inj.FaultStats(); st.Delayed != 1 {
		t.Fatalf("Delayed = %d, want 1", st.Delayed)
	}
}

func TestDuplicateWindowDeliversTwice(t *testing.T) {
	var got []rcvd
	plan := &Plan{Duplicates: []DuplicateWindow{{From: 0, To: 10, Prob: 1}}}
	eng, inj, src, dst := harness(1, plan, &got)
	inj.Send(src, dst, 200, "twin")
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].payload != "twin" || got[1].payload != "twin" {
		t.Fatalf("got %+v, want the frame twice", got)
	}
	if st := inj.FaultStats(); st.Duplicated != 1 {
		t.Fatalf("Duplicated = %d, want 1", st.Duplicated)
	}
	// The overlay counts the extra delivery.
	if st := inj.Stats(); st.Delivered != 2 {
		t.Fatalf("overlay Delivered = %d, want 2", st.Delivered)
	}
}

// TestInjectorDeterministic runs stochastic windows (loss + reorder +
// duplication) twice with identical seeds and requires the exact same
// delivery record, then perturbs the plan seed and requires a
// different fault stream.
func TestInjectorDeterministic(t *testing.T) {
	run := func(engSeed, planSeed int64) ([]rcvd, Stats) {
		plan := &Plan{
			Seed:       planSeed,
			Loss:       []LossBurst{{From: 0, To: 10, Prob: 0.4, Src: AnyNode, Dst: AnyNode}},
			Reorders:   []ReorderWindow{{From: 0, To: 10, Prob: 0.5, MaxDelay: 0.004}},
			Duplicates: []DuplicateWindow{{From: 0, To: 10, Prob: 0.3}},
		}
		var got []rcvd
		eng, inj, src, dst := harness(engSeed, plan, &got)
		for i := 0; i < 50; i++ {
			i := i
			eng.Schedule(sim.Time(i)*sim.Time(sim.Millisecond), func() {
				inj.Send(src, dst, 300, i)
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return got, inj.FaultStats()
	}
	a, aStats := run(9, 1)
	b, bStats := run(9, 1)
	if len(a) != len(b) || aStats != bStats {
		t.Fatalf("same seeds diverged: %d/%+v vs %d/%+v", len(a), aStats, len(b), bStats)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("frame %d differs under identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
	_, cStats := run(9, 2)
	if cStats == aStats {
		t.Fatal("plan seed change did not perturb the fault stream")
	}
}
