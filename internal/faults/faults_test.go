package faults

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestValidateErrors is the validation table: every malformed schedule
// the loader must reject, with the substring its error should carry.
func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name  string
		plan  Plan
		nodes int
		want  string // "" = must validate
	}{
		{name: "empty plan ok", plan: Plan{}},
		{
			name: "negative start time",
			plan: Plan{Loss: []LossBurst{{From: -1, To: 1, Prob: 0.5, Src: AnyNode, Dst: AnyNode}}},
			want: "negative start time",
		},
		{
			name: "inverted window",
			plan: Plan{Delays: []DelaySpike{{From: 2, To: 1, Delay: 0.001, Src: AnyNode, Dst: AnyNode}}},
			want: "empty or inverted",
		},
		{
			name: "empty window",
			plan: Plan{Duplicates: []DuplicateWindow{{From: 1, To: 1, Prob: 0.5}}},
			want: "empty or inverted",
		},
		{
			name: "probability above one",
			plan: Plan{Loss: []LossBurst{{From: 0, To: 1, Prob: 1.5, Src: AnyNode, Dst: AnyNode}}},
			want: "outside [0,1]",
		},
		{
			name: "negative probability",
			plan: Plan{Reorders: []ReorderWindow{{From: 0, To: 1, Prob: -0.1, MaxDelay: 0.01}}},
			want: "outside [0,1]",
		},
		{
			name: "negative delay",
			plan: Plan{Delays: []DelaySpike{{From: 0, To: 1, Delay: -0.001, Src: AnyNode, Dst: AnyNode}}},
			want: "negative delay",
		},
		{
			name: "negative reorder max delay",
			plan: Plan{Reorders: []ReorderWindow{{From: 0, To: 1, Prob: 0.5, MaxDelay: -1}}},
			want: "negative max_delay",
		},
		{
			name:  "unknown loss src node",
			plan:  Plan{Loss: []LossBurst{{From: 0, To: 1, Prob: 0.5, Src: 7, Dst: AnyNode}}},
			nodes: 4,
			want:  "unknown node id 7",
		},
		{
			name:  "unknown crash node",
			plan:  Plan{Crashes: []CrashWindow{{Node: 9, From: 0, To: 1}}},
			nodes: 4,
			want:  "unknown node id 9",
		},
		{
			name: "negative crash node",
			plan: Plan{Crashes: []CrashWindow{{Node: -2, From: 0, To: 1}}},
			want: "invalid node id",
		},
		{
			name: "overlapping crash windows same node",
			plan: Plan{Crashes: []CrashWindow{
				{Node: 1, From: 0, To: 2},
				{Node: 1, From: 1.5, To: 3},
			}},
			want: "overlap",
		},
		{
			name: "overlapping crash windows different nodes ok",
			plan: Plan{Crashes: []CrashWindow{
				{Node: 0, From: 0, To: 2},
				{Node: 1, From: 1, To: 3},
			}},
		},
		{
			name: "abutting crash windows ok",
			plan: Plan{Crashes: []CrashWindow{
				{Node: 2, From: 0, To: 1},
				{Node: 2, From: 1, To: 2},
			}},
		},
		{
			name: "partition with empty group",
			plan: Plan{Partitions: []PartitionWindow{{From: 0, To: 1, GroupA: []int{0}}}},
			want: "non-empty",
		},
		{
			name: "partition node in both groups",
			plan: Plan{Partitions: []PartitionWindow{
				{From: 0, To: 1, GroupA: []int{0, 1}, GroupB: []int{1}},
			}},
			want: "in both groups",
		},
		{
			name:  "partition unknown node",
			plan:  Plan{Partitions: []PartitionWindow{{From: 0, To: 1, GroupA: []int{0}, GroupB: []int{5}}}},
			nodes: 4,
			want:  "unknown node id 5",
		},
		{
			name: "structural check ignores node bounds when nodes=0",
			plan: Plan{Crashes: []CrashWindow{{Node: 99, From: 0, To: 1}}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate(tc.nodes)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate(%d) = %v, want nil", tc.nodes, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate(%d) = %v, want error containing %q", tc.nodes, err, tc.want)
			}
		})
	}
}

func TestParsePlan(t *testing.T) {
	t.Run("defaults and fields", func(t *testing.T) {
		p, err := ParsePlan([]byte(`{
			"name": "lossy",
			"seed": 3,
			"loss": [{"from": 0, "to": 2, "prob": 0.3}],
			"delays": [{"from": 0.5, "to": 1, "delay": 0.002, "jitter": 0.001, "src": 1, "dst": 0}],
			"crashes": [{"node": 1, "from": 0.2, "to": 0.4}],
			"partitions": [{"from": 1, "to": 1.5, "group_a": [0], "group_b": [1, 2]}]
		}`))
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != "lossy" || p.Seed != 3 {
			t.Fatalf("header fields wrong: %+v", p)
		}
		// Omitted src/dst must default to the wildcard, not node 0.
		if p.Loss[0].Src != AnyNode || p.Loss[0].Dst != AnyNode {
			t.Fatalf("omitted loss src/dst = (%d,%d), want AnyNode", p.Loss[0].Src, p.Loss[0].Dst)
		}
		if p.Delays[0].Src != 1 || p.Delays[0].Dst != 0 {
			t.Fatalf("explicit delay src/dst not preserved: %+v", p.Delays[0])
		}
		if p.Empty() {
			t.Fatal("plan with schedules reported Empty")
		}
	})
	t.Run("unknown field rejected", func(t *testing.T) {
		if _, err := ParsePlan([]byte(`{"loss": [{"from": 0, "to": 1, "porb": 0.3}]}`)); err == nil {
			t.Fatal("typoed field accepted")
		}
	})
	t.Run("trailing garbage rejected", func(t *testing.T) {
		if _, err := ParsePlan([]byte(`{} trailing`)); err == nil {
			t.Fatal("trailing data accepted")
		}
	})
	t.Run("structural validation applied", func(t *testing.T) {
		_, err := ParsePlan([]byte(`{"loss": [{"from": -5, "to": 1, "prob": 0.3}]}`))
		if err == nil || !strings.Contains(err.Error(), "negative start time") {
			t.Fatalf("invalid plan accepted: %v", err)
		}
	})
	t.Run("not json", func(t *testing.T) {
		if _, err := ParsePlan([]byte(`Ethernet weather: cloudy`)); err == nil {
			t.Fatal("non-JSON accepted")
		}
	})
}

func TestLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, []byte(`{"name":"f","loss":[{"from":0,"to":1,"prob":0.2}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "f" || len(p.Loss) != 1 {
		t.Fatalf("loaded %+v", p)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestPlanEmpty(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() || !(&Plan{Name: "n", Seed: 4}).Empty() {
		t.Fatal("nil or schedule-free plan not Empty")
	}
	if (&Plan{Reorders: []ReorderWindow{{From: 0, To: 1}}}).Empty() {
		t.Fatal("plan with a reorder window reported Empty")
	}
}

// TestRandomPlanAlwaysValidates is the generator's contract: whatever
// the seed, the plan it emits passes full validation against the node
// count it was generated for.
func TestRandomPlanAlwaysValidates(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		for _, nodes := range []int{0, 1, 2, 4, 16} {
			p := RandomPlan(seed, nodes, 2.0)
			if err := p.Validate(nodes); err != nil {
				t.Fatalf("RandomPlan(%d, %d, 2.0) invalid: %v", seed, nodes, err)
			}
			if p.Empty() {
				t.Fatalf("RandomPlan(%d, %d, 2.0) scheduled nothing", seed, nodes)
			}
		}
	}
	// Same seed, same plan; different seed, different name at least.
	a, b := RandomPlan(7, 4, 2.0), RandomPlan(7, 4, 2.0)
	if a.Name != b.Name || len(a.Loss) != len(b.Loss) || a.Loss[0] != b.Loss[0] {
		t.Fatal("RandomPlan not deterministic in its seed")
	}
}
