package faults

import (
	"encoding/json"
	"testing"
)

// FuzzParsePlan hammers the plan loader with arbitrary bytes. The
// contract under fuzzing: never panic, and any plan that parses must
// (a) pass structural validation — ParsePlan promised as much — and
// (b) survive a marshal/parse round trip with its schedule intact, so
// a saved plan file always reloads to the same chaos.
func FuzzParsePlan(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"name":"lossy-ethernet","seed":7,"loss":[{"from":0,"to":2,"prob":0.3}]}`,
		`{"loss":[{"from":0,"to":1,"prob":1,"src":0,"dst":1}]}`,
		`{"delays":[{"from":0.5,"to":1.5,"delay":0.002,"jitter":0.001}]}`,
		`{"reorders":[{"from":0,"to":1,"prob":0.5,"max_delay":0.01}]}`,
		`{"duplicates":[{"from":0,"to":2,"prob":0.2}]}`,
		`{"crashes":[{"node":1,"from":0.2,"to":0.4}]}`,
		`{"partitions":[{"from":1,"to":1.5,"group_a":[0],"group_b":[1,2]}]}`,
		// Malformed documents the parser must reject cleanly.
		`{"loss":[{"from":-1,"to":1,"prob":0.5}]}`,
		`{"loss":[{"from":0,"to":1,"prob":2}]}`,
		`{"crashes":[{"node":1,"from":0,"to":2},{"node":1,"from":1,"to":3}]}`,
		`{"unknown_field":true}`,
		`{} trailing`,
		`not json at all`,
		`[1,2,3]`,
		`{"loss":[{"from":1e308,"to":1e309,"prob":0.5}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParsePlan(data)
		if err != nil {
			return
		}
		if verr := p.Validate(0); verr != nil {
			t.Fatalf("ParsePlan accepted a plan Validate(0) rejects: %v\ninput: %q", verr, data)
		}
		out, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("accepted plan does not re-marshal: %v", err)
		}
		q, err := ParsePlan(out)
		if err != nil {
			t.Fatalf("round trip does not re-parse: %v\nmarshaled: %s", err, out)
		}
		if len(q.Loss) != len(p.Loss) || len(q.Delays) != len(p.Delays) ||
			len(q.Reorders) != len(p.Reorders) || len(q.Duplicates) != len(p.Duplicates) ||
			len(q.Crashes) != len(p.Crashes) || len(q.Partitions) != len(p.Partitions) {
			t.Fatalf("round trip changed the schedule: %+v vs %+v", p, q)
		}
	})
}
