package faults

import (
	"math/rand"

	"nscc/internal/netsim"
	"nscc/internal/sim"
	"nscc/internal/trace"
)

// Stats counts what the injector did to the traffic that passed
// through it, by fault class.
type Stats struct {
	CrashDrops     int64 // frames lost to a crashed sender or receiver
	PartitionDrops int64 // frames lost to an active partition
	LossDrops      int64 // frames lost to a loss burst
	Delayed        int64 // frames given extra latency (spike or reorder)
	Duplicated     int64 // frames delivered a second time
}

// Injector applies a Plan to an existing fabric. It implements
// netsim.Fabric by delegating transmission to the wrapped fabric and
// intercepting every delivery: each Attach handler is wrapped so that
// at delivery time the injector may drop the frame (crash, partition,
// loss burst), hold it back (delay spike, reorder), or deliver it
// twice (duplication).
//
// All fault logic runs at the delivery side on purpose: frames always
// enter the wrapped fabric, so sender-side bookkeeping — bus occupancy,
// send-window onWire callbacks — behaves exactly as in a fault-free
// run. A crashed sender's frames still leave its NIC model and die on
// the medium; this keeps the sender's own flow control live, which is
// what real lost frames do to real senders.
//
// Determinism: the injector draws randomness from its own stream,
// derived from (engine seed, plan seed), and draws only when a
// stochastic window is active for the frame at hand. A plan with no
// active window at any delivery perturbs nothing — the run is
// bit-identical to the unwrapped fabric.
type Injector struct {
	inner netsim.Fabric
	plan  *Plan
	eng   *sim.Engine
	rng   *rand.Rand
	stats Stats
}

var _ netsim.Fabric = (*Injector)(nil)

// Wrap layers plan over inner. A nil or empty plan is legal and
// perturbs nothing; callers that want zero overhead can skip wrapping
// instead. Crash and partition windows are emitted to the engine's
// tracer (if any) as spans so they appear alongside the drops they
// cause.
func Wrap(inner netsim.Fabric, plan *Plan) *Injector {
	if plan == nil {
		plan = &Plan{}
	}
	eng := inner.Engine()
	// SplitMix64-style scramble of (engine seed, plan seed) so the
	// fault stream is unrelated to every other stream in the run and
	// changes with either seed.
	z := uint64(eng.Seed()) ^ (uint64(plan.Seed)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	inj := &Injector{inner: inner, plan: plan, eng: eng,
		rng: rand.New(rand.NewSource(int64(z ^ (z >> 31))))}
	if tr := eng.Tracer(); tr != nil {
		for _, c := range plan.Crashes {
			tr.Emit(trace.Event{TS: stime(c.From), Dur: stime(c.To) - stime(c.From),
				Ph: trace.PhaseSpan, Pid: trace.PidFaults, Tid: c.Node,
				Cat: "faults", Name: "crash"})
		}
		for i, p := range plan.Partitions {
			tr.Emit(trace.Event{TS: stime(p.From), Dur: stime(p.To) - stime(p.From),
				Ph: trace.PhaseSpan, Pid: trace.PidFaults, Tid: i,
				Cat: "faults", Name: "partition",
				K1: "group_a", V1: int64(len(p.GroupA)), K2: "group_b", V2: int64(len(p.GroupB))})
		}
	}
	return inj
}

// stime converts plan seconds to trace/engine virtual nanoseconds.
func stime(secs float64) int64 { return int64(secs * 1e9) }

// active reports whether t (virtual seconds) lies in [from,to).
func active(t, from, to float64) bool { return t >= from && t < to }

// Plan returns the wrapped plan.
func (j *Injector) Plan() *Plan { return j.plan }

// FaultStats returns the injector's own counters.
func (j *Injector) FaultStats() Stats { return j.stats }

// Engine returns the underlying engine.
func (j *Injector) Engine() *sim.Engine { return j.eng }

// Nodes reports the wrapped fabric's node count.
func (j *Injector) Nodes() int { return j.inner.Nodes() }

// Stats returns the wrapped fabric's counters corrected for the
// injector's interventions: frames the injector swallowed move from
// Delivered to Dropped, and duplicate deliveries count as Delivered.
func (j *Injector) Stats() netsim.Stats {
	s := j.inner.Stats()
	drops := j.stats.CrashDrops + j.stats.PartitionDrops + j.stats.LossDrops
	s.Delivered += j.stats.Duplicated - drops
	s.Dropped += drops
	return s
}

// Attach registers a node on the wrapped fabric with a fault-filtering
// handler around h.
func (j *Injector) Attach(name string, h netsim.Handler) int {
	var id int
	id = j.inner.Attach(name, func(src int, payload interface{}, sentAt sim.Time) {
		j.deliver(src, id, payload, sentAt, h)
	})
	return id
}

// Multicast delegates to the wrapped fabric.
func (j *Injector) Multicast(src int, dsts []int, size int, payload interface{}, onWire func()) {
	j.inner.Multicast(src, dsts, size, payload, onWire)
}

// Unicast delegates to the wrapped fabric.
func (j *Injector) Unicast(src, dst, size int, payload interface{}, onWire func()) {
	j.inner.Unicast(src, dst, size, payload, onWire)
}

// Send delegates to the wrapped fabric.
func (j *Injector) Send(src, dst, size int, payload interface{}) {
	j.inner.Send(src, dst, size, payload)
}

// crashed reports whether node is inside a crash window at time t.
func (j *Injector) crashed(node int, t float64) bool {
	for _, c := range j.plan.Crashes {
		if c.Node == node && active(t, c.From, c.To) {
			return true
		}
	}
	return false
}

// partitioned reports whether src and dst are on opposite sides of a
// partition active at time t.
func (j *Injector) partitioned(src, dst int, t float64) bool {
	for _, p := range j.plan.Partitions {
		if !active(t, p.From, p.To) {
			continue
		}
		sideOf := func(n int) int {
			for _, a := range p.GroupA {
				if a == n {
					return 1
				}
			}
			for _, b := range p.GroupB {
				if b == n {
					return 2
				}
			}
			return 0 // not named: unaffected by this partition
		}
		ss, ds := sideOf(src), sideOf(dst)
		if ss != 0 && ds != 0 && ss != ds {
			return true
		}
	}
	return false
}

// traceFault emits one injector instant (nil-tracer safe).
func (j *Injector) traceFault(dst int, name string, src int, v2key string, v2 int64) {
	if tr := j.eng.Tracer(); tr != nil {
		tr.Emit(trace.Event{TS: int64(j.eng.Now()), Ph: trace.PhaseInstant,
			Pid: trace.PidFaults, Tid: dst, Cat: "faults", Name: name,
			K1: "src", V1: int64(src), K2: v2key, V2: v2})
	}
}

// deliver runs the fault pipeline for one frame arriving at dst. It is
// invoked by the wrapped fabric's delivery event, so eng.Now() is the
// fabric's natural delivery time.
func (j *Injector) deliver(src, dst int, payload interface{}, sentAt sim.Time, h netsim.Handler) {
	now := j.eng.Now().Seconds()
	sent := sentAt.Seconds()

	// Crash windows: a frame dies if its sender was crashed when it was
	// transmitted or its receiver is crashed when it arrives.
	if j.crashed(src, sent) || j.crashed(dst, now) {
		j.stats.CrashDrops++
		j.traceFault(dst, "crash_drop", src, "", 0)
		return
	}
	// Partitions cut the link for the frame's whole flight: judged at
	// transmission time, so a partition that lifts mid-flight still
	// kills frames sent while it was up.
	if j.partitioned(src, dst, sent) {
		j.stats.PartitionDrops++
		j.traceFault(dst, "partition_drop", src, "", 0)
		return
	}
	// Loss bursts, judged at delivery time on the (src,dst) link.
	for _, b := range j.plan.Loss {
		if !active(now, b.From, b.To) ||
			(b.Src != AnyNode && b.Src != src) || (b.Dst != AnyNode && b.Dst != dst) {
			continue
		}
		if j.rng.Float64() < b.Prob {
			j.stats.LossDrops++
			j.traceFault(dst, "loss_drop", src, "", 0)
			return
		}
	}
	// Delay spikes and reorder jitter accumulate into one deferral.
	var extra sim.Duration
	for _, d := range j.plan.Delays {
		if !active(now, d.From, d.To) ||
			(d.Src != AnyNode && d.Src != src) || (d.Dst != AnyNode && d.Dst != dst) {
			continue
		}
		extra += sim.DurationOf(d.Delay)
		if d.Jitter > 0 {
			extra += sim.DurationOf(j.rng.Float64() * d.Jitter)
		}
	}
	for _, r := range j.plan.Reorders {
		if !active(now, r.From, r.To) {
			continue
		}
		if j.rng.Float64() < r.Prob && r.MaxDelay > 0 {
			extra += sim.DurationOf(j.rng.Float64() * r.MaxDelay)
		}
	}
	// Duplication: the copy arrives after the original plus any jitter,
	// so a duplicate of a delayed frame is also delayed.
	dup := false
	for _, d := range j.plan.Duplicates {
		if active(now, d.From, d.To) && j.rng.Float64() < d.Prob {
			dup = true
			break
		}
	}
	if extra > 0 {
		j.stats.Delayed++
		j.traceFault(dst, "delay", src, "extra_us", int64(extra)/1000)
		at := j.eng.Now().Add(extra)
		j.eng.Schedule(at, func() { h(src, payload, sentAt) })
		if dup {
			j.stats.Duplicated++
			j.traceFault(dst, "duplicate", src, "", 0)
			j.eng.Schedule(at, func() { h(src, payload, sentAt) })
		}
		return
	}
	h(src, payload, sentAt)
	if dup {
		j.stats.Duplicated++
		j.traceFault(dst, "duplicate", src, "", 0)
		h(src, payload, sentAt)
	}
}
