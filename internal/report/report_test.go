package report

import (
	"strings"
	"testing"
)

func TestSparklineBasics(t *testing.T) {
	if Sparkline(nil, 0, 1) != "" {
		t.Fatal("empty input should give empty string")
	}
	s := Sparkline([]float64{0, 0.5, 1}, 0, 1)
	if len([]rune(s)) != 3 {
		t.Fatalf("length %d", len([]rune(s)))
	}
	rs := []rune(s)
	if rs[0] != '▁' || rs[2] != '█' {
		t.Fatalf("endpoints wrong: %q", s)
	}
}

func TestSparklineClamps(t *testing.T) {
	s := []rune(Sparkline([]float64{-5, 10}, 0, 1))
	if s[0] != '▁' || s[1] != '█' {
		t.Fatalf("out-of-range values not clamped: %q", string(s))
	}
	// Degenerate range must not divide by zero.
	if Sparkline([]float64{3, 3}, 3, 3) == "" {
		t.Fatal("degenerate range produced nothing")
	}
}

func TestAutoSparkline(t *testing.T) {
	s := []rune(AutoSparkline([]float64{1, 2, 3}))
	if s[0] != '▁' || s[2] != '█' {
		t.Fatalf("auto scaling wrong: %q", string(s))
	}
	if AutoSparkline(nil) != "" {
		t.Fatal("empty auto sparkline")
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart([]Bar{{"sync", 1}, {"gr(10)", 2}}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines: %v", lines)
	}
	if !strings.Contains(lines[1], strings.Repeat("█", 10)) {
		t.Fatalf("max bar not full width: %q", lines[1])
	}
	if !strings.Contains(lines[0], "1.00") || !strings.Contains(lines[1], "2.00") {
		t.Fatalf("values missing: %v", lines)
	}
	halfBars := strings.Count(lines[0], "█")
	if halfBars != 5 {
		t.Fatalf("half-value bar has %d cells, want 5", halfBars)
	}
}

func TestBarChartEdgeCases(t *testing.T) {
	if BarChart(nil, 10) != "" {
		t.Fatal("empty chart should be empty")
	}
	out := BarChart([]Bar{{"zero", 0}}, 0)
	if !strings.Contains(out, "zero") {
		t.Fatalf("zero-value chart broken: %q", out)
	}
}
