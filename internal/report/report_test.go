package report

import (
	"math"
	"strings"
	"testing"
)

func TestSparklineBasics(t *testing.T) {
	if Sparkline(nil, 0, 1) != "" {
		t.Fatal("empty input should give empty string")
	}
	s := Sparkline([]float64{0, 0.5, 1}, 0, 1)
	if len([]rune(s)) != 3 {
		t.Fatalf("length %d", len([]rune(s)))
	}
	rs := []rune(s)
	if rs[0] != '▁' || rs[2] != '█' {
		t.Fatalf("endpoints wrong: %q", s)
	}
}

func TestSparklineClamps(t *testing.T) {
	s := []rune(Sparkline([]float64{-5, 10}, 0, 1))
	if s[0] != '▁' || s[1] != '█' {
		t.Fatalf("out-of-range values not clamped: %q", string(s))
	}
	// Degenerate range must not divide by zero.
	if Sparkline([]float64{3, 3}, 3, 3) == "" {
		t.Fatal("degenerate range produced nothing")
	}
}

func TestAutoSparkline(t *testing.T) {
	s := []rune(AutoSparkline([]float64{1, 2, 3}))
	if s[0] != '▁' || s[2] != '█' {
		t.Fatalf("auto scaling wrong: %q", string(s))
	}
	if AutoSparkline(nil) != "" {
		t.Fatal("empty auto sparkline")
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart([]Bar{{"sync", 1}, {"gr(10)", 2}}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines: %v", lines)
	}
	if !strings.Contains(lines[1], strings.Repeat("█", 10)) {
		t.Fatalf("max bar not full width: %q", lines[1])
	}
	if !strings.Contains(lines[0], "1.00") || !strings.Contains(lines[1], "2.00") {
		t.Fatalf("values missing: %v", lines)
	}
	halfBars := strings.Count(lines[0], "█")
	if halfBars != 5 {
		t.Fatalf("half-value bar has %d cells, want 5", halfBars)
	}
}

func TestBarChartEdgeCases(t *testing.T) {
	if BarChart(nil, 10) != "" {
		t.Fatal("empty chart should be empty")
	}
	out := BarChart([]Bar{{"zero", 0}}, 0)
	if !strings.Contains(out, "zero") {
		t.Fatalf("zero-value chart broken: %q", out)
	}
}

func TestSparklineNaNInf(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	s := []rune(Sparkline([]float64{nan, inf, -inf, 1}, 0, 1))
	if len(s) != 4 {
		t.Fatalf("length %d", len(s))
	}
	if s[0] != '▁' || s[2] != '▁' {
		t.Errorf("NaN/-Inf should render bottom glyph: %q", string(s))
	}
	if s[1] != '█' {
		t.Errorf("+Inf should clamp to top glyph: %q", string(s))
	}
	// NaN bounds must not panic or index out of range.
	if got := Sparkline([]float64{1, 2}, nan, nan); len([]rune(got)) != 2 {
		t.Errorf("NaN bounds: %q", got)
	}
}

func TestAutoSparklineIgnoresNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	s := []rune(AutoSparkline([]float64{nan, 1, 2, 3, inf}))
	if len(s) != 5 {
		t.Fatalf("length %d", len(s))
	}
	// Bounds come from the finite samples: 1 bottom, 3 top.
	if s[1] != '▁' || s[3] != '█' {
		t.Errorf("finite scaling wrong: %q", string(s))
	}
	// All-non-finite input renders without panicking.
	if got := AutoSparkline([]float64{nan, inf}); len([]rune(got)) != 2 {
		t.Errorf("all-non-finite: %q", got)
	}
}

func TestBarChartNaNInf(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	// Must not panic (negative strings.Repeat) or let Inf set the scale.
	out := BarChart([]Bar{{"nan", nan}, {"inf", inf}, {"real", 2}}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines: %v", lines)
	}
	if strings.Count(lines[0], "█") != 0 {
		t.Errorf("NaN bar not empty: %q", lines[0])
	}
	if strings.Count(lines[2], "█") != 10 {
		t.Errorf("finite max bar not full width against Inf sibling: %q", lines[2])
	}
}
