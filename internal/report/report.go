// Package report renders small terminal visualizations for the
// experiment tools: sparklines for time series (warp instability
// onset), horizontal bar charts for speedup comparisons. No external
// dependencies; output is plain UTF-8 suited to the CLI tools' stdout.
package report

import (
	"fmt"
	"math"
	"strings"
)

// sparkLevels are the eight block glyphs a sparkline quantizes into.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a fixed-height block-glyph strip, scaled
// between lo and hi (values outside clamp). Empty input yields "".
func Sparkline(values []float64, lo, hi float64) string {
	if len(values) == 0 {
		return ""
	}
	if hi <= lo {
		hi = lo + 1
	}
	var b strings.Builder
	for _, v := range values {
		f := (v - lo) / (hi - lo)
		if math.IsNaN(f) || f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		idx := int(f * float64(len(sparkLevels)-1))
		if idx < 0 || idx >= len(sparkLevels) {
			// int(f*...) with f exactly 1 and a huge scale, or an Inf that
			// slipped through the clamps, must not index out of range.
			idx = 0
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// AutoSparkline scales the sparkline to the series' own min/max,
// ignoring NaN/Inf samples when deriving the bounds (they render as
// the bottom glyph).
func AutoSparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi < lo { // nothing finite
		lo, hi = 0, 1
	}
	return Sparkline(values, lo, hi)
}

// Bar is one row of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders horizontal bars scaled to the maximum value, width
// cells wide, with the numeric value appended. Labels are aligned.
func BarChart(bars []Bar, width int) string {
	if len(bars) == 0 {
		return ""
	}
	if width < 1 {
		width = 40
	}
	maxLabel, maxVal := 0, 0.0
	for _, b := range bars {
		if len(b.Label) > maxLabel {
			maxLabel = len(b.Label)
		}
		// NaN/Inf must not poison the scale (int(NaN) is undefined and a
		// negative repeat count panics strings.Repeat).
		if !math.IsNaN(b.Value) && !math.IsInf(b.Value, 0) && b.Value > maxVal {
			maxVal = b.Value
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	var out strings.Builder
	for _, b := range bars {
		f := b.Value / maxVal
		if math.IsNaN(f) || f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		n := int(f * float64(width))
		if n < 0 {
			n = 0
		}
		if n > width {
			n = width
		}
		fmt.Fprintf(&out, "%-*s %s%s %.2f\n",
			maxLabel, b.Label,
			strings.Repeat("█", n), strings.Repeat(" ", width-n), b.Value)
	}
	return out.String()
}
