package sim

import (
	"errors"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30ns", e.Now())
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-time events fired out of schedule order: %v", got)
		}
	}
}

func TestEventCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	h := e.Schedule(10, func() { fired = true })
	e.Schedule(5, func() { h.Cancel() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(50, func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: for any set of (time, id) pairs, events fire sorted by time
// with FIFO tie-break.
func TestEventOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		if len(times) > 200 {
			times = times[:200]
		}
		e := NewEngine(42)
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		for i, tm := range times {
			at := Time(tm)
			seq := i
			e.Schedule(at, func() { fired = append(fired, rec{at, seq}) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool {
			if fired[i].at != fired[j].at {
				return fired[i].at < fired[j].at
			}
			return fired[i].seq < fired[j].seq
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestProcSleepInterleaving(t *testing.T) {
	e := NewEngine(1)
	var trace []string
	e.Spawn("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(10)
		trace = append(trace, "a10")
		p.Sleep(20)
		trace = append(trace, "a30")
	})
	e.Spawn("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(15)
		trace = append(trace, "b15")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "a0 b0 a10 b15 a30"
	if got := strings.Join(trace, " "); got != want {
		t.Fatalf("trace = %q, want %q", got, want)
	}
	if e.Live() != 0 {
		t.Fatalf("Live = %d, want 0", e.Live())
	}
}

func TestSleepUntil(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.Spawn("p", func(p *Proc) {
		p.SleepUntil(100)
		p.SleepUntil(50) // in the past: no-op
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 100 {
		t.Fatalf("woke at %v, want 100ns", at)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine(1)
	var wl WaitList
	e.Spawn("stuck", func(p *Proc) { wl.Wait(p) })
	err := e.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("deadlock error %q does not name the stuck process", err)
	}
}

func TestWaitListFIFO(t *testing.T) {
	e := NewEngine(1)
	var wl WaitList
	var order []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			wl.Wait(p)
			order = append(order, name)
		})
	}
	e.Schedule(10, func() { wl.WakeOne() })
	e.Schedule(20, func() { wl.WakeAll() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"w1", "w2", "w3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
}

func TestFuture(t *testing.T) {
	e := NewEngine(1)
	var f Future
	var got interface{}
	e.Spawn("reader", func(p *Proc) { got = f.Wait(p) })
	e.Schedule(50, func() { f.Complete(99) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 99 {
		t.Fatalf("future value = %v, want 99", got)
	}
	if !f.Done() {
		t.Fatal("future not done")
	}
}

func TestFutureWaitAfterComplete(t *testing.T) {
	e := NewEngine(1)
	var f Future
	f.Complete("x")
	var got interface{}
	e.Spawn("late", func(p *Proc) { got = f.Wait(p) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "x" {
		t.Fatalf("late wait = %v, want x", got)
	}
}

func TestFutureDoubleCompletePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("double Complete did not panic")
		}
	}()
	var f Future
	f.Complete(1)
	f.Complete(2)
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	e := NewEngine(1)
	s := NewSemaphore(2)
	inside, peak := 0, 0
	for i := 0; i < 6; i++ {
		e.Spawn("worker", func(p *Proc) {
			s.Acquire(p)
			inside++
			if inside > peak {
				peak = inside
			}
			p.Sleep(10)
			inside--
			s.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if peak != 2 {
		t.Fatalf("peak concurrency = %d, want 2", peak)
	}
	if s.Available() != 2 {
		t.Fatalf("permits = %d, want 2", s.Available())
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	s := NewSemaphore(1)
	if !s.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if s.TryAcquire() {
		t.Fatal("second TryAcquire succeeded on empty semaphore")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("TryAcquire after Release failed")
	}
}

func TestBarrierRounds(t *testing.T) {
	e := NewEngine(1)
	const n, rounds = 4, 3
	b := NewBarrier(n)
	var times [rounds][n]Time
	for i := 0; i < n; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			for round := 0; round < rounds; round++ {
				p.Sleep(Duration(10 * (i + 1))) // skewed work
				b.Arrive(p)
				times[round][i] = p.Now()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < rounds; round++ {
		for i := 1; i < n; i++ {
			if times[round][i] != times[round][0] {
				t.Fatalf("round %d: process %d left barrier at %v, process 0 at %v",
					round, i, times[round][i], times[round][0])
			}
		}
	}
}

func TestBarrierGeneration(t *testing.T) {
	e := NewEngine(1)
	b := NewBarrier(2)
	var gens []int
	for i := 0; i < 2; i++ {
		e.Spawn("p", func(p *Proc) {
			for r := 0; r < 3; r++ {
				gens = append(gens, b.Arrive(p))
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	count := map[int]int{}
	for _, g := range gens {
		count[g]++
	}
	for g := 0; g < 3; g++ {
		if count[g] != 2 {
			t.Fatalf("generation %d completed by %d parties, want 2 (gens=%v)", g, count[g], gens)
		}
	}
}

func TestPanicPropagates(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("bad", func(p *Proc) {
		p.Sleep(5)
		panic("boom")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("process panic did not propagate to Run")
		}
		if !strings.Contains(r.(string), "boom") || !strings.Contains(r.(string), "bad") {
			t.Fatalf("panic %q lacks process name or message", r)
		}
	}()
	_ = e.Run()
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	if err := e.RunUntil(25); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || e.Now() != 25 {
		t.Fatalf("fired %v now %v; want 2 events, now=25ns", fired, e.Now())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 4 {
		t.Fatalf("fired %v after full run, want 4 events", fired)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		e := NewEngine(seed)
		var vals []int64
		for i := 0; i < 4; i++ {
			e.Spawn("p", func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(Duration(p.Rng().Intn(100) + 1))
					vals = append(vals, int64(p.Now())+p.Rng().Int63n(10))
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return vals
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if i >= len(c) || a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestRngStreamsIndependent(t *testing.T) {
	e := NewEngine(123)
	r0 := e.rngFor(0)
	r1 := e.rngFor(1)
	equal := 0
	for i := 0; i < 64; i++ {
		if r0.Int63() == r1.Int63() {
			equal++
		}
	}
	if equal > 2 {
		t.Fatalf("adjacent process RNG streams correlate: %d/64 equal draws", equal)
	}
}

func TestTimeHelpers(t *testing.T) {
	if DurationOf(1.5) != 1500*Millisecond {
		t.Fatalf("DurationOf(1.5) = %v", DurationOf(1.5))
	}
	tt := Time(0).Add(2 * Second)
	if tt.Seconds() != 2 {
		t.Fatalf("Seconds = %v", tt.Seconds())
	}
	if tt.Sub(Time(Second)) != Duration(Second) {
		t.Fatal("Sub wrong")
	}
	if Time(1500000000).String() != "1.500000s" {
		t.Fatalf("String = %q", Time(1500000000).String())
	}
}

// Property: semaphore never over-admits regardless of interleaving.
func TestSemaphoreProperty(t *testing.T) {
	f := func(seed int64, capRaw uint8, nRaw uint8) bool {
		capacity := int(capRaw%4) + 1
		n := int(nRaw%20) + 1
		e := NewEngine(seed)
		s := NewSemaphore(capacity)
		inside, ok := 0, true
		for i := 0; i < n; i++ {
			e.Spawn("w", func(p *Proc) {
				p.Sleep(Duration(p.Rng().Intn(50)))
				s.Acquire(p)
				inside++
				if inside > capacity {
					ok = false
				}
				p.Sleep(Duration(p.Rng().Intn(50) + 1))
				inside--
				s.Release()
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return ok && s.Available() == capacity
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(3)
	fired := 0
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Time(i*10), func() {
			fired++
			if i == 4 {
				e.Stop()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 5 {
		t.Fatalf("fired %d events before Stop, want 5", fired)
	}
	// Stop is one-shot: a fresh Run drains the rest.
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 10 {
		t.Fatalf("fired %d after resume, want 10", fired)
	}
}

func TestEngineAccessors(t *testing.T) {
	e := NewEngine(99)
	if e.Seed() != 99 {
		t.Fatal("Seed")
	}
	fired := false
	e.After(5*Millisecond, func() { fired = true })
	e.After(-time5(), func() {}) // negative clamps to now
	var p *Proc
	p = e.Spawn("named", func(pp *Proc) {
		if pp.Engine() != e || pp.Name() != "named" || pp.ID() != 0 {
			t.Error("proc accessors wrong")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired || !p.Done() {
		t.Fatal("After event or proc completion missing")
	}
	if e.NewRng(7) == nil {
		t.Fatal("NewRng nil")
	}
}

func time5() Duration { return 5 * Millisecond }

func TestSleepNegative(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		p.Sleep(-time5())
		if p.Now() != 0 {
			t.Errorf("negative sleep advanced time to %v", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitListLenAndFutureValue(t *testing.T) {
	e := NewEngine(1)
	var wl WaitList
	var f Future
	e.Spawn("w", func(p *Proc) { wl.Wait(p) })
	e.Schedule(1, func() {
		if wl.Len() != 1 {
			t.Errorf("Len = %d", wl.Len())
		}
		wl.WakeAll()
		f.Complete("v")
		if f.Value() != "v" {
			t.Errorf("Value = %v", f.Value())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(0)
}

func TestBarrierParties(t *testing.T) {
	if NewBarrier(3).Parties() != 3 {
		t.Fatal("Parties")
	}
}

func TestDurationStrings(t *testing.T) {
	if (1500 * Millisecond).String() != "1.500000s" {
		t.Fatalf("Duration.String = %q", (1500 * Millisecond).String())
	}
	if (2 * Second).Seconds() != 2 {
		t.Fatal("Duration.Seconds")
	}
}

func TestRunUntilThenDeadlockReport(t *testing.T) {
	e := NewEngine(1)
	var wl WaitList
	e.Spawn("a", func(p *Proc) { wl.Wait(p) })
	e.Spawn("b", func(p *Proc) { wl.Wait(p) })
	// RunUntil with a finite deadline does not report deadlock...
	if err := e.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	// ...but a full Run does, naming both processes.
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "a, b") {
		t.Fatalf("err = %v, want deadlock naming a and b", err)
	}
}
