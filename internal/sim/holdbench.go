package sim

import (
	"container/heap"
	"math/rand"
)

// This file exports the hold-model queue exercisers that back the
// sim.QueueHold* entries in BENCH_*.json snapshots. The calendar queue
// is an internal engine detail, so internal/benchio cannot drive it
// directly; routing the calendar side through the full engine while the
// heap baseline ran bare would charge the calendar for the engine loop
// around it and invert the comparison. Both exercisers here perform
// exactly one pop-min + one reinsert per op on their queue and nothing
// else, mirroring BenchmarkEventQueueHold in queue_bench_test.go.

// benchGap draws the classic hold-model inter-event gap: mostly dense
// traffic with a heavy tail of far-out timers, mirroring what a large
// netsim/pvm run schedules.
func benchGap(rng *rand.Rand) Time {
	if rng.Intn(10) == 0 {
		return Time(rng.Int63n(int64(20 * Millisecond))) // retransmit-timer scale
	}
	return Time(rng.Int63n(int64(100 * Microsecond))) // frame/wake scale
}

// HoldBench drives the engine's calendar queue under the hold model
// (steady-state pop-min + reinsert at a later time) at a fixed pending
// population.
type HoldBench struct {
	q   calQueue
	rng *rand.Rand
	seq uint64
}

// NewHoldBench preloads a calendar queue with `pending` events whose
// firing times follow the hold-model gap distribution.
func NewHoldBench(pending int, seed int64) *HoldBench {
	hb := &HoldBench{rng: rand.New(rand.NewSource(seed))}
	hb.q.init()
	for i := 0; i < pending; i++ {
		hb.q.insert(&event{at: benchGap(hb.rng), seq: hb.seq})
		hb.seq++
	}
	return hb
}

// Ops performs n hold-model operations: each pops the minimum event and
// reinserts it at a later time, keeping the pending population fixed.
func (hb *HoldBench) Ops(n int) {
	for i := 0; i < n; i++ {
		ev := hb.q.pop()
		ev.at += benchGap(hb.rng)
		ev.seq = hb.seq
		hb.seq++
		hb.q.insert(ev)
	}
}

// holdBenchHeap replicates the binary heap the engine used before the
// calendar queue, kept as the baseline the calendar is gated against.
type holdBenchHeap []*event

func (h holdBenchHeap) Len() int { return len(h) }
func (h holdBenchHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h holdBenchHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *holdBenchHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *holdBenchHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// HoldHeapBench is HoldBench's twin on the pre-calendar binary heap.
type HoldHeapBench struct {
	h   holdBenchHeap
	rng *rand.Rand
	seq uint64
}

// NewHoldHeapBench preloads the baseline heap exactly as NewHoldBench
// preloads the calendar queue.
func NewHoldHeapBench(pending int, seed int64) *HoldHeapBench {
	hb := &HoldHeapBench{
		h:   make(holdBenchHeap, 0, pending),
		rng: rand.New(rand.NewSource(seed)),
	}
	for i := 0; i < pending; i++ {
		heap.Push(&hb.h, &event{at: benchGap(hb.rng), seq: hb.seq})
		hb.seq++
	}
	return hb
}

// Ops performs n hold-model operations on the heap baseline.
func (hb *HoldHeapBench) Ops(n int) {
	for i := 0; i < n; i++ {
		ev := heap.Pop(&hb.h).(*event)
		ev.at += benchGap(hb.rng)
		ev.seq = hb.seq
		hb.seq++
		heap.Push(&hb.h, ev)
	}
}
