package sim

import (
	"sync"
	"testing"

	"nscc/internal/trace"
)

// TestTracerPerEngine runs several traced engines concurrently and
// checks each recorder saw exactly its own engine's events. Tracer
// state lives on the Engine, so concurrent sweep cells must not bleed
// events (or data races, under -race) into each other.
func TestTracerPerEngine(t *testing.T) {
	const n = 4
	recs := make([]*trace.Recorder, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		recs[i] = trace.NewRecorder()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eng := NewEngine(1)
			eng.SetTracer(recs[i])
			// i+1 sleepers so each engine has a distinct event count.
			for s := 0; s <= i; s++ {
				eng.Spawn("sleeper", func(p *Proc) {
					for k := 0; k < 10; k++ {
						p.Sleep(Microsecond)
					}
				})
			}
			if err := eng.Run(); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	var want []int
	for i := 0; i < n; i++ {
		want = append(want, recs[i].Len())
		if recs[i].Len() == 0 {
			t.Fatalf("engine %d recorded no events", i)
		}
	}
	// Re-run the same workloads serially; counts must match exactly.
	for i := 0; i < n; i++ {
		rec := trace.NewRecorder()
		eng := NewEngine(1)
		eng.SetTracer(rec)
		for s := 0; s <= i; s++ {
			eng.Spawn("sleeper", func(p *Proc) {
				for k := 0; k < 10; k++ {
					p.Sleep(Microsecond)
				}
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if rec.Len() != want[i] {
			t.Errorf("engine %d: concurrent run recorded %d events, serial run %d", i, want[i], rec.Len())
		}
	}
}
