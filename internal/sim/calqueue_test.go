package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// refModel is the obviously-correct priority queue the calendar queue
// is differenced against: a slice kept sorted by (at, seq).
type refModel []*event

func evCmp(a, b *event) int {
	return itemCmp(calItem{at: a.at, seq: a.seq}, calItem{at: b.at, seq: b.seq})
}

func (m *refModel) insert(ev *event) {
	i := sort.Search(len(*m), func(i int) bool { return evCmp((*m)[i], ev) > 0 })
	*m = append(*m, nil)
	copy((*m)[i+1:], (*m)[i:])
	(*m)[i] = ev
}

func (m *refModel) pop() *event {
	ev := (*m)[0]
	*m = (*m)[1:]
	return ev
}

func (m *refModel) removeAt(i int) *event {
	ev := (*m)[i]
	*m = append((*m)[:i], (*m)[i+1:]...)
	return ev
}

// TestCalQueueMatchesReference drives the calendar queue through a long
// random mix of inserts, pops and identity removals and checks every
// pop against the reference model. The time distribution mixes dense
// clusters (equal-time bursts, as barrier releases produce) with long
// gaps (idle timers), which exercises the lap-scan fallback and both
// resize directions.
func TestCalQueueMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var q calQueue
	q.init()
	var model refModel
	seq := uint64(0)
	now := Time(0)

	newEvent := func() *event {
		var at Time
		switch rng.Intn(4) {
		case 0: // same instant burst
			at = now
		case 1: // dense near future
			at = now + Time(rng.Int63n(int64(Microsecond)))
		case 2: // medium horizon
			at = now + Time(rng.Int63n(int64(Millisecond)))
		default: // sparse far future
			at = now + Time(rng.Int63n(int64(10*Second)))
		}
		ev := &event{at: at, seq: seq}
		seq++
		return ev
	}

	for op := 0; op < 200000; op++ {
		switch r := rng.Intn(10); {
		case r < 5 || len(model) == 0:
			ev := newEvent()
			q.insert(ev)
			model.insert(ev)
		case r < 8:
			want := model.pop()
			got := q.pop()
			if got != want {
				t.Fatalf("op %d: pop got (at=%d seq=%d) want (at=%d seq=%d)",
					op, got.at, got.seq, want.at, want.seq)
			}
			now = got.at
		default:
			ev := model.removeAt(rng.Intn(len(model)))
			q.remove(ev)
		}
		if q.len() != len(model) {
			t.Fatalf("op %d: len %d want %d", op, q.len(), len(model))
		}
	}
	for len(model) > 0 {
		want := model.pop()
		if got := q.pop(); got != want {
			t.Fatalf("drain: pop got (at=%d seq=%d) want (at=%d seq=%d)",
				got.at, got.seq, want.at, want.seq)
		}
	}
	if q.pop() != nil {
		t.Fatal("pop on empty queue returned an event")
	}
}

// TestCancelReclaimsEagerly pins the fix for the canceled-event leak:
// canceled events used to stay in the heap as tombstones until their
// deadline passed, so a cancel-heavy run grew the queue without bound.
// Cancel must now remove and recycle immediately.
func TestCancelReclaimsEagerly(t *testing.T) {
	eng := NewEngine(1)
	for i := 0; i < 100000; i++ {
		h := eng.Schedule(Time(Second), func() { t.Error("canceled event fired") })
		h.Cancel()
		if p := eng.Pending(); p != 0 {
			t.Fatalf("iteration %d: %d events pending after cancel", i, p)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestTimeoutHeavyQueueBounded runs the dominant cancel producer — a
// process whose every wait carries a far-out timeout that a prompt wake
// cancels (the GlobalRead/RecvTimeout pattern) — and asserts the live
// queue population stays O(1) across tens of thousands of rounds. With
// skip-on-pop tombstones this peaks at the round count.
func TestTimeoutHeavyQueueBounded(t *testing.T) {
	const rounds = 20000
	eng := NewEngine(1)
	var wl WaitList
	maxPending := 0
	eng.Spawn("waiter", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			// One hour out: far beyond the run, so every timer that
			// fired would be a test failure and every one left queued
			// would show up in maxPending.
			if !wl.WaitTimeout(p, eng.Now().Add(3600*Second)) {
				t.Error("waiter timed out despite prompt wake")
				return
			}
			if q := eng.Pending(); q > maxPending {
				maxPending = q
			}
		}
	})
	eng.Spawn("waker", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			for !wl.WakeOne() {
				p.Sleep(Microsecond)
			}
			p.Sleep(Microsecond)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if maxPending > 8 {
		t.Fatalf("queue grew to %d pending events under a cancel-heavy workload; want O(1)", maxPending)
	}
}

// TestCancelStaleHandleNoop: once an event has fired (or been
// canceled), its handle must be inert even after the event object is
// recycled into a new schedule.
func TestCancelStaleHandleNoop(t *testing.T) {
	eng := NewEngine(1)
	fired := 0
	h1 := eng.Schedule(Time(Microsecond), func() { fired++ })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// The event object is now on the free list; reuse it.
	eng.Schedule(eng.Now().Add(Microsecond), func() { fired++ })
	h1.Cancel() // stale: must not cancel the new event
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired %d events, want 2 (stale Cancel must be a no-op)", fired)
	}
	// Double cancel on a live handle must also be safe.
	h2 := eng.Schedule(eng.Now().Add(Microsecond), func() { fired++ })
	h2.Cancel()
	h2.Cancel()
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired %d events, want 2 after double cancel", fired)
	}
}
