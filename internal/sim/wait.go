package sim

import "nscc/internal/trace"

// WaitList is the engine's basic blocking primitive: a FIFO set of
// parked processes that other code can wake. Mailboxes, futures,
// barriers and the DSM's Global_Read blocking are all built on it.
type WaitList struct {
	waiters []*Proc
}

// Wait parks p until another party calls WakeOne or WakeAll.
func (w *WaitList) Wait(p *Proc) {
	if t := p.eng.tracer; t != nil {
		t.Emit(trace.Event{TS: int64(p.eng.now), Ph: trace.PhaseInstant,
			Pid: trace.PidSim, Tid: p.id, Cat: "sim", Name: "block"})
	}
	w.waiters = append(w.waiters, p)
	p.park()
}

// WaitTimeout parks p until another party wakes it or until absolute
// virtual time deadline, whichever comes first. It reports true for a
// genuine wake and false for a timeout. A deadline at or before the
// current time returns false immediately without parking.
//
// The timeout is implemented as a scheduled event that removes p from
// the wait list before resuming it, so a later WakeOne can never
// target an already-timed-out process; conversely a genuine wake
// cancels the timer, so a process can never be resumed twice.
func (w *WaitList) WaitTimeout(p *Proc, deadline Time) bool {
	if deadline <= p.eng.now {
		return false
	}
	timedOut := false
	h := p.eng.Schedule(deadline, func() {
		for i, q := range w.waiters {
			if q == p {
				copy(w.waiters[i:], w.waiters[i+1:])
				w.waiters = w.waiters[:len(w.waiters)-1]
				timedOut = true
				p.wake()
				return
			}
		}
	})
	w.Wait(p)
	h.Cancel()
	return !timedOut
}

// WakeOne wakes the longest-waiting process, reporting whether there was
// one. The woken process resumes via a scheduled event at the current
// virtual time, after the caller yields control.
func (w *WaitList) WakeOne() bool {
	if len(w.waiters) == 0 {
		return false
	}
	p := w.waiters[0]
	copy(w.waiters, w.waiters[1:])
	w.waiters = w.waiters[:len(w.waiters)-1]
	p.wake()
	return true
}

// WakeAll wakes every waiting process in FIFO order and returns how many
// were woken.
func (w *WaitList) WakeAll() int {
	n := len(w.waiters)
	for _, p := range w.waiters {
		p.wake()
	}
	w.waiters = w.waiters[:0]
	return n
}

// Len reports the number of waiting processes.
func (w *WaitList) Len() int { return len(w.waiters) }

// Future is a one-shot value that processes can block on.
type Future struct {
	done bool
	val  interface{}
	wl   WaitList
}

// Complete resolves the future, waking all waiters. Completing twice
// panics: a future is a one-shot rendezvous and double completion means
// the model lost track of ownership.
func (f *Future) Complete(val interface{}) {
	if f.done {
		panic("sim: Future completed twice")
	}
	f.done = true
	f.val = val
	f.wl.WakeAll()
}

// Done reports whether the future has been completed.
func (f *Future) Done() bool { return f.done }

// Value returns the completed value (nil if not yet complete).
func (f *Future) Value() interface{} { return f.val }

// Wait blocks p until the future completes and returns its value.
func (f *Future) Wait(p *Proc) interface{} {
	for !f.done {
		f.wl.Wait(p)
	}
	return f.val
}

// Semaphore is a counting semaphore with FIFO fairness.
type Semaphore struct {
	avail int
	wl    WaitList
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(n int) *Semaphore { return &Semaphore{avail: n} }

// Acquire takes one permit, blocking p until one is available.
func (s *Semaphore) Acquire(p *Proc) {
	for s.avail == 0 {
		s.wl.Wait(p)
	}
	s.avail--
}

// TryAcquire takes a permit without blocking, reporting success.
func (s *Semaphore) TryAcquire() bool {
	if s.avail == 0 {
		return false
	}
	s.avail--
	return true
}

// Release returns one permit and wakes one waiter if any.
func (s *Semaphore) Release() {
	s.avail++
	s.wl.WakeOne()
}

// Available reports the current number of permits.
func (s *Semaphore) Available() int { return s.avail }

// Barrier synchronizes a fixed party of n processes. The last arriving
// process releases the rest; the barrier then resets for reuse.
type Barrier struct {
	n       int
	arrived int
	gen     int
	wl      WaitList
}

// NewBarrier returns a reusable barrier for n parties. n must be >= 1.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("sim: barrier size must be >= 1")
	}
	return &Barrier{n: n}
}

// Arrive blocks p until all n parties have arrived in the current
// generation. It returns the generation index that just completed.
func (b *Barrier) Arrive(p *Proc) int {
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		b.wl.WakeAll()
		return gen
	}
	for b.gen == gen {
		b.wl.Wait(p)
	}
	return gen
}

// Parties returns the barrier's party count.
func (b *Barrier) Parties() int { return b.n }
