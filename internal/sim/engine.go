package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"nscc/internal/trace"
)

// Engine drives a discrete-event simulation. Events fire in virtual-time
// order (FIFO among equal times); processes spawned on the engine run
// cooperatively, one at a time, interleaved with event callbacks.
//
// The zero value is not usable; create engines with NewEngine.
type Engine struct {
	now   Time
	seq   uint64
	q     calQueue
	free  []*event // recycled event objects (see event's doc comment)
	seed  int64
	procs []*Proc
	nlive int // spawned but not yet finished processes

	current *Proc // process currently executing, nil when the loop runs
	running bool
	stopReq bool

	// tracer, when non-nil, receives process start/stop/block/wake and
	// event-fire records. Every emission site guards with a nil check,
	// so the disabled path costs one predicted branch and no
	// allocations.
	tracer trace.Tracer
}

// SetTracer installs (or, with nil, removes) the engine's tracer. The
// engine is the single owner of the run's tracer: the network, message,
// coherence, and application layers all reach it through their engine
// so one call instruments a whole simulated cluster.
func (e *Engine) SetTracer(t trace.Tracer) { e.tracer = t }

// Tracer returns the engine's tracer (nil when tracing is off).
func (e *Engine) Tracer() trace.Tracer { return e.tracer }

// Stop requests that the current Run/RunUntil return after the event
// being processed. It is the clean way to end a run whose event queue
// never drains (e.g. when a background traffic loader is active).
func (e *Engine) Stop() { e.stopReq = true }

// NewEngine returns an engine whose clock starts at zero. All randomness
// used by processes derives from seed, so equal seeds give equal runs.
func NewEngine(seed int64) *Engine {
	e := &Engine{
		seed: seed,
		free: make([]*event, 0, 128),
	}
	e.q.init()
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Seed returns the engine's base random seed.
func (e *Engine) Seed() int64 { return e.seed }

// Schedule registers fn to run at absolute time at. Scheduling in the
// past is an error the engine reports by panicking: it indicates a
// causality bug in the model, not a recoverable condition.
func (e *Engine) Schedule(at Time, fn func()) EventHandle {
	ev := e.push(at)
	ev.fn = fn
	return EventHandle{ev, ev.seq}
}

// scheduleStep registers a resumption of p at absolute time at, without
// the closure allocation Schedule would need. This is the path every
// Sleep and every WaitList wake takes.
func (e *Engine) scheduleStep(at Time, p *Proc) {
	e.push(at).proc = p
}

// ScheduleRunner registers r.Run() to fire at absolute time at. It is
// Schedule for reusable callback objects: the interface value is stored
// in the pooled event, so a caller recycling its runners schedules with
// zero allocations.
func (e *Engine) ScheduleRunner(at Time, r Runner) EventHandle {
	ev := e.push(at)
	ev.runner = r
	return EventHandle{ev, ev.seq}
}

// push takes an event object from the free list (or allocates one),
// stamps it, and queues it. fn/proc are left for the caller to fill.
func (e *Engine) push(at Time) *event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at, ev.seq, ev.eng, ev.inq = at, e.seq, e, true
	e.seq++
	e.q.insert(ev)
	return ev
}

// Pending reports the number of events currently queued. Canceled
// events are reclaimed eagerly, so this is the genuinely pending
// population, not an upper bound.
func (e *Engine) Pending() int { return e.q.len() }

// recycle returns a fired or skipped event to the free list. The
// object's seq stays behind until the next push re-stamps it, which is
// what lets stale EventHandles detect that their event is gone.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.proc = nil
	ev.runner = nil
	e.free = append(e.free, ev)
}

// After registers fn to run d from now.
func (e *Engine) After(d Duration, fn func()) EventHandle {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now.Add(d), fn)
}

// ErrDeadlock is returned by Run when no events remain but live
// processes are still blocked.
var ErrDeadlock = errors.New("sim: deadlock: no events pending but processes are blocked")

// Run executes events until none remain. It returns ErrDeadlock
// (wrapped with the names of the stuck processes) if live processes are
// still parked when the event queue drains, and nil otherwise.
func (e *Engine) Run() error { return e.RunUntil(Forever) }

// RunUntil executes events with timestamps <= deadline, then stops with
// the clock advanced to the last fired event (or the deadline if any
// later events remain pending). Deadlock is only reported when the whole
// queue drained, i.e. when deadline is Forever.
func (e *Engine) RunUntil(deadline Time) error {
	if e.running {
		panic("sim: Run re-entered")
	}
	e.running = true
	defer func() { e.running = false }()

	for e.q.len() > 0 {
		if e.stopReq {
			e.stopReq = false
			return nil
		}
		if e.q.peek().at > deadline {
			e.now = deadline
			return nil
		}
		ev := e.q.pop()
		ev.inq = false
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		if e.tracer != nil {
			e.tracer.Emit(trace.Event{TS: int64(e.now), Ph: trace.PhaseInstant,
				Pid: trace.PidSim, Cat: "sim", Name: "event", K1: "seq", V1: int64(ev.seq)})
		}
		// Detach the payload and recycle before firing: the callback may
		// schedule (and thereby reuse) freely.
		fn, p, r := ev.fn, ev.proc, ev.runner
		e.recycle(ev)
		switch {
		case p != nil:
			e.step(p)
		case r != nil:
			r.Run()
		default:
			fn()
		}
	}
	if deadline == Forever && e.nlive > 0 {
		return fmt.Errorf("%w: %s", ErrDeadlock, e.stuckProcs())
	}
	return nil
}

func (e *Engine) stuckProcs() string {
	s := ""
	for _, p := range e.procs {
		if !p.done {
			if s != "" {
				s += ", "
			}
			s += p.name
		}
	}
	return s
}

// Live reports the number of spawned processes that have not finished.
func (e *Engine) Live() int { return e.nlive }

// NewRng derives a deterministic random stream from the engine seed and
// the given tag. Processes use this internally (tagged by spawn index);
// model components that need randomness outside any process (e.g. a
// network's backoff jitter) should call it with a distinct tag.
func (e *Engine) NewRng(tag int) *rand.Rand { return e.rngFor(tag) }

// rngFor derives a per-process deterministic random stream.
func (e *Engine) rngFor(id int) *rand.Rand {
	// SplitMix64-style scramble so nearby ids give unrelated streams.
	z := uint64(e.seed) + uint64(id+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}
