package sim

import (
	"fmt"
	"math/rand"

	"nscc/internal/trace"
)

// Proc is a cooperative simulated process. The function passed to Spawn
// receives the Proc and may call its blocking methods (Sleep, and the
// Wait methods of WaitList/Future/Barrier/Semaphore); each such call
// parks the goroutine and hands control back to the engine until the
// process is resumed at a later virtual time.
//
// Proc methods must only be called from within the process's own
// function; the engine guarantees only one process runs at a time.
type Proc struct {
	eng  *Engine
	id   int
	name string
	rng  *rand.Rand

	resume chan struct{}
	yield  chan struct{}
	done   bool
	pval   interface{} // value recovered from a panic inside the process
	pstack bool        // whether pval is set
}

// Spawn creates a process named name running fn, starting at the current
// virtual time. Processes spawned at the same instant start in spawn
// order.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		eng:    e,
		id:     len(e.procs),
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	p.rng = e.rngFor(p.id)
	e.procs = append(e.procs, p)
	e.nlive++
	if e.tracer != nil {
		e.tracer.Emit(trace.Event{TS: int64(e.now), Ph: trace.PhaseInstant,
			Pid: trace.PidSim, Tid: p.id, Cat: "sim", Name: "proc_start"})
	}
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				p.pval = r
				p.pstack = true
			}
			p.done = true
			e.nlive--
			p.yield <- struct{}{}
		}()
		fn(p)
	}()
	e.scheduleStep(e.now, p)
	return p
}

// step transfers control to p until it parks or finishes, then returns
// control to the engine loop. A panic inside the process is re-raised
// here so it surfaces on the engine's Run call.
func (e *Engine) step(p *Proc) {
	if p.done {
		return
	}
	prev := e.current
	e.current = p
	p.resume <- struct{}{}
	<-p.yield
	e.current = prev
	if p.done && e.tracer != nil {
		e.tracer.Emit(trace.Event{TS: int64(e.now), Ph: trace.PhaseInstant,
			Pid: trace.PidSim, Tid: p.id, Cat: "sim", Name: "proc_stop"})
	}
	if p.pstack {
		panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, p.pval))
	}
}

// park suspends the process until the engine resumes it.
func (p *Proc) park() {
	p.yield <- struct{}{}
	<-p.resume
}

// wake schedules the process to resume at the current virtual time.
// It is called only by the WaitList wake paths, so the trace record is
// exactly "a blocked process was released".
func (p *Proc) wake() {
	if t := p.eng.tracer; t != nil {
		t.Emit(trace.Event{TS: int64(p.eng.now), Ph: trace.PhaseInstant,
			Pid: trace.PidSim, Tid: p.id, Cat: "sim", Name: "wake"})
	}
	p.eng.scheduleStep(p.eng.now, p)
}

// Engine returns the engine the process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// ID returns the process's spawn index, unique within its engine.
func (p *Proc) ID() int { return p.id }

// Name returns the process's name.
func (p *Proc) Name() string { return p.name }

// Rng returns the process's private deterministic random stream.
func (p *Proc) Rng() *rand.Rand { return p.rng }

// Sleep advances the process's local progress by d of virtual time.
// Negative durations sleep zero time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.eng.scheduleStep(p.eng.now.Add(d), p)
	p.park()
}

// SleepUntil parks the process until absolute time t (no-op if t is in
// the past).
func (p *Proc) SleepUntil(t Time) {
	if t <= p.eng.now {
		return
	}
	p.eng.scheduleStep(t, p)
	p.park()
}

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.done }
