package sim

import (
	"math/bits"
	"slices"
)

// calQueue is a calendar queue (Brown 1988) with lazily sorted buckets
// (the ladder-queue refinement): the pending-event set of a
// discrete-event simulation, bucketed by time so that steady-state
// insert and pop-min are O(1) amortized where a binary heap pays
// O(log n) comparisons through interface dispatch. At the million-event
// populations a 5k-node run produces, the difference dominates the
// engine's hot path.
//
// Layout: virtual time is cut into "days" of width 1<<shift ns; day d
// hashes to bucket d & mask. Inserts append to their bucket in O(1);
// a bucket is sorted by (at, seq) only when the pop scan reaches it
// (appends that already arrive in order — the common case, since seq
// is monotone — never even mark it dirty). Equal-time FIFO order — the
// determinism contract — is preserved exactly: the queue pops the same
// total order the old heap did, byte for byte. The (at, seq) key is
// stored inline in the bucket entry, so comparisons, day checks and
// sorting run over contiguous memory and never chase the *event
// pointer; that locality is what keeps the hot path fast at
// populations far beyond cache.
//
// Pop scans forward from curDay. A bucket's sorted head is its
// earliest entry, and an entry of a later "year" (day ≥ curDay +
// nbuckets) sorts after any current-year entry sharing the bucket, so
// the first head whose day matches the scan day is the global minimum.
// If a whole lap of days comes up empty (the population is sparse
// relative to the day width), a direct search over bucket minima finds
// the global minimum and the scan jumps there, bounding the worst-case
// pop at O(nbuckets).
//
// Unlike the heap this queue supports removal by identity, which is
// what lets EventHandle.Cancel reclaim its event eagerly instead of
// leaving a tombstone to be skipped at pop time: a timeout-heavy run
// (every GlobalRead deadline, every retransmit timer) stays bounded by
// the number of genuinely pending events.
type calQueue struct {
	buckets []calBucket
	mask    uint64 // len(buckets)-1; len is a power of two
	shift   uint   // day width = 1<<shift nanoseconds
	curDay  uint64 // scan position: no pending event has an earlier day
	n       int
	// directs counts direct-search fallbacks since the last rebuild. A
	// burst of them means the day width underestimates the local
	// inter-event gap (every pop walks a full empty year), so the queue
	// resamples the width from the live population.
	directs int
}

// calItem is one queued event with its ordering key inlined.
type calItem struct {
	at  Time
	seq uint64
	ev  *event
}

// calBucket holds one hash class of entries behind a head offset:
// popped entries advance head instead of sliding the slice, so
// draining a burst of equal-time events (a barrier release, a
// broadcast fan-out) costs O(1) each. items[head:] is sorted by
// (at, seq) unless dirty, which an out-of-order append sets and the
// next scan's sort clears.
//
// loAt/hiAt cache the live entries' minimum and maximum times in the
// header, which keeps the hot paths to a single cache line per bucket:
// an insert decides in-order-ness from hiAt (seq is engine-monotone,
// so at ≥ hiAt means the append keeps the bucket sorted) and the pop
// scan decides day membership from loAt, neither touching the items
// array. Equal times always share a day and hence a bucket, so loAt
// alone also orders bucket minima in the direct-search fallback.
type calBucket struct {
	items []calItem
	head  int
	loAt  Time // at of the live minimum; valid when head < len(items)
	hiAt  Time // at of the live maximum; valid when head < len(items)
	dirty bool
}

const (
	calMinBuckets = 64
	calMaxBuckets = 1 << 20
	calMaxShift   = 62
	// calOcc is the target live entries per bucket. Classic calendar
	// queues aim for ~1, but on modern hardware the constant is memory
	// latency, not comparisons: modest occupancy keeps the bucket
	// arrays a small multiple of the population (less capacity slack
	// and dead prefix per live entry) and turns day scans into fewer,
	// denser header touches. Appends within a day stay O(1) via the
	// in-order fast path and sortLive's insertion sort stays cheap at
	// this size.
	calOcc = 8
)

func itemCmp(a, b calItem) int {
	switch {
	case a.at != b.at:
		if a.at < b.at {
			return -1
		}
		return 1
	case a.seq != b.seq:
		if a.seq < b.seq {
			return -1
		}
		return 1
	}
	return 0
}

func (q *calQueue) init() {
	q.buckets = make([]calBucket, calMinBuckets)
	q.mask = calMinBuckets - 1
	// 4µs days to start; resize re-estimates the width from the live
	// population as soon as it grows past the bucket count.
	q.shift = 12
}

func (q *calQueue) len() int { return q.n }

func (b *calBucket) insert(it calItem) {
	// Reclaim the popped prefix once it dominates the slice, so a
	// bucket that keeps receiving entries while draining (e.g. one
	// hosting both current traffic and year-wrapped far timers) doesn't
	// grow without bound.
	if b.head >= 16 && 2*b.head >= len(b.items) {
		live := copy(b.items, b.items[b.head:])
		clear(b.items[live:])
		b.items = b.items[:live]
		b.head = 0
	}
	if b.head == len(b.items) {
		b.items = append(b.items[:b.head], it)
		b.loAt, b.hiAt = it.at, it.at
		b.dirty = false
		return
	}
	switch {
	case it.at >= b.hiAt:
		b.hiAt = it.at
	case it.at < b.loAt:
		b.loAt = it.at
		b.dirty = true
	default:
		b.dirty = true
	}
	b.items = append(b.items, it)
}

// sortLive restores the bucket's sorted invariant after out-of-order
// appends. Each append pays at most one share of one sort, so inserts
// stay O(1) amortized — the ladder-queue trick that replaces the
// per-insert memmove of a classically sorted calendar bucket.
func (b *calBucket) sortLive() {
	if !b.dirty {
		return
	}
	b.dirty = false
	live := b.items[b.head:]
	if len(live) <= 32 {
		// Buckets are a handful of nearly-sorted entries; insertion
		// sort is O(k + inversions) with none of the generic sort
		// call's constant overhead.
		for i := 1; i < len(live); i++ {
			it := live[i]
			j := i - 1
			for j >= 0 && (live[j].at > it.at || (live[j].at == it.at && live[j].seq > it.seq)) {
				live[j+1] = live[j]
				j--
			}
			live[j+1] = it
		}
	} else {
		slices.SortFunc(live, itemCmp)
	}
	b.loAt = live[0].at
	b.hiAt = live[len(live)-1].at
}

// remove deletes the entry with it's key from the bucket. Callers must
// only pass keys currently in the queue.
func (b *calBucket) remove(it calItem) {
	live := b.items[b.head:]
	var i int
	if b.dirty {
		i = -1
		for j := range live {
			if live[j].seq == it.seq {
				i = j
				break
			}
		}
		if i < 0 {
			panic("sim: canceled event not in queue")
		}
	} else {
		var ok bool
		i, ok = slices.BinarySearchFunc(live, it, itemCmp)
		if !ok {
			panic("sim: canceled event not in queue")
		}
	}
	copy(live[i:], live[i+1:])
	b.items[len(b.items)-1] = calItem{}
	b.items = b.items[:len(b.items)-1]
	if b.head == len(b.items) {
		b.items = b.items[:0]
		b.head = 0
		return
	}
	live = b.items[b.head:]
	if b.dirty {
		lo, hi := live[0].at, live[0].at
		for _, l := range live[1:] {
			if l.at < lo {
				lo = l.at
			}
			if l.at > hi {
				hi = l.at
			}
		}
		b.loAt, b.hiAt = lo, hi
	} else {
		b.loAt, b.hiAt = live[0].at, live[len(live)-1].at
	}
}

func (q *calQueue) insert(ev *event) {
	if q.buckets == nil {
		q.init()
	}
	d := uint64(ev.at) >> q.shift
	if q.n == 0 || d < q.curDay {
		q.curDay = d
	}
	q.buckets[d&q.mask].insert(calItem{at: ev.at, seq: ev.seq, ev: ev})
	q.n++
	if q.n > 2*calOcc*len(q.buckets) && len(q.buckets) < calMaxBuckets {
		q.resize(2 * len(q.buckets))
	}
}

// peek returns the earliest pending event without removing it (nil when
// empty), leaving curDay positioned at that event's day so the
// following pop finds it at the bucket head in O(1).
func (q *calQueue) peek() *event {
	if q.n == 0 {
		return nil
	}
	for lap := 0; lap < len(q.buckets); lap++ {
		b := &q.buckets[q.curDay&q.mask]
		if b.head < len(b.items) && uint64(b.loAt)>>q.shift == q.curDay {
			b.sortLive()
			return b.items[b.head].ev
		}
		q.curDay++
	}
	// A full lap of empty days: the population is sparser than the
	// calendar year. Find the minimum over bucket minima and jump to
	// it. If this keeps happening the day width is wrong for the
	// current population (e.g. it was sampled during an equal-time
	// burst that has since drained); rebuild with a fresh estimate.
	if q.directs++; q.directs >= 4 {
		q.directs = 0
		q.resize(len(q.buckets))
		return q.peek()
	}
	// Equal times share a day and hence a bucket, so comparing loAt
	// alone totally orders the non-empty buckets' minima.
	minAt, found := Time(0), false
	for i := range q.buckets {
		b := &q.buckets[i]
		if b.head < len(b.items) && (!found || b.loAt < minAt) {
			minAt, found = b.loAt, true
		}
	}
	q.curDay = uint64(minAt) >> q.shift
	return q.peek()
}

func (q *calQueue) pop() *event {
	ev := q.peek()
	if ev == nil {
		return nil
	}
	b := &q.buckets[q.curDay&q.mask]
	b.items[b.head] = calItem{}
	b.head++
	if b.head == len(b.items) {
		b.items = b.items[:0]
		b.head = 0
	} else {
		// peek sorted the bucket, so the new head is the live minimum.
		b.loAt = b.items[b.head].at
	}
	q.n--
	q.maybeShrink()
	return ev
}

// remove deletes ev, which must currently be queued (callers gate on
// the event's inq flag). This is the eager-cancel path.
func (q *calQueue) remove(ev *event) {
	q.buckets[(uint64(ev.at)>>q.shift)&q.mask].remove(calItem{at: ev.at, seq: ev.seq, ev: ev})
	q.n--
	q.maybeShrink()
}

func (q *calQueue) maybeShrink() {
	if len(q.buckets) <= calMinBuckets || 2*q.n >= calOcc*len(q.buckets) {
		return
	}
	if q.n == 0 {
		q.buckets = make([]calBucket, calMinBuckets)
		q.mask = calMinBuckets - 1
		return
	}
	q.resize(len(q.buckets) / 2)
}

// resize rebuilds the calendar with nb buckets and a day width fitted
// to the live population. The width estimate samples the inter-event
// gap near the head of the queue — not the global mean, which a heavy
// tail of far-out timers (retransmits, hour-scale timeouts) inflates
// until the dense region near now piles into a handful of buckets.
// Far events wrap around the calendar year and coexist in buckets,
// which the sorted-bucket pop order handles; what must be right is the
// density where pops actually happen. The rebuild sorts the whole
// population once and distributes in order, which leaves every bucket
// sorted; entry keys (at, seq) are unique, so the result is
// independent of the previous layout and the rebuild preserves
// determinism.
func (q *calQueue) resize(nb int) {
	all := make([]calItem, 0, q.n)
	for i := range q.buckets {
		b := &q.buckets[i]
		all = append(all, b.items[b.head:]...)
	}
	slices.SortFunc(all, itemCmp)

	k := len(all)
	if k > 1024 {
		k = 1024
	}
	gap := (int64(all[k-1].at) - int64(all[0].at)) / int64(k)
	if gap < 1 {
		gap = 1
	}
	shift := uint(bits.Len64(uint64(gap) * calOcc))
	if shift > calMaxShift {
		shift = calMaxShift
	}
	q.shift = shift
	q.directs = 0
	q.buckets = make([]calBucket, nb)
	q.mask = uint64(nb) - 1
	q.curDay = uint64(all[0].at) >> shift
	// Distribution happens in global (at, seq) order, so every bucket
	// receives its entries sorted: insert takes the in-order path and
	// leaves lo/hi caches consistent and dirty clear.
	for _, it := range all {
		q.buckets[(uint64(it.at)>>shift)&q.mask].insert(it)
	}
}
