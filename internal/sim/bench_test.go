package sim

import "testing"

// BenchmarkSleepLoop measures the engine's hottest path: one process
// sleeping repeatedly, i.e. one event schedule + heap pop + process
// step per iteration. With the event free list and the closure-free
// proc resumption this runs allocation-free in steady state.
func BenchmarkSleepLoop(b *testing.B) {
	b.ReportAllocs()
	eng := NewEngine(1)
	eng.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkScheduleFire measures bare event dispatch (no process
// machinery): schedule-then-fire round trips through the heap and the
// free list.
func BenchmarkScheduleFire(b *testing.B) {
	b.ReportAllocs()
	eng := NewEngine(1)
	n := 0
	var tick func()
	tick = func() {
		if n < b.N {
			n++
			eng.After(Microsecond, tick)
		}
	}
	eng.After(0, tick)
	b.ResetTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWaitWake measures the blocking primitive: two processes
// handing a token back and forth over two wait lists (one block + one
// wake per iteration side).
func BenchmarkWaitWake(b *testing.B) {
	b.ReportAllocs()
	eng := NewEngine(1)
	var aWL, bWL WaitList
	turnA := true
	eng.Spawn("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			for !turnA {
				aWL.Wait(p)
			}
			turnA = false
			bWL.WakeAll()
		}
	})
	eng.Spawn("b", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			for turnA {
				bWL.Wait(p)
			}
			turnA = true
			aWL.WakeAll()
		}
	})
	b.ResetTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}
