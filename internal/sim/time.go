// Package sim provides a deterministic discrete-event simulation engine
// with cooperative processes. It is the substrate on which the repository
// emulates an IBM SP2-class multicomputer: each simulated node is a
// process (a goroutine that runs only when the engine hands it control),
// and all inter-process interaction is mediated by events on a single
// virtual clock. Exactly one goroutine — the engine loop or one process —
// executes at any instant, so the package needs no locks and every run is
// reproducible given the same seed and parameters.
package sim

import "fmt"

// Time is an absolute instant of virtual time, in nanoseconds from the
// start of the simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It mirrors
// time.Duration but is a distinct type so real and virtual time cannot be
// mixed accidentally.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Forever is a sentinel for "no deadline".
const Forever Time = 1<<63 - 1

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Seconds reports the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

func (t Time) String() string     { return fmt.Sprintf("%.6fs", t.Seconds()) }
func (d Duration) String() string { return fmt.Sprintf("%.6fs", d.Seconds()) }

// DurationOf converts seconds to a Duration, rounding to the nearest
// nanosecond.
func DurationOf(seconds float64) Duration {
	return Duration(seconds*float64(Second) + 0.5)
}
