package sim

import "container/heap"

// event is a scheduled callback. Events with equal times fire in the
// order they were scheduled (seq breaks ties), which keeps runs
// deterministic.
//
// Fired and canceled events are recycled through the engine's free
// list: Schedule/scheduleStep is the hottest allocation site in the
// simulator (every Sleep, wake and network frame goes through it), so
// the steady state runs allocation-free. A process resumption is
// stored as the proc pointer itself rather than a `func() { step(p) }`
// closure, which removes the second per-wakeup allocation.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	proc *Proc // when non-nil, fire by stepping this process (fn is nil)
	// runner, when non-nil, fires by calling Run() (fn and proc are
	// nil). Callers with a reusable callback object schedule it through
	// ScheduleRunner and skip the closure allocation fn would need —
	// the same trick proc plays for process resumptions.
	runner Runner
	// canceled events stay in the heap but are skipped when popped.
	canceled bool
}

// Runner is a schedulable callback object. Storing a pointer in the
// event's Runner field allocates nothing, so pooled callback objects
// (e.g. the network's frame deliveries) make the hot path
// allocation-free where a fresh closure per schedule could not.
type Runner interface{ Run() }

// EventHandle allows a scheduled event to be canceled before it fires.
// The handle remembers the event's sequence number: once the event has
// fired and its object has been recycled for a later schedule, a stale
// handle no longer matches and Cancel is a no-op instead of killing an
// unrelated event.
type EventHandle struct {
	ev  *event
	seq uint64
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (h EventHandle) Cancel() {
	if h.ev != nil && h.ev.seq == h.seq {
		h.ev.canceled = true
	}
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

var _ heap.Interface = (*eventHeap)(nil)
