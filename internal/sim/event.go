package sim

// event is a scheduled callback. Events with equal times fire in the
// order they were scheduled (seq breaks ties), which keeps runs
// deterministic.
//
// Fired and canceled events are recycled through the engine's free
// list: Schedule/scheduleStep is the hottest allocation site in the
// simulator (every Sleep, wake and network frame goes through it), so
// the steady state runs allocation-free. A process resumption is
// stored as the proc pointer itself rather than a `func() { step(p) }`
// closure, which removes the second per-wakeup allocation.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	proc *Proc // when non-nil, fire by stepping this process (fn is nil)
	// runner, when non-nil, fires by calling Run() (fn and proc are
	// nil). Callers with a reusable callback object schedule it through
	// ScheduleRunner and skip the closure allocation fn would need —
	// the same trick proc plays for process resumptions.
	runner Runner
	// eng is the owning engine, set once when the event object is first
	// allocated; Cancel reaches the calendar queue through it.
	eng *Engine
	// inq is true while the event sits in the calendar queue. Pop and
	// Cancel clear it, so a cancel can tell a pending event from one
	// that already fired and must not be touched.
	inq bool
}

// Runner is a schedulable callback object. Storing a pointer in the
// event's Runner field allocates nothing, so pooled callback objects
// (e.g. the network's frame deliveries) make the hot path
// allocation-free where a fresh closure per schedule could not.
type Runner interface{ Run() }

// EventHandle allows a scheduled event to be canceled before it fires.
// The handle remembers the event's sequence number: once the event has
// fired and its object has been recycled for a later schedule, a stale
// handle no longer matches and Cancel is a no-op instead of killing an
// unrelated event.
type EventHandle struct {
	ev  *event
	seq uint64
}

// Cancel removes the event from the queue and recycles it immediately.
// Canceling an already-fired or already-canceled event is a no-op.
//
// Reclamation is eager by design: timeout-heavy workloads (GlobalRead
// deadlines, retransmit timers) cancel almost every event they
// schedule, and leaving tombstones to be skipped at pop time lets the
// queue grow with the cancel rate instead of the pending population.
func (h EventHandle) Cancel() {
	ev := h.ev
	if ev == nil || ev.seq != h.seq || !ev.inq {
		return
	}
	ev.inq = false
	ev.eng.q.remove(ev)
	ev.eng.recycle(ev)
}
