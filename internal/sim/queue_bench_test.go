package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"testing"
)

// benchHeap is the binary heap the engine used before the calendar
// queue, kept verbatim as the benchmark baseline.
type benchHeap []*event

func (h benchHeap) Len() int { return len(h) }
func (h benchHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h benchHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *benchHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *benchHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// holdGap draws the classic hold-model inter-event gap: mostly dense
// traffic with a heavy tail of far-out timers, mirroring what a large
// netsim/pvm run schedules.
func holdGap(rng *rand.Rand) Time {
	if rng.Intn(10) == 0 {
		return Time(rng.Int63n(int64(20 * Millisecond))) // retransmit-timer scale
	}
	return Time(rng.Int63n(int64(100 * Microsecond))) // frame/wake scale
}

// BenchmarkEventQueueHold runs the hold model (steady-state pop-min +
// reinsert at a later time) at fixed pending populations, once on the
// calendar queue and once on the old binary heap. The ≥1e5-pending
// cases are where a 5k-node run lives and where the O(1)-amortized
// calendar must beat the O(log n) heap.
func BenchmarkEventQueueHold(b *testing.B) {
	for _, pending := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("pending=%d/calendar", pending), func(b *testing.B) {
			b.ReportAllocs()
			rng := rand.New(rand.NewSource(1))
			var q calQueue
			q.init()
			seq := uint64(0)
			for i := 0; i < pending; i++ {
				q.insert(&event{at: holdGap(rng), seq: seq})
				seq++
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := q.pop()
				ev.at += holdGap(rng)
				ev.seq = seq
				seq++
				q.insert(ev)
			}
		})
		b.Run(fmt.Sprintf("pending=%d/heap", pending), func(b *testing.B) {
			b.ReportAllocs()
			rng := rand.New(rand.NewSource(1))
			h := make(benchHeap, 0, pending)
			seq := uint64(0)
			for i := 0; i < pending; i++ {
				heap.Push(&h, &event{at: holdGap(rng), seq: seq})
				seq++
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := heap.Pop(&h).(*event)
				ev.at += holdGap(rng)
				ev.seq = seq
				seq++
				heap.Push(&h, ev)
			}
		})
	}
}
