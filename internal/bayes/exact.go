package bayes

// Exact computes the query probability by full joint enumeration. It is
// the ground truth the sampling estimates are verified against; it
// refuses networks whose joint state space exceeds ~4M entries.
func Exact(bn *Network, q Query) float64 {
	space := 1.0
	for i := range bn.Nodes {
		space *= float64(bn.Nodes[i].States)
		if space > 1<<22 {
			panic("bayes: network too large for exact enumeration")
		}
	}
	values := make([]int, bn.N())
	var pEvidence, pBoth float64
	var walk func(i int, prob float64)
	walk = func(i int, prob float64) {
		if i == bn.N() {
			if q.Matches(values) {
				pEvidence += prob
				if values[q.Node] == q.State {
					pBoth += prob
				}
			}
			return
		}
		dist := bn.Nodes[i].CPT[bn.comboIndex(i, values)]
		for s, p := range dist {
			if p == 0 {
				continue
			}
			values[i] = s
			walk(i+1, prob*p)
		}
		values[i] = 0
	}
	walk(0, 1)
	if pEvidence == 0 {
		return 0
	}
	return pBoth / pEvidence
}
