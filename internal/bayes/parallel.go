package bayes

import (
	"math"
	"math/rand"

	"nscc/internal/core"
	"nscc/internal/faults"
	"nscc/internal/metrics"
	"nscc/internal/netsim"
	"nscc/internal/partition"
	"nscc/internal/pvm"
	"nscc/internal/rollback"
	"nscc/internal/sim"
	"nscc/internal/simrace"
	"nscc/internal/trace"
	"nscc/internal/tseries"
)

// Message tags and sizes of the parallel sampler's own protocol.
const (
	doneTag    = 9000
	arriveTag  = 9100 // sync barrier arrival
	verdictTag = 9101 // sync barrier release carrying the continue/stop verdict

	doneMsgSize     = 8
	arriveMsgSize   = 16
	verdictMsgSize  = 16
	progressMsgSize = 24
)

// sentinelIter marks the final write of an exiting partition so no peer
// ever blocks on its locations again.
const sentinelIter int64 = 1 << 60

// ifaceBundle is one partition's interface message.
//
// In the asynchronous and Global_Read modes it carries the values the
// sender's interface nodes took over a *batch* of consecutive
// iterations (FirstIter .. FirstIter+len(Values)-1) plus the sender's
// evidence-match bit for each — batching several iterations into one
// message is the coalescing that asynchronous memory affords (§1, §2.1).
// With Anti set it is a single-iteration antimessage retracting the
// previously sent values of Nodes for the stamped iteration (§3.2).
//
// In the synchronous mode it carries one phase's interface values for
// one iteration (Phase >= 0), and the location stamp encodes
// (iteration, phase) so receivers can block for exactly the data the
// topological wave requires.
type ifaceBundle struct {
	Part      int
	Anti      bool
	Phase     int // -1 for async/GR bundles
	Nodes     []int
	FirstIter int64
	Values    [][]int8 // one row per covered iteration
	EvOK      []bool   // one entry per covered iteration
}

func bundleBytes(nodes, rows int) int { return 16 + rows*(6*nodes+1) }

// ParallelConfig describes one parallel logic-sampling run.
type ParallelConfig struct {
	Net       *Network
	Query     Query
	P         int
	Mode      core.Mode
	Age       int64   // Global_Read staleness bound (NonStrict)
	Precision float64 // CI half-width target (the paper's 0.01)
	MaxIters  int64   // raw-iteration safety cap per partition
	Seed      int64
	Calib     Calibration

	// Batch overrides the update-batching depth (iterations per
	// interface message) for the Async and NonStrict modes. 0 picks the
	// default: max(1, min(Age, 16)) for NonStrict, 8 for Async. The
	// synchronous mode cannot batch: it must exchange every phase of
	// every iteration.
	Batch int64

	NetCfg *netsim.Config
	// SwitchCfg, if set, runs on an SP2-style crossbar switch instead
	// of the shared Ethernet.
	SwitchCfg *netsim.SwitchConfig
	PVM       *pvm.Config
	LoaderBps float64

	// Faults, if non-nil, wraps the fabric in the fault injector and
	// applies the plan's schedules to the run (strictly opt-in).
	Faults *faults.Plan
	// Reliable runs the message layer with sequence-numbered
	// ack/retransmit delivery (pvm.Config.Reliable).
	Reliable bool
	// ReadTimeout, if positive, bounds Global_Read blocking
	// (core.Options.ReadTimeout) so a lost update degrades the read
	// instead of deadlocking the partition.
	ReadTimeout sim.Duration
	// RandomDefaults replaces the most-probable-state defaults with
	// arbitrary fixed states (ablation: the paper derives defaults from
	// the nodes' probability distributions so gambles usually pay off).
	RandomDefaults bool

	// Tracer, if set, receives the run's full event stream, including
	// per-iteration app spans and rollback/antimessage instants. Nil
	// keeps every hot path on its zero-cost branch.
	Tracer trace.Tracer

	// RaceCheck runs the simulated-time race classifier over the run and
	// fills Telemetry.Races. Strictly passive: virtual time and the
	// estimate are identical with it on or off.
	RaceCheck bool

	// Series, if set, records the run's windowed simulated-time series
	// (core staleness/timeouts, pvm queue depth/retransmits, net busy
	// time/drops, counters "bayes.iters" and "bayes.rollbacks", gauge
	// "pvm.warp" copied from the warp series) into the given set and
	// exports them in Telemetry.Series. Strictly observational.
	Series *tseries.Set
}

// ParallelResult reports one parallel run.
type ParallelResult struct {
	Prob             float64
	HalfWidth        float64
	Iters            int64 // iterations the coordinator partition executed
	Accepted         int64
	Completion       sim.Duration
	ReachedPrecision bool

	Rollbacks int64
	Replayed  int64 // iterations re-executed by rollback replays
	Gambles   int64
	Conflicts int64
	Retracts  int64

	Messages    int64
	NetBytes    int64
	QueueDelay  sim.Duration
	BlockedTime sim.Duration
	Blocked     int64
	WarpMean    float64
	WarpMax     float64
	WarpWindows []float64 // per-100ms mean warp (instability time series)

	EdgeCut int // dependency edges crossing partitions

	// Telemetry is the machine-readable observability block: per-task
	// message/coherence accounting, network aggregates, and the merged
	// observed-staleness histogram.
	Telemetry *metrics.Telemetry
}

// topology is the precomputed partition/communication structure shared
// by all workers of one run.
type topology struct {
	parts       []int
	coordinator int
	iface       []map[int][]int // [src][dst] -> src nodes sent to dst
	phases      []int           // per node: cross-partition depth (sync waves)
	numPhases   int
	bundleLocs  []map[int]*core.Location
	progLocs    []*core.Location
	cut         int
}

// buildTopology partitions the network (Kernighan–Lin bisection,
// recursively for P>2 — the paper's METIS stand-in, §4.2.2) and derives
// the interface sets, synchronous wave phases, and DSM locations.
// General partitions have cross-dependencies in both directions, so
// within one sample the partitions mutually need each other's interface
// values — which is why the asynchronous modes gamble on defaults for
// the current iteration and repair by rollback, and why the synchronous
// mode needs multiple exchange waves per iteration.
func buildTopology(bn *Network, q Query, p int, seed int64) *topology {
	t := &topology{}
	rng := rand.New(rand.NewSource(seed ^ 0x9a27))
	switch {
	case p == 1:
		t.parts = make([]int, bn.N())
	case p == 2:
		t.parts = partition.Bisect(bn.Graph(), rng)
	default:
		t.parts = partition.KWay(bn.Graph(), p, rng)
	}
	t.coordinator = t.parts[q.Node]

	children := make([][]int, bn.N())
	for c := range bn.Nodes {
		for _, pa := range bn.Nodes[c].Parents {
			children[pa] = append(children[pa], c)
		}
	}

	t.iface = make([]map[int][]int, p)
	for u := 0; u < bn.N(); u++ {
		seen := map[int]bool{}
		for _, c := range children[u] {
			if t.parts[c] != t.parts[u] {
				t.cut++
				if !seen[t.parts[c]] {
					seen[t.parts[c]] = true
					if t.iface[t.parts[u]] == nil {
						t.iface[t.parts[u]] = map[int][]int{}
					}
					t.iface[t.parts[u]][t.parts[c]] = append(t.iface[t.parts[u]][t.parts[c]], u)
				}
			}
		}
	}

	// Sync wave phases: a node's phase is the maximum number of
	// cross-partition hops on any ancestor path; within one iteration,
	// phase-k nodes can be sampled once phase-(k-1) interface values
	// have been exchanged.
	t.phases = make([]int, bn.N())
	for u := 0; u < bn.N(); u++ {
		ph := 0
		for _, pa := range bn.Nodes[u].Parents {
			pph := t.phases[pa]
			if t.parts[pa] != t.parts[u] {
				pph++
			}
			if pph > ph {
				ph = pph
			}
		}
		t.phases[u] = ph
	}
	t.numPhases = 1
	for _, ph := range t.phases {
		if ph+1 > t.numPhases {
			t.numPhases = ph + 1
		}
	}

	locID := 0
	t.bundleLocs = make([]map[int]*core.Location, p)
	for src := 0; src < p; src++ {
		t.bundleLocs[src] = map[int]*core.Location{}
		dsts := map[int]bool{}
		for dst := range t.iface[src] {
			dsts[dst] = true
		}
		if src != t.coordinator {
			dsts[t.coordinator] = true // evidence-bit stream
		}
		// Deterministic dst order: location ids must be identical
		// across runs of the same seed (they reach traces and the race
		// classifier), so never assign them in map-iteration order.
		for dst := 0; dst < p; dst++ {
			if !dsts[dst] {
				continue
			}
			t.bundleLocs[src][dst] = &core.Location{
				ID: locID, Name: "bundle", Writer: src, Readers: []int{dst},
				Size: bundleBytes(len(t.iface[src][dst]), 1),
			}
			locID++
		}
	}
	t.progLocs = make([]*core.Location, p)
	for q := 0; q < p; q++ {
		readers := make([]int, 0, p-1)
		for r := 0; r < p; r++ {
			if r != q {
				readers = append(readers, r)
			}
		}
		t.progLocs[q] = &core.Location{
			ID: locID, Name: "progress", Writer: q, Readers: readers,
			Size: progressMsgSize,
		}
		locID++
	}
	return t
}

// syncStamp encodes (iteration, phase) monotonically for the
// synchronous mode's location stamps.
func (t *topology) syncStamp(iter int64, phase int) int64 {
	return iter*int64(t.numPhases) + int64(phase)
}

// worker is one partition's runtime state.
type worker struct {
	cfg  *ParallelConfig
	bn   *Network
	lut  *lut // flattened CPT/evidence tables, shared read-only by the run
	p    int
	topo *topology

	task  *pvm.Task
	node  *core.Node
	store *rollback.Store

	defaults []int
	owned    []int // node ids owned by this partition (topological order)
	pos      []int // node id -> index in owned; -1 for foreign nodes
	evNodes  []int // evidence nodes owned by this partition

	targets []int // partitions we send bundles to
	sources []int // partitions we receive bundles from
	// tgtPhase[ti][ph]: the interface nodes sent to targets[ti] in sync
	// phase ph (precomputed so syncIteration builds no per-phase lists).
	tgtPhase [][][]int

	scratch []int
	log     [][]int8
	// logArena backs the log rows in logChunk-row slabs so the steady
	// sampling loop allocates one slab per chunk instead of one slice
	// per iteration. Rows are full-slice expressions into the arena and
	// are repaired in place by rollbacks like any other row.
	logArena   []int8
	rowScratch []int8 // pre-repair copy buffer for handleRollbacks

	batch     int64
	batchFrom int64
	replayed  int64
	jit       *Jitterer

	// Windowed series handles (nil when the run records none).
	serIters     *tseries.Series
	serRollbacks *tseries.Series

	// Coordinator-only state.
	coord   bool
	evBits  [][]int8 // [part][iter]: -1 unknown, 0 no, 1 yes
	evKnown []int64  // per part: length of the known (>= 0) prefix of evBits
	stopped bool

	// Incremental stopping-rule counters (coordinator only): iterations
	// [0, cntWM) are folded into cntAcc/cntHits, so each preciseEnough
	// check counts only newly finalized iterations instead of rescanning
	// from zero. setEvBit and recountRepair adjust the counters when an
	// already-counted iteration's evidence bit or sample row changes.
	cntWM   int64
	cntAcc  int64
	cntHits int64
}

// logChunk is how many sample rows share one log-arena slab.
const logChunk = 256

// newLogRow returns a zeroed sample row carved from the log arena.
func (w *worker) newLogRow() []int8 {
	n := len(w.owned)
	if len(w.logArena)+n > cap(w.logArena) {
		w.logArena = make([]int8, 0, logChunk*n)
	}
	off := len(w.logArena)
	w.logArena = w.logArena[:off+n]
	return w.logArena[off : off+n : off+n]
}

// RunParallel executes one parallel logic-sampling configuration on a
// fresh simulated cluster. Deterministic in cfg.Seed.
func RunParallel(cfg ParallelConfig) (ParallelResult, error) {
	bn := cfg.Net
	if cfg.P < 1 {
		panic("bayes: need at least one processor")
	}
	if cfg.MaxIters <= 0 {
		panic("bayes: MaxIters must be positive")
	}

	eng := sim.NewEngine(cfg.Seed)
	eng.SetTracer(cfg.Tracer)
	var net netsim.Fabric
	if cfg.SwitchCfg != nil {
		sw := netsim.NewSwitch(eng, *cfg.SwitchCfg)
		sw.SetSeries(cfg.Series)
		net = sw
	} else {
		netCfg := netsim.DefaultConfig()
		if cfg.NetCfg != nil {
			netCfg = *cfg.NetCfg
		}
		bus := netsim.New(eng, netCfg)
		bus.SetSeries(cfg.Series)
		net = bus
	}
	if cfg.Faults != nil {
		net = faults.Wrap(net, cfg.Faults)
	}
	pvmCfg := pvm.DefaultConfig()
	if cfg.PVM != nil {
		pvmCfg = *cfg.PVM
	}
	if cfg.Reliable {
		pvmCfg.Reliable = true
	}
	// Message pooling is safe only without fault injection: duplication
	// re-delivers the same payload pointer, which would double-release.
	pvmCfg.Pooling = cfg.Faults == nil
	machine := pvm.NewMachine(eng, net, pvmCfg)
	machine.SetSeries(cfg.Series)
	warp := metrics.NewWarpMeter()
	warpSeries := metrics.NewWarpSeries(100 * sim.Millisecond)
	machine.ArrivalHook = func(dst int, m *pvm.Message) {
		warp.Observe(dst, m.Src, m.SentAt, m.ArrivedAt)
		warpSeries.Observe(dst, m.Src, m.SentAt, m.ArrivedAt)
	}
	if cfg.LoaderBps > 0 {
		netsim.StartLoader(net, cfg.LoaderBps, 1024)
	}
	var rc *simrace.Checker
	if cfg.RaceCheck {
		rc = simrace.New(eng)
		rc.Attach(machine)
	}

	topo := buildTopology(bn, cfg.Query, cfg.P, cfg.Seed)
	flat := newLUT(bn, cfg.Query)

	defaults := bn.Defaults(2000, cfg.Seed^0x5eed)
	if cfg.RandomDefaults {
		for i := range defaults {
			defaults[i] = (i * 2654435761) % bn.Nodes[i].States
		}
	}

	res := ParallelResult{EdgeCut: topo.cut, HalfWidth: math.Inf(1)}
	workers := make([]*worker, cfg.P)
	coreStats := make([]core.Stats, cfg.P)
	var staleHist metrics.Histogram
	var exitMax sim.Duration
	remaining := cfg.P

	for p := 0; p < cfg.P; p++ {
		p := p
		batch := cfg.Batch
		if batch <= 0 {
			switch cfg.Mode {
			case core.Sync:
				batch = 1
			case core.Async:
				batch = 8
			case core.NonStrict:
				batch = cfg.Age
				if batch < 1 {
					batch = 1
				}
				if batch > 16 {
					batch = 16
				}
			}
		}
		w := &worker{
			cfg: &cfg, bn: bn, lut: flat, p: p, topo: topo, batch: batch,
			store:    rollback.NewStore(),
			defaults: defaults,
			pos:      make([]int, bn.N()),
			scratch:  make([]int, bn.N()),
			coord:    p == topo.coordinator,

			serIters:     cfg.Series.Counter("bayes.iters"),
			serRollbacks: cfg.Series.Counter("bayes.rollbacks"),
		}
		for u := 0; u < bn.N(); u++ {
			w.pos[u] = -1
			if topo.parts[u] == p {
				w.pos[u] = len(w.owned)
				w.owned = append(w.owned, u)
			}
		}
		for _, ev := range flat.evNodes {
			if topo.parts[ev] == p {
				w.evNodes = append(w.evNodes, ev)
			}
		}
		for src := 0; src < cfg.P; src++ {
			if _, ok := topo.bundleLocs[src][p]; ok {
				w.sources = append(w.sources, src)
			}
		}
		//nscc:maporder -- sortInts below launders the iteration order
		for dst := range topo.bundleLocs[p] {
			w.targets = append(w.targets, dst)
		}
		sortInts(w.sources)
		sortInts(w.targets)
		if cfg.Mode == core.Sync {
			w.tgtPhase = make([][][]int, len(w.targets))
			for ti, dst := range w.targets {
				byPhase := make([][]int, topo.numPhases)
				for _, u := range topo.iface[p][dst] {
					ph := topo.phases[u]
					byPhase[ph] = append(byPhase[ph], u)
				}
				w.tgtPhase[ti] = byPhase
			}
		}
		if w.coord {
			w.evBits = make([][]int8, cfg.P)
			w.evKnown = make([]int64, cfg.P)
		}
		workers[p] = w

		machine.Spawn("part", func(task *pvm.Task) {
			w.task = task
			w.jit = cfg.Calib.NewJitterer(task.Proc().Rng())
			w.node = core.NewNode(task, core.Options{Observer: w.observe, ReadTimeout: cfg.ReadTimeout, Races: raceObserver(rc), Series: cfg.Series})
			for _, ls := range topo.bundleLocs {
				for _, l := range ls {
					w.node.Register(l)
				}
			}
			for _, l := range topo.progLocs {
				w.node.Register(l)
			}
			w.run(func(at sim.Time) {
				if d := at.Sub(0); d > exitMax {
					exitMax = d
				}
				st := w.node.Stats()
				res.BlockedTime += st.BlockedTime
				res.Blocked += st.BlockedReads
				coreStats[p] = st
				staleHist.Merge(w.node.Staleness())
				rs := w.store.Stats()
				res.Rollbacks += rs.Rollbacks
				res.Replayed += w.replayed
				res.Gambles += rs.Gambles
				res.Conflicts += rs.Conflicts
				res.Retracts += rs.Retracts
				remaining--
				if remaining == 0 {
					eng.Stop()
				}
			})
		})
	}

	if err := eng.Run(); err != nil {
		return res, err
	}

	cw := workers[topo.coordinator]
	res.Iters = int64(len(cw.log))
	res.Completion = exitMax
	res.ReachedPrecision = cw.stopped
	hits, acc := cw.countUpTo(cw.finalWatermark())
	res.Accepted = acc
	if acc > 0 {
		res.Prob = float64(hits) / float64(acc)
		res.HalfWidth = metrics.ProportionCI90HalfWidth(res.Prob, int(acc))
	}
	st := net.Stats()
	res.Messages = st.Frames
	res.NetBytes = st.Bytes
	res.QueueDelay = st.QueueDelay
	res.WarpMean = warp.Mean()
	res.WarpMax = warp.Max()
	res.WarpWindows = warpSeries.Windows()

	tasks := machine.TaskTelemetry()
	var violations int64
	for i := range tasks {
		if i < len(coreStats) {
			cs := coreStats[i]
			tasks[i].GlobalReads = cs.GlobalReads
			tasks[i].BlockedReads = cs.BlockedReads
			tasks[i].BlockedSecs = cs.BlockedTime.Seconds()
			tasks[i].ReadTimeouts = cs.ReadTimeouts
			violations += cs.ReadTimeouts
		}
	}
	res.Telemetry = &metrics.Telemetry{
		Variant:             cfg.Mode.String(),
		Age:                 cfg.Age,
		CompletionSecs:      res.Completion.Seconds(),
		Tasks:               tasks,
		Net:                 st.Telemetry(eng.Now().Sub(0)),
		Staleness:           staleHist.Summary(),
		WarpMean:            res.WarpMean,
		WarpMax:             res.WarpMax,
		StalenessViolations: violations,
	}
	if rc != nil {
		res.Telemetry.Races = rc.Telemetry()
		res.Telemetry.RaceLocations = rc.Report().Locations
	}
	if cfg.Series != nil {
		// Copy the warp series into the set as gauge "pvm.warp" (one
		// sample per 100 ms window, at the window's start) so the export
		// carries warp alongside the other windowed series.
		serWarp := cfg.Series.Gauge("pvm.warp")
		for w, v := range res.WarpWindows {
			serWarp.Add(sim.Time(int64(w)*int64(100*sim.Millisecond)), v)
		}
		res.Telemetry.Series = cfg.Series.Summaries()
	}
	return res, nil
}

// raceObserver converts a possibly-nil *simrace.Checker into the
// core.Options field without storing a non-nil interface around a nil
// pointer.
func raceObserver(rc *simrace.Checker) core.RaceObserver {
	if rc == nil {
		return nil
	}
	return rc
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// observe feeds every received DSM update into the rollback ledger and
// the coordinator's evidence-bit table.
func (w *worker) observe(locID int, u core.Update) {
	b, ok := u.Value.(*ifaceBundle)
	if !ok || b == nil {
		return // progress beacon or exit sentinel
	}
	if b.Anti {
		for _, n := range b.Nodes {
			w.store.Retract(n, u.Iter)
		}
		return
	}
	for r, row := range b.Values {
		iter := b.FirstIter + int64(r)
		for i, n := range b.Nodes {
			w.store.PutActual(n, iter, int(row[i]))
		}
		if w.coord && iter < sentinelIter && r < len(b.EvOK) {
			w.setEvBit(b.Part, iter, b.EvOK[r])
		}
	}
}

func (w *worker) setEvBit(part int, iter int64, ok bool) {
	bits := w.evBits[part]
	for int64(len(bits)) <= iter {
		bits = append(bits, -1)
	}
	nb := int8(0)
	if ok {
		nb = 1
	}
	ob := bits[iter]
	bits[iter] = nb
	w.evBits[part] = bits
	if iter >= w.cntWM || ob == nb {
		return
	}
	// A rollback correction rewrote an evidence bit the incremental
	// counters already folded in (iter < cntWM guarantees every bit at
	// iter is known, so ob is 0 or 1). Only part's bit changed; if the
	// rest of the acceptance conjunction holds, swap the old
	// contribution for the new one.
	if !w.ownEvidenceOK(iter) {
		return
	}
	for q := 0; q < w.cfg.P; q++ {
		if q != w.p && q != part && w.evBits[q][iter] != 1 {
			return
		}
	}
	hit := int(w.log[iter][w.pos[w.cfg.Query.Node]]) == w.cfg.Query.State
	if ob == 1 {
		w.cntAcc--
		if hit {
			w.cntHits--
		}
	}
	if nb == 1 {
		w.cntAcc++
		if hit {
			w.cntHits++
		}
	}
}

// run is the partition's main loop. onExit is called exactly once with
// the exit time.
func (w *worker) run(onExit func(sim.Time)) {
	cfg := w.cfg
	for t := int64(0); ; t++ {
		if w.task.NRecv(pvm.Any, doneTag) != nil {
			w.finish(onExit)
			return
		}
		if t >= cfg.MaxIters {
			w.task.Bcast(doneTag, doneMsgSize, nil)
			w.finish(onExit)
			return
		}

		if cfg.Mode == core.Sync {
			w.syncIteration(t)
		} else {
			if cfg.Mode == core.NonStrict {
				// Global_Read throttle: no peer may be more than Age
				// iterations behind before we start iteration t.
				for q := 0; q < cfg.P; q++ {
					if q != w.p {
						//nscc:tolerates-stale loc=progress -- pacing throttle only; the value is discarded and lag is repaired by rollback
						w.node.GlobalRead(w.topo.progLocs[q], t-1, cfg.Age)
					}
				}
			} else {
				w.node.Poll()
			}
			w.handleRollbacks()
			iterStart := w.task.Now()
			sample := w.sampleIter(t)
			w.log = append(w.log, sample)
			w.serIters.Add(w.task.Now(), 1)
			w.task.Compute(sim.DurationOf(
				cfg.Calib.IterCost(len(w.owned)).Seconds() * w.jit.Next()))
			if tr := w.task.Tracer(); tr != nil {
				tr.Emit(trace.Event{TS: int64(iterStart), Dur: int64(w.task.Now().Sub(iterStart)),
					Ph: trace.PhaseSpan, Pid: trace.PidApp, Tid: w.p, Cat: "bayes", Name: "iter",
					K1: "iter", V1: t})
			}
			if t-w.batchFrom+1 >= w.batch {
				w.flushBatch(t)
			}
		}

		// Bound the rollback ledger: records older than the correction
		// horizon (several batches plus the staleness bound) can no
		// longer conflict with anything that would still be repaired.
		if t > 0 && t%1024 == 0 {
			horizon := w.batchFrom - 8*w.batch - cfg.Age - 128
			if horizon > 0 {
				w.store.Prune(horizon)
			}
		}

		// Stopping rule.
		if cfg.Mode == core.Sync && cfg.P > 1 {
			if stop := w.syncBarrier(t); stop {
				w.finish(onExit)
				return
			}
		} else if w.coord && (t+1)%checkEvery == 0 {
			if w.preciseEnough() {
				w.stopped = true
				if cfg.P > 1 {
					w.task.Bcast(doneTag, doneMsgSize, nil)
				}
				w.finish(onExit)
				return
			}
		}
	}
}

// syncIteration runs one fully synchronous sample: topological waves
// with a phase-batched interface exchange and no gambles. All remote
// parent values are actuals, blocking-received via the phase-stamped
// bundle locations.
func (w *worker) syncIteration(t int64) {
	topo := w.topo
	out := w.newLogRow()
	for ph := 0; ph < topo.numPhases; ph++ {
		// Wait for every source's previous-phase bundle: phase-(ph-1)
		// interface values unlock phase-ph sampling. Phase-0 nodes
		// have no remote parents by construction.
		if ph > 0 {
			for _, src := range w.sources {
				//nscc:tolerates-stale loc=bundle -- age-0 phase barrier; only a -read-timeout degrade returns stale, and recountRepair fixes it
				w.node.GlobalRead(topo.bundleLocs[src][w.p], topo.syncStamp(t, ph-1), 0)
			}
		}
		nodes := 0
		for _, u := range w.owned {
			if topo.phases[u] != ph {
				continue
			}
			nodes++
			for _, pa := range w.lut.parents[u] {
				if topo.parts[pa] == w.p {
					w.scratch[pa] = int(out[w.pos[pa]])
				} else {
					v, _ := w.store.Consume(pa, t, w.defaults[pa])
					w.scratch[pa] = v
				}
			}
			v := w.lut.sampleNodeAt(u, t, w.scratch, w.cfg.Seed)
			w.scratch[u] = v
			out[w.pos[u]] = int8(v)
		}
		if nodes > 0 {
			w.task.Compute(sim.DurationOf(
				w.cfg.Calib.IterCost(nodes).Seconds() * w.jit.Next()))
		}
		// Publish this phase's interface values (plus, on the final
		// phase, the evidence bit) to every target. Every pair
		// exchanges every phase so the phase stamps stay in lockstep.
		for ti, dst := range w.targets {
			phNodes := w.tgtPhase[ti][ph]
			b := &ifaceBundle{Part: w.p, Phase: ph, FirstIter: t, Nodes: phNodes}
			row := make([]int8, len(phNodes))
			for k, u := range phNodes {
				row[k] = out[w.pos[u]]
			}
			b.Values = [][]int8{row}
			if ph == topo.numPhases-1 {
				b.EvOK = []bool{w.evidenceOKFor(out)}
			}
			w.node.WriteSized(topo.bundleLocs[w.p][dst], topo.syncStamp(t, ph),
				bundleBytes(len(b.Nodes), 1), b)
		}
	}
	w.log = append(w.log, out)
	w.serIters.Add(w.task.Now(), 1)
}

// evidenceOKFor reports whether the partition's evidence nodes match in
// the given sample.
func (w *worker) evidenceOKFor(sample []int8) bool {
	for _, ev := range w.evNodes {
		if int(sample[w.pos[ev]]) != w.lut.ev[ev] {
			return false
		}
	}
	return true
}

// syncBarrier runs the combined barrier + verdict exchange of the
// synchronous variant. Returns true to stop.
func (w *worker) syncBarrier(t int64) bool {
	coordPart := w.topo.coordinator
	if w.p == coordPart {
		for i := 0; i < w.cfg.P-1; i++ {
			w.task.Recv(pvm.Any, arriveTag)
		}
		stop := false
		if (t+1)%checkEvery == 0 && w.preciseEnough() {
			stop = true
			w.stopped = true
		}
		others := make([]int, 0, w.cfg.P-1)
		for q := 0; q < w.cfg.P; q++ {
			if q != w.p {
				others = append(others, q)
			}
		}
		w.task.Multicast(others, verdictTag, verdictMsgSize, stop, nil)
		return stop
	}
	w.task.Send(coordPart, arriveTag, arriveMsgSize, nil)
	m := w.task.Recv(coordPart, verdictTag)
	return m.Data.(bool)
}

// finish publishes exit sentinels on every location this partition
// writes, so no blocked peer waits forever, then reports exit.
func (w *worker) finish(onExit func(sim.Time)) {
	if w.cfg.Mode != core.Sync {
		w.flushBatch(int64(len(w.log)) - 1)
	}
	for _, dst := range w.targets {
		w.node.Write(w.topo.bundleLocs[w.p][dst], sentinelIter, nil)
	}
	w.node.Write(w.topo.progLocs[w.p], sentinelIter, nil)
	onExit(w.task.Now())
}

// sampleIter draws this partition's nodes for iteration t in the
// asynchronous modes. With general partitions the peers mutually need
// each other's current-iteration interface values, so those are almost
// always gambles on the defaults, repaired by rollback when the actuals
// arrive (§3.2).
func (w *worker) sampleIter(t int64) []int8 {
	out := w.newLogRow()
	w.fillSample(t, out)
	return out
}

// fillSample computes owned values for iteration t into out; used both
// for fresh samples and rollback replays.
func (w *worker) fillSample(t int64, out []int8) {
	parts, pos, scratch := w.topo.parts, w.pos, w.scratch
	for _, u := range w.owned {
		for _, pa := range w.lut.parents[u] {
			if parts[pa] == w.p {
				scratch[pa] = int(out[pos[pa]])
			} else {
				v, _ := w.store.Consume(pa, t, w.defaults[pa])
				scratch[pa] = v
			}
		}
		v := w.lut.sampleNodeAt(u, t, scratch, w.cfg.Seed)
		scratch[u] = v
		out[pos[u]] = int8(v)
	}
}

// flushBatch publishes iterations [batchFrom, upTo] to every target and
// advances the batch window, stamping the locations with upTo.
func (w *worker) flushBatch(upTo int64) {
	if upTo < w.batchFrom {
		return
	}
	for _, dst := range w.targets {
		b := w.makeBundle(dst, w.batchFrom, upTo)
		w.node.WriteSized(w.topo.bundleLocs[w.p][dst], upTo,
			bundleBytes(len(w.topo.iface[w.p][dst]), int(upTo-w.batchFrom+1)), b)
	}
	w.node.Write(w.topo.progLocs[w.p], upTo, nil)
	w.batchFrom = upTo + 1
}

// makeBundle assembles the interface message for dst covering
// iterations [from, to], from the sample log.
func (w *worker) makeBundle(dst int, from, to int64) *ifaceBundle {
	nodes := w.topo.iface[w.p][dst]
	rows := int(to - from + 1)
	b := &ifaceBundle{
		Part: w.p, Phase: -1, Nodes: nodes, FirstIter: from,
		Values: make([][]int8, 0, rows),
		EvOK:   make([]bool, 0, rows),
	}
	// One slab backs every row of the bundle: rows are written once
	// here and only read by receivers, so sharing a backing array is
	// safe and cuts the per-iteration row allocations.
	slab := make([]int8, rows*len(nodes))
	for t := from; t <= to; t++ {
		row := slab[:len(nodes):len(nodes)]
		slab = slab[len(nodes):]
		for i, u := range nodes {
			row[i] = w.log[t][w.pos[u]]
		}
		b.Values = append(b.Values, row)
		b.EvOK = append(b.EvOK, w.ownEvidenceOK(t))
	}
	return b
}

// makeAnti assembles a single-iteration antimessage for dst.
func (w *worker) makeAnti(dst int) *ifaceBundle {
	return &ifaceBundle{Part: w.p, Anti: true, Phase: -1, Nodes: w.topo.iface[w.p][dst]}
}

// handleRollbacks repairs every dirtied iteration (oldest first). The
// paper's implementation is synchronization via rollback [2]: on a
// wrong gamble the processor restores the state at the dirty iteration
// and replays forward to the present, so one rollback costs work
// proportional to how far the processor had strayed ahead. We charge
// that Time-Warp replay cost (from the oldest dirty iteration to the
// log head, once per repair pass); because logic-sampling iterations
// are statistically independent, only the dirtied iterations' values
// actually change, which keeps the estimator exact while the cost model
// stays faithful. Bounding the stray distance — Global_Read's job — is
// what bounds the cost of each rollback (§3.2).
func (w *worker) handleRollbacks() {
	for w.store.HasDirty() {
		dirty := w.store.Dirty()
		// Each dirty iteration is a straggler: standard Time Warp
		// restores the state at the straggler and re-executes forward,
		// so every rollback costs work proportional to the distance the
		// processor had strayed past it. (A lazily-batched repair would
		// be cheaper, but "costly rollbacks" — §3.2 — is precisely the
		// behaviour of the standard technique the paper cites.)
		for _, d := range dirty {
			if d >= int64(len(w.log)) {
				continue
			}
			if span := int64(len(w.log)) - d; span > 0 {
				w.replayed += span
				w.serRollbacks.Add(w.task.Now(), 1)
				if tr := w.task.Tracer(); tr != nil {
					tr.Emit(trace.Event{TS: int64(w.task.Now()), Ph: trace.PhaseInstant,
						Pid: trace.PidApp, Tid: w.p, Cat: "bayes", Name: "rollback",
						K1: "iter", V1: d, K2: "span", V2: span})
				}
				w.task.Compute(sim.DurationOf(
					w.cfg.Calib.IterCost(len(w.owned)).Seconds() * float64(span)))
			}
		}
		for _, d := range dirty {
			if d >= int64(len(w.log)) {
				// A value for an iteration not yet computed arrived
				// early; nothing to repair.
				w.store.BeginRollback(d)
				continue
			}
			w.rowScratch = append(w.rowScratch[:0], w.log[d]...)
			old := w.rowScratch
			w.store.BeginRollback(d)
			w.fillSample(d, w.log[d])
			if w.coord && d < w.cntWM {
				w.recountRepair(d, old)
			}

			// Corrections for changed interface values / evidence bits
			// — only for iterations already published; unsent ones go
			// out (already repaired) with their batch.
			if d >= w.batchFrom {
				continue
			}
			for _, dst := range w.targets {
				changed := false
				for _, u := range w.topo.iface[w.p][dst] {
					if w.log[d][w.pos[u]] != old[w.pos[u]] {
						changed = true
						break
					}
				}
				if dst == w.topo.coordinator && !changed {
					changed = w.evidenceChanged(old, w.log[d])
				}
				if changed {
					sz := bundleBytes(len(w.topo.iface[w.p][dst]), 1)
					if tr := w.task.Tracer(); tr != nil {
						tr.Emit(trace.Event{TS: int64(w.task.Now()), Ph: trace.PhaseInstant,
							Pid: trace.PidApp, Tid: w.p, Cat: "bayes", Name: "anti",
							K1: "iter", V1: d, K2: "dst", V2: int64(dst)})
					}
					w.node.WriteSized(w.topo.bundleLocs[w.p][dst], d, sz, w.makeAnti(dst))
					w.node.WriteSized(w.topo.bundleLocs[w.p][dst], d, sz, w.makeBundle(dst, d, d))
				}
			}
		}
	}
}

func (w *worker) evidenceChanged(old, repaired []int8) bool {
	for _, ev := range w.evNodes {
		if old[w.pos[ev]] != repaired[w.pos[ev]] {
			return true
		}
	}
	return false
}

// ownEvidenceOK reports whether this partition's evidence nodes matched
// in iteration t.
func (w *worker) ownEvidenceOK(t int64) bool {
	return w.evidenceOKFor(w.log[t])
}

// finalWatermark is the highest iteration for which the coordinator has
// complete information (its own sample plus every partition's evidence
// bit). Evidence bits never revert to unknown, so each partition's
// known prefix only grows and the cached evKnown positions let the scan
// resume where it last stopped instead of rescanning from zero.
func (w *worker) finalWatermark() int64 {
	wm := int64(len(w.log))
	for q := 0; q < w.cfg.P; q++ {
		if q == w.p {
			continue
		}
		bits := w.evBits[q]
		k := w.evKnown[q]
		for k < int64(len(bits)) && bits[k] >= 0 {
			k++
		}
		w.evKnown[q] = k
		if k < wm {
			wm = k
		}
	}
	return wm
}

// contribAt reports iteration t's stopping-rule contribution from the
// current log row and evidence bits. t must be below cntWM's target
// watermark, so every part's bit at t is known.
func (w *worker) contribAt(t int64) (acc, hit bool) {
	if !w.ownEvidenceOK(t) {
		return false, false
	}
	for q := 0; q < w.cfg.P; q++ {
		if q != w.p && w.evBits[q][t] != 1 {
			return false, false
		}
	}
	return true, int(w.log[t][w.pos[w.cfg.Query.Node]]) == w.cfg.Query.State
}

// advanceCount folds iterations [cntWM, wm) into the incremental
// counters. Together with the setEvBit/recountRepair adjustments this
// keeps (cntHits, cntAcc) equal to countUpTo(cntWM) at all times.
//
//nscc:commutative
func (w *worker) advanceCount(wm int64) {
	for t := w.cntWM; t < wm; t++ {
		acc, hit := w.contribAt(t)
		if acc {
			w.cntAcc++
			if hit {
				w.cntHits++
			}
		}
	}
	if wm > w.cntWM {
		w.cntWM = wm
	}
}

// recountRepair fixes the incremental counters after a rollback repair
// rewrote already-counted iteration d (old is the pre-repair row; the
// evidence bits are unchanged by a local repair).
func (w *worker) recountRepair(d int64, old []int8) {
	for q := 0; q < w.cfg.P; q++ {
		if q != w.p && w.evBits[q][d] != 1 {
			return // not accepted before or after; nothing to adjust
		}
	}
	qn := w.pos[w.cfg.Query.Node]
	st := w.cfg.Query.State
	accB := w.evidenceOKFor(old)
	accA := w.evidenceOKFor(w.log[d])
	if accB {
		w.cntAcc--
		if int(old[qn]) == st {
			w.cntHits--
		}
	}
	if accA {
		w.cntAcc++
		if int(w.log[d][qn]) == st {
			w.cntHits++
		}
	}
}

// countUpTo tallies accepted samples and query hits over iterations
// [0, wm).
func (w *worker) countUpTo(wm int64) (hits, accepted int64) {
	qn := w.cfg.Query.Node
	for t := int64(0); t < wm; t++ {
		if !w.ownEvidenceOK(t) {
			continue
		}
		ok := true
		for q := 0; q < w.cfg.P; q++ {
			if q != w.p && w.evBits[q][t] != 1 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		accepted++
		if int(w.log[t][w.pos[qn]]) == w.cfg.Query.State {
			hits++
		}
	}
	return hits, accepted
}

// preciseEnough evaluates the paper's stopping rule (90% CI half-width
// at or below the precision target) on the information available now.
// It uses the incremental counters, so each check costs only the
// iterations finalized since the last one.
func (w *worker) preciseEnough() bool {
	w.advanceCount(w.finalWatermark())
	if w.cntAcc < 2 {
		return false
	}
	p := float64(w.cntHits) / float64(w.cntAcc)
	return metrics.ProportionCI90HalfWidth(p, int(w.cntAcc)) <= w.cfg.Precision
}
