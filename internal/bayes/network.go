// Package bayes implements the paper's second driver application:
// probabilistic inference in Bayesian belief networks by the logic
// sampling approximate algorithm [15], serially and in parallel. The
// parallel implementations follow §3.2: the network is partitioned
// across processors; processors exchange the values assigned to
// interface nodes each sampling iteration; the asynchronous variant
// gambles on default values and repairs wrong gambles by rollback with
// antimessages; the partially asynchronous variant throttles the
// processors with Global_Read so nobody strays far ahead or lags far
// behind, bounding the number of costly rollbacks.
package bayes

import (
	"fmt"
	"math/rand"

	"nscc/internal/partition"
)

// Node is one event variable of a belief network.
type Node struct {
	Name    string
	States  int   // number of values the event can take
	Parents []int // indices of parent nodes; all smaller than this node's index
	// CPT is the conditional probability table: CPT[combo][s] is the
	// probability of state s given the parent combination combo, where
	// combo is the mixed-radix index of the parents' states (first
	// parent most significant).
	CPT [][]float64
}

// Network is a Bayesian belief network whose nodes are stored in
// topological order (every node's parents precede it).
type Network struct {
	Name  string
	Nodes []Node
}

// N returns the node count.
func (bn *Network) N() int { return len(bn.Nodes) }

// Edges returns the number of directed dependency edges.
func (bn *Network) Edges() int {
	e := 0
	for i := range bn.Nodes {
		e += len(bn.Nodes[i].Parents)
	}
	return e
}

// EdgesPerNode returns Table 2's density statistic.
func (bn *Network) EdgesPerNode() float64 {
	if bn.N() == 0 {
		return 0
	}
	return float64(bn.Edges()) / float64(bn.N())
}

// MaxStates returns the largest state count of any node.
func (bn *Network) MaxStates() int {
	m := 0
	for i := range bn.Nodes {
		if bn.Nodes[i].States > m {
			m = bn.Nodes[i].States
		}
	}
	return m
}

// Validate checks topological parent order and CPT shapes/stochasticity.
func (bn *Network) Validate() error {
	for i := range bn.Nodes {
		nd := &bn.Nodes[i]
		if nd.States < 2 {
			return fmt.Errorf("bayes: node %d (%s) has %d states", i, nd.Name, nd.States)
		}
		combos := 1
		for _, p := range nd.Parents {
			if p >= i {
				return fmt.Errorf("bayes: node %d (%s) has non-topological parent %d", i, nd.Name, p)
			}
			if p < 0 {
				return fmt.Errorf("bayes: node %d has negative parent", i)
			}
			combos *= bn.Nodes[p].States
		}
		if len(nd.CPT) != combos {
			return fmt.Errorf("bayes: node %d (%s) CPT has %d rows, want %d", i, nd.Name, len(nd.CPT), combos)
		}
		for c, row := range nd.CPT {
			if len(row) != nd.States {
				return fmt.Errorf("bayes: node %d CPT row %d has %d entries, want %d", i, c, len(row), nd.States)
			}
			sum := 0.0
			for _, p := range row {
				if p < 0 {
					return fmt.Errorf("bayes: node %d CPT row %d has negative probability", i, c)
				}
				sum += p
			}
			if sum < 1-1e-9 || sum > 1+1e-9 {
				return fmt.Errorf("bayes: node %d CPT row %d sums to %v", i, c, sum)
			}
		}
	}
	return nil
}

// comboIndex computes the CPT row selected by the parents' states in
// values (which must hold states for all indices < i).
func (bn *Network) comboIndex(i int, values []int) int {
	nd := &bn.Nodes[i]
	combo := 0
	for _, p := range nd.Parents {
		combo = combo*bn.Nodes[p].States + values[p]
	}
	return combo
}

// drawFrom samples a state from dist using u in [0,1).
func drawFrom(dist []float64, u float64) int {
	acc := 0.0
	for s, p := range dist {
		acc += p
		if u < acc {
			return s
		}
	}
	return len(dist) - 1
}

// SampleInto forward-samples every node into values (len >= N) using
// rng, in topological order.
func (bn *Network) SampleInto(values []int, rng *rand.Rand) {
	for i := range bn.Nodes {
		dist := bn.Nodes[i].CPT[bn.comboIndex(i, values)]
		values[i] = drawFrom(dist, rng.Float64())
	}
}

// SampleNodeAt draws node i's state given the parent states in values,
// using the deterministic per-(node, iteration, parent-combination)
// random stream required by rollback replay: re-sampling the same slot
// with the same parent values reproduces the same state, while a
// changed parent combination gives an independent draw. seed
// distinguishes runs.
func (bn *Network) SampleNodeAt(i int, iter int64, values []int, seed int64) int {
	combo := bn.comboIndex(i, values)
	u := hashUniform(seed, int64(i), iter, int64(combo))
	return drawFrom(bn.Nodes[i].CPT[combo], u)
}

// hashUniform maps (seed, node, iter, combo) to a uniform in [0,1) with
// a SplitMix64-style mix.
func hashUniform(seed, node, iter, combo int64) float64 {
	z := uint64(seed)
	for _, v := range [...]uint64{uint64(node), uint64(iter), uint64(combo)} {
		z += (v + 0x9E3779B97F4A7C15)
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
	}
	return float64(z>>11) / float64(uint64(1)<<53)
}

// Defaults returns each node's default value for the asynchronous
// gambling scheme: the most probable state of the node's marginal
// distribution, estimated by nSamples forward samples (§3.2 picks
// defaults "on the basis of the conditional probability distribution of
// the nodes"). Deterministic in seed.
func (bn *Network) Defaults(nSamples int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	l := newLUT(bn, Query{})
	counts := make([][]int, bn.N())
	for i := range counts {
		counts[i] = make([]int, bn.Nodes[i].States)
	}
	values := make([]int, bn.N())
	for s := 0; s < nSamples; s++ {
		l.sampleInto(values, rng)
		for i, v := range values {
			counts[i][v]++
		}
	}
	defs := make([]int, bn.N())
	for i, c := range counts {
		best := 0
		for s, n := range c {
			if n > c[best] {
				best = s
			}
		}
		defs[i] = best
	}
	return defs
}

// Graph returns the undirected dependency graph (for partitioning and
// Table 2's edge-cut).
func (bn *Network) Graph() *partition.Graph {
	g := partition.NewGraph(bn.N())
	for i := range bn.Nodes {
		for _, p := range bn.Nodes[i].Parents {
			g.AddEdge(p, i)
		}
	}
	return g
}

// Query asks for the probability that Node takes State given the
// Evidence instantiation.
type Query struct {
	Node     int
	State    int
	Evidence map[int]int // node -> observed state
}

// Matches reports whether a full sample agrees with the evidence.
func (q Query) Matches(values []int) bool {
	for n, s := range q.Evidence {
		if values[n] != s {
			return false
		}
	}
	return true
}
