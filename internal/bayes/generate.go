package bayes

import (
	"fmt"
	"math"
	"math/rand"
)

// randomCPT fills a CPT with skewed Dirichlet-style rows: real belief
// networks (medical diagnosis, Hailfinder) have strongly peaked
// conditionals, which is also what makes the asynchronous scheme's
// most-probable-state defaults good gambles (§3.2). A small floor keeps
// every state reachable so logic sampling sees genuine variability.
func randomCPT(combos, states int, rng *rand.Rand) [][]float64 {
	const (
		floor         = 0.02
		concentration = 0.4 // <1: peaked rows
	)
	cpt := make([][]float64, combos)
	for c := range cpt {
		row := make([]float64, states)
		sum := 0.0
		for s := range row {
			// Gamma(concentration) via Johnk-style rejection is
			// overkill; exponentiating a uniform gives a similar peaked
			// spread deterministically cheaply.
			row[s] = floor + pow(rng.Float64(), 1/concentration)
			sum += row[s]
		}
		for s := range row {
			row[s] /= sum
		}
		cpt[c] = row
	}
	return cpt
}

func pow(x, y float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Exp(y * math.Log(x))
}

// Random generates a belief network in the style of the paper's A/AA/C
// nets [12]: n nodes in topological order with edges placed uniformly at
// random until the target density is met (equivalent to starting from a
// complete DAG and deleting random edges), every node taking `states`
// values. Parents per node are capped so CPTs stay tractable.
// Deterministic in seed.
func Random(name string, n int, edgesPerNode float64, states int, seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	const maxParents = 5
	target := int(edgesPerNode*float64(n) + 0.5)
	parents := make([][]int, n)
	has := make(map[[2]int]bool)
	edges := 0
	for guard := 0; edges < target && guard < 100*target; guard++ {
		c := 1 + rng.Intn(n-1) // child: any non-root position
		p := rng.Intn(c)       // parent precedes child
		if has[[2]int{p, c}] || len(parents[c]) >= maxParents {
			continue
		}
		has[[2]int{p, c}] = true
		parents[c] = append(parents[c], p)
		edges++
	}
	bn := &Network{Name: name, Nodes: make([]Node, n)}
	for i := 0; i < n; i++ {
		combos := 1
		for _, p := range parents[i] {
			combos *= states
			_ = p
		}
		bn.Nodes[i] = Node{
			Name:    fmt.Sprintf("%s%d", name, i),
			States:  states,
			Parents: parents[i],
			CPT:     randomCPT(combos, states, rng),
		}
	}
	if err := bn.Validate(); err != nil {
		panic("bayes: generated invalid network: " + err.Error())
	}
	return bn
}

// Table2Networks builds the four benchmark networks with the structural
// parameters of Table 2:
//
//	A          54 nodes, 2.2 edges/node, 2 values/node
//	AA         54 nodes, 2.4 edges/node, 2 values/node
//	C          54 nodes, 2.0 edges/node, 2 values/node
//	Hailfinder 56 nodes, 1.2 edges/node, 4 values/node
//
// The real Hailfinder CPTs are not redistributable; the paper itself
// notes (§4.2.2, citing [12]) that "most real, large Bayesian networks
// are proprietary and thus we have to make do with small, synthetic
// networks". We match its published structure, which is what drives the
// communication behaviour the experiments measure.
func Table2Networks() []*Network {
	return []*Network{
		Random("A", 54, 2.2, 2, 1001),
		Random("AA", 54, 2.4, 2, 1002),
		Random("C", 54, 2.0, 2, 1003),
		Random("Hailfinder", 56, 1.2, 4, 1004),
	}
}

// Figure1 returns the paper's illustrative five-event medical-diagnosis
// network (Figure 1): A with two children B and C, which share the
// child D, plus a child E of C. The only probability the paper states
// explicitly, p(D=true | B=true, C=true) = 0.80, and p(A=true) = 0.20
// with p(A=false) = 0.80 (used for A's default value), are reproduced
// exactly; the remaining entries are illustrative. State 1 is "true".
func Figure1() *Network {
	t := func(pTrue float64) []float64 { return []float64{1 - pTrue, pTrue} }
	bn := &Network{
		Name: "figure1",
		Nodes: []Node{
			{Name: "A", States: 2, CPT: [][]float64{t(0.20)}},
			{Name: "B", States: 2, Parents: []int{0},
				CPT: [][]float64{t(0.10), t(0.70)}},
			{Name: "C", States: 2, Parents: []int{0},
				CPT: [][]float64{t(0.20), t(0.60)}},
			{Name: "D", States: 2, Parents: []int{1, 2},
				// Rows ordered by (B, C): ff, ft, tf, tt.
				CPT: [][]float64{t(0.05), t(0.30), t(0.40), t(0.80)}},
			{Name: "E", States: 2, Parents: []int{2},
				CPT: [][]float64{t(0.10), t(0.50)}},
		},
	}
	if err := bn.Validate(); err != nil {
		panic("bayes: figure1 invalid: " + err.Error())
	}
	return bn
}

// DefaultQuery picks the paper-style experiment query for a network: the
// last node is queried for its state-0 probability, with one
// mid-network evidence node observed in its default (most likely)
// state, keeping logic sampling's rejection rate moderate.
// Deterministic in the network.
func DefaultQuery(bn *Network) Query {
	defs := bn.Defaults(2000, 7)
	ev := bn.N() / 2
	q := Query{
		Node:     bn.N() - 1,
		State:    0,
		Evidence: map[int]int{ev: defs[ev]},
	}
	return q
}
