package bayes

import "math/rand"

// lut is a flattened, read-only lookup structure over one Network plus
// one Query, built once per inference run and shared by every partition
// of that run. It replaces the hot paths' per-sample map walks and
// [][]float64 pointer chases with contiguous slices:
//
//   - each node's CPT rows are laid out back to back in one []float64
//     (stride = the node's state count), so selecting a distribution is
//     one offset computation instead of a slice-of-slices indirection;
//   - the query evidence map becomes a per-node slice (-1 = unobserved),
//     so evidence tests index instead of hashing.
//
// Every sampling method mirrors its Network/Query counterpart operation
// for operation — same RNG draw sequence, same float accumulation order
// — so results are bit-identical to the unflattened forms (the golden
// sweep fingerprints in internal/exper pin this).
type lut struct {
	states  []int
	parents [][]int     // aliases Nodes[i].Parents (read-only)
	cpt     [][]float64 // cpt[i]: node i's CPT rows, contiguous, stride states[i]

	ev       []int // observed state per node, -1 if unobserved
	evNodes  []int // evidence node ids, ascending
	evStates []int // observed state per evNodes entry
}

// newLUT flattens bn and q. A zero Query (no evidence) is valid and
// yields an evidence-free sampler.
func newLUT(bn *Network, q Query) *lut {
	n := bn.N()
	l := &lut{
		states:  make([]int, n),
		parents: make([][]int, n),
		cpt:     make([][]float64, n),
		ev:      make([]int, n),
	}
	for i := range bn.Nodes {
		nd := &bn.Nodes[i]
		l.states[i] = nd.States
		l.parents[i] = nd.Parents
		flat := make([]float64, 0, len(nd.CPT)*nd.States)
		for _, row := range nd.CPT {
			flat = append(flat, row...)
		}
		l.cpt[i] = flat
		l.ev[i] = -1
	}
	// Node-index order keeps evNodes deterministic regardless of map
	// iteration order.
	for i := 0; i < n; i++ {
		if s, ok := q.Evidence[i]; ok {
			l.ev[i] = s
			l.evNodes = append(l.evNodes, i)
			l.evStates = append(l.evStates, s)
		}
	}
	return l
}

// comboIndex mirrors Network.comboIndex on the flattened tables.
func (l *lut) comboIndex(i int, values []int) int {
	combo := 0
	for _, p := range l.parents[i] {
		combo = combo*l.states[p] + values[p]
	}
	return combo
}

// dist returns node i's conditional distribution for the given parent
// combination. The returned slice aliases the flat table and must not
// be written.
func (l *lut) dist(i, combo int) []float64 {
	st := l.states[i]
	off := combo * st
	return l.cpt[i][off : off+st]
}

// sampleInto mirrors Network.SampleInto: identical draw sequence,
// identical results.
func (l *lut) sampleInto(values []int, rng *rand.Rand) {
	for i := range l.cpt {
		values[i] = drawFrom(l.dist(i, l.comboIndex(i, values)), rng.Float64())
	}
}

// sampleNodeAt mirrors Network.SampleNodeAt (the deterministic
// per-(node, iteration, parent-combination) replay stream).
func (l *lut) sampleNodeAt(i int, iter int64, values []int, seed int64) int {
	combo := l.comboIndex(i, values)
	u := hashUniform(seed, int64(i), iter, int64(combo))
	return drawFrom(l.dist(i, combo), u)
}

// sampleWeighted mirrors Network.sampleWeighted: evidence nodes are
// clamped, free nodes drawn, and the likelihood weight accumulated in
// the same node order.
func (l *lut) sampleWeighted(values []int, rng *rand.Rand) float64 {
	w := 1.0
	for i := range l.cpt {
		dist := l.dist(i, l.comboIndex(i, values))
		if ev := l.ev[i]; ev >= 0 {
			values[i] = ev
			w *= dist[ev]
		} else {
			values[i] = drawFrom(dist, rng.Float64())
		}
	}
	return w
}

// matches mirrors Query.Matches (pure conjunction, so the fixed
// iteration order cannot change the verdict).
func (l *lut) matches(values []int) bool {
	for k, n := range l.evNodes {
		if values[n] != l.evStates[k] {
			return false
		}
	}
	return true
}
