package bayes

import (
	"math"
	"math/rand"

	"nscc/internal/metrics"
	"nscc/internal/sim"
)

// Calibration maps sampling work to virtual CPU time on the paper's
// RS/6000-591 nodes. Table 2 reports ~11 s uniprocessor inference for
// the 54-node nets and 3.15 s for Hailfinder; a per-node-draw cost of a
// few microseconds with evidence-rejection overhead lands in that
// regime.
type Calibration struct {
	PerNodeSample   sim.Duration // drawing one node's value in one sample
	PerIterOverhead sim.Duration // loop/bookkeeping per sampling iteration

	// Load skew: per-iteration lognormal-ish jitter plus correlated
	// slow patches (a competing job slowing the node by SlowFactor for
	// a geometric-length stretch of iterations, mean SlowLen, entered
	// with probability SlowProb per iteration). Correlated patches are
	// what let one processor genuinely stray ahead of a stalled peer —
	// the regime where unbounded asynchrony pays long rollback replays
	// and Global_Read's age bound earns its keep.
	JitterStd  float64
	SlowProb   float64
	SlowFactor float64
	SlowLen    float64
}

// DefaultCalibration returns paper-scale constants.
func DefaultCalibration() Calibration {
	return Calibration{
		PerNodeSample:   25 * sim.Microsecond,
		PerIterOverhead: 25 * sim.Microsecond,
		JitterStd:       0.15,
		SlowProb:        0.002,
		SlowFactor:      2.5,
		SlowLen:         200,
	}
}

// IterCost is the pre-jitter virtual CPU time of sampling nodes node
// values in one iteration.
func (c Calibration) IterCost(nodes int) sim.Duration {
	return sim.Duration(nodes)*c.PerNodeSample + c.PerIterOverhead
}

// Jitter draws a memoryless load-skew factor (patch-free; the runners
// all use NewJitterer so serial and parallel see the same skew
// process).
func (c Calibration) Jitter(rng *rand.Rand) float64 {
	f := 1 + math.Abs(rng.NormFloat64())*c.JitterStd
	if c.SlowProb > 0 && rng.Float64() < c.SlowProb {
		f *= c.SlowFactor
	}
	return f
}

// Jitterer draws per-iteration skew factors with patch correlation; one
// per simulated processor.
type Jitterer struct {
	c        Calibration
	rng      *rand.Rand
	slowLeft int
}

// NewJitterer returns a skew source for one processor.
func (c Calibration) NewJitterer(rng *rand.Rand) *Jitterer {
	return &Jitterer{c: c, rng: rng}
}

// Next returns the multiplicative cost factor for the next iteration.
func (j *Jitterer) Next() float64 {
	f := 1 + math.Abs(j.rng.NormFloat64())*j.c.JitterStd
	if j.slowLeft > 0 {
		j.slowLeft--
		f *= j.c.SlowFactor
	} else if j.c.SlowProb > 0 && j.rng.Float64() < j.c.SlowProb {
		if j.c.SlowLen > 1 {
			for j.rng.Float64() > 1/j.c.SlowLen {
				j.slowLeft++
			}
		}
		f *= j.c.SlowFactor
	}
	return f
}

// SerialResult reports a sequential logic-sampling run.
type SerialResult struct {
	Prob      float64 // estimated P(query | evidence)
	HalfWidth float64 // achieved 90% CI half-width
	Iters     int64   // raw sampling iterations
	Accepted  int64   // samples agreeing with the evidence
	Time      sim.Duration
	Converged bool // reached the precision before maxIters
}

// checkEvery is how often (in iterations) the stopping rule is
// evaluated.
const checkEvery = 200

// InferSerial estimates the query probability by logic sampling until
// the 90 % confidence interval's half-width reaches prec (the paper
// stops at ±0.01), or maxIters raw samples. Deterministic in seed.
func InferSerial(bn *Network, q Query, prec float64, seed int64, calib Calibration, maxIters int64) SerialResult {
	rng := rand.New(rand.NewSource(seed))
	jit := calib.NewJitterer(rng)
	l := newLUT(bn, q)
	values := make([]int, bn.N())
	var res SerialResult
	var hits int64
	iterCost := calib.IterCost(bn.N()).Seconds()
	for res.Iters < maxIters {
		l.sampleInto(values, rng)
		res.Iters++
		res.Time += sim.DurationOf(iterCost * jit.Next())
		if l.matches(values) {
			res.Accepted++
			if values[q.Node] == q.State {
				hits++
			}
		}
		if res.Iters%checkEvery == 0 && res.Accepted >= 2 {
			p := float64(hits) / float64(res.Accepted)
			if metrics.ProportionCI90HalfWidth(p, int(res.Accepted)) <= prec {
				res.Converged = true
				break
			}
		}
	}
	if res.Accepted > 0 {
		res.Prob = float64(hits) / float64(res.Accepted)
		res.HalfWidth = metrics.ProportionCI90HalfWidth(res.Prob, int(res.Accepted))
	} else {
		res.HalfWidth = math.Inf(1)
	}
	return res
}
