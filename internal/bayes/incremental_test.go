package bayes

import (
	"math/rand"
	"testing"
)

// incWorker builds a coordinator worker with just enough state to drive
// the incremental stopping-rule counters: 3 partitions, the coordinator
// owning nodes {0,1,2} with evidence node 1 (=1) and query node 0
// (state 1).
func incWorker(t *testing.T) *worker {
	t.Helper()
	bn := &Network{Name: "inc", Nodes: []Node{
		{Name: "a", States: 3, CPT: [][]float64{{0.5, 0.3, 0.2}}},
		{Name: "b", States: 2, CPT: [][]float64{{0.6, 0.4}}},
		{Name: "c", States: 2, CPT: [][]float64{{0.1, 0.9}}},
	}}
	q := Query{Node: 0, State: 1, Evidence: map[int]int{1: 1}}
	cfg := &ParallelConfig{Net: bn, Query: q, P: 3, Precision: 0.01}
	w := &worker{
		cfg: cfg, bn: bn, lut: newLUT(bn, q), p: 0, coord: true,
		owned:   []int{0, 1, 2},
		pos:     []int{0, 1, 2},
		evNodes: []int{1},
		evBits:  make([][]int8, cfg.P),
		evKnown: make([]int64, cfg.P),
	}
	return w
}

// TestIncrementalCountMatchesRecount drives a randomized sequence of
// the three mutations the counters must survive — new iterations,
// evidence-bit rewrites below the counted watermark (peer rollback
// corrections), and in-place row repairs of counted iterations (local
// rollbacks) — and cross-checks (cntHits, cntAcc) against the
// from-scratch countUpTo reference after every advance.
func TestIncrementalCountMatchesRecount(t *testing.T) {
	w := incWorker(t)
	rng := rand.New(rand.NewSource(7))
	randRow := func(row []int8) {
		row[0] = int8(rng.Intn(3))
		row[1] = int8(rng.Intn(2))
		row[2] = int8(rng.Intn(2))
	}
	appendIter := func() {
		row := w.newLogRow()
		randRow(row)
		w.log = append(w.log, row)
		it := int64(len(w.log)) - 1
		for q := 1; q < w.cfg.P; q++ {
			// Leave occasional gaps so the watermark lags the log.
			if rng.Float64() < 0.9 {
				w.setEvBit(q, it, rng.Float64() < 0.7)
			}
		}
	}
	for i := 0; i < 40; i++ {
		appendIter()
	}
	for step := 0; step < 4000; step++ {
		switch rng.Intn(5) {
		case 0:
			appendIter()
		case 1: // peer correction: rewrite any bit, counted or not
			q := 1 + rng.Intn(w.cfg.P-1)
			if n := int64(len(w.evBits[q])); n > 0 {
				w.setEvBit(q, rng.Int63n(n), rng.Float64() < 0.5)
			}
		case 4: // late arrival: fill a peer's lowest unknown bit
			q := 1 + rng.Intn(w.cfg.P-1)
			if w.evKnown[q] < int64(len(w.evBits[q])) && w.evBits[q][w.evKnown[q]] < 0 {
				w.setEvBit(q, w.evKnown[q], rng.Float64() < 0.7)
			}
		case 2: // local repair: rewrite a logged row in place
			if n := int64(len(w.log)); n > 0 {
				d := rng.Int63n(n)
				w.rowScratch = append(w.rowScratch[:0], w.log[d]...)
				old := w.rowScratch
				randRow(w.log[d])
				if d < w.cntWM {
					w.recountRepair(d, old)
				}
			}
		case 3:
			w.advanceCount(w.finalWatermark())
		}
		if step%7 == 0 {
			w.advanceCount(w.finalWatermark())
		}
		wantHits, wantAcc := w.countUpTo(w.cntWM)
		if w.cntHits != wantHits || w.cntAcc != wantAcc {
			t.Fatalf("step %d: incremental (hits=%d acc=%d) != recount (hits=%d acc=%d) at wm=%d",
				step, w.cntHits, w.cntAcc, wantHits, wantAcc, w.cntWM)
		}
	}
	if w.cntWM == 0 || w.cntAcc == 0 {
		t.Fatalf("degenerate exercise: wm=%d acc=%d", w.cntWM, w.cntAcc)
	}
}

// TestFinalWatermarkMonotone checks the cached known-prefix scan never
// runs backwards as bits arrive out of order.
func TestFinalWatermarkMonotone(t *testing.T) {
	w := incWorker(t)
	rng := rand.New(rand.NewSource(11))
	last := int64(0)
	for i := 0; i < 500; i++ {
		row := w.newLogRow()
		w.log = append(w.log, row)
		for q := 1; q < w.cfg.P; q++ {
			it := rng.Int63n(int64(len(w.log)))
			w.setEvBit(q, it, true)
		}
		wm := w.finalWatermark()
		if wm < last {
			t.Fatalf("watermark went backwards: %d after %d", wm, last)
		}
		last = wm
	}
}
