package bayes_test

import (
	"fmt"

	"nscc/internal/bayes"
)

// ExampleExact computes a posterior on the paper's Figure 1 network by
// full enumeration.
func ExampleExact() {
	bn := bayes.Figure1()
	p := bayes.Exact(bn, bayes.Query{Node: 1, State: 1}) // p(B = true)
	fmt.Printf("p(B=true) = %.2f\n", p)

	q := bayes.Query{Node: 0, State: 1, Evidence: map[int]int{1: 1}} // p(A=t | B=t)
	fmt.Printf("p(A=true | B=true) = %.3f\n", bayes.Exact(bn, q))
	// Output:
	// p(B=true) = 0.22
	// p(A=true | B=true) = 0.636
}

// ExampleInferSerial estimates the same posterior by logic sampling to
// the paper's stopping rule.
func ExampleInferSerial() {
	bn := bayes.Figure1()
	q := bayes.Query{Node: 1, State: 1}
	res := bayes.InferSerial(bn, q, 0.02, 42, bayes.DefaultCalibration(), 100000)
	fmt.Printf("converged=%v estimate within 0.05 of 0.22: %v\n",
		res.Converged, res.Prob > 0.17 && res.Prob < 0.27)
	// Output:
	// converged=true estimate within 0.05 of 0.22: true
}
