package bayes

import (
	"math"
	"testing"

	"nscc/internal/core"
	"nscc/internal/netsim"
)

func TestInferSerialConvergesToExact(t *testing.T) {
	bn := Figure1()
	q := Query{Node: 3, State: 1, Evidence: map[int]int{0: 1}} // p(D=t | A=t)
	want := Exact(bn, q)
	res := InferSerial(bn, q, 0.01, 3, DefaultCalibration(), 2_000_000)
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if math.Abs(res.Prob-want) > 0.02 {
		t.Fatalf("serial estimate %v, exact %v", res.Prob, want)
	}
	if res.Accepted == 0 || res.Accepted > res.Iters {
		t.Fatalf("accepted %d of %d", res.Accepted, res.Iters)
	}
	if res.Time <= 0 {
		t.Fatal("no virtual time accumulated")
	}
	if res.HalfWidth > 0.01 {
		t.Fatalf("half-width %v above target", res.HalfWidth)
	}
}

func TestInferSerialRespectsCap(t *testing.T) {
	bn := Figure1()
	q := Query{Node: 3, State: 1}
	res := InferSerial(bn, q, 0.0000001, 1, DefaultCalibration(), 500)
	if res.Converged || res.Iters != 500 {
		t.Fatalf("cap not honored: %+v", res)
	}
}

func TestInferSerialDeterministic(t *testing.T) {
	bn := Table2Networks()[0]
	q := DefaultQuery(bn)
	a := InferSerial(bn, q, 0.02, 5, DefaultCalibration(), 100000)
	b := InferSerial(bn, q, 0.02, 5, DefaultCalibration(), 100000)
	if a != b {
		t.Fatalf("serial inference nondeterministic:\n%+v\n%+v", a, b)
	}
}

func parCfg(mode core.Mode, p int) ParallelConfig {
	bn := Figure1()
	return ParallelConfig{
		Net:       bn,
		Query:     Query{Node: 3, State: 1, Evidence: map[int]int{0: 1}},
		P:         p,
		Mode:      mode,
		Age:       5,
		Precision: 0.02,
		MaxIters:  200000,
		Seed:      17,
		Calib:     DefaultCalibration(),
	}
}

func TestParallelSingleProcessor(t *testing.T) {
	res, err := RunParallel(parCfg(core.Sync, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReachedPrecision {
		t.Fatalf("P=1 did not converge: %+v", res)
	}
	want := Exact(Figure1(), Query{Node: 3, State: 1, Evidence: map[int]int{0: 1}})
	if math.Abs(res.Prob-want) > 0.04 {
		t.Fatalf("P=1 estimate %v, exact %v", res.Prob, want)
	}
	if res.Messages != 0 {
		t.Fatalf("P=1 generated %d frames", res.Messages)
	}
}

func TestParallelModesAgreeWithExact(t *testing.T) {
	want := Exact(Figure1(), Query{Node: 3, State: 1, Evidence: map[int]int{0: 1}})
	for _, mode := range []core.Mode{core.Sync, core.Async, core.NonStrict} {
		res, err := RunParallel(parCfg(mode, 2))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !res.ReachedPrecision {
			t.Fatalf("%v: did not reach precision: %+v", mode, res)
		}
		if math.Abs(res.Prob-want) > 0.05 {
			t.Fatalf("%v: estimate %v, exact %v", mode, res.Prob, want)
		}
		if res.Completion <= 0 || res.Messages == 0 {
			t.Fatalf("%v: degenerate run %+v", mode, res)
		}
	}
}

func TestParallelSyncNoGambles(t *testing.T) {
	res, err := RunParallel(parCfg(core.Sync, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Gambles != 0 || res.Rollbacks != 0 {
		t.Fatalf("sync run gambled %d / rolled back %d times", res.Gambles, res.Rollbacks)
	}
}

func TestParallelAsyncGambles(t *testing.T) {
	res, err := RunParallel(parCfg(core.Async, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Gambles == 0 {
		t.Fatalf("async run never gambled: %+v", res)
	}
	if res.Blocked != 0 {
		t.Fatalf("async run blocked %d times", res.Blocked)
	}
}

func TestParallelGlobalReadZeroAgeLockstep(t *testing.T) {
	// With general partitions both halves need each other's
	// current-iteration interface values, so even GR(0) gambles on the
	// in-flight iteration — but lockstep bounds every rollback's replay
	// to a single iteration (Replayed == Rollbacks), which is the
	// bounded-staleness guarantee in action.
	cfg := parCfg(core.NonStrict, 2)
	cfg.Age = 0
	res, err := RunParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocked == 0 {
		t.Fatal("GR(0) never blocked; lockstep must throttle")
	}
	if res.Rollbacks > 0 && res.Replayed > res.Rollbacks {
		t.Fatalf("GR(0) replay %d exceeds rollbacks %d: straying not bounded to one iteration",
			res.Replayed, res.Rollbacks)
	}
}

func TestParallelGlobalReadBoundsRollbacks(t *testing.T) {
	// On a congested network the asynchronous sampler's lag grows —
	// gambles pile up and fail — while Global_Read caps the lag at age
	// iterations. Compare under a background loader (§5.2 regime).
	asyncCfg := parCfg(core.Async, 2)
	asyncCfg.LoaderBps = 4e6
	asyncCfg.MaxIters = 12000
	asyncCfg.Precision = 0.03
	async, err := RunParallel(asyncCfg)
	if err != nil {
		t.Fatal(err)
	}
	gr := asyncCfg
	gr.Mode = core.NonStrict
	gr.Age = 2
	bounded, err := RunParallel(gr)
	if err != nil {
		t.Fatal(err)
	}
	if async.Rollbacks == 0 {
		t.Fatalf("loaded async run never rolled back: %+v", async)
	}
	if !bounded.ReachedPrecision {
		t.Fatalf("loaded GR(2) failed to converge: %+v", bounded)
	}
	// The paper's mechanism: a rollback's cost is the replay from the
	// wrong gamble to the present, so it grows with how far the
	// processor strayed. Under load the unthrottled sampler's lag — and
	// therefore its replay span per rollback — exceeds the
	// Global_Read-bounded one's.
	asyncSpan := float64(async.Replayed) / float64(async.Rollbacks)
	grSpan := float64(bounded.Replayed) / float64(bounded.Rollbacks+1)
	if grSpan >= asyncSpan {
		t.Fatalf("GR(2) replay span %.2f not below async %.2f under load", grSpan, asyncSpan)
	}
}

func TestParallelDeterminism(t *testing.T) {
	a, err := RunParallel(parCfg(core.NonStrict, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunParallel(parCfg(core.NonStrict, 2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Prob != b.Prob || a.Completion != b.Completion || a.Messages != b.Messages ||
		a.Rollbacks != b.Rollbacks || a.Gambles != b.Gambles || a.Iters != b.Iters {
		t.Fatalf("same-seed parallel runs differ:\n%+v\n%+v", a, b)
	}
}

func TestParallelTable2Network(t *testing.T) {
	bn := Table2Networks()[3] // Hailfinder-like, smallest inference time
	cfg := ParallelConfig{
		Net:       bn,
		Query:     DefaultQuery(bn),
		P:         2,
		Mode:      core.NonStrict,
		Age:       10,
		Precision: 0.03, // loose for test speed
		MaxIters:  60000,
		Seed:      23,
		Calib:     DefaultCalibration(),
	}
	res, err := RunParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReachedPrecision {
		t.Fatalf("did not converge: %+v", res)
	}
	if res.EdgeCut <= 0 {
		t.Fatal("partition produced no interface edges")
	}
	serial := InferSerial(bn, cfg.Query, 0.03, 23, DefaultCalibration(), 60000)
	if math.Abs(res.Prob-serial.Prob) > 0.06 {
		t.Fatalf("parallel %v vs serial %v", res.Prob, serial.Prob)
	}
}

func TestParallelMaxItersCap(t *testing.T) {
	cfg := parCfg(core.Async, 2)
	cfg.Precision = 1e-9
	cfg.MaxIters = 1500
	res, err := RunParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReachedPrecision {
		t.Fatal("impossible precision claimed reached")
	}
	if res.Iters > cfg.MaxIters+1 {
		t.Fatalf("coordinator ran %d iterations past the cap", res.Iters)
	}
}

func TestParallelRandomDefaultsIncreaseGambleFailures(t *testing.T) {
	good := parCfg(core.Async, 2)
	bad := good
	bad.RandomDefaults = true
	g, err := RunParallel(good)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunParallel(bad)
	if err != nil {
		t.Fatal(err)
	}
	if g.Gambles == 0 || b.Gambles == 0 {
		t.Skip("no gambles occurred; network too fast for this seed")
	}
	gRate := float64(g.Conflicts) / float64(g.Gambles)
	bRate := float64(b.Conflicts) / float64(b.Gambles)
	if bRate < gRate {
		t.Fatalf("random defaults conflicted less than informed ones: %v vs %v", bRate, gRate)
	}
}

func TestParallelThreeAndFourPartitions(t *testing.T) {
	// The sampler must stay correct with k-way partitions: multi-hop
	// sync phases, corrections cascading across middle partitions.
	bn := Table2Networks()[0]
	q := DefaultQuery(bn)
	want := InferSerial(bn, q, 0.03, 31, DefaultCalibration(), 100000)
	for _, p := range []int{3, 4} {
		for _, mode := range []core.Mode{core.Sync, core.Async, core.NonStrict} {
			cfg := ParallelConfig{
				Net: bn, Query: q, P: p, Mode: mode, Age: 8,
				Precision: 0.03, MaxIters: 100000, Seed: 31,
				Calib: DefaultCalibration(),
			}
			res, err := RunParallel(cfg)
			if err != nil {
				t.Fatalf("P=%d %v: %v", p, mode, err)
			}
			// The uncontrolled asynchronous sampler may legitimately
			// burn its budget on rollback replays at k-way partitions —
			// that is the paper's pathology — but it must terminate
			// cleanly; the controlled modes must converge.
			if mode != core.Async && !res.ReachedPrecision {
				t.Fatalf("P=%d %v did not converge: %+v", p, mode, res)
			}
			if res.ReachedPrecision && math.Abs(res.Prob-want.Prob) > 0.08 {
				t.Fatalf("P=%d %v estimate %v, serial %v", p, mode, res.Prob, want.Prob)
			}
		}
	}
}

func TestParallelSwitchFasterThanBus(t *testing.T) {
	bn := Table2Networks()[0]
	q := DefaultQuery(bn)
	cfg := ParallelConfig{
		Net: bn, Query: q, P: 2, Mode: core.Sync,
		Precision: 0.04, MaxIters: 40000, Seed: 3,
		Calib: DefaultCalibration(),
	}
	bus, err := RunParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sw := netsim.DefaultSwitchConfig()
	cfg.SwitchCfg = &sw
	fast, err := RunParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The fast fabric must help; the improvement is bounded because the
	// sync sampler's per-phase message rounds are dominated by software
	// send/receive overheads, which a faster wire does not remove — the
	// same reason the paper expects reduced-but-present benefits on the
	// SP2 switch.
	if fast.Completion >= bus.Completion {
		t.Fatalf("switch sync (%v) not faster than bus sync (%v)",
			fast.Completion, bus.Completion)
	}
}

func TestParallelBatchingReducesMessages(t *testing.T) {
	bn := Table2Networks()[2]
	q := DefaultQuery(bn)
	run := func(batch int64) ParallelResult {
		res, err := RunParallel(ParallelConfig{
			Net: bn, Query: q, P: 2, Mode: core.NonStrict, Age: 16,
			Batch: batch, Precision: 0.04, MaxIters: 20000, Seed: 9,
			Calib: DefaultCalibration(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	b1, b16 := run(1), run(16)
	if b16.Messages*3 > b1.Messages {
		t.Fatalf("batch 16 did not cut messages at least 3x: %d vs %d", b16.Messages, b1.Messages)
	}
}

func TestParallelEvidenceAcrossPartitions(t *testing.T) {
	// Multiple evidence nodes spread over both partitions: the
	// evidence-bit stream and the local checks must compose.
	bn := Table2Networks()[0]
	defs := bn.Defaults(2000, 7)
	q := Query{
		Node:  bn.N() - 1,
		State: 0,
		Evidence: map[int]int{
			3:           defs[3],
			bn.N() / 2:  defs[bn.N()/2],
			bn.N() - 10: defs[bn.N()-10],
		},
	}
	serial := InferSerial(bn, q, 0.03, 19, DefaultCalibration(), 150000)
	par, err := RunParallel(ParallelConfig{
		Net: bn, Query: q, P: 2, Mode: core.NonStrict, Age: 10,
		Precision: 0.03, MaxIters: 150000, Seed: 19, Calib: DefaultCalibration(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Converged || !par.ReachedPrecision {
		t.Fatalf("convergence: serial=%v parallel=%v", serial.Converged, par.ReachedPrecision)
	}
	if math.Abs(serial.Prob-par.Prob) > 0.08 {
		t.Fatalf("serial %v vs parallel %v", serial.Prob, par.Prob)
	}
}

func TestParallelLongRunPrunesLedger(t *testing.T) {
	// A long asynchronous run must prune its rollback ledger (the test
	// would OOM-ish/grow unboundedly otherwise); correctness must hold.
	cfg := parCfg(core.Async, 2)
	cfg.Precision = 1e-9 // force a long run
	cfg.MaxIters = 6000
	res, err := RunParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters < 4000 {
		t.Fatalf("expected a long run, got %d iterations", res.Iters)
	}
	want := Exact(Figure1(), Query{Node: 3, State: 1, Evidence: map[int]int{0: 1}})
	if math.Abs(res.Prob-want) > 0.1 {
		t.Fatalf("pruned run estimate %v far from exact %v", res.Prob, want)
	}
}
