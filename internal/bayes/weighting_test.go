package bayes

import (
	"math"
	"testing"
)

func TestLWConvergesToExact(t *testing.T) {
	bn := Figure1()
	q := Query{Node: 3, State: 1, Evidence: map[int]int{0: 1}}
	want := Exact(bn, q)
	res := InferSerialLW(bn, q, 0.01, 4, DefaultCalibration(), 2_000_000)
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if math.Abs(res.Prob-want) > 0.02 {
		t.Fatalf("LW estimate %v, exact %v", res.Prob, want)
	}
	// effN <= iters up to floating-point rounding (equal weights give
	// exact equality).
	if res.EffN <= 0 || res.EffN > float64(res.Iters)+1 {
		t.Fatalf("effective N %v of %d iters", res.EffN, res.Iters)
	}
}

func TestLWBeatsRejectionUnderUnlikelyEvidence(t *testing.T) {
	bn := Figure1()
	// Evidence A=true has probability 0.2; rejection sampling throws
	// away 80% of samples, LW none.
	q := Query{Node: 3, State: 1, Evidence: map[int]int{0: 1}}
	ls := InferSerial(bn, q, 0.015, 9, DefaultCalibration(), 2_000_000)
	lw := InferSerialLW(bn, q, 0.015, 9, DefaultCalibration(), 2_000_000)
	if !ls.Converged || !lw.Converged {
		t.Fatalf("runs did not converge: %+v %+v", ls, lw)
	}
	if lw.Iters >= ls.Iters {
		t.Fatalf("LW needed %d iterations, rejection sampling %d; LW should need fewer", lw.Iters, ls.Iters)
	}
	if math.Abs(lw.Prob-ls.Prob) > 0.04 {
		t.Fatalf("the two estimators disagree: %v vs %v", lw.Prob, ls.Prob)
	}
}

func TestLWNoEvidenceWeightsAreOne(t *testing.T) {
	bn := Figure1()
	q := Query{Node: 1, State: 1}
	res := InferSerialLW(bn, q, 0.02, 5, DefaultCalibration(), 500_000)
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	// With no evidence every weight is 1, so effN == iters.
	if math.Abs(res.EffN-float64(res.Iters)) > 0.5 {
		t.Fatalf("effN %v != iters %d with unit weights", res.EffN, res.Iters)
	}
	if math.Abs(res.Prob-0.22) > 0.02 {
		t.Fatalf("p(B=t) = %v, want ~0.22", res.Prob)
	}
}

func TestLWDeterministic(t *testing.T) {
	bn := Table2Networks()[1]
	q := DefaultQuery(bn)
	a := InferSerialLW(bn, q, 0.03, 6, DefaultCalibration(), 50_000)
	b := InferSerialLW(bn, q, 0.03, 6, DefaultCalibration(), 50_000)
	if a != b {
		t.Fatalf("LW nondeterministic:\n%+v\n%+v", a, b)
	}
}

func TestLWRespectsCap(t *testing.T) {
	bn := Figure1()
	res := InferSerialLW(bn, Query{Node: 3, State: 1}, 1e-9, 1, DefaultCalibration(), 400)
	if res.Converged || res.Iters != 400 {
		t.Fatalf("cap not honored: %+v", res)
	}
}
