package bayes

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFigure1Structure(t *testing.T) {
	bn := Figure1()
	if bn.N() != 5 || bn.Edges() != 5 {
		t.Fatalf("figure1: %d nodes %d edges", bn.N(), bn.Edges())
	}
	if err := bn.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper's explicit numbers: p(A=true)=0.20 and
	// p(D=true | B=true, C=true)=0.80.
	if bn.Nodes[0].CPT[0][1] != 0.20 {
		t.Fatalf("p(A=true) = %v", bn.Nodes[0].CPT[0][1])
	}
	d := bn.Nodes[3]
	if d.CPT[3][1] != 0.80 { // row 3 = (B=true, C=true)
		t.Fatalf("p(D=t|B=t,C=t) = %v", d.CPT[3][1])
	}
}

func TestValidateCatchesBadNetworks(t *testing.T) {
	cases := []struct {
		name string
		bn   *Network
	}{
		{"non-topological parent", &Network{Nodes: []Node{
			{Name: "x", States: 2, Parents: []int{1}, CPT: [][]float64{{0.5, 0.5}, {0.5, 0.5}}},
			{Name: "y", States: 2, CPT: [][]float64{{0.5, 0.5}}},
		}}},
		{"wrong CPT rows", &Network{Nodes: []Node{
			{Name: "x", States: 2, CPT: [][]float64{{0.5, 0.5}, {0.5, 0.5}}},
		}}},
		{"row does not sum to 1", &Network{Nodes: []Node{
			{Name: "x", States: 2, CPT: [][]float64{{0.5, 0.4}}},
		}}},
		{"negative probability", &Network{Nodes: []Node{
			{Name: "x", States: 2, CPT: [][]float64{{1.5, -0.5}}},
		}}},
		{"one state", &Network{Nodes: []Node{
			{Name: "x", States: 1, CPT: [][]float64{{1}}},
		}}},
	}
	for _, c := range cases {
		if err := c.bn.Validate(); err == nil {
			t.Errorf("%s: Validate accepted it", c.name)
		}
	}
}

func TestComboIndex(t *testing.T) {
	bn := Figure1()
	vals := make([]int, 5)
	vals[1], vals[2] = 1, 0 // B=true, C=false
	if got := bn.comboIndex(3, vals); got != 2 {
		t.Fatalf("combo(B=t,C=f) = %d, want 2", got)
	}
	vals[1], vals[2] = 1, 1
	if got := bn.comboIndex(3, vals); got != 3 {
		t.Fatalf("combo(B=t,C=t) = %d, want 3", got)
	}
}

func TestSampleMarginals(t *testing.T) {
	bn := Figure1()
	rng := rand.New(rand.NewSource(1))
	values := make([]int, bn.N())
	const n = 50000
	countA := 0
	for i := 0; i < n; i++ {
		bn.SampleInto(values, rng)
		countA += values[0]
	}
	pA := float64(countA) / n
	if math.Abs(pA-0.20) > 0.01 {
		t.Fatalf("sampled p(A=true) = %v, want 0.20", pA)
	}
}

func TestSampleNodeAtDeterministic(t *testing.T) {
	bn := Figure1()
	vals := make([]int, 5)
	vals[1], vals[2] = 1, 1
	a := bn.SampleNodeAt(3, 42, vals, 7)
	b := bn.SampleNodeAt(3, 42, vals, 7)
	if a != b {
		t.Fatal("same (node, iter, parents, seed) gave different draws")
	}
	// Different iterations must give an independent stream: over many
	// iterations the frequency must approach the CPT.
	hits := 0
	const n = 20000
	for it := int64(0); it < n; it++ {
		hits += bn.SampleNodeAt(3, it, vals, 7)
	}
	p := float64(hits) / n
	if math.Abs(p-0.80) > 0.01 {
		t.Fatalf("replayable draw frequency %v, want 0.80", p)
	}
}

func TestSampleNodeAtParentSensitivity(t *testing.T) {
	bn := Figure1()
	valsTT := []int{0, 1, 1, 0, 0}
	valsFF := []int{0, 0, 0, 0, 0}
	same := 0
	for it := int64(0); it < 200; it++ {
		if bn.SampleNodeAt(3, it, valsTT, 7) == bn.SampleNodeAt(3, it, valsFF, 7) {
			same++
		}
	}
	// p(D=t|t,t)=0.8 vs p(D=t|f,f)=0.05: agreement should be ~0.23, far
	// from 1. If the combo is not hashed in, draws would coincide often.
	if same > 120 {
		t.Fatalf("draws insensitive to parent change: %d/200 equal", same)
	}
}

func TestDefaults(t *testing.T) {
	bn := Figure1()
	defs := bn.Defaults(5000, 1)
	// p(A=false)=0.8: the paper says false is A's default.
	if defs[0] != 0 {
		t.Fatalf("default for A = %d, want 0 (false)", defs[0])
	}
	if len(defs) != 5 {
		t.Fatalf("defaults length %d", len(defs))
	}
	// Determinism.
	defs2 := bn.Defaults(5000, 1)
	for i := range defs {
		if defs[i] != defs2[i] {
			t.Fatal("Defaults not deterministic")
		}
	}
}

func TestRandomNetworksMatchTable2(t *testing.T) {
	nets := Table2Networks()
	want := []struct {
		name   string
		n      int
		epn    float64
		states int
	}{
		{"A", 54, 2.2, 2},
		{"AA", 54, 2.4, 2},
		{"C", 54, 2.0, 2},
		{"Hailfinder", 56, 1.2, 4},
	}
	for i, wnt := range want {
		bn := nets[i]
		if bn.Name != wnt.name || bn.N() != wnt.n || bn.MaxStates() != wnt.states {
			t.Errorf("%s: n=%d states=%d", bn.Name, bn.N(), bn.MaxStates())
		}
		if math.Abs(bn.EdgesPerNode()-wnt.epn) > 0.1 {
			t.Errorf("%s: edges/node = %v, want ~%v", bn.Name, bn.EdgesPerNode(), wnt.epn)
		}
		if err := bn.Validate(); err != nil {
			t.Errorf("%s: %v", bn.Name, err)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random("x", 30, 2.0, 2, 5)
	b := Random("x", 30, 2.0, 2, 5)
	if a.Edges() != b.Edges() {
		t.Fatal("same seed, different structure")
	}
	for i := range a.Nodes {
		for c := range a.Nodes[i].CPT {
			for s := range a.Nodes[i].CPT[c] {
				if a.Nodes[i].CPT[c][s] != b.Nodes[i].CPT[c][s] {
					t.Fatal("same seed, different CPTs")
				}
			}
		}
	}
}

func TestGraphExport(t *testing.T) {
	bn := Figure1()
	g := bn.Graph()
	if g.N() != 5 || g.Edges() != 5 {
		t.Fatalf("graph %d nodes %d edges", g.N(), g.Edges())
	}
}

func TestQueryMatches(t *testing.T) {
	q := Query{Node: 3, State: 1, Evidence: map[int]int{0: 1, 4: 0}}
	if !q.Matches([]int{1, 0, 0, 1, 0}) {
		t.Fatal("should match")
	}
	if q.Matches([]int{0, 0, 0, 1, 0}) {
		t.Fatal("should not match")
	}
	if !(Query{Node: 0, State: 0}).Matches([]int{0}) {
		t.Fatal("empty evidence should always match")
	}
}

func TestDefaultQuery(t *testing.T) {
	bn := Table2Networks()[0]
	q := DefaultQuery(bn)
	if q.Node != bn.N()-1 || len(q.Evidence) != 1 {
		t.Fatalf("query = %+v", q)
	}
	for n := range q.Evidence {
		if n == q.Node {
			t.Fatal("evidence on the query node")
		}
	}
}

func TestExactFigure1(t *testing.T) {
	bn := Figure1()
	// Hand-computed: p(B=t) = p(A=t)*0.7 + p(A=f)*0.1 = 0.22.
	pB := Exact(bn, Query{Node: 1, State: 1})
	if math.Abs(pB-0.22) > 1e-12 {
		t.Fatalf("exact p(B=t) = %v, want 0.22", pB)
	}
	// Conditioning must move the posterior: p(A=t | B=t) =
	// 0.2*0.7/0.22 ~ 0.6364.
	pAgB := Exact(bn, Query{Node: 0, State: 1, Evidence: map[int]int{1: 1}})
	if math.Abs(pAgB-0.2*0.7/0.22) > 1e-12 {
		t.Fatalf("exact p(A=t|B=t) = %v", pAgB)
	}
}

func TestExactTooLargePanics(t *testing.T) {
	bn := Random("big", 54, 2.0, 2, 9)
	defer func() {
		if recover() == nil {
			t.Error("Exact on 2^54 joint did not panic")
		}
	}()
	Exact(bn, Query{Node: 0, State: 0})
}

// Property: sampled marginal of a root matches its CPT within sampling
// error, for random binary roots.
func TestRootMarginalProperty(t *testing.T) {
	f := func(pRaw uint8, seed int64) bool {
		p := 0.05 + 0.9*float64(pRaw)/255
		bn := &Network{Nodes: []Node{{Name: "r", States: 2, CPT: [][]float64{{1 - p, p}}}}}
		rng := rand.New(rand.NewSource(seed))
		vals := make([]int, 1)
		hits := 0
		const n = 4000
		for i := 0; i < n; i++ {
			bn.SampleInto(vals, rng)
			hits += vals[0]
		}
		got := float64(hits) / n
		return math.Abs(got-p) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
