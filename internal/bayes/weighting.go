package bayes

import (
	"math"
	"math/rand"

	"nscc/internal/metrics"
	"nscc/internal/sim"
)

// Likelihood weighting is the other classical approximate-inference
// algorithm in the logic-sampling family (Pearl [15] discusses both):
// instead of rejecting samples that contradict the evidence, evidence
// nodes are clamped to their observed values and each sample is
// weighted by the likelihood of that evidence under the sampled
// parents. Every sample contributes, so convergence under unlikely
// evidence is far faster than rejection sampling's. The repository
// includes it as the natural serial-baseline extension: the paper's
// parallel machinery (interface exchange, gambling, rollback) applies
// to it unchanged, since only the per-node sampling rule differs.

// LWResult reports a likelihood-weighting run.
type LWResult struct {
	Prob      float64
	HalfWidth float64 // 90% CI using the effective sample size
	Iters     int64
	EffN      float64 // Kish effective sample size of the weights
	Time      sim.Duration
	Converged bool
}

// InferSerialLW estimates the query probability by likelihood weighting
// until the 90% CI half-width (computed on the Kish effective sample
// size) reaches prec, or maxIters samples. Deterministic in seed.
func InferSerialLW(bn *Network, q Query, prec float64, seed int64, calib Calibration, maxIters int64) LWResult {
	rng := rand.New(rand.NewSource(seed))
	jit := calib.NewJitterer(rng)
	l := newLUT(bn, q)
	values := make([]int, bn.N())
	var res LWResult
	var wSum, w2Sum, hitSum float64
	iterCost := calib.IterCost(bn.N()).Seconds()
	for res.Iters < maxIters {
		w := l.sampleWeighted(values, rng)
		res.Iters++
		res.Time += sim.DurationOf(iterCost * jit.Next())
		wSum += w
		w2Sum += w * w
		if values[q.Node] == q.State {
			hitSum += w
		}
		if res.Iters%checkEvery == 0 && wSum > 0 && w2Sum > 0 {
			p := hitSum / wSum
			effN := wSum * wSum / w2Sum
			if metrics.ProportionCI90HalfWidth(p, int(effN)) <= prec {
				res.Converged = true
				break
			}
		}
	}
	if wSum > 0 {
		res.Prob = hitSum / wSum
		res.EffN = wSum * wSum / w2Sum
		res.HalfWidth = metrics.ProportionCI90HalfWidth(res.Prob, int(res.EffN))
	} else {
		res.HalfWidth = math.Inf(1)
	}
	return res
}

// sampleWeighted draws one sample with the evidence nodes clamped,
// returning the likelihood weight (the product of the evidence values'
// conditional probabilities given their sampled parents).
func (bn *Network) sampleWeighted(values []int, evidence map[int]int, rng *rand.Rand) float64 {
	w := 1.0
	for i := range bn.Nodes {
		dist := bn.Nodes[i].CPT[bn.comboIndex(i, values)]
		if ev, ok := evidence[i]; ok {
			values[i] = ev
			w *= dist[ev]
		} else {
			values[i] = drawFrom(dist, rng.Float64())
		}
	}
	return w
}
