package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// rawconcScope lists the package-path prefixes where simulated
// processes live: inside them, sim.Proc coroutines are the only legal
// concurrency. The simulation substrate itself (internal/sim, which
// implements coroutines with goroutines and channels) and the host-side
// worker pool (internal/runner) are deliberately outside the scope.
var rawconcScope = []string{
	"nscc/internal/core",
	"nscc/internal/pvm",
	"nscc/internal/netsim",
	"nscc/internal/ga",
	"nscc/internal/bayes",
	"nscc/internal/faults",
	"nscc/internal/rollback",
	"nscc/internal/partition",
	"nscc/internal/exper",
	"nscc/internal/graph",
}

// Rawconc reports raw Go concurrency — go statements, channels,
// select, package sync/atomic — in simulated-process code. Simulated
// processes must schedule exclusively through sim.Proc coroutines: the
// engine runs exactly one process at a time and replays event order
// deterministically, while a raw goroutine or channel hands ordering to
// the host scheduler and silently breaks replay (or deadlocks the
// cooperative engine).
var Rawconc = &Analyzer{
	Name: "rawconc",
	Doc: "raw goroutines/channels/sync in simulated-process code: " +
		"all concurrency must go through sim.Proc coroutines",
	Match: func(path string) bool { return pathInScope(path, rawconcScope) },
	Run: func(p *Pass) {
		p.Inspect(func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				p.Reportf(n.Pos(), "go statement in simulated-process code; spawn a sim.Proc coroutine instead")
			case *ast.SendStmt:
				p.Reportf(n.Pos(), "channel send in simulated-process code; communicate through simulated messages")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					p.Reportf(n.Pos(), "channel receive in simulated-process code; communicate through simulated messages")
				}
			case *ast.SelectStmt:
				p.Reportf(n.Pos(), "select in simulated-process code; block through the simulation engine")
			case *ast.ChanType:
				p.Reportf(n.Pos(), "channel type in simulated-process code; use simulated messages or events")
			case *ast.SelectorExpr:
				// Qualified references only (sync.Mutex, atomic.AddInt64):
				// method calls on an already-declared value would re-flag
				// the one offending declaration on every use.
				id, ok := n.X.(*ast.Ident)
				if !ok {
					return true
				}
				if _, isPkg := p.TypesInfo.Uses[id].(*types.PkgName); !isPkg {
					return true
				}
				obj := p.TypesInfo.Uses[n.Sel]
				if path := pkgPathOf(obj); path == "sync" || path == "sync/atomic" {
					p.Reportf(n.Pos(),
						"%s.%s in simulated-process code; the engine is single-threaded by construction",
						path, obj.Name())
				}
			}
			return true
		})
	},
}
