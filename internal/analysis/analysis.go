package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string // short lower-case identifier; also the directive suffix
	Doc  string // one-paragraph description, shown by nscc-lint -help

	// Match, if non-nil, restricts which packages the driver applies
	// the analyzer to, by import path. Nil applies it everywhere.
	// Fixture tests bypass Match: it scopes repository runs only.
	Match func(importPath string) bool

	// Run inspects one package through the pass and reports findings
	// via pass.Reportf.
	Run func(*Pass)
}

// A Pass carries one analyzer's view of one type-checked package and
// collects its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
	// suppress maps filename -> set of lines bearing an
	// //nscc:<analyzer> directive for this pass's analyzer.
	suppress map[string]map[int]bool
}

// A Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// Pos renders the diagnostic's position as file:line:col.
func (d Diagnostic) Pos() string {
	return fmt.Sprintf("%s:%d:%d", d.File, d.Line, d.Col)
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos(), d.Analyzer, d.Message)
}

// NewPass prepares a pass of one analyzer over one package, including
// the directive map that implements //nscc:<name> suppression.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Pass {
	p := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info,
		suppress: map[string]map[int]bool{}}
	directive := "//nscc:" + a.Name
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
					pos := fset.Position(c.Pos())
					lines := p.suppress[pos.Filename]
					if lines == nil {
						lines = map[int]bool{}
						p.suppress[pos.Filename] = lines
					}
					lines[pos.Line] = true
				}
			}
		}
	}
	return p
}

// Reportf records one finding at pos unless an //nscc:<analyzer>
// directive on the same line or the line immediately above allows it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if lines := p.suppress[position.Filename]; lines != nil {
		if lines[position.Line] || lines[position.Line-1] {
			return
		}
	}
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Inspect walks every file of the package in depth-first order.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// Diagnostics returns the findings reported so far.
func (p *Pass) Diagnostics() []Diagnostic { return p.diags }

// All returns the repository's analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{Wallclock, Globalrand, Rawconc, Maporder}
}

// RunAnalyzers applies every applicable analyzer to every loaded
// package and returns the merged findings in position order.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.ImportPath) {
				continue
			}
			pass := NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
			a.Run(pass)
			diags = append(diags, pass.Diagnostics()...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Col != diags[j].Col {
			return diags[i].Col < diags[j].Col
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// pkgPathOf returns the import path of the package an object belongs
// to, or "" for builtins and package-less objects.
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}
