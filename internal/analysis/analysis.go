package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string // short lower-case identifier; also the directive suffix
	Doc  string // one-paragraph description, shown by nscc-lint -help

	// Directive, if non-empty, overrides the suppression-directive
	// suffix (default Name): staleflow findings, for instance, are
	// discharged by //nscc:tolerates-stale rather than //nscc:staleflow,
	// because the annotation is an assertion about the flow, not a
	// request to look away.
	Directive string

	// Match, if non-nil, restricts which packages the driver applies
	// the analyzer to, by import path. Nil applies it everywhere.
	// Fixture tests bypass Match: it scopes repository runs only.
	Match func(importPath string) bool

	// Run inspects one package through the pass and reports findings
	// via pass.Reportf.
	Run func(*Pass)
}

// DirectiveName returns the suffix of the //nscc: directive that
// suppresses this analyzer's findings.
func (a *Analyzer) DirectiveName() string {
	if a.Directive != "" {
		return a.Directive
	}
	return a.Name
}

// A Pass carries one analyzer's view of one type-checked package and
// collects its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Prog is the whole loaded program (every package of the lint run),
	// for interprocedural analyzers. Always non-nil: single-package
	// fixture runs see a one-package program.
	Prog *Program

	diags []Diagnostic
	// suppress maps filename -> set of lines bearing an
	// //nscc:<directive> comment for this pass's analyzer.
	suppress map[string]map[int]bool

	// OnSuppress, if set, observes every finding a directive swallowed
	// (the unuseddirective probe uses it to learn which directives pull
	// their weight). The position is the suppressed finding's.
	OnSuppress func(pos token.Position)
}

// A Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// Pos renders the diagnostic's position as file:line:col.
func (d Diagnostic) Pos() string {
	return fmt.Sprintf("%s:%d:%d", d.File, d.Line, d.Col)
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos(), d.Analyzer, d.Message)
}

// NewPass prepares a pass of one analyzer over one package, including
// the directive map that implements //nscc:<name> suppression. prog
// may be nil, in which case a one-package program is built on the spot
// (fixture convenience); repository drivers share one Program across
// passes.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, prog *Program) *Pass {
	p := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info,
		Prog: prog, suppress: map[string]map[int]bool{}}
	if p.Prog == nil {
		p.Prog = NewProgram([]*Package{{
			ImportPath: pkg.Path(), Fset: fset, Files: files, Types: pkg, Info: info,
		}})
	}
	name := a.DirectiveName()
	for _, pc := range collectDirectives(fset, files) {
		if pc.dir == nil || !pc.dir.Has(name) {
			continue
		}
		lines := p.suppress[pc.pos.Filename]
		if lines == nil {
			lines = map[int]bool{}
			p.suppress[pc.pos.Filename] = lines
		}
		lines[pc.pos.Line] = true
	}
	return p
}

// Reportf records one finding at pos unless an //nscc:<directive>
// comment on the same line or the line immediately above allows it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if lines := p.suppress[position.Filename]; lines != nil {
		if lines[position.Line] || lines[position.Line-1] {
			if p.OnSuppress != nil {
				p.OnSuppress(position)
			}
			return
		}
	}
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Inspect walks every file of the package in depth-first order.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// Diagnostics returns the findings reported so far.
func (p *Pass) Diagnostics() []Diagnostic { return p.diags }

// All returns the repository's analyzer suite: the four syntactic
// checks, the three interprocedural dataflow analyzers, and the
// directive hygiene check.
func All() []*Analyzer {
	return []*Analyzer{
		Wallclock, Globalrand, Rawconc, Maporder,
		Staleflow, Commute, Detguard, Unuseddirective,
	}
}

// ByName returns the analyzer with the given name from All, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAnalyzers applies every applicable analyzer to every loaded
// package and returns the merged findings in position order. One
// Program (call graph + function summaries) is shared by every pass.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	prog := NewProgram(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.ImportPath) {
				continue
			}
			pass := NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, prog)
			a.Run(pass)
			diags = append(diags, pass.Diagnostics()...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Col != diags[j].Col {
			return diags[i].Col < diags[j].Col
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// pkgPathOf returns the import path of the package an object belongs
// to, or "" for builtins and package-less objects.
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}
