package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nscc/internal/metrics"
)

// parsePackage type-checks one in-memory source file into a *Package.
func parsePackage(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "recon.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	conf := types.Config{}
	tpkg, err := conf.Check("recon", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{ImportPath: "recon", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

const reconSrc = `package recon

//nscc:tolerates-stale loc=cold loc=tepid -- order-free accumulation

func Sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
`

func TestStaleDischarges(t *testing.T) {
	pkg := parsePackage(t, reconSrc)
	got := StaleDischarges([]*Package{pkg})
	for _, name := range []string{"cold", "tepid"} {
		if _, ok := got[name]; !ok {
			t.Errorf("discharge %q not collected", name)
		}
	}
	if len(got) != 2 {
		t.Errorf("collected %d discharges, want 2: %v", len(got), got)
	}
}

func TestReconcileRaceReport(t *testing.T) {
	pkg := parsePackage(t, reconSrc)
	rep := &metrics.RaceReport{
		Schema: metrics.RaceReportSchema,
		Locations: []metrics.LocationRace{
			{ID: 0, Name: "cold", Reads: 10, Unbounded: 4},     // discharged
			{ID: 1, Name: "hot", Reads: 10, Unbounded: 2},      // NOT discharged -> finding
			{ID: 2, Name: "warm", Reads: 10, Synchronized: 10}, // never raced
		},
	}
	diags := ReconcileRaceReport([]*Package{pkg}, rep, "race.json")
	if len(diags) != 1 {
		t.Fatalf("%d findings, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "reconcile" || !strings.Contains(d.Message, `"hot"`) ||
		!strings.Contains(d.Message, "loc=hot") {
		t.Errorf("unexpected finding: %+v", d)
	}
	if d.File != "race.json" {
		t.Errorf("finding attributed to %q, want race.json", d.File)
	}
}

func TestLoadRaceReport(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	good := write("good.json", `{"schema":"`+metrics.RaceReportSchema+`","totals":{"writes":1,"reads":1,"synchronized":1,"tolerated_stale":0,"unbounded":0},"locations":[]}`)
	rep, err := LoadRaceReport(good)
	if err != nil {
		t.Fatalf("good report: %v", err)
	}
	if rep.Totals.Writes != 1 {
		t.Errorf("totals not decoded: %+v", rep.Totals)
	}

	if _, err := LoadRaceReport(write("bad.json", `{nope`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := LoadRaceReport(write("schema.json", `{"schema":"other/v1"}`)); err == nil {
		t.Error("wrong schema accepted")
	}
	if _, err := LoadRaceReport(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
}
