// Package a is the loader fixture's dependency package.
package a

// Helper is called across packages by loadmod/c; the loader test
// asserts the call resolves to this body (object identity across
// directly-checked packages).
func Helper(x int) int { return x + 1 }
