//go:build neverbuilt

// This file carries a build tag no configuration sets: go list must
// exclude it from GoFiles, and the loader must not parse it. The
// deliberate syntax error below proves the point — loading would fail
// if this file were ever read.
package a

func broken( {
