// Package b holds only test files: go list reports it with no
// GoFiles, and the loader must skip it entirely.
package b

import "testing"

func TestNothing(t *testing.T) {}
