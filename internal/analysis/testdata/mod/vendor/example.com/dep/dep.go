// Vendored code must never be matched by ./... patterns; the loader
// test asserts this package is absent from the load set.
package dep

func Vendored() {}
