// Package c imports loadmod/a so the loader test can verify that
// cross-package calls resolve to the directly-checked dependency, not
// a source-importer duplicate.
package c

import "loadmod/a"

func Caller() int { return a.Helper(41) }
