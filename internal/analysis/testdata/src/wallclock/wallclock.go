// Package wallclock is the golden fixture of the wallclock analyzer.
package wallclock

import "time"

// bad exercises every banned wall-clock observation.
func bad() time.Duration {
	start := time.Now() // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond)                // want `time\.Sleep reads the wall clock`
	<-time.After(time.Second)                   // want `time\.After reads the wall clock`
	_ = time.Tick(time.Second)                  // want `time\.Tick reads the wall clock`
	_ = time.NewTimer(time.Second)              // want `time\.NewTimer reads the wall clock`
	_ = time.NewTicker(time.Second)             // want `time\.NewTicker reads the wall clock`
	_ = time.Until(start.Add(time.Second))      // want `time\.Until reads the wall clock`
	return time.Since(start)                    // want `time\.Since reads the wall clock`
}

// good uses only replay-safe parts of package time: durations,
// conversions, and arithmetic never observe the host clock.
func good() time.Duration {
	d := 3 * time.Millisecond
	d += time.Duration(42) * time.Second
	_ = d.Seconds()
	_ = time.Unix(0, int64(d)) // constructing a Time from data is fine
	return d
}

// allowed demonstrates directive suppression: a host-side meter may
// read the wall clock when it says so.
func allowed() time.Duration {
	start := time.Now() //nscc:wallclock -- host-side meter
	//nscc:wallclock -- directive on the preceding line also suppresses
	elapsed := time.Since(start)
	return elapsed
}
