// Package globalrand is the golden fixture of the globalrand analyzer.
package globalrand

import "math/rand"

// bad draws from the process-global source and seeds from constants.
func bad(seed int64) {
	_ = rand.Int()                              // want `rand\.Int draws from the process-global source`
	_ = rand.Intn(10)                           // want `rand\.Intn draws from the process-global source`
	_ = rand.Float64()                          // want `rand\.Float64 draws from the process-global source`
	_ = rand.Perm(8)                            // want `rand\.Perm draws from the process-global source`
	rand.Shuffle(4, func(i, j int) {})          // want `rand\.Shuffle draws from the process-global source`
	rand.Seed(99)                               // want `rand\.Seed draws from the process-global source`
	_ = rand.NewSource(42)                      // want `rand\.NewSource with constant seed 42`
	_ = rand.New(rand.NewSource(1234))          // want `rand\.NewSource with constant seed 1234`
	const fixed = int64(7)
	_ = rand.NewSource(fixed) // want `rand\.NewSource with constant seed 7`
}

// good derives every stream from a run seed: explicit sources with
// non-constant seeds, and draws only through their methods.
func good(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	derived := rand.New(rand.NewSource(seed ^ 0x9a27))
	_ = derived.Intn(10)
	return rng.Float64()
}

// allowed demonstrates directive suppression.
func allowed() int {
	return rand.Int() //nscc:globalrand -- demo code, determinism not required
}
