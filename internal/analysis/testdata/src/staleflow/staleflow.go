// Package staleflow is the golden fixture for the stale-taint
// analyzer. It declares a structural stand-in for core.Node (the
// analyzer matches the receiver type name, not the import path) and
// exercises sources, propagation, every sink family, and every
// tolerant discharge.
package staleflow

import "fmt"

type Update struct {
	Value interface{}
	Iter  int64
}

type Location struct {
	ID   int
	Name string
}

type Node struct{ buf map[int]Update }

func (n *Node) Read(loc *Location) (Update, bool) { u, ok := n.buf[loc.ID]; return u, ok }

func (n *Node) GlobalRead(loc *Location, curIter, age int64) Update { return n.buf[loc.ID] }

type Task struct{}

func (t *Task) Send(dst, tag int, size int, data interface{}) {}

// --- sinks ---

func terminationGate(n *Node, loc *Location, iter int64) int {
	u := n.GlobalRead(loc, iter, 4)
	if u.Iter > 10 { // want `possibly-stale value \(GlobalRead at staleflow\.go:\d+\) gates an early return or break`
		return 1
	}
	for u.Iter < 5 { // want `possibly-stale value .* bounds a loop`
		u.Iter++
	}
	return 0
}

func indexSinks(n *Node, loc *Location, m map[int64]string, s []float64) {
	u, _ := n.Read(loc)
	_ = m[u.Iter] // want `possibly-stale value \(Read at staleflow\.go:\d+\) used as map key`
	_ = s[u.Iter] // want `possibly-stale value .* used as slice index`
}

func identitySinks(n *Node, loc *Location, t *Task, iter int64) {
	u := n.GlobalRead(loc, iter, 2)
	stale := int(u.Iter)
	_ = Location{ID: stale}   // want `possibly-stale value .* flows into a Location ID`
	t.Send(stale, 7, 64, nil) // want `possibly-stale value .* routes a message`
	t.Send(3, stale, 64, nil) // want `possibly-stale value .* routes a message`
	panic(fmt.Sprint(stale))  // want `possibly-stale value .* flows into a panic`
}

func outputSink(n *Node, loc *Location, iter int64) {
	u := n.GlobalRead(loc, iter, 1)
	fmt.Println(u.Value) // want `possibly-stale value .* flows into formatted output`
}

// --- interprocedural flows ---

func producer(n *Node, loc *Location, iter int64) int64 {
	u := n.GlobalRead(loc, iter, 3)
	return u.Iter
}

func viaReturn(n *Node, loc *Location, m map[int64]int) {
	v := producer(n, loc, 9)
	_ = m[v] // want `possibly-stale value .* used as map key`
}

func gateInside(v int64) int {
	if v > 42 {
		return 1
	}
	return 0
}

func viaParam(n *Node, loc *Location, iter int64) {
	u := n.GlobalRead(loc, iter, 2)
	gateInside(u.Iter) // want `possibly-stale value .* gates an early return or break inside gateInside`
}

// --- tolerant shapes: no findings ---

//nscc:commutative
func mergeMax(best *int64, cand int64) {
	if cand > *best {
		*best = cand
	}
}

func tolerantFlows(n *Node, loc *Location, iter int64) int64 {
	// Synchronized fetch: constant age 0 is strict coherence.
	u0 := n.GlobalRead(loc, iter, 0)
	if u0.Iter > 10 {
		return 1
	}

	u := n.GlobalRead(loc, iter, 8)
	var acc int64
	acc += u.Iter // order-independent accumulation discharges taint
	if acc > 100 {
		return acc
	}

	var best int64
	if u.Iter > best { // monotone max merge discharges taint
		best = u.Iter
	}
	if best > 50 {
		return best
	}

	mergeMax(&best, u.Iter) // commutative callee tolerates stale operands
	return 0
}

func annotatedSource(n *Node, loc *Location, m map[int64]int, iter int64) {
	u := n.GlobalRead(loc, iter, 4) //nscc:tolerates-stale -- bucketing by stale iter only skews telemetry
	_ = m[u.Iter]
}

func annotatedSink(n *Node, loc *Location, m map[int64]int, iter int64) {
	u := n.GlobalRead(loc, iter, 4)
	//nscc:tolerates-stale -- map is a scratch histogram, rebuilt each round
	_ = m[u.Iter]
}

// A stale-guarded continue only reorders work; not a termination sink.
func continueOK(n *Node, loc *Location, iter int64) {
	for i := 0; i < 10; i++ {
		u := n.GlobalRead(loc, iter, 2)
		if u.Iter < int64(i) {
			continue
		}
		_ = u
	}
}
