// Package maporder is the golden fixture of the maporder analyzer.
package maporder

import (
	"fmt"
	"sort"
)

// bad lets the map iteration order escape three different ways.
func bad(m map[string]int, out chan<- string) []string {
	var keys []string
	for k := range m { // want `map iteration order reaches an append`
		keys = append(keys, k)
	}
	for k, v := range m { // want `map iteration order reaches fmt\.Printf output`
		fmt.Printf("%s=%d\n", k, v)
	}
	for k := range m { // want `map iteration order reaches a channel send`
		out <- k
	}
	return keys
}

// nested: the outer loop's order escapes through the append even though
// the append sits in an inner (slice) loop.
func nested(m map[string][]int) []int {
	var all []int
	for _, vs := range m { // want `map iteration order reaches an append`
		for _, v := range vs {
			all = append(all, v)
		}
	}
	return all
}

// good iterates deterministically: order-insensitive aggregation is
// fine, and output loops run over sorted keys (slices, not maps).
func good(m map[string]int) int {
	total := 0
	for _, v := range m { // commutative fold: order cannot escape
		total += v
	}
	keys := make([]string, 0, len(m))
	//nscc:maporder -- the sort below launders the iteration order
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k]) // slice range: deterministic
	}
	return total
}
