// Package rawconc is the golden fixture of the rawconc analyzer.
package rawconc

import (
	"sync"
	"sync/atomic"
)

// bad exercises every raw-concurrency construct the analyzer bans in
// simulated-process code.
func bad() {
	ch := make(chan int, 1) // want `channel type in simulated-process code`
	go func() {             // want `go statement in simulated-process code`
		ch <- 1 // want `channel send in simulated-process code`
	}()
	_ = <-ch // want `channel receive in simulated-process code`

	var mu sync.Mutex // want `sync\.Mutex in simulated-process code`
	mu.Lock()
	mu.Unlock()

	var n int64
	atomic.AddInt64(&n, 1) // want `sync/atomic\.AddInt64 in simulated-process code`

	done := make(chan struct{}) // want `channel type in simulated-process code`
	select {                    // want `select in simulated-process code`
	case <-done: // want `channel receive in simulated-process code`
	default:
	}
}

// good is plain sequential code: simulated processes compute and talk
// through simulated messages, never through the host scheduler.
func good(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// allowed demonstrates directive suppression for a justified site.
func allowed() {
	var once sync.Once //nscc:rawconc -- host-side cache, justified
	once.Do(func() {})
}
