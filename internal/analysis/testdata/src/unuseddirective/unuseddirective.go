// Package unuseddirective is the golden fixture for directive hygiene:
// malformed //nscc: comments, unknown analyzer names, and suppressions
// that swallow nothing.
package unuseddirective

import "time"

// A directive that earns its keep: it suppresses a wallclock finding
// on its own line. No report.
func meteredHost() int64 {
	return time.Now().UnixNano() //nscc:wallclock -- host-side meter for the fixture
}

// A directive above the offending line is also live. No report.
func meteredAbove() time.Time {
	//nscc:wallclock -- host-side meter for the fixture
	return time.Now()
}

// A directive with nothing to suppress.
func cleanButAnnotated() int {
	//nscc:wallclock -- nothing on the next line reads the clock // want `//nscc:wallclock suppresses no wallclock finding here`
	return 42
}

// A directive naming an analyzer that does not exist.
func typoName() int {
	//nscc:wallcock -- typo'd name would silently disable nothing // want `//nscc:wallcock names no known analyzer or marker`
	return 7
}

// A malformed directive: empty name list.
func malformed() int {
	//nscc: wallclock -- space after the colon makes the list empty // want `malformed //nscc: directive`
	return 9
}

// Proof-carrying directives are exempt from the liveness probe.

//nscc:commutative
func mergeAdd(dst *int, src int) { *dst += src }

// A reconciliation discharge (loc= payload) is consumed by the
// -simrace-report cross-check even with no static finding here.
func tolerated() int {
	//nscc:tolerates-stale loc=fixture-loc -- dynamic tolerance, reconciled against simrace
	return 11
}
