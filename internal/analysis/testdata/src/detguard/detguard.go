// Package detguard is the golden fixture for the interprocedural
// primitive-reach check. The fixture package path is outside the
// determinism scope, so its helper functions play the role of the
// out-of-scope utility code a scoped package might call; the driver
// ignores Match for the package under test itself.
package detguard

import (
	"math/rand"
	"sync"
	"time"
)

// Helpers with direct primitive uses.

func stampNow() int64 { return time.Now().UnixNano() }

func drawGlobal() float64 { return rand.Float64() }

func locked(f func()) {
	var mu sync.Mutex // the qualified sync reference is the seed
	mu.Lock()
	f()
	mu.Unlock()
}

// Transitive helpers: the primitive is two hops away. Inside the
// analyzed package every edge toward the primitive is itself a
// finding (in repository runs these helpers live outside the scope
// and only the scoped call site is reported).

func stampVia() int64 { return stampNow() } // want `call to stampNow reaches wallclock outside the determinism scope \(time\.Now\)`

func deepStamp() int64 { return stampVia() } // want `call to stampVia reaches wallclock outside the determinism scope \(stampNow -> time\.Now\)`

// A clean helper chain produces no findings.

func double(x int64) int64 { return addSelf(x) }

func addSelf(x int64) int64 { return x + x }

// Call sites standing in for scoped code.

func useDirect() {
	_ = stampNow()    // want `call to stampNow reaches wallclock outside the determinism scope \(time\.Now\)`
	_ = drawGlobal()  // want `call to drawGlobal reaches globalrand outside the determinism scope \(rand\.Float64\)`
	locked(func() {}) // want `call to locked reaches rawconc outside the determinism scope \(sync\.Mutex\)`
}

func useTransitive() {
	_ = deepStamp() // want `call to deepStamp reaches wallclock outside the determinism scope \(stampVia -> stampNow -> time\.Now\)`
}

func useClean() {
	_ = double(21) // clean chain: no finding
}

func useSuppressed() {
	_ = stampNow() //nscc:detguard -- host-side progress meter, outside replay
}
