// Package commute is the golden fixture for the commutative-shape
// verifier: //nscc:commutative functions must be pure over their
// operands.
package commute

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

type acc struct {
	sum  float64
	hits int
}

var generation int

// Well-shaped merges: operand mutation, pure stdlib, monotone folds.

//nscc:commutative
func mergeSum(a *acc, contrib float64, hit bool) {
	a.sum += math.Abs(contrib)
	if hit {
		a.hits++
	}
}

//nscc:commutative
func mergeMax(best *float64, cand float64) {
	if cand > *best {
		*best = cand
	}
}

// helper reached from a merge: pure over operands, so allowed even
// though it carries no marker itself.
func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

//nscc:commutative
func mergeClamped(a *acc, contrib float64) {
	a.sum += clamp(contrib, 0, 1)
}

//nscc:commutative
func mergeSorted(dst, src []float64) []float64 {
	dst = append(dst, src...)
	sort.Float64s(dst)
	return dst
}

// Ill-shaped merges.

//nscc:commutative
func mergeClocked(a *acc, contrib float64) {
	a.sum += contrib
	_ = time.Now() // want `commutative function mergeClocked uses time\.Now`
}

//nscc:commutative
func mergeRandom(a *acc) {
	a.sum += rand.Float64() // want `commutative function mergeRandom uses rand\.Float64`
}

//nscc:commutative
func mergeConcurrent(a *acc, contrib float64) {
	done := make(chan bool)
	go func() { // want `commutative function mergeConcurrent uses go statement`
		a.sum += contrib
		done <- true // want `commutative function mergeConcurrent uses channel send`
	}()
	<-done // want `commutative function mergeConcurrent uses channel receive`
}

//nscc:commutative
func mergeGlobal(a *acc) {
	a.hits += generation // want `commutative function mergeGlobal reads package-level var generation`
}

//nscc:commutative
func mergeWritesGlobal(a *acc) {
	generation = a.hits // want `commutative function mergeWritesGlobal writes package-level var generation`
}

func logMerge(a *acc) {
	fmt.Println(a.sum)
}

//nscc:commutative
func mergeLogged(a *acc, contrib float64) {
	a.sum += contrib
	logMerge(a) // want `commutative function mergeLogged calls logMerge, which calls Println, whose body is outside the analyzed program`
}
