package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// A Directive is one parsed //nscc: comment. The general form is
//
//	//nscc:name1,name2 payload...
//
// where each name is a lower-case analyzer or marker identifier
// ([a-z][a-z0-9-]*) and the payload is free text, conventionally a
// justification introduced by "--":
//
//	//nscc:wallclock -- host-side throughput meter, not simulated time
//	//nscc:tolerates-stale loc=migrants -- merged by commutative ReplaceWorst
//
// Payload tokens of the form loc=<name> carry reconciliation metadata:
// they declare which DSM location a tolerance argument covers, and the
// -simrace-report cross-check consumes them.
type Directive struct {
	Names   []string  // analyzer/marker names, in written order
	Payload string    // trimmed text after the name list ("" if none)
	Pos     token.Pos // position of the comment
}

// Has reports whether the directive names the given analyzer or marker.
func (d *Directive) Has(name string) bool {
	for _, n := range d.Names {
		if n == name {
			return true
		}
	}
	return false
}

// Locs returns the location names declared by loc=<name> payload
// tokens, in written order. Tokens after a "--" separator are
// justification prose and are not scanned.
func (d *Directive) Locs() []string {
	var locs []string
	for _, tok := range strings.Fields(d.Payload) {
		if tok == "--" {
			break
		}
		if name, ok := strings.CutPrefix(tok, "loc="); ok && name != "" {
			locs = append(locs, name)
		}
	}
	return locs
}

// directivePrefix introduces every nscc directive comment.
const directivePrefix = "//nscc:"

// validDirectiveName reports whether s is a well-formed analyzer or
// marker name: [a-z][a-z0-9-]*, no leading/trailing or doubled dash.
func validDirectiveName(s string) bool {
	if s == "" || s[0] < 'a' || s[0] > 'z' {
		return false
	}
	prevDash := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			prevDash = false
		case c == '-':
			if prevDash || i == len(s)-1 {
				return false
			}
			prevDash = true
		default:
			return false
		}
	}
	return true
}

// ParseDirective parses one comment's text. It returns (nil, nil) when
// the comment is not an nscc directive at all, a parsed Directive when
// it is well-formed, and a descriptive error when the comment starts
// with //nscc: but is malformed (empty name list, illegal characters,
// missing separator). Malformed directives suppress nothing; the
// unuseddirective analyzer surfaces the parse error so the typo cannot
// silently disable a check.
func ParseDirective(text string) (*Directive, error) {
	rest, ok := strings.CutPrefix(text, directivePrefix)
	if !ok {
		return nil, nil
	}
	// Split the name list from the payload at the first whitespace.
	nameList := rest
	payload := ""
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		nameList, payload = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	if nameList == "" {
		return nil, fmt.Errorf("directive has no analyzer name (want //nscc:<name>)")
	}
	if strings.HasPrefix(nameList, ",") || strings.HasSuffix(nameList, ",") || strings.Contains(nameList, ",,") {
		return nil, fmt.Errorf("malformed analyzer list %q (want comma-separated names)", nameList)
	}
	names := strings.Split(nameList, ",")
	for _, n := range names {
		if !validDirectiveName(n) {
			return nil, fmt.Errorf("malformed analyzer name %q (want [a-z][a-z0-9-]*)", n)
		}
	}
	return &Directive{Names: names, Payload: payload}, nil
}

// parsedComment is one nscc-prefixed comment of a file set: either a
// parsed directive or a parse failure, with its position in both raw
// and resolved form.
type parsedComment struct {
	dir    *Directive // nil when malformed
	err    error      // non-nil when malformed
	rawPos token.Pos
	pos    token.Position
}

// collectDirectives parses every nscc-prefixed comment of the files.
// Non-directive comments are skipped; malformed directives are kept
// with their error so checks can surface them.
func collectDirectives(fset *token.FileSet, files []*ast.File) []parsedComment {
	var out []parsedComment
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, err := ParseDirective(c.Text)
				if d == nil && err == nil {
					continue
				}
				if d != nil {
					d.Pos = c.Pos()
				}
				out = append(out, parsedComment{dir: d, err: err, rawPos: c.Pos(), pos: fset.Position(c.Pos())})
			}
		}
	}
	return out
}
