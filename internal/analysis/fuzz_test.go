package analysis

import (
	"strings"
	"testing"
)

// FuzzParseDirective drives the //nscc: directive parser with arbitrary
// comment text. Invariants: the parser never panics; a comment without
// the //nscc: prefix is never a directive or an error; a parsed
// directive has only well-formed names reassemblable to the input's
// name list; Locs never invents names absent from the payload.
func FuzzParseDirective(f *testing.F) {
	seeds := []string{
		"// plain comment",
		"//nscc:wallclock",
		"//nscc:wallclock -- host-side meter, not simulated time",
		"//nscc:wallclock,maporder both at once",
		"//nscc:tolerates-stale loc=migrants -- commutative merge",
		"//nscc:tolerates-stale loc=state loc=progress",
		"//nscc:commutative",
		"//nscc:",
		"//nscc: ",
		"//nscc:,",
		"//nscc:a,",
		"//nscc:,b",
		"//nscc:a,,b",
		"//nscc:UPPER",
		"//nscc:under_score",
		"//nscc:-lead",
		"//nscc:trail-",
		"//nscc:do--uble",
		"//nscc:héllo",
		"//nscc:日本語ディレクティブ",
		"//nscc:\x00\xff",
		"//nscc:name\twith tab payload",
		"//nscc:" + strings.Repeat("a,", 100) + "a",
		"//nscc:" + strings.Repeat("x", 1000),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		d, err := ParseDirective(text)
		if !strings.HasPrefix(text, "//nscc:") {
			if d != nil || err != nil {
				t.Fatalf("%q: non-directive parsed as (%v, %v)", text, d, err)
			}
			return
		}
		if d != nil && err != nil {
			t.Fatalf("%q: both directive and error returned", text)
		}
		if d == nil && err == nil {
			t.Fatalf("%q: //nscc: comment neither parsed nor rejected", text)
		}
		if d == nil {
			return
		}
		if len(d.Names) == 0 {
			t.Fatalf("%q: directive with empty name list", text)
		}
		for _, n := range d.Names {
			if !validDirectiveName(n) {
				t.Fatalf("%q: accepted malformed name %q", text, n)
			}
		}
		// The accepted name list must literally reassemble to the text
		// between the prefix and the first whitespace.
		rest := strings.TrimPrefix(text, "//nscc:")
		nameList := rest
		if i := strings.IndexAny(rest, " \t"); i >= 0 {
			nameList = rest[:i]
		}
		if got := strings.Join(d.Names, ","); got != nameList {
			t.Fatalf("%q: names %v reassemble to %q, want %q", text, d.Names, got, nameList)
		}
		for _, loc := range d.Locs() {
			if loc == "" {
				t.Fatalf("%q: empty loc name", text)
			}
			if !strings.Contains(d.Payload, "loc="+loc) {
				t.Fatalf("%q: Locs invented %q", text, loc)
			}
		}
	})
}
