package analysis

import "go/ast"

// wallclockBanned is the set of package time functions that read or
// wait on the host's clock. Conversions and constants (time.Duration,
// time.Millisecond) are fine — only actual wall-clock observation
// breaks replay.
var wallclockBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Wallclock reports uses of wall-clock time in simulation code. All
// simulated time must come from the virtual clock (sim.Engine.Now /
// sim.Proc timing); a single time.Now in a hot path silently couples
// results to host speed and destroys byte-identical replay. Host-side
// measurement code (throughput meters, benchmark harnesses) annotates
// each use with //nscc:wallclock.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc: "wall-clock time in simulation code: take time from sim.Engine.Now, " +
		"or annotate host-side measurement with //nscc:wallclock",
	Run: func(p *Pass) {
		p.Inspect(func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.TypesInfo.Uses[sel.Sel]
			if pkgPathOf(obj) != "time" || !wallclockBanned[obj.Name()] {
				return true
			}
			p.Reportf(sel.Pos(),
				"time.%s reads the wall clock; simulated code must use the virtual clock (sim.Engine.Now)",
				obj.Name())
			return true
		})
	},
}
