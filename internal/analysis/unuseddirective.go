package analysis

import "go/token"

// Unuseddirective is the suite's hygiene check: every //nscc:
// suppression must parse, must name a known analyzer or marker, and
// must actually swallow a finding. A directive that suppresses nothing
// is either a typo (and some real finding is escaping elsewhere) or a
// leftover from refactored code (and its justification now lies about
// the code). Two directive classes are proof-carrying rather than
// suppressive and are exempt from the liveness probe: //nscc:commutative
// (a proof obligation the commute analyzer verifies) and
// //nscc:tolerates-stale with a loc=<name> payload (a reconciliation
// discharge the -simrace-report cross-check consumes even when no
// static finding exists at the site).
var Unuseddirective = &Analyzer{
	Name: "unuseddirective",
	Doc: "//nscc: directives that are malformed, name an unknown analyzer, " +
		"or suppress no finding",
}

// The run body references All() (which includes Unuseddirective), so it
// is attached in init to break the initialization cycle.
func init() {
	Unuseddirective.Run = func(p *Pass) {
		pcs := collectDirectives(p.Fset, p.Files)
		if len(pcs) == 0 {
			return
		}
		known := map[string]bool{commuteMarker: true}
		for _, a := range All() {
			known[a.DirectiveName()] = true
		}
		wanted := map[string]bool{} // directive names needing a liveness probe
		for _, pc := range pcs {
			if pc.dir == nil {
				continue
			}
			for _, name := range pc.dir.Names {
				if known[name] {
					wanted[name] = true
				}
			}
		}
		// Probe: re-run each referenced analyzer with the suppression
		// observer wired in, collecting the lines where a directive
		// actually swallowed a finding.
		suppressedLines := map[string]map[int]map[string]bool{} // file -> line -> name
		credit := func(name, file string, line int) {
			if suppressedLines[file] == nil {
				suppressedLines[file] = map[int]map[string]bool{}
			}
			if suppressedLines[file][line] == nil {
				suppressedLines[file][line] = map[string]bool{}
			}
			suppressedLines[file][line][name] = true
		}
		for _, a := range All() {
			name := a.DirectiveName()
			if a.Name == Unuseddirective.Name || !wanted[name] {
				continue
			}
			if a.Match != nil && !a.Match(p.Pkg.Path()) {
				continue // directives for a non-applicable analyzer stay uncredited
			}
			probe := NewPass(a, p.Fset, p.Files, p.Pkg, p.TypesInfo, p.Prog)
			aname := name
			probe.OnSuppress = func(pos token.Position) { credit(aname, pos.Filename, pos.Line) }
			a.Run(probe)
		}
		used := func(name, file string, line int) bool {
			// A directive on line D suppresses findings on D (trailing
			// comment) and on D+1 (comment above the code).
			if m := suppressedLines[file]; m != nil {
				if m[line][name] || m[line+1][name] {
					return true
				}
			}
			return false
		}
		for _, pc := range pcs {
			if pc.err != nil {
				p.Reportf(pc.rawPos, "malformed //nscc: directive: %v", pc.err)
				continue
			}
			for _, name := range pc.dir.Names {
				switch {
				case !known[name]:
					p.Reportf(pc.dir.Pos, "//nscc:%s names no known analyzer or marker; known: %s", name, knownList())
				case name == commuteMarker:
					// Proof obligation; the commute analyzer checks it.
				case name == Staleflow.DirectiveName() && len(pc.dir.Locs()) > 0:
					// Reconciliation discharge; consumed by -simrace-report.
				case name == Unuseddirective.Name:
					// Suppressing this check itself; liveness would recurse.
				case !used(name, pc.pos.Filename, pc.pos.Line):
					p.Reportf(pc.dir.Pos, "//nscc:%s suppresses no %s finding here; delete the directive or move it to the offending line", name, name)
				}
			}
		}
	}
}

// knownList renders the accepted directive names for the unknown-name
// message.
func knownList() string {
	out := commuteMarker
	for _, a := range All() {
		out += ", " + a.DirectiveName()
	}
	return out
}
