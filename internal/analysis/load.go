package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// LoadPackages enumerates patterns with `go list`, then parses and
// type-checks every matched package. dir is the module directory the
// patterns are relative to ("" = current directory; the source
// importer resolves module-internal imports relative to the process
// working directory, so run the driver from inside the module).
//
// One file set and one source importer are shared across packages, so
// a dependency type-checked for an early package is served from cache
// for every later one.
func LoadPackages(dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, ee.Stderr)
		}
		return nil, fmt.Errorf("go list %v: %v", patterns, err)
	}

	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) > 0 {
			listed = append(listed, lp)
		}
	}

	fset := token.NewFileSet()
	imp := &chainImporter{
		loaded:   map[string]*types.Package{},
		fallback: importer.ForCompiler(fset, "source", nil),
	}

	// Load in dependency order so a listed package that imports another
	// listed package reuses the directly-checked types.Package instead
	// of a source-importer duplicate: cross-package object identity is
	// what lets the interprocedural analyzers follow calls between
	// analyzed packages.
	byPath := map[string]*listedPackage{}
	for i := range listed {
		byPath[listed[i].ImportPath] = &listed[i]
	}
	var pkgs []*Package
	visiting := map[string]bool{}
	var visit func(lp *listedPackage) error
	visit = func(lp *listedPackage) error {
		if imp.loaded[lp.ImportPath] != nil || visiting[lp.ImportPath] {
			return nil
		}
		visiting[lp.ImportPath] = true
		for _, dep := range lp.Imports {
			if dlp := byPath[dep]; dlp != nil {
				if err := visit(dlp); err != nil {
					return err
				}
			}
		}
		pkg, err := loadOne(fset, imp, *lp)
		if err != nil {
			return err
		}
		imp.loaded[lp.ImportPath] = pkg.Types
		pkgs = append(pkgs, pkg)
		return nil
	}
	for i := range listed {
		if err := visit(&listed[i]); err != nil {
			return nil, err
		}
	}
	// Report in the stable `go list` enumeration order, not load order.
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// chainImporter serves packages this loader has already type-checked
// and falls back to the source importer for everything else (stdlib,
// unlisted dependencies).
type chainImporter struct {
	loaded   map[string]*types.Package
	fallback types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if pkg := c.loaded[path]; pkg != nil {
		return pkg, nil
	}
	return c.fallback.Import(path)
}

// loadOne parses and type-checks one listed package.
func loadOne(fset *token.FileSet, imp types.Importer, lp listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
