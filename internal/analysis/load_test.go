package analysis

import (
	"go/types"
	"strings"
	"testing"
)

// loadFixtureModule loads the testdata/mod module, which exercises the
// loader's filtering: a vendored package, a build-tagged (and
// deliberately broken) file, and a test-only package.
func loadFixtureModule(t *testing.T) []*Package {
	t.Helper()
	pkgs, err := LoadPackages("testdata/mod", []string{"./..."})
	if err != nil {
		t.Fatalf("LoadPackages: %v", err)
	}
	return pkgs
}

func TestLoadPackagesFiltering(t *testing.T) {
	pkgs := loadFixtureModule(t)
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.ImportPath)
	}
	got := strings.Join(paths, " ")
	if got != "loadmod/a loadmod/c" {
		t.Fatalf("loaded %q, want %q", got, "loadmod/a loadmod/c")
	}
	// The build-tagged a_ignored.go must not have been parsed: package
	// a has exactly one file.
	if n := len(pkgs[0].Files); n != 1 {
		t.Errorf("loadmod/a parsed %d files, want 1 (build-tagged file must be excluded)", n)
	}
}

func TestLoadPackagesCrossPackageIdentity(t *testing.T) {
	pkgs := loadFixtureModule(t)
	prog := NewProgram(pkgs)
	// Find c.Caller and follow its single call edge: it must resolve to
	// the directly-checked body of a.Helper, not a source-importer
	// duplicate with a distinct object identity.
	var caller *FuncInfo
	prog.Funcs(func(fi *FuncInfo) {
		if fi.Obj.Name() == "Caller" {
			caller = fi
		}
	})
	if caller == nil {
		t.Fatal("c.Caller not in the program")
	}
	if len(caller.Calls) != 1 {
		t.Fatalf("c.Caller has %d call edges, want 1", len(caller.Calls))
	}
	callee := caller.Calls[0].Callee
	if callee.Name() != "Helper" {
		t.Fatalf("c.Caller calls %s, want Helper", callee.Name())
	}
	fi := prog.FuncOf(callee)
	if fi == nil {
		t.Fatal("FuncOf(a.Helper) is nil: cross-package identity was lost in loading")
	}
	if fi.Decl == nil || fi.Decl.Name.Name != "Helper" {
		t.Fatal("FuncOf(a.Helper) resolved to the wrong declaration")
	}
}

func TestLoadPackagesDefaultPattern(t *testing.T) {
	// An empty pattern list defaults to ./... .
	pkgs, err := LoadPackages("testdata/mod", nil)
	if err != nil {
		t.Fatalf("LoadPackages: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
}

func TestLoadPackagesBadPattern(t *testing.T) {
	if _, err := LoadPackages("testdata/mod", []string{"./no/such/dir"}); err == nil {
		t.Fatal("LoadPackages succeeded on a nonexistent pattern")
	}
}

func TestNewInfoMapsPresent(t *testing.T) {
	info := NewInfo()
	for name, m := range map[string]bool{
		"Types":      info.Types != nil,
		"Defs":       info.Defs != nil,
		"Uses":       info.Uses != nil,
		"Selections": info.Selections != nil,
		"Implicits":  info.Implicits != nil,
		"Scopes":     info.Scopes != nil,
	} {
		if !m {
			t.Errorf("NewInfo: %s map is nil", name)
		}
	}
}

func TestChainImporterFallback(t *testing.T) {
	pkgs := loadFixtureModule(t)
	// The loaded packages' types are usable as importers' results: the
	// scope of loadmod/a must expose Helper as a *types.Func.
	obj := pkgs[0].Types.Scope().Lookup("Helper")
	if _, ok := obj.(*types.Func); !ok {
		t.Fatalf("loadmod/a scope Helper = %T, want *types.Func", obj)
	}
}
