package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// commuteMarker is the directive name that asserts a function is a
// commutative merge: applying it with operand batches in any order
// yields the same state. The commute analyzer verifies every marked
// function is commutative-*shaped*; the simrace reconciliation accepts
// the marker as a tolerance discharge.
const commuteMarker = "commutative"

// commutePureStdlib lists standard-library packages whose functions are
// value-pure: results depend only on arguments, no hidden state, no
// side effects beyond their operands. Calls into them are allowed
// inside commutative merges.
var commutePureStdlib = map[string]bool{
	"math":      true,
	"math/bits": true,
	"cmp":       true,
	"sort":      true,
	"slices":    true,
	"strings":   true,
	"strconv":   true,
}

// commutePureFmt lists the package fmt functions that only format (no
// I/O). fmt itself is not whitelisted wholesale: Println in a merge is
// a side effect.
var commutePureFmt = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
}

// commutePurity memoizes the purity closure: "" means pure (or
// in-progress, the optimistic fixpoint for recursive helpers); a
// non-empty string is the first impurity witness found.
type commutePurity map[*types.Func]*string

func commutePurityCache(prog *Program) commutePurity {
	if c, ok := prog.Cache["commute-purity"]; ok {
		return c.(commutePurity)
	}
	c := commutePurity{}
	prog.Cache["commute-purity"] = c
	return c
}

// commuteCallAllowed classifies one call site inside a commutative
// merge (or a helper it reaches). It returns "" when the call is
// allowed and an explanation otherwise.
func commuteCallAllowed(prog *Program, annotated map[*types.Func]bool, callee *types.Func) string {
	if recv := callee.Type().(*types.Signature).Recv(); recv != nil {
		if _, ok := recv.Type().Underlying().(*types.Interface); ok {
			// Interface dispatch cannot be resolved statically; this is
			// the analyzer's documented soundness hole.
			return ""
		}
	}
	path := pkgPathOf(callee)
	if commutePureStdlib[path] {
		return ""
	}
	if path == "fmt" && commutePureFmt[callee.Name()] {
		return ""
	}
	if annotated[callee] {
		return "" // verified commutative in its own right
	}
	fi := prog.FuncOf(callee)
	if fi == nil {
		return "calls " + callee.Name() + ", whose body is outside the analyzed program"
	}
	if why := commuteFuncPure(prog, annotated, fi); why != "" {
		return "calls " + callee.Name() + ", which " + why
	}
	return ""
}

// commuteFuncPure checks (memoized) that a helper reached from a
// commutative merge is pure over its operands: no determinism
// primitives, no package-level variable access, and only allowed
// calls. Receiver and parameter mutation is fine — operands are the
// merge's domain.
func commuteFuncPure(prog *Program, annotated map[*types.Func]bool, fi *FuncInfo) string {
	c := commutePurityCache(prog)
	if why, ok := c[fi.Obj]; ok {
		if why == nil {
			return ""
		}
		return *why
	}
	c[fi.Obj] = nil // optimistic: recursion through this helper is pure
	fail := func(why string) string {
		c[fi.Obj] = &why
		return why
	}
	for _, pu := range fi.DirectPrims {
		return fail("uses " + pu.Desc)
	}
	for _, gv := range fi.GlobalVars {
		verb := "reads"
		if gv.Write {
			verb = "writes"
		}
		return fail(verb + " package-level var " + gv.Var.Name())
	}
	for _, cs := range fi.Calls {
		if why := commuteCallAllowed(prog, annotated, cs.Callee); why != "" {
			return fail(why)
		}
	}
	return ""
}

// commuteAnnotated maps every function of the program bearing an
// //nscc:commutative marker (same line as the func keyword, or the
// line immediately above).
func commuteAnnotated(prog *Program) map[*types.Func]bool {
	key := "commute-annotated"
	if c, ok := prog.Cache[key]; ok {
		return c.(map[*types.Func]bool)
	}
	out := map[*types.Func]bool{}
	for _, pkg := range prog.Pkgs {
		lines := map[string]map[int]bool{}
		for _, pc := range collectDirectives(pkg.Fset, pkg.Files) {
			if pc.dir == nil || !pc.dir.Has(commuteMarker) {
				continue
			}
			if lines[pc.pos.Filename] == nil {
				lines[pc.pos.Filename] = map[int]bool{}
			}
			lines[pc.pos.Filename][pc.pos.Line] = true
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(fd.Pos())
				if fl := lines[pos.Filename]; fl != nil && (fl[pos.Line] || fl[pos.Line-1]) {
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						out[obj] = true
					}
				}
			}
		}
	}
	prog.Cache[key] = out
	return out
}

// Commute verifies that every function marked //nscc:commutative is
// commutative-shaped. The marker is a proof obligation, not a
// suppression: ga migrant merges, bayes contribution folds, and graph
// view merges are replayed in arbitrary arrival orders, and the
// simrace reconciliation trusts the marker when discharging unbounded
// staleness — so the analyzer insists the marked function (and every
// helper it reaches) is pure over its operands: no wall clock, no
// global randomness, no raw concurrency, no package-level mutable
// state, and no calls whose effects it cannot see. Operand mutation
// (receiver, parameters) is the merge's whole point and is allowed;
// what must not exist is a dependency on anything *other* than the
// operands.
var Commute = &Analyzer{
	Name: "commute",
	Doc: "//nscc:commutative-marked functions that are not commutative-shaped " +
		"(hidden state, determinism primitives, or unanalyzable calls)",
	Run: func(p *Pass) {
		annotated := commuteAnnotated(p.Prog)
		for _, fi := range funcsOf(p.Prog, p.Pkg) {
			if !annotated[fi.Obj] {
				continue
			}
			name := fi.Obj.Name()
			primPos := map[token.Pos]bool{}
			for _, pu := range fi.DirectPrims {
				primPos[pu.Pos] = true
				p.Reportf(pu.Pos, "commutative function %s uses %s; a merge replayed in arbitrary order must not touch host time, global randomness, or raw concurrency", name, pu.Desc)
			}
			for _, gv := range fi.GlobalVars {
				verb := "reads"
				if gv.Write {
					verb = "writes"
				}
				p.Reportf(gv.Pos, "commutative function %s %s package-level var %s; merge state must flow through operands only", name, verb, gv.Var.Name())
			}
			for _, cs := range fi.Calls {
				if primPos[cs.Pos] {
					continue // the primitive-use report already covers this call
				}
				if why := commuteCallAllowed(p.Prog, annotated, cs.Callee); why != "" {
					p.Reportf(cs.Pos, "commutative function %s %s; commutativity cannot be established", name, why)
				}
			}
		}
	},
}
