package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// PrimKind classifies a determinism-relevant primitive use inside a
// function body: the same three families the syntactic analyzers police
// directly.
type PrimKind int

const (
	// PrimWallclock is a package time wall-clock observation (the
	// wallclock analyzer's banned set).
	PrimWallclock PrimKind = iota
	// PrimGlobalrand is a math/rand global-source draw or a
	// constant-literal NewSource seed.
	PrimGlobalrand
	// PrimRawconc is raw Go concurrency: go statements, channel
	// operations, select, package sync/atomic references.
	PrimRawconc
)

func (k PrimKind) String() string {
	switch k {
	case PrimWallclock:
		return "wallclock"
	case PrimGlobalrand:
		return "globalrand"
	case PrimRawconc:
		return "rawconc"
	default:
		return fmt.Sprintf("PrimKind(%d)", int(k))
	}
}

// A PrimUse is one direct primitive use inside a function body.
type PrimUse struct {
	Kind PrimKind
	Desc string // e.g. "time.Now", "go statement", "sync/atomic.AddInt64"
	Pos  token.Pos
}

// A CallSite is one statically resolved call inside a function body
// (method calls resolve to the method's *types.Func; calls through
// function values and interfaces do not resolve and are absent).
type CallSite struct {
	Callee *types.Func
	Pos    token.Pos
}

// A VarUse is one read or write of a package-level variable inside a
// function body.
type VarUse struct {
	Var   *types.Var
	Write bool
	Pos   token.Pos
}

// FuncInfo is the call-graph node of one declared function or method
// whose body was loaded.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	Calls       []CallSite
	DirectPrims []PrimUse
	GlobalVars  []VarUse
}

// Program is the whole-program view of one lint run: every loaded
// package, an index from function objects to their declarations, and a
// scratch cache for interprocedural summaries shared across passes.
type Program struct {
	Pkgs  []*Package
	funcs map[*types.Func]*FuncInfo

	// Cache holds analyzer-computed interprocedural summaries, keyed by
	// analyzer name, so per-package passes share one closure instead of
	// recomputing it P times. The driver is single-threaded.
	Cache map[string]interface{}
}

// NewProgram indexes the loaded packages into a call graph.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{Pkgs: pkgs, funcs: map[*types.Func]*FuncInfo{}, Cache: map[string]interface{}{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg}
				scanBody(fi, pkg.Info)
				prog.funcs[obj] = fi
			}
		}
	}
	return prog
}

// FuncOf returns the call-graph node of obj, or nil when its body was
// not part of the loaded packages (stdlib, interface methods, function
// values).
func (prog *Program) FuncOf(obj *types.Func) *FuncInfo { return prog.funcs[obj] }

// Funcs calls fn for every loaded function, in unspecified order.
// Consumers that produce ordered output must sort it themselves (the
// analyzers aggregate into maps and sets, so no order escapes).
func (prog *Program) Funcs(fn func(*FuncInfo)) {
	for _, fi := range prog.funcs {
		fn(fi)
	}
}

// funcsOf returns the loaded functions of one package in source order
// (deterministic iteration for reporting passes).
func funcsOf(prog *Program, pkg *types.Package) []*FuncInfo {
	var out []*FuncInfo
	prog.Funcs(func(fi *FuncInfo) {
		if fi.Pkg.Types == pkg {
			out = append(out, fi)
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// scanBody fills a FuncInfo's call sites, direct primitive uses, and
// package-level variable accesses. Function-literal bodies nested in
// the declaration are charged to the declaring function: a closure is
// part of its host's behavior.
func scanBody(fi *FuncInfo, info *types.Info) {
	// Assignment targets are visited before their ident children; the
	// set keeps an assigned global from also being recorded as a read.
	writeIdents := map[*ast.Ident]bool{}
	recordWrite := func(lhs ast.Expr) {
		id, ok := rootIdent(lhs)
		if !ok {
			return
		}
		if v, ok := info.Uses[id].(*types.Var); ok && isPackageLevel(v) {
			writeIdents[id] = true
			fi.GlobalVars = append(fi.GlobalVars, VarUse{Var: v, Write: true, Pos: lhs.Pos()})
		}
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if callee := calleeOf(info, n); callee != nil {
				fi.Calls = append(fi.Calls, CallSite{Callee: callee, Pos: n.Pos()})
			}
		case *ast.GoStmt:
			fi.DirectPrims = append(fi.DirectPrims, PrimUse{PrimRawconc, "go statement", n.Pos()})
		case *ast.SendStmt:
			fi.DirectPrims = append(fi.DirectPrims, PrimUse{PrimRawconc, "channel send", n.Pos()})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				fi.DirectPrims = append(fi.DirectPrims, PrimUse{PrimRawconc, "channel receive", n.Pos()})
			}
		case *ast.SelectStmt:
			fi.DirectPrims = append(fi.DirectPrims, PrimUse{PrimRawconc, "select", n.Pos()})
		case *ast.SelectorExpr:
			obj := info.Uses[n.Sel]
			switch path := pkgPathOf(obj); {
			case path == "time" && wallclockBanned[obj.Name()]:
				fi.DirectPrims = append(fi.DirectPrims, PrimUse{PrimWallclock, "time." + obj.Name(), n.Pos()})
			case isMathRand(path):
				if fn, ok := obj.(*types.Func); ok && fn.Type().(*types.Signature).Recv() == nil && globalrandDraws[fn.Name()] {
					fi.DirectPrims = append(fi.DirectPrims, PrimUse{PrimGlobalrand, "rand." + fn.Name(), n.Pos()})
				}
			case path == "sync" || path == "sync/atomic":
				if id, ok := n.X.(*ast.Ident); ok {
					if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
						fi.DirectPrims = append(fi.DirectPrims, PrimUse{PrimRawconc, path + "." + obj.Name(), n.Pos()})
					}
				}
			}
		case *ast.Ident:
			if writeIdents[n] {
				return true
			}
			if v, ok := info.Uses[n].(*types.Var); ok && isPackageLevel(v) {
				fi.GlobalVars = append(fi.GlobalVars, VarUse{Var: v, Pos: n.Pos()})
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				recordWrite(lhs)
			}
		case *ast.IncDecStmt:
			recordWrite(n.X)
		}
		return true
	})
}

// calleeOf statically resolves a call expression's target function or
// method (nil for builtins, conversions, function values, interface
// dispatch).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isPackageLevel reports whether v is declared at package scope.
func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// rootIdent peels selectors, indexes, stars, and parens off an
// assignable expression down to its base identifier: a write to
// x.f[i].g roots at x.
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v, true
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil, false
		}
	}
}
