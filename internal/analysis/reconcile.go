package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"sort"

	"nscc/internal/metrics"
)

// LoadRaceReport reads and validates a per-location race report (the
// JSON a run writes under -simrace-out). A missing file, malformed
// JSON, or a schema mismatch is a load error, not a finding: the
// caller should exit 2, the same as a package that fails to parse.
func LoadRaceReport(path string) (*metrics.RaceReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("simrace report: %v", err)
	}
	var rep metrics.RaceReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("simrace report %s: %v", path, err)
	}
	if rep.Schema != metrics.RaceReportSchema {
		return nil, fmt.Errorf("simrace report %s: schema %q, want %q",
			path, rep.Schema, metrics.RaceReportSchema)
	}
	return &rep, nil
}

// StaleDischarges collects every location name discharged by an
// //nscc:tolerates-stale loc=<name> annotation anywhere in the loaded
// packages, mapping the name to the position of one such directive
// (the first in file order, for reporting).
func StaleDischarges(pkgs []*Package) map[string]token.Position {
	out := map[string]token.Position{}
	for _, pkg := range pkgs {
		for _, pc := range collectDirectives(pkg.Fset, pkg.Files) {
			if pc.dir == nil || !pc.dir.Has(staleflowDirective) {
				continue
			}
			for _, name := range pc.dir.Locs() {
				if _, ok := out[name]; !ok {
					out[name] = pc.pos
				}
			}
		}
	}
	return out
}

// ReconcileRaceReport cross-checks the dynamic per-location race
// classification against the static staleness annotations: every
// location the checker observed racing with no staleness bound in
// force (Unbounded > 0) must be discharged by a
// //nscc:tolerates-stale loc=<name> annotation somewhere in the
// analyzed packages, or the dynamic evidence contradicts the static
// claim that all undischarged stale flows were synchronized. Findings
// are attributed to the report file (they point at an absence in the
// source, not a line).
func ReconcileRaceReport(pkgs []*Package, rep *metrics.RaceReport, reportPath string) []Diagnostic {
	discharged := StaleDischarges(pkgs)
	var diags []Diagnostic
	for _, loc := range rep.Locations {
		if loc.Unbounded == 0 {
			continue
		}
		if _, ok := discharged[loc.Name]; ok {
			continue
		}
		diags = append(diags, Diagnostic{
			Analyzer: "reconcile",
			File:     reportPath,
			Line:     0,
			Col:      0,
			Message: fmt.Sprintf("location %q (id %d) raced with no staleness bound %d time(s) dynamically, "+
				"but no //nscc:tolerates-stale loc=%s discharge exists in the analyzed packages; "+
				"bound the read or annotate the tolerating site",
				loc.Name, loc.ID, loc.Unbounded, loc.Name),
		})
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Message < diags[j].Message })
	return diags
}
