package analysis

import (
	"go/ast"
	"go/types"
)

// globalrandDraws is the set of math/rand package-level functions that
// draw from (or mutate) the process-global source. rand.New and
// rand.NewSource construct explicit sources and are allowed — provided
// the seed is not a constant literal, which the analyzer checks
// separately.
var globalrandDraws = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

func isMathRand(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// Globalrand reports randomness that cannot replay: draws from
// math/rand's process-global source, and rand.NewSource seeded with a
// compile-time constant. Every random stream in a simulation must
// derive from the run's seed — through sim.Engine.NewRng or
// runner.DeriveSeed — so the same seed reproduces the same run and
// parallel sweeps stay byte-identical at any worker count. The global
// source is shared mutable state across goroutines (replay depends on
// host scheduling), and a constant seed silently aliases streams that
// were meant to be independent.
var Globalrand = &Analyzer{
	Name: "globalrand",
	Doc: "math/rand global-source draws or constant-literal NewSource seeds: " +
		"derive every stream from the run seed (sim.Engine.NewRng, runner.DeriveSeed)",
	Run: func(p *Pass) {
		p.Inspect(func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.TypesInfo.Uses[sel.Sel]
			if !isMathRand(pkgPathOf(obj)) {
				return true
			}
			// Package-level draws only: methods on *rand.Rand have a
			// receiver and are the blessed derived-stream API.
			fn, ok := obj.(*types.Func)
			if !ok || fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			if globalrandDraws[fn.Name()] {
				p.Reportf(sel.Pos(),
					"rand.%s draws from the process-global source; use an engine-derived stream (sim.Engine.NewRng)",
					fn.Name())
			}
			return true
		})
		// Constant-literal seeds: rand.NewSource(42) — and therefore
		// rand.New(rand.NewSource(42)) — produces one fixed stream that
		// ignores the run's seed.
		p.Inspect(func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.TypesInfo.Uses[sel.Sel]
			if !isMathRand(pkgPathOf(obj)) || obj.Name() != "NewSource" {
				return true
			}
			if tv, ok := p.TypesInfo.Types[call.Args[0]]; ok && tv.Value != nil {
				p.Reportf(call.Pos(),
					"rand.NewSource with constant seed %s ignores the run seed; derive it (runner.DeriveSeed, sim.Engine.NewRng)",
					tv.Value.String())
			}
			return true
		})
	},
}
