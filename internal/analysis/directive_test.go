package analysis

import (
	"reflect"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text    string
		names   []string
		payload string
		isErr   bool
		skip    bool // not a directive at all
	}{
		{text: "// ordinary comment", skip: true},
		{text: "//nscc", skip: true},
		{text: "// nscc:wallclock", skip: true}, // leading space: not a directive
		{text: "//nscc:wallclock", names: []string{"wallclock"}},
		{text: "//nscc:wallclock -- host-side meter", names: []string{"wallclock"}, payload: "-- host-side meter"},
		{text: "//nscc:wallclock,maporder why not both", names: []string{"wallclock", "maporder"}, payload: "why not both"},
		{text: "//nscc:tolerates-stale loc=migrants -- commutative merge", names: []string{"tolerates-stale"}, payload: "loc=migrants -- commutative merge"},
		{text: "//nscc:a-b-c", names: []string{"a-b-c"}},
		{text: "//nscc:rand2", names: []string{"rand2"}},
		{text: "//nscc:wallclock\tpayload after tab", names: []string{"wallclock"}, payload: "payload after tab"},
		{text: "//nscc:", isErr: true},
		{text: "//nscc: wallclock", isErr: true}, // space before name: empty list
		{text: "//nscc:,wallclock", isErr: true},
		{text: "//nscc:wallclock,", isErr: true},
		{text: "//nscc:wallclock,,maporder", isErr: true},
		{text: "//nscc:Wallclock", isErr: true},
		{text: "//nscc:wall_clock", isErr: true},
		{text: "//nscc:-dash", isErr: true},
		{text: "//nscc:dash-", isErr: true},
		{text: "//nscc:do--uble", isErr: true},
		{text: "//nscc:9lives", isErr: true},
		{text: "//nscc:héllo", isErr: true},
		{text: "//nscc:日本語", isErr: true},
	}
	for _, c := range cases {
		d, err := ParseDirective(c.text)
		switch {
		case c.skip:
			if d != nil || err != nil {
				t.Errorf("%q: want (nil, nil), got (%v, %v)", c.text, d, err)
			}
		case c.isErr:
			if err == nil {
				t.Errorf("%q: want parse error, got %+v", c.text, d)
			}
		default:
			if err != nil {
				t.Errorf("%q: unexpected error %v", c.text, err)
				continue
			}
			if !reflect.DeepEqual(d.Names, c.names) {
				t.Errorf("%q: names %v, want %v", c.text, d.Names, c.names)
			}
			if d.Payload != c.payload {
				t.Errorf("%q: payload %q, want %q", c.text, d.Payload, c.payload)
			}
		}
	}
}

func TestDirectiveHas(t *testing.T) {
	d, err := ParseDirective("//nscc:wallclock,globalrand -- both are host-side")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"wallclock", "globalrand"} {
		if !d.Has(name) {
			t.Errorf("Has(%q) = false", name)
		}
	}
	if d.Has("maporder") {
		t.Error("Has(maporder) = true")
	}
}

func TestDirectiveLocs(t *testing.T) {
	cases := []struct {
		text string
		locs []string
	}{
		{"//nscc:tolerates-stale loc=migrants -- justification", []string{"migrants"}},
		{"//nscc:tolerates-stale loc=state loc=progress -- two locations", []string{"state", "progress"}},
		{"//nscc:tolerates-stale -- prose mentioning loc=bundle after the dash", nil},
		{"//nscc:tolerates-stale loc= -- empty name ignored", nil},
		{"//nscc:tolerates-stale plain justification", nil},
	}
	for _, c := range cases {
		d, err := ParseDirective(c.text)
		if err != nil {
			t.Fatalf("%q: %v", c.text, err)
		}
		if got := d.Locs(); !reflect.DeepEqual(got, c.locs) {
			t.Errorf("%q: Locs() = %v, want %v", c.text, got, c.locs)
		}
	}
}
