package analysis

import (
	"go/ast"
	"go/types"
)

// maporderSinks are the fmt functions whose output ordering a map
// range would scramble.
var maporderSinks = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
}

// Maporder reports range statements over maps whose body appends to a
// slice, prints, or sends — constructs through which Go's randomized
// map iteration order escapes into results. A run that formats a table
// or assigns ids from such a loop differs byte-for-byte between
// executions of the very same seed. Collect keys, sort, then iterate;
// or annotate a loop whose order provably cannot escape (e.g. the
// appended slice is sorted immediately after) with //nscc:maporder.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc: "map iteration whose order escapes (append/print/send in the body): " +
		"sort the keys first, or annotate //nscc:maporder if the order is laundered after",
	Run: func(p *Pass) {
		p.Inspect(func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			// One diagnostic per loop; nested map ranges are visited by
			// the outer walk and judged on their own.
			reported := false
			report := func(format string, args ...interface{}) {
				if !reported {
					reported = true
					p.Reportf(rs.Pos(), format, args...)
				}
			}
			ast.Inspect(rs.Body, func(inner ast.Node) bool {
				if reported {
					return false
				}
				switch inner := inner.(type) {
				case *ast.SendStmt:
					report("map iteration order reaches a channel send; iterate sorted keys")
				case *ast.CallExpr:
					switch fun := inner.Fun.(type) {
					case *ast.Ident:
						if obj := p.TypesInfo.Uses[fun]; obj != nil && obj.Name() == "append" && pkgPathOf(obj) == "" {
							report("map iteration order reaches an append; iterate sorted keys (or //nscc:maporder if sorted after)")
						}
					case *ast.SelectorExpr:
						if obj := p.TypesInfo.Uses[fun.Sel]; pkgPathOf(obj) == "fmt" && maporderSinks[obj.Name()] {
							report("map iteration order reaches fmt.%s output; iterate sorted keys", obj.Name())
						}
					}
				}
				return !reported
			})
			return true
		})
	},
}
