package analysis

import (
	"go/types"
	"sort"
	"strings"
)

// detguardBlessed lists the package-path prefixes of the determinism
// substrate: machinery that legitimately touches the host clock,
// scheduler, or locks because it *implements* replay (the coroutine
// engine, the host worker pool, observability sinks, the journal).
// Calls from scoped code into these packages are by-construction safe
// and stop the interprocedural closure.
var detguardBlessed = []string{
	"nscc/internal/sim",
	"nscc/internal/runner",
	"nscc/internal/obs",
	"nscc/internal/simrace",
	"nscc/internal/ckpt",
}

// pathInScope reports whether path equals one of the prefixes or lives
// under one of them.
func pathInScope(path string, prefixes []string) bool {
	for _, prefix := range prefixes {
		if path == prefix || strings.HasPrefix(path, prefix+"/") {
			return true
		}
	}
	return false
}

// detReach maps a function to, per primitive family, one witness chain
// ("helper -> inner -> time.Now") proving the function transitively
// reaches that primitive.
type detReach map[*types.Func]map[PrimKind]string

// detguardKinds fixes the report and propagation order of the three
// primitive families.
var detguardKinds = [...]PrimKind{PrimWallclock, PrimGlobalrand, PrimRawconc}

// detguardReach computes (once per Program, cached) the transitive
// primitive reach of every function outside both the determinism scope
// and the blessed substrate. Scoped functions are policed directly by
// the syntactic analyzers and blessed functions are exempt, so neither
// seeds nor propagates: the closure covers exactly the helper code that
// would otherwise smuggle a primitive past the per-package checks.
func detguardReach(prog *Program) detReach {
	if c, ok := prog.Cache["detguard-reach"]; ok {
		return c.(detReach)
	}
	var fns []*FuncInfo
	prog.Funcs(func(fi *FuncInfo) {
		path := fi.Pkg.ImportPath
		if pathInScope(path, rawconcScope) || pathInScope(path, detguardBlessed) {
			return
		}
		fns = append(fns, fi)
	})
	sort.Slice(fns, func(i, j int) bool { return fns[i].Decl.Pos() < fns[j].Decl.Pos() })

	reach := detReach{}
	for _, fi := range fns {
		for _, pu := range fi.DirectPrims {
			m := reach[fi.Obj]
			if m == nil {
				m = map[PrimKind]string{}
				reach[fi.Obj] = m
			}
			if _, ok := m[pu.Kind]; !ok {
				m[pu.Kind] = pu.Desc
			}
		}
	}
	// Fixpoint over the call graph. Functions are visited in source
	// order and primitive kinds in a fixed order, so the first witness
	// chain recorded for a (function, kind) pair is deterministic.
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			for _, cs := range fi.Calls {
				sub := reach[cs.Callee]
				if sub == nil {
					continue
				}
				for _, kind := range detguardKinds {
					w, ok := sub[kind]
					if !ok {
						continue
					}
					m := reach[fi.Obj]
					if m == nil {
						m = map[PrimKind]string{}
						reach[fi.Obj] = m
					}
					if _, have := m[kind]; !have {
						m[kind] = cs.Callee.Name() + " -> " + w
						changed = true
					}
				}
			}
		}
	}
	prog.Cache["detguard-reach"] = reach
	return reach
}

// Detguard extends the wallclock/globalrand/rawconc checks across the
// call graph: a scoped package that calls a helper which *transitively*
// reads time.Now, draws global randomness, or spawns raw concurrency is
// flagged at the call site, with the witness chain. The syntactic
// analyzers only see primitives written inside the scoped package
// itself; detguard closes the loophole of hiding one in a utility
// function a package over. Calls into other scoped packages (policed
// directly) and into the blessed substrate (sim, runner, obs, simrace,
// ckpt — which implement determinism and may use primitives) are exempt.
var Detguard = &Analyzer{
	Name: "detguard",
	Doc: "calls from determinism-scoped code to helpers that transitively reach " +
		"wall-clock time, global randomness, or raw concurrency",
	Match: func(path string) bool { return pathInScope(path, rawconcScope) },
	Run: func(p *Pass) {
		reach := detguardReach(p.Prog)
		for _, fi := range funcsOf(p.Prog, p.Pkg) {
			for _, cs := range fi.Calls {
				calleePath := pkgPathOf(cs.Callee)
				if pathInScope(calleePath, rawconcScope) || pathInScope(calleePath, detguardBlessed) {
					continue
				}
				sub := reach[cs.Callee]
				if sub == nil {
					continue
				}
				for _, kind := range detguardKinds {
					if w, ok := sub[kind]; ok {
						p.Reportf(cs.Pos,
							"call to %s reaches %s outside the determinism scope (%s); route it through the engine or annotate //nscc:detguard",
							cs.Callee.Name(), kind, w)
					}
				}
			}
		}
	},
}
