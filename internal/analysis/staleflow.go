package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// staleflow taint-tracks possibly-stale DSM reads to exact-semantics
// sinks. Sources are core.Node reads that may return data older than
// the current iteration: Node.Read (non-blocking, arbitrarily stale)
// and Node.GlobalRead with a nonzero or non-constant age bound.
// GlobalRead with a literal age of 0 is a synchronized fetch and is
// clean. Taint flows through assignments, field/index projections,
// arithmetic, composite literals, and calls (via interprocedural
// summaries); it is discharged by tolerant shapes — order-independent
// op-assign accumulation, min/max compare-assign merges, calls to
// //nscc:commutative functions — and by //nscc:tolerates-stale
// annotations at the read or at the sink.

// staleflowDirective is the staleflow analyzer's suppression and
// discharge directive name.
const staleflowDirective = "tolerates-stale"

// staleSrc identifies where a tainted value was read.
type staleSrc struct {
	pos  token.Pos
	desc string // "Read" or "GlobalRead"
}

// staleSink is one finding: a tainted value reaching an
// exact-semantics site.
type staleSink struct {
	pos  token.Pos
	what string
	src  staleSrc
}

// staleSummary is one function's interprocedural behavior.
type staleSummary struct {
	returnsStale  bool     // some return value is tainted by a read inside
	paramToReturn []bool   // parameter i flows to a return value
	paramToSink   []string // parameter i reaches a sink ("" if not; else the sink description)
}

// staleDischargeOps are the order-independent accumulation operators:
// folding stale operands with them commutes, so taint stops there.
var staleDischargeOps = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true,
	token.AND_ASSIGN: true, token.OR_ASSIGN: true, token.XOR_ASSIGN: true,
}

// staleFmtTaintFuncs are fmt functions that return their (possibly
// tainted) arguments re-formatted rather than emitting them.
var staleFmtTaintFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
}

// staleFmtSinkFuncs are fmt output functions: a stale value printed is
// a nondeterministic observable.
var staleFmtSinkFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// stalePvmSinkArgs maps pvm.Task messaging methods to the argument
// positions that route the message (destination, tag): stale routing
// delivers to the wrong place.
var stalePvmSinkArgs = map[string][]int{
	"Send": {0, 1}, "SendWithCallback": {0, 1}, "Multicast": {0, 1}, "Bcast": {0},
}

// staleReadCall recognizes a source: a method call named Read or
// GlobalRead on a receiver type named Node. Recognition is structural
// (type *name*, not import path) so self-contained fixtures exercise
// the analyzer without importing the real core package.
func staleReadCall(info *types.Info, call *ast.CallExpr) (staleSrc, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return staleSrc{}, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return staleSrc{}, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return staleSrc{}, false
	}
	rt := recv.Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Name() != "Node" {
		return staleSrc{}, false
	}
	switch fn.Name() {
	case "Read":
		if len(call.Args) == 1 {
			return staleSrc{pos: call.Pos(), desc: "Read"}, true
		}
	case "GlobalRead":
		if len(call.Args) != 3 {
			return staleSrc{}, false
		}
		// A constant age of 0 is strict coherence: the read blocks
		// until the current iteration's value arrives.
		if tv, ok := info.Types[call.Args[2]]; ok && tv.Value != nil && tv.Value.String() == "0" {
			return staleSrc{}, false
		}
		return staleSrc{pos: call.Pos(), desc: "GlobalRead"}, true
	}
	return staleSrc{}, false
}

// staleSuppressedLines collects, program-wide, the lines carrying a
// tolerates-stale directive: a source on (or just under) such a line
// produces no taint anywhere, including through summaries.
func staleSuppressedLines(prog *Program) map[string]map[int]bool {
	key := "staleflow-suppressed"
	if c, ok := prog.Cache[key]; ok {
		return c.(map[string]map[int]bool)
	}
	out := map[string]map[int]bool{}
	for _, pkg := range prog.Pkgs {
		for _, pc := range collectDirectives(pkg.Fset, pkg.Files) {
			if pc.dir == nil || !pc.dir.Has(staleflowDirective) {
				continue
			}
			if out[pc.pos.Filename] == nil {
				out[pc.pos.Filename] = map[int]bool{}
			}
			out[pc.pos.Filename][pc.pos.Line] = true
		}
	}
	prog.Cache[key] = out
	return out
}

// staleFn is one intra-function taint analysis: seeded either by the
// read sources it finds (reporting and returnsStale) or by a parameter
// (summary rows).
type staleFn struct {
	prog       *Program
	fi         *FuncInfo
	info       *types.Info
	fset       *token.FileSet
	sums       map[*types.Func]*staleSummary
	annotated  map[*types.Func]bool
	suppressed map[string]map[int]bool

	taint    map[types.Object]staleSrc
	monotone map[*ast.AssignStmt]bool
	sinks    []staleSink
	retStale *staleSrc
}

func newStaleFn(prog *Program, fi *FuncInfo, sums map[*types.Func]*staleSummary) *staleFn {
	return &staleFn{
		prog: prog, fi: fi, info: fi.Pkg.Info, fset: fi.Pkg.Fset, sums: sums,
		annotated:  commuteAnnotated(prog),
		suppressed: staleSuppressedLines(prog),
		taint:      map[types.Object]staleSrc{},
		monotone:   findMonotoneMerges(fi.Decl.Body),
	}
}

// findMonotoneMerges marks the assignments of min/max compare-assign
// merges: `if cand < best { best = cand }` (any of < <= > >=). The
// merged variable converges to the same extremum whatever order stale
// candidates arrive in, so the shape discharges taint.
func findMonotoneMerges(body *ast.BlockStmt) map[*ast.AssignStmt]bool {
	out := map[*ast.AssignStmt]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Else != nil || len(ifs.Body.List) != 1 {
			return true
		}
		cond, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch cond.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
		default:
			return true
		}
		as, ok := ifs.Body.List[0].(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 {
			return true
		}
		l, r := exprText(cond.X), exprText(cond.Y)
		lhs, rhs := exprText(as.Lhs[0]), exprText(as.Rhs[0])
		if lhs == "" || rhs == "" {
			return true
		}
		if (lhs == l && rhs == r) || (lhs == r && rhs == l) {
			out[as] = true
		}
		return true
	})
	return out
}

// exprText renders simple ident/selector/index chains for structural
// comparison ("" for anything more complex).
func exprText(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if x := exprText(e.X); x != "" {
			return x + "." + e.Sel.Name
		}
	case *ast.IndexExpr:
		x, i := exprText(e.X), exprText(e.Index)
		if x != "" && i != "" {
			return x + "[" + i + "]"
		}
	}
	return ""
}

// sourceSuppressed reports whether a read at pos carries (or sits just
// under) a tolerates-stale annotation.
func (s *staleFn) sourceSuppressed(pos token.Pos) bool {
	position := s.fset.Position(pos)
	lines := s.suppressed[position.Filename]
	return lines != nil && (lines[position.Line] || lines[position.Line-1])
}

// tainted returns the source of e's taint, or nil.
func (s *staleFn) tainted(e ast.Expr) *staleSrc {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := s.objOf(e); obj != nil {
			if src, ok := s.taint[obj]; ok {
				return &src
			}
		}
	case *ast.ParenExpr:
		return s.tainted(e.X)
	case *ast.UnaryExpr:
		return s.tainted(e.X)
	case *ast.StarExpr:
		return s.tainted(e.X)
	case *ast.BinaryExpr:
		if src := s.tainted(e.X); src != nil {
			return src
		}
		return s.tainted(e.Y)
	case *ast.SelectorExpr:
		return s.tainted(e.X)
	case *ast.IndexExpr:
		if src := s.tainted(e.X); src != nil {
			return src
		}
		return s.tainted(e.Index)
	case *ast.SliceExpr:
		return s.tainted(e.X)
	case *ast.TypeAssertExpr:
		return s.tainted(e.X)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if src := s.tainted(elt); src != nil {
				return src
			}
		}
	case *ast.CallExpr:
		return s.callTaint(e)
	}
	return nil
}

// callTaint decides whether a call expression's result is tainted.
func (s *staleFn) callTaint(call *ast.CallExpr) *staleSrc {
	if src, ok := staleReadCall(s.info, call); ok {
		if s.sourceSuppressed(src.pos) {
			return nil
		}
		return &src
	}
	// Conversions keep their operand's taint.
	if tv, ok := s.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return s.tainted(call.Args[0])
	}
	// Builtins (len, append, min, ...) derive from their operands.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := s.info.Uses[id].(*types.Builtin); isBuiltin {
			for _, arg := range call.Args {
				if src := s.tainted(arg); src != nil {
					return src
				}
			}
			return nil
		}
	}
	callee := calleeOf(s.info, call)
	if callee == nil {
		return nil
	}
	// A verified-commutative merge tolerates stale operands by
	// construction: taint is discharged, result and all.
	if s.annotated[callee] {
		return nil
	}
	path := pkgPathOf(callee)
	if path == "math" || (path == "fmt" && staleFmtTaintFuncs[callee.Name()]) {
		for _, arg := range call.Args {
			if src := s.tainted(arg); src != nil {
				return src
			}
		}
		return nil
	}
	if sum := s.sums[callee]; sum != nil {
		if sum.returnsStale {
			return &staleSrc{pos: call.Pos(), desc: callee.Name() + " (reads stale internally)"}
		}
		for i, arg := range call.Args {
			if i < len(sum.paramToReturn) && sum.paramToReturn[i] {
				if src := s.tainted(arg); src != nil {
					return src
				}
			}
		}
	}
	return nil
}

func (s *staleFn) objOf(id *ast.Ident) types.Object {
	if obj := s.info.Uses[id]; obj != nil {
		return obj
	}
	return s.info.Defs[id]
}

// propagate runs the flow-insensitive assignment fixpoint over the
// body: anything assigned from a tainted expression becomes tainted,
// except through the tolerant shapes.
func (s *staleFn) propagate() {
	for changed := true; changed; {
		changed = false
		ast.Inspect(s.fi.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if staleDischargeOps[n.Tok] || s.monotone[n] {
					return true // tolerant accumulation / monotone merge
				}
				if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
					return true
				}
				if len(n.Lhs) > 1 && len(n.Rhs) == 1 {
					// Multi-value: u, ok := node.Read(loc) taints u only;
					// any other tainted call taints every binding.
					call, isCall := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
					if isCall {
						if src, isRead := staleReadCall(s.info, call); isRead && !s.sourceSuppressed(src.pos) {
							changed = s.taintLhs(n.Lhs[0], src) || changed
							return true
						}
					}
					if src := s.tainted(n.Rhs[0]); src != nil {
						for _, lhs := range n.Lhs {
							changed = s.taintLhs(lhs, *src) || changed
						}
					}
					return true
				}
				for i, lhs := range n.Lhs {
					if i < len(n.Rhs) {
						if src := s.tainted(n.Rhs[i]); src != nil {
							changed = s.taintLhs(lhs, *src) || changed
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						if src := s.tainted(n.Values[i]); src != nil {
							if obj := s.objOf(name); obj != nil {
								changed = s.taintObj(obj, *src) || changed
							}
						}
					}
				}
			case *ast.RangeStmt:
				if src := s.tainted(n.X); src != nil {
					if n.Value != nil {
						changed = s.taintLhs(n.Value, *src) || changed
					}
					// Map keys of a tainted map are data; slice indexes
					// are ordinals and stay clean.
					if n.Key != nil {
						if tv, ok := s.info.Types[n.X]; ok {
							if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
								changed = s.taintLhs(n.Key, *src) || changed
							}
						}
					}
				}
			}
			return true
		})
	}
}

func (s *staleFn) taintLhs(lhs ast.Expr, src staleSrc) bool {
	id, ok := rootIdent(lhs)
	if !ok {
		return false
	}
	obj := s.objOf(id)
	if obj == nil {
		return false
	}
	return s.taintObj(obj, src)
}

func (s *staleFn) taintObj(obj types.Object, src staleSrc) bool {
	if _, ok := s.taint[obj]; ok {
		return false
	}
	s.taint[obj] = src
	return true
}

// findSinks walks the body reporting every tainted value at an
// exact-semantics site, and records tainted returns.
func (s *staleFn) findSinks() {
	ast.Inspect(s.fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if as := soleAssign(n.Body); as != nil && s.monotone[as] {
				return true
			}
			if src := s.tainted(n.Cond); src != nil && exitsEarly(n) {
				s.sinks = append(s.sinks, staleSink{pos: n.Cond.Pos(), what: "gates an early return or break", src: *src})
			}
		case *ast.ForStmt:
			if n.Cond != nil {
				if src := s.tainted(n.Cond); src != nil {
					s.sinks = append(s.sinks, staleSink{pos: n.Cond.Pos(), what: "bounds a loop", src: *src})
				}
			}
		case *ast.IndexExpr:
			if src := s.tainted(n.Index); src != nil {
				what := "used as slice index"
				if tv, ok := s.info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						what = "used as map key"
					}
				}
				s.sinks = append(s.sinks, staleSink{pos: n.Index.Pos(), what: what, src: *src})
			}
		case *ast.CompositeLit:
			s.locationLitSink(n)
		case *ast.CallExpr:
			s.callSinks(n)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if src := s.tainted(res); src != nil && s.retStale == nil {
					cp := *src
					s.retStale = &cp
				}
			}
		}
		return true
	})
}

// soleAssign returns the block's statement when it is exactly one
// assignment, else nil (the monotone-merge lookup key for if bodies).
func soleAssign(b *ast.BlockStmt) *ast.AssignStmt {
	if len(b.List) != 1 {
		return nil
	}
	as, _ := b.List[0].(*ast.AssignStmt)
	return as
}

// exitsEarly reports whether the if statement's branches contain a
// return or break (not descending into nested function literals):
// gating those on a stale value makes termination depend on arrival
// order. A stale-guarded continue merely reorders work and is
// tolerated.
func exitsEarly(ifs *ast.IfStmt) bool {
	found := false
	check := func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				found = true
			}
		}
		return !found
	}
	ast.Inspect(ifs.Body, check)
	if ifs.Else != nil {
		ast.Inspect(ifs.Else, check)
	}
	return found
}

// locationLitSink flags tainted values landing in a Location's ID: a
// stale location identity addresses the wrong cell forever after.
func (s *staleFn) locationLitSink(lit *ast.CompositeLit) {
	tv, ok := s.info.Types[lit]
	if !ok {
		return
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Location" {
		return
	}
	for i, elt := range lit.Elts {
		val := elt
		isID := i == 0
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, _ := kv.Key.(*ast.Ident)
			isID = key != nil && key.Name == "ID"
			val = kv.Value
		}
		if !isID {
			continue
		}
		if src := s.tainted(val); src != nil {
			s.sinks = append(s.sinks, staleSink{pos: val.Pos(), what: "flows into a Location ID", src: *src})
		}
	}
}

// callSinks flags tainted arguments at calls with exact-semantics
// parameters: panic and fmt output, pvm message routing, and callees
// whose summary says the parameter reaches a sink inside.
func (s *staleFn) callSinks(call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := s.info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "panic" {
			for _, arg := range call.Args {
				if src := s.tainted(arg); src != nil {
					s.sinks = append(s.sinks, staleSink{pos: arg.Pos(), what: "flows into a panic", src: *src})
				}
			}
			return
		}
	}
	callee := calleeOf(s.info, call)
	if callee == nil {
		return
	}
	if s.annotated[callee] {
		return // commutative merges tolerate stale operands
	}
	if pkgPathOf(callee) == "fmt" && staleFmtSinkFuncs[callee.Name()] {
		for _, arg := range call.Args {
			if src := s.tainted(arg); src != nil {
				s.sinks = append(s.sinks, staleSink{pos: arg.Pos(), what: "flows into formatted output", src: *src})
			}
		}
		return
	}
	if recv := callee.Type().(*types.Signature).Recv(); recv != nil {
		rt := recv.Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok && named.Obj().Name() == "Task" {
			for _, i := range stalePvmSinkArgs[callee.Name()] {
				if i < len(call.Args) {
					if src := s.tainted(call.Args[i]); src != nil {
						s.sinks = append(s.sinks, staleSink{pos: call.Args[i].Pos(), what: "routes a message (destination/tag)", src: *src})
					}
				}
			}
			return
		}
	}
	if sum := s.sums[callee]; sum != nil {
		for i, arg := range call.Args {
			if i < len(sum.paramToSink) && sum.paramToSink[i] != "" {
				if src := s.tainted(arg); src != nil {
					s.sinks = append(s.sinks, staleSink{pos: arg.Pos(),
						what: sum.paramToSink[i] + " inside " + callee.Name(), src: *src})
				}
			}
		}
	}
}

// seedParam taints one parameter (summary rows).
func (s *staleFn) seedParam(i int) bool {
	params := s.fi.Obj.Type().(*types.Signature).Params()
	if i >= params.Len() {
		return false
	}
	s.taint[params.At(i)] = staleSrc{pos: s.fi.Decl.Pos(), desc: "parameter " + params.At(i).Name()}
	return true
}

// staleSummaries computes (once per Program, to a fixpoint) every
// loaded function's staleflow summary.
func staleSummaries(prog *Program) map[*types.Func]*staleSummary {
	key := "staleflow-sums"
	if c, ok := prog.Cache[key]; ok {
		return c.(map[*types.Func]*staleSummary)
	}
	sums := map[*types.Func]*staleSummary{}
	prog.Cache[key] = sums
	var fns []*FuncInfo
	prog.Funcs(func(fi *FuncInfo) { fns = append(fns, fi) })
	for _, fi := range fns {
		n := fi.Obj.Type().(*types.Signature).Params().Len()
		sums[fi.Obj] = &staleSummary{paramToReturn: make([]bool, n), paramToSink: make([]string, n)}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			sum := sums[fi.Obj]
			// Source-seeded row: does a read inside taint a return?
			s := newStaleFn(prog, fi, sums)
			s.propagate()
			s.findSinks()
			if s.retStale != nil && !sum.returnsStale {
				sum.returnsStale = true
				changed = true
			}
			// Parameter rows.
			for i := range sum.paramToReturn {
				if sum.paramToReturn[i] && sum.paramToSink[i] != "" {
					continue
				}
				ps := newStaleFn(prog, fi, sums)
				if !ps.seedParam(i) {
					continue
				}
				ps.propagate()
				ps.findSinks()
				if ps.retStale != nil && !sum.paramToReturn[i] {
					sum.paramToReturn[i] = true
					changed = true
				}
				if len(ps.sinks) > 0 && sum.paramToSink[i] == "" {
					sum.paramToSink[i] = ps.sinks[0].what
					changed = true
				}
			}
		}
	}
	return sums
}

// Staleflow reports flows from possibly-stale DSM reads into
// exact-semantics sinks. The paper's bargain is that *tolerant*
// consumers (commutative merges, monotone folds) may read stale data
// for throughput; this analyzer statically delimits the bargain by
// proving where stale values could instead reach sites that demand
// exactness — termination decisions, map keys and slice indices,
// location identity, message routing, panics and output. Findings are
// discharged by restructuring, or by //nscc:tolerates-stale (with a
// loc=<name> payload tying the annotation to the DSM location for the
// simrace reconciliation).
var Staleflow = &Analyzer{
	Name:      "staleflow",
	Directive: staleflowDirective,
	Doc: "possibly-stale DSM reads (Node.Read, age-bounded GlobalRead) flowing " +
		"into exact-semantics sinks; annotate tolerated flows //nscc:tolerates-stale",
	Run: func(p *Pass) {
		sums := staleSummaries(p.Prog)
		for _, fi := range funcsOf(p.Prog, p.Pkg) {
			s := newStaleFn(p.Prog, fi, sums)
			// Credit read-site annotations as used suppressions.
			if p.OnSuppress != nil {
				ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if src, isRead := staleReadCall(s.info, call); isRead && s.sourceSuppressed(src.pos) {
							p.OnSuppress(p.Fset.Position(src.pos))
						}
					}
					return true
				})
			}
			s.propagate()
			s.findSinks()
			for _, sink := range s.sinks {
				srcPos := p.Fset.Position(sink.src.pos)
				p.Reportf(sink.pos, "possibly-stale value (%s at %s:%d) %s; synchronize the read or annotate //nscc:tolerates-stale",
					sink.src.desc, filepath.Base(srcPos.Filename), srcPos.Line, sink.what)
			}
		}
	},
}
