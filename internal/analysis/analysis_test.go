package analysis_test

import (
	"path/filepath"
	"testing"

	"nscc/internal/analysis"
	"nscc/internal/analysis/analysistest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestWallclock(t *testing.T) {
	analysistest.Run(t, fixture("wallclock"), analysis.Wallclock)
}

func TestGlobalrand(t *testing.T) {
	analysistest.Run(t, fixture("globalrand"), analysis.Globalrand)
}

func TestRawconc(t *testing.T) {
	analysistest.Run(t, fixture("rawconc"), analysis.Rawconc)
}

func TestMaporder(t *testing.T) {
	analysistest.Run(t, fixture("maporder"), analysis.Maporder)
}

func TestStaleflow(t *testing.T) {
	analysistest.Run(t, fixture("staleflow"), analysis.Staleflow)
}

func TestCommute(t *testing.T) {
	analysistest.Run(t, fixture("commute"), analysis.Commute)
}

func TestDetguard(t *testing.T) {
	analysistest.Run(t, fixture("detguard"), analysis.Detguard)
}

func TestUnuseddirective(t *testing.T) {
	analysistest.Run(t, fixture("unuseddirective"), analysis.Unuseddirective)
}

// TestRawconcScope pins the packages the rawconc analyzer polices: the
// simulated-process layers are in scope; the coroutine substrate
// (internal/sim) and the host worker pool (internal/runner) are not.
func TestRawconcScope(t *testing.T) {
	in := []string{
		"nscc/internal/core", "nscc/internal/pvm", "nscc/internal/netsim",
		"nscc/internal/ga", "nscc/internal/ga/functions", "nscc/internal/bayes",
		"nscc/internal/faults", "nscc/internal/rollback",
		"nscc/internal/partition", "nscc/internal/exper",
		"nscc/internal/graph",
	}
	out := []string{
		"nscc/internal/sim", "nscc/internal/runner", "nscc/internal/trace",
		"nscc/internal/metrics", "nscc/internal/simrace", "nscc/cmd/nscc-ga",
		"nscc/internal/corelike", // prefix match must not catch cousins
	}
	for _, path := range in {
		if !analysis.Rawconc.Match(path) {
			t.Errorf("rawconc should apply to %s", path)
		}
	}
	for _, path := range out {
		if analysis.Rawconc.Match(path) {
			t.Errorf("rawconc should not apply to %s", path)
		}
	}
}

// TestAllAnalyzers pins the published suite: names are unique, every
// analyzer has docs and a Run body (the multichecker and the CI lint
// job both iterate All()).
func TestAllAnalyzers(t *testing.T) {
	all := analysis.All()
	if len(all) != 8 {
		t.Fatalf("expected 8 analyzers, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing name, doc, or run", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
