// Package analysistest runs an analyzer over a golden fixture package
// and checks its diagnostics against // want "regexp" comments, in the
// style of golang.org/x/tools/go/analysis/analysistest (rebuilt on the
// standard library, since this repository builds offline).
//
// A fixture is a directory of Go files under testdata; a line expecting
// diagnostics carries a trailing comment:
//
//	t := time.Now() // want `time\.Now reads the wall clock`
//
// Multiple expectations on one line are written as multiple quoted
// regexps. Every diagnostic must match a want on its line and every
// want must be matched — extra or missing findings fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"nscc/internal/analysis"
)

// wantRe extracts the quoted regexps of a want comment. Both "..." and
// `...` quoting are accepted.
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// expectation is one // want entry: a pattern expected to match a
// diagnostic on its line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run applies the analyzer to the fixture package in dir and reports
// any mismatch between its diagnostics and the fixture's want
// comments. The analyzer's Match scope is deliberately ignored:
// fixtures test the check itself, not the repository scoping.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}

	info := analysis.NewInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("fixture/"+filepath.Base(dir), fset, files, info)
	if err != nil {
		t.Fatalf("fixture %s does not typecheck: %v", dir, err)
	}

	pass := analysis.NewPass(a, fset, files, pkg, info, nil)
	a.Run(pass)
	diags := pass.Diagnostics()

	wants := collectWants(t, fset, files)
	for _, d := range diags {
		if !consume(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s", relPos(d.File, d.Line), d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: expected diagnostic matching %q, got none", relPos(w.file, w.line), w.pattern)
		}
	}
}

// parseDir parses every .go file of the fixture directory.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files")
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// collectWants gathers every // want expectation in the fixture.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text[idx+len("want "):], -1) {
					pat := m[1]
					if m[2] != "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", relPos(pos.Filename, pos.Line), pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants
}

// consume marks the first unmatched want on the diagnostic's line whose
// pattern matches, reporting whether one existed.
func consume(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.File && w.line == d.Line && w.pattern.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func relPos(file string, line int) string {
	return fmt.Sprintf("%s:%d", filepath.Base(file), line)
}
