// Package analysis is the repository's static-analysis framework and
// its determinism-contract analyzers, shipped as the nscc-lint command.
//
// The simulator's reproducibility rests on a contract no compiler
// enforces: simulated code takes all time from the virtual clock
// (sim.Engine.Now), all randomness from engine-derived streams
// (Engine.NewRng, runner.DeriveSeed), schedules all concurrency through
// sim.Proc coroutines rather than raw goroutines, and never lets Go's
// randomized map iteration order reach an output or an aggregate. Any
// violation silently breaks byte-identical replay — the property every
// experiment, test, and sweep in this repository depends on — so the
// contract is enforced mechanically, by the four analyzers here:
//
//   - wallclock: no wall-clock time (time.Now, time.Since, time.Sleep,
//     timers) in simulation code. Host-side measurement code annotates
//     itself with a //nscc:wallclock directive.
//   - globalrand: no draws from math/rand's global source and no
//     constant-literal rand.NewSource seeds; randomness must derive
//     from a run's seed so replays agree.
//   - rawconc: no go statements, channels, select, or sync/atomic in
//     the simulated-process packages, where sim.Proc coroutines are
//     the only legal concurrency.
//   - maporder: no map iteration whose body appends to slices, writes
//     output, or sends — the iteration order would leak into results.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf, want-comment fixture tests) but is built
// only on the standard library (go/ast, go/types, and the source
// importer), because this repository vendors nothing and builds
// offline. Packages under analysis come from `go list -json`;
// dependencies are type-checked from source through one shared
// importer so repeated loads stay cheap.
//
// A diagnostic at a deliberate violation is suppressed by a
// //nscc:<analyzer> directive comment on the same line or the line
// immediately above, e.g.:
//
//	//nscc:wallclock -- host-side throughput meter, not simulated time
//	start := time.Now()
//
// The nscc-lint command (cmd/nscc-lint) runs all four analyzers over
// package patterns and exits nonzero on findings; CI runs it next to
// go vet on every push.
package analysis
