// Package runner executes embarrassingly parallel experiment sweeps on
// a worker pool. Every cell of the paper's evaluation — one
// (variant × trial × P × function/network) simulation — is an
// independent, fully seeded deterministic DES run, so the sweep itself
// parallelizes freely as long as three properties survive:
//
//   - determinism: jobs are keyed by a stable index and results land in
//     their original slots, so aggregation order (and therefore every
//     float sum and rendered table) is byte-identical at any worker
//     count;
//   - first-error propagation: an error cancels the jobs not yet
//     dispatched, and the error reported is the failing job with the
//     lowest index, independent of scheduling;
//   - panic containment: a panic inside a job is captured and returned
//     as an error naming the failing cell, instead of killing the whole
//     sweep with a bare stack.
//
// The package also owns seed derivation (DeriveSeed): one
// collision-resistant mix replaces the ad-hoc linear seed arithmetic
// the drivers used to inline.
package runner

import (
	"fmt"
	"runtime"
	"sync"
)

// Workers normalizes a requested worker count: values below 1 select
// runtime.GOMAXPROCS(0), i.e. one worker per available CPU.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Run executes jobs 0..n-1 on a pool of workers (normalized by
// Workers; never more workers than jobs). fn(i) runs job i. The first
// failure — by job index, not by wall-clock arrival — is returned, and
// jobs not yet dispatched when any failure is observed are skipped. A
// panic inside a job is recovered and reported as an error naming the
// job via label (label may be nil).
func Run(n, workers int, label func(int) string, fn func(int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		// In-line fast path: no goroutines, no synchronization. The
		// pooled path must produce the same results and the same error;
		// the determinism tests pin that equivalence down.
		for i := 0; i < n; i++ {
			if err := runJob(i, label, fn); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		mu      sync.Mutex
		next    int
		errIdx  = -1
		firstEr error
		wg      sync.WaitGroup
	)
	take := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if errIdx >= 0 || next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	fail := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if errIdx < 0 || i < errIdx {
			errIdx, firstEr = i, err
		}
	}
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := take()
				if !ok {
					return
				}
				if err := runJob(i, label, fn); err != nil {
					fail(i, err)
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}

// runJob executes one job with panic capture.
func runJob(i int, label func(int) string, fn func(int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("runner: job %s panicked: %v", jobName(i, label), r)
		}
	}()
	if err := fn(i); err != nil {
		return fmt.Errorf("%s: %w", jobName(i, label), err)
	}
	return nil
}

func jobName(i int, label func(int) string) string {
	if label != nil {
		return label(i)
	}
	return fmt.Sprintf("#%d", i)
}

// Map runs fn over 0..n-1 on a worker pool and collects the results in
// job order: out[i] is fn(i)'s value whatever worker computed it and
// whenever it finished, so downstream aggregation is order-stable at
// any worker count. Error and panic semantics are Run's.
func Map[T any](n, workers int, label func(int) string, fn func(int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Run(n, workers, label, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
