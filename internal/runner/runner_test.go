package runner

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersNormalization(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("non-positive requests must normalize to at least one worker")
	}
	if Workers(5) != 5 {
		t.Fatal("positive requests pass through")
	}
}

func TestRunZeroJobs(t *testing.T) {
	called := false
	for _, w := range []int{0, 1, 8} {
		if err := Run(0, w, nil, func(int) error { called = true; return nil }); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
	}
	if called {
		t.Fatal("fn must not run for an empty sweep")
	}
}

func TestRunMoreWorkersThanJobs(t *testing.T) {
	var ran [3]int32
	if err := Run(3, 64, nil, func(i int) error {
		atomic.AddInt32(&ran[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, n := range ran {
		if n != 1 {
			t.Fatalf("job %d ran %d times", i, n)
		}
	}
}

func TestMapCollectsInOrder(t *testing.T) {
	n := 50
	out, err := Map(n, 8, nil, func(i int) (int, error) {
		// Finish out of order so slot placement, not completion order,
		// is what keeps the output stable.
		time.Sleep(time.Duration((n-i)%7) * time.Millisecond)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestRunErrorCancelsRemainingJobs(t *testing.T) {
	boom := errors.New("boom")
	var executed int32
	err := Run(100, 4, func(i int) string { return fmt.Sprintf("cell-%d", i) }, func(i int) error {
		atomic.AddInt32(&executed, 1)
		if i == 0 {
			return boom
		}
		time.Sleep(2 * time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "cell-0") {
		t.Fatalf("error %q does not name the failing cell", err)
	}
	// The error lands while at most the in-flight jobs (one per worker)
	// run; everything not yet dispatched must be skipped.
	if n := atomic.LoadInt32(&executed); n > 20 {
		t.Fatalf("%d jobs executed after an immediate failure; cancellation is not prompt", n)
	}
}

func TestRunReportsLowestFailingIndex(t *testing.T) {
	// Job 7 fails instantly, job 2 fails after a delay: the reported
	// error must be job 2's regardless of arrival order.
	err := Run(8, 8, nil, func(i int) error {
		switch i {
		case 2:
			time.Sleep(10 * time.Millisecond)
			return errors.New("late low-index failure")
		case 7:
			return errors.New("early high-index failure")
		}
		time.Sleep(20 * time.Millisecond)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "low-index") {
		t.Fatalf("err = %v, want the lowest-index failure", err)
	}
}

func TestRunPanicNamesCell(t *testing.T) {
	label := func(i int) string { return fmt.Sprintf("F%d P=4 trial=%d", i+1, i) }
	for _, w := range []int{1, 4} {
		err := Run(3, w, label, func(i int) error {
			if i == 1 {
				panic("exploded mid-cell")
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panic not surfaced", w)
		}
		for _, want := range []string{"F2 P=4 trial=1", "exploded mid-cell"} {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("workers=%d: error %q missing %q", w, err, want)
			}
		}
	}
}

func TestRunSerialAndPooledAgree(t *testing.T) {
	job := func(i int) (int, error) { return i*31 + 7, nil }
	a, err := Map(20, 1, nil, job)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Map(20, 6, nil, job)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("slot %d differs between worker counts", i)
		}
	}
}
