package runner

import "testing"

func TestDeriveSeedDeterministic(t *testing.T) {
	a := DeriveSeed(2000, 3, 5, 8)
	b := DeriveSeed(2000, 3, 5, 8)
	if a != b {
		t.Fatal("equal inputs must give equal seeds")
	}
}

func TestDeriveSeedOrderAndAritySensitive(t *testing.T) {
	if DeriveSeed(1, 2, 3) == DeriveSeed(1, 3, 2) {
		t.Fatal("dimension order must matter")
	}
	if DeriveSeed(1, 2) == DeriveSeed(1, 2, 0) {
		t.Fatal("arity must matter")
	}
	if DeriveSeed(1) == DeriveSeed(2) {
		t.Fatal("base must matter")
	}
}

// TestDeriveSeedNoLinearCollisions pins the motivating defect: the old
// linear formula Seed + trial*7919 + fn*31 + p collides by construction
// (e.g. (trial, fn, p) and (trial, fn+p/31-ish, ...) aliases, and
// trial+1 aliases a p shifted by 7919). The hash-combined derivation
// must keep a dense grid far larger than any profile collision-free.
func TestDeriveSeedNoLinearCollisions(t *testing.T) {
	const base = 2000
	seen := make(map[int64][3]int64)
	for trial := int64(0); trial < 50; trial++ {
		for fn := int64(1); fn <= 8; fn++ {
			for p := int64(1); p <= 64; p++ {
				s := DeriveSeed(base, trial, fn, p)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: (%d,%d,%d) and %v -> %d", trial, fn, p, prev, s)
				}
				seen[s] = [3]int64{trial, fn, p}
			}
		}
	}
}

// The old formula's concrete collision, kept as documentation that the
// defect was real: trial*7919 aliases p+7919 one trial earlier.
func TestOldLinearFormulaCollided(t *testing.T) {
	old := func(seed, trial, fn, p int64) int64 { return seed + trial*7919 + fn*31 + p }
	if old(2000, 1, 1, 1) != old(2000, 0, 1, 7920) {
		t.Fatal("expected the documented alias in the old formula")
	}
	if DeriveSeed(2000, 1, 1, 1) == DeriveSeed(2000, 0, 1, 7920) {
		t.Fatal("DeriveSeed must not reproduce the alias")
	}
}
