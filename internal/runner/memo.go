package runner

import "encoding/json"

// Memo is the byte-level result cache MapMemo consults before
// dispatching a job: Lookup returns job i's cached encoding if one is
// valid, Store journals a freshly computed encoding. Implementations
// (internal/ckpt satisfies this structurally) must be safe for
// concurrent use by pool workers and own the mapping from job index to
// cache identity.
type Memo interface {
	Lookup(i int) ([]byte, bool)
	Store(i int, data []byte) error
}

// MapMemo is Map with memoization: each job's result is looked up in
// memo first — a hit decodes the journaled JSON instead of running
// fn — and each miss is journaled after fn returns. A nil memo is
// exactly Map.
//
// Both paths deliver out[i] by decoding the journaled bytes (on a
// miss, the bytes just written), so a replayed cell is bit-identical
// to a freshly computed one by construction, and JSON's exact float64
// round-trip keeps both identical to an uncached Map. Error and panic
// semantics are Run's; a Store failure fails the job (a cache that
// cannot journal must not pretend the sweep is resumable).
func MapMemo[T any](n, workers int, label func(int) string, memo Memo, fn func(int) (T, error)) ([]T, error) {
	if memo == nil {
		return Map(n, workers, label, fn)
	}
	out := make([]T, n)
	err := Run(n, workers, label, func(i int) error {
		if data, ok := memo.Lookup(i); ok {
			return json.Unmarshal(data, &out[i])
		}
		v, err := fn(i)
		if err != nil {
			return err
		}
		data, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if err := memo.Store(i, data); err != nil {
			return err
		}
		return json.Unmarshal(data, &out[i])
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
