package runner

// DeriveSeed derives a run seed from a base seed and the coordinates of
// a sweep cell (stream tag, trial, function number, processor count,
// ...). It replaces the drivers' old inline arithmetic
// (Seed + trial*7919 + fn.No*31 + p), whose linear combinations
// collide across cells: trial+1 at p shares a seed with trial at
// p+7919, and nearby (fn, p) pairs alias within one trial.
//
// Each dimension is passed through a SplitMix64 finalizer and folded
// into a running state that is re-finalized per dimension, so the map
// from (base, dims...) to seeds behaves like a 64-bit hash: order- and
// arity-sensitive, with collisions at the birthday bound (~2^-32 for
// the paper's few-thousand-cell spaces) instead of by construction.
// Equal inputs give equal seeds, keeping every run reproducible.
func DeriveSeed(base int64, dims ...int64) int64 {
	z := mix64(uint64(base) + 0x9E3779B97F4A7C15)
	for _, d := range dims {
		z = mix64(z ^ mix64(uint64(d)+0x9E3779B97F4A7C15))
	}
	return int64(z)
}

// mix64 is the SplitMix64 finalizer (a 64-bit bijection).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
