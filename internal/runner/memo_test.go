package runner

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

// mapMemo is an in-memory Memo for exercising MapMemo's two paths.
type mapMemo struct {
	mu       sync.Mutex
	data     map[int][]byte
	storeErr error
}

func (m *mapMemo) Lookup(i int) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.data[i]
	return v, ok
}

func (m *mapMemo) Store(i int, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.storeErr != nil {
		return m.storeErr
	}
	if m.data == nil {
		m.data = make(map[int][]byte)
	}
	m.data[i] = data
	return nil
}

func memoLabel(i int) string { return "job" }

func TestMapMemoNilIsMap(t *testing.T) {
	calls := 0
	out, err := MapMemo(3, 1, memoLabel, nil, func(i int) (int, error) {
		calls++
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 || out[0] != 0 || out[1] != 1 || out[2] != 4 {
		t.Fatalf("calls=%d out=%v", calls, out)
	}
}

func TestMapMemoHitSkipsFn(t *testing.T) {
	m := &mapMemo{data: map[int][]byte{1: []byte("7")}}
	var ran []int
	out, err := MapMemo(3, 1, memoLabel, m, func(i int) (int, error) {
		ran = append(ran, i)
		return i + 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Job 1 replays the cached encoding; 0 and 2 run and are journaled.
	if out[0] != 10 || out[1] != 7 || out[2] != 12 {
		t.Fatalf("out=%v", out)
	}
	if len(ran) != 2 || ran[0] != 0 || ran[1] != 2 {
		t.Fatalf("fn ran for %v, want [0 2]", ran)
	}
	if string(m.data[0]) != "10" || string(m.data[2]) != "12" {
		t.Fatalf("journaled encodings %q %q", m.data[0], m.data[2])
	}
}

func TestMapMemoStoreErrorFailsJob(t *testing.T) {
	m := &mapMemo{storeErr: errors.New("journal full")}
	_, err := MapMemo(1, 1, memoLabel, m, func(i int) (int, error) { return i, nil })
	if err == nil || !strings.Contains(err.Error(), "journal full") {
		t.Fatalf("store error not propagated: %v", err)
	}
}

func TestMapMemoCachedEqualsFresh(t *testing.T) {
	// The float round-trip contract behind byte-identical resumes: a
	// value decoded from the journal equals the freshly computed one.
	fn := func(i int) (float64, error) { return 1.0 / float64(i+3), nil }
	m := &mapMemo{}
	fresh, err := MapMemo(4, 1, memoLabel, m, fn)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := MapMemo(4, 1, memoLabel, m, func(i int) (float64, error) {
		return 0, errors.New("fn ran on a warm cache")
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Map(4, 1, memoLabel, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh {
		if fresh[i] != cached[i] || fresh[i] != plain[i] {
			t.Fatalf("job %d: fresh %v cached %v plain %v", i, fresh[i], cached[i], plain[i])
		}
	}
}
