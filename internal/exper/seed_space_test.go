package exper

import (
	"testing"

	"nscc/internal/ga/functions"
	"nscc/internal/runner"
)

// TestFullProfileSeedsUnique enumerates every distinct seed the Full
// profile draws across all four derivation streams (GA cells, Bayes
// trials, age-sweep trials, Table 2 partitioners) and asserts there are
// no collisions. The old linear formula (Seed + trial*7919 + fn.No*31
// + p) aliased distant cells; DeriveSeed must not.
//
// Seeds deliberately shared are enumerated once: a GA cell's serial
// baseline and all its variants share the cell seed, Figure 3 shares
// each trial seed across networks, Figure 4 shares the GA cell seed
// across load levels, and the age sweep shares each trial seed across
// ages and loads — all paired comparisons on one stream.
func TestFullProfileSeedsUnique(t *testing.T) {
	opts := Full()
	seen := map[int64]string{}
	check := func(seed int64, what string) {
		if prev, ok := seen[seed]; ok {
			t.Fatalf("seed collision: %s and %s both derive %d", prev, what, seed)
		}
		seen[seed] = what
	}

	for trial := 0; trial < opts.Trials; trial++ {
		for _, fn := range functions.All() {
			for _, p := range opts.Procs {
				check(gaCellSeed(opts, trial, fn, p),
					"ga("+fn.Name+")")
			}
		}
		check(runner.DeriveSeed(opts.Seed, seedStreamBayes, int64(trial)), "bayes")
		check(ageSweepSeed(opts, trial), "agesweep")
	}
	for i := 0; i < 4; i++ {
		check(runner.DeriveSeed(opts.Seed, seedStreamTable2, int64(i)), "table2")
	}

	want := opts.Trials*(len(functions.All())*len(opts.Procs)+2) + 4
	if len(seen) != want {
		t.Fatalf("enumerated %d seeds, want %d", len(seen), want)
	}
}
