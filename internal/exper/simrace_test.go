package exper

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"nscc/internal/ga/functions"
)

// ageSweepRaceFixture runs a reduced age sweep with the race classifier
// on at the given worker count.
func ageSweepRaceFixture(t *testing.T, workers int) (AgeSweepResult, string) {
	t.Helper()
	opts := Quick()
	opts.Trials = 1
	opts.SyncGens = 40
	opts.Workers = workers
	opts.SimRace = true
	var buf bytes.Buffer
	res, err := AgeSweep(&buf, opts, functions.F1, 4, []float64{0})
	if err != nil {
		t.Fatalf("AgeSweep(workers=%d): %v", workers, err)
	}
	return res, buf.String()
}

// TestAgeSweepSimRaceDeterministicAcrossWorkerCounts: the race
// classifier's verdict is part of the sweep output, so it must stay
// byte-identical whether cells run serially or fan out.
func TestAgeSweepSimRaceDeterministicAcrossWorkerCounts(t *testing.T) {
	serial, serialText := ageSweepRaceFixture(t, 1)
	pooled, pooledText := ageSweepRaceFixture(t, 4)
	if !reflect.DeepEqual(serial, pooled) {
		t.Errorf("AgeSweep results differ between workers=1 and workers=4:\n%+v\nvs\n%+v", serial, pooled)
	}
	if serialText != pooledText {
		t.Errorf("AgeSweep rendered tables differ between workers=1 and workers=4:\n%s\nvs\n%s", serialText, pooledText)
	}
	if !strings.Contains(serialText, "tolerated") || !strings.Contains(serialText, "unbounded") {
		t.Errorf("SimRace sweep output is missing the race columns:\n%s", serialText)
	}
	// The fixed-age rows run under the Global_Read contract: no
	// unbounded races, and somewhere in the sweep the bound is actually
	// exercised.
	sawTolerated := false
	for _, r := range serial.Rows {
		if r.Unbounded != 0 {
			t.Errorf("age=%d: %d unbounded races under the age contract", r.Age, r.Unbounded)
		}
		if r.Tolerated > 0 {
			sawTolerated = true
		}
	}
	if !sawTolerated {
		t.Error("no tolerated-stale reads anywhere in the age sweep")
	}
}

// TestAgeSweepWithoutSimRaceOmitsColumns pins that the default sweep
// output is unchanged when the classifier is off.
func TestAgeSweepWithoutSimRaceOmitsColumns(t *testing.T) {
	opts := Quick()
	opts.Trials = 1
	opts.SyncGens = 40
	opts.Workers = 1
	var buf bytes.Buffer
	if _, err := AgeSweep(&buf, opts, functions.F1, 4, []float64{0}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "tolerated") {
		t.Errorf("race columns leaked into a sweep without -simrace:\n%s", buf.String())
	}
}
