package exper

import (
	"fmt"
	"io"

	"nscc/internal/bayes"
	"nscc/internal/core"
	"nscc/internal/ga"
	"nscc/internal/ga/functions"
	"nscc/internal/metrics"
	"nscc/internal/trace"
	"nscc/internal/tseries"
)

// TraceTelemetry is the machine-readable result of TraceRun: one
// telemetry block per instrumented application.
type TraceTelemetry struct {
	GA    *metrics.Telemetry `json:"ga"`
	Bayes *metrics.Telemetry `json:"bayes"`
}

// traceAge is the staleness bound of the instrumented demo runs — the
// middle of the paper's sweep.
const traceAge = 10

// TraceRun executes the instrumented demo behind nscc-bench's
// -trace-out/-metrics-out flags. Tracing a whole experiment suite would
// produce gigabytes, so the demo is one representative run per
// application instead: a Global_Read island GA (F1, P=4, age 10) with
// the tracer attached — its event stream spans every layer (sim process
// lifecycle, bus counters, pvm message spans, core Global_Read spans,
// app generation spans) — plus a parallel logic-sampling run (first
// Table 2 network, P=2, age 10) contributing telemetry only. The GA
// run first repeats the synchronous reference untraced to derive the
// convergence target, exactly as the experiment protocol does.
func TraceRun(w io.Writer, opts Options, tr trace.Tracer) (*TraceTelemetry, error) {
	fn := functions.F1
	p := 4
	par := ga.DeJongParams()
	calib := ga.DefaultCalibration()

	base := ga.IslandConfig{
		Fn: fn, Par: par, P: p,
		FixedGens:   opts.SyncGens,
		MinGens:     opts.SyncGens,
		MaxGens:     int64(opts.CapFactor * float64(opts.SyncGens)),
		Seed:        opts.Seed,
		Calib:       calib,
		Net:         opts.netOverride(),
		Faults:      opts.Faults,
		Reliable:    opts.Reliable,
		ReadTimeout: opts.ReadTimeout,
		RaceCheck:   opts.SimRace,
	}
	syncCfg := base
	syncCfg.Mode = core.Sync
	syncRes, err := ga.RunIsland(syncCfg)
	if err != nil {
		return nil, fmt.Errorf("trace demo sync reference: %w", err)
	}

	grCfg := base
	grCfg.Mode = core.NonStrict
	grCfg.Age = traceAge
	grCfg.Target = syncRes.Avg
	grCfg.Tracer = tr
	grCfg.Series = tseries.NewSet(tseries.DefaultWindow)
	grRes, err := ga.RunIsland(grCfg)
	if err != nil {
		return nil, fmt.Errorf("trace demo gr(%d): %w", traceAge, err)
	}

	bn := bayes.Table2Networks()[0]
	bcfg := bayes.ParallelConfig{
		Net: bn, Query: bayes.DefaultQuery(bn), P: 2,
		Mode: core.NonStrict, Age: traceAge,
		Precision:   opts.Precision,
		MaxIters:    bayesMaxIters(opts),
		Seed:        opts.Seed,
		Calib:       bayes.DefaultCalibration(),
		NetCfg:      opts.netOverride(),
		Faults:      opts.Faults,
		Reliable:    opts.Reliable,
		ReadTimeout: opts.ReadTimeout,
		RaceCheck:   opts.SimRace,
		Series:      tseries.NewSet(tseries.DefaultWindow),
	}
	bres, err := bayes.RunParallel(bcfg)
	if err != nil {
		return nil, fmt.Errorf("trace demo bayes: %w", err)
	}

	fmt.Fprintf(w, "trace demo: GA F%d P=%d gr(%d): completion %.3fs (sync ref %.3fs), blocked reads %d\n",
		fn.No, p, traceAge, grRes.Completion.Seconds(), syncRes.Completion.Seconds(), grRes.Blocked)
	fmt.Fprintf(w, "trace demo: bayes %s P=2 gr(%d): completion %.3fs, rollbacks %d\n",
		bn.Name, traceAge, bres.Completion.Seconds(), bres.Rollbacks)
	if opts.Ckpt != nil {
		// Surface the process-wide checkpoint-cache accounting in the
		// metrics artifact alongside the demo run's own telemetry.
		c := opts.Ckpt.Counters()
		grRes.Telemetry.Cache = &c
	}
	return &TraceTelemetry{GA: grRes.Telemetry, Bayes: bres.Telemetry}, nil
}
