package exper

import (
	"fmt"
	"io"

	"nscc/internal/ckpt"
	"nscc/internal/core"
	"nscc/internal/ga"
	"nscc/internal/ga/functions"
	"nscc/internal/metrics"
	"nscc/internal/netsim"
	"nscc/internal/runner"
	"nscc/internal/sim"
)

// AgeSweepRow is one (age, load) point of the staleness sweep.
type AgeSweepRow struct {
	Age     int64
	LoadBps float64
	Speedup float64
	Blocked sim.Duration
	Warp    float64
	// Race-classifier totals over the row's trials (filled only when
	// Options.SimRace): reads that raced but honored the age bound, and
	// reads that raced with no bound in force.
	Tolerated int64
	Unbounded int64
}

// AgeSweepResult is the age-vs-speedup surface for one function and
// processor count, across background loads — the paper's §6 point that
// "different degrees of asynchrony are best for different programs and
// network loads", made into an experiment. The dynamic-age extension is
// included as the final pseudo-age row of each load.
type AgeSweepResult struct {
	Fn      *functions.Function
	P       int
	Rows    []AgeSweepRow
	Dynamic []AgeSweepRow // one per load, run-time-adapted age
	// RaceLocations is the per-location race classification merged over
	// every cell of the sweep (filled only when Options.SimRace); its
	// merged rows feed the -simrace-out report and the nscc-lint
	// reconciliation.
	RaceLocations []metrics.LocationRace
}

// ageSweepAges is a denser grid than the paper's figure set, to resolve
// the optimum.
var ageSweepAges = []int64{0, 2, 5, 10, 20, 30, 50}

// ageSweepSeed is the per-trial seed shared by the serial reference,
// the synchronous target run, and every age point of that trial.
func ageSweepSeed(opts Options, trial int) int64 {
	return runner.DeriveSeed(opts.Seed, seedStreamAge, int64(trial))
}

// AgeSweep measures speedup as a function of the Global_Read age for fn
// on p processors, at each background load level, plus the dynamic-age
// adaptation for comparison. The sweep runs in two pooled stages: the
// per-(load, trial) synchronous reference runs (which define each
// trial's quality target), then every (load, age, trial) cell.
func AgeSweep(w io.Writer, opts Options, fn *functions.Function, p int, loads []float64) (AgeSweepResult, error) {
	if fn == nil {
		fn = functions.F1
	}
	if loads == nil {
		loads = []float64{0, 2e6}
	}
	res := AgeSweepResult{Fn: fn, P: p}
	par := ga.DeJongParams()
	calib := ga.DefaultCalibration()

	// Stage 1: references. One job per (load, trial); each returns the
	// serial baseline time and the synchronous run's final average (the
	// quality target of stage 2's runs at that load and trial). Fields
	// are exported because this is a checkpoint-journal payload.
	type refOut struct {
		Serial sim.Duration `json:"serial"`
		Target float64      `json:"target"`
	}
	nLoads, nTrials := len(loads), opts.Trials
	refMemo, err := opts.sweepMemo("agesweep-refs", func(i int) ckpt.Key {
		load, trial := loads[i/nTrials], i%nTrials
		return ageRefKey(fn, p, load, trial, ageSweepSeed(opts, trial))
	})
	if err != nil {
		return res, err
	}
	opts.sweepStart("agesweep-refs", nLoads*nTrials)
	refs, err := runner.MapMemo(nLoads*nTrials, opts.Workers,
		func(i int) string {
			return fmt.Sprintf("agesweep ref load=%.1fMbps trial=%d", loads[i/nTrials]/1e6, i%nTrials)
		},
		refMemo,
		withProgress(opts, "agesweep-refs", func(i int) (refOut, error) {
			load, trial := loads[i/nTrials], i%nTrials
			seed := ageSweepSeed(opts, trial)
			serial := ga.RunSerial(fn, par, par.N*p, opts.SyncGens, seed, calib)
			syncCfg := ga.IslandConfig{
				Fn: fn, Par: par, P: p, Mode: core.Sync,
				FixedGens: opts.SyncGens, Seed: seed, Calib: calib, LoaderBps: load,
				Net:    opts.netOverride(),
				Faults: opts.Faults, Reliable: opts.Reliable, ReadTimeout: opts.ReadTimeout,
				RaceCheck: opts.SimRace,
			}
			if opts.UseSwitch {
				sw := netsim.DefaultSwitchConfig()
				syncCfg.Switch = &sw
			}
			syncRes, err := ga.RunIsland(syncCfg)
			if err != nil {
				return refOut{}, err
			}
			return refOut{Serial: serial.Time, Target: syncRes.Avg}, nil
		}))
	if err != nil {
		return res, err
	}
	opts.sweepDone("agesweep-refs")

	// Stage 2: the sweep surface. Age index len(ageSweepAges) is the
	// dynamic-age pseudo-point. Fields exported: checkpoint-journal
	// payload.
	type cellOut struct {
		Comp      sim.Duration           `json:"comp"`
		Blocked   sim.Duration           `json:"blocked"`
		Warp      float64                `json:"warp"`
		Tolerated int64                  `json:"tolerated,omitempty"`
		Unbounded int64                  `json:"unbounded,omitempty"`
		Locs      []metrics.LocationRace `json:"locs,omitempty"`
	}
	nAges := len(ageSweepAges) + 1
	cellAge := func(ai int) (age int64, dynamic bool) {
		if ai == len(ageSweepAges) {
			return 1, true // dynamic starts tight and adapts
		}
		return ageSweepAges[ai], false
	}
	cellMemo, err := opts.sweepMemo("agesweep-cells", func(i int) ckpt.Key {
		li, ai, trial := i/(nAges*nTrials), (i/nTrials)%nAges, i%nTrials
		age, dynamic := cellAge(ai)
		return ageCellKey(fn, p, loads[li], age, dynamic, trial, ageSweepSeed(opts, trial))
	})
	if err != nil {
		return res, err
	}
	opts.sweepStart("agesweep-cells", nLoads*nAges*nTrials)
	outs, err := runner.MapMemo(nLoads*nAges*nTrials, opts.Workers,
		func(i int) string {
			li, ai, trial := i/(nAges*nTrials), (i/nTrials)%nAges, i%nTrials
			age, dynamic := cellAge(ai)
			name := fmt.Sprintf("age=%d", age)
			if dynamic {
				name = "age=dyn"
			}
			return fmt.Sprintf("agesweep load=%.1fMbps %s trial=%d", loads[li]/1e6, name, trial)
		},
		cellMemo,
		withProgress(opts, "agesweep-cells", func(i int) (cellOut, error) {
			li, ai, trial := i/(nAges*nTrials), (i/nTrials)%nAges, i%nTrials
			age, dynamic := cellAge(ai)
			seed := ageSweepSeed(opts, trial)
			cfg := ga.IslandConfig{
				Fn: fn, Par: par, P: p, Mode: core.NonStrict, Age: age,
				FixedGens: opts.SyncGens, MinGens: opts.SyncGens,
				MaxGens: int64(opts.CapFactor * float64(opts.SyncGens)),
				Target:  refs[li*nTrials+trial].Target,
				Seed:    seed, Calib: calib, LoaderBps: loads[li],
				DynamicAge: dynamic,
				Net:        opts.netOverride(),
				Faults:     opts.Faults, Reliable: opts.Reliable, ReadTimeout: opts.ReadTimeout,
				RaceCheck: opts.SimRace,
			}
			if opts.UseSwitch {
				sw := netsim.DefaultSwitchConfig()
				cfg.Switch = &sw
			}
			r, err := ga.RunIsland(cfg)
			if err != nil {
				return cellOut{}, err
			}
			out := cellOut{Comp: r.Completion, Blocked: r.BlockedTime, Warp: r.WarpMean}
			if rt := r.Telemetry.Races; rt != nil {
				out.Tolerated, out.Unbounded = rt.ToleratedStale, rt.Unbounded
				out.Locs = r.Telemetry.RaceLocations
			}
			return out, nil
		}))
	if err != nil {
		return res, err
	}
	opts.sweepDone("agesweep-cells")

	// Aggregate trials in enumeration order.
	for li, load := range loads {
		var serialSum sim.Duration
		for trial := 0; trial < nTrials; trial++ {
			serialSum += refs[li*nTrials+trial].Serial
		}
		for ai := 0; ai < nAges; ai++ {
			age, dynamic := cellAge(ai)
			row := AgeSweepRow{Age: age, LoadBps: load}
			var compSum sim.Duration
			var warpSum float64
			for trial := 0; trial < nTrials; trial++ {
				out := outs[(li*nAges+ai)*nTrials+trial]
				compSum += out.Comp
				row.Blocked += out.Blocked
				warpSum += out.Warp
				row.Tolerated += out.Tolerated
				row.Unbounded += out.Unbounded
				res.RaceLocations = metrics.MergeLocationRaces(res.RaceLocations, out.Locs)
			}
			row.Speedup = ratio(serialSum, compSum)
			row.Warp = warpSum / float64(nTrials)
			if dynamic {
				res.Dynamic = append(res.Dynamic, row)
			} else {
				res.Rows = append(res.Rows, row)
			}
		}
	}

	if w != nil {
		fmt.Fprintf(w, "Age sweep: F%d, %d processors (speedup over serial per age and load)\n", fn.No, p)
		fmt.Fprintf(w, "%-10s %6s %9s %12s %6s", "load", "age", "speedup", "blocked", "warp")
		if opts.SimRace {
			fmt.Fprintf(w, " %10s %10s", "tolerated", "unbounded")
		}
		fmt.Fprintln(w)
		printRow := func(age string, r AgeSweepRow) {
			fmt.Fprintf(w, "%-10s %6s %9.2f %12v %6.2f",
				fmt.Sprintf("%.1fMbps", r.LoadBps/1e6), age, r.Speedup, r.Blocked, r.Warp)
			if opts.SimRace {
				fmt.Fprintf(w, " %10d %10d", r.Tolerated, r.Unbounded)
			}
			fmt.Fprintln(w)
		}
		for _, r := range res.Rows {
			printRow(fmt.Sprintf("%d", r.Age), r)
		}
		for _, r := range res.Dynamic {
			printRow("dyn", r)
		}
	}
	return res, nil
}

// BestAge returns the best-performing fixed age at the given load.
func (r AgeSweepResult) BestAge(loadBps float64) (age int64, speedup float64) {
	for _, row := range r.Rows {
		if row.LoadBps == loadBps && row.Speedup > speedup {
			age, speedup = row.Age, row.Speedup
		}
	}
	return
}
