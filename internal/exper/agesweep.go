package exper

import (
	"fmt"
	"io"

	"nscc/internal/core"
	"nscc/internal/ga"
	"nscc/internal/ga/functions"
	"nscc/internal/netsim"
	"nscc/internal/sim"
)

// AgeSweepRow is one (age, load) point of the staleness sweep.
type AgeSweepRow struct {
	Age     int64
	LoadBps float64
	Speedup float64
	Blocked sim.Duration
	Warp    float64
}

// AgeSweepResult is the age-vs-speedup surface for one function and
// processor count, across background loads — the paper's §6 point that
// "different degrees of asynchrony are best for different programs and
// network loads", made into an experiment. The dynamic-age extension is
// included as the final pseudo-age row of each load.
type AgeSweepResult struct {
	Fn      *functions.Function
	P       int
	Rows    []AgeSweepRow
	Dynamic []AgeSweepRow // one per load, run-time-adapted age
}

// ageSweepAges is a denser grid than the paper's figure set, to resolve
// the optimum.
var ageSweepAges = []int64{0, 2, 5, 10, 20, 30, 50}

// AgeSweep measures speedup as a function of the Global_Read age for fn
// on p processors, at each background load level, plus the dynamic-age
// adaptation for comparison.
func AgeSweep(w io.Writer, opts Options, fn *functions.Function, p int, loads []float64) (AgeSweepResult, error) {
	if fn == nil {
		fn = functions.F1
	}
	if loads == nil {
		loads = []float64{0, 2e6}
	}
	res := AgeSweepResult{Fn: fn, P: p}
	par := ga.DeJongParams()
	calib := ga.DefaultCalibration()

	for _, load := range loads {
		var serialSum, syncAvgSum sim.Duration
		targets := make([]float64, opts.Trials)
		serials := make([]sim.Duration, opts.Trials)
		for trial := 0; trial < opts.Trials; trial++ {
			seed := opts.Seed + int64(trial)*7919
			serial := ga.RunSerial(fn, par, par.N*p, opts.SyncGens, seed, calib)
			serials[trial] = serial.Time
			serialSum += serial.Time
			syncCfg := ga.IslandConfig{
				Fn: fn, Par: par, P: p, Mode: core.Sync,
				FixedGens: opts.SyncGens, Seed: seed, Calib: calib, LoaderBps: load,
			}
			if opts.UseSwitch {
				sw := netsim.DefaultSwitchConfig()
				syncCfg.Switch = &sw
			}
			syncRes, err := ga.RunIsland(syncCfg)
			if err != nil {
				return res, err
			}
			targets[trial] = syncRes.Avg
			syncAvgSum += syncRes.Completion
		}

		runAge := func(age int64, dynamic bool) (AgeSweepRow, error) {
			row := AgeSweepRow{Age: age, LoadBps: load}
			var compSum sim.Duration
			var warpSum float64
			for trial := 0; trial < opts.Trials; trial++ {
				seed := opts.Seed + int64(trial)*7919
				cfg := ga.IslandConfig{
					Fn: fn, Par: par, P: p, Mode: core.NonStrict, Age: age,
					FixedGens: opts.SyncGens, MinGens: opts.SyncGens,
					MaxGens: int64(opts.CapFactor * float64(opts.SyncGens)),
					Target:  targets[trial],
					Seed:    seed, Calib: calib, LoaderBps: load,
					DynamicAge: dynamic,
				}
				if opts.UseSwitch {
					sw := netsim.DefaultSwitchConfig()
					cfg.Switch = &sw
				}
				r, err := ga.RunIsland(cfg)
				if err != nil {
					return row, err
				}
				compSum += r.Completion
				row.Blocked += r.BlockedTime
				warpSum += r.WarpMean
			}
			row.Speedup = ratio(serialSum, compSum)
			row.Warp = warpSum / float64(opts.Trials)
			return row, nil
		}

		for _, age := range ageSweepAges {
			row, err := runAge(age, false)
			if err != nil {
				return res, err
			}
			res.Rows = append(res.Rows, row)
		}
		dyn, err := runAge(1, true)
		if err != nil {
			return res, err
		}
		res.Dynamic = append(res.Dynamic, dyn)
	}

	if w != nil {
		fmt.Fprintf(w, "Age sweep: F%d, %d processors (speedup over serial per age and load)\n", fn.No, p)
		fmt.Fprintf(w, "%-10s %6s %9s %12s %6s\n", "load", "age", "speedup", "blocked", "warp")
		for _, r := range res.Rows {
			fmt.Fprintf(w, "%-10s %6d %9.2f %12v %6.2f\n",
				fmt.Sprintf("%.1fMbps", r.LoadBps/1e6), r.Age, r.Speedup, r.Blocked, r.Warp)
		}
		for _, r := range res.Dynamic {
			fmt.Fprintf(w, "%-10s %6s %9.2f %12v %6.2f\n",
				fmt.Sprintf("%.1fMbps", r.LoadBps/1e6), "dyn", r.Speedup, r.Blocked, r.Warp)
		}
	}
	return res, nil
}

// BestAge returns the best-performing fixed age at the given load.
func (r AgeSweepResult) BestAge(loadBps float64) (age int64, speedup float64) {
	for _, row := range r.Rows {
		if row.LoadBps == loadBps && row.Speedup > speedup {
			age, speedup = row.Age, row.Speedup
		}
	}
	return
}
