package exper

import (
	"bytes"
	"reflect"
	"testing"

	"nscc/internal/faults"
	"nscc/internal/ga/functions"
	"nscc/internal/sim"
)

// chaosOpts is a reduced sweep profile with the fault stack fully on:
// a random-but-seeded plan over every cell, reliable transport, and
// bounded reads.
func chaosOpts(workers int) Options {
	opts := Quick()
	opts.Trials = 1
	opts.SyncGens = 30
	opts.Procs = []int{2}
	opts.Workers = workers
	opts.Faults = faults.RandomPlan(17, 2, 2.0)
	opts.Reliable = true
	opts.ReadTimeout = 50 * sim.Millisecond
	return opts
}

// TestChaosSweepWorkerInvariance is the acceptance criterion that
// identical (seed, plan) pairs produce byte-identical output at any
// -workers count, exercised through the full experiment driver with
// faults active.
func TestChaosSweepWorkerInvariance(t *testing.T) {
	run := func(workers int) (Figure2Result, string) {
		var buf bytes.Buffer
		res, err := Figure2(&buf, chaosOpts(workers), []*functions.Function{functions.F1})
		if err != nil {
			t.Fatalf("Figure2(workers=%d) under faults: %v", workers, err)
		}
		return res, buf.String()
	}
	serial, serialText := run(1)
	pooled, pooledText := run(4)
	if !reflect.DeepEqual(serial, pooled) {
		t.Errorf("faulted Figure2 result structs differ between workers=1 and workers=4:\n%+v\nvs\n%+v",
			serial, pooled)
	}
	if serialText != pooledText {
		t.Errorf("faulted Figure2 tables differ between workers=1 and workers=4:\n%s\nvs\n%s",
			serialText, pooledText)
	}
}

// TestChaosSweepDisabledFaultsIdentical pins the opt-in contract at
// the driver level: an explicitly empty plan plus Reliable/timeout off
// renders output byte-identical to the untouched driver.
func TestChaosSweepDisabledFaultsIdentical(t *testing.T) {
	base := Quick()
	base.Trials = 1
	base.SyncGens = 30
	base.Procs = []int{2}
	run := func(opts Options) string {
		var buf bytes.Buffer
		if _, err := Figure2(&buf, opts, []*functions.Function{functions.F1}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	plain := run(base)
	wrapped := base
	wrapped.Faults = &faults.Plan{} // empty plan: injector wraps but must not perturb
	if got := run(wrapped); got != plain {
		t.Errorf("empty fault plan changed driver output:\n%s\nvs\n%s", got, plain)
	}
}
