package exper

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteGARowsCSV emits GA experiment rows as CSV (one line per
// (bench, P, load, variant) combination) for external plotting.
func WriteGARowsCSV(w io.Writer, rows []GARow) error {
	cw := csv.NewWriter(w)
	header := []string{"bench", "procs", "load_bps", "variant", "speedup",
		"optimum_found", "target_miss", "warp"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		name := "average"
		if r.Fn != nil {
			name = fmt.Sprintf("F%d", r.Fn.No)
		}
		for _, v := range Variants() {
			rec := []string{
				name,
				fmt.Sprintf("%d", r.P),
				fmt.Sprintf("%.0f", r.LoadBps),
				v.String(),
				fmt.Sprintf("%.4f", r.Speedup[v]),
				fmt.Sprintf("%d", r.OptFound[v]),
				fmt.Sprintf("%d", r.TargetMiss[v]),
				fmt.Sprintf("%.3f", r.Warp[v]),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteBayesRowsCSV emits Figure 3 rows as CSV.
func WriteBayesRowsCSV(w io.Writer, res Figure3Result) error {
	cw := csv.NewWriter(w)
	header := []string{"network", "variant", "speedup", "rollbacks", "iters"}
	if err := cw.Write(header); err != nil {
		return err
	}
	rows := append([]BayesRow{}, res.Rows...)
	rows = append(rows, res.Average)
	for _, r := range rows {
		name := "average"
		if r.Net != nil {
			name = r.Net.Name
		}
		for _, v := range bayesVariants() {
			rec := []string{
				name,
				v.String(),
				fmt.Sprintf("%.4f", r.Speedup[v]),
				fmt.Sprintf("%.1f", r.Rollbacks[v]),
				fmt.Sprintf("%.1f", r.Iters[v]),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
