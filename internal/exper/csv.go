package exper

import (
	"encoding/csv"
	"fmt"
	"io"

	"nscc/internal/metrics"
)

// WriteGARowsCSV emits GA experiment rows as CSV (one line per
// (bench, P, load, variant) combination) for external plotting.
func WriteGARowsCSV(w io.Writer, rows []GARow) error {
	cw := csv.NewWriter(w)
	header := []string{"bench", "procs", "load_bps", "variant", "speedup",
		"optimum_found", "target_miss", "warp"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		name := "average"
		if r.Fn != nil {
			name = fmt.Sprintf("F%d", r.Fn.No)
		}
		for _, v := range Variants() {
			rec := []string{
				name,
				fmt.Sprintf("%d", r.P),
				fmt.Sprintf("%.0f", r.LoadBps),
				v.String(),
				fmt.Sprintf("%.4f", r.Speedup[v]),
				fmt.Sprintf("%d", r.OptFound[v]),
				fmt.Sprintf("%d", r.TargetMiss[v]),
				fmt.Sprintf("%.3f", r.Warp[v]),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSeriesCSV emits windowed time-series summaries as long-format
// CSV (one line per series window) for external plotting: the window's
// simulated start time in seconds, the sample count, and the kind's
// value (counter sum, gauge/quantile mean) plus the quantile columns
// when present.
func WriteSeriesCSV(w io.Writer, series []metrics.SeriesSummary) error {
	cw := csv.NewWriter(w)
	header := []string{"series", "kind", "window_s", "count", "value", "max", "p90"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range series {
		for i, v := range s.Values {
			var count int64
			if i < len(s.Counts) {
				count = s.Counts[i]
			}
			rec := []string{
				s.Name,
				s.Kind,
				fmt.Sprintf("%.3f", float64(i)*s.WindowSecs),
				fmt.Sprintf("%d", count),
				fmt.Sprintf("%.6g", v),
				"",
				"",
			}
			if i < len(s.Max) {
				rec[5] = fmt.Sprintf("%.6g", s.Max[i])
			}
			if i < len(s.P90) {
				rec[6] = fmt.Sprintf("%.6g", s.P90[i])
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteBayesRowsCSV emits Figure 3 rows as CSV.
func WriteBayesRowsCSV(w io.Writer, res Figure3Result) error {
	cw := csv.NewWriter(w)
	header := []string{"network", "variant", "speedup", "rollbacks", "iters"}
	if err := cw.Write(header); err != nil {
		return err
	}
	rows := append([]BayesRow{}, res.Rows...)
	rows = append(rows, res.Average)
	for _, r := range rows {
		name := "average"
		if r.Net != nil {
			name = r.Net.Name
		}
		for _, v := range bayesVariants() {
			rec := []string{
				name,
				v.String(),
				fmt.Sprintf("%.4f", r.Speedup[v]),
				fmt.Sprintf("%.1f", r.Rollbacks[v]),
				fmt.Sprintf("%.1f", r.Iters[v]),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
