package exper

import (
	"fmt"
	"io"
	"math/rand"

	"nscc/internal/bayes"
	"nscc/internal/ckpt"
	"nscc/internal/ga/functions"
	"nscc/internal/partition"
	"nscc/internal/runner"
	"nscc/internal/sim"
)

// Table1Row verifies one test-bed entry against Table 1.
type Table1Row struct {
	Fn         *functions.Function
	AtOptimum  float64 // objective evaluated at the known optimum point
	OptimumOK  bool    // AtOptimum agrees with the declared minimum
	ChromoBits int
}

// table1Optima are the known optimum points of the deterministic parts.
func table1Optima(fn *functions.Function) []float64 {
	x := make([]float64, fn.Vars)
	switch fn.No {
	case 2:
		x[0], x[1] = 1, 1
	case 3:
		for i := range x {
			x[i] = -5.12
		}
	case 5:
		x[0], x[1] = -32, -32
	case 7:
		for i := range x {
			x[i] = 420.9687
		}
	}
	return x
}

// Table1 reproduces Table 1: the eight-function test bed with limits
// and minima, verifying each function's declared minimum at its known
// optimum point.
func Table1(w io.Writer) []Table1Row {
	var rows []Table1Row
	for _, fn := range functions.All() {
		at := fn.Eval(table1Optima(fn), nil)
		ok := at <= fn.Min+0.01 || (fn.Min != 0 && at <= fn.Min*0.999+0.01)
		rows = append(rows, Table1Row{Fn: fn, AtOptimum: at, OptimumOK: ok, ChromoBits: fn.TotalBits()})
	}
	if w != nil {
		fmt.Fprintln(w, "Table 1: eight-function test bed for GAs")
		fmt.Fprintf(w, "%-3s %-14s %5s %6s %22s %12s %12s %4s\n",
			"No.", "name", "vars", "bits", "limits", "min f(x)", "f(opt)", "ok")
		for _, r := range rows {
			fmt.Fprintf(w, "%-3d %-14s %5d %6d %10.3f..%-10.3f %12.4f %12.4f %4v\n",
				r.Fn.No, r.Fn.Name, r.Fn.Vars, r.ChromoBits, r.Fn.Lo, r.Fn.Hi, r.Fn.Min, r.AtOptimum, r.OptimumOK)
		}
	}
	return rows
}

// Table2Row is one network's entry in Table 2: structural parameters,
// 2-way edge-cut from the graph partitioner, and the modeled
// uniprocessor inference time. Net is excluded from the checkpoint
// journal's JSON payload (Table2 reattaches the network after the
// cells return, cached or not).
type Table2Row struct {
	Net       *bayes.Network `json:"-"`
	Nodes     int            `json:"nodes"`
	EdgesPer  float64        `json:"edges_per"`
	Values    int            `json:"values"`
	EdgeCut   int            `json:"edge_cut"`   // KL bisection cut (the paper's METIS column)
	PipeCut   int            `json:"pipe_cut"`   // cut of the topological split the parallel engine uses
	Serial    sim.Duration   `json:"serial"`     // uniprocessor inference time to the precision target
	SerialRef float64        `json:"serial_ref"` // the paper's reported seconds, for side-by-side
}

// paperSerialSecs are Table 2's IBM SP2 uniprocessor inference times.
var paperSerialSecs = map[string]float64{"A": 11.12, "AA": 11.19, "C": 11.81, "Hailfinder": 3.15}

// Table2 reproduces Table 2: the four belief networks with their
// partitioning and uniprocessor inference statistics. Each network is
// one cell on the worker pool; the partitioner's random stream is
// derived per network (instead of threaded serially through one rng)
// so the cells are order-independent. With a checkpoint store
// configured the per-network cells are cached like every other sweep,
// so the error return now also carries journal failures.
func Table2(w io.Writer, opts Options) ([]Table2Row, error) {
	nets := bayes.Table2Networks()
	memo, err := opts.sweepMemo("table2", func(i int) ckpt.Key {
		return bayesCellKey("table2", nets[i], 0,
			runner.DeriveSeed(opts.Seed, seedStreamTable2, int64(i)))
	})
	if err != nil {
		return nil, err
	}
	opts.sweepStart("table2", len(nets))
	rows, err := runner.MapMemo(len(nets), opts.Workers,
		func(i int) string { return fmt.Sprintf("table2 %s", nets[i].Name) },
		memo,
		withProgress(opts, "table2", func(i int) (Table2Row, error) {
			bn := nets[i]
			rng := rand.New(rand.NewSource(runner.DeriveSeed(opts.Seed, seedStreamTable2, int64(i))))
			g := bn.Graph()
			parts := partition.Bisect(g, rng)
			pipe := partition.TopoPrefixSplit(bn.N(), 2, func(int) int { return 1 })
			q := bayes.DefaultQuery(bn)
			serial := bayes.InferSerial(bn, q, opts.Precision, opts.Seed, bayes.DefaultCalibration(), bayesMaxIters(opts))
			return Table2Row{
				Nodes:     bn.N(),
				EdgesPer:  bn.EdgesPerNode(),
				Values:    bn.MaxStates(),
				EdgeCut:   partition.EdgeCut(g, parts),
				PipeCut:   partition.EdgeCut(g, pipe),
				Serial:    serial.Time,
				SerialRef: paperSerialSecs[bn.Name],
			}, nil
		}))
	if err != nil {
		return nil, err
	}
	opts.sweepDone("table2")
	for i := range rows {
		rows[i].Net = nets[i]
	}
	if w != nil {
		fmt.Fprintln(w, "Table 2: four Bayesian belief networks")
		fmt.Fprintf(w, "%-12s %6s %10s %7s %9s %9s %12s %10s\n",
			"network", "nodes", "edges/node", "values", "cut(KL)", "cut(topo)", "serial(sim)", "paper(s)")
		for _, r := range rows {
			fmt.Fprintf(w, "%-12s %6d %10.1f %7d %9d %9d %12.2fs %10.2f\n",
				r.Net.Name, r.Nodes, r.EdgesPer, r.Values, r.EdgeCut, r.PipeCut, r.Serial.Seconds(), r.SerialRef)
		}
	}
	return rows, nil
}

// Figure1Report prints the example medical-diagnosis network of Figure
// 1 with an exact-vs-sampled inference cross-check, and returns the two
// probabilities.
func Figure1Report(w io.Writer, opts Options) (exact, sampled float64) {
	bn := bayes.Figure1()
	q := bayes.Query{Node: 3, State: 1, Evidence: map[int]int{0: 1}} // p(D=t | A=t)
	exact = bayes.Exact(bn, q)
	res := bayes.InferSerial(bn, q, opts.Precision, opts.Seed, bayes.DefaultCalibration(), 2_000_000)
	sampled = res.Prob
	if w != nil {
		fmt.Fprintln(w, "Figure 1: example Bayesian network (medical diagnosis)")
		for i := range bn.Nodes {
			nd := &bn.Nodes[i]
			fmt.Fprintf(w, "  %s: states=%d parents=%v\n", nd.Name, nd.States, nd.Parents)
		}
		fmt.Fprintf(w, "  p(D=true | B=true, C=true) = %.2f (paper: 0.80)\n", bn.Nodes[3].CPT[3][1])
		fmt.Fprintf(w, "  p(D=true | A=true): exact %.4f, logic sampling %.4f (+-%.3f, %d samples)\n",
			exact, sampled, res.HalfWidth, res.Iters)
	}
	return exact, sampled
}
