package exper

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nscc/internal/ckpt"
)

// runGraphSweep renders the sweep and returns report + CSV text, so
// the checkpoint test asserts byte identity of everything a user sees.
func runGraphSweep(t *testing.T, opts Options, specs []string) string {
	t.Helper()
	var buf bytes.Buffer
	rows, err := GraphSweep(&buf, opts, specs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteGraphRowsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestGraphSweepSmoke(t *testing.T) {
	opts := tinyOpts()
	specs := []string{"ring:24"}
	var buf bytes.Buffer
	rows, err := GraphSweep(&buf, opts, specs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != GraphSweepCells(opts, len(specs)) {
		t.Fatalf("%d rows for %d cells (1 trial: rows == cells)", len(rows), GraphSweepCells(opts, len(specs)))
	}
	for _, r := range rows {
		for _, v := range Variants() {
			if r.Converged[v] != opts.Trials {
				t.Errorf("%s %s %s: %d/%d trials converged", r.Spec, r.Algo, v, r.Converged[v], opts.Trials)
			}
			if r.MaxDiff[v] > 1e-6 {
				t.Errorf("%s %s %s: max diff vs oracle %g", r.Spec, r.Algo, v, r.MaxDiff[v])
			}
			if r.Speedup[v] <= 0 {
				t.Errorf("%s %s %s: speedup %g", r.Spec, r.Algo, v, r.Speedup[v])
			}
		}
	}
	if !strings.Contains(buf.String(), "Graph sweep") {
		t.Error("report missing caption")
	}
}

// TestGraphSweepCheckpointResume is the graph sweep's crash drill,
// mirroring Figure 2's: uncached, fresh-cached, torn-journal resume,
// and a warm rerun at a different worker count must all produce
// byte-identical output.
func TestGraphSweepCheckpointResume(t *testing.T) {
	opts := tinyOpts()
	specs := []string{"ring:24"}
	clean := runGraphSweep(t, opts, specs)

	dir := t.TempDir()
	cachedOpts := opts
	cachedOpts.Ckpt = ckpt.NewStore(dir, false)
	if got := runGraphSweep(t, cachedOpts, specs); got != clean {
		t.Fatalf("fresh cached run differs from uncached:\n%s\n--- vs ---\n%s", got, clean)
	}
	if c := cachedOpts.Ckpt.Counters(); c.Hits != 0 || c.Misses != 2 {
		t.Fatalf("fresh run counters %+v, want 0 hits / 2 misses", c)
	}
	closeStore(t, cachedOpts.Ckpt)

	// Kill mid-write: chop a byte off the journal's last record. Resume
	// must truncate the torn tail, replay the intact cell, and re-run
	// only the torn one — byte-identically.
	journal := filepath.Join(dir, "graphsweep.ckpt")
	fi, err := os.Stat(journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(journal, fi.Size()-1); err != nil {
		t.Fatal(err)
	}
	resumeOpts := opts
	resumeOpts.Ckpt = ckpt.NewStore(dir, true)
	if got := runGraphSweep(t, resumeOpts, specs); got != clean {
		t.Fatalf("resumed run differs from clean run:\n%s\n--- vs ---\n%s", got, clean)
	}
	if c := resumeOpts.Ckpt.Counters(); c.TornRecords != 1 || c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("resume counters %+v, want 1 torn / 1 hit / 1 miss", c)
	}
	closeStore(t, resumeOpts.Ckpt)

	// Warm rerun at a different worker count: all hits, same bytes.
	warmOpts := opts
	warmOpts.Workers = 8
	warmOpts.Ckpt = ckpt.NewStore(dir, true)
	if got := runGraphSweep(t, warmOpts, specs); got != clean {
		t.Fatal("warm 8-worker run differs from clean run")
	}
	if c := warmOpts.Ckpt.Counters(); c.Hits != 2 || c.Misses != 0 {
		t.Fatalf("warm counters %+v, want 2 hits / 0 misses", c)
	}
	closeStore(t, warmOpts.Ckpt)
}
