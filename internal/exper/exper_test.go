package exper

import (
	"bytes"
	"strings"
	"testing"

	"nscc/internal/core"
	"nscc/internal/ga/functions"
)

// tinyOpts keeps experiment tests fast while preserving structure.
func tinyOpts() Options {
	opts := Quick()
	opts.Trials = 1
	opts.SyncGens = 50
	opts.Procs = []int{2}
	opts.Precision = 0.04
	return opts
}

func TestVariantString(t *testing.T) {
	if (Variant{Mode: core.Sync}).String() != "sync" {
		t.Fatal("sync name")
	}
	if (Variant{Mode: core.NonStrict, Age: 7}).String() != "gr(7)" {
		t.Fatal("gr name")
	}
	vs := Variants()
	if len(vs) != 2+len(Ages) {
		t.Fatalf("variants = %v", vs)
	}
}

func TestProfiles(t *testing.T) {
	q, f := Quick(), Full()
	if q.Trials >= f.Trials || q.SyncGens >= f.SyncGens {
		t.Fatal("quick profile is not smaller than full")
	}
	if f.Trials != 25 || f.SyncGens != 1000 || f.Precision != 0.01 {
		t.Fatalf("full profile is not paper scale: %+v", f)
	}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	rows := Table1(&buf)
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !r.OptimumOK {
			t.Errorf("F%d: value at optimum %v does not match declared min %v",
				r.Fn.No, r.AtOptimum, r.Fn.Min)
		}
	}
	out := buf.String()
	for _, want := range []string{"sphere", "foxholes", "griewank", "-4189"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
}

func TestTable2(t *testing.T) {
	var buf bytes.Buffer
	opts := tinyOpts()
	rows, err := Table2(&buf, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.EdgeCut <= 0 || r.EdgeCut >= r.Net.Edges() {
			t.Errorf("%s: edge-cut %d of %d edges", r.Net.Name, r.EdgeCut, r.Net.Edges())
		}
		if r.Serial <= 0 {
			t.Errorf("%s: no serial time", r.Net.Name)
		}
		if r.SerialRef == 0 {
			t.Errorf("%s: missing paper reference time", r.Net.Name)
		}
	}
	// Table 2's qualitative facts: Hailfinder has by far the smallest
	// cut, and the KL cuts for the random nets are in the paper's
	// 20-30 range.
	if rows[3].EdgeCut >= rows[0].EdgeCut {
		t.Errorf("Hailfinder cut %d not below A's %d", rows[3].EdgeCut, rows[0].EdgeCut)
	}
	for _, r := range rows[:3] {
		if r.EdgeCut < 10 || r.EdgeCut > 40 {
			t.Errorf("%s: cut %d outside Table 2 scale", r.Net.Name, r.EdgeCut)
		}
	}
}

func TestFigure1Report(t *testing.T) {
	var buf bytes.Buffer
	exact, sampled := Figure1Report(&buf, tinyOpts())
	if exact <= 0 || exact >= 1 {
		t.Fatalf("exact = %v", exact)
	}
	diff := exact - sampled
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.08 {
		t.Fatalf("sampled %v far from exact %v", sampled, exact)
	}
	if !strings.Contains(buf.String(), "0.80") {
		t.Error("report does not show the paper's p(D=t|B=t,C=t)=0.80")
	}
}

func TestGACellStructure(t *testing.T) {
	opts := tinyOpts()
	row, err := GACell(functions.F1, 2, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if row.Fn != functions.F1 || row.P != 2 {
		t.Fatalf("row identity wrong: %+v", row)
	}
	for _, v := range Variants() {
		s, ok := row.Speedup[v]
		if !ok || s <= 0 {
			t.Fatalf("missing/zero speedup for %v: %v", v, s)
		}
	}
	if row.BestGR <= 0 || row.BestComp < 1 {
		t.Fatalf("derived metrics wrong: %+v", row)
	}
	if row.Improve != row.BestGR/row.BestComp {
		t.Fatal("improve not derived from best-gr/best-comp")
	}
}

func TestGACellDeterministic(t *testing.T) {
	opts := tinyOpts()
	a, err := GACell(functions.F5, 2, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GACell(functions.F5, 2, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range Variants() {
		if a.Speedup[v] != b.Speedup[v] {
			t.Fatalf("%v speedup differs across identical runs", v)
		}
	}
}

func TestFigure2SmallRun(t *testing.T) {
	var buf bytes.Buffer
	opts := tinyOpts()
	res, err := Figure2(&buf, opts, []*functions.Function{functions.F1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BestCase) != 1 || len(res.Average) != 1 || len(res.PerFunc) != 1 {
		t.Fatalf("row counts: %d/%d/%d", len(res.BestCase), len(res.Average), len(res.PerFunc))
	}
	// With a single function, the average row must equal the best case.
	for _, v := range Variants() {
		if res.Average[0].Speedup[v] != res.BestCase[0].Speedup[v] {
			t.Fatalf("average != best case for single function (%v)", v)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 2a") || !strings.Contains(out, "Figure 2b") {
		t.Error("output missing captions")
	}
	// Removal of the barrier must help: the best Global_Read variant
	// should beat sync in this regime.
	sync := res.BestCase[0].Speedup[Variant{Mode: core.Sync}]
	if res.BestCase[0].BestGR <= sync {
		t.Errorf("best GR %.2f not above sync %.2f", res.BestCase[0].BestGR, sync)
	}
}

func TestFigure4SmallRun(t *testing.T) {
	var buf bytes.Buffer
	opts := tinyOpts()
	res, err := Figure4(&buf, opts, []*functions.Function{functions.F1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BestCase) != len(Figure4Loads) || len(res.Average) != len(Figure4Loads) {
		t.Fatalf("row counts %d/%d", len(res.BestCase), len(res.Average))
	}
	for i, r := range res.BestCase {
		if r.LoadBps != Figure4Loads[i] {
			t.Fatalf("row %d load %v", i, r.LoadBps)
		}
	}
	// Background load must not make the synchronous program faster.
	v := Variant{Mode: core.Sync}
	if res.BestCase[len(res.BestCase)-1].Speedup[v] > res.BestCase[0].Speedup[v]*1.05 {
		t.Errorf("sync sped up under 2 Mbps load: %v vs %v",
			res.BestCase[3].Speedup[v], res.BestCase[0].Speedup[v])
	}
}

func TestFigure3SmallRun(t *testing.T) {
	var buf bytes.Buffer
	opts := tinyOpts()
	res, err := Figure3(&buf, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d networks", len(res.Rows))
	}
	for _, r := range res.Rows {
		for _, v := range bayesVariants() {
			if r.Speedup[v] <= 0 {
				t.Fatalf("%s: zero speedup for %v", r.Net.Name, v)
			}
		}
		// The best Global_Read setting always beats the synchronous
		// program (removing per-phase exchanges and the barrier).
		syncS := r.Speedup[Variant{Mode: core.Sync}]
		if r.BestGR <= syncS {
			t.Errorf("%s: best GR %.2f does not beat sync %.2f", r.Net.Name, r.BestGR, syncS)
		}
	}
	// The paper's central result — best GR beats every competitor — is
	// asserted on the 4-network average (per-network, a single loose-
	// precision trial is too noisy).
	if res.Average.BestGR <= res.Average.Speedup[Variant{Mode: core.Sync}] {
		t.Error("average: best GR does not beat sync")
	}
	if res.Average.BestGR <= res.Average.Speedup[Variant{Mode: core.Async}]*0.9 {
		t.Errorf("average: best GR %.2f far below async %.2f",
			res.Average.BestGR, res.Average.Speedup[Variant{Mode: core.Async}])
	}
	if !strings.Contains(buf.String(), "average") {
		t.Error("output missing average row")
	}
}

func TestCSVWriters(t *testing.T) {
	opts := tinyOpts()
	row, err := GACell(functions.F1, 2, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGARowsCSV(&buf, []GARow{row}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Count(out, "\n")
	if lines != 1+len(Variants()) {
		t.Fatalf("CSV has %d lines, want header + %d variants", lines, len(Variants()))
	}
	if !strings.Contains(out, "F1,2,0,sync,") {
		t.Fatalf("CSV missing expected row prefix:\n%s", out)
	}

	res, err := Figure3(nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteBayesRowsCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Hailfinder,gr(10),") {
		t.Fatalf("bayes CSV missing rows:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "average,") {
		t.Fatal("bayes CSV missing average")
	}
}

func TestFigure2OnSwitch(t *testing.T) {
	opts := tinyOpts()
	bus, err := Figure2(nil, opts, []*functions.Function{functions.F1})
	if err != nil {
		t.Fatal(err)
	}
	opts.UseSwitch = true
	sw, err := Figure2(nil, opts, []*functions.Function{functions.F1})
	if err != nil {
		t.Fatal(err)
	}
	// The synchronous variant is the most network-bound, so the fast
	// fabric must help it the most clearly.
	v := Variant{Mode: core.Sync}
	if sw.BestCase[0].Speedup[v] < bus.BestCase[0].Speedup[v] {
		t.Fatalf("switch sync speedup %v below bus %v",
			sw.BestCase[0].Speedup[v], bus.BestCase[0].Speedup[v])
	}
}

func TestAgeSweep(t *testing.T) {
	opts := tinyOpts()
	res, err := AgeSweep(nil, opts, functions.F1, 4, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 || len(res.Dynamic) != 1 {
		t.Fatalf("row counts %d/%d", len(res.Rows), len(res.Dynamic))
	}
	age, speedup := res.BestAge(0)
	if speedup <= 0 {
		t.Fatalf("best age %d speedup %v", age, speedup)
	}
	// Blocking must decrease monotonically-ish with age: the largest
	// age blocks no more than lockstep.
	var age0, age50 AgeSweepRow
	for _, r := range res.Rows {
		if r.Age == 0 {
			age0 = r
		}
		if r.Age == 50 {
			age50 = r
		}
	}
	if age50.Blocked > age0.Blocked {
		t.Fatalf("age 50 blocked longer (%v) than age 0 (%v)", age50.Blocked, age0.Blocked)
	}
	// The dynamic variant must be within reach of the best fixed age.
	if res.Dynamic[0].Speedup < speedup*0.5 {
		t.Fatalf("dynamic age speedup %v far below best fixed %v", res.Dynamic[0].Speedup, speedup)
	}
}
