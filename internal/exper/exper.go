// Package exper drives the paper's experiments: one function per table
// and figure of the evaluation (§5), each running the full protocol —
// serial baseline, synchronous, fully asynchronous, and Global_Read
// implementations at every age setting — over repeated seeded trials,
// and formatting the same rows/series the paper reports.
//
// Two profiles are provided: Quick (the default for benchmarks and CI —
// fewer trials and generations, same experimental structure) and Full
// (paper scale: 1000-generation synchronous GAs, 25 GA trials, 10
// inference trials).
package exper

import (
	"fmt"
	"io"

	"nscc/internal/ckpt"
	"nscc/internal/core"
	"nscc/internal/faults"
	"nscc/internal/ga"
	"nscc/internal/ga/functions"
	"nscc/internal/netsim"
	"nscc/internal/runner"
	"nscc/internal/sim"
)

// Ages is the paper's Global_Read staleness sweep.
var Ages = []int64{0, 5, 10, 20, 30}

// Variant identifies one implementation in the comparisons.
type Variant struct {
	Mode core.Mode
	Age  int64 // meaningful for NonStrict only
}

func (v Variant) String() string {
	if v.Mode == core.NonStrict {
		return fmt.Sprintf("gr(%d)", v.Age)
	}
	return v.Mode.String()
}

// MarshalText lets Variant serve as a JSON map key in the cached cell
// payloads the checkpoint journal stores.
func (v Variant) MarshalText() ([]byte, error) { return []byte(v.String()), nil }

// UnmarshalText parses the String form back ("sync", "async", "gr(N)").
func (v *Variant) UnmarshalText(text []byte) error {
	s := string(text)
	switch s {
	case core.Sync.String():
		*v = Variant{Mode: core.Sync}
	case core.Async.String():
		*v = Variant{Mode: core.Async}
	default:
		var age int64
		if _, err := fmt.Sscanf(s, "gr(%d)", &age); err != nil {
			return fmt.Errorf("exper: unknown variant %q", s)
		}
		*v = Variant{Mode: core.NonStrict, Age: age}
	}
	return nil
}

// Variants returns the paper's comparison set: sync, async, and
// Global_Read at each age.
func Variants() []Variant {
	vs := []Variant{{Mode: core.Sync}, {Mode: core.Async}}
	for _, a := range Ages {
		vs = append(vs, Variant{Mode: core.NonStrict, Age: a})
	}
	return vs
}

// Options scales the experiment protocol.
type Options struct {
	Trials    int     // seeded repetitions averaged (paper: 25 GA, 10 BN)
	SyncGens  int64   // synchronous GA generation count (paper: 1000)
	CapFactor float64 // MaxGens/MaxIters = CapFactor * reference length
	Procs     []int   // processor counts for Figure 2
	Seed      int64
	Precision float64 // inference CI half-width target (paper: 0.01)
	// UseSwitch runs the GA experiments on the SP2-style crossbar
	// switch instead of the shared Ethernet (the extension experiment
	// behind the paper's §4.1 expectation).
	UseSwitch bool
	// Workers is the sweep parallelism: every driver enumerates its
	// cells up front and dispatches them on a runner pool of this many
	// workers (<1 = one per CPU). Results are aggregated in cell order,
	// so output is byte-identical at any worker count.
	Workers int
	// Faults, if non-nil, applies the same fault plan to every simulated
	// cluster in the sweeps. Strictly opt-in: nil leaves every cell
	// byte-identical to the fault-free suite.
	Faults *faults.Plan
	// Reliable runs the message layer of every cell with
	// sequence-numbered ack/retransmit delivery.
	Reliable bool
	// ReadTimeout, if positive, bounds Global_Read blocking in every
	// cell; timed-out reads degrade to the cached value and count as
	// staleness violations.
	ReadTimeout sim.Duration
	// LossProb, if positive, overrides the network model's independent
	// per-frame loss probability (the lossy-Ethernet recipe).
	LossProb float64
	// SimRace runs the simulated-time race classifier in every cell
	// (ga.IslandConfig.RaceCheck) and adds race columns to the sweeps
	// that report them. Strictly passive: cells keep byte-identical
	// virtual time with it on or off.
	SimRace bool
	// Ckpt, if non-nil, journals every sweep cell's result in a
	// crash-safe content-addressed cache: on a rerun (the store's
	// resume mode) cells whose fingerprint — coordinates, derived seed,
	// config knobs, schema version — is already journaled replay
	// instantly instead of recomputing, and the sweep output stays
	// byte-identical to an uninterrupted, uncached run at any worker
	// count.
	Ckpt *ckpt.Store
	// Progress, if non-nil, receives sweep lifecycle callbacks: one
	// SweepStart per sweep with its cell count, one CellDone per cell
	// (computed or replayed from the checkpoint cache), one SweepDone on
	// success. Strictly observational — it never reaches the
	// simulations, is excluded from checkpoint fingerprints, and cannot
	// change any sweep output. Implementations must be safe for
	// concurrent use by pool workers (the -http status server is one).
	Progress ProgressSink
}

// ProgressSink observes sweep execution. Callbacks may arrive
// concurrently from pool workers; implementations synchronize
// internally (package exper itself stays free of raw concurrency).
type ProgressSink interface {
	SweepStart(sweep string, cells int)
	CellDone(sweep string)
	SweepDone(sweep string)
}

// sweepStart reports a sweep's start (nil-safe).
func (o Options) sweepStart(sweep string, cells int) {
	if o.Progress != nil {
		o.Progress.SweepStart(sweep, cells)
	}
}

// sweepDone reports a sweep's successful completion (nil-safe).
func (o Options) sweepDone(sweep string) {
	if o.Progress != nil {
		o.Progress.SweepDone(sweep)
	}
}

// withProgress wraps a sweep's cell function so each computed cell
// reports CellDone. Cache hits never reach fn; they report through the
// memo wrapper in sweepMemo instead, so every cell fires exactly once.
func withProgress[T any](o Options, sweep string, fn func(int) (T, error)) func(int) (T, error) {
	if o.Progress == nil {
		return fn
	}
	return func(i int) (T, error) {
		v, err := fn(i)
		if err == nil {
			o.Progress.CellDone(sweep)
		}
		return v, err
	}
}

// netOverride returns the bus config override the fault knobs imply,
// or nil when the defaults stand.
func (o Options) netOverride() *netsim.Config {
	if o.LossProb <= 0 {
		return nil
	}
	nc := netsim.DefaultConfig()
	nc.LossProb = o.LossProb
	return &nc
}

// Seed streams keep the drivers' cell spaces disjoint: every call site
// derives seeds as runner.DeriveSeed(opts.Seed, stream, dims...), so a
// GA cell can never alias a Bayes trial, an age-sweep trial, or a
// Table 2 partitioning run.
const (
	seedStreamGA int64 = iota + 1
	seedStreamBayes
	seedStreamAge
	seedStreamTable2
	seedStreamGraph
	seedStreamScale
)

// gaCellSeed derives the seed of one (trial, function, P) GA cell. The
// serial baseline and every variant of the cell share it, preserving
// the paired-comparison structure of the old inline arithmetic without
// its cross-cell collisions.
func gaCellSeed(opts Options, trial int, fn *functions.Function, p int) int64 {
	return runner.DeriveSeed(opts.Seed, seedStreamGA, int64(trial), int64(fn.No), int64(p))
}

// Quick returns the fast profile used by the benchmark harness: the
// full experimental structure at reduced trial counts and generation
// budgets.
func Quick() Options {
	return Options{
		Trials:    2,
		SyncGens:  120,
		CapFactor: 4,
		Procs:     []int{2, 4, 8, 16},
		Seed:      2000,
		Precision: 0.02,
	}
}

// Full returns the paper-scale profile (§4.3, §5.1).
func Full() Options {
	return Options{
		Trials:    25,
		SyncGens:  1000,
		CapFactor: 4,
		Procs:     []int{2, 4, 8, 16},
		Seed:      2000,
		Precision: 0.01,
	}
}

// GARow is one (function, processors) cell of Figures 2/4: mean speedup
// over the serial program for each variant, plus the derived best-GR
// versus best-competitor improvement.
type GARow struct {
	Fn       *functions.Function
	P        int
	LoadBps  float64
	Speedup  map[Variant]float64 // mean over trials
	BestGR   float64             // best Global_Read speedup
	BestComp float64             // best of serial (1.0), sync, async
	// Improve is the paper's headline metric: best partially
	// asynchronous over best competitor, as a ratio (1.42 = 42% faster).
	Improve float64
	// Quality bookkeeping.
	OptFound   map[Variant]int // trials in which the optimum was reached
	TargetMiss map[Variant]int // trials in which the variant hit MaxGens without matching sync quality
	// Warp is the mean warp metric per variant (network stability: 1 =
	// stable, >>1 = load increasing; §4.3).
	Warp map[Variant]float64
}

// gaTrial runs the full variant protocol for one (function, P, seed),
// returning the serial baseline time, each variant's completion time,
// and whether each variant found the optimum. The paper's average
// metric needs raw times ("the ratio of the sum of the execution times
// for the serial program for all the benchmarks to that for the
// parallel programs"), so times rather than ratios are returned.
// trialOut is one gaTrial's raw measurements. Its fields are exported
// (and Variant is a text-marshaling map key) because trialOut is the
// payload the checkpoint journal caches as JSON.
type trialOut struct {
	Serial sim.Duration             `json:"serial"`
	Times  map[Variant]sim.Duration `json:"times"`
	Found  map[Variant]bool         `json:"found"`
	Missed map[Variant]bool         `json:"missed"`
	Warp   map[Variant]float64      `json:"warp"`
}

func gaTrial(fn *functions.Function, p int, seed int64, opts Options, loadBps float64) (trialOut, error) {
	par := ga.DeJongParams()
	calib := ga.DefaultCalibration()
	serial := ga.RunSerial(fn, par, par.N*p, opts.SyncGens, seed, calib)

	base := ga.IslandConfig{
		Fn: fn, Par: par, P: p,
		FixedGens:   opts.SyncGens,
		MinGens:     opts.SyncGens,
		MaxGens:     int64(opts.CapFactor * float64(opts.SyncGens)),
		Seed:        seed,
		Calib:       calib,
		LoaderBps:   loadBps,
		Net:         opts.netOverride(),
		Faults:      opts.Faults,
		Reliable:    opts.Reliable,
		ReadTimeout: opts.ReadTimeout,
		RaceCheck:   opts.SimRace,
	}
	if opts.UseSwitch {
		sw := netsim.DefaultSwitchConfig()
		base.Switch = &sw
	}

	out := trialOut{
		Serial: serial.Time,
		Times:  make(map[Variant]sim.Duration),
		Found:  make(map[Variant]bool),
		Missed: make(map[Variant]bool),
		Warp:   make(map[Variant]float64),
	}
	record := func(v Variant, r ga.IslandResult) {
		out.Times[v] = r.Completion
		out.Found[v] = r.OptimumFound
		out.Missed[v] = !r.ReachedTarget
		out.Warp[v] = r.WarpMean
	}

	syncCfg := base
	syncCfg.Mode = core.Sync
	syncRes, err := ga.RunIsland(syncCfg)
	if err != nil {
		return out, fmt.Errorf("sync: %w", err)
	}
	record(Variant{Mode: core.Sync}, syncRes)

	// The asynchronous and controlled versions run until a
	// subpopulation's average fitness converges at least as far as the
	// synchronous program's final average (§5.1.1).
	target := syncRes.Avg

	asyncCfg := base
	asyncCfg.Mode = core.Async
	asyncCfg.Target = target
	asyncRes, err := ga.RunIsland(asyncCfg)
	if err != nil {
		return out, fmt.Errorf("async: %w", err)
	}
	record(Variant{Mode: core.Async}, asyncRes)

	for _, age := range Ages {
		cfg := base
		cfg.Mode = core.NonStrict
		cfg.Age = age
		cfg.Target = target
		res, err := ga.RunIsland(cfg)
		if err != nil {
			return out, fmt.Errorf("gr(%d): %w", age, err)
		}
		record(Variant{Mode: core.NonStrict, Age: age}, res)
	}
	return out, nil
}

func ratio(a, b sim.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return a.Seconds() / b.Seconds()
}

// gaSums accumulates raw times across trials (and, for the average
// row, across functions).
type gaSums struct {
	serial sim.Duration
	comp   map[Variant]sim.Duration
	found  map[Variant]int
	missed map[Variant]int
	warp   map[Variant]float64
	trials int
}

func newGASums() *gaSums {
	return &gaSums{
		comp:   make(map[Variant]sim.Duration),
		found:  make(map[Variant]int),
		missed: make(map[Variant]int),
		warp:   make(map[Variant]float64),
	}
}

func (a *gaSums) add(out trialOut) {
	a.serial += out.Serial
	for v, t := range out.Times {
		a.comp[v] += t
	}
	for v, ok := range out.Found {
		if ok {
			a.found[v]++
		}
	}
	for v, miss := range out.Missed {
		if miss {
			a.missed[v]++
		}
	}
	for v, w := range out.Warp {
		a.warp[v] += w
	}
	a.trials++
}

// row derives the paper's metrics from the accumulated times.
func (a *gaSums) row(fn *functions.Function, p int, loadBps float64) GARow {
	row := GARow{
		Fn: fn, P: p, LoadBps: loadBps,
		Speedup:    make(map[Variant]float64),
		OptFound:   a.found,
		TargetMiss: a.missed,
		Warp:       make(map[Variant]float64),
	}
	for v, t := range a.comp {
		row.Speedup[v] = ratio(a.serial, t)
	}
	for v, w := range a.warp {
		if a.trials > 0 {
			row.Warp[v] = w / float64(a.trials)
		}
	}
	row.BestComp = 1.0 // the serial program itself
	for _, v := range []Variant{{Mode: core.Sync}, {Mode: core.Async}} {
		if s := row.Speedup[v]; s > row.BestComp {
			row.BestComp = s
		}
	}
	for _, age := range Ages {
		if s := row.Speedup[Variant{Mode: core.NonStrict, Age: age}]; s > row.BestGR {
			row.BestGR = s
		}
	}
	row.Improve = row.BestGR / row.BestComp
	return row
}

// GACell runs opts.Trials seeded trials of one (function, P, load)
// cell on the worker pool and derives the comparison metrics.
func GACell(fn *functions.Function, p int, opts Options, loadBps float64) (GARow, error) {
	outs, err := runner.Map(opts.Trials, opts.Workers,
		func(t int) string { return fmt.Sprintf("F%d P=%d trial=%d", fn.No, p, t) },
		func(t int) (trialOut, error) {
			return gaTrial(fn, p, gaCellSeed(opts, t, fn, p), opts, loadBps)
		})
	if err != nil {
		return GARow{}, err
	}
	acc := newGASums()
	for _, out := range outs {
		acc.add(out)
	}
	return acc.row(fn, p, loadBps), nil
}

// printGARows renders rows in the paper's bar-chart layout as a text
// table.
func printGARows(w io.Writer, caption string, rows []GARow) {
	fmt.Fprintf(w, "%s\n", caption)
	fmt.Fprintf(w, "%-10s %4s", "bench", "P")
	for _, v := range Variants() {
		fmt.Fprintf(w, " %8s", v)
	}
	fmt.Fprintf(w, " %8s %8s %9s %10s\n", "best-gr", "best-cmp", "improve", "warp(asy)")
	for _, r := range rows {
		name := "average"
		if r.Fn != nil {
			name = fmt.Sprintf("F%d", r.Fn.No)
		}
		fmt.Fprintf(w, "%-10s %4d", name, r.P)
		for _, v := range Variants() {
			fmt.Fprintf(w, " %8.2f", r.Speedup[v])
		}
		fmt.Fprintf(w, " %8.2f %8.2f %+8.0f%% %10.2f\n",
			r.BestGR, r.BestComp, (r.Improve-1)*100, r.Warp[Variant{Mode: core.Async}])
	}
}
