package exper

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"nscc/internal/ckpt"
	"nscc/internal/faults"
	"nscc/internal/ga"
	"nscc/internal/sim"
)

// scaleOpts is the reduced profile of the fast scale-sweep tests.
func scaleOpts(workers int, gens int64) Options {
	opts := Quick()
	opts.Trials = 1
	opts.SyncGens = gens
	opts.Workers = workers
	return opts
}

// runScaleSweep renders the sweep and returns report + CSV text plus
// the rows, so the determinism and checkpoint tests assert byte
// identity of everything a user sees.
func runScaleSweep(t *testing.T, opts Options, nodes []int, topos []ga.Topology) ([]ScaleRow, string) {
	t.Helper()
	var buf bytes.Buffer
	rows, err := ScaleSweep(&buf, opts, nodes, topos)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteScaleRowsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	return rows, buf.String()
}

func TestScaleSweepSmoke(t *testing.T) {
	opts := scaleOpts(0, 15)
	nodes := []int{8, 16}
	rows, text := runScaleSweep(t, opts, nodes, nil)
	if want := ScaleSweepCells(opts, nodes, nil); len(rows) != want {
		t.Fatalf("%d rows for %d cells (1 trial: rows == cells)", len(rows), want)
	}
	for _, r := range rows {
		if r.Gens <= 0 || r.Gens > float64(opts.SyncGens) {
			t.Errorf("nodes=%d %s: mean gens %.1f outside (0, %d]", r.Nodes, r.Topology, r.Gens, opts.SyncGens)
		}
		if r.Messages <= 0 || r.Delivered <= 0 || r.NetBytes <= 0 {
			t.Errorf("nodes=%d %s: empty traffic counters %+v", r.Nodes, r.Topology, r)
		}
		if r.Best < 0 {
			t.Errorf("nodes=%d %s: negative best %g for a nonnegative objective", r.Nodes, r.Topology, r.Best)
		}
	}
	if !strings.Contains(text, "Scale sweep") {
		t.Error("report missing caption")
	}
	// The per-destination fabric makes the dissemination fan-out
	// visible: at equal node count, broadcast must deliver more frames
	// than any sparse gossip overlay.
	byTopo := make(map[ga.Topology]ScaleRow)
	for _, r := range rows {
		if r.Nodes == 16 {
			byTopo[r.Topology] = r
		}
	}
	for _, topo := range []ga.Topology{ga.GossipRing, ga.GossipRandom, ga.GossipClustered} {
		if byTopo[topo].Delivered >= byTopo[ga.Broadcast].Delivered {
			t.Errorf("%s delivered %d frames, broadcast %d; gossip must be sparser",
				topo, byTopo[topo].Delivered, byTopo[ga.Broadcast].Delivered)
		}
	}
}

// TestScaleSweepBroadcastCap pins the grid shape: the Broadcast
// baseline is dropped past the saturation cap, the gossip overlays
// never are, and the cell count helper agrees with the driver.
func TestScaleSweepBroadcastCap(t *testing.T) {
	opts := scaleOpts(0, 5)
	nodes := []int{8, scaleBroadcastCap + 1}
	if got, want := ScaleSweepCells(opts, nodes, nil), 2*len(ScaleTopologies)-1; got != want {
		t.Fatalf("ScaleSweepCells = %d, want %d (one broadcast cell capped)", got, want)
	}
	rows, _ := runScaleSweep(t, opts, nodes, nil)
	for _, r := range rows {
		if r.Topology == ga.Broadcast && r.Nodes > scaleBroadcastCap {
			t.Fatalf("broadcast row at %d nodes, past the %d-node cap", r.Nodes, scaleBroadcastCap)
		}
	}
	if len(rows) != 2*len(ScaleTopologies)-1 {
		t.Fatalf("%d rows, want %d", len(rows), 2*len(ScaleTopologies)-1)
	}
}

// TestScaleSweepCheckpointResume is the scale sweep's crash drill at a
// few hundred nodes, mirroring the graph sweep's: uncached,
// fresh-cached, torn-journal resume, and a warm rerun at a different
// worker count must all produce byte-identical output.
func TestScaleSweepCheckpointResume(t *testing.T) {
	opts := scaleOpts(0, 10)
	nodes := []int{256}
	topos := []ga.Topology{ga.GossipRing, ga.GossipRandom}
	_, clean := runScaleSweep(t, opts, nodes, topos)

	dir := t.TempDir()
	cachedOpts := opts
	cachedOpts.Ckpt = ckpt.NewStore(dir, false)
	if _, got := runScaleSweep(t, cachedOpts, nodes, topos); got != clean {
		t.Fatalf("fresh cached run differs from uncached:\n%s\n--- vs ---\n%s", got, clean)
	}
	if c := cachedOpts.Ckpt.Counters(); c.Hits != 0 || c.Misses != 2 {
		t.Fatalf("fresh run counters %+v, want 0 hits / 2 misses", c)
	}
	closeStore(t, cachedOpts.Ckpt)

	// Kill mid-write: chop a byte off the journal's last record. Resume
	// must truncate the torn tail, replay the intact cell, and re-run
	// only the torn one — byte-identically.
	journal := filepath.Join(dir, "scalesweep.ckpt")
	fi, err := os.Stat(journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(journal, fi.Size()-1); err != nil {
		t.Fatal(err)
	}
	resumeOpts := opts
	resumeOpts.Ckpt = ckpt.NewStore(dir, true)
	if _, got := runScaleSweep(t, resumeOpts, nodes, topos); got != clean {
		t.Fatalf("resumed run differs from clean run:\n%s\n--- vs ---\n%s", got, clean)
	}
	if c := resumeOpts.Ckpt.Counters(); c.TornRecords != 1 || c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("resume counters %+v, want 1 torn / 1 hit / 1 miss", c)
	}
	closeStore(t, resumeOpts.Ckpt)

	// Warm rerun at a different worker count: all hits, same bytes.
	warmOpts := opts
	warmOpts.Workers = 8
	warmOpts.Ckpt = ckpt.NewStore(dir, true)
	if _, got := runScaleSweep(t, warmOpts, nodes, topos); got != clean {
		t.Fatal("warm 8-worker run differs from clean run")
	}
	if c := warmOpts.Ckpt.Counters(); c.Hits != 2 || c.Misses != 0 {
		t.Fatalf("warm counters %+v, want 2 hits / 0 misses", c)
	}
	closeStore(t, warmOpts.Ckpt)
}

// TestScaleSweepDeterministicAtScale is the tentpole's acceptance
// criterion: a 1000-node sweep moving over a million fabric deliveries
// must render byte-identical report and CSV at workers=1 and
// workers=8.
func TestScaleSweepDeterministicAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-node sweep is long; skipped with -short")
	}
	nodes := []int{1000}
	topos := []ga.Topology{ga.GossipRing, ga.GossipRandom, ga.GossipClustered}
	run := func(workers int) ([]ScaleRow, string) {
		return runScaleSweep(t, scaleOpts(workers, 150), nodes, topos)
	}
	rows1, text1 := run(1)
	rows8, text8 := run(8)
	if !reflect.DeepEqual(rows1, rows8) {
		t.Errorf("1000-node rows differ between workers=1 and workers=8:\n%+v\nvs\n%+v", rows1, rows8)
	}
	if text1 != text8 {
		t.Errorf("1000-node report/CSV differs between workers=1 and workers=8:\n%s\nvs\n%s", text1, text8)
	}
	var delivered int64
	for _, r := range rows1 {
		if r.Nodes != 1000 {
			t.Fatalf("row at %d nodes, want 1000", r.Nodes)
		}
		delivered += r.Delivered
	}
	if delivered < 1_000_000 {
		t.Errorf("sweep delivered %d frames, want >= 1e6 (the scale target)", delivered)
	}
}

// TestScaleSweepGossipChaosLiveness drives the gossip dissemination
// through 16 independently seeded random fault plans — loss bursts,
// delay spikes, reorder/duplication windows, node crashes, and
// partitions — with the reliable transport and bounded reads on. The
// assertion is liveness: every run completes its budget instead of
// deadlocking on a lost migrant update.
func TestScaleSweepGossipChaosLiveness(t *testing.T) {
	const p = 16
	for seed := int64(0); seed < 16; seed++ {
		opts := scaleOpts(2, 30)
		opts.Faults = faults.RandomPlan(seed, p, 2.0)
		opts.Reliable = true
		opts.ReadTimeout = 50 * sim.Millisecond
		rows, err := ScaleSweep(nil, opts, []int{p}, []ga.Topology{ga.GossipRandom})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(rows) != 1 || rows[0].Gens <= 0 || rows[0].Completion <= 0 {
			t.Fatalf("seed %d: degenerate result %+v", seed, rows)
		}
	}
}
