package exper

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"nscc/internal/ckpt"
	"nscc/internal/ga/functions"
)

// runFigure2 renders Figure 2 and returns the exact report text, so the
// checkpoint tests can assert byte identity rather than approximate
// agreement.
func runFigure2(t *testing.T, opts Options) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := Figure2(&buf, opts, []*functions.Function{functions.F1, functions.F5}); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// closeStore flushes the store and fails the test on journal errors.
func closeStore(t *testing.T, s *ckpt.Store) {
	t.Helper()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFigure2CheckpointResume is the sweep-level crash drill: an
// uncached run, a fresh cached run, a kill-mid-journal-write resume
// (simulated by truncating the last record), a warm rerun at a
// different worker count, and a config change must all agree — the
// first four byte-for-byte, the last by invalidating rather than
// replaying stale cells.
func TestFigure2CheckpointResume(t *testing.T) {
	opts := tinyOpts()
	clean := runFigure2(t, opts) // no checkpoint store at all

	// Fresh cached run: identical output, every cell a miss.
	dir := t.TempDir()
	cachedOpts := opts
	cachedOpts.Ckpt = ckpt.NewStore(dir, false)
	if got := runFigure2(t, cachedOpts); got != clean {
		t.Fatalf("fresh cached run differs from uncached:\n%s\n--- vs ---\n%s", got, clean)
	}
	if c := cachedOpts.Ckpt.Counters(); c.Hits != 0 || c.Misses != 2 {
		t.Fatalf("fresh run counters %+v, want 0 hits / 2 misses", c)
	}
	closeStore(t, cachedOpts.Ckpt)

	// Kill mid-write: chop a byte off the journal's last record. Resume
	// must truncate the torn tail, replay the intact cell, and re-run
	// only the torn one — with byte-identical output.
	journal := filepath.Join(dir, "figure2.ckpt")
	fi, err := os.Stat(journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(journal, fi.Size()-1); err != nil {
		t.Fatal(err)
	}
	resumeOpts := opts
	resumeOpts.Ckpt = ckpt.NewStore(dir, true)
	if got := runFigure2(t, resumeOpts); got != clean {
		t.Fatalf("resumed run differs from clean run:\n%s\n--- vs ---\n%s", got, clean)
	}
	if c := resumeOpts.Ckpt.Counters(); c.TornRecords != 1 || c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("resume counters %+v, want 1 torn / 1 hit / 1 miss", c)
	}
	closeStore(t, resumeOpts.Ckpt)

	// Warm rerun at a different worker count: all hits, same bytes.
	warmOpts := opts
	warmOpts.Workers = 8
	warmOpts.Ckpt = ckpt.NewStore(dir, true)
	if got := runFigure2(t, warmOpts); got != clean {
		t.Fatal("warm 8-worker run differs from clean run")
	}
	if c := warmOpts.Ckpt.Counters(); c.Hits != 2 || c.Misses != 0 {
		t.Fatalf("warm counters %+v, want 2 hits / 0 misses", c)
	}
	closeStore(t, warmOpts.Ckpt)

	// A knob that reaches the simulations changes the space fingerprint:
	// the journal must invalidate wholesale, never replay stale bytes.
	staleOpts := opts
	staleOpts.SyncGens = opts.SyncGens + 10
	staleOpts.Ckpt = ckpt.NewStore(dir, true)
	if got := runFigure2(t, staleOpts); got == clean {
		t.Fatal("changed SyncGens left output identical — cells were not re-run")
	}
	if c := staleOpts.Ckpt.Counters(); c.Invalidated != 2 || c.Hits != 0 || c.Misses != 2 {
		t.Fatalf("invalidation counters %+v, want 2 invalidated / 0 hits / 2 misses", c)
	}
	closeStore(t, staleOpts.Ckpt)
}

// TestAgeSweepCheckpointResume covers a two-journal sweep (references
// and cells) resuming across worker counts.
func TestAgeSweepCheckpointResume(t *testing.T) {
	opts := tinyOpts()
	loads := []float64{0}
	run := func(opts Options) string {
		var buf bytes.Buffer
		if _, err := AgeSweep(&buf, opts, functions.F1, 2, loads); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	clean := run(opts)

	dir := t.TempDir()
	// 1 load x 1 trial references + 1 load x 8 ages x 1 trial cells.
	const cells = 1 + 8
	freshOpts := opts
	freshOpts.Ckpt = ckpt.NewStore(dir, false)
	if got := run(freshOpts); got != clean {
		t.Fatal("fresh cached age sweep differs from uncached")
	}
	if c := freshOpts.Ckpt.Counters(); c.Hits != 0 || c.Misses != cells {
		t.Fatalf("fresh counters %+v, want 0 hits / %d misses", c, cells)
	}
	closeStore(t, freshOpts.Ckpt)
	for _, name := range []string{"agesweep-refs.ckpt", "agesweep-cells.ckpt"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("journal %s: %v", name, err)
		}
	}

	warmOpts := opts
	warmOpts.Workers = 8
	warmOpts.Ckpt = ckpt.NewStore(dir, true)
	if got := run(warmOpts); got != clean {
		t.Fatal("warm 8-worker age sweep differs from clean run")
	}
	if c := warmOpts.Ckpt.Counters(); c.Hits != cells || c.Misses != 0 {
		t.Fatalf("warm counters %+v, want %d hits / 0 misses", c, cells)
	}
	closeStore(t, warmOpts.Ckpt)
}

// TestTable2CheckpointResume covers the Bayes-cell key path and the
// Net-pointer reattachment after a cached replay.
func TestTable2CheckpointResume(t *testing.T) {
	opts := tinyOpts()
	var clean bytes.Buffer
	if _, err := Table2(&clean, opts); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	freshOpts := opts
	freshOpts.Ckpt = ckpt.NewStore(dir, false)
	var fresh bytes.Buffer
	if _, err := Table2(&fresh, freshOpts); err != nil {
		t.Fatal(err)
	}
	if fresh.String() != clean.String() {
		t.Fatal("fresh cached Table 2 differs from uncached")
	}
	closeStore(t, freshOpts.Ckpt)

	warmOpts := opts
	warmOpts.Ckpt = ckpt.NewStore(dir, true)
	var warm bytes.Buffer
	rows, err := Table2(&warm, warmOpts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.String() != clean.String() {
		t.Fatal("warm Table 2 differs from uncached")
	}
	if c := warmOpts.Ckpt.Counters(); c.Hits != 4 || c.Misses != 0 {
		t.Fatalf("warm counters %+v, want 4 hits / 0 misses", c)
	}
	for i, r := range rows {
		if r.Net == nil {
			t.Fatalf("row %d lost its network pointer on the cached path", i)
		}
	}
	closeStore(t, warmOpts.Ckpt)
}
