package exper

import (
	"fmt"
	"io"

	"nscc/internal/bayes"
	"nscc/internal/ckpt"
	"nscc/internal/core"
	"nscc/internal/ga/functions"
	"nscc/internal/runner"
	"nscc/internal/sim"
)

// gaCellRef names one (P or load, function, trial) cell of a GA sweep.
// Drivers enumerate their full cell space up front, dispatch every cell
// on the worker pool, and then aggregate the collected trialOuts in
// enumeration order — the same order the old nested loops used — so
// results are independent of the worker count.
type gaCellRef struct {
	fn    *functions.Function
	p     int
	load  float64
	trial int
}

// runGACells executes one trial per cell on the pool, returning the
// outputs in cell order. ctx names the calling figure in errors and
// the sweep's checkpoint journal, where every cell result is cached.
func runGACells(ctx string, cells []gaCellRef, opts Options) ([]trialOut, error) {
	memo, err := opts.sweepMemo(ctx, func(i int) ckpt.Key {
		c := cells[i]
		return gaCellKey(ctx, c.fn, c.p, c.load, c.trial, gaCellSeed(opts, c.trial, c.fn, c.p))
	})
	if err != nil {
		return nil, err
	}
	opts.sweepStart(ctx, len(cells))
	outs, err := runner.MapMemo(len(cells), opts.Workers,
		func(i int) string {
			c := cells[i]
			return fmt.Sprintf("%s F%d P=%d load=%.1fMbps trial=%d", ctx, c.fn.No, c.p, c.load/1e6, c.trial)
		},
		memo,
		withProgress(opts, ctx, func(i int) (trialOut, error) {
			c := cells[i]
			return gaTrial(c.fn, c.p, gaCellSeed(opts, c.trial, c.fn, c.p), opts, c.load)
		}))
	if err != nil {
		return nil, err
	}
	opts.sweepDone(ctx)
	return outs, nil
}

// Figure2Result holds the GA speedups on the unloaded network (Figure
// 2): the best case (function 1) and the 8-function average, per
// processor count.
type Figure2Result struct {
	BestCase []GARow // function 1, one row per P
	Average  []GARow // aggregated over all functions, one row per P
	PerFunc  []GARow // every (function, P) cell
}

// Figure2 reproduces Figure 2: speedups of the synchronous, fully
// asynchronous, and Global_Read (ages 0..30) island GAs over the serial
// program, on an unloaded network, for fns (nil = the full Table 1
// bed) and each processor count in opts.Procs.
func Figure2(w io.Writer, opts Options, fns []*functions.Function) (Figure2Result, error) {
	if fns == nil {
		fns = functions.All()
	}
	var res Figure2Result
	var cells []gaCellRef
	for _, p := range opts.Procs {
		for _, fn := range fns {
			for trial := 0; trial < opts.Trials; trial++ {
				cells = append(cells, gaCellRef{fn: fn, p: p, trial: trial})
			}
		}
	}
	outs, err := runGACells("figure2", cells, opts)
	if err != nil {
		return res, err
	}
	idx := 0
	for _, p := range opts.Procs {
		agg := newGASums()
		for _, fn := range fns {
			cellAcc := newGASums()
			for trial := 0; trial < opts.Trials; trial++ {
				out := outs[idx]
				idx++
				cellAcc.add(out)
				agg.add(out)
			}
			row := cellAcc.row(fn, p, 0)
			res.PerFunc = append(res.PerFunc, row)
			if fn.No == 1 {
				res.BestCase = append(res.BestCase, row)
			}
		}
		res.Average = append(res.Average, agg.row(nil, p, 0))
	}
	if w != nil {
		printGARows(w, "Figure 2a: GA speedups, unloaded network, best case (function 1)", res.BestCase)
		printGARows(w, "Figure 2b: GA speedups, unloaded network, average over the test bed", res.Average)
	}
	return res, nil
}

// Figure4Loads are the paper's background-load levels (plus the
// unloaded reference point), in bits per second.
var Figure4Loads = []float64{0, 0.5e6, 1e6, 2e6}

// Figure4Result holds the loaded-network GA speedups (Figure 4):
// 4 processors plus a 2-node network loader at each load level.
type Figure4Result struct {
	BestCase []GARow // function 1, one row per load
	Average  []GARow // aggregated over fns, one row per load
}

// Figure4 reproduces Figure 4: GA speedups with 4 processors while the
// network loader offers 0.5, 1, and 2 Mbps of background traffic.
func Figure4(w io.Writer, opts Options, fns []*functions.Function) (Figure4Result, error) {
	if fns == nil {
		fns = functions.All()
	}
	const p = 4 // the paper was restricted to a 4-node configuration
	var res Figure4Result
	var cells []gaCellRef
	for _, load := range Figure4Loads {
		for _, fn := range fns {
			for trial := 0; trial < opts.Trials; trial++ {
				cells = append(cells, gaCellRef{fn: fn, p: p, load: load, trial: trial})
			}
		}
	}
	outs, err := runGACells("figure4", cells, opts)
	if err != nil {
		return res, err
	}
	idx := 0
	for _, load := range Figure4Loads {
		agg := newGASums()
		var best GARow
		for _, fn := range fns {
			cellAcc := newGASums()
			for trial := 0; trial < opts.Trials; trial++ {
				out := outs[idx]
				idx++
				cellAcc.add(out)
				agg.add(out)
			}
			if fn.No == 1 {
				best = cellAcc.row(fn, p, load)
			}
		}
		res.BestCase = append(res.BestCase, best)
		res.Average = append(res.Average, agg.row(nil, p, load))
	}
	if w != nil {
		printGALoadRows(w, "Figure 4a: GA speedups on the loaded network, best case (function 1)", res.BestCase)
		printGALoadRows(w, "Figure 4b: GA speedups on the loaded network, average", res.Average)
	}
	return res, nil
}

func printGALoadRows(w io.Writer, caption string, rows []GARow) {
	fmt.Fprintf(w, "%s\n", caption)
	fmt.Fprintf(w, "%-10s %5s", "load", "P")
	for _, v := range Variants() {
		fmt.Fprintf(w, " %8s", v)
	}
	fmt.Fprintf(w, " %8s %8s %9s %10s\n", "best-gr", "best-cmp", "improve", "warp(asy)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %5d", fmt.Sprintf("%.1fMbps", r.LoadBps/1e6), r.P)
		for _, v := range Variants() {
			fmt.Fprintf(w, " %8.2f", r.Speedup[v])
		}
		fmt.Fprintf(w, " %8.2f %8.2f %+8.0f%% %10.2f\n",
			r.BestGR, r.BestComp, (r.Improve-1)*100, r.Warp[Variant{Mode: core.Async}])
	}
}

// BayesRow is one network's entry in Figure 3.
type BayesRow struct {
	Net      *bayes.Network
	Speedup  map[Variant]float64
	BestGR   float64
	BestComp float64
	Improve  float64
	// Diagnostics averaged over trials.
	Rollbacks map[Variant]float64
	Iters     map[Variant]float64
}

// Figure3Result holds the 2-processor belief-network speedups.
type Figure3Result struct {
	Rows    []BayesRow
	Average BayesRow
}

// bayesAges is the Global_Read sweep for the inference benchmarks. The
// useful staleness range for logic sampling is iterations of pipeline
// lag, so the GA's sweep applies directly.
var bayesAges = Ages

// Figure3 reproduces Figure 3: speedups of the parallel logic-sampling
// implementations on a 2-node configuration for each Table 2 network,
// plus the average (ratio of summed serial times to summed parallel
// times).
func Figure3(w io.Writer, opts Options) (Figure3Result, error) {
	nets := bayes.Table2Networks()
	var res Figure3Result

	// One job per (network, trial): the serial reference plus every
	// variant, all sharing the trial seed (the paired comparison the
	// paper's average metric needs). Fields are exported because this
	// is the payload the checkpoint journal caches as JSON.
	type bayesTrialOut struct {
		Serial    sim.Duration             `json:"serial"`
		Par       map[Variant]sim.Duration `json:"par"`
		Rollbacks map[Variant]int64        `json:"rollbacks"`
		Iters     map[Variant]int64        `json:"iters"`
	}
	type bayesCellRef struct {
		net   *bayes.Network
		trial int
	}
	var cells []bayesCellRef
	for _, bn := range nets {
		for trial := 0; trial < opts.Trials; trial++ {
			cells = append(cells, bayesCellRef{net: bn, trial: trial})
		}
	}
	memo, err := opts.sweepMemo("figure3", func(i int) ckpt.Key {
		c := cells[i]
		return bayesCellKey("figure3", c.net, c.trial,
			runner.DeriveSeed(opts.Seed, seedStreamBayes, int64(c.trial)))
	})
	if err != nil {
		return res, err
	}
	opts.sweepStart("figure3", len(cells))
	outs, err := runner.MapMemo(len(cells), opts.Workers,
		func(i int) string {
			return fmt.Sprintf("figure3 %s trial=%d", cells[i].net.Name, cells[i].trial)
		},
		memo,
		withProgress(opts, "figure3", func(i int) (bayesTrialOut, error) {
			bn, trial := cells[i].net, cells[i].trial
			// The trial seed is shared across networks (not a collision:
			// each network is a distinct paired experiment on the stream).
			seed := runner.DeriveSeed(opts.Seed, seedStreamBayes, int64(trial))
			q := bayes.DefaultQuery(bn)
			calib := bayes.DefaultCalibration()
			out := bayesTrialOut{
				Par:       map[Variant]sim.Duration{},
				Rollbacks: map[Variant]int64{},
				Iters:     map[Variant]int64{},
			}
			serial := bayes.InferSerial(bn, q, opts.Precision, seed, calib, bayesMaxIters(opts))
			out.Serial = serial.Time
			for _, v := range bayesVariants() {
				cfg := bayes.ParallelConfig{
					Net: bn, Query: q, P: 2,
					Mode: v.Mode, Age: v.Age,
					Precision:   opts.Precision,
					MaxIters:    bayesMaxIters(opts),
					Seed:        seed,
					Calib:       calib,
					NetCfg:      opts.netOverride(),
					Faults:      opts.Faults,
					Reliable:    opts.Reliable,
					ReadTimeout: opts.ReadTimeout,
					RaceCheck:   opts.SimRace,
				}
				pr, err := bayes.RunParallel(cfg)
				if err != nil {
					return out, fmt.Errorf("%s: %w", v, err)
				}
				out.Par[v] += pr.Completion
				out.Rollbacks[v] = pr.Rollbacks
				out.Iters[v] = pr.Iters
			}
			return out, nil
		}))
	if err != nil {
		return res, err
	}
	opts.sweepDone("figure3")

	totSerial := sim.Duration(0)
	totPar := map[Variant]sim.Duration{}
	avgAcc := BayesRow{Speedup: map[Variant]float64{}, Rollbacks: map[Variant]float64{}, Iters: map[Variant]float64{}}
	idx := 0
	for _, bn := range nets {
		row := BayesRow{
			Net:       bn,
			Speedup:   map[Variant]float64{},
			Rollbacks: map[Variant]float64{},
			Iters:     map[Variant]float64{},
		}
		serialSum := sim.Duration(0)
		parSum := map[Variant]sim.Duration{}
		for trial := 0; trial < opts.Trials; trial++ {
			out := outs[idx]
			idx++
			serialSum += out.Serial
			totSerial += out.Serial
			for _, v := range bayesVariants() {
				parSum[v] += out.Par[v]
				totPar[v] += out.Par[v]
				row.Rollbacks[v] += float64(out.Rollbacks[v]) / float64(opts.Trials)
				row.Iters[v] += float64(out.Iters[v]) / float64(opts.Trials)
			}
		}
		for _, v := range bayesVariants() {
			row.Speedup[v] = ratio(serialSum, parSum[v])
		}
		finishBayesRow(&row)
		res.Rows = append(res.Rows, row)
	}

	for _, v := range bayesVariants() {
		avgAcc.Speedup[v] = ratio(totSerial, totPar[v])
	}
	finishBayesRow(&avgAcc)
	res.Average = avgAcc

	if w != nil {
		printBayesRows(w, "Figure 3: belief-network speedups, 2 processors, unloaded network", res)
	}
	return res, nil
}

func bayesVariants() []Variant {
	vs := []Variant{{Mode: core.Sync}, {Mode: core.Async}}
	for _, a := range bayesAges {
		vs = append(vs, Variant{Mode: core.NonStrict, Age: a})
	}
	return vs
}

func bayesMaxIters(opts Options) int64 {
	// Enough head-room for the paper's +-0.01 target (which needs
	// ~6.8k accepted samples at worst) with rejection and the async
	// variant's wasted iterations.
	base := int64(40000)
	if opts.Precision > 0 {
		need := int64(0.7 / (opts.Precision * opts.Precision)) // ~ (1.645/2prec)^2
		if need*8 > base {
			base = need * 8
		}
	}
	return int64(float64(base) * opts.CapFactor / 4)
}

func finishBayesRow(row *BayesRow) {
	row.BestComp = 1.0
	for _, v := range []Variant{{Mode: core.Sync}, {Mode: core.Async}} {
		if s := row.Speedup[v]; s > row.BestComp {
			row.BestComp = s
		}
	}
	for _, a := range bayesAges {
		if s := row.Speedup[Variant{Mode: core.NonStrict, Age: a}]; s > row.BestGR {
			row.BestGR = s
		}
	}
	row.Improve = row.BestGR / row.BestComp
}

func printBayesRows(w io.Writer, caption string, res Figure3Result) {
	fmt.Fprintf(w, "%s\n", caption)
	fmt.Fprintf(w, "%-12s", "network")
	for _, v := range bayesVariants() {
		fmt.Fprintf(w, " %8s", v)
	}
	fmt.Fprintf(w, " %8s %8s %9s\n", "best-gr", "best-cmp", "improve")
	rows := append([]BayesRow{}, res.Rows...)
	rows = append(rows, res.Average)
	for i, r := range rows {
		name := "average"
		if r.Net != nil {
			name = r.Net.Name
		}
		_ = i
		fmt.Fprintf(w, "%-12s", name)
		for _, v := range bayesVariants() {
			fmt.Fprintf(w, " %8.2f", r.Speedup[v])
		}
		fmt.Fprintf(w, " %8.2f %8.2f %+8.0f%%\n", r.BestGR, r.BestComp, (r.Improve-1)*100)
	}
}
