package exper

import (
	"encoding/csv"
	"fmt"
	"io"

	"nscc/internal/ckpt"
	"nscc/internal/core"
	"nscc/internal/ga"
	"nscc/internal/ga/functions"
	"nscc/internal/netsim"
	"nscc/internal/runner"
	"nscc/internal/sim"
)

// Scale sweep: convergence versus dissemination topology as the island
// count grows from tens to thousands. Every cell runs the same
// Global_Read GA for a fixed generation budget on the hierarchical
// rack/spine fabric — the interconnect a 1000+-node cluster needs —
// and the comparison is the quality reached within the budget: the
// all-to-all Broadcast of the paper's 16-node runs against the gossip
// overlays whose per-round traffic is O(P·degree) instead of O(P²).

// ScaleSweepNodes is the default island-count axis. The flag form
// accepts anything up to the fabric's limits (5000-node runs are
// tractable on the gossip overlays); the default keeps a full sweep
// minutes, not hours.
var ScaleSweepNodes = []int{64, 256, 1000}

// ScaleTopologies is the default dissemination axis: the paper's
// Broadcast baseline plus every gossip overlay.
var ScaleTopologies = []ga.Topology{
	ga.Broadcast, ga.GossipRing, ga.GossipRandom, ga.GossipClustered,
}

// scaleBroadcastCap is the largest island count at which the sweep
// still runs the Broadcast baseline: all-to-all dissemination costs
// O(P²) deliveries per migration round, so above this the baseline
// cells would dominate the whole sweep's runtime while demonstrating
// nothing but the saturation the gossip overlays exist to avoid. The
// gossip topologies have no cap.
const scaleBroadcastCap = 256

// scaleAge is the Global_Read staleness bound every cell runs with
// (the paper's mid-range setting).
const scaleAge = 10

// scaleTarget is an unreachable quality target: the sweep measures
// quality-at-budget rather than time-to-quality, so every island runs
// its full generation budget (F1 is nonnegative, so a negative
// population average never occurs).
const scaleTarget = -1

// ScaleRow is one (nodes, topology) aggregate of the scale sweep.
// Durations, generation counts, fitness, and warp are trial means;
// the traffic counters are trial sums.
type ScaleRow struct {
	Nodes    int
	Topology ga.Topology
	Trials   int

	Completion sim.Duration // mean virtual completion time
	Gens       float64      // mean generations per island
	Best       float64      // best objective over all trials (minimization)
	FinalBest  float64      // mean best objective in the final populations
	Avg        float64      // mean final population average — the convergence metric
	Messages   int64        // frames offered to the fabric, trial-summed
	Delivered  int64        // frames delivered (per-destination), trial-summed
	NetBytes   int64        // bytes carried, trial-summed
	QueueDelay sim.Duration // cumulative fabric queuing delay, trial-summed
	Warp       float64      // mean warp metric
}

// scalePairs enumerates the sweep's (node count, topology) grid in
// deterministic order, dropping Broadcast cells past the cap.
func scalePairs(nodes []int, topos []ga.Topology) [][2]int {
	var pairs [][2]int
	for ni, n := range nodes {
		for ti, topo := range topos {
			if topo == ga.Broadcast && n > scaleBroadcastCap {
				continue
			}
			pairs = append(pairs, [2]int{ni, ti})
		}
	}
	return pairs
}

// scaleCellSeed derives the seed of one (nodes, topology, trial) cell
// from the coordinate values (not slice positions), so reordering or
// extending the axes never reseeds cells they share.
func scaleCellSeed(opts Options, nodes int, topo ga.Topology, trial int) int64 {
	return runner.DeriveSeed(opts.Seed, seedStreamScale, int64(nodes), int64(topo), int64(trial))
}

// scaleTrialOut is one cell's raw measurements — the checkpoint
// journal payload.
type scaleTrialOut struct {
	Completion sim.Duration `json:"completion"`
	Gens       float64      `json:"gens"` // mean generations per island
	Best       float64      `json:"best"`
	FinalBest  float64      `json:"final_best"`
	Avg        float64      `json:"avg"`
	Messages   int64        `json:"messages"`
	Delivered  int64        `json:"delivered"`
	NetBytes   int64        `json:"net_bytes"`
	QueueDelay sim.Duration `json:"queue_delay"`
	Warp       float64      `json:"warp"`
}

// scaleTrial runs one fixed-budget Global_Read GA on the rack/spine
// fabric with the given dissemination topology.
func scaleTrial(nodes int, topo ga.Topology, seed int64, opts Options) (scaleTrialOut, error) {
	h := netsim.DefaultHierConfig()
	if opts.LossProb > 0 {
		h.Bus.LossProb = opts.LossProb
	}
	cfg := ga.IslandConfig{
		Fn: functions.F1, Par: ga.DeJongParams(), P: nodes,
		Mode: core.NonStrict, Age: scaleAge,
		Topology:  topo,
		FixedGens: opts.SyncGens, MinGens: opts.SyncGens, MaxGens: opts.SyncGens,
		Target:      scaleTarget,
		Seed:        seed,
		Calib:       ga.DefaultCalibration(),
		Hier:        &h,
		Faults:      opts.Faults,
		Reliable:    opts.Reliable,
		ReadTimeout: opts.ReadTimeout,
		RaceCheck:   opts.SimRace,
	}
	res, err := ga.RunIsland(cfg)
	if err != nil {
		return scaleTrialOut{}, err
	}
	var gens int64
	for _, g := range res.Gens {
		gens += g
	}
	return scaleTrialOut{
		Completion: res.Completion,
		Gens:       float64(gens) / float64(nodes),
		Best:       res.Best,
		FinalBest:  res.FinalBest,
		Avg:        res.Avg,
		Messages:   res.Messages,
		Delivered:  res.Telemetry.Net.Delivered,
		NetBytes:   res.NetBytes,
		QueueDelay: res.QueueDelay,
		Warp:       res.WarpMean,
	}, nil
}

// ScaleSweep runs the scaling experiment: for every island count and
// dissemination topology, opts.Trials seeded fixed-budget Global_Read
// runs on the hierarchical fabric. One cell = one pooled job;
// aggregation is in enumeration order, so output is byte-identical at
// any worker count. nil axes select the defaults.
func ScaleSweep(w io.Writer, opts Options, nodes []int, topos []ga.Topology) ([]ScaleRow, error) {
	if nodes == nil {
		nodes = ScaleSweepNodes
	}
	if topos == nil {
		topos = ScaleTopologies
	}
	pairs := scalePairs(nodes, topos)
	nTrials := opts.Trials
	nCells := len(pairs) * nTrials
	coords := func(i int) (n int, topo ga.Topology, trial int) {
		pair := pairs[i/nTrials]
		return nodes[pair[0]], topos[pair[1]], i % nTrials
	}
	memo, err := opts.sweepMemo("scalesweep", func(i int) ckpt.Key {
		n, topo, trial := coords(i)
		return scaleCellKey(n, topo, trial, scaleCellSeed(opts, n, topo, trial))
	})
	if err != nil {
		return nil, err
	}
	opts.sweepStart("scalesweep", nCells)
	outs, err := runner.MapMemo(nCells, opts.Workers,
		func(i int) string {
			n, topo, trial := coords(i)
			return fmt.Sprintf("scalesweep nodes=%d %s trial=%d", n, topo, trial)
		},
		memo,
		withProgress(opts, "scalesweep", func(i int) (scaleTrialOut, error) {
			n, topo, trial := coords(i)
			return scaleTrial(n, topo, scaleCellSeed(opts, n, topo, trial), opts)
		}))
	if err != nil {
		return nil, err
	}
	opts.sweepDone("scalesweep")

	// Aggregate trials in enumeration order.
	rows := make([]ScaleRow, 0, len(pairs))
	for pi, pair := range pairs {
		row := ScaleRow{Nodes: nodes[pair[0]], Topology: topos[pair[1]], Trials: nTrials}
		for trial := 0; trial < nTrials; trial++ {
			out := outs[pi*nTrials+trial]
			row.Completion += out.Completion
			row.Gens += out.Gens
			if trial == 0 || out.Best < row.Best {
				row.Best = out.Best
			}
			row.FinalBest += out.FinalBest
			row.Avg += out.Avg
			row.Messages += out.Messages
			row.Delivered += out.Delivered
			row.NetBytes += out.NetBytes
			row.QueueDelay += out.QueueDelay
			row.Warp += out.Warp
		}
		row.Completion /= sim.Duration(nTrials)
		row.Gens /= float64(nTrials)
		row.FinalBest /= float64(nTrials)
		row.Avg /= float64(nTrials)
		row.Warp /= float64(nTrials)
		rows = append(rows, row)
	}

	if w != nil {
		fmt.Fprintf(w, "Scale sweep: convergence vs dissemination topology, %d-generation budget on the rack/spine fabric\n",
			opts.SyncGens)
		fmt.Fprintf(w, "%6s %-17s %7s %10s %10s %12s %10s %10s %6s\n",
			"nodes", "topology", "gens", "avg", "best", "completion", "frames", "MB", "warp")
		for _, r := range rows {
			fmt.Fprintf(w, "%6d %-17s %7.1f %10.4g %10.4g %12v %10d %10.1f %6.2f\n",
				r.Nodes, r.Topology, r.Gens, r.Avg, r.Best, r.Completion,
				r.Messages, float64(r.NetBytes)/1e6, r.Warp)
		}
	}
	return rows, nil
}

// WriteScaleRowsCSV emits scale sweep rows as CSV (one line per
// (nodes, topology)) for external plotting.
func WriteScaleRowsCSV(w io.Writer, rows []ScaleRow) error {
	cw := csv.NewWriter(w)
	header := []string{"nodes", "topology", "trials", "gens", "avg", "final_best", "best",
		"completion_s", "messages", "delivered", "net_bytes", "queue_delay_s", "warp"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			fmt.Sprintf("%d", r.Nodes),
			r.Topology.String(),
			fmt.Sprintf("%d", r.Trials),
			fmt.Sprintf("%.1f", r.Gens),
			fmt.Sprintf("%.6g", r.Avg),
			fmt.Sprintf("%.6g", r.FinalBest),
			fmt.Sprintf("%.6g", r.Best),
			fmt.Sprintf("%.6f", r.Completion.Seconds()),
			fmt.Sprintf("%d", r.Messages),
			fmt.Sprintf("%d", r.Delivered),
			fmt.Sprintf("%d", r.NetBytes),
			fmt.Sprintf("%.6f", r.QueueDelay.Seconds()),
			fmt.Sprintf("%.3f", r.Warp),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
