package exper

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"nscc/internal/ga/functions"
)

// figure2Fixture runs a reduced Figure 2 sweep (2 functions × 2 proc
// counts × Quick trials) at the given worker count and returns both the
// result structs and the rendered text table.
func figure2Fixture(t *testing.T, workers int) (Figure2Result, string) {
	t.Helper()
	opts := Quick()
	opts.Workers = workers
	opts.Procs = []int{2, 4}
	var buf bytes.Buffer
	res, err := Figure2(&buf, opts, []*functions.Function{functions.F1, functions.F5})
	if err != nil {
		t.Fatalf("Figure2(workers=%d): %v", workers, err)
	}
	return res, buf.String()
}

// TestFigure2DeterministicAcrossWorkerCounts is the parallel-sweep
// determinism regression: results and rendered output must be
// byte-identical whether cells run serially or fan out over 8 workers.
func TestFigure2DeterministicAcrossWorkerCounts(t *testing.T) {
	serial, serialText := figure2Fixture(t, 1)
	pooled, pooledText := figure2Fixture(t, 8)
	if !reflect.DeepEqual(serial, pooled) {
		t.Errorf("Figure2 result structs differ between workers=1 and workers=8:\n%+v\nvs\n%+v", serial, pooled)
	}
	if serialText != pooledText {
		t.Errorf("Figure2 rendered tables differ between workers=1 and workers=8:\n%s\nvs\n%s", serialText, pooledText)
	}
}

// TestConcurrentGACellsIsolated runs the same cell from several
// goroutines at once and checks each result matches the serial
// reference. Under -race this also proves no package-level mutable
// state is shared between concurrently running engines.
func TestConcurrentGACellsIsolated(t *testing.T) {
	opts := Quick()
	opts.Workers = 1
	ref, err := GACell(functions.F1, 4, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	results := make([]GARow, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = GACell(functions.F1, 4, opts, 0)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent cell %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(ref, results[i]) {
			t.Errorf("concurrent cell %d diverged from serial reference:\n%+v\nvs\n%+v", i, ref, results[i])
		}
	}
}
