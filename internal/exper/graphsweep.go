package exper

import (
	"encoding/csv"
	"fmt"
	"io"

	"nscc/internal/ckpt"
	"nscc/internal/graph"
	"nscc/internal/netsim"
	"nscc/internal/runner"
	"nscc/internal/sim"
)

// GraphSweepSpecs is the default topology matrix of the graph
// delay-tolerance sweep: the diameter-maximizing ring, a random graph,
// and a clustered graph whose inter-cluster bridges concentrate the
// staleness-critical traffic.
var GraphSweepSpecs = []string{
	"ring:48",
	"random:n=48,m=96,seed=7",
	"clustered:n=48,k=4,seed=7",
}

// graphMaxSupersteps caps every partitioned run in the sweep; a cell
// that hits it reports Converged=false rather than erroring.
const graphMaxSupersteps = 4000

// GraphRow is one (topology, algorithm) aggregate of the graph sweep:
// per-variant speedup over the sequential oracle, mean superstep counts,
// convergence bookkeeping, and the differential check against the
// oracle's fixed point.
type GraphRow struct {
	Spec string
	Algo graph.Algo
	P    int

	Speedup    map[Variant]float64 // oracle time / completion, trial-summed
	Supersteps map[Variant]float64 // mean supersteps per partition per trial
	Converged  map[Variant]int     // trials whose coordinator declared convergence
	MaxDiff    map[Variant]float64 // worst L-inf distance from the oracle over trials
	Warp       map[Variant]float64 // mean warp metric
	// Race-classifier totals over the row's trials (filled only when
	// Options.SimRace).
	Tolerated map[Variant]int64
	Unbounded map[Variant]int64
}

// graphCellSeed derives the seed of one (spec, algo, trial) cell; the
// sequential oracle and every variant of the cell share it.
func graphCellSeed(opts Options, si, ai, trial int) int64 {
	return runner.DeriveSeed(opts.Seed, seedStreamGraph, int64(si), int64(ai), int64(trial))
}

// graphTrialOut is one cell's raw measurements — the checkpoint-journal
// payload, so fields are exported and Variant keys marshal as text.
type graphTrialOut struct {
	Serial sim.Duration             `json:"serial"`
	Times  map[Variant]sim.Duration `json:"times"`
	Steps  map[Variant]float64      `json:"steps"` // mean supersteps per partition
	Conv   map[Variant]bool         `json:"conv"`
	Diff   map[Variant]float64      `json:"diff"`
	Warp   map[Variant]float64      `json:"warp"`
	Tol    map[Variant]int64        `json:"tol,omitempty"`
	Unb    map[Variant]int64        `json:"unb,omitempty"`
}

// graphTrial runs the sequential oracle plus every variant for one
// (topology, algorithm, seed).
func graphTrial(g *graph.Graph, algo graph.Algo, p int, seed int64, opts Options) (graphTrialOut, error) {
	calib := graph.DefaultCalibration()
	seq := graph.RunSequential(g, algo, 0, graphMaxSupersteps, calib)
	out := graphTrialOut{
		Serial: seq.Time,
		Times:  make(map[Variant]sim.Duration),
		Steps:  make(map[Variant]float64),
		Conv:   make(map[Variant]bool),
		Diff:   make(map[Variant]float64),
		Warp:   make(map[Variant]float64),
	}
	if opts.SimRace {
		out.Tol = make(map[Variant]int64)
		out.Unb = make(map[Variant]int64)
	}
	for _, v := range Variants() {
		cfg := graph.Config{
			G: g, Algo: algo, P: p,
			Mode: v.Mode, Age: v.Age,
			MaxSupersteps: graphMaxSupersteps,
			Seed:          seed,
			Calib:         calib,
			Net:           opts.netOverride(),
			Faults:        opts.Faults,
			Reliable:      opts.Reliable,
			ReadTimeout:   opts.ReadTimeout,
			RaceCheck:     opts.SimRace,
		}
		if opts.UseSwitch {
			sw := netsim.DefaultSwitchConfig()
			cfg.Switch = &sw
		}
		r, err := graph.Run(cfg)
		if err != nil {
			return out, fmt.Errorf("%s: %w", v, err)
		}
		out.Times[v] = r.Completion
		var steps int64
		for _, n := range r.Supersteps {
			steps += n
		}
		out.Steps[v] = float64(steps) / float64(p)
		out.Conv[v] = r.Converged
		out.Diff[v] = graph.MaxDiff(r.Values, seq.Values)
		out.Warp[v] = r.WarpMean
		if rt := r.Telemetry.Races; rt != nil && opts.SimRace {
			out.Tol[v] = rt.ToleratedStale
			out.Unb[v] = rt.Unbounded
		}
	}
	return out, nil
}

// GraphSweep runs the graph delay-tolerance experiment: for every
// topology spec and algorithm, opts.Trials seeded cells each running
// the sequential oracle plus the full variant set (sync, async,
// Global_Read at every age) on p partitions. One cell = one pooled
// job; aggregation is in enumeration order, so output is byte-identical
// at any worker count.
func GraphSweep(w io.Writer, opts Options, specs []string, p int) ([]GraphRow, error) {
	if specs == nil {
		specs = GraphSweepSpecs
	}
	graphs := make([]*graph.Graph, len(specs))
	for i, spec := range specs {
		g, err := graph.ParseTopoSpec(spec)
		if err != nil {
			return nil, err
		}
		graphs[i] = g
	}
	algos := graph.Algos
	nTrials := opts.Trials
	nCells := len(specs) * len(algos) * nTrials
	coords := func(i int) (si, ai, trial int) {
		return i / (len(algos) * nTrials), (i / nTrials) % len(algos), i % nTrials
	}
	memo, err := opts.sweepMemo("graphsweep", func(i int) ckpt.Key {
		si, ai, trial := coords(i)
		return graphCellKey(specs[si], algos[ai], p, trial, graphCellSeed(opts, si, ai, trial))
	})
	if err != nil {
		return nil, err
	}
	opts.sweepStart("graphsweep", nCells)
	outs, err := runner.MapMemo(nCells, opts.Workers,
		func(i int) string {
			si, ai, trial := coords(i)
			return fmt.Sprintf("graphsweep %s %s trial=%d", specs[si], algos[ai], trial)
		},
		memo,
		withProgress(opts, "graphsweep", func(i int) (graphTrialOut, error) {
			si, ai, trial := coords(i)
			return graphTrial(graphs[si], algos[ai], p, graphCellSeed(opts, si, ai, trial), opts)
		}))
	if err != nil {
		return nil, err
	}
	opts.sweepDone("graphsweep")

	// Aggregate trials in enumeration order.
	var rows []GraphRow
	for si, spec := range specs {
		for ai, algo := range algos {
			row := GraphRow{
				Spec: spec, Algo: algo, P: p,
				Speedup:    make(map[Variant]float64),
				Supersteps: make(map[Variant]float64),
				Converged:  make(map[Variant]int),
				MaxDiff:    make(map[Variant]float64),
				Warp:       make(map[Variant]float64),
				Tolerated:  make(map[Variant]int64),
				Unbounded:  make(map[Variant]int64),
			}
			var serialSum sim.Duration
			compSum := make(map[Variant]sim.Duration)
			for trial := 0; trial < nTrials; trial++ {
				out := outs[(si*len(algos)+ai)*nTrials+trial]
				serialSum += out.Serial
				for _, v := range Variants() {
					compSum[v] += out.Times[v]
					row.Supersteps[v] += out.Steps[v]
					if out.Conv[v] {
						row.Converged[v]++
					}
					if d := out.Diff[v]; d > row.MaxDiff[v] {
						row.MaxDiff[v] = d
					}
					row.Warp[v] += out.Warp[v]
					row.Tolerated[v] += out.Tol[v]
					row.Unbounded[v] += out.Unb[v]
				}
			}
			for _, v := range Variants() {
				row.Speedup[v] = ratio(serialSum, compSum[v])
				row.Supersteps[v] /= float64(nTrials)
				row.Warp[v] /= float64(nTrials)
			}
			rows = append(rows, row)
		}
	}

	if w != nil {
		fmt.Fprintf(w, "Graph sweep: %d partitions (speedup over sequential per variant)\n", p)
		fmt.Fprintf(w, "%-26s %-9s", "topology", "algo")
		for _, v := range Variants() {
			fmt.Fprintf(w, " %8s", v)
		}
		fmt.Fprintf(w, " %9s\n", "conv")
		for _, r := range rows {
			fmt.Fprintf(w, "%-26s %-9s", r.Spec, r.Algo)
			for _, v := range Variants() {
				fmt.Fprintf(w, " %8.2f", r.Speedup[v])
			}
			conv := 0
			for _, v := range Variants() {
				conv += r.Converged[v]
			}
			fmt.Fprintf(w, " %4d/%-4d\n", conv, len(Variants())*nTrials)
		}
	}
	return rows, nil
}

// WriteGraphRowsCSV emits graph sweep rows as CSV (one line per
// (topology, algo, variant)) for external plotting.
func WriteGraphRowsCSV(w io.Writer, rows []GraphRow) error {
	cw := csv.NewWriter(w)
	header := []string{"topology", "algo", "procs", "variant", "speedup",
		"supersteps", "converged", "max_diff", "warp", "tolerated", "unbounded"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		for _, v := range Variants() {
			rec := []string{
				r.Spec,
				r.Algo.String(),
				fmt.Sprintf("%d", r.P),
				v.String(),
				fmt.Sprintf("%.4f", r.Speedup[v]),
				fmt.Sprintf("%.1f", r.Supersteps[v]),
				fmt.Sprintf("%d", r.Converged[v]),
				fmt.Sprintf("%.3g", r.MaxDiff[v]),
				fmt.Sprintf("%.3f", r.Warp[v]),
				fmt.Sprintf("%d", r.Tolerated[v]),
				fmt.Sprintf("%d", r.Unbounded[v]),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
