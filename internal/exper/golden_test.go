package exper

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"strconv"
	"testing"

	"nscc/internal/ga/functions"
)

// Golden sweep fingerprints.
//
// Each constant is the SHA-256 of one sweep's serialized output —
// the plotting CSV where one exists plus a full-precision dump of
// every result field — captured from the seed state of the repo
// (the commit immediately before the hot-path optimization PR).
// The determinism contract of that PR is that no optimization may
// change a single result byte: any change to the RNG draw sequence,
// float accumulation order, selection logic, or message timing
// shows up here as a fingerprint mismatch.
//
// The fixtures run at reduced scale (fewer functions/trials than the
// benchmark profile) but exercise every code path the full sweeps do:
// serial baselines, sync/async/Global_Read islands at every age,
// migration, roulette selection, mutation, bayes rollbacks, and the
// network model. Every sweep is fingerprinted at workers=1 and
// workers=8 and must hash identically at both.
//
// If a fingerprint legitimately must change (an intentional
// result-affecting change, never a perf-only one), regenerate with:
//
//	go test ./internal/exper -run TestGoldenSweepFingerprints -v -update-goldens
const (
	goldenFigure2 = "168f2a205d1dab27677eecfda5084b5e979006cba8d7a7cfbd5b4f296f31fa42"
	goldenFigure3 = "3735da61b58bd3ff72264596a735f6657e72a43db8a46194314e14cd9f7463f6"
	goldenFigure4 = "8071eb9f0b91b5deffa709ce961437031617a50bd73e48c98de070078d2634d7"
	goldenTable2  = "eed4d4191e467e8b40e81748373f36b1eeb6dd1aac0749385cb304c43b0dbb1b"
	goldenAge     = "675816817a372c1fd9d0ada215d7c226269bb50b8e0cdcd8e697c717acf9d499"
	goldenGraph   = "cfbf78218b623e1d07913e845ef7fb59038b13db03d32f36076b87c40167a377"
	goldenScale   = "386705d3b4929ccf637927e65eda37a1894f38229824e2aa30e866c32264a2ce"
)

// -update-goldens prints the computed hashes instead of asserting,
// for regenerating the constants above after an intentional
// result-affecting change.
var updateGoldens = flag.Bool("update-goldens", false,
	"print computed sweep fingerprints instead of asserting them")

// goldenOpts is the shared reduced-scale profile of the fixtures. It
// must never change (the hashes pin its outputs).
func goldenOpts(workers int) Options {
	opts := Quick()
	opts.Workers = workers
	opts.Trials = 1
	opts.Procs = []int{2, 4}
	return opts
}

// fpFloat renders f with full round-trip precision: two runs whose
// floats differ by one ULP serialize differently.
func fpFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// dumpGARows serializes GA rows with every field at full precision.
func dumpGARows(buf *bytes.Buffer, rows []GARow) {
	for _, r := range rows {
		name := "avg"
		if r.Fn != nil {
			name = fmt.Sprintf("F%d", r.Fn.No)
		}
		fmt.Fprintf(buf, "%s p=%d load=%s", name, r.P, fpFloat(r.LoadBps))
		for _, v := range Variants() {
			fmt.Fprintf(buf, " %s=%s/f%d/m%d/w%s",
				v, fpFloat(r.Speedup[v]), r.OptFound[v], r.TargetMiss[v], fpFloat(r.Warp[v]))
		}
		fmt.Fprintf(buf, " bestgr=%s bestcomp=%s improve=%s\n",
			fpFloat(r.BestGR), fpFloat(r.BestComp), fpFloat(r.Improve))
	}
}

func fingerprintFigure2(t *testing.T, workers int) string {
	t.Helper()
	var buf bytes.Buffer
	res, err := Figure2(&buf, goldenOpts(workers), []*functions.Function{functions.F1, functions.F5})
	if err != nil {
		t.Fatalf("Figure2(workers=%d): %v", workers, err)
	}
	rows := append(append([]GARow{}, res.PerFunc...), res.Average...)
	if err := WriteGARowsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	dumpGARows(&buf, rows)
	dumpGARows(&buf, res.BestCase)
	return hashOf(buf.Bytes())
}

func fingerprintFigure3(t *testing.T, workers int) string {
	t.Helper()
	var buf bytes.Buffer
	res, err := Figure3(&buf, goldenOpts(workers))
	if err != nil {
		t.Fatalf("Figure3(workers=%d): %v", workers, err)
	}
	if err := WriteBayesRowsCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	rows := append(append([]BayesRow{}, res.Rows...), res.Average)
	for _, r := range rows {
		name := "avg"
		if r.Net != nil {
			name = r.Net.Name
		}
		fmt.Fprintf(&buf, "%s", name)
		for _, v := range bayesVariants() {
			fmt.Fprintf(&buf, " %s=%s/r%s/i%s",
				v, fpFloat(r.Speedup[v]), fpFloat(r.Rollbacks[v]), fpFloat(r.Iters[v]))
		}
		fmt.Fprintf(&buf, " bestgr=%s bestcomp=%s improve=%s\n",
			fpFloat(r.BestGR), fpFloat(r.BestComp), fpFloat(r.Improve))
	}
	return hashOf(buf.Bytes())
}

func fingerprintFigure4(t *testing.T, workers int) string {
	t.Helper()
	var buf bytes.Buffer
	res, err := Figure4(&buf, goldenOpts(workers), []*functions.Function{functions.F1, functions.F5})
	if err != nil {
		t.Fatalf("Figure4(workers=%d): %v", workers, err)
	}
	rows := append(append([]GARow{}, res.BestCase...), res.Average...)
	if err := WriteGARowsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	dumpGARows(&buf, rows)
	return hashOf(buf.Bytes())
}

func fingerprintTable2(t *testing.T, workers int) string {
	t.Helper()
	var buf bytes.Buffer
	rows, err := Table2(&buf, goldenOpts(workers))
	if err != nil {
		t.Fatalf("Table2(workers=%d): %v", workers, err)
	}
	for _, r := range rows {
		fmt.Fprintf(&buf, "%s nodes=%d edges=%s values=%d cut=%d pipe=%d serial=%d ref=%s\n",
			r.Net.Name, r.Nodes, fpFloat(r.EdgesPer), r.Values,
			r.EdgeCut, r.PipeCut, int64(r.Serial), fpFloat(r.SerialRef))
	}
	return hashOf(buf.Bytes())
}

func fingerprintAgeSweep(t *testing.T, workers int) string {
	t.Helper()
	var buf bytes.Buffer
	res, err := AgeSweep(&buf, goldenOpts(workers), functions.F1, 4, []float64{0, 2e6})
	if err != nil {
		t.Fatalf("AgeSweep(workers=%d): %v", workers, err)
	}
	dump := func(tag string, rows []AgeSweepRow) {
		for _, r := range rows {
			fmt.Fprintf(&buf, "%s age=%d load=%s speedup=%s blocked=%d warp=%s tol=%d unb=%d\n",
				tag, r.Age, fpFloat(r.LoadBps), fpFloat(r.Speedup),
				int64(r.Blocked), fpFloat(r.Warp), r.Tolerated, r.Unbounded)
		}
	}
	dump("fixed", res.Rows)
	dump("dyn", res.Dynamic)
	return hashOf(buf.Bytes())
}

func fingerprintGraphSweep(t *testing.T, workers int) string {
	t.Helper()
	var buf bytes.Buffer
	rows, err := GraphSweep(&buf, goldenOpts(workers), nil, 4)
	if err != nil {
		t.Fatalf("GraphSweep(workers=%d): %v", workers, err)
	}
	if err := WriteGraphRowsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		fmt.Fprintf(&buf, "%s %s p=%d", r.Spec, r.Algo, r.P)
		for _, v := range Variants() {
			fmt.Fprintf(&buf, " %s=%s/s%s/c%d/d%s/w%s",
				v, fpFloat(r.Speedup[v]), fpFloat(r.Supersteps[v]), r.Converged[v],
				fpFloat(r.MaxDiff[v]), fpFloat(r.Warp[v]))
		}
		fmt.Fprintln(&buf)
	}
	return hashOf(buf.Bytes())
}

func fingerprintScaleSweep(t *testing.T, workers int) string {
	t.Helper()
	var buf bytes.Buffer
	// The scale sweep fixture runs the full topology grid at reduced
	// node counts and budget; like goldenOpts itself, the shape must
	// never change (the hash pins its output).
	opts := goldenOpts(workers)
	opts.SyncGens = 40
	rows, err := ScaleSweep(&buf, opts, []int{16, 64}, nil)
	if err != nil {
		t.Fatalf("ScaleSweep(workers=%d): %v", workers, err)
	}
	if err := WriteScaleRowsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		fmt.Fprintf(&buf, "%d %s t=%d g=%s b=%s fb=%s a=%s m=%d d=%d nb=%d q=%d w=%s c=%d\n",
			r.Nodes, r.Topology, r.Trials, fpFloat(r.Gens), fpFloat(r.Best),
			fpFloat(r.FinalBest), fpFloat(r.Avg), r.Messages, r.Delivered,
			r.NetBytes, int64(r.QueueDelay), fpFloat(r.Warp), int64(r.Completion))
	}
	return hashOf(buf.Bytes())
}

func hashOf(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// TestGoldenSweepFingerprints asserts that every sweep reproduces
// the committed output byte-for-byte, at workers=1 and workers=8. This is the PR-level determinism gate: a hot-path
// optimization that changes any result byte fails here.
func TestGoldenSweepFingerprints(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweeps are long; skipped with -short")
	}
	sweeps := []struct {
		name  string
		want  string
		runFn func(*testing.T, int) string
	}{
		{"Figure2", goldenFigure2, fingerprintFigure2},
		{"Figure3", goldenFigure3, fingerprintFigure3},
		{"Figure4", goldenFigure4, fingerprintFigure4},
		{"Table2", goldenTable2, fingerprintTable2},
		{"AgeSweep", goldenAge, fingerprintAgeSweep},
		{"GraphSweep", goldenGraph, fingerprintGraphSweep},
		{"ScaleSweep", goldenScale, fingerprintScaleSweep},
	}
	for _, sw := range sweeps {
		sw := sw
		t.Run(sw.name, func(t *testing.T) {
			h1 := sw.runFn(t, 1)
			h8 := sw.runFn(t, 8)
			if h1 != h8 {
				t.Fatalf("%s: workers=1 hash %s != workers=8 hash %s", sw.name, h1, h8)
			}
			if *updateGoldens {
				t.Logf("golden%s = %q", sw.name, h1)
				return
			}
			if h1 != sw.want {
				t.Errorf("%s fingerprint drifted from the seed state:\n  got  %s\n  want %s\n"+
					"(a perf-only change must not get here; if the result change is intentional, "+
					"rerun with -update-goldens and update the constants)", sw.name, h1, sw.want)
			}
		})
	}
}
