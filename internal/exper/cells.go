package exper

import (
	"nscc/internal/bayes"
	"nscc/internal/ga"
	"nscc/internal/ga/functions"
	"nscc/internal/graph"
)

// Cell counts for the pooled sweeps. A "cell" is one independent,
// fully-seeded simulation job as dispatched to the runner pool;
// nscc-bench divides wall-clock time by these to report cells/sec.

// Figure2Cells is the Figure 2 job count: procs × functions × trials.
func Figure2Cells(opts Options, fns []*functions.Function) int {
	return len(opts.Procs) * nFns(fns) * opts.Trials
}

// Figure3Cells is the Figure 3 job count: Table 2 networks × trials.
func Figure3Cells(opts Options) int {
	return len(bayes.Table2Networks()) * opts.Trials
}

// Figure4Cells is the Figure 4 job count: loads × functions × trials.
func Figure4Cells(opts Options, fns []*functions.Function) int {
	return len(Figure4Loads) * nFns(fns) * opts.Trials
}

// Table2Cells is the Table 2 job count: one per network.
func Table2Cells() int {
	return len(bayes.Table2Networks())
}

// AgeSweepCells is the age-sweep job count across both pooled stages:
// the per-(load, trial) references plus every (load, age, trial) cell
// including the dynamic-age pseudo-point.
func AgeSweepCells(opts Options, nLoads int) int {
	refs := nLoads * opts.Trials
	sweep := nLoads * (len(ageSweepAges) + 1) * opts.Trials
	return refs + sweep
}

// GraphSweepCells is the graph sweep's job count: topologies ×
// algorithms × trials (each cell runs the oracle plus every variant).
func GraphSweepCells(opts Options, nSpecs int) int {
	return nSpecs * len(graph.Algos) * opts.Trials
}

// ScaleSweepCells is the scale sweep's job count: the (node count,
// topology) grid — minus the Broadcast cells past the saturation cap —
// times trials. nil axes select the defaults, mirroring ScaleSweep.
func ScaleSweepCells(opts Options, nodes []int, topos []ga.Topology) int {
	if nodes == nil {
		nodes = ScaleSweepNodes
	}
	if topos == nil {
		topos = ScaleTopologies
	}
	return len(scalePairs(nodes, topos)) * opts.Trials
}

func nFns(fns []*functions.Function) int {
	if fns == nil {
		return len(functions.All())
	}
	return len(fns)
}
