package exper

import (
	"encoding/json"
	"fmt"

	"nscc/internal/bayes"
	"nscc/internal/ckpt"
	"nscc/internal/ga"
	"nscc/internal/ga/functions"
	"nscc/internal/graph"
	"nscc/internal/runner"
)

// ckptSchema versions the cached cell payloads. Bump it whenever a
// journaled struct (trialOut, bayesTrialOut, ageRefOut, ageCellOut,
// Table2Row) or the semantics of a cell change, so stale journals
// invalidate instead of replaying wrong bytes.
const ckptSchema = 2

// sweepSpace fingerprints everything outside a cell's own coordinates
// that determines its result: the schema version, the sweep identity,
// and every Options knob that reaches the simulations. Trials, Procs,
// and Workers are deliberately absent — they select which cells exist
// (or how they are scheduled), not what any one cell computes, so a
// shortened or re-parallelized rerun still hits.
func (o Options) sweepSpace(sweep string) ckpt.Key {
	fp := ckpt.NewFingerprint("nscc/exper/space")
	fp.I64("schema", ckptSchema)
	fp.Str("sweep", sweep)
	fp.I64("seed", o.Seed)
	fp.I64("sync_gens", o.SyncGens)
	fp.F64("cap_factor", o.CapFactor)
	fp.F64("precision", o.Precision)
	fp.Bool("switch", o.UseSwitch)
	fp.Bool("reliable", o.Reliable)
	fp.I64("read_timeout", int64(o.ReadTimeout))
	fp.F64("loss", o.LossProb)
	fp.Bool("simrace", o.SimRace)
	if o.Faults != nil {
		// The plan is identified by its canonical JSON; a plan that
		// cannot marshal could not have been loaded in the first place.
		data, err := json.Marshal(o.Faults)
		if err != nil {
			panic(fmt.Sprintf("exper: fingerprint fault plan: %v", err))
		}
		fp.Str("faults", string(data))
	}
	return fp.Sum()
}

// sweepMemo opens the named sweep's journal in the configured store
// and binds the job index → cell fingerprint mapping. It returns a
// typed nil interface when no store is configured, which runner.MapMemo
// treats as plain Map. With a Progress sink configured, the memo is
// wrapped so cache hits report CellDone (a hit never reaches the cell
// function, where computed cells report).
func (o Options) sweepMemo(sweep string, key func(int) ckpt.Key) (runner.Memo, error) {
	if o.Ckpt == nil {
		return nil, nil
	}
	m, err := o.Ckpt.Memo(sweep, o.sweepSpace(sweep), key, nil)
	if err != nil {
		return nil, err
	}
	if o.Progress != nil {
		return progressMemo{Memo: m, sink: o.Progress, sweep: sweep}, nil
	}
	return m, nil
}

// progressMemo reports replayed cells to the progress sink. Lookup may
// run concurrently on pool workers; the sink owns its synchronization.
type progressMemo struct {
	runner.Memo
	sink  ProgressSink
	sweep string
}

func (m progressMemo) Lookup(i int) ([]byte, bool) {
	data, ok := m.Memo.Lookup(i)
	if ok {
		m.sink.CellDone(m.sweep)
	}
	return data, ok
}

// cellFingerprint starts a cell key in the given sweep's coordinate
// space.
func cellFingerprint(sweep string) *ckpt.Fingerprint {
	fp := ckpt.NewFingerprint("nscc/exper/cell")
	fp.Str("sweep", sweep)
	return fp
}

// gaCellKey fingerprints one (function, P, load, trial) GA cell and
// its derived seed.
func gaCellKey(sweep string, fn *functions.Function, p int, load float64, trial int, seed int64) ckpt.Key {
	fp := cellFingerprint(sweep)
	fp.I64("fn", int64(fn.No))
	fp.I64("p", int64(p))
	fp.F64("load", load)
	fp.I64("trial", int64(trial))
	fp.I64("seed", seed)
	return fp.Sum()
}

// bayesCellKey fingerprints one (network, trial) inference cell.
func bayesCellKey(sweep string, bn *bayes.Network, trial int, seed int64) ckpt.Key {
	fp := cellFingerprint(sweep)
	fp.Str("net", bn.Name)
	fp.I64("trial", int64(trial))
	fp.I64("seed", seed)
	return fp.Sum()
}

// ageRefKey fingerprints one age-sweep reference cell: the (load,
// trial) serial baseline + synchronous target run for fn on p
// processors.
func ageRefKey(fn *functions.Function, p int, load float64, trial int, seed int64) ckpt.Key {
	fp := cellFingerprint("agesweep-refs")
	fp.I64("fn", int64(fn.No))
	fp.I64("p", int64(p))
	fp.F64("load", load)
	fp.I64("trial", int64(trial))
	fp.I64("seed", seed)
	return fp.Sum()
}

// graphCellKey fingerprints one (topology, algorithm, trial) graph
// sweep cell on p partitions and its derived seed. The topology enters
// as its spec string — two sweeps over different topology lists share
// cells for the specs they have in common.
func graphCellKey(spec string, algo graph.Algo, p, trial int, seed int64) ckpt.Key {
	fp := cellFingerprint("graphsweep")
	fp.Str("topo", spec)
	fp.Str("algo", algo.String())
	fp.I64("p", int64(p))
	fp.I64("trial", int64(trial))
	fp.I64("seed", seed)
	return fp.Sum()
}

// scaleCellKey fingerprints one (nodes, topology, trial) scale sweep
// cell and its derived seed. The generation budget is not part of the
// key: it reaches the cell through Options.SyncGens, which the sweep
// space fingerprint already covers.
func scaleCellKey(nodes int, topo ga.Topology, trial int, seed int64) ckpt.Key {
	fp := cellFingerprint("scalesweep")
	fp.I64("nodes", int64(nodes))
	fp.Str("topo", topo.String())
	fp.I64("trial", int64(trial))
	fp.I64("seed", seed)
	return fp.Sum()
}

// ageCellKey fingerprints one (load, age, trial) age-sweep cell; the
// dynamic-age pseudo-point is distinguished from fixed age 1.
func ageCellKey(fn *functions.Function, p int, load float64, age int64, dynamic bool, trial int, seed int64) ckpt.Key {
	fp := cellFingerprint("agesweep-cells")
	fp.I64("fn", int64(fn.No))
	fp.I64("p", int64(p))
	fp.F64("load", load)
	fp.I64("age", age)
	fp.Bool("dynamic", dynamic)
	fp.I64("trial", int64(trial))
	fp.I64("seed", seed)
	return fp.Sum()
}
