package exper

import (
	"bytes"
	"encoding/json"
	"testing"

	"nscc/internal/trace"
)

// TestTraceRun runs the instrumented demo at a reduced scale and checks
// the acceptance properties: spans from at least three layers, a valid
// Perfetto-loadable Chrome trace export, populated telemetry for both
// applications, and an observed-staleness histogram bounded by the
// demo's age setting.
func TestTraceRun(t *testing.T) {
	opts := Quick()
	opts.SyncGens = 40
	opts.Precision = 0.05

	rec := trace.NewRecorder()
	var out bytes.Buffer
	tel, err := TraceRun(&out, opts, rec)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("demo recorded no events")
	}

	pids := map[int]bool{}
	for _, e := range rec.Events() {
		if e.Ph == trace.PhaseSpan {
			pids[e.Pid] = true
		}
	}
	if len(pids) < 3 {
		t.Fatalf("spans from %d layers, want >= 3 (got %v)", len(pids), pids)
	}

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var records []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &records); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	if len(records) <= rec.Len() {
		t.Fatalf("export has %d records, want > %d (events + pid metadata)", len(records), rec.Len())
	}

	if tel.GA == nil || tel.Bayes == nil {
		t.Fatalf("telemetry missing an application block: %+v", tel)
	}
	if len(tel.GA.Tasks) != 4 {
		t.Fatalf("GA telemetry has %d tasks, want 4", len(tel.GA.Tasks))
	}
	for _, task := range tel.GA.Tasks {
		if task.MsgsSent == 0 || task.BytesSent == 0 || task.GlobalReads == 0 {
			t.Fatalf("GA task telemetry not populated: %+v", task)
		}
	}
	if tel.GA.Staleness.N == 0 {
		t.Fatal("GA staleness histogram is empty")
	}
	if tel.GA.Staleness.Max > traceAge {
		t.Fatalf("GA observed staleness %d exceeds the age bound %d", tel.GA.Staleness.Max, traceAge)
	}
	if tel.Bayes.Staleness.Max > traceAge {
		t.Fatalf("bayes observed staleness %d exceeds the age bound %d", tel.Bayes.Staleness.Max, traceAge)
	}
	if tel.GA.Net.Frames == 0 || tel.GA.Net.Utilization <= 0 {
		t.Fatalf("GA net telemetry not populated: %+v", tel.GA.Net)
	}
	if tel.GA.TotalBlockedSecs() <= 0 {
		t.Fatal("Global_Read demo recorded no blocked time")
	}

	var js bytes.Buffer
	enc := json.NewEncoder(&js)
	if err := enc.Encode(tel); err != nil {
		t.Fatalf("telemetry does not marshal: %v", err)
	}
}
