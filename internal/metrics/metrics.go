// Package metrics implements the paper's measurement machinery: the
// warp network-load metric of Heddaya–Park–Sinha (measured above PVM for
// all messages, §4.3), plus the run statistics the evaluation reports
// (means over repeated trials, 90 % confidence intervals for the
// inference programs).
package metrics

import (
	"math"
	"sort"

	"nscc/internal/sim"
)

// Warp of a pair of consecutive messages from the same sender: the ratio
// of the difference in their arrival times to the difference in their
// sending times. Warp 1 means stable network load; warp >> 1 means load
// is increasing.

// WarpMeter accumulates warp samples per (receiver, sender) pair.
type WarpMeter struct {
	last map[[2]int][2]sim.Time // (dst,src) -> (sentAt, arrivedAt) of previous message
	acc  Accumulator
}

// NewWarpMeter returns an empty meter.
func NewWarpMeter() *WarpMeter {
	return &WarpMeter{last: make(map[[2]int][2]sim.Time)}
}

// Observe records one message arrival. Call it for every message (e.g.
// from pvm.Machine.ArrivalHook).
func (w *WarpMeter) Observe(dst, src int, sentAt, arrivedAt sim.Time) {
	if s, ok := w.observe(dst, src, sentAt, arrivedAt); ok {
		w.acc.Add(s)
	}
}

// observe pairs the arrival with the previous message of the same
// (receiver, sender) stream and returns the warp sample, if the pair
// yields one. It is the single copy of the pairing logic; WarpMeter and
// WarpSeries both build on it.
func (w *WarpMeter) observe(dst, src int, sentAt, arrivedAt sim.Time) (float64, bool) {
	key := [2]int{dst, src}
	prev, ok := w.last[key]
	w.last[key] = [2]sim.Time{sentAt, arrivedAt}
	if !ok {
		return 0, false
	}
	ds := sentAt.Sub(prev[0]).Seconds()
	if ds <= 0 {
		return 0, false
	}
	da := arrivedAt.Sub(prev[1]).Seconds()
	return da / ds, true
}

// Samples reports how many warp values have been measured.
func (w *WarpMeter) Samples() int { return w.acc.N() }

// Mean reports the average warp (1 when no samples, i.e. a quiet,
// stable network).
func (w *WarpMeter) Mean() float64 {
	if w.acc.N() == 0 {
		return 1
	}
	return w.acc.Mean()
}

// Max reports the largest warp observed (1 when no samples).
func (w *WarpMeter) Max() float64 {
	if w.acc.N() == 0 {
		return 1
	}
	return w.acc.Max()
}

// WarpSeries tracks warp over consecutive windows of virtual time, so
// the onset of network instability is visible as a time series rather
// than a single mean: a stable network hovers at 1 in every window; a
// flooding sender drives later windows' warp upward.
type WarpSeries struct {
	meter  *WarpMeter
	window sim.Duration
	cur    int
	accs   []Accumulator
}

// NewWarpSeries returns a series with the given window width.
func NewWarpSeries(window sim.Duration) *WarpSeries {
	if window <= 0 {
		panic("metrics: warp window must be positive")
	}
	return &WarpSeries{meter: NewWarpMeter(), window: window}
}

// Observe records one message arrival (same contract as
// WarpMeter.Observe); the sample lands in the window containing
// arrivedAt. The pairing logic is delegated to the embedded meter so it
// cannot drift from WarpMeter's.
func (ws *WarpSeries) Observe(dst, src int, sentAt, arrivedAt sim.Time) {
	idx := int(int64(arrivedAt) / int64(ws.window))
	for len(ws.accs) <= idx {
		ws.accs = append(ws.accs, Accumulator{})
	}
	if s, ok := ws.meter.observe(dst, src, sentAt, arrivedAt); ok {
		ws.accs[idx].Add(s)
	}
}

// Windows returns the per-window mean warp (1 for empty windows).
func (ws *WarpSeries) Windows() []float64 {
	out := make([]float64, len(ws.accs))
	for i := range ws.accs {
		if ws.accs[i].N() == 0 {
			out[i] = 1
		} else {
			out[i] = ws.accs[i].Mean()
		}
	}
	return out
}

// Max returns the largest window mean (1 with no samples).
func (ws *WarpSeries) Max() float64 {
	max := 1.0
	for _, w := range ws.Windows() {
		if w > max {
			max = w
		}
	}
	return max
}

// Accumulator is a Welford-style running mean/variance with min/max.
type Accumulator struct {
	n          int
	mean, m2   float64
	min, max   float64
	everygiven bool
}

// Add folds one sample into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
	if !a.everygiven || x < a.min {
		a.min = x
	}
	if !a.everygiven || x > a.max {
		a.max = x
	}
	a.everygiven = true
}

// N returns the sample count.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 with no samples).
func (a *Accumulator) Mean() float64 { return a.mean }

// Var returns the unbiased sample variance (0 with <2 samples).
func (a *Accumulator) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the sample standard deviation.
func (a *Accumulator) Std() float64 { return math.Sqrt(a.Var()) }

// Min and Max return the extremes (0 with no samples).
func (a *Accumulator) Min() float64 { return a.min }
func (a *Accumulator) Max() float64 { return a.max }

// z90 is the two-sided 90 % normal quantile used by the paper's
// inference stopping rule ("90% confidence intervals to a precision of
// ±0.01").
const z90 = 1.6449

// CI90HalfWidth returns the half-width of the 90 % confidence interval
// of the mean under a normal approximation. With fewer than 2 samples it
// returns +Inf so stopping rules keep sampling.
func (a *Accumulator) CI90HalfWidth() float64 {
	if a.n < 2 {
		return math.Inf(1)
	}
	return z90 * a.Std() / math.Sqrt(float64(a.n))
}

// ProportionCI90HalfWidth returns the 90 % half-width for an estimated
// proportion p from n Bernoulli samples — the form logic sampling's
// event-frequency estimates use.
func ProportionCI90HalfWidth(p float64, n int) float64 {
	if n < 2 {
		return math.Inf(1)
	}
	return z90 * math.Sqrt(p*(1-p)/float64(n))
}

// Speedup returns serial/parallel, guarding against a zero denominator.
func Speedup(serial, parallel sim.Duration) float64 {
	if parallel <= 0 {
		return 0
	}
	return serial.Seconds() / parallel.Seconds()
}

// Median returns the median of xs (0 for empty input). The input is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if len(c)%2 == 1 {
		return c[len(c)/2]
	}
	return (c[len(c)/2-1] + c[len(c)/2]) / 2
}
