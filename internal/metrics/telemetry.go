package metrics

import (
	"sort"

	"nscc/internal/sim"
)

// TaskTelemetry is one task's time and traffic accounting for a run:
// the message-layer counters (messages and bytes in each direction, the
// receive-overhead CPU the unpacking charged, send-window stalls)
// merged with the coherence-layer counters (Global_Read calls, blocks,
// blocked time). Durations are exported as float seconds so the JSON is
// directly plottable.
type TaskTelemetry struct {
	Task int    `json:"task"`
	Name string `json:"name"`

	MsgsSent    int64   `json:"msgs_sent"`
	MsgsRecv    int64   `json:"msgs_recv"`
	BytesSent   int64   `json:"bytes_sent"`
	BytesRecv   int64   `json:"bytes_recv"`
	RecvCPUSecs float64 `json:"recv_cpu_secs"`
	SendStalls  int64   `json:"send_stalls"`

	GlobalReads  int64   `json:"global_reads"`
	BlockedReads int64   `json:"blocked_reads"`
	BlockedSecs  float64 `json:"blocked_secs"`

	// Reliable-transport counters (zero unless pvm.Config.Reliable).
	Retransmits    int64 `json:"retransmits,omitempty"`
	DupsSuppressed int64 `json:"dups_suppressed,omitempty"`
	RetxAbandoned  int64 `json:"retx_abandoned,omitempty"`
	// ReadTimeouts counts Global_Reads that hit their deadline and
	// returned the cached value instead of a fresh one.
	ReadTimeouts int64 `json:"read_timeouts,omitempty"`
}

// RaceTelemetry is the simulated-time race classifier's verdict on a
// run: every cross-process read that returned a value is exactly one of
// synchronized (no concurrent unobserved write existed — the read could
// not have raced), tolerated-stale (a race, but within the Global_Read
// age bound — the paper's non-strict coherence working as designed), or
// unbounded (a race with no staleness contract in force: an async read,
// or a timed-out Global_Read that exceeded its bound).
type RaceTelemetry struct {
	Writes         int64 `json:"writes"`
	Reads          int64 `json:"reads"` // value-bearing reads classified
	Synchronized   int64 `json:"synchronized"`
	ToleratedStale int64 `json:"tolerated_stale"`
	Unbounded      int64 `json:"unbounded"`
	// NoValue counts reads that returned no value at all (nothing had
	// arrived and the contract demanded nothing) — no race to classify.
	NoValue int64 `json:"no_value,omitempty"`
	// TimedOut counts degraded Global_Reads (also classified above).
	TimedOut int64 `json:"timed_out,omitempty"`
	// MaxLag is the largest reader-observed staleness (current iteration
	// − returned iteration) over racy bounded reads.
	MaxLag int64 `json:"max_lag,omitempty"`
}

// Races reports the total racy reads (tolerated + unbounded).
func (r *RaceTelemetry) Races() int64 { return r.ToleratedStale + r.Unbounded }

// RaceReportSchema versions the -simrace-out report consumed by
// nscc-lint -simrace-report.
const RaceReportSchema = "nscc-simrace-report/v1"

// LocationRace is one DSM location's slice of the race classification:
// the same verdict counters as RaceTelemetry, attributed to the named
// location. The static staleflow analyzer discharges tolerated flows
// per location name (//nscc:tolerates-stale loc=<name>), and the
// reconciliation cross-check joins these dynamic rows against those
// annotations.
type LocationRace struct {
	ID             int    `json:"id"`
	Name           string `json:"name"`
	Writes         int64  `json:"writes"`
	Reads          int64  `json:"reads"`
	Synchronized   int64  `json:"synchronized"`
	ToleratedStale int64  `json:"tolerated_stale"`
	Unbounded      int64  `json:"unbounded"`
	NoValue        int64  `json:"no_value,omitempty"`
	MaxLag         int64  `json:"max_lag,omitempty"`
}

// RaceReport is the per-run (or per-sweep, after merging) simrace
// verdict in its serialized form.
type RaceReport struct {
	Schema    string         `json:"schema"`
	Totals    RaceTelemetry  `json:"totals"`
	Locations []LocationRace `json:"locations"`
}

// MergeLocationRaces folds src's rows into dst (matching by location
// id and name — distinct sweep cells re-register the same topology)
// and returns dst sorted by id then name. Counters add; MaxLag takes
// the maximum.
func MergeLocationRaces(dst, src []LocationRace) []LocationRace {
	type key struct {
		id   int
		name string
	}
	idx := map[key]int{}
	for i, r := range dst {
		idx[key{r.ID, r.Name}] = i
	}
	for _, r := range src {
		k := key{r.ID, r.Name}
		i, ok := idx[k]
		if !ok {
			idx[k] = len(dst)
			dst = append(dst, r)
			continue
		}
		d := &dst[i]
		d.Writes += r.Writes
		d.Reads += r.Reads
		d.Synchronized += r.Synchronized
		d.ToleratedStale += r.ToleratedStale
		d.Unbounded += r.Unbounded
		d.NoValue += r.NoValue
		if r.MaxLag > d.MaxLag {
			d.MaxLag = r.MaxLag
		}
	}
	sort.Slice(dst, func(i, j int) bool {
		if dst[i].ID != dst[j].ID {
			return dst[i].ID < dst[j].ID
		}
		return dst[i].Name < dst[j].Name
	})
	return dst
}

// RaceReport assembles the run's serializable race report (the
// -simrace-out artifact nscc-lint -simrace-report consumes), or nil if
// the run was executed without race checking.
func (t *Telemetry) RaceReport() *RaceReport {
	if t.Races == nil {
		return nil
	}
	return &RaceReport{Schema: RaceReportSchema, Totals: *t.Races, Locations: t.RaceLocations}
}

// TotalsFromLocations derives sweep-level totals from merged location
// rows: counters sum, MaxLag takes the maximum. (TimedOut is not
// attributed per location and stays zero.)
func TotalsFromLocations(locs []LocationRace) RaceTelemetry {
	var t RaceTelemetry
	for _, l := range locs {
		t.Writes += l.Writes
		t.Reads += l.Reads
		t.Synchronized += l.Synchronized
		t.ToleratedStale += l.ToleratedStale
		t.Unbounded += l.Unbounded
		t.NoValue += l.NoValue
		if l.MaxLag > t.MaxLag {
			t.MaxLag = l.MaxLag
		}
	}
	return t
}

// CacheTelemetry is the checkpoint cache's accounting over a sweep (or
// a whole run, when aggregated across sweeps): cells replayed from the
// journal (Hits), cells actually computed (Misses), records discarded
// because the journal's configuration fingerprint no longer matched
// (Invalidated), and torn tail records truncated away during crash
// recovery (TornRecords — at most one per journal per crash).
type CacheTelemetry struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Invalidated int64 `json:"invalidated,omitempty"`
	TornRecords int64 `json:"torn_records,omitempty"`
}

// Add accumulates another journal's counters.
func (c *CacheTelemetry) Add(o CacheTelemetry) {
	c.Hits += o.Hits
	c.Misses += o.Misses
	c.Invalidated += o.Invalidated
	c.TornRecords += o.TornRecords
}

// NetTelemetry is the interconnect's aggregate accounting.
type NetTelemetry struct {
	Frames         int64   `json:"frames"`
	Delivered      int64   `json:"delivered"`
	Dropped        int64   `json:"dropped"`
	Bytes          int64   `json:"bytes"`
	BusySecs       float64 `json:"busy_secs"`
	QueueDelaySecs float64 `json:"queue_delay_secs"`
	MaxQueueLen    int     `json:"max_queue_len"`
	Utilization    float64 `json:"utilization"`
}

// Telemetry is the structured, machine-readable observability block a
// run result carries: per-task accounting, network aggregates, the
// observed-staleness histogram of every Global_Read (the empirical
// picture of the age bound), and the warp summary.
type Telemetry struct {
	Variant        string  `json:"variant"`
	Age            int64   `json:"age"`
	CompletionSecs float64 `json:"completion_secs"`

	Tasks     []TaskTelemetry  `json:"tasks"`
	Net       NetTelemetry     `json:"net"`
	Staleness HistogramSummary `json:"staleness"`

	WarpMean float64 `json:"warp_mean"`
	WarpMax  float64 `json:"warp_max"`

	// StalenessViolations counts Global_Reads that could not meet the
	// staleness bound within their timeout and degraded to the cached
	// value (the sum of the per-task ReadTimeouts).
	StalenessViolations int64 `json:"staleness_violations,omitempty"`

	// Races is the simulated-time race classifier's summary; nil unless
	// the run was executed with race checking on.
	Races *RaceTelemetry `json:"races,omitempty"`

	// RaceLocations is the per-location breakdown of Races (one row per
	// registered DSM location); empty unless race checking was on.
	RaceLocations []LocationRace `json:"race_locations,omitempty"`

	// Cache is the checkpoint cache's hit/miss accounting; nil unless
	// the run was executed with a cache directory configured.
	Cache *CacheTelemetry `json:"cache,omitempty"`

	// Series carries the windowed simulated-time series recorded during
	// the run (internal/tseries summaries, sorted by name); empty unless
	// the run was configured with a series set.
	Series []SeriesSummary `json:"series,omitempty"`
}

// SeriesSummary is the JSON export of one windowed simulated-time
// series (produced by internal/tseries, defined here so Telemetry does
// not depend on the recording package). Windows are contiguous from
// simulated time 0; window i covers [i*WindowSecs, (i+1)*WindowSecs).
// The per-window Values slice holds the window sum for counters and the
// window mean for gauges and quantile series; Max and P90 are populated
// for quantile series only.
type SeriesSummary struct {
	Name       string  `json:"name"`
	Kind       string  `json:"kind"` // "counter", "gauge", "quantile"
	WindowSecs float64 `json:"window_secs"`

	Counts []int64   `json:"counts,omitempty"` // per-window sample count
	Values []float64 `json:"values"`
	Max    []float64 `json:"max,omitempty"`
	P90    []float64 `json:"p90,omitempty"`
}

// TotalBlockedSecs sums the per-task Global_Read blocked time.
func (t *Telemetry) TotalBlockedSecs() float64 {
	s := 0.0
	for i := range t.Tasks {
		s += t.Tasks[i].BlockedSecs
	}
	return s
}

// Secs converts a virtual duration to the float seconds the telemetry
// exports.
func Secs(d sim.Duration) float64 { return d.Seconds() }
