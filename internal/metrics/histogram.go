package metrics

import "math/bits"

// histBuckets is the fixed bucket count of Histogram. Bucket 0 holds
// non-positive samples; bucket k (k >= 1) holds [2^(k-1), 2^k). 48
// buckets cover every int64 the repository produces (staleness in
// iterations, lags, byte counts).
const histBuckets = 48

// Histogram counts int64 samples in fixed log-scale (power-of-two)
// buckets. The fixed layout makes histograms from different tasks or
// trials mergeable bucket-by-bucket, which is what the per-run
// staleness export needs: each DSM node observes its own reads and the
// run merges them. The zero value is an empty, usable histogram.
type Histogram struct {
	counts [histBuckets]int64
	n      int64
	sum    int64
	max    int64
}

// histBucketOf returns the bucket index for v.
func histBucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v)) // v in [2^(b-1), 2^b)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe folds one sample into the histogram.
func (h *Histogram) Observe(v int64) {
	h.counts[histBucketOf(v)]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// N returns the sample count.
func (h *Histogram) N() int64 { return h.n }

// Max returns the largest observed sample (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Merge folds o's samples into h. Histograms share a fixed bucket
// layout, so the merge is exact.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Quantile returns an upper bound on the q-quantile of the observed
// samples: the inclusive upper edge of the smallest bucket whose
// cumulative count reaches q*n, clamped to the observed maximum (the
// bucket edge can exceed it by up to 2x). q is clamped to [0, 1]; an
// empty histogram reports 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target sample, 1-based: ceil(q*n), at least 1.
	rank := int64(q * float64(h.n))
	if float64(rank) < q*float64(h.n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			var hi int64
			if i > 0 {
				hi = int64(1)<<i - 1
			}
			if hi > h.max {
				hi = h.max
			}
			return hi
		}
	}
	return h.max
}

// HistBucket is one non-empty bucket of a histogram: samples v with
// Lo <= v <= Hi.
type HistBucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// Buckets returns the non-empty buckets in increasing order.
func (h *Histogram) Buckets() []HistBucket {
	var out []HistBucket
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		b := HistBucket{Count: c}
		if i > 0 {
			b.Lo = int64(1) << (i - 1)
			b.Hi = int64(1)<<i - 1
		}
		out = append(out, b)
	}
	return out
}

// HistogramSummary is the JSON-friendly export of a histogram.
type HistogramSummary struct {
	N       int64        `json:"n"`
	Max     int64        `json:"max"`
	Mean    float64      `json:"mean"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Summary returns the histogram's machine-readable summary.
func (h *Histogram) Summary() HistogramSummary {
	return HistogramSummary{N: h.n, Max: h.max, Mean: h.Mean(), Buckets: h.Buckets()}
}
