package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"nscc/internal/sim"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if got := a.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Population variance of this classic set is 4; sample variance is
	// 32/7.
	if got := a.Var(); math.Abs(got-32.0/7) > 1e-12 {
		t.Fatalf("Var = %v, want %v", got, 32.0/7)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Var() != 0 || a.Std() != 0 || a.Mean() != 0 {
		t.Fatal("empty accumulator should be all zeros")
	}
	if !math.IsInf(a.CI90HalfWidth(), 1) {
		t.Fatal("CI of empty accumulator should be +Inf")
	}
	a.Add(-3)
	if a.Min() != -3 || a.Max() != -3 {
		t.Fatal("single negative sample min/max wrong")
	}
}

func TestCI90ShrinksWithN(t *testing.T) {
	var a Accumulator
	for i := 0; i < 10; i++ {
		a.Add(float64(i % 2))
	}
	w10 := a.CI90HalfWidth()
	for i := 0; i < 990; i++ {
		a.Add(float64(i % 2))
	}
	w1000 := a.CI90HalfWidth()
	if w1000 >= w10 {
		t.Fatalf("CI did not shrink: %v -> %v", w10, w1000)
	}
	// Half-width for a fair coin with n=1000: 1.645*0.5/sqrt(1000) ~ 0.026.
	if math.Abs(w1000-0.026) > 0.003 {
		t.Fatalf("w1000 = %v, want ~0.026", w1000)
	}
}

func TestProportionCI(t *testing.T) {
	if !math.IsInf(ProportionCI90HalfWidth(0.5, 1), 1) {
		t.Fatal("n=1 should give +Inf")
	}
	w := ProportionCI90HalfWidth(0.5, 6765)
	// 1.645*sqrt(0.25/6765) ~ 0.01 — the paper's stopping precision.
	if math.Abs(w-0.01) > 0.0005 {
		t.Fatalf("half-width = %v, want ~0.01", w)
	}
	if ProportionCI90HalfWidth(0.1, 1000) >= ProportionCI90HalfWidth(0.5, 1000) {
		t.Fatal("extreme proportions should have narrower CI")
	}
}

func TestWarpStableNetwork(t *testing.T) {
	w := NewWarpMeter()
	// Constant delay: arrival spacing == send spacing -> warp 1.
	for i := 0; i < 10; i++ {
		at := sim.Time(i) * sim.Time(sim.Millisecond)
		w.Observe(0, 1, at, at.Add(5*sim.Microsecond))
	}
	if w.Samples() != 9 {
		t.Fatalf("samples = %d, want 9", w.Samples())
	}
	if math.Abs(w.Mean()-1) > 1e-9 || math.Abs(w.Max()-1) > 1e-9 {
		t.Fatalf("stable network warp = mean %v max %v, want 1", w.Mean(), w.Max())
	}
}

func TestWarpRisingLoad(t *testing.T) {
	w := NewWarpMeter()
	// Send every 1 ms; queuing delay grows 1 ms per message: arrival
	// spacing 2 ms -> warp 2.
	for i := 0; i < 10; i++ {
		sent := sim.Time(i) * sim.Time(sim.Millisecond)
		arr := sent.Add(sim.Duration(i+1) * sim.Millisecond)
		w.Observe(0, 1, sent, arr)
	}
	if math.Abs(w.Mean()-2) > 1e-9 {
		t.Fatalf("rising-load warp = %v, want 2", w.Mean())
	}
}

func TestWarpPerPairTracking(t *testing.T) {
	w := NewWarpMeter()
	// Interleaved senders must not contaminate each other's deltas.
	w.Observe(0, 1, 0, 10)
	w.Observe(0, 2, 5, 1000)
	w.Observe(0, 1, sim.Time(sim.Millisecond), sim.Time(sim.Millisecond).Add(10))
	if w.Samples() != 1 {
		t.Fatalf("samples = %d, want 1", w.Samples())
	}
	if math.Abs(w.Mean()-1) > 1e-9 {
		t.Fatalf("warp = %v, want 1", w.Mean())
	}
}

func TestWarpNoSamples(t *testing.T) {
	w := NewWarpMeter()
	if w.Mean() != 1 || w.Max() != 1 {
		t.Fatal("empty meter should report warp 1 (stable)")
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(10*sim.Second, 2*sim.Second); got != 5 {
		t.Fatalf("Speedup = %v, want 5", got)
	}
	if Speedup(sim.Second, 0) != 0 {
		t.Fatal("zero denominator should yield 0")
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Fatal("empty median should be 0")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median wrong")
	}
	if Median([]float64{4, 1, 3, 2}) != 2.5 {
		t.Fatal("even median wrong")
	}
	in := []float64{5, 1, 3}
	Median(in)
	if in[0] != 5 {
		t.Fatal("Median mutated its input")
	}
}

// Property: accumulator mean/var agree with the direct two-pass formulas.
func TestAccumulatorMatchesTwoPass(t *testing.T) {
	f := func(xsRaw []int16) bool {
		if len(xsRaw) < 2 {
			return true
		}
		var a Accumulator
		var sum float64
		for _, v := range xsRaw {
			a.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(xsRaw))
		var ss float64
		for _, v := range xsRaw {
			d := float64(v) - mean
			ss += d * d
		}
		wantVar := ss / float64(len(xsRaw)-1)
		scale := math.Max(1, math.Abs(wantVar))
		return math.Abs(a.Mean()-mean) < 1e-9*math.Max(1, math.Abs(mean)) &&
			math.Abs(a.Var()-wantVar) < 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWarpSeriesWindows(t *testing.T) {
	ws := NewWarpSeries(10 * sim.Millisecond)
	// First window: stable (spacing preserved). Second window: doubling
	// arrival spacing (warp 2).
	for i := 0; i < 5; i++ {
		sent := sim.Time(i) * sim.Time(sim.Millisecond)
		ws.Observe(0, 1, sent, sent.Add(100*sim.Microsecond))
	}
	for i := 0; i < 5; i++ {
		sent := sim.Time(12+i) * sim.Time(sim.Millisecond)
		arr := sim.Time(12 * sim.Millisecond).Add(sim.Duration(i) * 2 * sim.Millisecond)
		ws.Observe(0, 1, sent, arr)
	}
	win := ws.Windows()
	if len(win) < 2 {
		t.Fatalf("windows = %v", win)
	}
	if math.Abs(win[0]-1) > 1e-9 {
		t.Fatalf("stable window warp %v, want 1", win[0])
	}
	if ws.Max() < 1.5 {
		t.Fatalf("unstable window never registered: %v (max %v)", win, ws.Max())
	}
}

func TestWarpSeriesEmptyWindowsAreStable(t *testing.T) {
	ws := NewWarpSeries(sim.Millisecond)
	ws.Observe(0, 1, 0, sim.Time(10*sim.Millisecond))
	ws.Observe(0, 1, sim.Time(sim.Millisecond), sim.Time(11*sim.Millisecond))
	for i, w := range ws.Windows()[:10] {
		if w != 1 {
			t.Fatalf("empty window %d has warp %v", i, w)
		}
	}
	if ws.Max() != 1 {
		t.Fatalf("stable series max %v", ws.Max())
	}
}

func TestWarpSeriesBadWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero window did not panic")
		}
	}()
	NewWarpSeries(0)
}
