package metrics

import "testing"

// TestHistogramBucketBoundaries pins the log-scale bucket layout:
// bucket 0 = {v <= 0}, bucket k = [2^(k-1), 2^k).
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		lo, hi int64
	}{
		{-3, 0, 0},
		{0, 0, 0},
		{1, 1, 1},
		{2, 2, 3},
		{3, 2, 3},
		{4, 4, 7},
		{7, 4, 7},
		{8, 8, 15},
		{1023, 512, 1023},
		{1024, 1024, 2047},
	}
	for _, c := range cases {
		var h Histogram
		h.Observe(c.v)
		bs := h.Buckets()
		if len(bs) != 1 {
			t.Fatalf("Observe(%d): %d buckets, want 1", c.v, len(bs))
		}
		if bs[0].Lo != c.lo || bs[0].Hi != c.hi || bs[0].Count != 1 {
			t.Errorf("Observe(%d): bucket [%d,%d]x%d, want [%d,%d]x1",
				c.v, bs[0].Lo, bs[0].Hi, bs[0].Count, c.lo, c.hi)
		}
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 10} {
		h.Observe(v)
	}
	if h.N() != 5 {
		t.Errorf("N = %d, want 5", h.N())
	}
	if h.Max() != 10 {
		t.Errorf("Max = %d, want 10", h.Max())
	}
	if h.Sum() != 16 {
		t.Errorf("Sum = %d, want 16", h.Sum())
	}
	if got := h.Mean(); got != 3.2 {
		t.Errorf("Mean = %g, want 3.2", got)
	}
	// Buckets: {0}x1, {1}x1, {2,3}x2, {8..15}x1
	bs := h.Buckets()
	if len(bs) != 4 {
		t.Fatalf("buckets = %v, want 4 entries", bs)
	}
	if bs[2].Lo != 2 || bs[2].Hi != 3 || bs[2].Count != 2 {
		t.Errorf("bucket[2] = %+v, want [2,3]x2", bs[2])
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for _, v := range []int64{0, 1, 5} {
		a.Observe(v)
	}
	for _, v := range []int64{5, 9} {
		b.Observe(v)
	}
	a.Merge(&b)
	if a.N() != 5 {
		t.Errorf("merged N = %d, want 5", a.N())
	}
	if a.Max() != 9 {
		t.Errorf("merged Max = %d, want 9", a.Max())
	}
	if a.Sum() != 20 {
		t.Errorf("merged Sum = %d, want 20", a.Sum())
	}
	// Bucket [4,7] should now count both fives.
	for _, bk := range a.Buckets() {
		if bk.Lo == 4 && bk.Count != 2 {
			t.Errorf("bucket [4,7] count = %d, want 2", bk.Count)
		}
	}
	a.Merge(nil) // no-op
	if a.N() != 5 {
		t.Errorf("Merge(nil) changed N")
	}
	// An empty zero-value histogram summarizes cleanly.
	var empty Histogram
	s := empty.Summary()
	if s.N != 0 || s.Max != 0 || s.Mean != 0 || len(s.Buckets) != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %d, want 0", q, got)
		}
	}
}

func TestHistogramQuantileSingleBucket(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Observe(5) // all land in bucket [4,7]
	}
	for _, q := range []float64{0, 0.5, 0.9, 1} {
		if got := h.Quantile(q); got != 5 {
			// Bucket upper edge is 7, clamped to the observed max 5.
			t.Errorf("Quantile(%v) = %d, want 5 (clamped to max)", q, got)
		}
	}
	// Out-of-range q clamps instead of misbehaving.
	if h.Quantile(-0.5) != h.Quantile(0) || h.Quantile(1.5) != h.Quantile(1) {
		t.Error("q outside [0,1] not clamped")
	}
}

func TestHistogramQuantileZeroBucket(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-3)
	h.Observe(100)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("median of {-3,0,100} bucketed = %d, want 0 (non-positive bucket)", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("p100 = %d, want 100", got)
	}
}

func TestHistogramMergeEmpty(t *testing.T) {
	var a, b Histogram
	a.Merge(&b) // empty into empty
	if a.N() != 0 || a.Max() != 0 || a.Quantile(0.5) != 0 {
		t.Errorf("empty merge dirtied histogram: n=%d max=%d", a.N(), a.Max())
	}
	a.Merge(nil) // nil is a no-op
	b.Observe(8)
	a.Merge(&b)
	if a.N() != 1 || a.Max() != 8 {
		t.Errorf("merge of one sample: n=%d max=%d", a.N(), a.Max())
	}
}

func TestHistogramMergeCrossScale(t *testing.T) {
	// One histogram of tiny samples, one of huge ones: the fixed bucket
	// layout makes the merge exact, and quantiles reflect both scales.
	var small, big Histogram
	for i := 0; i < 90; i++ {
		small.Observe(1)
	}
	for i := 0; i < 10; i++ {
		big.Observe(1 << 40)
	}
	small.Merge(&big)
	if small.N() != 100 {
		t.Fatalf("n = %d", small.N())
	}
	if got := small.Quantile(0.5); got != 1 {
		t.Errorf("median = %d, want 1", got)
	}
	if got := small.Quantile(0.95); got != 1<<40 {
		t.Errorf("p95 = %d, want 2^40 (clamped to max)", got)
	}
	if small.Max() != 1<<40 {
		t.Errorf("max = %d", small.Max())
	}
	if small.Sum() != 90+10*(1<<40) {
		t.Errorf("sum = %d", small.Sum())
	}
}
