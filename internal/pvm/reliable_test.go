package pvm

import (
	"testing"

	"nscc/internal/faults"
	"nscc/internal/netsim"
	"nscc/internal/sim"
)

// newReliableMachine builds a machine with the reliable transport on,
// over a fabric wrapped by plan (nil plan = no-op injector).
func newReliableMachine(seed int64, plan *faults.Plan) (*sim.Engine, *Machine) {
	eng := sim.NewEngine(seed)
	net := faults.Wrap(netsim.New(eng, netsim.DefaultConfig()), plan)
	cfg := DefaultConfig()
	cfg.Reliable = true
	return eng, NewMachine(eng, net, cfg)
}

// TestReliableExactSequenceUnderChaos is the transport's defining
// property: for ANY fault plan, the delivered sequence per (src,dst)
// stream exactly equals the sent sequence — nothing lost, duplicated,
// or reordered — as long as fault windows are bounded so bounded
// retransmission can outlast them.
func TestReliableExactSequenceUnderChaos(t *testing.T) {
	const n = 40
	for seed := int64(0); seed < 25; seed++ {
		plan := faults.RandomPlan(seed, 2, 0.2)
		eng, m := newReliableMachine(seed, plan)
		var got []int
		m.Spawn("recv", func(task *Task) {
			for i := 0; i < n; i++ {
				got = append(got, task.Recv(1, 5).Data.(int))
			}
		})
		m.Spawn("send", func(task *Task) {
			for j := 0; j < n; j++ {
				task.Compute(sim.Millisecond)
				task.Send(0, 5, 256, j)
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(got) != n {
			t.Fatalf("seed %d: delivered %d of %d", seed, len(got), n)
		}
		for j, v := range got {
			if v != j {
				t.Fatalf("seed %d: delivered sequence %v != sent sequence", seed, got)
			}
		}
	}
}

// TestReliableMulticastExactSequence checks the per-destination
// sequence numbering on the shared-frame multicast path: every
// receiver of every multicast sees the exact sent order.
func TestReliableMulticastExactSequence(t *testing.T) {
	const n = 30
	plan := faults.RandomPlan(3, 3, 0.15)
	eng, m := newReliableMachine(3, plan)
	seqs := make([][]int, 2)
	for r := 0; r < 2; r++ {
		r := r
		m.Spawn("recv", func(task *Task) {
			for i := 0; i < n; i++ {
				seqs[r] = append(seqs[r], task.Recv(2, 9).Data.(int))
			}
		})
	}
	m.Spawn("send", func(task *Task) {
		for j := 0; j < n; j++ {
			task.Compute(sim.Millisecond)
			task.Multicast([]int{0, 1}, 9, 256, j, nil)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		if len(seqs[r]) != n {
			t.Fatalf("receiver %d got %d of %d", r, len(seqs[r]), n)
		}
		for j, v := range seqs[r] {
			if v != j {
				t.Fatalf("receiver %d sequence %v != sent sequence", r, seqs[r])
			}
		}
	}
}

// TestUnreliableEmptyPlanByteIdentical is the opt-out guarantee: with
// Reliable off and a zero-fault plan wrapped around the fabric, every
// message's payload and arrival instant is byte-identical to the same
// run on the bare fabric.
func TestUnreliableEmptyPlanByteIdentical(t *testing.T) {
	type arrival struct {
		data interface{}
		at   sim.Time
	}
	run := func(wrap bool) []arrival {
		eng := sim.NewEngine(11)
		var fab netsim.Fabric = netsim.New(eng, netsim.DefaultConfig())
		if wrap {
			fab = faults.Wrap(fab, &faults.Plan{})
		}
		m := NewMachine(eng, fab, DefaultConfig())
		var got []arrival
		m.Spawn("recv", func(task *Task) {
			for i := 0; i < 15; i++ {
				msg := task.Recv(Any, Any)
				got = append(got, arrival{msg.Data, msg.ArrivedAt})
			}
		})
		m.Spawn("send", func(task *Task) {
			for j := 0; j < 15; j++ {
				task.Compute(sim.Duration(1+j%3) * sim.Millisecond)
				task.Send(0, 4, 128+j, j)
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	bare, wrapped := run(false), run(true)
	for i := range bare {
		if bare[i] != wrapped[i] {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, bare[i], wrapped[i])
		}
	}
}

// TestReliableSuppressesDuplicates runs under a prob-1 duplication
// window: the application must see each message exactly once while the
// transport counts the suppressed copies.
func TestReliableSuppressesDuplicates(t *testing.T) {
	const n = 10
	plan := &faults.Plan{Duplicates: []faults.DuplicateWindow{{From: 0, To: 100, Prob: 1}}}
	eng, m := newReliableMachine(1, plan)
	var got []int
	var rt *Task
	m.Spawn("recv", func(task *Task) {
		rt = task
		for i := 0; i < n; i++ {
			got = append(got, task.Recv(1, 2).Data.(int))
		}
	})
	m.Spawn("send", func(task *Task) {
		for j := 0; j < n; j++ {
			task.Compute(sim.Millisecond)
			task.Send(0, 2, 128, j)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for j, v := range got {
		if v != j {
			t.Fatalf("duplicate leaked through: %v", got)
		}
	}
	if rt.Stats().DupsSuppressed == 0 {
		t.Fatal("no duplicates suppressed under a prob-1 duplication window")
	}
}

// TestReliableRetransmitRecoversLoss drops everything for the first
// 50 ms: the sole message sent at t~0 must still arrive, via a
// retransmission after the window lifts.
func TestReliableRetransmitRecoversLoss(t *testing.T) {
	plan := &faults.Plan{Loss: []faults.LossBurst{
		{From: 0, To: 0.05, Prob: 1, Src: faults.AnyNode, Dst: faults.AnyNode},
	}}
	eng, m := newReliableMachine(1, plan)
	var got *Message
	var st *Task
	m.Spawn("recv", func(task *Task) { got = task.Recv(1, 7) })
	m.Spawn("send", func(task *Task) {
		st = task
		task.Send(0, 7, 256, "survivor")
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Data != "survivor" {
		t.Fatalf("message lost despite reliable transport: %+v", got)
	}
	if got.ArrivedAt < sim.Time(50*sim.Millisecond) {
		t.Fatalf("arrived at %v, inside the prob-1 loss window", got.ArrivedAt)
	}
	if st.Stats().Retransmits == 0 {
		t.Fatal("recovery happened without a recorded retransmission")
	}
}

// TestReliableAbandonsAfterMaxRetries covers the give-up path: under a
// permanent blackout the sender must stop retrying after MaxRetries
// (so the engine drains rather than ticking forever) and count the
// abandonment.
func TestReliableAbandonsAfterMaxRetries(t *testing.T) {
	plan := &faults.Plan{Loss: []faults.LossBurst{
		{From: 0, To: 1e6, Prob: 1, Src: faults.AnyNode, Dst: faults.AnyNode},
	}}
	eng, m := newReliableMachine(1, plan)
	var got *Message
	var st *Task
	m.Spawn("recv", func(task *Task) {
		// Far beyond the retransmission span (~164 virtual seconds with
		// the default 20 ms base and 12 doublings).
		got = task.RecvTimeout(1, 7, 300*sim.Second)
	})
	m.Spawn("send", func(task *Task) {
		st = task
		task.Send(0, 7, 256, "doomed")
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("message delivered through a permanent blackout: %+v", got)
	}
	if st.Stats().RetxAbandoned != 1 {
		t.Fatalf("RetxAbandoned = %d, want 1", st.Stats().RetxAbandoned)
	}
	// NewMachine normalizes MaxRetries to 12 when Reliable is on.
	if st.Stats().Retransmits != 12 {
		t.Fatalf("Retransmits = %d, want the default MaxRetries of 12", st.Stats().Retransmits)
	}
}

// TestRecvTimeout covers the primitive the bounded Global_Read builds
// on: timeout with nothing pending returns nil at the deadline; a
// message landing before the deadline is returned and charged.
func TestRecvTimeout(t *testing.T) {
	eng, m := newMachine(1)
	var missed, caught *Message
	var missedAt sim.Time
	m.Spawn("recv", func(task *Task) {
		missed = task.RecvTimeout(Any, 3, 10*sim.Millisecond)
		missedAt = task.Now()
		caught = task.RecvTimeout(Any, 3, sim.Second)
	})
	m.Spawn("send", func(task *Task) {
		task.Compute(30 * sim.Millisecond)
		task.Send(0, 3, 64, "late")
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if missed != nil {
		t.Fatalf("first RecvTimeout returned %+v before any send", missed)
	}
	if missedAt != sim.Time(10*sim.Millisecond) {
		t.Fatalf("timeout returned at %v, want 10ms", missedAt)
	}
	if caught == nil || caught.Data != "late" {
		t.Fatalf("second RecvTimeout missed the message: %+v", caught)
	}
}
