package pvm

import (
	"testing"
	"testing/quick"

	"nscc/internal/netsim"
	"nscc/internal/sim"
)

func newMachine(seed int64) (*sim.Engine, *Machine) {
	eng := sim.NewEngine(seed)
	net := netsim.New(eng, netsim.DefaultConfig())
	return eng, NewMachine(eng, net, DefaultConfig())
}

func TestSendRecv(t *testing.T) {
	eng, m := newMachine(1)
	var got *Message
	m.Spawn("recv", func(t *Task) { got = t.Recv(Any, 7) })
	m.Spawn("send", func(t *Task) { t.Send(0, 7, 128, "payload") })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Data != "payload" || got.Src != 1 || got.Tag != 7 {
		t.Fatalf("got %+v", got)
	}
	if got.ArrivedAt <= got.SentAt {
		t.Fatalf("message arrived (%v) not after send (%v)", got.ArrivedAt, got.SentAt)
	}
}

func TestRecvBlocksUntilArrival(t *testing.T) {
	eng, m := newMachine(1)
	var recvDone sim.Time
	m.Spawn("recv", func(t *Task) {
		t.Recv(Any, 1)
		recvDone = t.Now()
	})
	m.Spawn("send", func(t *Task) {
		t.Compute(10 * sim.Millisecond)
		t.Send(0, 1, 64, nil)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if recvDone < sim.Time(10*sim.Millisecond) {
		t.Fatalf("receive completed at %v, before the send was issued", recvDone)
	}
}

func TestTagAndSourceMatching(t *testing.T) {
	eng, m := newMachine(1)
	var order []int
	m.Spawn("recv", func(t *Task) {
		// Wait specifically for tag 2 first even though tag 1 arrives
		// earlier, then collect tag 1 from the queue.
		order = append(order, t.Recv(Any, 2).Tag)
		order = append(order, t.Recv(Any, 1).Tag)
	})
	m.Spawn("send", func(t *Task) {
		t.Send(0, 1, 64, nil)
		t.Compute(sim.Millisecond)
		t.Send(0, 2, 64, nil)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("recv order = %v, want [2 1]", order)
	}
}

func TestSourceSpecificRecv(t *testing.T) {
	eng, m := newMachine(1)
	var from int
	m.Spawn("recv", func(t *Task) { from = t.Recv(2, Any).Src })
	m.Spawn("s1", func(t *Task) { t.Send(0, 5, 64, nil) })
	m.Spawn("s2", func(t *Task) {
		t.Compute(5 * sim.Millisecond)
		t.Send(0, 5, 64, nil)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if from != 2 {
		t.Fatalf("Recv(2, Any) returned message from %d", from)
	}
}

func TestNRecvAndProbe(t *testing.T) {
	eng, m := newMachine(1)
	var beforeArrival, afterArrival *Message
	var probed bool
	m.Spawn("recv", func(t *Task) {
		beforeArrival = t.NRecv(Any, Any)
		t.Compute(20 * sim.Millisecond) // let the message arrive
		probed = t.Probe(Any, 9)
		afterArrival = t.NRecv(Any, 9)
	})
	m.Spawn("send", func(t *Task) { t.Send(0, 9, 64, 42) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if beforeArrival != nil {
		t.Fatal("NRecv returned a message before any arrived")
	}
	if !probed || afterArrival == nil || afterArrival.Data != 42 {
		t.Fatalf("probe=%v msg=%+v", probed, afterArrival)
	}
}

func TestBcast(t *testing.T) {
	eng, m := newMachine(1)
	const n = 5
	got := make([]int, n)
	for i := 0; i < n-1; i++ {
		i := i
		m.Spawn("recv", func(t *Task) { got[i] = t.Recv(Any, 3).Data.(int) })
	}
	m.Spawn("root", func(t *Task) { t.Bcast(3, 64, 77) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n-1; i++ {
		if got[i] != 77 {
			t.Fatalf("receiver %d got %d, want 77", i, got[i])
		}
	}
}

func TestFIFOPerSourceTag(t *testing.T) {
	eng, m := newMachine(1)
	var seq []int
	m.Spawn("recv", func(t *Task) {
		for i := 0; i < 10; i++ {
			seq = append(seq, t.Recv(1, 4).Data.(int))
		}
	})
	m.Spawn("send", func(t *Task) {
		for i := 0; i < 10; i++ {
			t.Send(0, 4, 64, i)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range seq {
		if v != i {
			t.Fatalf("FIFO violated: %v", seq)
		}
	}
}

func TestSendChargesOverhead(t *testing.T) {
	eng, m := newMachine(1)
	var after sim.Time
	m.Spawn("sink", func(t *Task) { t.Recv(Any, Any) })
	m.Spawn("send", func(t *Task) {
		t.Send(0, 1, 64, nil)
		after = t.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if after != sim.Time(DefaultConfig().SendOverhead) {
		t.Fatalf("sender clock after send = %v, want %v", after, DefaultConfig().SendOverhead)
	}
}

func TestArrivalHook(t *testing.T) {
	eng, m := newMachine(1)
	hooks := 0
	m.ArrivalHook = func(dst int, msg *Message) {
		hooks++
		if dst != 0 || msg.Src != 1 {
			t.Errorf("hook dst=%d src=%d", dst, msg.Src)
		}
	}
	m.Spawn("recv", func(t *Task) { t.Recv(Any, Any) })
	m.Spawn("send", func(t *Task) { t.Send(0, 1, 64, nil) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if hooks != 1 {
		t.Fatalf("hook fired %d times, want 1", hooks)
	}
}

func TestCounters(t *testing.T) {
	eng, m := newMachine(1)
	var rt, st *Task
	m.Spawn("recv", func(t *Task) {
		rt = t
		t.Recv(Any, Any)
		t.Recv(Any, Any)
	})
	m.Spawn("send", func(t *Task) {
		st = t
		t.Send(0, 1, 64, nil)
		t.Send(0, 1, 64, nil)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if st.Sent() != 2 || rt.Received() != 2 || rt.Pending() != 0 {
		t.Fatalf("sent=%d received=%d pending=%d", st.Sent(), rt.Received(), rt.Pending())
	}
}

func TestSendUnknownTaskPanics(t *testing.T) {
	eng, m := newMachine(1)
	m.Spawn("send", func(t *Task) {
		defer func() {
			if recover() == nil {
				panic("send to unknown task did not panic")
			}
		}()
		t.Send(42, 1, 64, nil)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: with any interleaving of computes and sends, every message
// sent is eventually received exactly once when receivers drain their
// queues, and per-(src,tag) FIFO order holds.
func TestDeliveryProperty(t *testing.T) {
	f := func(seed int64, countsRaw []uint8) bool {
		if len(countsRaw) > 4 {
			countsRaw = countsRaw[:4]
		}
		if len(countsRaw) == 0 {
			return true
		}
		eng, m := newMachine(seed)
		total := 0
		counts := make([]int, len(countsRaw))
		for i, c := range countsRaw {
			counts[i] = int(c%16) + 1
			total += counts[i]
		}
		bySrc := map[int][]int{}
		m.Spawn("recv", func(t *Task) {
			for i := 0; i < total; i++ {
				msg := t.Recv(Any, Any)
				bySrc[msg.Src] = append(bySrc[msg.Src], msg.Data.(int))
			}
		})
		for i, c := range counts {
			c := c
			m.Spawn("send", func(t *Task) {
				for j := 0; j < c; j++ {
					t.Compute(sim.Duration(t.Proc().Rng().Intn(2000)) * sim.Microsecond)
					t.Send(0, 1, 64, j)
				}
			})
			_ = i
		}
		if err := eng.Run(); err != nil {
			return false
		}
		got := 0
		for src, seq := range bySrc {
			got += len(seq)
			if len(seq) != counts[src-1] {
				return false
			}
			for j, v := range seq {
				if v != j {
					return false
				}
			}
		}
		return got == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSendWindowBackpressure(t *testing.T) {
	eng := sim.NewEngine(1)
	// Slow bus: 1 ms per kilobyte-scale frame.
	netCfg := netsim.Config{BandwidthBps: 8e6, PropDelay: 0, FrameOverhead: 0}
	net := netsim.New(eng, netCfg)
	cfg := DefaultConfig()
	cfg.SendOverhead = 0
	cfg.SendWindow = 2
	m := NewMachine(eng, net, cfg)
	var sendTimes []sim.Time
	var st *Task
	m.Spawn("sink", func(t *Task) {
		for i := 0; i < 6; i++ {
			t.Recv(Any, Any)
		}
	})
	m.Spawn("src", func(t *Task) {
		st = t
		for i := 0; i < 6; i++ {
			t.Send(0, 1, 1000, i) // 1 ms tx each
			sendTimes = append(sendTimes, t.Now())
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// First two sends fit in the window instantly; from the third on,
	// each must wait for a frame to clear the wire (~1 ms apart).
	if sendTimes[1] != sendTimes[0] {
		t.Fatalf("second send blocked too early: %v", sendTimes[:2])
	}
	if sendTimes[2] == sendTimes[1] {
		t.Fatalf("third send did not block on the window: %v", sendTimes)
	}
	gap := sendTimes[3].Sub(sendTimes[2])
	if gap < 900*sim.Microsecond || gap > 1100*sim.Microsecond {
		t.Fatalf("window pacing gap %v, want ~1 ms", gap)
	}
	if st.Stalls() == 0 {
		t.Fatal("no stalls recorded")
	}
}

func TestRecvCostScalesWithSize(t *testing.T) {
	eng, m := newMachine(1)
	var smallCost, bigCost sim.Duration
	m.Spawn("recv", func(t *Task) {
		for t.Pending() != 2 {
			t.Compute(sim.Millisecond)
		}
		start := t.Now()
		t.Recv(Any, 1) // small
		smallCost = t.Now().Sub(start)
		start = t.Now()
		t.Recv(Any, 2) // big
		bigCost = t.Now().Sub(start)
	})
	m.Spawn("send", func(t *Task) {
		t.Send(0, 1, 10, nil)
		t.Send(0, 2, 10000, nil)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if bigCost <= smallCost {
		t.Fatalf("large message receive (%v) not costlier than small (%v)", bigCost, smallCost)
	}
}
