package pvm

import (
	"fmt"
	"testing"

	"nscc/internal/netsim"
	"nscc/internal/sim"
)

// BenchmarkPingPong measures the full message hot path — send overhead,
// bus admission, delivery, blocking receive — for b.N round trips
// between two tasks. This is the per-message cost every experiment
// cell pays millions of times, so its allocs/op is the number the
// sweep-level speed rides on.
func BenchmarkPingPong(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine(1)
	net := netsim.New(eng, netsim.DefaultConfig())
	m := NewMachine(eng, net, DefaultConfig())
	m.Spawn("ping", func(t *Task) {
		for i := 0; i < b.N; i++ {
			t.Send(1, 1, 64, nil)
			t.Recv(1, 2)
		}
	})
	m.Spawn("pong", func(t *Task) {
		for i := 0; i < b.N; i++ {
			t.Recv(0, 1)
			t.Send(0, 2, 64, nil)
		}
	})
	b.ResetTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBcast measures the shared-medium broadcast path (one frame,
// many receivers). The 1000-task case is the gossip-round shape of a
// scaled cluster: its allocs/op must stay O(1) per broadcast — the old
// per-call destination slice made it O(n), i.e. O(n²) payload-slot
// churn per all-to-all round.
func BenchmarkBcast(b *testing.B) {
	for _, p := range []int{8, 1000} {
		b.Run(fmt.Sprintf("tasks=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			eng := sim.NewEngine(1)
			net := netsim.New(eng, netsim.DefaultConfig())
			m := NewMachine(eng, net, DefaultConfig())
			m.Spawn("root", func(t *Task) {
				for i := 0; i < b.N; i++ {
					t.Bcast(1, 64, nil)
					for j := 1; j < p; j++ {
						t.Recv(Any, 2)
					}
				}
			})
			for j := 1; j < p; j++ {
				m.Spawn("leaf", func(t *Task) {
					for i := 0; i < b.N; i++ {
						t.Recv(0, 1)
						t.Send(0, 2, 8, nil)
					}
				})
			}
			b.ResetTimer()
			if err := eng.Run(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
