package pvm

import (
	"testing"

	"nscc/internal/netsim"
	"nscc/internal/sim"
	"nscc/internal/trace"
)

// TestNilTracerZeroAllocs pins the tentpole's cost contract: with no
// tracer and no hooks installed, the per-message observability helpers
// must be a guarded branch — zero allocations per message.
func TestNilTracerZeroAllocs(t *testing.T) {
	eng := sim.NewEngine(1)
	net := netsim.New(eng, netsim.DefaultConfig())
	m := NewMachine(eng, net, DefaultConfig())
	task := &Task{m: m, id: 0}
	msg := &Message{Src: 0, Tag: 7, Size: 128, SentAt: 0, ArrivedAt: 1000}

	allocs := testing.AllocsPerRun(1000, func() {
		task.traceSend(msg)
		task.traceArrival(msg)
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer message path allocates %.1f/message, want 0", allocs)
	}
}

// TestTraceHelpersEmit checks the same helpers actually emit when a
// tracer is installed: one "send" instant and one "msg" span carrying
// the message's flight time.
func TestTraceHelpersEmit(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := trace.NewRecorder()
	eng.SetTracer(rec)
	net := netsim.New(eng, netsim.DefaultConfig())
	m := NewMachine(eng, net, DefaultConfig())
	task := &Task{m: m, id: 3}
	msg := &Message{Src: 1, Tag: 7, Size: 128, SentAt: 500, ArrivedAt: 2500}

	task.traceSend(msg)
	task.traceArrival(msg)

	evs := rec.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	send, span := evs[0], evs[1]
	if send.Ph != trace.PhaseInstant || send.Name != "send" || send.Tid != 3 || send.V2 != 128 {
		t.Fatalf("bad send event: %+v", send)
	}
	if span.Ph != trace.PhaseSpan || span.Name != "msg" || span.TS != 500 || span.Dur != 2000 {
		t.Fatalf("bad msg span: %+v", span)
	}
	if span.K1 != "src" || span.V1 != 1 {
		t.Fatalf("msg span should carry the source: %+v", span)
	}
}

// TestSendHookPairsWithArrivalHook exercises the symmetric hook pair on
// a real multicast: every message seen by ArrivalHook must previously
// have been seen, exactly once, by SendHook.
func TestSendHookPairsWithArrivalHook(t *testing.T) {
	eng := sim.NewEngine(1)
	net := netsim.New(eng, netsim.DefaultConfig())
	m := NewMachine(eng, net, DefaultConfig())

	sent := map[*Message]int{}
	arrived := 0
	m.SendHook = func(src int, msg *Message) {
		if msg.Src != src {
			t.Errorf("SendHook src %d != msg.Src %d", src, msg.Src)
		}
		sent[msg]++
	}
	m.ArrivalHook = func(dst int, msg *Message) {
		arrived++
		if sent[msg] != 1 {
			t.Errorf("arrival of message seen %d times by SendHook, want 1", sent[msg])
		}
	}

	m.Spawn("sender", func(task *Task) {
		task.Multicast([]int{1, 2}, 5, 64, "x", nil)
	})
	for i := 0; i < 2; i++ {
		m.Spawn("receiver", func(task *Task) {
			task.Recv(Any, 5)
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sent) != 1 {
		t.Fatalf("SendHook saw %d distinct messages, want 1 (multicast is one logical send)", len(sent))
	}
	if arrived != 2 {
		t.Fatalf("ArrivalHook fired %d times, want 2", arrived)
	}
}

// TestTaskStatsCounters checks the per-task byte and receive-CPU
// accounting across one send/receive exchange.
func TestTaskStatsCounters(t *testing.T) {
	eng := sim.NewEngine(1)
	net := netsim.New(eng, netsim.DefaultConfig())
	cfg := DefaultConfig()
	m := NewMachine(eng, net, cfg)

	var recvStats TaskStats
	m.Spawn("sender", func(task *Task) {
		task.Send(1, 5, 200, "payload")
	})
	m.Spawn("receiver", func(task *Task) {
		task.Recv(Any, 5)
		recvStats = task.Stats()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	sender := m.tasks[0].Stats()
	if sender.BytesSent != 200 || sender.Sent != 1 {
		t.Fatalf("sender stats: %+v", sender)
	}
	if recvStats.BytesRecv != 200 || recvStats.Received != 1 {
		t.Fatalf("receiver stats: %+v", recvStats)
	}
	wantCPU := cfg.RecvOverhead + 200*cfg.RecvPerByte
	if recvStats.RecvCPU != wantCPU {
		t.Fatalf("receiver charged %v of recv CPU, want %v", recvStats.RecvCPU, wantCPU)
	}
}
