package pvm

import (
	"nscc/internal/sim"
	"nscc/internal/trace"
)

// This file is the reliable-delivery sublayer: sequence-numbered
// envelopes, receiver acks, sender retransmission with exponential
// backoff in simulated time, duplicate suppression, and per-(src,dst)
// in-order release. It sits entirely between the fabric handler and
// the task queue, so the application-visible API (Send/Multicast/Recv)
// is unchanged; Config.Reliable switches it on.
//
// PVM's native transport was unreliable UDP between daemons — the
// paper's applications tolerate that because a lost update only ages a
// cached value. The reliable mode models the alternative the paper
// argues against paying for: a transport that guarantees delivery and
// order at the cost of acks, retransmission latency, and head-of-line
// blocking. Having both in the simulator lets the experiments price
// that trade under injected faults.

// ackSize is the wire size charged for an acknowledgement frame (a
// seq number plus minimal framing).
const ackSize = 16

// envelope wraps one application message with its per-destination
// sequence numbers. A multicast stays one frame on the shared medium:
// every receiver finds its own (src,dst)-stream sequence number under
// its task id. Retransmissions reuse the same envelope as unicasts.
type envelope struct {
	msg  *Message
	seqs map[int]int64 // dst task id -> seq on the (src,dst) stream
}

// ackFrame acknowledges receipt of sequence seq by task from.
type ackFrame struct {
	from int
	seq  int64
}

// pendKey identifies one unacknowledged (destination, sequence) pair.
type pendKey struct {
	dst int
	seq int64
}

// pendingTx is one destination's unacknowledged transmission and its
// retransmission state.
type pendingTx struct {
	env     *envelope
	dst     int
	seq     int64
	tries   int
	backoff sim.Duration
	timer   sim.EventHandle
}

// relState is a task's reliable-transport state, allocated only when
// the machine runs with Config.Reliable.
type relState struct {
	nextSeq map[int]int64              // sender: next seq per destination
	pending map[pendKey]*pendingTx     // sender: unacked transmissions
	rxNext  map[int]int64              // receiver: next expected seq per source
	rxOO    map[int]map[int64]*Message // receiver: out-of-order buffer per source

	retransmits int64
	abandoned   int64
	dups        int64
}

func (t *Task) rel() *relState {
	if t.relst == nil {
		t.relst = &relState{
			nextSeq: map[int]int64{},
			pending: map[pendKey]*pendingTx{},
			rxNext:  map[int]int64{},
			rxOO:    map[int]map[int64]*Message{},
		}
	}
	return t.relst
}

// wrapReliable assigns per-destination sequence numbers to msg and
// returns the envelope to put on the wire in place of the bare
// message. Called from the send path with dsts already validated.
func (t *Task) wrapReliable(dsts []int, msg *Message) *envelope {
	r := t.rel()
	env := &envelope{msg: msg, seqs: make(map[int]int64, len(dsts))}
	for _, dst := range dsts {
		seq := r.nextSeq[dst]
		r.nextSeq[dst] = seq + 1
		env.seqs[dst] = seq
	}
	return env
}

// armRetransmit registers the per-destination retransmission timers
// for an envelope just offered to the fabric. The first timer fires
// RetransmitTimeout after the send; each retry doubles the backoff.
func (t *Task) armRetransmit(dsts []int, env *envelope) {
	r := t.rel()
	for _, dst := range dsts {
		p := &pendingTx{env: env, dst: dst, seq: env.seqs[dst],
			backoff: t.m.cfg.RetransmitTimeout}
		r.pending[pendKey{p.dst, p.seq}] = p
		p.timer = t.m.eng.Schedule(t.m.eng.Now().Add(p.backoff),
			func() { t.retransmit(p) })
	}
}

// retransmit fires when a destination has not acknowledged in time:
// the envelope is re-offered to the fabric as a unicast (no task CPU
// charge and no send-window interaction — the model is the transport
// daemon retrying, not the application resending) and the timer is
// re-armed with doubled backoff, up to MaxRetries attempts.
func (t *Task) retransmit(p *pendingTx) {
	r := t.rel()
	k := pendKey{p.dst, p.seq}
	if _, ok := r.pending[k]; !ok {
		return // acked between timer fire and this call
	}
	if p.tries >= t.m.cfg.MaxRetries {
		r.abandoned++
		delete(r.pending, k)
		t.traceRel("retx_abandon", p.dst, p.seq)
		return
	}
	p.tries++
	p.backoff *= 2
	r.retransmits++
	t.m.serRetx.Add(t.m.eng.Now(), 1)
	t.traceRel("retx", p.dst, p.seq)
	t.m.net.Unicast(t.node, t.m.tasks[p.dst].node, p.env.msg.Size, p.env, nil)
	p.timer = t.m.eng.Schedule(t.m.eng.Now().Add(p.backoff),
		func() { t.retransmit(p) })
}

// reliableArrival is the fabric handler in reliable mode: it
// dispatches transport frames (acks and envelopes) and never delivers
// a payload to the application out of sequence.
func (t *Task) reliableArrival(payload interface{}) {
	switch f := payload.(type) {
	case *ackFrame:
		t.handleAck(f)
	case *envelope:
		t.handleEnvelope(f)
	}
}

// handleAck clears the (dst,seq) pending entry and cancels its timer.
func (t *Task) handleAck(f *ackFrame) {
	r := t.rel()
	k := pendKey{f.from, f.seq}
	if p, ok := r.pending[k]; ok {
		p.timer.Cancel()
		delete(r.pending, k)
	}
}

// handleEnvelope acknowledges, suppresses duplicates, and releases
// messages to the task queue in per-source sequence order.
func (t *Task) handleEnvelope(env *envelope) {
	seq, ok := env.seqs[t.id]
	if !ok {
		return // stray retransmit of a frame not addressed to this task
	}
	src := env.msg.Src
	// Ack unconditionally — for a duplicate, the previous ack may have
	// been the frame the network lost.
	t.m.net.Send(t.node, t.m.tasks[src].node, ackSize, &ackFrame{from: t.id, seq: seq})
	r := t.rel()
	if seq < r.rxNext[src] {
		r.dups++
		t.traceRel("dup_suppressed", src, seq)
		return
	}
	if _, buffered := t.srcOO(src)[seq]; buffered {
		r.dups++
		t.traceRel("dup_suppressed", src, seq)
		return
	}
	if seq != r.rxNext[src] {
		t.srcOO(src)[seq] = env.msg
		return
	}
	r.rxNext[src] = seq + 1
	t.deliverReliable(env.msg)
	oo := t.srcOO(src)
	for {
		m, ok := oo[r.rxNext[src]]
		if !ok {
			break
		}
		delete(oo, r.rxNext[src])
		r.rxNext[src]++
		t.deliverReliable(m)
	}
}

func (t *Task) srcOO(src int) map[int64]*Message {
	r := t.rel()
	if r.rxOO[src] == nil {
		r.rxOO[src] = map[int64]*Message{}
	}
	return r.rxOO[src]
}

// deliverReliable releases one message to the application. The
// Message is copied first: the original is shared by every multicast
// receiver and by retransmissions, which arrive at different times.
// With pooling on, the copy is a pooled object owned by this one
// receiver (the unpooled original stays with the transport).
func (t *Task) deliverReliable(orig *Message) {
	var msg *Message
	if t.m.cfg.Pooling {
		msg = t.m.getMsg()
	} else {
		msg = new(Message)
	}
	*msg = *orig
	if t.m.cfg.Pooling {
		msg.refs = 1
	}
	msg.ArrivedAt = t.m.eng.Now()
	if t.m.ArrivalHook != nil {
		t.m.ArrivalHook(t.id, msg)
	}
	t.traceArrival(msg)
	t.queue = append(t.queue, msg)
	t.m.noteQueue(1)
	t.wl.WakeAll()
}

// traceRel emits one reliable-transport instant (nil-tracer safe).
func (t *Task) traceRel(name string, peer int, seq int64) {
	if tr := t.m.eng.Tracer(); tr != nil {
		tr.Emit(trace.Event{TS: int64(t.m.eng.Now()), Ph: trace.PhaseInstant,
			Pid: trace.PidPVM, Tid: t.id, Cat: "pvm", Name: name,
			K1: "peer", V1: int64(peer), K2: "seq", V2: seq})
	}
}

// RecvTimeout is Recv with a deadline: it blocks until a message
// matching (src, tag) is available — returning and charging it like
// Recv — or until d of virtual time has passed, returning nil. A
// non-positive d polls like NRecv.
func (t *Task) RecvTimeout(src, tag int, d sim.Duration) *Message {
	deadline := t.m.eng.Now().Add(d)
	for {
		if msg := t.take(src, tag); msg != nil {
			t.charge(msg)
			return msg
		}
		if !t.wl.WaitTimeout(t.proc, deadline) {
			// Timed out; a message may still have landed in the same
			// instant the timer fired, so take one last look.
			if msg := t.take(src, tag); msg != nil {
				t.charge(msg)
				return msg
			}
			return nil
		}
	}
}
