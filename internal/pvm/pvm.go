// Package pvm provides the message-passing layer of the reproduction: a
// PVM-3-flavoured library (task spawn, tagged typed messages, blocking
// and non-blocking receive with wildcard matching, broadcast) running on
// the simulated cluster. The paper ran its shared-memory veneer and the
// Global_Read macros directly above PVM on the IBM SP2 (§4.1); package
// core does the same above this package.
package pvm

import (
	"fmt"

	"nscc/internal/metrics"
	"nscc/internal/netsim"
	"nscc/internal/sim"
	"nscc/internal/trace"
	"nscc/internal/tseries"
)

// Any is the wildcard value for Recv/NRecv source and tag matching,
// mirroring PVM's -1.
const Any = -1

// Message is a delivered message as seen by a receiving task.
type Message struct {
	Src       int         // sending task id
	Tag       int         // message tag
	Data      interface{} // payload (shared by reference: senders must not mutate)
	Size      int         // payload size in bytes, as charged to the network
	SentAt    sim.Time    // virtual time the send was issued
	ArrivedAt sim.Time    // virtual time the frame left the network

	// Aux carries an opaque per-message annotation attached by a
	// SendHook observer (the simrace checker stamps its vector clock
	// here). Reliable-mode delivery copies share it; the message layer
	// itself never touches it.
	Aux interface{}

	// refs counts receivers that have not yet finished with a pooled
	// message (Config.Pooling). Zero marks an unpooled message that is
	// never recycled. Each receiver's share is released when that task
	// performs its *next* dequeue — see the ownership rule on
	// Config.Pooling.
	refs int
}

// Config carries the software overheads of the messaging layer. These
// model the user-space packing/unpacking and protocol costs that, on the
// paper's platform, made Ethernet message latency "poorer than in
// high-speed parallel computer interconnection networks".
type Config struct {
	SendOverhead sim.Duration // CPU time charged to the sender per message
	RecvOverhead sim.Duration // fixed CPU time charged to the receiver per dequeued message
	// RecvPerByte is the size-proportional unpacking cost (copy +
	// byte-order conversion, pvm_upk*). On a flooded network this is
	// what makes uncontrolled senders hurt everyone: every delivered
	// copy costs its receiver real CPU time, so a flood steals the
	// computation it was supposed to overlap.
	RecvPerByte sim.Duration
	// SendWindow bounds each task's frames in flight (queued or on the
	// wire): a sender at the window blocks until the bus drains one.
	// The default is 0 — unlimited — matching PVM semantics: pvm_send
	// returns as soon as the message is buffered, and daemon buffers
	// grow without bound, which is exactly how an uncontrolled
	// asynchronous program floods the network (§1). A finite window
	// models a transport with flow control (TCP-style backpressure) and
	// is used by the ablation benchmarks: it is a *transport-level*
	// remedy to compare against the paper's *program-level* Global_Read
	// control.
	SendWindow int
	// Reliable turns on sequence-numbered delivery: every message
	// carries a per-(src,dst) sequence number, receivers acknowledge
	// and release messages in order (suppressing duplicates), and
	// senders retransmit unacknowledged messages with exponential
	// backoff in simulated time. Off by default — plain PVM over UDP
	// could lose, reorder and duplicate, and the paper's applications
	// are built to tolerate exactly that.
	Reliable bool
	// RetransmitTimeout is the reliable mode's initial ack deadline;
	// each retry doubles it. Zero selects a default calibrated to the
	// Ethernet's latency scale (20 ms).
	RetransmitTimeout sim.Duration
	// MaxRetries bounds retransmissions per (message, destination);
	// after that the transport abandons the copy and counts it. Zero
	// selects the default (12, spanning ~80 virtual seconds of
	// backoff — far beyond any injected fault window).
	MaxRetries int
	// Pooling recycles Message objects through a per-machine free list,
	// making the steady-state send/receive path allocation-free. It
	// tightens the ownership rule: a received *Message (and its Data)
	// is valid only until the receiving task's next
	// Recv/NRecv/RecvTimeout — receivers must copy out what they keep.
	// All in-repo runners obey this rule already. Off by default, and
	// it MUST stay off when a fault injector wraps the fabric: fault
	// duplication re-delivers the same payload pointer, which would
	// double-release a pooled message.
	Pooling bool
}

// DefaultConfig returns PVM-over-Ethernet-scale software overheads.
func DefaultConfig() Config {
	return Config{
		SendOverhead: 400 * sim.Microsecond,
		RecvOverhead: 200 * sim.Microsecond,
		RecvPerByte:  400 * sim.Nanosecond,
	}
}

// Machine is a set of communicating tasks on one simulated
// interconnect (the shared-Ethernet bus or the crossbar switch).
type Machine struct {
	eng   *sim.Engine
	net   netsim.Fabric
	cfg   Config
	tasks []*Task

	// ArrivalHook, if set, observes every message at network arrival
	// (before the receiving task dequeues it). The warp meter plugs in
	// here, matching the paper's "measurements of warp were done above
	// PVM, for all the messages".
	ArrivalHook func(dst int, m *Message)

	// SendHook, if set, observes every message as the sender issues it —
	// the symmetric partner of ArrivalHook. A multicast fires the hook
	// once (one logical message); each delivery then fires ArrivalHook,
	// so every arrival's *Message was previously seen by SendHook.
	SendHook func(src int, m *Message)

	// RecvHook, if set, observes every message as the receiving task
	// dequeues it (inside Recv/NRecv/RecvTimeout, before the unpacking
	// charge). This is the point where the payload becomes visible to
	// the application, so it is where happens-before knowledge actually
	// transfers — the simrace checker joins vector clocks here.
	RecvHook func(dst int, m *Message)

	// Windowed series resolved by SetSeries (nil when off).
	queuedTotal int64
	serQueue    *tseries.Series
	serRetx     *tseries.Series
	serBytes    *tseries.Series

	// msgFree is the Message free list (Config.Pooling). Per-machine,
	// not package-global: sweeps run independent machines on parallel
	// goroutines, and a shared pool would race.
	msgFree []*Message
}

// Pooling reports whether the machine recycles Message objects (see
// Config.Pooling). Layers above that keep their own pools — the DSM
// node's update records, for instance — key off this so one switch
// governs the whole stack's ownership rules.
func (m *Machine) Pooling() bool { return m.cfg.Pooling }

// getMsg takes a Message from the free list or allocates one.
func (m *Machine) getMsg() *Message {
	if n := len(m.msgFree); n > 0 {
		msg := m.msgFree[n-1]
		m.msgFree[n-1] = nil
		m.msgFree = m.msgFree[:n-1]
		return msg
	}
	return &Message{}
}

// releaseMsg returns one receiver's share of a pooled message. The
// object is cleared and recycled when the last receiver releases it;
// unpooled messages (refs == 0) pass through untouched. A pooled
// message one of whose deliveries was lost never reaches zero and is
// simply collected by the GC — the pool leaks an object rather than
// ever recycling early.
func (m *Machine) releaseMsg(msg *Message) {
	if msg.refs <= 0 {
		return
	}
	msg.refs--
	if msg.refs == 0 {
		*msg = Message{}
		m.msgFree = append(m.msgFree, msg)
	}
}

// SetSeries wires the machine's windowed simulated-time series into
// set: gauge "pvm.queue_depth" (machine-wide undequeued messages,
// sampled at every enqueue and dequeue), counter "pvm.retransmits"
// (reliable-transport resends per window), and counter
// "pvm.bytes_sent" (payload bytes offered to the network per window).
// Strictly observational. Call before Spawn; a nil set is a no-op.
func (m *Machine) SetSeries(set *tseries.Set) {
	m.serQueue = set.Gauge("pvm.queue_depth")
	m.serRetx = set.Counter("pvm.retransmits")
	m.serBytes = set.Counter("pvm.bytes_sent")
}

// noteQueue tracks the machine-wide queued-message level. delta is +1
// at enqueue, -1 at dequeue.
func (m *Machine) noteQueue(delta int64) {
	if m.serQueue == nil {
		return
	}
	m.queuedTotal += delta
	m.serQueue.Add(m.eng.Now(), float64(m.queuedTotal))
}

// Tracer returns the tracer of the machine's engine (nil when tracing
// is off). The engine owns the run's tracer; this accessor is the
// message layer's guarded hot-path handle to it.
func (m *Machine) Tracer() trace.Tracer { return m.eng.Tracer() }

// NewMachine creates a machine on the given engine and fabric.
func NewMachine(eng *sim.Engine, net netsim.Fabric, cfg Config) *Machine {
	if cfg.Reliable {
		if cfg.RetransmitTimeout <= 0 {
			cfg.RetransmitTimeout = 20 * sim.Millisecond
		}
		if cfg.MaxRetries <= 0 {
			cfg.MaxRetries = 12
		}
	}
	return &Machine{eng: eng, net: net, cfg: cfg}
}

// Engine returns the underlying simulation engine.
func (m *Machine) Engine() *sim.Engine { return m.eng }

// Network returns the underlying fabric.
func (m *Machine) Network() netsim.Fabric { return m.net }

// Tasks reports the number of spawned tasks.
func (m *Machine) Tasks() int { return len(m.tasks) }

// Task is a simulated PVM task: one process on one cluster node with a
// private message queue.
type Task struct {
	m    *Machine
	id   int // task id == index in m.tasks
	node int // netsim node id
	proc *sim.Proc

	queue []*Message
	wl    sim.WaitList

	inflight int          // frames sent but not yet clear of the bus
	sendWL   sim.WaitList // senders blocked on the send window

	// lastRecv is the pooled message handed to the application by the
	// previous dequeue; its share is released when the next dequeue
	// begins (the Config.Pooling ownership rule made operational).
	lastRecv *Message

	// wireDone is the preallocated window-release callback for sends
	// with no caller onWire — the dominant case, which would otherwise
	// allocate a closure per send.
	wireDone func()

	// dst1 and nodeBuf are reusable scratch for the send path: the
	// single-destination slice and the task-id→node-id translation.
	// Safe because a task is one process — it cannot be inside two
	// sends at once — and the fabric does not retain either slice.
	dst1     [1]int
	nodeBuf  []int
	bcastBuf []int

	sent, received int64
	stalls         int64 // sends that had to wait for the window

	bytesSent int64        // payload bytes charged to the network (once per frame)
	bytesRecv int64        // payload bytes of messages the task dequeued
	recvCPU   sim.Duration // receive-overhead CPU charged for unpacking

	relst *relState // reliable-transport state (nil unless Config.Reliable)
}

// TaskStats is a snapshot of one task's message-layer accounting.
// BytesSent counts each multicast frame's payload once (the shared
// medium carries it once however many receivers there are); BytesRecv
// and RecvCPU accrue as the application dequeues messages. The last
// three counters are zero unless the machine runs with
// Config.Reliable.
type TaskStats struct {
	Sent, Received       int64
	BytesSent, BytesRecv int64
	RecvCPU              sim.Duration
	Stalls               int64
	Retransmits          int64 // copies the reliable transport resent
	DupsSuppressed       int64 // arrivals discarded as duplicates
	RetxAbandoned        int64 // copies given up on after MaxRetries
}

// Stats returns a snapshot of the task's counters.
func (t *Task) Stats() TaskStats {
	s := TaskStats{
		Sent: t.sent, Received: t.received,
		BytesSent: t.bytesSent, BytesRecv: t.bytesRecv,
		RecvCPU: t.recvCPU, Stalls: t.stalls,
	}
	if t.relst != nil {
		s.Retransmits = t.relst.retransmits
		s.DupsSuppressed = t.relst.dups
		s.RetxAbandoned = t.relst.abandoned
	}
	return s
}

// TaskTelemetry returns the message-layer half of every task's
// telemetry (the coherence layer merges its own counters on top).
func (m *Machine) TaskTelemetry() []metrics.TaskTelemetry {
	out := make([]metrics.TaskTelemetry, len(m.tasks))
	for i, t := range m.tasks {
		out[i] = metrics.TaskTelemetry{
			Task: t.id, Name: t.proc.Name(),
			MsgsSent: t.sent, MsgsRecv: t.received,
			BytesSent: t.bytesSent, BytesRecv: t.bytesRecv,
			RecvCPUSecs: t.recvCPU.Seconds(),
			SendStalls:  t.stalls,
		}
		if t.relst != nil {
			out[i].Retransmits = t.relst.retransmits
			out[i].DupsSuppressed = t.relst.dups
			out[i].RetxAbandoned = t.relst.abandoned
		}
	}
	return out
}

// Spawn creates a task running fn on a fresh cluster node. Task ids are
// assigned densely from zero in spawn order.
func (m *Machine) Spawn(name string, fn func(*Task)) *Task {
	// The queue is pre-sized for the common few-messages-in-flight case
	// so steady-state enqueue/dequeue does not grow the backing array.
	t := &Task{m: m, id: len(m.tasks), queue: make([]*Message, 0, 16)}
	t.wireDone = func() {
		t.inflight--
		t.sendWL.WakeOne()
	}
	m.tasks = append(m.tasks, t)
	if m.cfg.Reliable {
		t.node = m.net.Attach(name, func(src int, payload interface{}, sentAt sim.Time) {
			t.reliableArrival(payload)
		})
	} else {
		t.node = m.net.Attach(name, func(src int, payload interface{}, sentAt sim.Time) {
			msg := payload.(*Message)
			msg.ArrivedAt = m.eng.Now()
			if m.ArrivalHook != nil {
				m.ArrivalHook(t.id, msg)
			}
			t.traceArrival(msg)
			t.queue = append(t.queue, msg)
			m.noteQueue(1)
			t.wl.WakeAll()
		})
	}
	t.proc = m.eng.Spawn(name, func(p *sim.Proc) { fn(t) })
	return t
}

// ID returns the task id.
func (t *Task) ID() int { return t.id }

// Pooling reports whether the task's machine recycles messages (see
// Config.Pooling) — the switch the coherence layer keys its own
// payload pooling off.
func (t *Task) Pooling() bool { return t.m.cfg.Pooling }

// Proc returns the task's simulation process (for Sleep, Rng, Now).
func (t *Task) Proc() *sim.Proc { return t.proc }

// Now returns the current virtual time.
func (t *Task) Now() sim.Time { return t.m.eng.Now() }

// Compute charges d of CPU time to the task (advances its local clock).
func (t *Task) Compute(d sim.Duration) { t.proc.Sleep(d) }

// Send transmits data of the given payload size to task dst with tag.
// The sender is charged the configured software overhead; transmission
// and queuing happen asynchronously on the shared bus.
func (t *Task) Send(dst, tag int, size int, data interface{}) {
	t.SendWithCallback(dst, tag, size, data, nil)
}

// SendWithCallback is Send with an onWire callback fired when the frame
// finishes transmission on the shared medium; DSM nodes use it to bound
// their in-flight updates.
func (t *Task) SendWithCallback(dst, tag int, size int, data interface{}, onWire func()) {
	t.dst1[0] = dst
	t.Multicast(t.dst1[:], tag, size, data, onWire)
}

// Multicast delivers one frame to every task in dsts — PVM's pvm_mcast
// over a shared Ethernet: the datagram occupies the medium once however
// many receivers there are. The sender is charged one send overhead and
// blocks while its send window is full (transport backpressure).
// Single-destination sends take the fabric's Unicast path, which skips
// the destination-slice allocation — the dominant case for the
// pipelined inference workloads.
func (t *Task) Multicast(dsts []int, tag int, size int, data interface{}, onWire func()) {
	for _, dst := range dsts {
		if dst < 0 || dst >= len(t.m.tasks) {
			panic(fmt.Sprintf("pvm: send to unknown task %d", dst))
		}
	}
	t.proc.Sleep(t.m.cfg.SendOverhead)
	if w := t.m.cfg.SendWindow; w > 0 && t.inflight >= w {
		t.stalls++
		for t.inflight >= w {
			t.sendWL.Wait(t.proc)
		}
	}
	t.inflight++
	var msg *Message
	if t.m.cfg.Pooling && !t.m.cfg.Reliable {
		// Reliable-mode originals are retained by the retransmission
		// machinery indefinitely, so only the per-delivery copies are
		// pooled (see deliverReliable).
		msg = t.m.getMsg()
		msg.refs = len(dsts)
	} else {
		msg = &Message{}
	}
	msg.Src, msg.Tag, msg.Data, msg.Size, msg.SentAt = t.id, tag, data, size, t.m.eng.Now()
	t.bytesSent += int64(size)
	t.m.serBytes.Add(msg.SentAt, float64(size))
	t.traceSend(msg)
	wireDone := t.wireDone
	if onWire != nil {
		wireDone = func() {
			t.inflight--
			t.sendWL.WakeOne()
			onWire()
		}
	}
	var payload interface{} = msg
	var env *envelope
	if t.m.cfg.Reliable {
		env = t.wrapReliable(dsts, msg)
		payload = env
	}
	if len(dsts) == 1 {
		t.m.net.Unicast(t.node, t.m.tasks[dsts[0]].node, size, payload, wireDone)
	} else {
		nodes := t.nodeBuf[:0]
		for _, dst := range dsts {
			nodes = append(nodes, t.m.tasks[dst].node)
		}
		t.nodeBuf = nodes
		t.m.net.Multicast(t.node, nodes, size, payload, wireDone)
	}
	if env != nil {
		t.armRetransmit(dsts, env)
	}
	t.sent++
}

// Bcast multicasts to every other task. The destination list lives in
// the task's reusable scratch: Multicast (and everything below it, down
// to the fabric frame) copies what it retains, so at 1000 tasks a
// gossip round costs one buffer, not O(n) fresh slices per task.
func (t *Task) Bcast(tag int, size int, data interface{}) {
	dsts := t.bcastBuf[:0]
	for _, other := range t.m.tasks {
		if other.id != t.id {
			dsts = append(dsts, other.id)
		}
	}
	t.bcastBuf = dsts
	if len(dsts) > 0 {
		t.Multicast(dsts, tag, size, data, nil)
	}
}

// match reports whether msg matches a (src, tag) pattern with Any
// wildcards.
func match(msg *Message, src, tag int) bool {
	return (src == Any || msg.Src == src) && (tag == Any || msg.Tag == tag)
}

// take removes and returns the first queued message matching (src, tag),
// or nil.
func (t *Task) take(src, tag int) *Message {
	for i, msg := range t.queue {
		if match(msg, src, tag) {
			copy(t.queue[i:], t.queue[i+1:])
			t.queue[len(t.queue)-1] = nil
			t.queue = t.queue[:len(t.queue)-1]
			t.m.noteQueue(-1)
			return msg
		}
	}
	return nil
}

// recvCost is the CPU cost of dequeuing and unpacking msg.
func (t *Task) recvCost(msg *Message) sim.Duration {
	return t.m.cfg.RecvOverhead + sim.Duration(msg.Size)*t.m.cfg.RecvPerByte
}

// charge accounts a dequeued message to the task: the unpacking CPU
// time (advancing the task's clock) and the receive-side counters. It
// is also the pool's release point: dequeuing a message ends the
// application's ownership of the previous one (Config.Pooling).
func (t *Task) charge(msg *Message) {
	if prev := t.lastRecv; prev != nil {
		t.lastRecv = nil
		t.m.releaseMsg(prev)
	}
	if msg.refs > 0 {
		t.lastRecv = msg
	}
	if t.m.RecvHook != nil {
		t.m.RecvHook(t.id, msg)
	}
	cost := t.recvCost(msg)
	t.proc.Sleep(cost)
	t.received++
	t.bytesRecv += int64(msg.Size)
	t.recvCPU += cost
}

// Recv blocks until a message matching (src, tag) is available and
// returns it, charging the receive overhead. Use Any for wildcards.
func (t *Task) Recv(src, tag int) *Message {
	for {
		if msg := t.take(src, tag); msg != nil {
			t.charge(msg)
			return msg
		}
		t.wl.Wait(t.proc)
	}
}

// NRecv returns a matching message if one is already queued, else nil.
// It never blocks; a successful receive still costs the overhead.
func (t *Task) NRecv(src, tag int) *Message {
	msg := t.take(src, tag)
	if msg != nil {
		t.charge(msg)
	}
	return msg
}

// Probe reports whether a message matching (src, tag) is queued, without
// removing it.
func (t *Task) Probe(src, tag int) bool {
	for _, msg := range t.queue {
		if match(msg, src, tag) {
			return true
		}
	}
	return false
}

// Pending reports the number of queued (undelivered-to-app) messages.
func (t *Task) Pending() int { return len(t.queue) }

// Sent and Received report message counters for the task.
func (t *Task) Sent() int64     { return t.sent }
func (t *Task) Received() int64 { return t.received }

// Stalls reports how many sends blocked on the send window
// (backpressure events).
func (t *Task) Stalls() int64 { return t.stalls }

// Tracer returns the run's tracer (nil when tracing is off).
func (t *Task) Tracer() trace.Tracer { return t.m.eng.Tracer() }

// traceSend records the send side of a message: the SendHook and a
// "send" instant. With no hook and no tracer it costs two predictable
// branches and allocates nothing — the guarantee the nil-tracer
// benchmark pins down.
func (t *Task) traceSend(msg *Message) {
	if t.m.SendHook != nil {
		t.m.SendHook(t.id, msg)
	}
	if tr := t.m.eng.Tracer(); tr != nil {
		tr.Emit(trace.Event{TS: int64(msg.SentAt), Ph: trace.PhaseInstant,
			Pid: trace.PidPVM, Tid: t.id, Cat: "pvm", Name: "send",
			K1: "tag", V1: int64(msg.Tag), K2: "size", V2: int64(msg.Size)})
	}
}

// traceArrival records the receive side: an 'X' span covering the
// message's flight from send to network arrival, on the receiving
// task's track.
func (t *Task) traceArrival(msg *Message) {
	if tr := t.m.eng.Tracer(); tr != nil {
		tr.Emit(trace.Event{TS: int64(msg.SentAt), Dur: int64(msg.ArrivedAt.Sub(msg.SentAt)),
			Ph: trace.PhaseSpan, Pid: trace.PidPVM, Tid: t.id, Cat: "pvm", Name: "msg",
			K1: "src", V1: int64(msg.Src), K2: "size", V2: int64(msg.Size)})
	}
}
