package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// ladder builds a 2xN ladder graph: two paths with rungs. Its optimal
// bisection cuts exactly 2 edges (one rail each) or 1 rung... the clean
// property we test is that KL beats a random split decisively.
func ladder(n int) *Graph {
	g := NewGraph(2 * n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(i, i+1)
		g.AddEdge(n+i, n+i+1)
	}
	for i := 0; i < n; i++ {
		g.AddEdge(i, n+i)
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 2) // self-loop dropped
	if g.N() != 4 || g.Edges() != 2 {
		t.Fatalf("N=%d Edges=%d", g.N(), g.Edges())
	}
	if len(g.Neighbors(1)) != 2 {
		t.Fatalf("neighbors of 1: %v", g.Neighbors(1))
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	g := NewGraph(2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range edge did not panic")
		}
	}()
	g.AddEdge(0, 5)
}

func TestEdgeCut(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(1, 2)
	if cut := EdgeCut(g, []int{0, 0, 1, 1}); cut != 1 {
		t.Fatalf("cut = %d, want 1", cut)
	}
	if cut := EdgeCut(g, []int{0, 1, 0, 1}); cut != 3 {
		t.Fatalf("cut = %d, want 3", cut)
	}
}

func TestBisectBalanced(t *testing.T) {
	g := ladder(10)
	parts := Bisect(g, rand.New(rand.NewSource(1)))
	s := Sizes(parts, 2)
	if s[0] != 10 || s[1] != 10 {
		t.Fatalf("unbalanced bisection: %v", s)
	}
}

func TestBisectFindsGoodCut(t *testing.T) {
	// Two 10-cliques joined by a single bridge: optimal cut is 1.
	g := NewGraph(20)
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			g.AddEdge(a, b)
			g.AddEdge(10+a, 10+b)
		}
	}
	g.AddEdge(0, 10)
	parts := Bisect(g, rand.New(rand.NewSource(2)))
	if cut := EdgeCut(g, parts); cut != 1 {
		t.Fatalf("cut = %d, want 1 (two cliques + bridge)", cut)
	}
}

func TestBisectBeatsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewGraph(54)
	// Random graph at Table 2 density (~2.2 edges/node).
	for e := 0; e < 119; e++ {
		u, v := rng.Intn(54), rng.Intn(54)
		for u == v {
			v = rng.Intn(54)
		}
		g.AddEdge(u, v)
	}
	parts := Bisect(g, rng)
	klCut := EdgeCut(g, parts)
	randCut := 0
	random := make([]int, 54)
	for i := range random {
		random[i] = i % 2
	}
	randCut = EdgeCut(g, random)
	if klCut >= randCut {
		t.Fatalf("KL cut %d is no better than alternating split %d", klCut, randCut)
	}
	// Table 2's randomly generated 54-node nets have 2-way cuts of
	// 24-30; our partitioner should be in that ballpark or better.
	if klCut > 40 {
		t.Fatalf("KL cut %d is far above Table 2 scale", klCut)
	}
}

func TestBisectDisconnected(t *testing.T) {
	g := NewGraph(6) // no edges at all
	parts := Bisect(g, rand.New(rand.NewSource(4)))
	s := Sizes(parts, 2)
	if s[0] != 3 || s[1] != 3 {
		t.Fatalf("disconnected graph split %v", s)
	}
}

func TestBisectEmptyGraph(t *testing.T) {
	if parts := Bisect(NewGraph(0), rand.New(rand.NewSource(1))); parts != nil {
		t.Fatalf("empty graph should give nil, got %v", parts)
	}
}

func TestKWay(t *testing.T) {
	g := ladder(8)
	parts := KWay(g, 4, rand.New(rand.NewSource(5)))
	s := Sizes(parts, 4)
	for p, c := range s {
		if c != 4 {
			t.Fatalf("part %d has %d nodes: %v", p, c, s)
		}
	}
	if KWay(g, 1, rand.New(rand.NewSource(1)))[3] != 0 {
		t.Fatal("k=1 must put everything in part 0")
	}
}

func TestKWayInvalidK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k=0 did not panic")
		}
	}()
	KWay(NewGraph(3), 0, rand.New(rand.NewSource(1)))
}

func TestTopoPrefixSplit(t *testing.T) {
	parts := TopoPrefixSplit(10, 2, func(int) int { return 1 })
	want := []int{0, 0, 0, 0, 0, 1, 1, 1, 1, 1}
	for i := range want {
		if parts[i] != want[i] {
			t.Fatalf("parts = %v", parts)
		}
	}
	// Weighted: node 0 is heavy; the first block should be just node 0.
	parts = TopoPrefixSplit(5, 2, func(i int) int {
		if i == 0 {
			return 10
		}
		return 1
	})
	if parts[0] != 0 || parts[1] != 1 {
		t.Fatalf("weighted split = %v", parts)
	}
}

func TestTopoPrefixSplitMonotone(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw%8) + 1
		parts := TopoPrefixSplit(n, k, func(int) int { return 1 })
		prev := 0
		for _, p := range parts {
			if p < prev || p >= k {
				return false
			}
			prev = p
		}
		// Balance within ceil(n/k).
		s := Sizes(parts, k)
		max := 0
		for _, c := range s {
			if c > max {
				max = c
			}
		}
		return max <= (n+k-1)/k+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: bisection always balances within one node and never
// produces an invalid label, on random graphs.
func TestBisectProperty(t *testing.T) {
	f := func(seed int64, nRaw, eRaw uint8) bool {
		n := int(nRaw%40) + 2
		e := int(eRaw % 120)
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph(n)
		for i := 0; i < e; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			g.AddEdge(u, v)
		}
		parts := Bisect(g, rng)
		s := Sizes(parts, 2)
		if s[0]+s[1] != n {
			return false
		}
		diff := s[0] - s[1]
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
