// Package partition is the repository's stand-in for METIS [11]: the
// paper partitions its belief networks with a graph partitioner and
// reports the resulting edge-cut (Table 2). We implement balanced
// bisection by greedy region growth refined with Kernighan–Lin passes,
// and k-way partitioning by recursive bisection. Only the edge-cut of
// the produced partition matters to the experiments, and KL reaches
// Table 2-scale cuts on Table 2-scale graphs.
package partition

import (
	"fmt"
	"math/rand"
)

// Graph is a simple undirected graph on nodes 0..N-1.
type Graph struct {
	n   int
	adj [][]int
}

// NewGraph creates an empty graph with n nodes.
func NewGraph(n int) *Graph {
	return &Graph{n: n, adj: make([][]int, n)}
}

// N returns the node count.
func (g *Graph) N() int { return g.n }

// AddEdge inserts an undirected edge. Self-loops are ignored; parallel
// edges are kept (they weight the cut, as multiple belief-net
// dependencies between the same pair would).
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	if u < 0 || v < 0 || u >= g.n || v >= g.n {
		panic(fmt.Sprintf("partition: edge (%d,%d) out of range", u, v))
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

// Neighbors returns u's adjacency list (shared slice; do not modify).
func (g *Graph) Neighbors(u int) []int { return g.adj[u] }

// Edges returns the number of undirected edges.
func (g *Graph) Edges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// EdgeCut counts edges whose endpoints lie in different parts.
func EdgeCut(g *Graph, parts []int) int {
	if len(parts) != g.n {
		panic("partition: parts length mismatch")
	}
	cut := 0
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v && parts[u] != parts[v] {
				cut++
			}
		}
	}
	return cut
}

// Sizes returns the node count of each part (parts labeled 0..k-1).
func Sizes(parts []int, k int) []int {
	s := make([]int, k)
	for _, p := range parts {
		s[p]++
	}
	return s
}

// Bisect splits the graph into two parts whose sizes differ by at most
// one, minimizing edge-cut heuristically: a BFS region is grown from a
// random seed to half the nodes, then Kernighan–Lin refinement swaps
// node pairs while any pass improves the cut.
func Bisect(g *Graph, rng *rand.Rand) []int {
	if g.n == 0 {
		return nil
	}
	best := growBisection(g, rng.Intn(g.n))
	bestCut := EdgeCut(g, best)
	// A few random restarts: KL is local, seeds matter on small graphs.
	for trial := 0; trial < 4; trial++ {
		parts := growBisection(g, rng.Intn(g.n))
		klRefine(g, parts)
		if c := EdgeCut(g, parts); c < bestCut {
			best, bestCut = parts, c
		}
	}
	klRefine(g, best)
	return best
}

// growBisection builds a balanced 0/1 assignment by BFS from seed.
func growBisection(g *Graph, seed int) []int {
	parts := make([]int, g.n)
	for i := range parts {
		parts[i] = 1
	}
	target := g.n / 2
	taken := 0
	visited := make([]bool, g.n)
	queue := []int{seed}
	visited[seed] = true
	for taken < target {
		if len(queue) == 0 {
			// Disconnected: pick the next unvisited node.
			for i := 0; i < g.n; i++ {
				if !visited[i] {
					queue = append(queue, i)
					visited[i] = true
					break
				}
			}
			if len(queue) == 0 {
				break
			}
		}
		u := queue[0]
		queue = queue[1:]
		parts[u] = 0
		taken++
		for _, v := range g.adj[u] {
			if !visited[v] {
				visited[v] = true
				queue = append(queue, v)
			}
		}
	}
	return parts
}

// gain is KL's D-value: external minus internal degree of u under parts.
func gain(g *Graph, parts []int, u int) int {
	d := 0
	for _, v := range g.adj[u] {
		if parts[v] != parts[u] {
			d++
		} else {
			d--
		}
	}
	return d
}

// klRefine runs Kernighan–Lin passes in place until a pass yields no
// improvement. Balance is preserved exactly (only pair swaps).
func klRefine(g *Graph, parts []int) {
	for pass := 0; pass < 20; pass++ {
		if klPass(g, parts) <= 0 {
			return
		}
	}
}

// klPass performs one KL pass, applying the best prefix of swaps, and
// returns the cut reduction achieved.
func klPass(g *Graph, parts []int) int {
	n := g.n
	locked := make([]bool, n)
	type swap struct{ a, b, gain int }
	var seq []swap
	work := make([]int, n)
	copy(work, parts)

	for {
		bestA, bestB, bestGain := -1, -1, 0
		first := true
		for a := 0; a < n; a++ {
			if locked[a] || work[a] != 0 {
				continue
			}
			da := gain(g, work, a)
			for b := 0; b < n; b++ {
				if locked[b] || work[b] != 1 {
					continue
				}
				db := gain(g, work, b)
				// Swapping a<->b gains da+db-2*(edges between a and b).
				c := 0
				for _, v := range g.adj[a] {
					if v == b {
						c++
					}
				}
				gab := da + db - 2*c
				if first || gab > bestGain {
					bestA, bestB, bestGain = a, b, gab
					first = false
				}
			}
		}
		if bestA < 0 {
			break
		}
		work[bestA], work[bestB] = 1, 0
		locked[bestA], locked[bestB] = true, true
		seq = append(seq, swap{bestA, bestB, bestGain})
	}

	// Apply the best prefix.
	bestSum, sum, upto := 0, 0, 0
	for i, s := range seq {
		sum += s.gain
		if sum > bestSum {
			bestSum, upto = sum, i+1
		}
	}
	for _, s := range seq[:upto] {
		parts[s.a], parts[s.b] = 1, 0
	}
	return bestSum
}

// KWay partitions into k parts of near-equal size by recursive
// bisection. k must be a power of two for exact recursion; other k fall
// back to contiguous blocks after a single KL-improved ordering.
func KWay(g *Graph, k int, rng *rand.Rand) []int {
	if k < 1 {
		panic("partition: k must be >= 1")
	}
	parts := make([]int, g.n)
	if k == 1 {
		return parts
	}
	var rec func(nodes []int, lo, hi int)
	rec = func(nodes []int, lo, hi int) {
		if hi-lo == 1 {
			for _, u := range nodes {
				parts[u] = lo
			}
			return
		}
		sub, idx := inducedSubgraph(g, nodes)
		half := Bisect(sub, rng)
		var left, right []int
		for i, u := range nodes {
			if half[i] == 0 {
				left = append(left, u)
			} else {
				right = append(right, u)
			}
		}
		_ = idx
		mid := lo + (hi-lo)/2
		rec(left, lo, mid)
		rec(right, mid, hi)
	}
	nodes := make([]int, g.n)
	for i := range nodes {
		nodes[i] = i
	}
	rec(nodes, 0, k)
	return parts
}

// inducedSubgraph builds the subgraph on nodes, returning it and the
// original ids in subgraph order.
func inducedSubgraph(g *Graph, nodes []int) (*Graph, []int) {
	pos := make(map[int]int, len(nodes))
	for i, u := range nodes {
		pos[u] = i
	}
	sub := NewGraph(len(nodes))
	for i, u := range nodes {
		for _, v := range g.adj[u] {
			if j, ok := pos[v]; ok && i < j {
				sub.AddEdge(i, j)
			}
		}
	}
	return sub, nodes
}

// TopoPrefixSplit partitions nodes 0..n-1 (assumed already in
// topological order) into k contiguous blocks with balanced weights.
// The parallel logic-sampling engine uses this split: cross-partition
// dependencies then flow only from lower to higher partition indices,
// so a single batched interface message per iteration per partition
// pair suffices and synchronous sampling cannot deadlock.
func TopoPrefixSplit(n, k int, weight func(i int) int) []int {
	if k < 1 {
		panic("partition: k must be >= 1")
	}
	parts := make([]int, n)
	total := 0
	for i := 0; i < n; i++ {
		total += weight(i)
	}
	acc, p := 0, 0
	for i := 0; i < n; i++ {
		// Advance to the next part when this one holds its fair share
		// and parts remain for the rest.
		if p < k-1 && acc >= (p+1)*total/k {
			p++
		}
		parts[i] = p
		acc += weight(i)
	}
	return parts
}
