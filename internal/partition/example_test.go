package partition_test

import (
	"fmt"
	"math/rand"

	"nscc/internal/partition"
)

// ExampleBisect splits two cliques joined by a bridge: the minimum cut
// is the single bridge edge.
func ExampleBisect() {
	g := partition.NewGraph(8)
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			g.AddEdge(a, b)
			g.AddEdge(4+a, 4+b)
		}
	}
	g.AddEdge(0, 4) // the bridge

	parts := partition.Bisect(g, rand.New(rand.NewSource(1)))
	fmt.Println("cut:", partition.EdgeCut(g, parts))
	fmt.Println("sizes:", partition.Sizes(parts, 2))
	// Output:
	// cut: 1
	// sizes: [4 4]
}
