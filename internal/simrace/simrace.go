package simrace

import (
	"nscc/internal/core"
	"nscc/internal/metrics"
	"nscc/internal/pvm"
	"nscc/internal/sim"
	"nscc/internal/trace"
)

// Class is the verdict on one value-bearing cross-process read.
type Class int

const (
	// Synchronized: at the moment the read returned, every write of the
	// location newer than the returned value (there may be none)
	// happened-before the read — the reader could not have observed
	// anything fresher, so nothing raced.
	Synchronized Class = iota
	// ToleratedStale: a newer write existed concurrently with the read
	// (a data race in the happens-before sense), but the read ran under
	// a Global_Read contract and honored it (curIter − gotIter ≤ age) —
	// the paper's non-strict coherence working as designed.
	ToleratedStale
	// Unbounded: a race with no staleness bound in force — an async
	// read, or a Global_Read whose timeout expired past its bound.
	Unbounded
)

func (c Class) String() string {
	switch c {
	case Synchronized:
		return "synchronized"
	case ToleratedStale:
		return "tolerated_stale"
	case Unbounded:
		return "unbounded"
	default:
		return "Class(?)"
	}
}

// writeRec summarizes the write history of one location: the write
// with the highest iteration stamp seen so far and the last write in
// simulated-time order. Locations have a single writer, so that
// writer's successive clock snapshots are monotone and lastVC dominates
// the clock of every write ever made to the location. The two records
// together decide the race question for a read that returned iteration
// g: any write stamped newer than g either *is* one of the two records
// or happened before a later write that is (see classify).
type writeRec struct {
	maxIter int64   // highest iteration stamp written
	maxVC   []int64 // writer clock at that write
	lastVC  []int64 // writer clock at the last write in time order
}

// Checker is the simulated-time happens-before race classifier. It
// maintains one vector clock per simulated task (ticked on writes and
// sends, joined on dequeues via the pvm hooks) and classifies every DSM
// read against the latest write of the location it read.
//
// The checker is strictly passive: it never perturbs virtual time, so a
// run with checking on is event-for-event identical to the same run
// with it off, and its verdict is deterministic in the run's seed at
// any host worker count.
type Checker struct {
	eng    *sim.Engine
	clocks [][]int64
	latest map[int]*writeRec
	counts metrics.RaceTelemetry
	locs   map[int]*metrics.LocationRace
}

// New returns a checker for runs on the given engine (the engine
// supplies virtual timestamps and the run's tracer).
func New(eng *sim.Engine) *Checker {
	return &Checker{eng: eng, latest: make(map[int]*writeRec),
		locs: make(map[int]*metrics.LocationRace)}
}

// Attach wires the checker into the machine's message hooks, composing
// with any hooks already installed. Call it once per run, before the
// tasks are spawned.
func (c *Checker) Attach(m *pvm.Machine) {
	prevSend := m.SendHook
	m.SendHook = func(src int, msg *pvm.Message) {
		if prevSend != nil {
			prevSend(src, msg)
		}
		c.onSend(src, msg)
	}
	prevRecv := m.RecvHook
	m.RecvHook = func(dst int, msg *pvm.Message) {
		if prevRecv != nil {
			prevRecv(dst, msg)
		}
		c.onRecv(dst, msg)
	}
}

// Counts returns a snapshot of the classification counters.
func (c *Checker) Counts() metrics.RaceTelemetry { return c.counts }

// Telemetry returns the counters as the telemetry block's race summary.
func (c *Checker) Telemetry() *metrics.RaceTelemetry {
	t := c.counts
	return &t
}

// ObserveLocation implements core.LocationObserver: locations announce
// their application-level names at Register time, so the per-location
// verdicts report "migrants" or "state", not bare ids.
func (c *Checker) ObserveLocation(id int, name string) {
	ls := c.locStat(id)
	if ls.Name == "" {
		ls.Name = name
	}
}

// locStat returns (allocating on first sight) location id's counters.
func (c *Checker) locStat(id int) *metrics.LocationRace {
	ls := c.locs[id]
	if ls == nil {
		ls = &metrics.LocationRace{ID: id}
		c.locs[id] = ls
	}
	return ls
}

// Report returns the serializable per-run verdict: totals plus the
// per-location classification rows, sorted by location id.
func (c *Checker) Report() metrics.RaceReport {
	rows := make([]metrics.LocationRace, 0, len(c.locs))
	for _, ls := range c.locs { //nscc:maporder -- MergeLocationRaces sorts the rows by id below
		rows = append(rows, *ls)
	}
	rows = metrics.MergeLocationRaces(nil, rows)
	return metrics.RaceReport{Schema: metrics.RaceReportSchema, Totals: c.counts, Locations: rows}
}

// vc returns task id's clock, growing the table as tasks appear.
func (c *Checker) vc(id int) []int64 {
	for len(c.clocks) <= id {
		c.clocks = append(c.clocks, make([]int64, 0, 8))
	}
	return c.clocks[id]
}

// tick advances id's own component and returns the updated clock.
func (c *Checker) tick(id int) []int64 {
	clk := c.vc(id)
	for len(clk) <= id {
		clk = append(clk, 0)
	}
	clk[id]++
	c.clocks[id] = clk
	return clk
}

// join folds a received clock into dst's clock.
func (c *Checker) join(dst int, other []int64) {
	clk := c.vc(dst)
	for len(clk) < len(other) {
		clk = append(clk, 0)
	}
	for i, v := range other {
		if v > clk[i] {
			clk[i] = v
		}
	}
	c.clocks[dst] = clk
}

// leq reports a ≤ b componentwise (absent components are zero).
func leq(a, b []int64) bool {
	for i, v := range a {
		if v == 0 {
			continue
		}
		if i >= len(b) || v > b[i] {
			return false
		}
	}
	return true
}

func snapshot(clk []int64) []int64 {
	s := make([]int64, len(clk))
	copy(s, clk)
	return s
}

// onSend stamps an outgoing message with the sender's clock. The send
// is a local event, so the sender ticks first; the stamp rides the
// message (and every reliable-mode delivery copy) in Message.Aux.
func (c *Checker) onSend(src int, msg *pvm.Message) {
	msg.Aux = snapshot(c.tick(src))
}

// onRecv joins the message's stamp into the dequeuing task's clock —
// the moment the payload (and everything the sender knew when sending
// it) becomes visible to the receiving application.
func (c *Checker) onRecv(dst int, msg *pvm.Message) {
	if vc, ok := msg.Aux.([]int64); ok {
		c.join(dst, vc)
	}
}

// ObserveWrite implements core.RaceObserver: record the write with the
// writer's post-tick clock.
func (c *Checker) ObserveWrite(task, loc int, iter int64) {
	c.counts.Writes++
	c.locStat(loc).Writes++
	clk := snapshot(c.tick(task))
	rec := c.latest[loc]
	if rec == nil {
		rec = &writeRec{maxIter: iter, maxVC: clk}
		c.latest[loc] = rec
	} else if iter >= rec.maxIter {
		rec.maxIter, rec.maxVC = iter, clk
	}
	rec.lastVC = clk
}

// ObserveRead implements core.RaceObserver: classify one finished read.
func (c *Checker) ObserveRead(ri core.ReadInfo) {
	if ri.TimedOut {
		c.counts.TimedOut++
	}
	ls := c.locStat(ri.Loc)
	if !ri.HasValue {
		c.counts.NoValue++
		ls.NoValue++
		return
	}
	c.counts.Reads++
	ls.Reads++
	cls := c.classify(ri)
	switch cls {
	case Synchronized:
		c.counts.Synchronized++
		ls.Synchronized++
		return
	case ToleratedStale:
		c.counts.ToleratedStale++
		ls.ToleratedStale++
	case Unbounded:
		c.counts.Unbounded++
		ls.Unbounded++
	}
	if tr := c.eng.Tracer(); tr != nil {
		tr.Emit(trace.Event{TS: int64(c.eng.Now()), Ph: trace.PhaseInstant,
			Pid: trace.PidRace, Tid: ri.Task, Cat: "simrace", Name: cls.String(),
			K1: "loc", V1: int64(ri.Loc), K2: "got", V2: ri.GotIter})
	}
}

// classify decides the read's class. A read of value g races iff some
// write stamped newer than g was not ordered before the read. The
// newest-stamped write covers the common monotone case; the
// last-in-time write additionally catches a correction (an
// old-iteration rewrite, as the sampler's antimessages produce) issued
// after it — any other newer-stamped write happens before one of the
// two, so if both are ordered before the read, the corner that remains
// (an unordered middle write whose successors are all ordered) is
// conservatively called synchronized.
func (c *Checker) classify(ri core.ReadInfo) Class {
	rec := c.latest[ri.Loc]
	if rec == nil || rec.maxIter <= ri.GotIter {
		// Nothing newer than what the read returned has ever been
		// written; the read observed the frontier.
		return Synchronized
	}
	vcr := c.vc(ri.Task)
	if leq(rec.maxVC, vcr) && leq(rec.lastVC, vcr) {
		// Every newer write happened-before the read (its knowledge had
		// reached the reader through the message graph) — no race, even
		// though the reader returned an older value (possible when
		// knowledge outruns a reordered or still-queued update).
		return Synchronized
	}
	if ri.Bounded {
		// Reader-observed staleness of the racy read. (The write-side
		// distance maxIter−GotIter would be polluted by the applications'
		// exit-sentinel stamps, which are deliberately astronomical.)
		lag := ri.CurIter - ri.GotIter
		if lag > c.counts.MaxLag {
			c.counts.MaxLag = lag
		}
		if ls := c.locStat(ri.Loc); lag > ls.MaxLag {
			ls.MaxLag = lag
		}
	}
	if ri.Bounded && !ri.TimedOut {
		if s := ri.CurIter - ri.GotIter; s <= ri.Age {
			return ToleratedStale
		}
	}
	return Unbounded
}
