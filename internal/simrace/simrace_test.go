package simrace_test

import (
	"reflect"
	"testing"

	"nscc/internal/core"
	"nscc/internal/ga"
	"nscc/internal/ga/functions"
	"nscc/internal/sim"
	"nscc/internal/simrace"
)

// runGA executes one small island GA with race checking on and returns
// its race telemetry.
func runGA(t *testing.T, mode core.Mode, age, seed int64) *ga.IslandResult {
	t.Helper()
	cfg := ga.IslandConfig{
		Fn: functions.F1, Par: ga.DeJongParams(), P: 4,
		Mode: mode, Age: age,
		FixedGens: 40, MinGens: 40, MaxGens: 160,
		Target:    1e9, // quality target irrelevant: bound the run by gens
		Seed:      seed,
		Calib:     ga.DefaultCalibration(),
		RaceCheck: true,
	}
	if mode == core.Sync {
		cfg.Target = 0
	}
	res, err := ga.RunIsland(cfg)
	if err != nil {
		t.Fatalf("RunIsland(%v): %v", mode, err)
	}
	if res.Telemetry == nil || res.Telemetry.Races == nil {
		t.Fatalf("RunIsland(%v): race telemetry missing", mode)
	}
	return &res
}

// checkInvariants asserts the counter algebra every run must satisfy.
func checkInvariants(t *testing.T, res *ga.IslandResult) {
	t.Helper()
	rt := res.Telemetry.Races
	if rt.Reads != rt.Synchronized+rt.ToleratedStale+rt.Unbounded {
		t.Errorf("classified reads don't add up: %d != %d+%d+%d",
			rt.Reads, rt.Synchronized, rt.ToleratedStale, rt.Unbounded)
	}
	if rt.Writes <= 0 || rt.Reads <= 0 {
		t.Errorf("expected activity, got writes=%d reads=%d", rt.Writes, rt.Reads)
	}
}

// TestSyncHasNoRaces: under the synchronous discipline every migrant
// read blocks for the current generation's value, so the checker must
// prove every read synchronized — zero races of either class.
func TestSyncHasNoRaces(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		res := runGA(t, core.Sync, 0, seed)
		checkInvariants(t, res)
		rt := res.Telemetry.Races
		if rt.Races() != 0 {
			t.Errorf("seed %d: sync run reported races: tolerated=%d unbounded=%d",
				seed, rt.ToleratedStale, rt.Unbounded)
		}
		if rt.Synchronized != rt.Reads {
			t.Errorf("seed %d: sync run: %d of %d reads not synchronized",
				seed, rt.Reads-rt.Synchronized, rt.Reads)
		}
	}
}

// TestAsyncObservesRaces: fully asynchronous reads carry no staleness
// contract, so the races that occur must be classified unbounded.
func TestAsyncObservesRaces(t *testing.T) {
	sawRaces := false
	for seed := int64(1); seed <= 5; seed++ {
		res := runGA(t, core.Async, 0, seed)
		checkInvariants(t, res)
		rt := res.Telemetry.Races
		if rt.ToleratedStale != 0 {
			t.Errorf("seed %d: async run cannot have tolerated-stale reads, got %d",
				seed, rt.ToleratedStale)
		}
		if rt.Unbounded > 0 {
			sawRaces = true
		}
	}
	if !sawRaces {
		t.Error("no unbounded races observed across any async seed")
	}
}

// TestGlobalReadBoundsRaces: with the age contract in force and no
// read timeouts, every race must be within bound — tolerated-stale > 0
// (the mechanism is exercised) and unbounded == 0, across a seeded
// sweep of ages.
func TestGlobalReadBoundsRaces(t *testing.T) {
	sawTolerated := false
	for _, age := range []int64{0, 5, 10, 20, 30} {
		for seed := int64(1); seed <= 3; seed++ {
			res := runGA(t, core.NonStrict, age, seed)
			checkInvariants(t, res)
			rt := res.Telemetry.Races
			if rt.Unbounded != 0 {
				t.Errorf("age=%d seed=%d: %d unbounded races under the age contract",
					age, seed, rt.Unbounded)
			}
			if rt.MaxLag > age {
				t.Errorf("age=%d seed=%d: racy read staleness %d exceeds the bound",
					age, seed, rt.MaxLag)
			}
			if rt.ToleratedStale > 0 {
				sawTolerated = true
			}
		}
	}
	if !sawTolerated {
		t.Error("no tolerated-stale reads observed across the whole age sweep")
	}
}

// TestDeterministicVerdict: the checker is passive and seeded, so the
// full race telemetry must be identical across repeated runs, and a
// checked run's result must equal an unchecked run's.
func TestDeterministicVerdict(t *testing.T) {
	for _, mode := range []core.Mode{core.Sync, core.Async, core.NonStrict} {
		a := runGA(t, mode, 10, 7)
		b := runGA(t, mode, 10, 7)
		if !reflect.DeepEqual(a.Telemetry.Races, b.Telemetry.Races) {
			t.Errorf("%v: race telemetry differs between identical runs:\n%+v\n%+v",
				mode, a.Telemetry.Races, b.Telemetry.Races)
		}
		if a.Completion != b.Completion || !reflect.DeepEqual(a.Gens, b.Gens) {
			t.Errorf("%v: run results differ between identical runs", mode)
		}
	}
}

// TestCheckerIsPassive: enabling the checker must not move a single
// event — completion time, generation counts, and message counts of a
// checked run equal the unchecked run's.
func TestCheckerIsPassive(t *testing.T) {
	for _, mode := range []core.Mode{core.Sync, core.NonStrict, core.Async} {
		cfg := ga.IslandConfig{
			Fn: functions.F1, Par: ga.DeJongParams(), P: 4,
			Mode: mode, Age: 10,
			FixedGens: 40, MinGens: 40, MaxGens: 160,
			Target: 1e9, Seed: 11, Calib: ga.DefaultCalibration(),
		}
		if mode == core.Sync {
			cfg.Target = 0
		}
		plain, err := ga.RunIsland(cfg)
		if err != nil {
			t.Fatalf("plain: %v", err)
		}
		cfg.RaceCheck = true
		checked, err := ga.RunIsland(cfg)
		if err != nil {
			t.Fatalf("checked: %v", err)
		}
		if plain.Completion != checked.Completion ||
			!reflect.DeepEqual(plain.Gens, checked.Gens) ||
			plain.Messages != checked.Messages {
			t.Errorf("%v: race checking perturbed the run: completion %v vs %v, messages %d vs %d",
				mode, plain.Completion, checked.Completion, plain.Messages, checked.Messages)
		}
	}
}

// TestClassifyDirect drives the observer interface by hand (no message
// traffic, so no happens-before edges between tasks) and pins the
// classification rules.
func TestClassifyDirect(t *testing.T) {
	eng := sim.NewEngine(1)
	c := simrace.New(eng)

	// Reader returning the newest stamp is synchronized.
	c.ObserveWrite(0, 0, 5)
	c.ObserveRead(core.ReadInfo{Task: 1, Loc: 0, GotIter: 5, CurIter: 5, Age: 0, Bounded: true, HasValue: true})
	// Stale but within bound, no HB edge: tolerated.
	c.ObserveRead(core.ReadInfo{Task: 1, Loc: 0, GotIter: 3, CurIter: 5, Age: 2, Bounded: true, HasValue: true})
	// Stale past bound (timeout degraded): unbounded.
	c.ObserveRead(core.ReadInfo{Task: 1, Loc: 0, GotIter: 3, CurIter: 9, Age: 2, Bounded: true, TimedOut: true, HasValue: true})
	// Async (no contract): unbounded.
	c.ObserveRead(core.ReadInfo{Task: 2, Loc: 0, GotIter: 3, HasValue: true})
	// Valueless read: counted separately, never classified.
	c.ObserveRead(core.ReadInfo{Task: 2, Loc: 0, Bounded: true})

	got := c.Counts()
	if got.Reads != 4 || got.Synchronized != 1 || got.ToleratedStale != 1 ||
		got.Unbounded != 2 || got.NoValue != 1 || got.TimedOut != 1 {
		t.Errorf("unexpected counts: %+v", got)
	}
	if got.MaxLag != 6 {
		t.Errorf("MaxLag = %d, want 6 (the timed-out read's staleness)", got.MaxLag)
	}

	// Class names are part of the trace contract.
	for cls, name := range map[simrace.Class]string{
		simrace.Synchronized:   "synchronized",
		simrace.ToleratedStale: "tolerated_stale",
		simrace.Unbounded:      "unbounded",
	} {
		if cls.String() != name {
			t.Errorf("Class(%d).String() = %q, want %q", int(cls), cls.String(), name)
		}
	}
}
