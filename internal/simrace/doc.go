// Package simrace is the simulated-time data-race classifier: a
// vector-clock happens-before checker that runs over *simulated*
// processes and classifies every cross-process DSM read instead of
// merely detecting that races exist.
//
// The paper's whole premise is that its applications tolerate data
// races — stale reads are admissible as long as the staleness is
// bounded (Global_Read's age contract). A conventional race detector
// can only condemn such programs wholesale; this checker instead
// splits the verdict three ways, per read:
//
//   - Synchronized: every write of the location newer than the value
//     the read returned (there may be none) happened-before the read.
//     Nothing raced; a strict-coherence system would have returned the
//     same value.
//   - ToleratedStale: a newer write was concurrent with the read — a
//     data race in the happens-before sense — but the read ran under a
//     Global_Read age contract and honored it (current iteration −
//     returned iteration ≤ age). This is non-strict coherence working
//     as designed; counting these is measuring the paper's mechanism.
//   - Unbounded: a race with no staleness bound in force — an
//     asynchronous read, or a timed-out Global_Read that degraded past
//     its bound. In a correctness-sensitive application these are the
//     dangerous ones.
//
// Happens-before is tracked with one vector clock per simulated task:
// local events (DSM writes, sends) tick the sender's component; a
// message carries the sender's clock snapshot (pvm.Message.Aux, set by
// the machine's SendHook) and is joined into the receiver's clock at
// *dequeue* (pvm.Machine.RecvHook) — knowledge transfers when the
// application takes delivery, not when the frame arrives. Locations
// have a single writer, so the checker keeps only two write records per
// location (newest-stamped and last-in-time; see writeRec) rather than
// the whole history.
//
// The checker is strictly passive: it never advances virtual time,
// never perturbs event order, and draws no randomness, so a run with
// checking enabled is event-for-event identical to the same run
// without it, and its verdict is a deterministic function of the run's
// seed at any host worker count. Enable it with -simrace on the
// binaries, ga.IslandConfig.RaceCheck / bayes.ParallelConfig.RaceCheck
// / exper.Options.SimRace programmatically; results land in
// metrics.Telemetry.Races and, when a tracer is attached, as one
// instant per racy read on the trace's "simrace" track.
package simrace
