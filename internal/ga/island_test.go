package ga

import (
	"testing"

	"nscc/internal/core"
	"nscc/internal/ga/functions"
	"nscc/internal/netsim"
)

// quickCfg returns a small, fast island configuration for tests.
func quickCfg(mode core.Mode, p int) IslandConfig {
	cfg := IslandConfig{
		Fn:        functions.F1,
		Par:       DeJongParams(),
		P:         p,
		Mode:      mode,
		Age:       5,
		FixedGens: 40,
		Target:    0.05,
		MaxGens:   200,
		Seed:      11,
		Calib:     DefaultCalibration(),
	}
	return cfg
}

func TestRunSerialConverges(t *testing.T) {
	res := RunSerial(functions.F1, DeJongParams(), 100, 150, 1, DefaultCalibration())
	if res.Gens != 150 {
		t.Fatalf("gens %d", res.Gens)
	}
	if res.Best > 0.5 {
		t.Fatalf("serial F1 best after 150 gens = %v", res.Best)
	}
	if res.Time <= 0 {
		t.Fatal("no virtual time accumulated")
	}
	if res.Evals <= 0 || res.Evals > 150*100 {
		t.Fatalf("evals = %d", res.Evals)
	}
	// Caching must have saved something.
	if res.Evals >= 150*100 {
		t.Fatal("fitness caching saved nothing")
	}
}

func TestRunSerialDeterministic(t *testing.T) {
	a := RunSerial(functions.F6, DeJongParams(), 50, 50, 7, DefaultCalibration())
	b := RunSerial(functions.F6, DeJongParams(), 50, 50, 7, DefaultCalibration())
	if a != b {
		t.Fatalf("serial runs with same seed differ: %+v vs %+v", a, b)
	}
}

func TestIslandSyncRuns(t *testing.T) {
	res, err := RunIsland(quickCfg(core.Sync, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range res.Gens {
		if g != 40 {
			t.Fatalf("island %d ran %d generations, want 40", i, g)
		}
	}
	if res.Completion <= 0 {
		t.Fatal("no completion time")
	}
	if res.Best > 2 {
		t.Fatalf("sync best %v unexpectedly poor", res.Best)
	}
	if !res.ReachedTarget {
		t.Fatal("sync runs always count as reaching target")
	}
	if res.Messages == 0 {
		t.Fatal("no network traffic in a parallel run")
	}
}

func TestIslandAsyncTerminates(t *testing.T) {
	res, err := RunIsland(quickCfg(core.Async, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion <= 0 {
		t.Fatal("no completion time")
	}
	if res.Blocked != 0 {
		t.Fatalf("async run blocked %d times; async reads must never block", res.Blocked)
	}
	// Either it reached the (easy) target or hit the cap.
	if res.ReachedTarget && res.Best > 0.05 {
		t.Fatalf("claims target reached but best = %v", res.Best)
	}
}

func TestIslandGlobalReadTerminates(t *testing.T) {
	res, err := RunIsland(quickCfg(core.NonStrict, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion <= 0 {
		t.Fatal("no completion time")
	}
	if !res.ReachedTarget {
		t.Fatalf("GR(5) failed to reach easy target; best=%v gens=%v", res.Best, res.Gens)
	}
}

func TestIslandDeterminism(t *testing.T) {
	a, err := RunIsland(quickCfg(core.NonStrict, 3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunIsland(quickCfg(core.NonStrict, 3))
	if err != nil {
		t.Fatal(err)
	}
	if a.Completion != b.Completion || a.Best != b.Best || a.Messages != b.Messages {
		t.Fatalf("same-seed island runs differ:\n%+v\n%+v", a, b)
	}
}

func TestIslandSingleProcessor(t *testing.T) {
	cfg := quickCfg(core.Sync, 1)
	res, err := RunIsland(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Gens[0] != 40 {
		t.Fatalf("gens %v", res.Gens)
	}
	if res.Messages != 0 {
		t.Fatalf("single island generated %d messages", res.Messages)
	}
}

func TestIslandLoaderAddsTraffic(t *testing.T) {
	// Fixed-generation sync runs: identical work, so the loaded run
	// must take strictly longer (target-based stopping would make the
	// comparison stochastic).
	base := quickCfg(core.Sync, 2)
	base.FixedGens = 150
	loaded := base
	loaded.LoaderBps = 2e6
	a, err := RunIsland(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunIsland(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if b.Messages <= a.Messages {
		t.Fatalf("loader added no frames: %d vs %d", b.Messages, a.Messages)
	}
	if b.Completion < a.Completion {
		t.Fatalf("heavy background load sped the run up: %v vs %v", b.Completion, a.Completion)
	}
}

func TestIslandGenerationsScaleWithMode(t *testing.T) {
	// Async islands run at least as many generations as GR ones to hit
	// the same target (stale migrants converge slower), and GR(large)
	// blocks less than GR(0).
	gr0 := quickCfg(core.NonStrict, 4)
	gr0.Age = 0
	gr20 := quickCfg(core.NonStrict, 4)
	gr20.Age = 20
	a, err := RunIsland(gr0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunIsland(gr20)
	if err != nil {
		t.Fatal(err)
	}
	if b.BlockedTime > a.BlockedTime {
		t.Fatalf("GR(20) blocked longer than GR(0): %v vs %v", b.BlockedTime, a.BlockedTime)
	}
}

func TestMigrantBlockBytes(t *testing.T) {
	b := MigrantBlockBytes(functions.F1, 25)
	want := 16 + 25*(functions.F1.Bytes()+8)
	if b != want {
		t.Fatalf("MigrantBlockBytes = %d, want %d", b, want)
	}
}

func TestCalibrationCosts(t *testing.T) {
	c := DefaultCalibration()
	if c.EvalCost(functions.F4) <= c.EvalCost(functions.F2) {
		t.Fatal("more variables must cost more")
	}
	if c.GenCost(functions.F1, 50, 50) <= c.GenCost(functions.F1, 10, 50) {
		t.Fatal("more evaluations must cost more")
	}
}

func TestJitterDistribution(t *testing.T) {
	c := DefaultCalibration()
	jit := NewJitterer(c, testDeme(t, functions.F1, 1).rng)
	minF, maxF := 100.0, 0.0
	patchGens := 0
	for i := 0; i < 3000; i++ {
		f := jit.Next()
		if jit.InSlowPatch() {
			patchGens++
		}
		if f < minF {
			minF = f
		}
		if f > maxF {
			maxF = f
		}
	}
	if minF < 1 {
		t.Fatalf("jitter below 1: %v", minF)
	}
	if maxF < 1.5 {
		t.Fatalf("slow patches never appeared in 3000 draws (max %v)", maxF)
	}
	// Patches are correlated stretches: with SlowProb 0.015 and mean
	// length 10 we expect roughly 10-20%% of generations inside patches.
	if patchGens < 3000/50 || patchGens > 3000/2 {
		t.Fatalf("patch occupancy %d/3000 implausible", patchGens)
	}
}

func TestRingTopologyLessTraffic(t *testing.T) {
	bcast := quickCfg(core.Sync, 4)
	ring := bcast
	ring.Topology = Ring
	a, err := RunIsland(bcast)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunIsland(ring)
	if err != nil {
		t.Fatal(err)
	}
	// A ring round sends P migrant frames; broadcast also sends P (one
	// multicast each) but each ring frame has a single destination, so
	// byte deliveries differ. Compare delivered bytes via NetBytes and
	// convergence quality: broadcast mixes faster.
	if b.Messages > a.Messages {
		t.Fatalf("ring generated more frames than broadcast: %d vs %d", b.Messages, a.Messages)
	}
	if a.Best > b.Best*10+1e-9 && a.Best > 1e-6 {
		t.Fatalf("broadcast converged far worse than ring: %v vs %v", a.Best, b.Best)
	}
}

func TestMigrationInterval(t *testing.T) {
	every := quickCfg(core.Sync, 4)
	sparse := every
	sparse.Interval = 5
	a, err := RunIsland(every)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunIsland(sparse)
	if err != nil {
		t.Fatal(err)
	}
	// Migrating every 5th generation cuts migrant traffic ~5x; the
	// per-generation barrier frames remain, so total traffic drops by
	// the migrant share.
	if b.Messages >= a.Messages*3/4 {
		t.Fatalf("interval 5 left too much traffic: %d vs %d frames", b.Messages, a.Messages)
	}
	// Both still converge on F1.
	if b.Best > 1 {
		t.Fatalf("sparse migration failed to converge: best %v", b.Best)
	}
}

func TestTopologyString(t *testing.T) {
	if Broadcast.String() != "broadcast" || Ring.String() != "ring" {
		t.Fatal("topology names")
	}
	if Topology(9).String() != "Topology(?)" {
		t.Fatal("unknown topology name")
	}
}

func TestDynamicAgeAdapts(t *testing.T) {
	cfg := quickCfg(core.NonStrict, 4)
	cfg.DynamicAge = true
	cfg.Age = 0 // start lockstep; adaptation must open the window
	res, err := RunIsland(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReachedTarget {
		t.Fatalf("dynamic-age run failed: %+v", res)
	}
	// A pure age-0 run blocks on every read; adaptation must have
	// reduced blocking below that burden.
	fixed := quickCfg(core.NonStrict, 4)
	fixed.Age = 0
	ref, err := RunIsland(fixed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocked >= ref.Blocked {
		t.Fatalf("dynamic age did not reduce blocking: %d vs %d", res.Blocked, ref.Blocked)
	}
}

func TestAsyncToleratesMessageLoss(t *testing.T) {
	// The paper's premise: data-race tolerant applications "behave
	// correctly in the presence of losses and delays in the propagation
	// of shared memory updates". Drop 20% of all frames; the fully
	// asynchronous island GA must still converge to the optimum.
	cfg := quickCfg(core.Async, 4)
	cfg.FixedGens = 80
	cfg.MinGens = 80
	cfg.MaxGens = 320
	lossy := netsim.DefaultConfig()
	lossy.LossProb = 0.2
	cfg.Net = &lossy
	res, err := RunIsland(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OptimumFound {
		t.Fatalf("async GA failed under 20%% loss: best %v", res.Best)
	}
	if res.Blocked != 0 {
		t.Fatal("async must not block, with or without loss")
	}
}
