// Package ga implements the paper's genetic-algorithm workload: a
// generational GA with DeJong's parameter settings (§4.2.1: N=50, C=0.6,
// M=0.001, G=1, W=1, elitist selection), a serial runner with the
// fitness-caching optimization the paper applies to its sequential
// baselines, and the coarse-grained "island" parallel GA in its
// synchronous, fully asynchronous and Global_Read-controlled variants.
package ga

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"nscc/internal/ga/functions"
)

// Params are the six GA parameters of §4.2.1.
type Params struct {
	N       int     // population (deme) size
	C       float64 // crossover rate
	M       float64 // per-bit mutation rate
	G       float64 // generation gap (1 = full generational replacement)
	W       int     // scaling window (generations of worst-value history)
	Elitist bool    // S=E: best individual survives unchanged
	Gray    bool    // interpret chromosomes as reflected Gray code
}

// DeJongParams returns the paper's settings: N=50, C=0.6, M=0.001, G=1,
// W=1, S=E.
func DeJongParams() Params {
	return Params{N: 50, C: 0.6, M: 0.001, G: 1, W: 1, Elitist: true}
}

// Individual is one chromosome with its cached objective value. The GA
// minimizes Fit.
type Individual struct {
	Bits  []byte  // one byte per bit, 0 or 1
	Fit   float64 // objective value (valid only if Valid)
	Valid bool
}

// Clone returns a deep copy.
func (ind Individual) Clone() Individual {
	b := make([]byte, len(ind.Bits))
	copy(b, ind.Bits)
	return Individual{Bits: b, Fit: ind.Fit, Valid: ind.Valid}
}

// Deme is one subpopulation evolving under a Params setting. All
// randomness comes from the supplied rng, so demes are deterministic.
type Deme struct {
	Fn  *functions.Function
	Par Params
	rng *rand.Rand

	pop     []Individual
	gen     int64
	worstW  []float64 // worst raw objective of the last W generations
	best    Individual
	bestSet bool

	evals int64 // total objective evaluations computed (cache misses)
}

// NewDeme creates a deme of Par.N random individuals.
func NewDeme(fn *functions.Function, par Params, rng *rand.Rand) *Deme {
	if par.N < 2 {
		panic("ga: population must have at least 2 individuals")
	}
	d := &Deme{Fn: fn, Par: par, rng: rng}
	d.pop = make([]Individual, par.N)
	for i := range d.pop {
		bits := make([]byte, fn.TotalBits())
		for b := range bits {
			bits[b] = byte(rng.Intn(2))
		}
		d.pop[i] = Individual{Bits: bits}
	}
	return d
}

// Gen returns the number of completed generations.
func (d *Deme) Gen() int64 { return d.gen }

// Evals returns the cumulative number of objective evaluations actually
// computed (fitness-cache misses).
func (d *Deme) Evals() int64 { return d.evals }

// Size returns the deme population size.
func (d *Deme) Size() int { return len(d.pop) }

// EvaluateAll computes objective values for individuals whose cache is
// invalid and returns how many evaluations that took. This is the
// paper's "software caching technique to reduce the recomputation of
// fitness values of surviving individuals" [19]: clones that passed
// through selection without crossover or mutation keep their value.
func (d *Deme) EvaluateAll() int {
	n := 0
	for i := range d.pop {
		if !d.pop[i].Valid {
			if d.Par.Gray {
				d.pop[i].Fit = d.Fn.EvalBitsGray(d.pop[i].Bits, d.rng)
			} else {
				d.pop[i].Fit = d.Fn.EvalBits(d.pop[i].Bits, d.rng)
			}
			d.pop[i].Valid = true
			n++
		}
	}
	d.evals += int64(n)
	d.trackBest()
	d.pushWorst()
	return n
}

func (d *Deme) trackBest() {
	for i := range d.pop {
		if !d.bestSet || d.pop[i].Fit < d.best.Fit {
			d.best = d.pop[i].Clone()
			d.bestSet = true
		}
	}
}

func (d *Deme) pushWorst() {
	worst := d.pop[0].Fit
	for i := range d.pop {
		if d.pop[i].Fit > worst {
			worst = d.pop[i].Fit
		}
	}
	d.worstW = append(d.worstW, worst)
	w := d.Par.W
	if w < 1 {
		w = 1
	}
	if len(d.worstW) > w {
		d.worstW = d.worstW[len(d.worstW)-w:]
	}
}

// Best returns a copy of the best individual found so far. EvaluateAll
// must have run at least once.
func (d *Deme) Best() Individual {
	if !d.bestSet {
		panic("ga: Best before EvaluateAll")
	}
	return d.best.Clone()
}

// CurrentBest returns the best objective value in the *current*
// population (as opposed to Best, the best ever seen). Convergence
// checks use this: "the subpopulation converged further" (§5.1.1) is a
// property of the population, not of history.
func (d *Deme) CurrentBest() float64 {
	best := math.Inf(1)
	for i := range d.pop {
		if d.pop[i].Valid && d.pop[i].Fit < best {
			best = d.pop[i].Fit
		}
	}
	return best
}

// AvgFit returns the population's mean objective value (current,
// evaluated members only).
func (d *Deme) AvgFit() float64 {
	s, n := 0.0, 0
	for i := range d.pop {
		if d.pop[i].Valid {
			s += d.pop[i].Fit
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// scaledFitness converts the minimization objective into selection
// weights using DeJong's scaling-window rule: weight = baseline - f,
// where baseline is the worst raw objective seen in the last W
// generations.
func (d *Deme) scaledFitness() []float64 {
	baseline := d.worstW[0]
	for _, w := range d.worstW {
		if w > baseline {
			baseline = w
		}
	}
	ws := make([]float64, len(d.pop))
	for i := range d.pop {
		w := baseline - d.pop[i].Fit
		if w < 0 {
			w = 0
		}
		ws[i] = w
	}
	return ws
}

// rouletteIndex draws one population index proportionally to weights
// (uniform if all weights are zero).
func rouletteIndex(weights []float64, total float64, rng *rand.Rand) int {
	if total <= 0 {
		return rng.Intn(len(weights))
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

// NextGeneration applies roulette selection (on scaled fitness),
// single-point crossover with probability C, per-bit mutation with
// probability M, and elitism, replacing the population. G<1 keeps a
// (1-G) fraction of the old population untouched.
func (d *Deme) NextGeneration() {
	weights := d.scaledFitness()
	total := 0.0
	for _, w := range weights {
		total += w
	}

	n := len(d.pop)
	replace := n
	if d.Par.G < 1 {
		replace = int(d.Par.G * float64(n))
		if replace < 2 {
			replace = 2
		}
	}
	next := make([]Individual, 0, n)
	// Survivors (generation gap < 1): keep the best of the old
	// population beyond the replaced fraction.
	if replace < n {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return d.pop[idx[a]].Fit < d.pop[idx[b]].Fit })
		for _, i := range idx[:n-replace] {
			next = append(next, d.pop[i].Clone())
		}
	}

	for len(next) < n {
		p1 := d.pop[rouletteIndex(weights, total, d.rng)]
		p2 := d.pop[rouletteIndex(weights, total, d.rng)]
		c1, c2 := p1.Clone(), p2.Clone()
		if d.rng.Float64() < d.Par.C {
			crossover(&c1, &c2, d.rng)
		}
		d.mutate(&c1)
		d.mutate(&c2)
		next = append(next, c1)
		if len(next) < n {
			next = append(next, c2)
		}
	}

	if d.Par.Elitist && d.bestSet {
		// The best-so-far individual replaces a random slot unchanged.
		next[d.rng.Intn(n)] = d.best.Clone()
	}
	d.pop = next
	d.gen++
}

// crossover applies single-point crossover in place, invalidating both
// children's cached fitness.
func crossover(a, b *Individual, rng *rand.Rand) {
	if len(a.Bits) != len(b.Bits) {
		panic("ga: crossover length mismatch")
	}
	if len(a.Bits) < 2 {
		return
	}
	point := 1 + rng.Intn(len(a.Bits)-1)
	for i := point; i < len(a.Bits); i++ {
		a.Bits[i], b.Bits[i] = b.Bits[i], a.Bits[i]
	}
	a.Valid = false
	b.Valid = false
}

// mutate flips each bit with probability M, invalidating the cache when
// any bit flips.
func (d *Deme) mutate(ind *Individual) {
	for i := range ind.Bits {
		if d.rng.Float64() < d.Par.M {
			ind.Bits[i] ^= 1
			ind.Valid = false
		}
	}
}

// BestK returns copies of the k fittest current individuals, fittest
// first. Individuals must be evaluated (call after EvaluateAll).
func (d *Deme) BestK(k int) []Individual {
	if k > len(d.pop) {
		k = len(d.pop)
	}
	idx := make([]int, len(d.pop))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return d.pop[idx[a]].Fit < d.pop[idx[b]].Fit })
	out := make([]Individual, 0, k)
	for _, i := range idx[:k] {
		out = append(out, d.pop[i].Clone())
	}
	return out
}

// ReplaceWorst installs migrants over the worst current individuals
// (§4.2.1: "each processor then replaces the worst individuals in its
// subpopulation with these migrants"). Migrants arrive with their
// sender-computed fitness, so no re-evaluation is charged.
func (d *Deme) ReplaceWorst(migrants []Individual) {
	if len(migrants) == 0 {
		return
	}
	if len(migrants) > len(d.pop) {
		migrants = migrants[:len(d.pop)]
	}
	idx := make([]int, len(d.pop))
	for i := range idx {
		idx[i] = i
	}
	// Worst first.
	sort.Slice(idx, func(a, b int) bool { return d.pop[idx[a]].Fit > d.pop[idx[b]].Fit })
	for i, m := range migrants {
		mc := m.Clone()
		if len(mc.Bits) != d.Fn.TotalBits() {
			panic(fmt.Sprintf("ga: migrant has %d bits, deme wants %d", len(mc.Bits), d.Fn.TotalBits()))
		}
		d.pop[idx[i]] = mc
	}
	d.trackBest()
}

// bestOfPool returns the k fittest individuals from a migrant pool,
// fittest first (used when more migrants arrive than slots exist).
func bestOfPool(pool []Individual, k int) []Individual {
	c := make([]Individual, len(pool))
	copy(c, pool)
	sort.Slice(c, func(a, b int) bool { return c[a].Fit < c[b].Fit })
	if k > len(c) {
		k = len(c)
	}
	return c[:k]
}
