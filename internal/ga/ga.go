// Package ga implements the paper's genetic-algorithm workload: a
// generational GA with DeJong's parameter settings (§4.2.1: N=50, C=0.6,
// M=0.001, G=1, W=1, elitist selection), a serial runner with the
// fitness-caching optimization the paper applies to its sequential
// baselines, and the coarse-grained "island" parallel GA in its
// synchronous, fully asynchronous and Global_Read-controlled variants.
package ga

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"

	"nscc/internal/ga/functions"
)

// Params are the six GA parameters of §4.2.1.
type Params struct {
	N       int     // population (deme) size
	C       float64 // crossover rate
	M       float64 // per-bit mutation rate
	G       float64 // generation gap (1 = full generational replacement)
	W       int     // scaling window (generations of worst-value history)
	Elitist bool    // S=E: best individual survives unchanged
	Gray    bool    // interpret chromosomes as reflected Gray code
}

// DeJongParams returns the paper's settings: N=50, C=0.6, M=0.001, G=1,
// W=1, S=E.
func DeJongParams() Params {
	return Params{N: 50, C: 0.6, M: 0.001, G: 1, W: 1, Elitist: true}
}

// Individual is one chromosome with its cached objective value. The GA
// minimizes Fit.
type Individual struct {
	Bits  []byte  // one byte per bit, 0 or 1
	Fit   float64 // objective value (valid only if Valid)
	Valid bool
}

// Clone returns a deep copy.
func (ind Individual) Clone() Individual {
	b := make([]byte, len(ind.Bits))
	copy(b, ind.Bits)
	return Individual{Bits: b, Fit: ind.Fit, Valid: ind.Valid}
}

// Deme is one subpopulation evolving under a Params setting. All
// randomness comes from the supplied rng, so demes are deterministic.
//
// The deme is double-buffered: pop and next each own a full
// population backed by one contiguous bit arena, and NextGeneration
// builds the new generation in next and swaps the buffers, so the
// steady-state generation loop allocates nothing.
type Deme struct {
	Fn  *functions.Function
	Par Params
	rng *rand.Rand

	pop  []Individual
	next []Individual // write buffer for NextGeneration
	gen  int64

	// worstW is a ring of the worst raw objective of the last W
	// generations (preallocated; worstN entries are live, worstI is the
	// next write slot).
	worstW []float64
	worstN int
	worstI int

	best    Individual
	bestSet bool
	scratch Individual // discarded second child of an odd last pair

	ws   []float64 // selection-weight prefix sums, reused per generation
	idx  []int     // index-sort scratch, reused per call
	xbuf []float64 // objective decode scratch, reused per evaluation

	evals int64 // total objective evaluations computed (cache misses)
}

// newPopulation allocates n individuals of bits chromosome bits each,
// backed by one contiguous arena.
func newPopulation(n, bits int) []Individual {
	arena := make([]byte, n*bits)
	pop := make([]Individual, n)
	for i := range pop {
		pop[i].Bits = arena[i*bits : (i+1)*bits : (i+1)*bits]
	}
	return pop
}

// NewDeme creates a deme of Par.N random individuals.
func NewDeme(fn *functions.Function, par Params, rng *rand.Rand) *Deme {
	if par.N < 2 {
		panic("ga: population must have at least 2 individuals")
	}
	d := &Deme{Fn: fn, Par: par, rng: rng}
	bits := fn.TotalBits()
	d.pop = newPopulation(par.N, bits)
	d.next = newPopulation(par.N, bits)
	for i := range d.pop {
		for b := range d.pop[i].Bits {
			d.pop[i].Bits[b] = byte(rng.Intn(2))
		}
	}
	w := par.W
	if w < 1 {
		w = 1
	}
	d.worstW = make([]float64, w)
	d.ws = make([]float64, par.N)
	d.idx = make([]int, par.N)
	d.xbuf = make([]float64, fn.Vars)
	d.best.Bits = make([]byte, bits)
	d.scratch.Bits = make([]byte, bits)
	return d
}

// copyInto overwrites dst's chromosome and cached fitness with src's,
// reusing dst's bit buffer (both must be full-length chromosomes).
func copyInto(dst, src *Individual) {
	copy(dst.Bits, src.Bits)
	dst.Fit = src.Fit
	dst.Valid = src.Valid
}

// Gen returns the number of completed generations.
func (d *Deme) Gen() int64 { return d.gen }

// Evals returns the cumulative number of objective evaluations actually
// computed (fitness-cache misses).
func (d *Deme) Evals() int64 { return d.evals }

// Size returns the deme population size.
func (d *Deme) Size() int { return len(d.pop) }

// EvaluateAll computes objective values for individuals whose cache is
// invalid and returns how many evaluations that took. This is the
// paper's "software caching technique to reduce the recomputation of
// fitness values of surviving individuals" [19]: clones that passed
// through selection without crossover or mutation keep their value.
func (d *Deme) EvaluateAll() int {
	n := 0
	for i := range d.pop {
		if !d.pop[i].Valid {
			d.pop[i].Fit = d.Fn.EvalBitsInto(d.xbuf, d.pop[i].Bits, d.Par.Gray, d.rng)
			d.pop[i].Valid = true
			n++
		}
	}
	d.evals += int64(n)
	d.trackBest()
	d.pushWorst()
	return n
}

func (d *Deme) trackBest() {
	for i := range d.pop {
		if !d.bestSet || d.pop[i].Fit < d.best.Fit {
			copyInto(&d.best, &d.pop[i])
			d.bestSet = true
		}
	}
}

// pushWorst records the generation's worst raw objective in the
// fixed-size scaling-window ring: W slots, overwritten in rotation, so
// an arbitrarily long run holds steady memory.
func (d *Deme) pushWorst() {
	worst := d.pop[0].Fit
	for i := range d.pop {
		if d.pop[i].Fit > worst {
			worst = d.pop[i].Fit
		}
	}
	d.worstW[d.worstI] = worst
	d.worstI = (d.worstI + 1) % len(d.worstW)
	if d.worstN < len(d.worstW) {
		d.worstN++
	}
}

// worstWindowCap exposes the scaling-window ring's capacity to tests.
func (d *Deme) worstWindowCap() int { return cap(d.worstW) }

// Best returns a copy of the best individual found so far. EvaluateAll
// must have run at least once.
func (d *Deme) Best() Individual {
	if !d.bestSet {
		panic("ga: Best before EvaluateAll")
	}
	return d.best.Clone()
}

// CurrentBest returns the best objective value in the *current*
// population (as opposed to Best, the best ever seen). Convergence
// checks use this: "the subpopulation converged further" (§5.1.1) is a
// property of the population, not of history.
func (d *Deme) CurrentBest() float64 {
	best := math.Inf(1)
	for i := range d.pop {
		if d.pop[i].Valid && d.pop[i].Fit < best {
			best = d.pop[i].Fit
		}
	}
	return best
}

// AvgFit returns the population's mean objective value (current,
// evaluated members only).
func (d *Deme) AvgFit() float64 {
	s, n := 0.0, 0
	for i := range d.pop {
		if d.pop[i].Valid {
			s += d.pop[i].Fit
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// scaledCum converts the minimization objective into selection-weight
// prefix sums using DeJong's scaling-window rule: weight = baseline -
// f, where baseline is the worst raw objective seen in the last W
// generations. The returned slice (the deme's reused scratch) holds
// running left-to-right sums, accumulated in the same order the old
// per-weight total was, so the grand total is bit-identical.
func (d *Deme) scaledCum() []float64 {
	baseline := d.worstW[0]
	for _, w := range d.worstW[:d.worstN] {
		if w > baseline {
			baseline = w
		}
	}
	cum := d.ws[:len(d.pop)]
	sum := 0.0
	for i := range d.pop {
		w := baseline - d.pop[i].Fit
		if w < 0 {
			w = 0
		}
		sum += w
		cum[i] = sum
	}
	return cum
}

// rouletteIndex draws one population index proportionally to the
// weights whose prefix sums are cum (uniform if all weights are zero).
// It consumes exactly one RNG draw, like the linear subtractive scan it
// replaced: the selected index is the first whose prefix sum reaches
// the draw point, found by binary search.
func rouletteIndex(cum []float64, total float64, rng *rand.Rand) int {
	if total <= 0 {
		return rng.Intn(len(cum))
	}
	r := rng.Float64() * total
	if i := sort.SearchFloat64s(cum, r); i < len(cum) {
		return i
	}
	return len(cum) - 1
}

// NextGeneration applies roulette selection (on scaled fitness),
// single-point crossover with probability C, per-bit mutation with
// probability M, and elitism, replacing the population. G<1 keeps a
// (1-G) fraction of the old population untouched. The new generation
// is built in the deme's second buffer and the buffers swap, so the
// steady-state loop is allocation-free; the RNG draw sequence is
// identical to the old clone-per-child implementation.
func (d *Deme) NextGeneration() {
	cum := d.scaledCum()
	total := 0.0
	if len(cum) > 0 {
		total = cum[len(cum)-1]
	}

	n := len(d.pop)
	replace := n
	if d.Par.G < 1 {
		replace = int(d.Par.G * float64(n))
		if replace < 2 {
			replace = 2
		}
	}
	next := d.next
	filled := 0
	// Survivors (generation gap < 1): keep the best of the old
	// population beyond the replaced fraction.
	if replace < n {
		idx := d.sortedByFitness()
		for _, i := range idx[:n-replace] {
			copyInto(&next[filled], &d.pop[i])
			filled++
		}
	}

	for filled < n {
		c1 := &next[filled]
		c2 := &d.scratch // discarded when the pair overflows the population
		if filled+1 < n {
			c2 = &next[filled+1]
		}
		copyInto(c1, &d.pop[rouletteIndex(cum, total, d.rng)])
		copyInto(c2, &d.pop[rouletteIndex(cum, total, d.rng)])
		if d.rng.Float64() < d.Par.C {
			crossover(c1, c2, d.rng)
		}
		d.mutate(c1)
		d.mutate(c2)
		filled += 2
	}

	if d.Par.Elitist && d.bestSet {
		// The best-so-far individual replaces a random slot unchanged.
		copyInto(&next[d.rng.Intn(n)], &d.best)
	}
	d.pop, d.next = next, d.pop
	d.gen++
}

// sortedByFitness fills the deme's index scratch with population
// indices ordered fittest first.
func (d *Deme) sortedByFitness() []int {
	idx := d.idx[:len(d.pop)]
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int {
		switch {
		case d.pop[a].Fit < d.pop[b].Fit:
			return -1
		case d.pop[a].Fit > d.pop[b].Fit:
			return 1
		}
		return 0
	})
	return idx
}

// crossover applies single-point crossover in place, invalidating both
// children's cached fitness.
func crossover(a, b *Individual, rng *rand.Rand) {
	if len(a.Bits) != len(b.Bits) {
		panic("ga: crossover length mismatch")
	}
	if len(a.Bits) < 2 {
		return
	}
	point := 1 + rng.Intn(len(a.Bits)-1)
	for i := point; i < len(a.Bits); i++ {
		a.Bits[i], b.Bits[i] = b.Bits[i], a.Bits[i]
	}
	a.Valid = false
	b.Valid = false
}

// mutate flips each bit with probability M, invalidating the cache when
// any bit flips. The loop is the profile's hottest GA frame after the
// RNG itself, so the per-iteration state lives in locals.
func (d *Deme) mutate(ind *Individual) {
	bits, m, rng := ind.Bits, d.Par.M, d.rng
	valid := ind.Valid
	for i := range bits {
		if rng.Float64() < m {
			bits[i] ^= 1
			valid = false
		}
	}
	ind.Valid = valid
}

// BestK returns copies of the k fittest current individuals, fittest
// first. Individuals must be evaluated (call after EvaluateAll). The
// copies are freshly allocated in one contiguous backing arena (two
// allocations total) because callers hand them to the message layer,
// where receivers retain them indefinitely.
func (d *Deme) BestK(k int) []Individual {
	if k > len(d.pop) {
		k = len(d.pop)
	}
	idx := d.sortedByFitness()
	bits := d.Fn.TotalBits()
	out := newPopulation(k, bits)
	for j, i := range idx[:k] {
		copyInto(&out[j], &d.pop[i])
	}
	return out
}

// ReplaceWorst installs migrants over the worst current individuals
// (§4.2.1: "each processor then replaces the worst individuals in its
// subpopulation with these migrants"). Migrants arrive with their
// sender-computed fitness, so no re-evaluation is charged.
//
//nscc:commutative
func (d *Deme) ReplaceWorst(migrants []Individual) {
	if len(migrants) == 0 {
		return
	}
	if len(migrants) > len(d.pop) {
		// Keep the fittest, not the first-arrived: gossip fan-in can
		// exceed the deme size, and truncating in arrival order would
		// silently drop fitter migrants (and make the merge depend on
		// delivery order, breaking the commutativity this method
		// promises).
		migrants = bestOfPool(migrants, len(d.pop))
	}
	// Worst first.
	idx := d.idx[:len(d.pop)]
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int {
		switch {
		case d.pop[a].Fit > d.pop[b].Fit:
			return -1
		case d.pop[a].Fit < d.pop[b].Fit:
			return 1
		}
		return 0
	})
	for i := range migrants {
		m := &migrants[i]
		if len(m.Bits) != d.Fn.TotalBits() {
			panic(fmt.Sprintf("ga: migrant has %d bits, deme wants %d", len(m.Bits), d.Fn.TotalBits()))
		}
		copyInto(&d.pop[idx[i]], m)
	}
	d.trackBest()
}

// bestOfPool returns the k fittest individuals from a migrant pool,
// fittest first (used when more migrants arrive than slots exist). The
// returned individuals share the pool's bit buffers: callers only read
// them (ReplaceWorst copies bits into its own population).
func bestOfPool(pool []Individual, k int) []Individual {
	var ps poolSorter
	return ps.bestK(pool, k)
}

// poolSorter holds the reusable scratch of repeated top-k selections
// over migrant pools: the index permutation the sort actually moves,
// and the gathered top-k headers handed to ReplaceWorst. Sorting
// indices instead of Individual headers keeps the comparator from
// copying a 40-byte struct per comparison — the migration path's
// hottest frame in the profile. The selected order is identical: the
// sort's decisions depend only on the comparator's verdicts, which are
// the same Fit comparisons either way.
type poolSorter struct {
	idx []int
	top []Individual
}

// bestK returns the k fittest individuals of pool, fittest first. The
// returned slice is the sorter's scratch, valid until the next call;
// pool itself is never reordered.
func (ps *poolSorter) bestK(pool []Individual, k int) []Individual {
	idx := ps.idx[:0]
	for i := range pool {
		idx = append(idx, i)
	}
	ps.idx = idx
	slices.SortFunc(idx, func(a, b int) int {
		af, bf := pool[a].Fit, pool[b].Fit
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	})
	if k > len(pool) {
		k = len(pool)
	}
	top := ps.top[:0]
	for _, i := range idx[:k] {
		top = append(top, pool[i])
	}
	ps.top = top
	return top
}
