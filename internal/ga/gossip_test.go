package ga

import (
	"reflect"
	"testing"

	"nscc/internal/core"
	"nscc/internal/ga/functions"
	"nscc/internal/netsim"
)

func TestGossipRingNeighbors(t *testing.T) {
	nbrs, err := gossipNeighbors(GossipRing, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		want := []int{(i + 7) % 8, (i + 1) % 8}
		if want[0] > want[1] {
			want[0], want[1] = want[1], want[0]
		}
		if !reflect.DeepEqual(nbrs[i], want) {
			t.Fatalf("island %d neighbors %v, want %v", i, nbrs[i], want)
		}
	}
}

// TestGossipNeighborsWellFormed checks every gossip overlay's
// invariants at several sizes: mutual edges (push-pull symmetry), no
// self-loops, connectivity (a migrant can reach every island
// transitively), and determinism in the seed.
func TestGossipNeighborsWellFormed(t *testing.T) {
	for _, topo := range []Topology{GossipRing, GossipRandom, GossipClustered} {
		for _, p := range []int{2, 3, 4, 16, 100} {
			nbrs, err := gossipNeighbors(topo, p, 7)
			if err != nil {
				t.Fatalf("%v p=%d: %v", topo, p, err)
			}
			if len(nbrs) != p {
				t.Fatalf("%v p=%d: %d neighbor sets", topo, p, len(nbrs))
			}
			for i, ns := range nbrs {
				for _, j := range ns {
					if j == i {
						t.Fatalf("%v p=%d: island %d is its own neighbor", topo, p, i)
					}
					mutual := false
					for _, back := range nbrs[j] {
						if back == i {
							mutual = true
						}
					}
					if !mutual {
						t.Fatalf("%v p=%d: %d->%d not mutual", topo, p, i, j)
					}
				}
			}
			// Connectivity by BFS from island 0.
			seen := make([]bool, p)
			queue := []int{0}
			seen[0] = true
			for len(queue) > 0 {
				v := queue[0]
				queue = queue[1:]
				for _, w := range nbrs[v] {
					if !seen[w] {
						seen[w] = true
						queue = append(queue, w)
					}
				}
			}
			for i, s := range seen {
				if !s {
					t.Fatalf("%v p=%d: island %d unreachable from 0", topo, p, i)
				}
			}
			again, err := gossipNeighbors(topo, p, 7)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(nbrs, again) {
				t.Fatalf("%v p=%d: neighbor sets not deterministic in seed", topo, p)
			}
		}
	}
}

func TestParseTopology(t *testing.T) {
	for s, want := range map[string]Topology{
		"broadcast":        Broadcast,
		"ring":             Ring,
		"gossip-ring":      GossipRing,
		"gossip-random":    GossipRandom,
		"gossip-clustered": GossipClustered,
	} {
		got, err := ParseTopology(s)
		if err != nil || got != want {
			t.Fatalf("ParseTopology(%q) = %v, %v; want %v", s, got, err, want)
		}
		if got.String() != s {
			t.Fatalf("%v.String() = %q, want %q", got, got.String(), s)
		}
	}
	if _, err := ParseTopology("mesh"); err == nil {
		t.Fatal("ParseTopology accepted an unknown topology")
	}
}

// gossipRunConfig is a small NonStrict island run for the end-to-end
// gossip tests.
func gossipRunConfig(topo Topology, p int) IslandConfig {
	return IslandConfig{
		Fn: functions.F1, Par: DeJongParams(), P: p,
		Mode: core.NonStrict, Age: 10, Topology: topo,
		FixedGens: 30, MinGens: 30, MaxGens: 300, Target: 0.5,
		Seed: 3, Calib: DefaultCalibration(),
	}
}

// TestGossipRunConvergesWithLessTraffic runs the same configuration
// under broadcast and gossip dissemination: both must reach the
// quality target, and the gossip overlay must put far fewer bytes on
// the wire — the point of the whole construction. The comparison runs
// on the crossbar switch, where a multicast costs one copy per
// destination; on the flat shared bus a multicast is a single frame
// however many islands listen, so dissemination fan-out is invisible
// there (and that bus saturates long before 1000 nodes anyway).
func TestGossipRunConvergesWithLessTraffic(t *testing.T) {
	const p = 12
	onSwitch := func(topo Topology) IslandConfig {
		cfg := gossipRunConfig(topo, p)
		sw := netsim.DefaultSwitchConfig()
		cfg.Switch = &sw
		return cfg
	}
	bres, err := RunIsland(onSwitch(Broadcast))
	if err != nil {
		t.Fatal(err)
	}
	gres, err := RunIsland(onSwitch(GossipRandom))
	if err != nil {
		t.Fatal(err)
	}
	if !bres.ReachedTarget || !gres.ReachedTarget {
		t.Fatalf("reached target: broadcast=%v gossip=%v; want both", bres.ReachedTarget, gres.ReachedTarget)
	}
	if gres.NetBytes*2 > bres.NetBytes {
		t.Fatalf("gossip moved %d bytes vs broadcast %d; want <1/2", gres.NetBytes, bres.NetBytes)
	}
}

// TestGossipRunsOnAllOverlays exercises each overlay end to end,
// including the tiny-P degenerate cases.
func TestGossipRunsOnAllOverlays(t *testing.T) {
	for _, topo := range []Topology{GossipRing, GossipRandom, GossipClustered} {
		for _, p := range []int{1, 2, 9} {
			res, err := RunIsland(gossipRunConfig(topo, p))
			if err != nil {
				t.Fatalf("%v p=%d: %v", topo, p, err)
			}
			if !res.ReachedTarget {
				t.Fatalf("%v p=%d: did not reach target", topo, p)
			}
		}
	}
}

// TestGossipOnHierFabric runs gossip dissemination on the hierarchical
// rack/spine fabric — the pairing the 1000+-node scaling experiments
// use — and checks determinism across two identical runs.
func TestGossipOnHierFabric(t *testing.T) {
	run := func() IslandResult {
		cfg := gossipRunConfig(GossipRandom, 16)
		h := netsim.DefaultHierConfig()
		h.RackSize = 4
		cfg.Hier = &h
		res, err := RunIsland(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !a.ReachedTarget {
		t.Fatal("gossip on hier fabric did not reach target")
	}
	if a.Completion != b.Completion || a.Best != b.Best || a.Messages != b.Messages {
		t.Fatalf("hier gossip run not deterministic: %+v vs %+v", a, b)
	}
}
