package ga

import (
	"math"

	"nscc/internal/core"
	"nscc/internal/faults"
	"nscc/internal/ga/functions"
	"nscc/internal/metrics"
	"nscc/internal/netsim"
	"nscc/internal/pvm"
	"nscc/internal/sim"
	"nscc/internal/simrace"
	"nscc/internal/trace"
	"nscc/internal/tseries"
)

// doneTag carries the "a subpopulation has converged past the target"
// broadcast that terminates asynchronous and Global_Read runs.
const doneTag = 9000

// doneMsgSize is the network size of a termination notice.
const doneMsgSize = 8

// sentinelIter is the iteration stamp of the final write an exiting
// island publishes so that no peer ever blocks on its location again.
const sentinelIter int64 = 1 << 60

// Topology names the migration pattern of the island GA (§3.1: "it is
// controlled by several parameters: interval, rate, and topology").
type Topology int

const (
	// Broadcast is the paper's configuration: every island sends its
	// best N/2 to every other island each migration (empirically the
	// fastest-converging island layout per the Cantu-Paz survey [3]).
	Broadcast Topology = iota
	// Ring sends migrants only to the next island (i+1 mod P): far
	// less traffic, slower mixing.
	Ring
	// GossipRing exchanges migrants push-pull with the two ring
	// neighbors (i±1): the sparsest connected overlay, diameter P/2.
	GossipRing
	// GossipRandom exchanges migrants over a ring backbone plus random
	// chords (symmetric degree ~4, logarithmic diameter) — the classic
	// gossip overlay, and the recommended topology at 1000+ islands.
	GossipRandom
	// GossipClustered exchanges migrants within dense communities
	// joined by single bridges — the overlay shape of a
	// rack-partitioned cluster.
	GossipClustered
)

func (t Topology) String() string {
	switch t {
	case Broadcast:
		return "broadcast"
	case Ring:
		return "ring"
	case GossipRing:
		return "gossip-ring"
	case GossipRandom:
		return "gossip-random"
	case GossipClustered:
		return "gossip-clustered"
	default:
		return "Topology(?)"
	}
}

// IslandConfig describes one parallel island-GA run.
type IslandConfig struct {
	Fn   *functions.Function
	Par  Params // per-deme parameters (Par.N is the deme size)
	P    int    // number of islands / processors
	Mode core.Mode
	Age  int64 // Global_Read staleness bound (NonStrict mode)

	// Topology selects the migration pattern (default Broadcast, the
	// paper's setting).
	Topology Topology
	// Interval migrates every Interval generations (default 1, the
	// paper's setting). With Global_Read, ages are still measured in
	// generations, so an age below Interval-1 blocks until the next
	// migration round.
	Interval int64

	// FixedGens is the generation count for Sync mode (the paper runs
	// the synchronous program for a fixed 1000 generations).
	FixedGens int64
	// Target is the population-average objective value asynchronous and
	// NonStrict runs must converge to (the synchronous run's final
	// average, the paper's solution-quality metric, §4.3/§5.1.1); a run
	// stops as soon as any subpopulation's average fitness reaches it.
	// Average fitness, unlike best-so-far, does not saturate at the
	// encoding's floor until the whole population has converged, so it
	// is the meaningful "converged further than the synchronous
	// version" test.
	Target float64
	// MinGens is the minimum generation count for asynchronous and
	// NonStrict runs — the synchronous program's budget. The paper's
	// comparison runs the competitors "for enough generations so that
	// the subpopulation converged further (better) than the synchronous
	// version"; with equal budgets and the quality test, a variant
	// whose staleness hurts convergence pays in extra generations,
	// never in fewer.
	MinGens int64
	// MaxGens caps asynchronous/NonStrict runs that fail to reach the
	// target (the paper observes fully asynchronous GAs may need far
	// more generations under stale migration).
	MaxGens int64

	// DynamicAge enables the paper's future-work extension (§6):
	// instead of a fixed staleness bound, each island adapts its age at
	// run time — multiplicative increase while Global_Read blocks
	// (stale tolerance is too tight for current conditions), additive
	// decrease while reads are satisfied immediately (tolerance can be
	// tightened for fresher migrants). Age is the starting value.
	DynamicAge bool

	Seed     int64
	Calib    Calibration
	NodeOpts core.Options

	// Net overrides the bus network model (nil = netsim.DefaultConfig()).
	Net *netsim.Config
	// Switch, if set, runs on an SP2-style crossbar switch instead of
	// the shared Ethernet.
	Switch *netsim.SwitchConfig
	// Hier, if set, runs on the hierarchical rack/spine fabric —
	// per-rack shared buses behind store-and-forward uplinks — the
	// interconnect a 1000+-island run needs (a single shared bus
	// saturates at a few tens of chattering islands). Takes precedence
	// over Switch.
	Hier *netsim.HierConfig
	// LoaderBps, if positive, runs the background network loader at
	// this offered bit rate on two extra nodes (§5.2).
	LoaderBps float64
	// PVM overrides the messaging overheads (nil = pvm.DefaultConfig()).
	PVM *pvm.Config

	// Faults, if non-nil, wraps the fabric in the fault injector and
	// applies the plan's loss/delay/reorder/duplicate/crash/partition
	// schedules to the run. Nil leaves the fabric untouched (the
	// fault layer is strictly opt-in).
	Faults *faults.Plan
	// Reliable runs the message layer with sequence-numbered
	// ack/retransmit delivery (pvm.Config.Reliable). It composes with
	// PVM: when both are set, Reliable overrides the override's flag.
	Reliable bool
	// ReadTimeout, if positive, bounds Global_Read blocking
	// (core.Options.ReadTimeout): a read that cannot meet its bound in
	// time degrades to the cached value and counts a staleness
	// violation instead of deadlocking on a lost update.
	ReadTimeout sim.Duration

	// Tracer, if set, receives the run's full event stream (sim process
	// lifecycle, network frames, messages, Global_Reads, per-generation
	// app spans). Nil keeps every hot path on its zero-cost branch.
	Tracer trace.Tracer

	// RaceCheck runs the simulated-time race classifier over the run and
	// fills Telemetry.Races. The checker is strictly passive: virtual
	// time, message order, and the GA result are identical with it on or
	// off.
	RaceCheck bool

	// Series, if set, records the run's windowed simulated-time series
	// (core staleness/timeouts, pvm queue depth/retransmits, net busy
	// time/drops, gauge "ga.avg_fitness" per generation, gauge
	// "pvm.warp" copied from the warp series) into the given set and
	// exports them in Telemetry.Series. Strictly observational.
	Series *tseries.Set
}

// IslandResult reports one parallel run.
type IslandResult struct {
	Completion    sim.Duration // virtual time at which the last island exited
	Best          float64      // best objective ever seen, over all islands
	FinalBest     float64      // best objective in the final populations (quality target for async/GR runs)
	Avg           float64      // mean of final per-island population averages
	Gens          []int64      // generations completed per island
	OptimumFound  bool
	ReachedTarget bool // false if the run hit MaxGens without converging

	Messages    int64        // frames offered to the network
	NetBytes    int64        // bytes carried
	QueueDelay  sim.Duration // cumulative bus queuing delay
	WarpMean    float64
	WarpMax     float64
	WarpWindows []float64    // per-100ms mean warp (instability time series)
	BlockedTime sim.Duration // total Global_Read blocking across islands
	Blocked     int64        // blocking Global_Read count
	Coalesced   int64

	// Telemetry is the machine-readable observability block: per-task
	// message/coherence accounting, network aggregates, and the merged
	// observed-staleness histogram.
	Telemetry *metrics.Telemetry
}

// RunIsland executes one island-GA configuration on a fresh simulated
// cluster and reports the result. The run is deterministic in cfg.Seed.
func RunIsland(cfg IslandConfig) (IslandResult, error) {
	if cfg.P < 1 {
		panic("ga: island run needs at least 1 processor")
	}
	if cfg.Mode == core.Sync && cfg.FixedGens <= 0 {
		panic("ga: Sync mode requires FixedGens")
	}
	if cfg.Mode != core.Sync && cfg.MaxGens <= 0 {
		panic("ga: Async/NonStrict modes require MaxGens")
	}

	eng := sim.NewEngine(cfg.Seed)
	eng.SetTracer(cfg.Tracer)
	var net netsim.Fabric
	if cfg.Hier != nil {
		net = netsim.NewHier(eng, *cfg.Hier)
	} else if cfg.Switch != nil {
		sw := netsim.NewSwitch(eng, *cfg.Switch)
		sw.SetSeries(cfg.Series)
		net = sw
	} else {
		netCfg := netsim.DefaultConfig()
		if cfg.Net != nil {
			netCfg = *cfg.Net
		}
		bus := netsim.New(eng, netCfg)
		bus.SetSeries(cfg.Series)
		net = bus
	}
	if cfg.Faults != nil {
		net = faults.Wrap(net, cfg.Faults)
	}
	pvmCfg := pvm.DefaultConfig()
	if cfg.PVM != nil {
		pvmCfg = *cfg.PVM
	}
	if cfg.Reliable {
		pvmCfg.Reliable = true
	}
	// Message pooling is safe only without fault injection: duplication
	// re-delivers the same payload pointer, which would double-release.
	pvmCfg.Pooling = cfg.Faults == nil
	machine := pvm.NewMachine(eng, net, pvmCfg)
	machine.SetSeries(cfg.Series)
	warp := metrics.NewWarpMeter()
	warpSeries := metrics.NewWarpSeries(100 * sim.Millisecond)
	serFit := cfg.Series.Gauge("ga.avg_fitness")
	machine.ArrivalHook = func(dst int, m *pvm.Message) {
		warp.Observe(dst, m.Src, m.SentAt, m.ArrivedAt)
		warpSeries.Observe(dst, m.Src, m.SentAt, m.ArrivedAt)
	}
	if cfg.LoaderBps > 0 {
		netsim.StartLoader(net, cfg.LoaderBps, 1024)
	}
	nodeOpts := cfg.NodeOpts
	if cfg.ReadTimeout > 0 {
		nodeOpts.ReadTimeout = cfg.ReadTimeout
	}
	nodeOpts.Series = cfg.Series
	var rc *simrace.Checker
	if cfg.RaceCheck {
		rc = simrace.New(eng)
		rc.Attach(machine)
		nodeOpts.Races = rc
	}

	interval := cfg.Interval
	if interval < 1 {
		interval = 1
	}

	// Shared locations: island i's migrant block, read by the islands
	// the topology wires it to (sources[i]: whose blocks island i
	// reads; the gossip overlays make the relation symmetric).
	k := cfg.Par.N / 2
	locs := make([]*core.Location, cfg.P)
	sources, readers, err := topologySources(cfg.Topology, cfg.P, cfg.Seed)
	if err != nil {
		return IslandResult{}, err
	}
	members := make([]int, cfg.P)
	for i := 0; i < cfg.P; i++ {
		members[i] = i
		locs[i] = &core.Location{
			ID:      i,
			Name:    "migrants",
			Writer:  i,
			Readers: readers[i],
			Size:    MigrantBlockBytes(cfg.Fn, k),
		}
	}
	barrier := core.NewMsgBarrier(members)

	res := IslandResult{
		Gens:          make([]int64, cfg.P),
		Best:          math.Inf(1),
		FinalBest:     math.Inf(1),
		ReachedTarget: cfg.Mode == core.Sync,
	}
	finalAvgs := make([]float64, cfg.P)
	coreStats := make([]core.Stats, cfg.P)
	var staleHist metrics.Histogram
	var exitTimes []sim.Time
	remaining := cfg.P

	for i := 0; i < cfg.P; i++ {
		i := i
		machine.Spawn("island", func(task *pvm.Task) {
			node := core.NewNode(task, nodeOpts)
			for _, l := range locs {
				node.Register(l)
			}
			deme := NewDeme(cfg.Fn, cfg.Par, task.Proc().Rng())
			jit := NewJitterer(cfg.Calib, task.Proc().Rng())
			age := cfg.Age
			var lastBlocked int64
			// Migration scratch, reused every round: the incoming pool
			// and the sort buffers of its top-k selection.
			pool := make([]Individual, 0, k*len(sources[i])+k)
			var poolSort poolSorter

			finish := func() {
				res.Gens[i] = deme.Gen()
				finalAvgs[i] = deme.AvgFit()
				if b := deme.Best().Fit; b < res.Best {
					res.Best = b
				}
				if b := deme.CurrentBest(); b < res.FinalBest {
					res.FinalBest = b
				}
				st := node.Stats()
				res.BlockedTime += st.BlockedTime
				res.Blocked += st.BlockedReads
				res.Coalesced += st.Coalesced
				coreStats[i] = st
				staleHist.Merge(node.Staleness())
				exitTimes = append(exitTimes, task.Now())
				remaining--
				if remaining == 0 {
					eng.Stop()
				}
			}

			for gen := int64(0); ; gen++ {
				genStart := task.Now()
				evals := deme.EvaluateAll()
				cost := cfg.Calib.GenCost(cfg.Fn, evals, deme.Size())
				task.Compute(sim.DurationOf(cost.Seconds() * jit.Next()))

				if cfg.Mode == core.Sync {
					if gen >= cfg.FixedGens {
						finish()
						return
					}
				} else {
					done := task.NRecv(pvm.Any, doneTag) != nil
					reached := gen >= cfg.MinGens && deme.AvgFit() <= cfg.Target
					if reached {
						res.ReachedTarget = true
					}
					if done || reached || gen >= cfg.MaxGens {
						// Unblock everyone, tell everyone, leave.
						node.Write(locs[i], sentinelIter, []Individual(nil))
						if !done {
							task.Bcast(doneTag, doneMsgSize, nil)
						}
						finish()
						return
					}
				}

				// Migration round: publish my best k, incorporate the
				// blocks of my topological sources.
				if gen%interval == 0 {
					node.Write(locs[i], gen, deme.BestK(k))
					pool = pool[:0]
					for _, j := range sources[i] {
						switch cfg.Mode {
						case core.Sync:
							// The checked assertion matters under a
							// ReadTimeout: a degraded read can return a
							// zero Update whose Value is nil.
							u := node.GlobalRead(locs[j], gen, 0)
							if vs, ok := u.Value.([]Individual); ok {
								pool = append(pool, vs...)
							}
						case core.Async:
							//nscc:tolerates-stale loc=migrants -- stale migrants only delay selection pressure (§4.2.1); ReplaceWorst is order-free
							if u, ok := node.Read(locs[j]); ok {
								if vs, ok := u.Value.([]Individual); ok {
									pool = append(pool, vs...)
								}
							}
						case core.NonStrict:
							//nscc:tolerates-stale loc=migrants -- the Global_Read age bound is the tolerance contract; simrace classifies the residue
							u := node.GlobalRead(locs[j], gen, age)
							if vs, ok := u.Value.([]Individual); ok {
								pool = append(pool, vs...)
							}
						}
					}
					deme.ReplaceWorst(poolSort.bestK(pool, k))
				}

				if cfg.DynamicAge && cfg.Mode == core.NonStrict {
					if b := node.Stats().BlockedReads; b > lastBlocked {
						lastBlocked = b
						age *= 2
						if age > 60 {
							age = 60
						}
						if age == 0 {
							age = 1
						}
					} else if age > 0 {
						age--
					}
				}

				serFit.Add(task.Now(), deme.AvgFit())
				if tr := task.Tracer(); tr != nil {
					// One span per generation's compute+migration work
					// (barrier waiting, in Sync mode, stays outside it).
					tr.Emit(trace.Event{TS: int64(genStart), Dur: int64(task.Now().Sub(genStart)),
						Ph: trace.PhaseSpan, Pid: trace.PidApp, Tid: i, Cat: "ga", Name: "gen",
						K1: "gen", V1: gen})
				}
				if cfg.Mode == core.Sync {
					barrier.Wait(task)
				}
				deme.NextGeneration()
			}
		})
	}

	if err := eng.Run(); err != nil {
		return res, err
	}
	for _, t := range exitTimes {
		if d := t.Sub(0); d > res.Completion {
			res.Completion = d
		}
	}
	s := 0.0
	for _, a := range finalAvgs {
		s += a
	}
	res.Avg = s / float64(cfg.P)
	res.OptimumFound = cfg.Fn.OptimumFound(res.Best)
	st := net.Stats()
	res.Messages = st.Frames
	res.NetBytes = st.Bytes
	res.QueueDelay = st.QueueDelay
	res.WarpMean = warp.Mean()
	res.WarpMax = warp.Max()
	res.WarpWindows = warpSeries.Windows()

	tasks := machine.TaskTelemetry()
	var violations int64
	for i := range tasks {
		if i < len(coreStats) {
			cs := coreStats[i]
			tasks[i].GlobalReads = cs.GlobalReads
			tasks[i].BlockedReads = cs.BlockedReads
			tasks[i].BlockedSecs = cs.BlockedTime.Seconds()
			tasks[i].ReadTimeouts = cs.ReadTimeouts
			violations += cs.ReadTimeouts
		}
	}
	res.Telemetry = &metrics.Telemetry{
		Variant:             cfg.Mode.String(),
		Age:                 cfg.Age,
		CompletionSecs:      res.Completion.Seconds(),
		Tasks:               tasks,
		Net:                 st.Telemetry(eng.Now().Sub(0)),
		Staleness:           staleHist.Summary(),
		WarpMean:            res.WarpMean,
		WarpMax:             res.WarpMax,
		StalenessViolations: violations,
	}
	if rc != nil {
		res.Telemetry.Races = rc.Telemetry()
		res.Telemetry.RaceLocations = rc.Report().Locations
	}
	if cfg.Series != nil {
		// Copy the warp series into the set as gauge "pvm.warp" (one
		// sample per 100 ms window, at the window's start) so the export
		// carries warp alongside the other windowed series.
		serWarp := cfg.Series.Gauge("pvm.warp")
		for w, v := range res.WarpWindows {
			serWarp.Add(sim.Time(int64(w)*int64(100*sim.Millisecond)), v)
		}
		res.Telemetry.Series = cfg.Series.Summaries()
	}
	return res, nil
}
