package ga

import (
	"math/rand"

	"nscc/internal/ga/functions"
	"nscc/internal/sim"
)

// Calibration maps GA work to virtual CPU time on an RS/6000-591-class
// node (77 MHz, §4.1). The absolute values matter less than the
// resulting communication-to-computation ratio: DeJong-scale objective
// functions are cheap, so an island GA broadcasting N/2 individuals per
// generation over a 10 Mbps Ethernet is communication-hungry — exactly
// the regime the paper studies.
type Calibration struct {
	EvalBase    sim.Duration // fixed cost per objective evaluation
	EvalPerVar  sim.Duration // additional cost per decision variable
	GenPerIndiv sim.Duration // selection/copy overhead per individual per generation

	// Load skew (§2.1: "a few lightly loaded nodes may run ahead...
	// heavily loaded nodes are slow in finishing their iterations").
	// Each generation's compute cost is multiplied by a lognormal-ish
	// jitter; in addition, nodes enter *slow patches* — a competing job
	// or daemon that slows the node by SlowFactor for a stretch of
	// generations (geometric, mean SlowLen), starting with probability
	// SlowProb per generation. Correlated patches are what make nodes
	// genuinely drift apart: this is the load skew that staleness
	// tolerance (age > 0) rides over and barriers amplify.
	JitterStd  float64
	SlowProb   float64
	SlowFactor float64
	SlowLen    float64
}

// DefaultCalibration returns the paper-scale constants.
func DefaultCalibration() Calibration {
	return Calibration{
		EvalBase:    40 * sim.Microsecond,
		EvalPerVar:  3 * sim.Microsecond,
		GenPerIndiv: 20 * sim.Microsecond,
		JitterStd:   0.15,
		SlowProb:    0.015,
		SlowFactor:  2.5,
		SlowLen:     10,
	}
}

// Jitterer draws per-generation load-skew factors with patch
// correlation. One Jitterer per node, fed by that node's rng.
type Jitterer struct {
	c        Calibration
	rng      *rand.Rand
	slowLeft int
}

// NewJitterer returns a skew source for one node.
func NewJitterer(c Calibration, rng *rand.Rand) *Jitterer {
	return &Jitterer{c: c, rng: rng}
}

// Next returns the multiplicative cost factor for the next generation.
func (j *Jitterer) Next() float64 {
	f := 1 + abs(j.rng.NormFloat64())*j.c.JitterStd
	if j.slowLeft > 0 {
		j.slowLeft--
		f *= j.c.SlowFactor
	} else if j.c.SlowProb > 0 && j.rng.Float64() < j.c.SlowProb {
		// Geometric patch length with mean SlowLen.
		if j.c.SlowLen > 1 {
			for j.rng.Float64() > 1/j.c.SlowLen {
				j.slowLeft++
			}
		}
		f *= j.c.SlowFactor
	}
	return f
}

// InSlowPatch reports whether the node is currently inside a patch.
func (j *Jitterer) InSlowPatch() bool { return j.slowLeft > 0 }

// EvalCost is the virtual CPU time of one objective evaluation.
func (c Calibration) EvalCost(fn *functions.Function) sim.Duration {
	return c.EvalBase + sim.Duration(fn.Vars)*c.EvalPerVar
}

// GenCost is the virtual CPU time of one generation that computed evals
// objective evaluations on a deme of n individuals, before jitter.
func (c Calibration) GenCost(fn *functions.Function, evals, n int) sim.Duration {
	return sim.Duration(evals)*c.EvalCost(fn) + sim.Duration(n)*c.GenPerIndiv
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// MigrantBlockBytes is the network payload of a k-individual migrant
// block: packed chromosome bits plus an 8-byte fitness per individual,
// plus a small header.
func MigrantBlockBytes(fn *functions.Function, k int) int {
	return 16 + k*(fn.Bytes()+8)
}
