package ga

import (
	"math/rand"

	"nscc/internal/ga/functions"
	"nscc/internal/sim"
)

// SerialResult reports a sequential GA run.
type SerialResult struct {
	Gens         int64
	Evals        int64        // objective evaluations computed (after caching)
	Best         float64      // best objective value found
	Avg          float64      // final population mean objective
	Time         sim.Duration // modeled uniprocessor completion time
	OptimumFound bool
}

// RunSerial executes the optimized sequential GA: a single population of
// totalPop individuals (the parallel runs scale total population
// linearly with processors, §4.2.1, so the serial baseline uses the same
// total) run for gens generations with fitness caching. Virtual time
// models an RS/6000-class uniprocessor via calib, including the same
// load jitter the cluster nodes see.
func RunSerial(fn *functions.Function, par Params, totalPop int, gens int64, seed int64, calib Calibration) SerialResult {
	par.N = totalPop
	rng := rand.New(rand.NewSource(seed))
	d := NewDeme(fn, par, rng)
	jit := NewJitterer(calib, rng)

	var elapsed sim.Duration
	for g := int64(0); g < gens; g++ {
		evals := d.EvaluateAll()
		cost := calib.GenCost(fn, evals, d.Size())
		elapsed += sim.DurationOf(cost.Seconds() * jit.Next())
		d.NextGeneration()
	}
	d.EvaluateAll() // settle the final generation's fitness
	best := d.Best().Fit
	return SerialResult{
		Gens:         d.Gen(),
		Evals:        d.Evals(),
		Best:         best,
		Avg:          d.AvgFit(),
		Time:         elapsed,
		OptimumFound: fn.OptimumFound(best),
	}
}
