package ga

import (
	"fmt"
	"sort"

	"nscc/internal/graph"
)

// Gossip migrant dissemination. The paper's Broadcast topology sends
// every island's migrant block to every other island — O(P²) update
// traffic per migration round, which is what stops the simulated
// cluster well short of 1000 nodes. The gossip topologies replace the
// all-to-all with a push-pull peer exchange over a sparse symmetric
// neighbor set: each island's migrant location is read by (and its
// updates multicast to) only its neighbors, and each island pulls only
// its neighbors' blocks. Good migrants still reach everyone — they
// spread transitively, one hop per migration round — so convergence
// degrades with the overlay's diameter rather than collapsing, while
// per-round traffic drops to O(P·degree).
//
// The neighbor sets are built from the graph package's topology
// generators (the same families the graph workloads run on), with
// edges symmetrized: migrant exchange is push-pull, so if i reads j's
// block, j also reads i's.

// gossip reports whether the topology is one of the gossip overlays.
func (t Topology) gossip() bool {
	switch t {
	case GossipRing, GossipRandom, GossipClustered:
		return true
	}
	return false
}

// ParseTopology resolves a -topology flag value.
func ParseTopology(s string) (Topology, error) {
	switch s {
	case "broadcast":
		return Broadcast, nil
	case "ring":
		return Ring, nil
	case "gossip-ring":
		return GossipRing, nil
	case "gossip-random":
		return GossipRandom, nil
	case "gossip-clustered":
		return GossipClustered, nil
	}
	return 0, fmt.Errorf("ga: unknown topology %q (want broadcast, ring, gossip-ring, gossip-random, or gossip-clustered)", s)
}

// gossipNeighbors builds the symmetric per-island neighbor sets for a
// gossip topology over p islands, deterministic in (t, p, seed). Each
// set is sorted, self-free, and mutual (j ∈ nbrs[i] ⇔ i ∈ nbrs[j]);
// the underlying generators guarantee the overlay is connected (they
// all carry a ring backbone or a cluster-level ring).
func gossipNeighbors(t Topology, p int, seed int64) ([][]int, error) {
	if p <= 1 {
		return make([][]int, p), nil
	}
	var (
		g   *graph.Graph
		err error
	)
	switch t {
	case GossipRandom:
		// Ring backbone plus p random chords: symmetric degree ~4,
		// logarithmic diameter — the classic gossip overlay.
		g, err = graph.Random(p, p, seed)
	case GossipClustered:
		// Dense communities joined by single bridges: the overlay shape
		// of a rack-partitioned cluster, and the hardest case for
		// migrant spread (bridges are the only inter-cluster paths).
		// Below the generator's n ≥ 2k floor there is nothing to
		// cluster; degrade to the ring.
		if k := clusterCount(p); p >= 2*k {
			g, err = graph.Clustered(p, k, seed)
		} else {
			g, err = graph.Ring(p)
		}
	default: // GossipRing
		g, err = graph.Ring(p)
	}
	if err != nil {
		return nil, err
	}
	sets := make([]map[int]bool, p)
	for i := range sets {
		sets[i] = make(map[int]bool)
	}
	for v := 0; v < p; v++ {
		for e := g.InOff[v]; e < g.InOff[v+1]; e++ {
			u := int(g.InSrc[e])
			sets[u][v] = true
			sets[v][u] = true
		}
	}
	nbrs := make([][]int, p)
	for i, set := range sets {
		for j := range set { //nscc:maporder -- sort.Ints below launders the iteration order

			nbrs[i] = append(nbrs[i], j)
		}
		sort.Ints(nbrs[i])
	}
	return nbrs, nil
}

// clusterCount picks the community count for the clustered overlay:
// √p-ish clusters keep both the cluster size and the cluster-level
// ring diameter sublinear.
func clusterCount(p int) int {
	k := 2
	for k*k < p {
		k++
	}
	if k < 2 {
		k = 2
	}
	return k
}

// topologySources resolves cfg's migration pattern into, for each
// island, the list of islands whose migrant blocks it reads
// (sources[i]) and the list that reads island i's block (readers[i]).
// For the dense topologies these mirror RunIsland's historical wiring;
// for gossip overlays both are the symmetric neighbor set.
func topologySources(t Topology, p int, seed int64) (sources, readers [][]int, err error) {
	if t.gossip() {
		nbrs, err := gossipNeighbors(t, p, seed)
		if err != nil {
			return nil, nil, err
		}
		return nbrs, nbrs, nil
	}
	sources = make([][]int, p)
	readers = make([][]int, p)
	for i := 0; i < p; i++ {
		switch t {
		case Ring:
			if p > 1 {
				readers[i] = []int{(i + 1) % p}
			}
		default: // Broadcast
			for j := 0; j < p; j++ {
				if j != i {
					readers[i] = append(readers[i], j)
				}
			}
		}
		for _, r := range readers[i] {
			sources[r] = append(sources[r], i)
		}
	}
	return sources, readers, nil
}
