package ga

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nscc/internal/ga/functions"
)

func testDeme(t *testing.T, fn *functions.Function, seed int64) *Deme {
	t.Helper()
	return NewDeme(fn, DeJongParams(), rand.New(rand.NewSource(seed)))
}

func TestDeJongParams(t *testing.T) {
	p := DeJongParams()
	if p.N != 50 || p.C != 0.6 || p.M != 0.001 || p.G != 1 || p.W != 1 || !p.Elitist {
		t.Fatalf("DeJong params wrong: %+v", p)
	}
}

func TestNewDemeShape(t *testing.T) {
	d := testDeme(t, functions.F1, 1)
	if d.Size() != 50 {
		t.Fatalf("size %d", d.Size())
	}
	seen0, seen1 := false, false
	for _, ind := range d.pop {
		if len(ind.Bits) != functions.F1.TotalBits() {
			t.Fatalf("chromosome length %d", len(ind.Bits))
		}
		for _, b := range ind.Bits {
			switch b {
			case 0:
				seen0 = true
			case 1:
				seen1 = true
			default:
				t.Fatalf("bit %d", b)
			}
		}
	}
	if !seen0 || !seen1 {
		t.Fatal("initial population is not random")
	}
}

func TestTinyPopulationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("N=1 deme did not panic")
		}
	}()
	par := DeJongParams()
	par.N = 1
	NewDeme(functions.F1, par, rand.New(rand.NewSource(1)))
}

func TestEvaluateAllCountsAndCaches(t *testing.T) {
	d := testDeme(t, functions.F1, 2)
	if n := d.EvaluateAll(); n != 50 {
		t.Fatalf("first evaluation computed %d, want 50", n)
	}
	if n := d.EvaluateAll(); n != 0 {
		t.Fatalf("re-evaluation computed %d, want 0 (cache)", n)
	}
	d.NextGeneration()
	n := d.EvaluateAll()
	if n == 0 || n > 50 {
		t.Fatalf("after a generation, %d evals; want in (0,50]", n)
	}
	// With C=0.6 and tiny mutation, a noticeable fraction of children
	// are untouched clones whose fitness survives — that's the paper's
	// caching optimization.
	saved := 0
	dd := testDeme(t, functions.F1, 3)
	dd.EvaluateAll()
	for g := 0; g < 20; g++ {
		dd.NextGeneration()
		saved += dd.Size() - dd.EvaluateAll()
	}
	if saved < 20*dd.Size()/10 {
		t.Fatalf("caching saved only %d of %d evaluations", saved, 20*dd.Size())
	}
}

func TestBestBeforeEvaluatePanics(t *testing.T) {
	d := testDeme(t, functions.F1, 1)
	defer func() {
		if recover() == nil {
			t.Error("Best before EvaluateAll did not panic")
		}
	}()
	d.Best()
}

func TestEvolutionImproves(t *testing.T) {
	d := testDeme(t, functions.F1, 4)
	d.EvaluateAll()
	first := d.Best().Fit
	for g := 0; g < 100; g++ {
		d.NextGeneration()
		d.EvaluateAll()
	}
	last := d.Best().Fit
	if last >= first {
		t.Fatalf("no improvement: %v -> %v", first, last)
	}
	if last > 1.0 {
		t.Fatalf("F1 after 100 generations still at %v", last)
	}
}

func TestElitismMonotone(t *testing.T) {
	d := testDeme(t, functions.F6, 5)
	d.EvaluateAll()
	prev := d.Best().Fit
	for g := 0; g < 50; g++ {
		d.NextGeneration()
		d.EvaluateAll()
		cur := d.Best().Fit
		if cur > prev+1e-12 {
			t.Fatalf("best-so-far regressed at gen %d: %v -> %v", g, prev, cur)
		}
		prev = cur
	}
}

func TestGenerationGapKeepsSurvivors(t *testing.T) {
	par := DeJongParams()
	par.G = 0.5
	d := NewDeme(functions.F1, par, rand.New(rand.NewSource(6)))
	d.EvaluateAll()
	bestBefore := d.Best().Fit
	d.NextGeneration()
	// Half the population survives; the best survivor must be present
	// with valid fitness equal or better than before.
	surviving := 0
	for _, ind := range d.pop {
		if ind.Valid && ind.Fit <= bestBefore+1e-12 {
			surviving++
		}
	}
	if surviving == 0 {
		t.Fatal("generation gap 0.5 kept no good survivors")
	}
}

func TestCrossoverSwapsTails(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := Individual{Bits: []byte{0, 0, 0, 0, 0, 0, 0, 0}, Fit: 1, Valid: true}
	b := Individual{Bits: []byte{1, 1, 1, 1, 1, 1, 1, 1}, Fit: 2, Valid: true}
	crossover(&a, &b, rng)
	if a.Valid || b.Valid {
		t.Fatal("crossover did not invalidate fitness")
	}
	// Each child must be a prefix of one parent and suffix of the other.
	point := 0
	for i, bit := range a.Bits {
		if bit == 1 {
			point = i
			break
		}
	}
	if point == 0 {
		t.Fatalf("crossover point at 0 or no swap: %v", a.Bits)
	}
	for i := range a.Bits {
		wantA, wantB := byte(0), byte(1)
		if i >= point {
			wantA, wantB = 1, 0
		}
		if a.Bits[i] != wantA || b.Bits[i] != wantB {
			t.Fatalf("not a single-point crossover: %v %v", a.Bits, b.Bits)
		}
	}
}

func TestMutationRateRoughly(t *testing.T) {
	par := DeJongParams()
	par.M = 0.05
	d := NewDeme(functions.F4, par, rand.New(rand.NewSource(8)))
	flips := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		ind := Individual{Bits: make([]byte, functions.F4.TotalBits()), Valid: true}
		d.mutate(&ind)
		for _, b := range ind.Bits {
			if b == 1 {
				flips++
			}
		}
	}
	total := trials * functions.F4.TotalBits()
	rate := float64(flips) / float64(total)
	if rate < 0.035 || rate > 0.065 {
		t.Fatalf("observed mutation rate %v, want ~0.05", rate)
	}
}

func TestBestKSortedAndCopies(t *testing.T) {
	d := testDeme(t, functions.F1, 9)
	d.EvaluateAll()
	top := d.BestK(10)
	if len(top) != 10 {
		t.Fatalf("BestK returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Fit < top[i-1].Fit {
			t.Fatal("BestK not sorted fittest-first")
		}
	}
	// Mutating the copy must not touch the deme.
	top[0].Bits[0] ^= 1
	d2 := d.BestK(1)
	if d2[0].Bits[0] == top[0].Bits[0] && d2[0].Fit == top[0].Fit {
		// Could coincide; check against a direct clone instead.
		t.Log("note: bit coincided after flip; verifying via fitness identity")
	}
	if d.BestK(100)[0].Fit != d2[0].Fit {
		t.Fatal("BestK(k>N) should clamp and preserve order")
	}
}

func TestReplaceWorst(t *testing.T) {
	d := testDeme(t, functions.F1, 10)
	d.EvaluateAll()
	migrants := []Individual{{Bits: make([]byte, functions.F1.TotalBits()), Fit: -100, Valid: true}}
	worstBefore := d.BestK(d.Size())[d.Size()-1].Fit
	d.ReplaceWorst(migrants)
	found := false
	for _, ind := range d.pop {
		if ind.Fit == -100 {
			found = true
		}
		if ind.Fit == worstBefore {
			t.Fatal("worst individual survived replacement")
		}
	}
	if !found {
		t.Fatal("migrant not installed")
	}
	if d.Best().Fit != -100 {
		t.Fatal("ReplaceWorst did not refresh best-so-far")
	}
}

func TestReplaceWorstEmptyAndOversized(t *testing.T) {
	d := testDeme(t, functions.F1, 11)
	d.EvaluateAll()
	d.ReplaceWorst(nil) // no-op
	many := make([]Individual, 100)
	for i := range many {
		many[i] = Individual{Bits: make([]byte, functions.F1.TotalBits()), Fit: 1, Valid: true}
	}
	d.ReplaceWorst(many) // clamped to population size
	if d.Size() != 50 {
		t.Fatalf("population size changed: %d", d.Size())
	}
}

// TestReplaceWorstOverfullKeepsFittest pins the over-full migrant fix:
// when more migrants arrive than the deme holds (gossip fan-in times
// the exchange size can exceed N), ReplaceWorst must install the
// fittest of the pool, not the first len(pop) in arrival order.
func TestReplaceWorstOverfullKeepsFittest(t *testing.T) {
	d := testDeme(t, functions.F1, 13)
	d.EvaluateAll()
	n := d.Size()
	bits := functions.F1.TotalBits()
	// Fitness strictly improves with arrival position, so arrival-order
	// truncation would keep exactly the wrong half.
	pool := make([]Individual, n+30)
	for i := range pool {
		pool[i] = Individual{Bits: make([]byte, bits), Fit: float64(1000 - i), Valid: true}
	}
	d.ReplaceWorst(pool)
	wantWorst := pool[30].Fit // the n fittest are pool[30:]
	for _, ind := range d.pop {
		if ind.Fit > wantWorst {
			t.Fatalf("individual with fit %v survived; over-full merge dropped a fitter migrant (worst kept should be %v)",
				ind.Fit, wantWorst)
		}
	}
	if got := d.CurrentBest(); got != pool[len(pool)-1].Fit {
		t.Fatalf("current best %v, want fittest migrant %v", got, pool[len(pool)-1].Fit)
	}

	// Delivery order must not matter (//nscc:commutative): a deme fed
	// the same pool reversed ends with the same population fitnesses.
	d2 := testDeme(t, functions.F1, 13)
	d2.EvaluateAll()
	rev := make([]Individual, len(pool))
	for i := range pool {
		rev[i] = pool[len(pool)-1-i]
	}
	d2.ReplaceWorst(rev)
	fits := func(d *Deme) []float64 {
		out := make([]float64, 0, d.Size())
		for _, ind := range d.BestK(d.Size()) {
			out = append(out, ind.Fit)
		}
		return out
	}
	a, b := fits(d), fits(d2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("merge not delivery-order-free: rank %d differs (%v vs %v)", i, a[i], b[i])
		}
	}
}

func TestReplaceWorstWrongLengthPanics(t *testing.T) {
	d := testDeme(t, functions.F1, 12)
	d.EvaluateAll()
	defer func() {
		if recover() == nil {
			t.Error("wrong-length migrant did not panic")
		}
	}()
	d.ReplaceWorst([]Individual{{Bits: []byte{1}, Fit: 0, Valid: true}})
}

func TestBestOfPool(t *testing.T) {
	pool := []Individual{{Fit: 3}, {Fit: 1}, {Fit: 2}}
	top := bestOfPool(pool, 2)
	if len(top) != 2 || top[0].Fit != 1 || top[1].Fit != 2 {
		t.Fatalf("bestOfPool = %+v", top)
	}
	if got := bestOfPool(pool, 10); len(got) != 3 {
		t.Fatal("bestOfPool should clamp k")
	}
	if pool[0].Fit != 3 {
		t.Fatal("bestOfPool mutated input order")
	}
}

func TestDemeDeterminism(t *testing.T) {
	run := func(seed int64) float64 {
		d := testDeme(t, functions.F6, seed)
		d.EvaluateAll()
		for g := 0; g < 30; g++ {
			d.NextGeneration()
			d.EvaluateAll()
		}
		return d.Best().Fit
	}
	if run(42) != run(42) {
		t.Fatal("same seed diverged")
	}
	if run(42) == run(43) {
		t.Fatal("different seeds identical")
	}
}

// Property: a generation step preserves population size and chromosome
// lengths, and scaled weights are non-negative.
func TestGenerationInvariants(t *testing.T) {
	f := func(seed int64, fnRaw uint8) bool {
		fn := functions.ByNo(int(fnRaw%8) + 1)
		par := DeJongParams()
		par.N = 20
		d := NewDeme(fn, par, rand.New(rand.NewSource(seed)))
		d.EvaluateAll()
		for g := 0; g < 5; g++ {
			prev := 0.0
			for _, c := range d.scaledCum() {
				if c < prev { // prefix sums of non-negative weights
					return false
				}
				prev = c
			}
			d.NextGeneration()
			d.EvaluateAll()
			if d.Size() != 20 {
				return false
			}
			for _, ind := range d.pop {
				if len(ind.Bits) != fn.TotalBits() {
					return false
				}
				for _, b := range ind.Bits {
					if b > 1 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 16}); err != nil {
		t.Fatal(err)
	}
}

// TestWorstWindowSteadyMemory is the regression test for the
// unbounded worst-of-generation history: the scaling window is a
// preallocated W-slot ring, so a 10k-generation run must hold steady
// memory — the ring never grows and the steady-state generation loop
// allocates nothing.
func TestWorstWindowSteadyMemory(t *testing.T) {
	d := testDeme(t, functions.F1, 13)
	d.EvaluateAll()
	capBefore := d.worstWindowCap()
	for g := 0; g < 10_000; g++ {
		d.NextGeneration()
		d.EvaluateAll()
	}
	if got := d.worstWindowCap(); got != capBefore {
		t.Fatalf("worst-window ring grew: cap %d -> %d over 10k generations", capBefore, got)
	}
	w := d.Par.W
	if w < 1 {
		w = 1
	}
	if got := d.worstWindowCap(); got != w {
		t.Fatalf("worst-window ring cap %d, want the configured window %d", got, w)
	}
	// The generation loop itself must be allocation-free once warm.
	allocs := testing.AllocsPerRun(50, func() {
		d.NextGeneration()
		d.EvaluateAll()
	})
	if allocs > 0 {
		t.Fatalf("steady-state generation loop allocates %.1f objects/gen, want 0", allocs)
	}
}

func TestGrayDemeConverges(t *testing.T) {
	par := DeJongParams()
	par.Gray = true
	d := NewDeme(functions.F1, par, rand.New(rand.NewSource(21)))
	d.EvaluateAll()
	for g := 0; g < 100; g++ {
		d.NextGeneration()
		d.EvaluateAll()
	}
	if best := d.Best().Fit; best > 1.0 {
		t.Fatalf("gray-coded F1 after 100 generations still at %v", best)
	}
}
