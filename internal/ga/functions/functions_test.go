package functions

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTableParameters(t *testing.T) {
	want := []struct {
		no, vars, bits int
		lo, hi         float64
	}{
		{1, 3, 10, -5.12, 5.12},
		{2, 2, 12, -2.048, 2.048},
		{3, 5, 10, -5.12, 5.12},
		{4, 30, 8, -1.28, 1.28},
		{5, 2, 17, -65.536, 65.536},
		{6, 20, 10, -5.12, 5.12},
		{7, 10, 10, -500, 500},
		{8, 10, 10, -600, 600},
	}
	for _, w := range want {
		f := ByNo(w.no)
		if f.Vars != w.vars || f.BitsPerVar != w.bits || f.Lo != w.lo || f.Hi != w.hi {
			t.Errorf("F%d = vars %d bits %d [%g,%g], want vars %d bits %d [%g,%g]",
				w.no, f.Vars, f.BitsPerVar, f.Lo, f.Hi, w.vars, w.bits, w.lo, w.hi)
		}
	}
	if len(All()) != 8 {
		t.Fatalf("All() returned %d functions", len(All()))
	}
}

func TestByNoPanics(t *testing.T) {
	for _, no := range []int{0, 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ByNo(%d) did not panic", no)
				}
			}()
			ByNo(no)
		}()
	}
}

// evalAt is a helper evaluating a function at an explicit point.
func evalAt(f *Function, x ...float64) float64 { return f.Eval(x, nil) }

func TestKnownOptima(t *testing.T) {
	if v := evalAt(F1, 0, 0, 0); v != 0 {
		t.Errorf("F1(0)=%v", v)
	}
	if v := evalAt(F2, 1, 1); v != 0 {
		t.Errorf("F2(1,1)=%v", v)
	}
	if v := evalAt(F3, -5.12, -5.12, -5.12, -5.12, -5.12); v != 0 {
		t.Errorf("F3(-5.12...)=%v", v)
	}
	if v := F4.Eval(make([]float64, 30), nil); v != 0 {
		t.Errorf("F4(0)=%v (noise-free)", v)
	}
	if v := evalAt(F5, -32, -32); math.Abs(v-0.998004) > 1e-4 {
		t.Errorf("F5(-32,-32)=%v, want ~0.998004", v)
	}
	if v := F6.Eval(make([]float64, 20), nil); math.Abs(v) > 1e-9 {
		t.Errorf("F6(0)=%v", v)
	}
	x7 := make([]float64, 10)
	for i := range x7 {
		x7[i] = 420.9687
	}
	if v := F7.Eval(x7, nil); math.Abs(v-(-4189.83)) > 0.1 {
		t.Errorf("F7(420.9687...)=%v, want ~-4189.83", v)
	}
	if v := F8.Eval(make([]float64, 10), nil); math.Abs(v) > 1e-9 {
		t.Errorf("F8(0)=%v", v)
	}
}

func TestOptimaAreMinima(t *testing.T) {
	// Sample random points; none may beat the known minimum (beyond F4
	// noise and small F5/F7 tolerance).
	rng := rand.New(rand.NewSource(5))
	for _, f := range All() {
		for trial := 0; trial < 300; trial++ {
			x := make([]float64, f.Vars)
			for i := range x {
				x[i] = f.Lo + rng.Float64()*(f.Hi-f.Lo)
			}
			v := f.Eval(x, nil)
			if v < f.Min-1e-6 {
				t.Errorf("F%d: random point %v beats declared minimum %v", f.No, v, f.Min)
				break
			}
		}
	}
}

func TestF4NoiseInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 30)
	a := F4.Eval(x, rng)
	b := F4.Eval(x, rng)
	if a == b {
		t.Fatal("F4 evaluations with rng should differ (noise)")
	}
	if !F4.Noisy {
		t.Fatal("F4 must be flagged noisy")
	}
	for _, f := range All() {
		if f.No != 4 && f.Noisy {
			t.Errorf("F%d flagged noisy", f.No)
		}
	}
}

func TestDecodeEndpoints(t *testing.T) {
	f := F1
	zeros := make([]byte, f.TotalBits())
	x := f.Decode(zeros)
	for _, v := range x {
		if v != f.Lo {
			t.Fatalf("all-zero chromosome decodes to %v, want Lo=%v", v, f.Lo)
		}
	}
	ones := make([]byte, f.TotalBits())
	for i := range ones {
		ones[i] = 1
	}
	x = f.Decode(ones)
	for _, v := range x {
		if math.Abs(v-f.Hi) > 1e-12 {
			t.Fatalf("all-one chromosome decodes to %v, want Hi=%v", v, f.Hi)
		}
	}
}

func TestDecodeMonotone(t *testing.T) {
	// For a single variable, increasing the binary value increases the
	// decoded value.
	f := F2
	prev := math.Inf(-1)
	for v := 0; v < 1<<4; v++ {
		bits := make([]byte, f.TotalBits())
		for b := 0; b < 4; b++ { // low 4 bits of variable 0
			bits[f.BitsPerVar-4+b] = byte(v >> uint(3-b) & 1)
		}
		x := f.Decode(bits)
		if x[0] <= prev {
			t.Fatalf("decode not monotone at %d", v)
		}
		prev = x[0]
	}
}

func TestDecodeWrongLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Decode with wrong length did not panic")
		}
	}()
	F1.Decode(make([]byte, 7))
}

func TestEvalWrongArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Eval with wrong arity did not panic")
		}
	}()
	F1.Eval([]float64{1}, nil)
}

func TestBytes(t *testing.T) {
	if F1.TotalBits() != 30 || F1.Bytes() != 4 {
		t.Fatalf("F1 bits=%d bytes=%d", F1.TotalBits(), F1.Bytes())
	}
	if F4.TotalBits() != 240 || F4.Bytes() != 30 {
		t.Fatalf("F4 bits=%d bytes=%d", F4.TotalBits(), F4.Bytes())
	}
}

// Property: decoded values always lie within the function's limits.
func TestDecodeBoundsProperty(t *testing.T) {
	f := func(raw []byte, fnRaw uint8) bool {
		fn := ByNo(int(fnRaw%8) + 1)
		bits := make([]byte, fn.TotalBits())
		for i := range bits {
			if i < len(raw) {
				bits[i] = raw[i] & 1
			}
		}
		for _, v := range fn.Decode(bits) {
			if v < fn.Lo-1e-12 || v > fn.Hi+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGrayCodeRoundTrip(t *testing.T) {
	for v := uint64(0); v < 4096; v++ {
		if got := GrayToBinary(BinaryToGray(v)); got != v {
			t.Fatalf("round trip failed at %d: %d", v, got)
		}
	}
}

func TestGrayAdjacency(t *testing.T) {
	// Adjacent integers differ in exactly one Gray bit.
	for v := uint64(0); v < 4096; v++ {
		diff := BinaryToGray(v) ^ BinaryToGray(v+1)
		if diff == 0 || diff&(diff-1) != 0 {
			t.Fatalf("gray(%d) and gray(%d) differ in %b", v, v+1, diff)
		}
	}
}

func TestDecodeGrayEndpointsAndRange(t *testing.T) {
	f := F1
	zeros := make([]byte, f.TotalBits())
	for _, v := range f.DecodeGray(zeros) {
		if v != f.Lo {
			t.Fatalf("all-zero gray chromosome decodes to %v, want Lo", v)
		}
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		bits := make([]byte, f.TotalBits())
		for i := range bits {
			bits[i] = byte(rng.Intn(2))
		}
		for _, v := range f.DecodeGray(bits) {
			if v < f.Lo-1e-12 || v > f.Hi+1e-12 {
				t.Fatalf("gray decode out of range: %v", v)
			}
		}
	}
}

func TestGrayVsBinaryDiffer(t *testing.T) {
	bits := make([]byte, F1.TotalBits())
	bits[1] = 1 // second-most-significant bit of variable 0
	b := F1.Decode(bits)[0]
	g := F1.DecodeGray(bits)[0]
	if b == g {
		t.Fatal("gray and binary decodings should differ for this pattern")
	}
	if F1.EvalBitsGray(bits, nil) != F1.Eval(F1.DecodeGray(bits), nil) {
		t.Fatal("EvalBitsGray inconsistent with DecodeGray")
	}
}
